#!/usr/bin/env python3
"""Schema check for BENCH_*.json result files.

Accepts both result formats the repo produces:
  - JsonResultWriter (bench/bench_common.h custom mains):
      {"scale": "...", "benchmarks": [{"name": "...", "<metric>": <num>}]}
  - google-benchmark --benchmark_out JSON:
      {"context": {...}, "benchmarks": [{"name": "...", "real_time": ...}]}

Fails (exit 1) when a file is unparsable, has no benchmarks, a record is
missing its name, a record carries no numeric metrics, or any metric is
NaN/inf — the ways a half-broken bench silently ships garbage to CI.

Usage: check_bench_json.py FILE [FILE...]
"""

import json
import math
import sys


def check_record(path: str, rec: dict) -> list[str]:
    errors = []
    name = rec.get("name")
    if not name or not isinstance(name, str):
        errors.append(f"{path}: benchmark record missing 'name': {rec}")
        name = "<unnamed>"
    numeric = 0
    for key, value in rec.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        numeric += 1
        if isinstance(value, float) and not math.isfinite(value):
            errors.append(f"{path}: {name}.{key} is {value!r}")
    if numeric == 0:
        errors.append(f"{path}: {name} has no numeric metrics")
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: top-level value is not an object"]
    if "scale" not in doc and "context" not in doc:
        return [f"{path}: neither 'scale' (JsonResultWriter) nor "
                f"'context' (google-benchmark) present"]
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return [f"{path}: 'benchmarks' missing or empty"]
    errors = []
    for rec in benchmarks:
        if not isinstance(rec, dict):
            errors.append(f"{path}: non-object benchmark record: {rec!r}")
            continue
        errors.extend(check_record(path, rec))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path))
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} file(s) pass the bench JSON schema")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
