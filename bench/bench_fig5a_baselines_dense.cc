// Figure 5(a): baseline comparison on DENSE data. End-to-end runtime
// (including CSV I/O) of the hyper-parameter sweep — k ridge models over a
// dense X — for TF (eager), TF-G (single graph), Julia (native eager
// kernels), SysDS (portable kernel), and SysDS-B (native-BLAS-style
// kernel). Expected shape (paper): SysDS-B <= Julia < SysDS < TF ~ TF-G;
// all grow linearly in k because none of the baselines eliminates the
// redundant t(X)X / t(X)y across models.

#include <cstdio>
#include <filesystem>

#include "baselines/baselines.h"
#include "bench/bench_common.h"

int main() {
  using namespace sysds;
  using namespace sysds_bench;
  Scale scale = GetScale();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sysds_bench_fig5a";
  std::filesystem::create_directories(dir);
  std::string x_csv = (dir / "X.csv").string();
  std::string y_csv = (dir / "y.csv").string();
  std::string out_csv = (dir / "B.csv").string();

  Status gen = GenerateSweepData(scale.rows, scale.cols, /*sparsity=*/1.0,
                                 42, x_csv, y_csv);
  if (!gen.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", gen.ToString().c_str());
    return 1;
  }

  PrintHeader("Figure 5(a): baselines dense, end-to-end seconds incl. I/O",
              "k_models", {"TF", "TF-G", "Julia", "SysDS", "SysDS-B"});
  for (int k : scale.model_counts) {
    SweepWorkload w;
    w.x_csv = x_csv;
    w.y_csv = y_csv;
    w.out_csv = out_csv;
    for (int i = 0; i < k; ++i) {
      w.lambdas.push_back(0.001 * (i + 1));
    }
    std::vector<double> row;
    auto record = [&](StatusOr<SweepTimings> t) {
      if (!t.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     t.status().ToString().c_str());
        row.push_back(-1);
      } else {
        row.push_back(t->total_seconds);
      }
    };
    record(RunSweepTF(w, /*graph_mode=*/false));
    record(RunSweepTF(w, /*graph_mode=*/true));
    record(RunSweepJulia(w));
    record(RunSweepSysDS(w, /*native_blas=*/false, /*reuse=*/false));
    record(RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/false));
    PrintRow(k, row);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
