// Ablation A5 (§2.3(4)): the task-parallel parfor backend (hyper-parameter
// tuning / cross validation) and the parameter server (mini-batch
// training) with BSP vs ASP update protocols.

#include <cstdio>

#include "api/systemds_context.h"
#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/ps/param_server.h"

using namespace sysds;

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();

  // (1) parfor vs for on a grid of model trainings.
  {
    std::string head =
        "X = rand(rows=" + std::to_string(scale.rows / 2) +
        ", cols=" + std::to_string(scale.cols / 2) + ", seed=1)\n"
        "y = rand(rows=" + std::to_string(scale.rows / 2) +
        ", cols=1, seed=2)\n"
        "R = matrix(0, 8, 1)\n";
    std::string body =
        " (i in 1:8) {\n"
        "  B = lmDS(X, y, 0, 0.001 * i)\n"
        "  r = X %*% B - y\n"
        "  R[i, 1] = sum(r^2)\n"
        "}\n";
    std::printf("# A5.1 parfor backend (8 model trainings, %d threads)\n",
                DefaultParallelism());
    for (const char* kind : {"for", "parfor"}) {
      SystemDSContext ctx;
      Timer t;
      auto r = ctx.Execute(head + kind + body, {}, {"R"});
      if (!r.ok()) {
        std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s%14.4f s\n", kind, t.ElapsedSeconds());
    }
  }

  // (2) Parameter server: BSP vs ASP convergence/time.
  {
    int64_t n = scale.rows, m = std::min<int64_t>(scale.cols, 32);
    auto x = RandMatrix(n, m, 0.0, 1.0, 1.0, 3, RandPdf::kUniform, 1);
    auto w = RandMatrix(m, 1, -1.0, 1.0, 1.0, 4, RandPdf::kUniform, 1);
    auto y = MatMult(*x, *w, 1);
    std::printf("\n# A5.2 parameter server (linreg, %lld x %lld)\n",
                static_cast<long long>(n), static_cast<long long>(m));
    std::printf("%-8s%10s%14s%14s%10s\n", "mode", "workers", "seconds",
                "final_loss", "pushes");
    for (PsUpdateMode mode : {PsUpdateMode::kBSP, PsUpdateMode::kASP}) {
      for (int workers : {1, 4}) {
        PsConfig config;
        config.mode = mode;
        config.num_workers = workers;
        config.epochs = 3;
        config.batch_size = 64;
        config.learning_rate = 0.05;
        Timer t;
        auto result = PsTrain(*x, *y, config);
        if (!result.ok()) {
          std::fprintf(stderr, "ps failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf("%-8s%10d%14.4f%14.6f%10lld\n",
                    mode == PsUpdateMode::kBSP ? "BSP" : "ASP", workers,
                    t.ElapsedSeconds(), result->final_loss,
                    static_cast<long long>(result->pushes));
      }
    }
  }
  return 0;
}
