// Operator-fusion benchmark: single-pass fused pipelines vs. the unfused
// instruction sequence for elementwise–aggregate chains. The headline
// workload is the standardize-and-row-aggregate chain
//   R = rowSums(((X - mu) / sigma)^2)
// which unfused materializes three full-size intermediates; fused it is one
// read of X and one write of R. Expected: >= 2x on paper-scale dense inputs
// (memory-bandwidth bound), with bit-identical results — fused and unfused
// share the same aggregation primitives, chunking, and zero-handling rules
// (see DESIGN.md "Operator fusion"). Results also land in BENCH_fusion.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/systemds_context.h"
#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "runtime/matrix/lib_datagen.h"

namespace {

using namespace sysds;
using namespace sysds_bench;

std::unique_ptr<SystemDSContext> MakeCtx(bool fusion) {
  // Large budgets keep paper-scale intermediates CP-resident so the
  // comparison measures the kernels, not spill traffic or backend choice.
  return SystemDSContext::Builder()
      .CpMemoryBudget(64LL << 30)
      .BufferPoolLimit(16LL << 30)
      .Fusion(fusion)
      .Build();
}

struct Workload {
  std::string name;
  std::string script;
  std::string output;
  bool scalar_output;
  const MatrixBlock* x;
};

template <typename F>
double BestSeconds(int reps, F&& fn) {
  double best = 1e300;
  for (int i = 0; i < std::max(1, reps); ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int RunWorkload(const Workload& w, int reps, JsonResultWriter* json) {
  auto fused_ctx = MakeCtx(true);
  auto unfused_ctx = MakeCtx(false);
  Outputs outs(w.output);

  auto run = [&](SystemDSContext& ctx) {
    return ctx.Execute(w.script, Inputs().Matrix("X", *w.x), outs);
  };

  // Correctness first: fused and unfused must agree bit-for-bit.
  auto rf = run(*fused_ctx);
  auto ru = run(*unfused_ctx);
  if (!rf.ok() || !ru.ok()) {
    std::fprintf(stderr, "%s: execution failed: %s\n", w.name.c_str(),
                 (!rf.ok() ? rf.status() : ru.status()).ToString().c_str());
    return 1;
  }
  bool identical;
  if (w.scalar_output) {
    auto vf = rf->GetDouble(w.output);
    auto vu = ru->GetDouble(w.output);
    identical = vf.ok() && vu.ok() && *vf == *vu;
  } else {
    auto mf = rf->GetMatrix(w.output);
    auto mu = ru->GetMatrix(w.output);
    identical = mf.ok() && mu.ok() && mf->EqualsApprox(*mu, 0.0);
  }
  if (!identical) {
    std::fprintf(stderr, "%s: fused result differs from unfused!\n",
                 w.name.c_str());
  }

  double fused_s = BestSeconds(reps, [&] { (void)run(*fused_ctx); });
  double unfused_s = BestSeconds(reps, [&] { (void)run(*unfused_ctx); });

  std::printf("%-28s %14.4f %14.4f %10.2fx %10s\n", w.name.c_str(),
              unfused_s, fused_s, unfused_s / fused_s,
              identical ? "identical" : "MISMATCH");
  json->Add(w.name, {{"unfused_seconds", unfused_s},
                     {"fused_seconds", fused_s},
                     {"speedup", unfused_s / fused_s},
                     {"identical", identical ? 1.0 : 0.0}});
  return identical ? 0 : 1;
}

}  // namespace

int main() {
  using namespace sysds;
  using namespace sysds_bench;
  Scale scale = GetScale();
  auto dense =
      RandMatrix(scale.rows, scale.cols, 0.0, 1.0, 1.0, 42,
                 RandPdf::kUniform, DefaultParallelism());
  auto sparse =
      RandMatrix(scale.rows, scale.cols, -1.0, 1.0, 0.05, 43,
                 RandPdf::kUniform, DefaultParallelism());
  if (!dense.ok() || !sparse.ok()) {
    std::fprintf(stderr, "datagen failed\n");
    return 1;
  }

  std::vector<Workload> workloads = {
      {"rowagg_chain_dense",
       "R = rowSums(((X - 0.5) / 0.29)^2)", "R", false, &*dense},
      {"fullagg_sigmoid_dense",
       "s = sum(1 / (1 + exp(-X)))", "s", true, &*dense},
      {"colagg_chain_dense",
       "C = colSums((X * X) + X)", "C", false, &*dense},
      {"elementwise_chain_dense",
       "Y = ((X - 0.5) * 2) + (X * X)", "Y", false, &*dense},
      {"fullagg_chain_sparse",
       "s = sum((X * 2)^2)", "s", true, &*sparse},
  };

  std::printf("# Operator fusion: fused vs unfused, best-of-%d seconds\n",
              std::max(1, scale.repetitions));
  std::printf("%-28s %14s %14s %10s %10s\n", "workload", "unfused_s",
              "fused_s", "speedup", "check");

  JsonResultWriter json("BENCH_fusion.json");
  int failures = 0;
  for (const Workload& w : workloads) {
    failures += RunWorkload(w, scale.repetitions, &json);
  }
  int64_t regions = sysds::obs::MetricsRegistry::Get()
                        .GetCounter("fusion.regions")
                        ->Value();
  int64_t elided = sysds::obs::MetricsRegistry::Get()
                       .GetCounter("fusion.intermediates_elided")
                       ->Value();
  std::printf("# fusion.regions=%lld fusion.intermediates_elided=%lld\n",
              static_cast<long long>(regions),
              static_cast<long long>(elided));
  json.Add("fusion_metrics", {{"regions", static_cast<double>(regions)},
                              {"intermediates_elided",
                               static_cast<double>(elided)}});
  if (!json.Write()) {
    std::fprintf(stderr, "failed to write BENCH_fusion.json\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
