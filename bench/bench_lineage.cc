// Ablation A2 (§3.1): lineage tracing overhead and reuse policies.
//  (1) Tracing overhead: the same script with lineage off / trace-only —
//      the paper's design requires tracing to be cheap enough to be always
//      on.
//  (2) Reuse policies on steplm (Example 1): none / full / partial. Full
//      reuse serves exact recomputations; partial reuse additionally
//      serves t(X)%*%X over column-augmented X via compensation plans,
//      which is the dominant redundancy in forward feature selection.

#include <cstdio>

#include "api/systemds_context.h"
#include "compiler/compiler.h"
#include "runtime/controlprog/program.h"
#include "bench/bench_common.h"
#include "common/util.h"

using namespace sysds;

namespace {

double RunScript(const std::string& script, ReusePolicy policy, bool tracing,
                 LineageCacheStats* stats_out) {
  DMLConfig config;
  config.reuse_policy = policy;
  config.lineage_tracing = tracing;
  SystemDSContext ctx(config);
  Timer timer;
  auto r = ctx.Execute(script, {}, {});
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return -1;
  }
  if (stats_out != nullptr) *stats_out = ctx.Cache()->Stats();
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();

  // (1) Tracing overhead on an iteration-heavy script.
  std::string loop_script =
      "X = rand(rows=" + std::to_string(scale.rows / 4) +
      ", cols=" + std::to_string(scale.cols) + ", seed=1)\n"
      "s = 0\n"
      "for (i in 1:50) {\n"
      "  Y = X * (i * 0.1) + i\n"
      "  s = s + sum(Y)\n"
      "}\n";
  double off = RunScript(loop_script, ReusePolicy::kNone, false, nullptr);
  double trace = RunScript(loop_script, ReusePolicy::kNone, true, nullptr);
  std::printf("# A2.1 lineage tracing overhead (50-iteration loop)\n");
  std::printf("%-28s%14.4f s\n", "lineage off", off);
  std::printf("%-28s%14.4f s\n", "lineage trace-only", trace);
  std::printf("%-28s%14.2f %%\n", "overhead",
              off > 0 ? (trace / off - 1.0) * 100.0 : 0.0);

  // (2) Reuse policies on steplm.
  std::string steplm_script =
      "X = rand(rows=" + std::to_string(scale.rows / 2) +
      ", cols=16, seed=2)\n"
      "y = 3*X[,2] - 2*X[,5] + 0.5*X[,9] + 0.1*X[,12]\n"
      "[B, S] = steplm(X, y, 0, 0.0001)\n";
  std::printf("\n# A2.2 reuse policies on steplm (forward selection)\n");
  std::printf("%-28s%14s%12s%12s\n", "policy", "seconds", "full_hits",
              "partial");
  LineageCacheStats stats;
  double none = RunScript(steplm_script, ReusePolicy::kNone, false, &stats);
  std::printf("%-28s%14.4f%12s%12s\n", "none", none, "-", "-");
  double full = RunScript(steplm_script, ReusePolicy::kFull, true, &stats);
  std::printf("%-28s%14.4f%12lld%12lld\n", "full", full,
              static_cast<long long>(stats.full_hits),
              static_cast<long long>(stats.partial_hits));
  double partial =
      RunScript(steplm_script, ReusePolicy::kPartial, true, &stats);
  std::printf("%-28s%14.4f%12lld%12lld\n", "full+partial", partial,
              static_cast<long long>(stats.full_hits),
              static_cast<long long>(stats.partial_hits));

  // (3) Loop deduplication: trace size with and without dedup.
  {
    std::string script =
        "X = rand(rows=100, cols=8, seed=9)\n"
        "acc = matrix(0, 8, 8)\n"
        "for (i in 1:200) {\n"
        "  Y = t(X) %*% X\n"
        "  acc = acc + Y * i\n"
        "}\n";
    auto trace_size = [&](bool dedup) -> int64_t {
      DMLConfig config;
      config.lineage_tracing = true;
      config.lineage_dedup = dedup;
      auto prog = CompileDML(script, config, {});
      if (!prog.ok()) return -1;
      ExecutionContext ec(prog->get(), &config);
      if (!(*prog)->Execute(&ec).ok()) return -1;
      LineageItemPtr item = ec.Lineage()->GetOrNull("acc");
      return item == nullptr ? -1 : item->NodeCount();
    };
    std::printf("\n# A2.3 loop deduplication (200-iteration loop)\n");
    std::printf("%-28s%14lld nodes\n", "full trace",
                static_cast<long long>(trace_size(false)));
    std::printf("%-28s%14lld nodes\n", "deduplicated trace",
                static_cast<long long>(trace_size(true)));
  }
  return 0;
}
