// Checkpoint/restart benchmark (src/runtime/recovery/): (1) checkpoint
// overhead vs interval on an lmDS-style training loop — the run with
// checkpointing OFF is the baseline, the gate-closed run (enabled but the
// interval never fires) must stay within 1%, and the default interval=1
// must stay within 5%; (2) recovery latency vs how far the loop had
// progressed when the crash hit (resume = prefix re-execution + CRC-
// verified restore + remaining iterations). Results land in
// BENCH_recovery.json; the overhead bounds are asserted (exit 1).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/systemds_context.h"
#include "bench/bench_common.h"
#include "common/config.h"
#include "common/faults.h"
#include "common/util.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/recovery/checkpoint_manager.h"

using namespace sysds;

namespace {

std::string LmdsScript(int64_t rows, int64_t cols, int iters) {
  return "X = rand(rows=" + std::to_string(rows) +
         ", cols=" + std::to_string(cols) + ", seed=1)\n"
         "y = rand(rows=" + std::to_string(rows) + ", cols=1, seed=2)\n"
         "beta = matrix(0, " + std::to_string(cols) + ", 1)\n"
         "for (i in 1:" + std::to_string(iters) + ") {\n"
         "  g = t(X) %*% (X %*% beta - y)\n"
         "  beta = beta - 0.0000001 * g\n"
         "}\n";
}

// One timed Execute under the given builder setup.
double TimeOne(const std::string& script,
               const std::function<std::unique_ptr<SystemDSContext>()>&
                   make_ctx) {
  auto ctx = make_ctx();
  Timer t;
  auto result = ctx->Execute(script, Inputs(), Outputs("beta"));
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return t.ElapsedSeconds();
}

struct TempCheckpointDir {
  TempCheckpointDir() {
    // Prefer tmpfs: the overhead section prices the checkpoint subsystem
    // (serialization, CRC, commit protocol) against fast local storage, not
    // the latency of whatever filesystem backs /tmp in a container.
    std::filesystem::path base = std::filesystem::temp_directory_path();
    std::error_code ec;
    if (std::filesystem::is_directory("/dev/shm", ec)) base = "/dev/shm";
    path = (base / "sysds_bench_recovery").string();
    std::filesystem::remove_all(path, ec);
    std::filesystem::create_directories(path, ec);
  }
  ~TempCheckpointDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  // Fixed problem size: the overhead bounds are properties of compute-
  // dominated workloads (a checkpoint generation here is ~2 KB of vectors
  // against ~16 MFLOP of matmuls per iteration), so shrinking the data with
  // SYSDS_BENCH_SCALE would only measure filesystem latency. Scale picks
  // the repetition count.
  const int64_t rows = 40000, cols = 100;
  const int iters = 20;
  const int reps = std::max(5, scale.repetitions);
  const std::string script = LmdsScript(rows, cols, iters);

  JsonResultWriter json("BENCH_recovery.json");
  std::printf("# Checkpoint/restart (lmDS loop, %lld x %lld, %d iters)\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              iters);

  // (1) Overhead vs checkpoint interval. Configurations are interleaved
  // across repetitions (best-of per config) so CPU-frequency ramp-up and
  // page-cache warmup do not bias whichever config runs first; a warm run
  // precedes all timing.
  TempCheckpointDir dir;
  struct Config {
    std::string label;
    std::string json_name;
    std::function<std::unique_ptr<SystemDSContext>()> make;
  };
  std::vector<Config> configs;
  configs.push_back({"checkpointing off", "overhead_off",
                     [] { return SystemDSContext::Builder().Build(); }});
  // Enabled but gated shut: the interval never fires within the loop, so
  // this prices only the per-boundary bookkeeping of the recovery hooks.
  configs.push_back({"enabled, gate shut", "overhead_gate_shut", [&] {
                       return SystemDSContext::Builder()
                           .Checkpointing(dir.path, 1LL << 40)
                           .Build();
                     }});
  for (int64_t interval : {1, 2, 5}) {
    char label[48], name[48];
    std::snprintf(label, sizeof(label), "interval=%lld",
                  static_cast<long long>(interval));
    std::snprintf(name, sizeof(name), "overhead_interval%lld",
                  static_cast<long long>(interval));
    configs.push_back({label, name, [&dir, interval] {
                         return SystemDSContext::Builder()
                             .Checkpointing(dir.path, interval)
                             .Build();
                       }});
  }
  (void)TimeOne(script, configs[0].make);  // warm run, untimed
  // Each round re-times the baseline and ratios every config against that
  // round's baseline; the reported overhead is the median of the round-
  // local ratios. Paired ratios cancel machine-speed drift (CPU frequency,
  // noisy neighbors) that makes ratios of two independent best-of totals
  // fluctuate by several percent.
  std::vector<std::vector<double>> times(configs.size());
  std::vector<std::vector<double>> ratios(configs.size());
  for (int r = 0; r < reps; ++r) {
    double round_off = TimeOne(script, configs[0].make);
    times[0].push_back(round_off);
    for (size_t c = 1; c < configs.size(); ++c) {
      double t = TimeOne(script, configs[c].make);
      times[c].push_back(t);
      ratios[c].push_back(t / round_off);
    }
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double t_off = median(times[0]);
  double gated_ovh = 0.0, default_ovh = 0.0;
  std::printf("%-22s%12s%12s\n", "config", "seconds", "overhead");
  std::printf("%-22s%11.4fs%12s\n", configs[0].label.c_str(), t_off, "-");
  json.Add(configs[0].json_name, {{"seconds", t_off}});
  for (size_t c = 1; c < configs.size(); ++c) {
    double t = median(times[c]);
    double ovh = median(ratios[c]) - 1.0;
    if (configs[c].json_name == "overhead_gate_shut") gated_ovh = ovh;
    if (configs[c].json_name == "overhead_interval1") default_ovh = ovh;
    std::printf("%-22s%11.4fs%11.2f%%\n", configs[c].label.c_str(), t,
                100.0 * ovh);
    json.Add(configs[c].json_name,
             {{"seconds", t}, {"overhead_frac", ovh}});
  }

  // Asserted bounds, measured analytically (the bench_chaos idiom): end-to-
  // end ratios of two ~0.4 s runs fluctuate by several percent on a shared
  // machine, so the acceptance numbers come from micro-timing the exact
  // extra work each config does, scaled to this workload's boundary count
  // and baseline time.
  FaultInjector::Get().Disable();
  DMLConfig micro_cfg;
  ExecutionContext micro_ec(nullptr, &micro_cfg);
  LoopLiveness micro_lv;
  micro_lv.loop_id = 7;
  micro_lv.checkpoint_vars = {"beta", "g", "i"};
  micro_ec.Vars().Set(
      "beta", std::make_shared<MatrixObject>(MatrixBlock(cols, 1, false)));
  micro_ec.Vars().Set(
      "g", std::make_shared<MatrixObject>(MatrixBlock(cols, 1, false)));
  micro_ec.Vars().Set("i", ScalarObject::MakeInt(1));

  // Per-boundary bookkeeping with the gate shut (no write ever happens).
  double boundary_ns = 0.0;
  {
    CheckpointManager::Options o;
    o.dir = dir.path;
    o.interval = 1LL << 40;
    CheckpointManager mgr(o, 0x1234);
    mgr.BeginLoop(micro_lv.loop_id);
    const int64_t kBoundaries = 2 * 1000 * 1000;
    Timer t;
    for (int64_t i = 1; i <= kBoundaries; ++i) {
      if (!mgr.AtBoundary(micro_lv.loop_id, micro_lv, i, &micro_ec).ok()) {
        std::fprintf(stderr, "gated AtBoundary failed\n");
        return 1;
      }
    }
    boundary_ns = t.ElapsedSeconds() * 1e9 / kBoundaries;
    mgr.EndLoop(micro_lv.loop_id, true);
  }
  gated_ovh = boundary_ns * iters / (t_off * 1e9);

  // Full checkpoint generation (vars + manifest commit + previous-
  // generation cleanup), which interval=1 pays every iteration.
  double gen_us = 0.0;
  {
    CheckpointManager::Options o;
    o.dir = dir.path;
    o.interval = 1;
    CheckpointManager mgr(o, 0x1234);
    mgr.BeginLoop(micro_lv.loop_id);
    const int64_t kGens = 500;
    Timer t;
    for (int64_t i = 1; i <= kGens; ++i) {
      if (!mgr.AtBoundary(micro_lv.loop_id, micro_lv, i, &micro_ec).ok()) {
        std::fprintf(stderr, "checkpointing AtBoundary failed\n");
        return 1;
      }
    }
    gen_us = t.ElapsedSeconds() * 1e6 / kGens;
    mgr.EndLoop(micro_lv.loop_id, true);
  }
  default_ovh = gen_us * 1e3 * iters / (t_off * 1e9);

  std::printf("\n%-22s%14.1f\n", "boundary_ns", boundary_ns);
  std::printf("%-22s%14.2f\n", "checkpoint_gen_us", gen_us);
  std::printf("%-22s%13.4f%%  (target < 1)\n", "disabled_overhead",
              100.0 * gated_ovh);
  std::printf("%-22s%13.4f%%  (target < 5)\n", "interval1_overhead",
              100.0 * default_ovh);
  json.Add("micro", {{"boundary_ns", boundary_ns},
                     {"checkpoint_gen_us", gen_us},
                     {"disabled_overhead_frac", gated_ovh},
                     {"interval1_overhead_frac", default_ovh}});

  // (2) Recovery latency vs crash progress: kill at boundary b, then time
  // the resume run (prefix re-execution + restore + remaining iterations).
  std::printf("\n%-22s%14s%14s\n", "crash point", "resume_s",
              "vs_full_run");
  for (int64_t boundary : {2L, static_cast<long>(iters) / 2,
                           static_cast<long>(iters) - 1}) {
    std::error_code ec;
    std::filesystem::remove_all(dir.path, ec);
    std::filesystem::create_directories(dir.path, ec);
    {
      FaultConfig kill;
      kill.enabled = true;
      kill.profile.crash_at_boundary = boundary;
      auto ctx = SystemDSContext::Builder()
                     .Checkpointing(dir.path)
                     .Chaos(kill)
                     .Build();
      auto crashed = ctx->Execute(script, Inputs(), Outputs("beta"));
      if (crashed.ok() ||
          crashed.status().code() != StatusCode::kAborted) {
        std::fprintf(stderr, "kill point did not fire at boundary %lld\n",
                     static_cast<long long>(boundary));
        return 1;
      }
    }
    FaultInjector::Get().Disable();
    auto ctx = SystemDSContext::Builder()
                   .Checkpointing(dir.path)
                   .Resume()
                   .Build();
    Timer t;
    auto resumed = ctx->Execute(script, Inputs(), Outputs("beta"));
    double resume_s = t.ElapsedSeconds();
    if (!resumed.ok()) {
      std::fprintf(stderr, "resume failed: %s\n",
                   resumed.status().ToString().c_str());
      return 1;
    }
    char label[48];
    std::snprintf(label, sizeof(label), "iteration %lld/%d",
                  static_cast<long long>(boundary), iters);
    std::printf("%-22s%13.4fs%13.2fx\n", label, resume_s, resume_s / t_off);
    char name[48];
    std::snprintf(name, sizeof(name), "resume_after_%lld",
                  static_cast<long long>(boundary));
    json.Add(name, {{"resume_seconds", resume_s},
                    {"full_run_seconds", t_off},
                    {"crash_boundary", static_cast<double>(boundary)}});
  }

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write BENCH_recovery.json\n");
    return 1;
  }

  // Acceptance bounds: gate-shut hooks < 1%, default interval < 5%.
  bool ok = true;
  if (gated_ovh >= 0.01) {
    std::fprintf(stderr,
                 "FAIL: disabled-checkpointing overhead %.2f%% >= 1%%\n",
                 100.0 * gated_ovh);
    ok = false;
  }
  if (default_ovh >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: default-interval checkpoint overhead %.2f%% >= 5%%\n",
                 100.0 * default_ovh);
    ok = false;
  }
  std::printf("\n%s (gate-shut %.2f%%, interval=1 %.2f%%)\n",
              ok ? "overhead bounds PASS" : "overhead bounds FAIL",
              100.0 * gated_ovh, 100.0 * default_ovh);
  return ok ? 0 : 1;
}
