#ifndef SYSDS_BENCH_BENCH_COMMON_H_
#define SYSDS_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the figure-regeneration benchmarks. The paper ran
// on a 24-vcore/128GB node with 100K x 1K inputs; the default scale here is
// sized for a small CI machine and preserves the workload *shape* (who
// wins, by what factor, where crossovers fall). Set SYSDS_BENCH_SCALE=paper
// for paper-sized inputs, SYSDS_BENCH_SCALE=tiny for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace sysds_bench {

struct Scale {
  int64_t rows;
  int64_t cols;
  std::vector<int> model_counts;       // k grid (Fig 5a-c x-axis)
  std::vector<int64_t> row_counts;     // nrow grid (Fig 5d x-axis)
  int repetitions;
};

/// CI smoke support: `--smoke` on a benchmark's command line rewrites
/// SYSDS_BENCH_SCALE to "tiny" before GetScale() is consulted, so the same
/// binaries double as a seconds-long pipeline smoke test (the JSON result
/// file is still written and schema-checked). Returns true when found.
inline bool ApplySmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      setenv("SYSDS_BENCH_SCALE", "tiny", 1);
      return true;
    }
  }
  return false;
}

inline Scale GetScale() {
  const char* env = std::getenv("SYSDS_BENCH_SCALE");
  std::string s = env == nullptr ? "small" : env;
  if (s == "paper") {
    return {100000, 1000, {1, 10, 20, 30, 40, 50, 60, 70},
            {33000, 100000, 330000, 1000000, 3300000}, 3};
  }
  if (s == "tiny") {
    return {1000, 40, {1, 4, 8}, {500, 1000, 2000}, 1};
  }
  // small (default)
  return {8000, 100, {1, 4, 8, 12, 16, 20, 24},
          {2000, 4000, 8000, 16000, 32000}, 1};
}

inline void PrintHeader(const char* title, const char* xlabel,
                        const std::vector<std::string>& series) {
  std::printf("# %s\n", title);
  std::printf("%-12s", xlabel);
  for (const std::string& name : series) std::printf("%14s", name.c_str());
  std::printf("\n");
}

inline void PrintRow(double x, const std::vector<double>& values) {
  std::printf("%-12g", x);
  for (double v : values) std::printf("%14.4f", v);
  std::printf("\n");
}

/// Machine-readable result sink for the custom-main benchmarks (the
/// figure-regeneration drivers that don't use the google-benchmark runner).
/// Accumulates named records of {metric, value} pairs and writes them as
///   {"scale": "...", "benchmarks": [{"name": "...", "m1": v1, ...}, ...]}
/// so CI can diff runs without scraping stdout tables.
class JsonResultWriter {
 public:
  explicit JsonResultWriter(std::string path) : path_(std::move(path)) {}

  void Add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& metrics) {
    records_.emplace_back(name, metrics);
  }

  bool Write() const {
    std::ofstream out(path_);
    if (!out) return false;
    const char* env = std::getenv("SYSDS_BENCH_SCALE");
    out << "{\n  \"scale\": \"" << (env == nullptr ? "small" : env)
        << "\",\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "    {\"name\": \"" << records_[i].first << "\"";
      for (const auto& [metric, value] : records_[i].second) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << ", \"" << metric << "\": " << buf;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
  }

 private:
  std::string path_;
  std::vector<std::pair<
      std::string, std::vector<std::pair<std::string, double>>>> records_;
};

/// For google-benchmark mains: returns argv with
/// `--benchmark_out=<default_path> --benchmark_out_format=json` appended
/// unless the caller already passed --benchmark_out. `storage` must outlive
/// the returned vector (benchmark::Initialize keeps the pointers).
inline std::vector<char*> WithDefaultJsonOut(
    int argc, char** argv, const char* default_path,
    std::vector<std::string>* storage) {
  storage->clear();
  bool has_out = false;
  for (int i = 0; i < argc; ++i) {
    storage->emplace_back(argv[i]);
    if (storage->back().rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    storage->push_back(std::string("--benchmark_out=") + default_path);
    storage->push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(storage->size());
  for (std::string& s : *storage) args.push_back(s.data());
  return args;
}

}  // namespace sysds_bench

#endif  // SYSDS_BENCH_BENCH_COMMON_H_
