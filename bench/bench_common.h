#ifndef SYSDS_BENCH_BENCH_COMMON_H_
#define SYSDS_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the figure-regeneration benchmarks. The paper ran
// on a 24-vcore/128GB node with 100K x 1K inputs; the default scale here is
// sized for a small CI machine and preserves the workload *shape* (who
// wins, by what factor, where crossovers fall). Set SYSDS_BENCH_SCALE=paper
// for paper-sized inputs, SYSDS_BENCH_SCALE=tiny for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace sysds_bench {

struct Scale {
  int64_t rows;
  int64_t cols;
  std::vector<int> model_counts;       // k grid (Fig 5a-c x-axis)
  std::vector<int64_t> row_counts;     // nrow grid (Fig 5d x-axis)
  int repetitions;
};

inline Scale GetScale() {
  const char* env = std::getenv("SYSDS_BENCH_SCALE");
  std::string s = env == nullptr ? "small" : env;
  if (s == "paper") {
    return {100000, 1000, {1, 10, 20, 30, 40, 50, 60, 70},
            {33000, 100000, 330000, 1000000, 3300000}, 3};
  }
  if (s == "tiny") {
    return {1000, 40, {1, 4, 8}, {500, 1000, 2000}, 1};
  }
  // small (default)
  return {8000, 100, {1, 4, 8, 12, 16, 20, 24},
          {2000, 4000, 8000, 16000, 32000}, 1};
}

inline void PrintHeader(const char* title, const char* xlabel,
                        const std::vector<std::string>& series) {
  std::printf("# %s\n", title);
  std::printf("%-12s", xlabel);
  for (const std::string& name : series) std::printf("%14s", name.c_str());
  std::printf("\n");
}

inline void PrintRow(double x, const std::vector<double>& values) {
  std::printf("%-12g", x);
  for (double v : values) std::printf("%14.4f", v);
  std::printf("\n");
}

}  // namespace sysds_bench

#endif  // SYSDS_BENCH_BENCH_COMMON_H_
