// Figure 5(b): baseline comparison on SPARSE data (sparsity 0.1). Expected
// shape (paper): SysDS largely outperforms Julia and TF; TF pays a
// materialized transpose per model (its sparse-dense matmul lacks a fused
// call) while TF-G executes the transpose only once.

#include <cstdio>
#include <filesystem>

#include "baselines/baselines.h"
#include "bench/bench_common.h"

int main() {
  using namespace sysds;
  using namespace sysds_bench;
  Scale scale = GetScale();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sysds_bench_fig5b";
  std::filesystem::create_directories(dir);
  std::string x_csv = (dir / "X.csv").string();
  std::string y_csv = (dir / "y.csv").string();
  std::string out_csv = (dir / "B.csv").string();

  Status gen = GenerateSweepData(scale.rows, scale.cols, /*sparsity=*/0.1,
                                 42, x_csv, y_csv);
  if (!gen.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", gen.ToString().c_str());
    return 1;
  }

  PrintHeader(
      "Figure 5(b): baselines sparse (sparsity=0.1), end-to-end seconds",
      "k_models", {"TF", "TF-G", "Julia", "SysDS"});
  for (int k : scale.model_counts) {
    SweepWorkload w;
    w.x_csv = x_csv;
    w.y_csv = y_csv;
    w.out_csv = out_csv;
    for (int i = 0; i < k; ++i) w.lambdas.push_back(0.001 * (i + 1));
    std::vector<double> row;
    auto record = [&](StatusOr<SweepTimings> t) {
      row.push_back(t.ok() ? t->total_seconds : -1);
    };
    record(RunSweepTF(w, /*graph_mode=*/false));
    record(RunSweepTF(w, /*graph_mode=*/true));
    record(RunSweepJulia(w));
    record(RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/false));
    PrintRow(k, row);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
