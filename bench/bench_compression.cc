// Ablation A7 (§3.4 research direction, after Elgohary et al. CLA):
// lossless compressed linear algebra. Compression ratio and operation
// throughput on low-cardinality (encoded/categorical) data vs. the
// uncompressed kernels — compressed ops should be competitive or faster
// while shrinking the memory footprint by ~8x for one-byte codes.

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "common/util.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

using namespace sysds;

namespace {

MatrixBlock Categorical(int64_t rows, int64_t cols, int card,
                        uint64_t seed) {
  auto m = RandMatrix(rows, cols, 0, 1, 1.0, seed, RandPdf::kUniform, 1);
  MatrixBlock out = MatrixBlock::Dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.DenseRow(r)[c] =
          static_cast<double>(static_cast<int>(m->Get(r, c) * card) % card);
    }
  }
  out.MarkNnzDirty();
  return out;
}

double TimeIt(const std::function<void()>& fn, int reps = 5) {
  Timer t;
  for (int i = 0; i < reps; ++i) fn();
  return t.ElapsedSeconds() / reps;
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows * 4, cols = scale.cols / 2;

  std::printf("# A7 compressed linear algebra (%lld x %lld)\n",
              static_cast<long long>(rows), static_cast<long long>(cols));
  std::printf("%-14s%12s%14s%14s%14s%14s\n", "cardinality", "ratio",
              "sum_u[s]", "sum_c[s]", "tXy_u[s]", "tXy_c[s]");
  for (int card : {2, 16, 128}) {
    MatrixBlock m = Categorical(rows, cols, card, card);
    auto y = RandMatrix(rows, 1, -1, 1, 1.0, 99, RandPdf::kUniform, 1);
    Timer tc;
    CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
    double compress_s = tc.ElapsedSeconds();
    double sum_u = TimeIt([&] {
      auto s = AggregateAll(AggOpCode::kSum, m, 1);
      (void)s;
    });
    double sum_c = TimeIt([&] { volatile double s = c.Sum(); (void)s; });
    double txy_u = TimeIt([&] {
      auto r = TransposeLeftMatMult(m, *y, 1);
      (void)r;
    });
    double txy_c = TimeIt([&] {
      auto r = c.VecMatLeft(*y);
      (void)r;
    });
    std::printf("%-14d%12.2f%14.5f%14.5f%14.5f%14.5f\n", card,
                c.CompressionRatio(), sum_u, sum_c, txy_u, txy_c);
    if (card == 2) {
      std::printf("  (compress time %.4fs, %lld/%lld columns DDC)\n",
                  compress_s,
                  static_cast<long long>(c.NumCompressedColumns()),
                  static_cast<long long>(cols));
    }
  }
  return 0;
}
