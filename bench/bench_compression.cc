// Compressed linear algebra (§3.4, after Elgohary et al. CLA): compression
// ratio and operation throughput on low-cardinality (encoded/categorical)
// data vs. the uncompressed kernels. Columns are derived from latent
// categorical factors, so adjacent columns are correlated and the planner's
// co-coding pass folds them into multi-column DDC groups — the workload
// shape of one-hot/dummy-coded ML inputs. Results land in
// BENCH_compression.json: on this data the compressed form should be >=4x
// smaller and compressed tsmm/matvec >=2x faster than uncompressed.

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "common/util.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/compress/planner.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

using namespace sysds;

namespace {

// Each run of 8 adjacent columns is a deterministic function of one latent
// categorical factor with `card` levels (column j scales its factor by
// j%8+1), mirroring dummy-coded feature blocks.
MatrixBlock CorrelatedCategorical(int64_t rows, int64_t cols, int card,
                                  uint64_t seed) {
  MatrixBlock out = MatrixBlock::Dense(rows, cols);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t r = 0; r < rows; ++r) {
    double* row = out.DenseRow(r);
    for (int64_t c = 0; c < cols; c += 8) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      // Levels 1..card: dense low-cardinality data (zero cells would let
      // the uncompressed kernels sparsity-skip, muddying the comparison).
      double factor = static_cast<double>((state >> 33) % card + 1);
      for (int64_t j = c; j < std::min(cols, c + 8); ++j) {
        row[j] = factor * static_cast<double>(j % 8 + 1);
      }
    }
  }
  out.MarkNnzDirty();
  return out;
}

double TimeIt(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows * 16, cols = scale.cols / 2;
  int reps = std::max(7, scale.repetitions);
  const int threads = 4;

  std::printf("# Compressed LA: uncompressed vs compressed kernels "
              "(%lld x %lld, %d threads)\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              threads);
  std::printf("%-6s%8s%12s%12s%12s%12s%12s\n", "card", "ratio", "compress",
              "matvec_x", "tsmm_x", "leftmv_x", "sum_x");

  JsonResultWriter json("BENCH_compression.json");
  for (int card : {2, 16, 128}) {
    MatrixBlock m = CorrelatedCategorical(rows, cols, card, card);
    auto v = RandMatrix(cols, 1, -1, 1, 1.0, 98, RandPdf::kUniform, 1);
    auto y = RandMatrix(rows, 1, -1, 1, 1.0, 99, RandPdf::kUniform, 1);

    Timer tc;
    CompressionSettings settings;
    settings.max_group_cols = 8;  // dummy-coded blocks co-code widely
    CompressionPlan plan = CompressionPlanner::Plan(m, settings);
    CompressedMatrixBlock c =
        CompressedMatrixBlock::Compress(m, plan, threads);
    double compress_s = tc.ElapsedSeconds();
    double ratio = c.CompressionRatio();

    double mv_u = TimeIt([&] { auto r = MatMult(m, *v, threads); (void)r; },
                         reps);
    double mv_c = TimeIt([&] { auto r = c.RightMatMult(*v, threads);
                               (void)r; }, reps);
    double tsmm_u = TimeIt([&] {
      auto r = TransposeSelfMatMult(m, true, threads);
      (void)r;
    }, reps);
    double tsmm_c = TimeIt([&] { auto r = c.TsmmLeft(threads); (void)r; },
                           reps);
    double lmv_u = TimeIt([&] {
      auto r = TransposeLeftMatMult(m, *y, threads);
      (void)r;
    }, reps);
    double lmv_c = TimeIt([&] { auto r = c.LeftMatMult(*y, threads);
                                (void)r; }, reps);
    double sum_u = TimeIt([&] {
      auto s = AggregateAll(AggOpCode::kSum, m, threads);
      (void)s;
    }, reps);
    double sum_c = TimeIt([&] { volatile double s = c.Sum(threads);
                                (void)s; }, reps);

    std::printf("%-6d%8.2f%11.4fs%12.2f%12.2f%12.2f%12.2f\n", card, ratio,
                compress_s, mv_u / mv_c, tsmm_u / tsmm_c, lmv_u / lmv_c,
                sum_u / sum_c);
    char name[64];
    std::snprintf(name, sizeof(name), "compression_card%d", card);
    json.Add(name, {{"compression_ratio", ratio},
                    {"compress_seconds", compress_s},
                    {"compressed_columns",
                     static_cast<double>(c.NumCompressedColumns())},
                    {"matvec_uncompressed_s", mv_u},
                    {"matvec_compressed_s", mv_c},
                    {"matvec_speedup", mv_u / mv_c},
                    {"tsmm_uncompressed_s", tsmm_u},
                    {"tsmm_compressed_s", tsmm_c},
                    {"tsmm_speedup", tsmm_u / tsmm_c},
                    {"leftmatvec_speedup", lmv_u / lmv_c},
                    {"sum_speedup", sum_u / sum_c}});
  }

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write BENCH_compression.json\n");
    return 1;
  }
  return 0;
}
