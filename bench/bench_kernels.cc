// Ablation A1 (§4.2 observation 2): dense GEMM kernel comparison — the
// portable dot-product-ordered kernel (the stand-in for SystemDS's Java
// matmult, which "does not compile packed SIMD instructions") vs. the
// cache-blocked vectorizer-friendly kernel (SysDS-B / native BLAS path).
// The paper reports the portable kernel ~2.1x slower; also covers tsmm,
// sparse-dense, and transpose micro-kernels.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"

namespace {

using namespace sysds;

MatrixBlock MakeDense(int64_t rows, int64_t cols, uint64_t seed) {
  auto m = RandMatrix(rows, cols, -1.0, 1.0, 1.0, seed, RandPdf::kUniform, 1);
  return *m;
}

MatrixBlock MakeSparse(int64_t rows, int64_t cols, double sparsity,
                       uint64_t seed) {
  auto m = RandMatrix(rows, cols, -1.0, 1.0, sparsity, seed,
                      RandPdf::kUniform, 1);
  return *m;
}

void BM_GemmPortable(benchmark::State& state) {
  int64_t n = state.range(0);
  MatrixBlock a = MakeDense(n, n, 1), b = MakeDense(n, n, 2);
  SetGemmKernel(GemmKernel::kPortable);
  for (auto _ : state) {
    auto c = MatMult(a, b, 1);
    benchmark::DoNotOptimize(c->DenseData());
  }
  SetGemmKernel(GemmKernel::kNative);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmPortable)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNative(benchmark::State& state) {
  int64_t n = state.range(0);
  MatrixBlock a = MakeDense(n, n, 1), b = MakeDense(n, n, 2);
  SetGemmKernel(GemmKernel::kNative);
  for (auto _ : state) {
    auto c = MatMult(a, b, 1);
    benchmark::DoNotOptimize(c->DenseData());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNative)->Arg(128)->Arg(256)->Arg(512);

void BM_TsmmDense(benchmark::State& state) {
  int64_t rows = state.range(0), cols = 128;
  MatrixBlock x = MakeDense(rows, cols, 3);
  for (auto _ : state) {
    auto c = TransposeSelfMatMult(x, true, DefaultParallelism());
    benchmark::DoNotOptimize(c->DenseData());
  }
}
BENCHMARK(BM_TsmmDense)->Arg(2048)->Arg(8192);

void BM_TsmmSparse(benchmark::State& state) {
  int64_t rows = state.range(0), cols = 128;
  MatrixBlock x = MakeSparse(rows, cols, 0.1, 3);
  for (auto _ : state) {
    auto c = TransposeSelfMatMult(x, true, DefaultParallelism());
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_TsmmSparse)->Arg(2048)->Arg(8192);

// The unfused alternative to tsmm: materialized transpose + matmult — the
// cost TF pays on sparse data (§4.2 observation 3).
void BM_TransposeThenMatMult(benchmark::State& state) {
  int64_t rows = state.range(0), cols = 128;
  MatrixBlock x = MakeSparse(rows, cols, 0.1, 3);
  for (auto _ : state) {
    MatrixBlock xt = Transpose(x, 1);
    auto c = MatMult(xt, x, DefaultParallelism());
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_TransposeThenMatMult)->Arg(2048)->Arg(8192);

void BM_SparseDenseMatVec(benchmark::State& state) {
  int64_t rows = state.range(0), cols = 512;
  MatrixBlock x = MakeSparse(rows, cols, 0.05, 4);
  MatrixBlock v = MakeDense(cols, 1, 5);
  for (auto _ : state) {
    auto c = MatMult(x, v, 1);
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_SparseDenseMatVec)->Arg(8192)->Arg(32768);

void BM_TransposeDense(benchmark::State& state) {
  int64_t n = state.range(0);
  MatrixBlock x = MakeDense(n, n, 6);
  for (auto _ : state) {
    MatrixBlock xt = Transpose(x, DefaultParallelism());
    benchmark::DoNotOptimize(xt.DenseData());
  }
}
BENCHMARK(BM_TransposeDense)->Arg(512)->Arg(1024);

}  // namespace

// Standard google-benchmark main plus a default JSON sink: results land in
// BENCH_kernels.json (cwd) unless --benchmark_out= overrides it.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args = sysds_bench::WithDefaultJsonOut(
      argc, argv, "BENCH_kernels.json", &storage);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
