// Parallel data-prep pipeline (§4.2 multi-threaded transforms): Fit/Apply
// thread scaling and the direct-to-compressed encode sink vs. the classic
// dense-encode-then-compress route, on a Criteo-style categorical ingest
// workload (many low/mid-cardinality dummy-coded columns plus numerics).
// Results land in BENCH_transform.json: the chunked Apply should be >=2x
// the cell-at-a-time serial reference at 8 threads, and direct-to-
// compressed should beat dense+compress on both time and peak bytes.

#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "common/util.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/frame/frame_block.h"
#include "runtime/frame/transform.h"

using namespace sysds;

namespace {

// Criteo-shape frame: 8 categorical columns with cardinalities 3..5000 (all
// recoded, low-card ones dummy-coded) and 2 numeric columns (one with NaN
// holes for mean-impute, one equi-height binned).
FrameBlock CriteoFrame(int64_t rows, uint64_t seed) {
  const int kCats = 8;
  const int64_t cards[kCats] = {3, 5, 9, 17, 40, 200, 1000, 5000};
  std::vector<ValueType> schema(kCats, ValueType::kString);
  schema.push_back(ValueType::kFP64);
  schema.push_back(ValueType::kFP64);
  std::vector<std::string> names;
  for (int c = 0; c < kCats; ++c) names.push_back("c" + std::to_string(c));
  names.push_back("n0");
  names.push_back("n1");
  FrameBlock f(rows, schema, names);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < kCats; ++c) {
      f.SetString(r, c, "v" + std::to_string(next() % cards[c]));
    }
    double n0 = next() % 97 == 0 ? std::nan("")
                                 : static_cast<double>(next() % 10000) / 10.0;
    f.SetDouble(r, kCats, n0);
    f.SetDouble(r, kCats + 1, static_cast<double>(next() % 100000) / 100.0);
  }
  return f;
}

const char* kSpec =
    R"({"recode":["c0","c1","c2","c3","c4","c5","c6","c7"],
        "dummycode":["c0","c1","c2","c3","c4"],
        "impute":[{"name":"n0","method":"mean"}],
        "bin":[{"name":"n1","method":"equi-height","numbins":16}]})";

double TimeIt(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows * 8;
  int reps = std::max(3, scale.repetitions);

  FrameBlock f = CriteoFrame(rows, 42);
  auto spec = ParseTransformSpec(kSpec, f);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  std::printf("# transformencode: fit/apply scaling and output sinks "
              "(%lld rows, 10 cols)\n", static_cast<long long>(rows));
  JsonResultWriter json("BENCH_transform.json");

  // --- Fit and Apply thread scaling -------------------------------------
  std::printf("%-10s%12s%12s\n", "threads", "fit_s", "apply_s");
  double fit1 = 0.0, apply1 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double fit_s = TimeIt(
        [&] { (void)MultiColumnEncoder::Fit(f, *spec, threads); }, reps);
    auto enc = MultiColumnEncoder::Fit(f, *spec, threads);
    EncodeOptions opts;
    opts.num_threads = threads;
    double apply_s = TimeIt([&] { (void)enc->Apply(f, opts); }, reps);
    if (threads == 1) { fit1 = fit_s; apply1 = apply_s; }
    std::printf("%-10d%12.4f%12.4f\n", threads, fit_s, apply_s);
    json.Add("scaling_t" + std::to_string(threads),
             {{"threads", threads},
              {"fit_seconds", fit_s},
              {"apply_seconds", apply_s},
              {"fit_speedup", fit1 / fit_s},
              {"apply_speedup", apply1 / apply_s}});
  }

  // --- Chunked Apply vs the cell-at-a-time serial reference -------------
  auto enc = MultiColumnEncoder::Fit(f, *spec, 4);
  double ref_s =
      TimeIt([&] { (void)enc->ApplyReferenceSerial(f); }, reps);
  EncodeOptions opts8;
  opts8.num_threads = 8;
  double apply8_s = TimeIt([&] { (void)enc->Apply(f, opts8); }, reps);
  std::printf("reference_serial %.4fs, apply(8t) %.4fs, speedup %.2fx\n",
              ref_s, apply8_s, ref_s / apply8_s);
  json.Add("apply_vs_reference",
           {{"reference_seconds", ref_s},
            {"apply8_seconds", apply8_s},
            {"speedup", ref_s / apply8_s}});

  // --- Direct-to-compressed vs dense encode + compress ------------------
  EncodeOptions dense_opts;
  dense_opts.num_threads = 8;
  EncodeOptions comp_opts;
  comp_opts.output = TransformOutputFormat::kCompressed;
  comp_opts.num_threads = 8;

  double direct_s = TimeIt([&] { (void)enc->Apply(f, comp_opts); }, reps);
  double dense_then_compress_s = TimeIt(
      [&] {
        auto x = enc->Apply(f, dense_opts);
        (void)CompressedMatrixBlock::Compress(x->Dense());
      },
      reps);

  auto direct = enc->Apply(f, comp_opts);
  auto dense = enc->Apply(f, dense_opts);
  double compressed_bytes =
      static_cast<double>(direct->Compressed().EstimateSizeInBytes());
  double dense_bytes = 8.0 * static_cast<double>(rows) *
                       static_cast<double>(enc->NumOutputCols());
  // Peak transient bytes: the direct sink stages 2-byte codes per input
  // column group alongside the growing compressed block; the classic route
  // holds the full dense block and the compressed copy simultaneously.
  double direct_peak =
      compressed_bytes +
      2.0 * static_cast<double>(rows) * static_cast<double>(f.Cols());
  double dense_peak = dense_bytes + compressed_bytes;
  std::printf("direct %.4fs peak %.1fMB | dense+compress %.4fs peak %.1fMB "
              "| ratio %.2fx\n",
              direct_s, direct_peak / 1e6, dense_then_compress_s,
              dense_peak / 1e6, dense_bytes / compressed_bytes);
  json.Add("direct_vs_dense_compress",
           {{"direct_seconds", direct_s},
            {"dense_then_compress_seconds", dense_then_compress_s},
            {"time_speedup", dense_then_compress_s / direct_s},
            {"direct_peak_bytes", direct_peak},
            {"dense_peak_bytes", dense_peak},
            {"dense_bytes", dense_bytes},
            {"compressed_bytes", compressed_bytes},
            {"compression_ratio", dense_bytes / compressed_bytes}});

  if (!json.Write()) {
    std::fprintf(stderr, "failed to write BENCH_transform.json\n");
    return 1;
  }
  return 0;
}
