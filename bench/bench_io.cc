// Ablation A6 (§3.2 / §4.2 observation 1): data ingestion. Multi-threaded
// CSV parsing vs single-threaded (string-to-double parsing is compute-
// intensive), the binary block format, and the generated readers from
// format descriptors.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "io/format_descriptor.h"
#include "io/io.h"
#include "runtime/matrix/lib_datagen.h"

using namespace sysds;

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows * 4, cols = scale.cols;

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sysds_bench_io";
  std::filesystem::create_directories(dir);
  std::string csv = (dir / "X.csv").string();
  std::string bin = (dir / "X.bin").string();

  auto x = RandMatrix(rows, cols, 0.0, 1.0, 1.0, 1, RandPdf::kUniform, 1);
  if (!io::Write(*x, csv, FormatDescriptor::Csv()).ok() ||
      !io::Write(*x, bin, FormatDescriptor::Binary()).ok()) {
    return 1;
  }
  double csv_mb =
      static_cast<double>(std::filesystem::file_size(csv)) / 1e6;

  std::printf("# A6 I/O: %lld x %lld matrix, csv %.1f MB\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              csv_mb);
  std::printf("%-34s%14s%14s\n", "reader", "seconds", "MB/s");

  auto report = [&](const char* name, double secs) {
    std::printf("%-34s%14.4f%14.1f\n", name, secs,
                secs > 0 ? csv_mb / secs : 0.0);
  };

  {
    Timer t;
    auto m = io::Read(csv, FormatDescriptor::Csv(',', false, 1));
    report("csv single-threaded", t.ElapsedSeconds());
    if (!m->EqualsApprox(*x, 1e-9)) return 1;
  }
  {
    Timer t;
    auto m = io::Read(
        csv, FormatDescriptor::Csv(',', false, DefaultParallelism()));
    report("csv multi-threaded", t.ElapsedSeconds());
    if (!m->EqualsApprox(*x, 1e-9)) return 1;
  }
  {
    Timer t;
    auto m = io::Read(bin, FormatDescriptor::Binary());
    report("binary block format", t.ElapsedSeconds());
    if (!m->EqualsApprox(*x, 1e-9)) return 1;
  }
  {
    // Generated reader from a format descriptor (typed columns).
    std::string desc_json = R"({"kind":"delimited","delimiter":",","columns":[)";
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) desc_json += ",";
      desc_json += R"({"name":"c)" + std::to_string(c) + R"(","type":"fp64"})";
    }
    desc_json += "]}";
    auto desc = ParseFormatDescriptor(desc_json);
    Timer t;
    auto frame = io::ReadFrame(csv, *desc);
    report("generated reader (frame)", t.ElapsedSeconds());
    if (!frame.ok()) return 1;
  }
  std::filesystem::remove_all(dir);
  return 0;
}
