// Figure 5(c): lineage-based reuse of intermediates on DENSE data (§3.1 /
// §4.3). SysDS vs SysDS with reuse for increasing numbers of models k.
// Expected shape (paper): without reuse, time grows linearly in k; with
// reuse, t(X)X and t(X)y are computed once and only the per-lambda solves
// remain, giving a large end-to-end speedup at k=70 (paper: 4.6x).

#include <cstdio>
#include <filesystem>

#include "baselines/baselines.h"
#include "bench/bench_common.h"

int main() {
  using namespace sysds;
  using namespace sysds_bench;
  Scale scale = GetScale();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sysds_bench_fig5c";
  std::filesystem::create_directories(dir);
  std::string x_csv = (dir / "X.csv").string();
  std::string y_csv = (dir / "y.csv").string();
  std::string out_csv = (dir / "B.csv").string();

  Status gen = GenerateSweepData(scale.rows, scale.cols, /*sparsity=*/1.0,
                                 42, x_csv, y_csv);
  if (!gen.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", gen.ToString().c_str());
    return 1;
  }

  PrintHeader("Figure 5(c): reuse dense, end-to-end seconds", "k_models",
              {"SysDS", "SysDS+Reuse", "Speedup"});
  for (int k : scale.model_counts) {
    SweepWorkload w;
    w.x_csv = x_csv;
    w.y_csv = y_csv;
    w.out_csv = out_csv;
    for (int i = 0; i < k; ++i) w.lambdas.push_back(0.001 * (i + 1));
    auto base = RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/false);
    auto reuse = RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/true);
    if (!base.ok() || !reuse.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    PrintRow(k, {base->total_seconds, reuse->total_seconds,
                 base->total_seconds / reuse->total_seconds});
  }
  std::filesystem::remove_all(dir);
  return 0;
}
