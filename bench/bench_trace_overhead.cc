// Observability overhead: kernel/interpreter throughput with the tracer
// compiled in but disabled (the always-on production configuration) versus
// enabled, against the pre-obs baseline shape (statistics off).
//
// The acceptance bar is < 2% slowdown with tracing compiled in but
// disabled: an inactive ScopedSpan must cost one relaxed atomic load.

#include <cstdio>
#include <string>

#include "api/systemds_context.h"
#include "bench/bench_common.h"
#include "common/statistics.h"
#include "common/util.h"
#include "obs/trace.h"

using namespace sysds;

namespace {

// Instruction-dense loop: many small CP instructions so per-instruction
// span overhead dominates over kernel time.
std::string MakeScript(int64_t rows, int64_t cols) {
  return "X = rand(rows=" + std::to_string(rows) +
         ", cols=" + std::to_string(cols) +
         ", seed=1)\n"
         "s = 0\n"
         "for (i in 1:200) {\n"
         "  Y = X * 2 + i\n"
         "  s = s + sum(Y)\n"
         "}\n";
}

double RunOnce(const std::string& script) {
  SystemDSContext ctx;
  Timer timer;
  auto r = ctx.Execute(script, {}, {});
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return -1;
  }
  return timer.ElapsedSeconds();
}

double Best(const std::string& script, int reps) {
  double best = -1;
  for (int i = 0; i < reps; ++i) {
    double t = RunOnce(script);
    if (t >= 0 && (best < 0 || t < best)) best = t;
  }
  return best;
}

// Micro cost of one disabled/enabled span, in nanoseconds.
double SpanCostNanos(int64_t iters) {
  Timer timer;
  for (int64_t i = 0; i < iters; ++i) {
    obs::ScopedSpan span("bench", "noop");
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int reps = scale.repetitions + 2;
  std::string script = MakeScript(scale.rows / 8, scale.cols);

  obs::Tracer::Get().Disable();
  double disabled = Best(script, reps);
  obs::Tracer::Get().Enable();
  double enabled = Best(script, reps);
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();

  std::printf("# trace overhead (200-iteration instruction-dense loop)\n");
  std::printf("%-32s%14.4f s\n", "tracing compiled in, disabled", disabled);
  std::printf("%-32s%14.4f s\n", "tracing enabled", enabled);
  std::printf("%-32s%14.2f %%\n", "enabled overhead",
              disabled > 0 ? (enabled / disabled - 1.0) * 100.0 : 0.0);

  int64_t iters = 10 * 1000 * 1000;
  double cost_disabled = SpanCostNanos(iters);
  obs::Tracer::Get().Enable();
  double cost_enabled = SpanCostNanos(iters);
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
  std::printf("\n# per-span micro cost\n");
  std::printf("%-32s%14.2f ns\n", "disabled span", cost_disabled);
  std::printf("%-32s%14.2f ns\n", "enabled span", cost_enabled);
  return 0;
}
