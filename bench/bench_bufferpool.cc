// Buffer-pool benchmark: the async memory manager vs its synchronous
// baseline. Covers (1) eviction stall — cumulative caller-blocking spill
// time for an over-limit allocation storm, write-behind on vs off; (2)
// loop wall-time with hint-driven prefetch on vs off for an iterative
// script whose invariant operands spill every iteration; (3) 2Q scan
// resistance vs plain LRU (demand restores of the hot working set after a
// one-touch scan). Results land in BENCH_bufferpool.json. The stall and
// scan assertions arm at every scale (they measure where work happens, not
// wall-clock scaling); the prefetch speedup assertion needs >= 4 cores,
// like the scheduler bench.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/systemds_context.h"
#include "bench/bench_common.h"
#include "common/util.h"
#include "obs/metrics.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/controlprog/data.h"

using namespace sysds;

namespace {

double StallSeconds() {
  return static_cast<double>(obs::MetricsRegistry::Get()
                                 .GetHistogram("bufferpool.evict_stall_ns")
                                 ->Sum()) /
         1e9;
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

int64_t RestoreCount() {
  return obs::MetricsRegistry::Get()
      .GetHistogram("bufferpool.restore_ns")
      ->Count();
}

struct StormResult {
  double wall_s = 0;
  double stall_s = 0;
  int64_t free_drops = 0;
};

/// Allocation storm: `nobjs` blocks of dim x dim doubles stream through a
/// pool that holds only `limit_objs` of them, with per-block compute (a
/// full-block sum via AcquireRead, roughly the cost of the spill write)
/// between allocations — the window a background writer hides writes in.
StormResult RunStorm(int64_t dim, int nobjs, int limit_objs,
                     bool write_behind) {
  BufferPool::Options opt;
  opt.limit_bytes = limit_objs * dim * dim * 8;
  opt.write_behind = write_behind;
  opt.prefetch = false;
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);

  StormResult r;
  double stall_before = StallSeconds();
  int64_t drops_before = CounterValue("bufferpool.free_drops");
  Timer t;
  std::vector<std::shared_ptr<MatrixObject>> objs;
  objs.reserve(static_cast<size_t>(nobjs));
  double sink = 0;
  for (int i = 0; i < nobjs; ++i) {
    objs.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(dim, dim, static_cast<double>(i))));
    auto read = objs.back()->AcquireRead();
    if (read.ok()) {
      // ~4 flop-passes over the block — a compute-bound instruction mix
      // where spill writes fit in the window even on few cores.
      for (int pass = 0; pass < 4; ++pass) {
        for (int64_t row = 0; row < dim; ++row) {
          for (int64_t c = 0; c < dim; ++c) sink += (*read)->Get(row, c);
        }
      }
      objs.back()->Release();
    }
  }
  pool.Drain();
  r.wall_s = t.ElapsedSeconds();
  r.stall_s = StallSeconds() - stall_before;
  r.free_drops = CounterValue("bufferpool.free_drops") - drops_before;
  if (sink == 12345.6789) std::printf("%f\n", sink);  // keep the compute
  MatrixObject::SetBufferPool(nullptr);
  return r;
}

/// Iterative script whose two rand inputs are loop-invariant reads: with a
/// pool far below the working set they spill every iteration, and the
/// loop-liveness hints let the prefetcher restore them ahead of demand.
double RunLoop(int64_t rows, bool prefetch, int64_t limit_bytes) {
  auto ctx = SystemDSContext::Builder()
                 .BufferPoolLimit(limit_bytes)
                 .BufferPoolWriteBehind(true)
                 .BufferPoolPrefetch(prefetch)
                 .Build();
  char script[512];
  std::snprintf(script, sizeof(script), R"(
    X = rand(rows=%lld, cols=100, min=0, max=1, seed=42)
    Y = rand(rows=%lld, cols=100, min=0, max=1, seed=43)
    acc = matrix(0, rows=100, cols=100)
    for (i in 1:8) {
      G = t(X) %%*%% Y
      acc = acc + G * (1.0 / i)
    }
    out = sum(acc)
  )",
                static_cast<long long>(rows), static_cast<long long>(rows));
  Timer t;
  auto result = ctx->Execute(script, Inputs(), Outputs("out"));
  if (!result.ok()) {
    std::fprintf(stderr, "loop script failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return t.ElapsedSeconds();
}

/// Scan workload for the eviction policy: a re-referenced hot block, then a
/// one-touch scan of 2x the pool, then the hot block is demanded again.
/// Returns the number of demand disk restores that re-access costs.
int64_t RunScan(int64_t dim, BufferPool::EvictionPolicy policy) {
  BufferPool::Options opt;
  opt.limit_bytes = 5 * dim * dim * 8;
  opt.policy = policy;
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  auto hot = std::make_shared<MatrixObject>(MatrixBlock::Dense(dim, dim, 1.0));
  for (int i = 0; i < 3; ++i) {
    auto r = hot->AcquireRead();
    if (r.ok()) hot->Release();
  }
  std::vector<std::shared_ptr<MatrixObject>> scan;
  for (int i = 0; i < 10; ++i) {
    scan.push_back(
        std::make_shared<MatrixObject>(MatrixBlock::Dense(dim, dim, 2.0)));
  }
  pool.Drain();
  int64_t restores_before = RestoreCount();
  auto r = hot->AcquireRead();
  if (r.ok()) hot->Release();
  int64_t restores = RestoreCount() - restores_before;
  MatrixObject::SetBufferPool(nullptr);
  return restores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysds_bench;
  ApplySmokeFlag(argc, argv);
  Scale scale = GetScale();
  JsonResultWriter out("BENCH_bufferpool.json");
  const bool assert_scaling = std::thread::hardware_concurrency() >= 4;
  bool failed = false;

  // Block edge and counts per scale: tiny stays in the milliseconds, paper
  // streams ~128MB through a 16MB pool.
  const int64_t dim = scale.rows >= 100000 ? 512 : (scale.rows >= 8000 ? 128 : 64);
  const int nobjs = scale.rows >= 100000 ? 64 : (scale.rows >= 8000 ? 48 : 16);
  const int limit_objs = scale.rows >= 100000 ? 8 : 4;
  const int reps = std::max(1, scale.repetitions);

  // ------------------------------------------------------------------
  // (1) Eviction stall: write-behind moves spill writes off the allocating
  // thread, so cumulative caller-blocking time must collapse.
  StormResult sync_r, async_r;
  sync_r.stall_s = sync_r.wall_s = 1e30;
  async_r.stall_s = async_r.wall_s = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    StormResult s = RunStorm(dim, nobjs, limit_objs, /*write_behind=*/false);
    StormResult a = RunStorm(dim, nobjs, limit_objs, /*write_behind=*/true);
    if (s.stall_s < sync_r.stall_s) sync_r = s;
    if (a.stall_s < async_r.stall_s) async_r = a;
  }
  double stall_reduction =
      sync_r.stall_s / std::max(async_r.stall_s, 1e-9);
  std::printf("# bufferpool: %d x %lldx%lld blocks through a %d-block pool\n",
              nobjs, (long long)dim, (long long)dim, limit_objs);
  std::printf("%-24s%14s%14s%14s\n", "mode", "stall_s", "wall_s", "freedrops");
  std::printf("%-24s%14.5f%14.5f%14lld\n", "sync eviction", sync_r.stall_s,
              sync_r.wall_s, (long long)sync_r.free_drops);
  std::printf("%-24s%14.5f%14.5f%14lld\n", "write-behind", async_r.stall_s,
              async_r.wall_s, (long long)async_r.free_drops);
  std::printf("eviction stall reduction: %.2fx\n", stall_reduction);
  out.Add("eviction_stall", {{"sync_stall_s", sync_r.stall_s},
                             {"async_stall_s", async_r.stall_s},
                             {"reduction", stall_reduction},
                             {"sync_wall_s", sync_r.wall_s},
                             {"async_wall_s", async_r.wall_s},
                             {"async_free_drops",
                              static_cast<double>(async_r.free_drops)}});
  // At tiny (smoke) scale the 32KB writes are on par with per-pass fixed
  // overheads and the ratio is noise; the claim is asserted at real scales.
  if (scale.rows >= 8000 && stall_reduction < 2.0) {
    std::fprintf(stderr, "FAIL: eviction stall only %.2fx reduced (< 2x)\n",
                 stall_reduction);
    failed = true;
  }
  if (async_r.free_drops <= 0) {
    std::fprintf(stderr, "FAIL: write-behind produced no free drops\n");
    failed = true;
  }

  // ------------------------------------------------------------------
  // (2) Prefetch: iterative loop over spilled invariant operands.
  {
    const int64_t rows = scale.rows >= 100000 ? 4000 : 400;
    const int64_t limit = 64 * 1024;
    int64_t hits_before = CounterValue("bufferpool.prefetch_hits");
    int64_t issued_before = CounterValue("bufferpool.prefetch_issued");
    double with_pf = 1e30, without_pf = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      without_pf = std::min(without_pf, RunLoop(rows, false, limit));
      with_pf = std::min(with_pf, RunLoop(rows, true, limit));
    }
    int64_t hits = CounterValue("bufferpool.prefetch_hits") - hits_before;
    int64_t issued = CounterValue("bufferpool.prefetch_issued") - issued_before;
    double speedup = without_pf / with_pf;
    std::printf("\n# bufferpool: 8-iter loop, %lldx100 operands, 64KB pool\n",
                (long long)rows);
    std::printf("%-24s%14.5f\n%-24s%14.5f\nprefetch speedup: %.2fx"
                " (%lld prefetch hits)\n",
                "demand paging", without_pf, "hinted prefetch", with_pf,
                speedup, (long long)hits);
    out.Add("loop_prefetch", {{"demand_s", without_pf},
                              {"prefetch_s", with_pf},
                              {"speedup", speedup},
                              {"prefetch_issued", static_cast<double>(issued)},
                              {"prefetch_hits", static_cast<double>(hits)}});
    if (issued <= 0) {
      std::fprintf(stderr, "FAIL: loop hints issued no prefetches\n");
      failed = true;
    }
    // Hit-rate and wall-clock overlap need spare cores: on a single-core
    // machine the demand read always wins the race against the background
    // restore, so only the issue count is load-bearing there.
    if (assert_scaling && hits <= 0) {
      std::fprintf(stderr, "FAIL: loop hints produced no prefetch hits\n");
      failed = true;
    }
    if (assert_scaling && speedup < 1.0) {
      std::fprintf(stderr, "FAIL: prefetch slower than demand paging "
                           "(%.2fx)\n", speedup);
      failed = true;
    }
  }

  // ------------------------------------------------------------------
  // (3) Scan resistance: after a one-touch scan 2x the pool, re-accessing
  // the re-referenced hot block must be free under 2Q (protected queue)
  // and a disk restore under LRU.
  {
    int64_t restores_2q = RunScan(dim, BufferPool::EvictionPolicy::k2Q);
    int64_t restores_lru = RunScan(dim, BufferPool::EvictionPolicy::kLru);
    std::printf("\n# bufferpool: hot-block demand restores after scan\n");
    std::printf("%-24s%14lld\n%-24s%14lld\n", "2Q", (long long)restores_2q,
                "LRU", (long long)restores_lru);
    out.Add("scan_resistance",
            {{"restores_2q", static_cast<double>(restores_2q)},
             {"restores_lru", static_cast<double>(restores_lru)}});
    if (restores_2q >= restores_lru && restores_lru > 0) {
      std::fprintf(stderr, "FAIL: 2Q no better than LRU under scan\n");
      failed = true;
    }
  }

  if (!out.Write()) {
    std::fprintf(stderr, "failed to write BENCH_bufferpool.json\n");
    return 1;
  }
  return failed ? 1 : 0;
}
