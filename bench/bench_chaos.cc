// Chaos-mode cost model: (1) the price of leaving the fault-injection
// hooks compiled into release builds when the injector is disabled — the
// target is <1% of federated op latency; (2) recovery latency as a
// function of the injected message-drop rate for a federated matrix-vector
// workload (retries + exponential backoff are the dominant term).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/faults.h"
#include "common/util.h"
#include "fed/federated.h"
#include "obs/metrics.h"
#include "runtime/matrix/lib_datagen.h"

using namespace sysds;

namespace {

int64_t Counter(const char* name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

FaultConfig DropConfig(double drop_prob) {
  FaultConfig c;
  c.enabled = true;
  c.seed = 1;
  c.profile.drop_prob = drop_prob;
  return c;
}

}  // namespace

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows, cols = std::min<int64_t>(scale.cols, 64);
  const int kSites = 4;
  const int kReps = 20;

  auto x = RandMatrix(rows, cols, -1, 1, 1.0, 7, RandPdf::kUniform, 1);
  auto v = RandMatrix(cols, 1, -1, 1, 1.0, 8, RandPdf::kUniform, 1);
  FederatedRegistry registry(kSites);
  auto fx = FederatedMatrix::Distribute(&registry, *x, "X");
  if (!fx.ok()) {
    std::fprintf(stderr, "distribute failed: %s\n",
                 fx.status().ToString().c_str());
    return 1;
  }

  // --- Part 1: disabled-hook overhead ------------------------------------
  // Baseline federated matvec with the injector disabled.
  FaultInjector::Get().Disable();
  Timer t0;
  for (int r = 0; r < kReps; ++r) {
    if (!fx->MatVec(*v).ok()) return 1;
  }
  double op_ns = t0.ElapsedSeconds() * 1e9 / kReps;

  // Cost of one disabled hook (relaxed atomic load + branch).
  const int64_t kHookCalls = 10 * 1000 * 1000;
  Timer t1;
  int64_t fired = 0;
  for (int64_t i = 0; i < kHookCalls; ++i) {
    fired += FaultInjector::Get().ShouldInject(
                 FaultLayer::kFederated, static_cast<int>(i & 3),
                 FaultKind::kMessageDrop)
                 ? 1
                 : 0;
  }
  double hook_ns = t1.ElapsedSeconds() * 1e9 / static_cast<double>(kHookCalls);
  if (fired != 0) return 1;  // disabled hooks must never fire

  // Hooks evaluated per op, measured with a zero-probability profile (the
  // injector counts decisions but never injects).
  double hooks_per_op;
  {
    ScopedFaultInjection chaos(DropConfig(0.0));
    int64_t before = FaultInjector::Get().Decisions();
    for (int r = 0; r < kReps; ++r) {
      if (!fx->MatVec(*v).ok()) return 1;
    }
    hooks_per_op = static_cast<double>(FaultInjector::Get().Decisions() -
                                       before) /
                   kReps;
  }
  double overhead_pct = 100.0 * hook_ns * hooks_per_op / op_ns;

  std::printf("# chaos hooks, disabled (%lld x %lld, %d sites)\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              kSites);
  std::printf("%-22s%14.2f\n", "matvec_us", op_ns / 1e3);
  std::printf("%-22s%14.3f\n", "hook_ns", hook_ns);
  std::printf("%-22s%14.1f\n", "hooks_per_matvec", hooks_per_op);
  std::printf("%-22s%14.4f  (target < 1)\n", "overhead_pct", overhead_pct);

  // --- Part 2: recovery latency vs fault rate ----------------------------
  std::printf("\n# federated matvec recovery latency vs message-drop rate\n");
  std::printf("%-12s%14s%14s%14s\n", "drop_rate", "matvec_ms", "retries",
              "timeouts");
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    ScopedFaultInjection chaos(DropConfig(rate));
    int64_t retries_before = Counter("fault.fed.retries");
    int64_t timeouts_before = Counter("fault.fed.timeouts");
    Timer t;
    for (int r = 0; r < kReps; ++r) {
      if (!fx->MatVec(*v).ok()) {
        std::fprintf(stderr, "matvec failed at drop rate %g\n", rate);
        return 1;
      }
    }
    double ms = t.ElapsedSeconds() * 1e3 / kReps;
    std::printf("%-12g%14.3f%14lld%14lld\n", rate, ms,
                static_cast<long long>(Counter("fault.fed.retries") -
                                       retries_before),
                static_cast<long long>(Counter("fault.fed.timeouts") -
                                       timeouts_before));
  }
  FaultInjector::Get().Disable();
  return 0;
}
