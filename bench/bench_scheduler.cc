// Scheduler benchmark: work-stealing pool vs the old global mutex+CV queue.
// Covers (1) flat kernel scaling and the dispatch-overhead delta against an
// in-bench reimplementation of the old pool, (2) nested parfor-over-matmult
// vs the old inline-serial nesting behaviour, and (3) per-chunk imbalance on
// skewed sparse rows with uniform vs cost-weighted chunking. Results land in
// BENCH_scheduler.json; the speedup/overhead assertions only arm on machines
// with >= 4 usable cores (single-core CI can't measure wall-clock scaling).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

using namespace sysds;

namespace {

// Faithful reimplementation of the pre-work-stealing pool: one global queue
// under a mutex, a broadcast CV, and ParallelFor chunks submitted as queue
// tasks joined via a counter+CV. Nested ParallelFor runs inline on the
// caller (the old deadlock-avoidance rule). Used as the dispatch-overhead
// and nesting baseline.
class OldMutexPool {
 public:
  explicit OldMutexPool(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  ~OldMutexPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ParallelFor(int64_t begin, int64_t end, int64_t num_chunks,
                   const std::function<void(int64_t, int64_t)>& fn) {
    int64_t n = end - begin;
    if (n <= 0) return;
    if (num_chunks <= 1 || workers_.empty() || InWorker()) {
      fn(begin, end);  // old rule: nested/parallel-less loops run inline
      return;
    }
    int64_t chunk = (n + num_chunks - 1) / num_chunks;
    std::mutex jmu;
    std::condition_variable jcv;
    int64_t outstanding = 0;
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t b = begin + c * chunk;
      int64_t e = std::min(end, b + chunk);
      if (b >= e) continue;
      ++outstanding;
      Submit([&, b, e] {
        fn(b, e);
        std::lock_guard<std::mutex> lock(jmu);
        if (--outstanding == 0) jcv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(jmu);
    jcv.wait(lock, [&] { return outstanding == 0; });
  }

 private:
  static bool& InWorkerFlag() {
    thread_local bool in_worker = false;
    return in_worker;
  }
  static bool InWorker() { return InWorkerFlag(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(task));
    }
    cv_.notify_all();
  }

  void WorkerLoop() {
    InWorkerFlag() = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

double MinSeconds(int reps, const std::function<void()>& body) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    body();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysds_bench;
  ApplySmokeFlag(argc, argv);
  Scale scale = GetScale();
  JsonResultWriter out("BENCH_scheduler.json");
  const int hw = DefaultParallelism();
  const bool assert_scaling =
      hw >= 4 && std::thread::hardware_concurrency() >= 4;
  bool failed = false;

  // ------------------------------------------------------------------
  // (1) Flat kernel scaling + overhead vs the old pool. Same row-chunked
  // dense GEMM body driven through both pools.
  const int64_t m = std::min<int64_t>(scale.rows / 8, 768);
  const int64_t k = 256, n = 256;
  auto a = *RandMatrix(m, k, -1.0, 1.0, 1.0, 1, RandPdf::kUniform, 1);
  auto b = *RandMatrix(k, n, -1.0, 1.0, 1.0, 2, RandPdf::kUniform, 1);
  MatrixBlock c = MatrixBlock::Dense(m, n);
  auto gemm_rows = [&](int64_t rb, int64_t re) {
    internal::GemmDenseTiled(a.DenseRow(rb), b.DenseData(), c.DenseRow(rb),
                             re - rb, n, k);
  };
  const int64_t chunks = PickChunks(m, hw);
  const int reps = std::max(3, scale.repetitions * 3);

  std::printf("# scheduler: flat dense gemm %lldx%lldx%lld, %lld chunks\n",
              (long long)m, (long long)k, (long long)n, (long long)chunks);
  std::printf("%-24s%14s\n", "pool", "seconds");
  double flat_new = MinSeconds(reps, [&] {
    ThreadPool::Global().ParallelFor(0, m, chunks, gemm_rows, "bench.flat");
  });
  std::printf("%-24s%14.5f\n", "work-stealing", flat_new);
  double flat_old;
  {
    OldMutexPool old_pool(static_cast<size_t>(hw));
    flat_old = MinSeconds(reps, [&] {
      old_pool.ParallelFor(0, m, chunks, gemm_rows);
    });
  }
  std::printf("%-24s%14.5f\n", "old mutex queue", flat_old);
  double overhead_pct = (flat_new - flat_old) / flat_old * 100.0;
  std::printf("flat overhead vs old: %+.2f%%\n", overhead_pct);
  out.Add("flat_gemm", {{"new_s", flat_new},
                        {"old_s", flat_old},
                        {"overhead_pct", overhead_pct}});
  if (assert_scaling && overhead_pct > 1.0) {
    std::fprintf(stderr, "FAIL: flat kernel overhead %.2f%% > 1%%\n",
                 overhead_pct);
    failed = true;
  }

  // ------------------------------------------------------------------
  // (2) Nested parfor-over-matmult. The old pool ran the inner loop inline
  // (serial); the helping join fans the inner chunks across all workers.
  {
    const int64_t outer = 8;
    const int64_t im = std::min<int64_t>(scale.rows / 16, 384);
    auto ia = *RandMatrix(im, k, -1.0, 1.0, 1.0, 3, RandPdf::kUniform, 1);
    std::vector<MatrixBlock> results(static_cast<size_t>(outer));
    auto body = [&](int64_t w) {
      results[static_cast<size_t>(w)] = *MatMult(ia, b, hw);
    };

    double nested_new = MinSeconds(scale.repetitions, [&] {
      ThreadPool::Global().ParallelFor(
          0, outer, outer,
          [&](int64_t wb, int64_t we) {
            for (int64_t w = wb; w < we; ++w) body(w);
          },
          "bench.nested");
    });
    // Old behaviour: the outer parfor got the workers, the inner matmult
    // collapsed to inline-serial on each of them.
    double nested_old;
    {
      OldMutexPool old_pool(static_cast<size_t>(hw));
      auto serial_body = [&](int64_t w) {
        MatrixBlock& r = results[static_cast<size_t>(w)];
        r = MatrixBlock::Dense(im, n);
        internal::GemmDenseTiled(ia.DenseData(), b.DenseData(),
                                 r.DenseData(), im, n, k);
      };
      nested_old = MinSeconds(scale.repetitions, [&] {
        old_pool.ParallelFor(0, outer, outer, [&](int64_t wb, int64_t we) {
          for (int64_t w = wb; w < we; ++w) serial_body(w);
        });
      });
    }
    double speedup = nested_old / nested_new;
    std::printf("\n# scheduler: nested parfor(%lld) x matmult %lldx%lldx%lld\n",
                (long long)outer, (long long)im, (long long)k, (long long)n);
    std::printf("%-24s%14.5f\n%-24s%14.5f\nnested speedup: %.2fx\n",
                "helping join", nested_new, "inline-serial (old)", nested_old,
                speedup);
    out.Add("nested_parfor_matmult", {{"new_s", nested_new},
                                      {"old_s", nested_old},
                                      {"speedup", speedup}});
    // The outer loop already saturates >= 8-way, so the old pool is only
    // beaten by better load balance; require 2x only when the outer width
    // exceeds the machine (paper setting). On >=4 cores require progress.
    if (assert_scaling && speedup < (outer > hw ? 2.0 : 0.9)) {
      std::fprintf(stderr, "FAIL: nested speedup %.2fx too low\n", speedup);
      failed = true;
    }
  }

  // ------------------------------------------------------------------
  // (3) Skewed sparse rows: per-chunk wall-time imbalance under uniform vs
  // cost-weighted chunking. Work per row is proportional to its nnz; 5% of
  // rows carry ~95% of the mass.
  {
    const int64_t rows = 4096;
    std::vector<int64_t> nnz(static_cast<size_t>(rows), 4);
    for (int64_t i = 0; i < rows / 20; ++i) nnz[static_cast<size_t>(i)] = 400;
    auto weight = [&](int64_t i) { return nnz[static_cast<size_t>(i)] + 1; };
    std::atomic<double> sink{0.0};
    auto row_work = [&](int64_t i) {
      double acc = 0;
      for (int64_t it = 0; it < nnz[static_cast<size_t>(i)] * 40; ++it) {
        acc += static_cast<double>((it * 2654435761u + i) & 0xff);
      }
      sink.store(acc, std::memory_order_relaxed);
    };
    const int64_t nchunks = PickChunks(rows, hw);
    auto imbalance = [](const std::vector<double>& chunk_s) {
      double sum = 0, mx = 0;
      int64_t cnt = 0;
      for (double v : chunk_s) {
        if (v == 0) continue;
        sum += v;
        mx = std::max(mx, v);
        ++cnt;
      }
      double mean = cnt ? sum / cnt : 0;
      return mean > 0 ? (mx - mean) / mean * 100.0 : 0.0;
    };

    std::vector<double> uni(static_cast<size_t>(nchunks), 0.0);
    int64_t chunk_rows = (rows + nchunks - 1) / nchunks;
    ThreadPool::Global().ParallelFor(0, rows, nchunks,
                                     [&](int64_t rb, int64_t re) {
                                       Timer t;
                                       for (int64_t i = rb; i < re; ++i)
                                         row_work(i);
                                       uni[static_cast<size_t>(
                                           rb / chunk_rows)] =
                                           t.ElapsedSeconds();
                                     });
    std::vector<double> wei(static_cast<size_t>(nchunks), 0.0);
    ThreadPool::Global().ParallelForWeighted(
        0, rows, nchunks, weight, [&](int64_t rb, int64_t re, int64_t ci) {
          Timer t;
          for (int64_t i = rb; i < re; ++i) row_work(i);
          wei[static_cast<size_t>(ci)] = t.ElapsedSeconds();
        });
    double imb_uni = imbalance(uni), imb_wei = imbalance(wei);
    std::printf("\n# scheduler: skewed rows, per-chunk (max-mean)/mean %%\n");
    std::printf("%-24s%14.1f\n%-24s%14.1f\n", "uniform chunks", imb_uni,
                "cost-weighted chunks", imb_wei);
    out.Add("skew_imbalance",
            {{"uniform_pct", imb_uni}, {"weighted_pct", imb_wei}});
    if (imb_wei > imb_uni * 1.1 + 5.0) {
      std::fprintf(stderr,
                   "FAIL: weighted chunking more imbalanced than uniform\n");
      failed = true;
    }
  }

  // ------------------------------------------------------------------
  // (4) Dispatch overhead: many tiny loops, pure scheduling cost.
  {
    const int64_t loops = 2000;
    std::atomic<int64_t> acc{0};
    auto tiny = [&](int64_t b, int64_t e) { acc += e - b; };
    double disp_new = MinSeconds(3, [&] {
      for (int64_t i = 0; i < loops; ++i) {
        ThreadPool::Global().ParallelFor(0, 64, 8, tiny);
      }
    });
    double disp_old;
    {
      OldMutexPool old_pool(static_cast<size_t>(hw));
      disp_old = MinSeconds(3, [&] {
        for (int64_t i = 0; i < loops; ++i) {
          old_pool.ParallelFor(0, 64, 8, tiny);
        }
      });
    }
    std::printf("\n# scheduler: dispatch cost, %lld tiny loops\n",
                (long long)loops);
    std::printf("%-24s%14.5f\n%-24s%14.5f\n", "work-stealing", disp_new,
                "old mutex queue", disp_old);
    out.Add("dispatch", {{"new_s", disp_new}, {"old_s", disp_old}});
  }

  if (!out.Write()) {
    std::fprintf(stderr, "failed to write BENCH_scheduler.json\n");
    return 1;
  }
  return failed ? 1 : 0;
}
