// Ablation A3 (§2.4): the n-dimensional blocking scheme with exponentially
// decreasing block sides (1024², 128³, 32⁴, …) and its local reblocking
// property, plus distributed (SPARK-sim) operations over block-partitioned
// matrices vs. local CP execution and the block-size trade-off.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/statistics.h"
#include "common/util.h"
#include "runtime/dist/blocked_matrix.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/tensor/blocking.h"

using namespace sysds;

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();

  // (1) Tensor blocking/reblocking: a 2D tensor blocked at the rank-2 side
  //     (1024), then locally converted to the rank-3 scheme side (128).
  {
    int64_t n = std::min<int64_t>(scale.rows / 4, 2048);
    TensorBlock t({n, 256}, ValueType::kFP64);
    for (int64_t i = 0; i < t.CellCount(); ++i) {
      t.SetDoubleLinear(i, static_cast<double>(i % 97));
    }
    std::printf("# A3.1 tensor blocking scheme (dims %lldx256)\n",
                static_cast<long long>(n));
    std::printf("%-30s%10s%14s\n", "operation", "blocks", "seconds");
    Timer t1;
    auto blocked = BlockedTensor::FromTensor(t);  // rank-2 side: 1024
    std::printf("%-30s%10lld%14.4f\n", "block (side 1024)",
                static_cast<long long>(blocked->NumBlocks()),
                t1.ElapsedSeconds());
    Timer t2;
    auto reblocked = blocked->Reblock(128);  // rank-3 side: local split
    std::printf("%-30s%10lld%14.4f\n", "reblock to side 128",
                static_cast<long long>(reblocked->NumBlocks()),
                t2.ElapsedSeconds());
    Timer t3;
    auto roundtrip = reblocked->ToTensor();
    std::printf("%-30s%10s%14.4f\n", "collect", "-", t3.ElapsedSeconds());
    if (!roundtrip->EqualsApprox(t)) {
      std::fprintf(stderr, "reblock roundtrip mismatch!\n");
      return 1;
    }
  }

  // (2) Distributed matmult over blocked matrices: block-size sweep.
  {
    int64_t n = std::min<int64_t>(scale.rows / 8, 1024);
    auto a = RandMatrix(n, n, 0.0, 1.0, 1.0, 1, RandPdf::kUniform, 1);
    auto b = RandMatrix(n, n, 0.0, 1.0, 1.0, 2, RandPdf::kUniform, 1);
    std::printf(
        "\n# A3.2 distributed matmult (%lldx%lld), block-size sweep\n",
        static_cast<long long>(n), static_cast<long long>(n));
    std::printf("%-14s%14s%18s\n", "block_size", "seconds",
                "shuffled_blocks");
    Timer tl;
    auto local = MatMult(*a, *b, 1);
    std::printf("%-14s%14.4f%18s\n", "local CP", tl.ElapsedSeconds(), "-");
    for (int64_t bs : {64, 128, 256, 512}) {
      Statistics::Get().Reset();
      Timer td;
      BlockedMatrix ba = BlockedMatrix::FromMatrix(*a, bs);
      BlockedMatrix bb = BlockedMatrix::FromMatrix(*b, bs);
      auto c = DistMatMult(ba, bb);
      MatrixBlock collected = c->ToMatrix();
      double secs = td.ElapsedSeconds();
      if (!collected.EqualsApprox(*local, 1e-6)) {
        std::fprintf(stderr, "distributed result mismatch!\n");
        return 1;
      }
      std::printf("%-14lld%14.4f%18lld\n", static_cast<long long>(bs), secs,
                  static_cast<long long>(
                      Statistics::Get().GetCounter("spark.shuffled_blocks")));
    }
  }
  return 0;
}
