// Serving benchmark (src/serve/): throughput and latency of the
// ScoringService over a shared PreparedScript.
//  (1) Worker scaling: requests/s and p50/p99 latency vs. worker count.
//      Kernels are pinned to one thread (num_threads=1) so all parallelism
//      comes from service workers; the scaling headroom is therefore
//      bounded by the machine's core count (a 1-core CI box shows ~1x,
//      a multicore server shows near-linear gains until cores saturate).
//  (2) Lineage reuse under serving: the same scoring workload with a
//      shared-weights intermediate (t(W) %*% W), policy none vs. full —
//      reports the reuse hit rate and the resulting speedup (§3.1 applied
//      to the §2.2(1) low-latency deployment path).
//  (3) Micro-batching: single-row requests stacked into one execution.

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/systemds_context.h"
#include "common/util.h"
#include "obs/metrics.h"
#include "serve/scoring_service.h"

using namespace sysds;
using namespace sysds::serve;

namespace {

constexpr int kFeatures = 256;

struct RunResult {
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  int64_t completed = 0;
};

std::shared_ptr<const PreparedScript> PrepareModel(SystemDSContext& ctx,
                                                   const std::string& script) {
  SymbolInfo row;
  row.dt = DataType::kMatrix;
  row.dim1 = 1;
  row.dim2 = kFeatures;
  SymbolInfo weights;
  weights.dt = DataType::kMatrix;
  weights.dim1 = kFeatures;
  weights.dim2 = kFeatures;
  auto p = ctx.Prepare(script, {{"X", row}, {"W", weights}});
  if (!p.ok()) {
    std::fprintf(stderr, "prepare error: %s\n",
                 p.status().ToString().c_str());
    return nullptr;
  }
  return std::shared_ptr<const PreparedScript>(std::move(*p));
}

/// Drives `requests` single-row scorings through a service with `workers`
/// workers and returns wall time + latency quantiles.
RunResult DriveService(const std::shared_ptr<const PreparedScript>& script,
                       int workers, int requests, bool micro_batching,
                       const DataPtr& weights,
                       const std::vector<DataPtr>& rows) {
  ServiceOptions opts;
  opts.num_workers = workers;
  opts.max_queue_depth = static_cast<size_t>(requests) + 16;
  ScoringService svc(opts);
  ModelOptions mopts;
  if (micro_batching) {
    mopts.micro_batching = true;
    mopts.batch_input = "X";
    mopts.max_batch_size = 16;
  }
  Status reg = svc.RegisterModel("m", script, {"yhat"}, mopts);
  if (!reg.ok()) {
    std::fprintf(stderr, "register error: %s\n", reg.ToString().c_str());
    return {};
  }

  obs::Histogram* latency =
      obs::MetricsRegistry::Get().GetHistogram("serve.latency_ns");
  latency->Reset();

  Timer timer;
  std::vector<std::future<StatusOr<ScriptResult>>> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    futures.push_back(
        svc.Submit("m", Inputs()
                            .Bind("X", rows[static_cast<size_t>(i) %
                                           rows.size()])
                            .Bind("W", weights)));
  }
  RunResult result;
  for (auto& f : futures) {
    if (f.get().ok()) ++result.completed;
  }
  result.seconds = timer.ElapsedSeconds();
  result.p50_us = static_cast<double>(latency->ApproxQuantile(0.50)) / 1e3;
  result.p99_us = static_cast<double>(latency->ApproxQuantile(0.99)) / 1e3;
  return result;
}

std::vector<DataPtr> MakeRows(int count) {
  std::vector<DataPtr> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    MatrixBlock row = MatrixBlock::Dense(1, kFeatures);
    for (int64_t j = 0; j < kFeatures; ++j) {
      row.DenseRow(0)[j] = 0.01 * static_cast<double>(i + j);
    }
    row.MarkNnzDirty();
    rows.push_back(SystemDSContext::Matrix(row));
  }
  return rows;
}

}  // namespace

int main() {
  const char* env = std::getenv("SYSDS_BENCH_SCALE");
  std::string scale = env == nullptr ? "small" : env;
  const int requests = scale == "tiny" ? 200 : scale == "paper" ? 20000 : 2000;

  DataPtr weights =
      SystemDSContext::Matrix(MatrixBlock::Dense(kFeatures, kFeatures, 0.01));
  std::vector<DataPtr> rows = MakeRows(64);

  // Kernels single-threaded: service workers are the only parallelism.
  // Reuse is off for the scaling and batching sections so every request
  // performs real compute (a warm cache would measure queue overhead
  // only); section (2) measures reuse explicitly.
  auto ctx = SystemDSContext::Builder().NumThreads(1).Build();

  // (1) Worker scaling on a plain scoring model.
  auto plain = PrepareModel(*ctx, "yhat = X %*% W\n");
  if (plain == nullptr) return 1;
  std::printf("# serving throughput vs. workers (%d requests, %dx%d matvec,"
              " %u cores)\n",
              requests, kFeatures, kFeatures,
              std::thread::hardware_concurrency());
  std::printf("%-10s%14s%12s%12s%10s\n", "workers", "req/s", "p50 us",
              "p99 us", "speedup");
  double base = 0;
  for (int workers : {1, 2, 4, 8}) {
    RunResult r = DriveService(plain, workers, requests, false, weights, rows);
    double rps = r.seconds > 0 ? r.completed / r.seconds : 0;
    if (workers == 1) base = rps;
    std::printf("%-10d%14.0f%12.1f%12.1f%9.2fx\n", workers, rps, r.p50_us,
                r.p99_us, base > 0 ? rps / base : 0.0);
  }

  // (2) Lineage reuse: the shared-weights intermediate t(W) %*% W is
  // probed on every request and cached after the first.
  const char* reuse_script = "P = t(W) %*% W\nyhat = X %*% P\n";
  std::printf("\n# lineage reuse under serving (4 workers, %d requests)\n",
              requests);
  std::printf("%-22s%14s%14s%12s\n", "policy", "req/s", "hit rate", "p99 us");
  for (ReusePolicy policy : {ReusePolicy::kNone, ReusePolicy::kFull}) {
    auto rctx = SystemDSContext::Builder()
                    .NumThreads(1)
                    .Reuse(policy)
                    .Build();
    auto model = PrepareModel(*rctx, reuse_script);
    if (model == nullptr) return 1;
    rctx->Cache()->ResetStats();
    RunResult r = DriveService(model, 4, requests, false, weights, rows);
    LineageCacheStats stats = rctx->Cache()->Stats();
    double hit_rate =
        stats.probes > 0
            ? static_cast<double>(stats.full_hits + stats.partial_hits) /
                  static_cast<double>(stats.probes)
            : 0.0;
    std::printf("%-22s%14.0f%13.1f%%%12.1f\n",
                policy == ReusePolicy::kNone ? "none" : "full",
                r.seconds > 0 ? r.completed / r.seconds : 0, hit_rate * 100.0,
                r.p99_us);
  }

  // (3) Micro-batching single-row requests (1 worker isolates the effect
  // of stacking from worker parallelism).
  std::printf("\n# micro-batching (1 worker, %d single-row requests)\n",
              requests);
  std::printf("%-22s%14s%12s\n", "mode", "req/s", "p99 us");
  for (bool batching : {false, true}) {
    RunResult r = DriveService(plain, 1, requests, batching, weights, rows);
    std::printf("%-22s%14.0f%12.1f\n",
                batching ? "micro-batched (<=16)" : "individual",
                r.seconds > 0 ? r.completed / r.seconds : 0, r.p99_us);
  }
  return 0;
}
