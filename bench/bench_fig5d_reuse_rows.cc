// Figure 5(d): lineage-based reuse on SPARSE data (sparsity 0.1) for a
// fixed k and increasing nrow(X). Expected shape (paper): the larger the
// input, the higher the improvement — the reused intermediates t(X)X and
// t(X)y have sizes independent of the number of rows, so with reuse the
// runtime becomes nearly flat in nrow apart from I/O.

#include <cstdio>
#include <filesystem>

#include "baselines/baselines.h"
#include "bench/bench_common.h"

int main() {
  using namespace sysds;
  using namespace sysds_bench;
  Scale scale = GetScale();
  const int k = scale.model_counts.back();
  // The reused intermediates are cols x cols; a wider X (paper: 1K columns)
  // keeps compute, not I/O, dominant so the row-scaling effect is visible.
  const int64_t cols = scale.cols * 4;

  PrintHeader(
      "Figure 5(d): reuse sparse (sparsity=0.1), end-to-end seconds",
      "nrow", {"SysDS", "SysDS+Reuse", "Speedup"});
  for (int64_t rows : scale.row_counts) {
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "sysds_bench_fig5d";
    std::filesystem::create_directories(dir);
    std::string x_csv = (dir / "X.csv").string();
    std::string y_csv = (dir / "y.csv").string();
    std::string out_csv = (dir / "B.csv").string();
    Status gen = GenerateSweepData(rows, cols, /*sparsity=*/0.1, 42,
                                   x_csv, y_csv);
    if (!gen.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", gen.ToString().c_str());
      return 1;
    }
    SweepWorkload w;
    w.x_csv = x_csv;
    w.y_csv = y_csv;
    w.out_csv = out_csv;
    for (int i = 0; i < k; ++i) w.lambdas.push_back(0.001 * (i + 1));
    auto base = RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/false);
    auto reuse = RunSweepSysDS(w, /*native_blas=*/true, /*reuse=*/true);
    if (!base.ok() || !reuse.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    PrintRow(static_cast<double>(rows),
             {base->total_seconds, reuse->total_seconds,
              base->total_seconds / reuse->total_seconds});
    std::filesystem::remove_all(dir);
  }
  return 0;
}
