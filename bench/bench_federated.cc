// Ablation A4 (§3.3): federated linear regression with push-down
// instructions vs. centralizing the raw data, for 1..8 sites. Push-down
// ships only cols x cols aggregates per site; centralize ships the full
// row partition of X. The bytes-over-the-wire ratio is the exchange-
// constraint argument of the paper.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/util.h"
#include "fed/federated.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_solve.h"

using namespace sysds;

int main() {
  using namespace sysds_bench;
  Scale scale = GetScale();
  int64_t rows = scale.rows, cols = std::min<int64_t>(scale.cols, 64);

  auto x = RandMatrix(rows, cols, 0.0, 1.0, 1.0, 7, RandPdf::kUniform, 1);
  auto w = RandMatrix(cols, 1, -1.0, 1.0, 1.0, 8, RandPdf::kUniform, 1);
  auto y = MatMult(*x, *w, 1);

  std::printf("# A4 federated lmDS: push-down vs centralize (%lld x %lld)\n",
              static_cast<long long>(rows), static_cast<long long>(cols));
  std::printf("%-8s%14s%14s%16s%16s%12s\n", "sites", "pushdown_s",
              "central_s", "pushdown_MB", "central_MB", "max_err");
  for (int sites : {1, 2, 4, 8}) {
    FederatedRegistry registry(sites);
    auto fx = FederatedMatrix::Distribute(&registry, *x, "X");
    auto fy = FederatedMatrix::Distribute(&registry, *y, "y");
    if (!fx.ok() || !fy.ok()) return 1;
    int64_t base = registry.TotalBytesTransferred();

    Timer t1;
    auto fb = FederatedLmDS(*fx, *fy, 1e-8);
    double pushdown_s = t1.ElapsedSeconds();
    int64_t pushdown_bytes = registry.TotalBytesTransferred() - base;
    if (!fb.ok()) {
      std::fprintf(stderr, "federated failed: %s\n",
                   fb.status().ToString().c_str());
      return 1;
    }

    // Centralize: pull all partitions, then solve locally.
    int64_t before = registry.TotalBytesTransferred();
    Timer t2;
    auto xc = fx->Collect();
    auto yc = fy->Collect();
    auto xtx = TransposeSelfMatMult(*xc, true, 1);
    auto xty = TransposeLeftMatMult(*xc, *yc, 1);
    xtx->ToDense();
    for (int64_t i = 0; i < cols; ++i) xtx->DenseRow(i)[i] += 1e-8;
    auto local = Solve(*xtx, *xty);
    double central_s = t2.ElapsedSeconds();
    int64_t central_bytes = registry.TotalBytesTransferred() - before;

    double max_err = 0;
    for (int64_t i = 0; i < cols; ++i) {
      max_err = std::max(max_err,
                         std::abs(fb->Get(i, 0) - local->Get(i, 0)));
    }
    std::printf("%-8d%14.4f%14.4f%16.3f%16.3f%12.2e\n", sites, pushdown_s,
                central_s, pushdown_bytes / 1e6, central_bytes / 1e6,
                max_err);
  }
  return 0;
}
