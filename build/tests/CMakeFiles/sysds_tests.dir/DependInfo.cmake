
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api/api_test.cc" "tests/CMakeFiles/sysds_tests.dir/api/api_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/api/api_test.cc.o.d"
  "/root/repo/tests/api/explain_lineage_test.cc" "tests/CMakeFiles/sysds_tests.dir/api/explain_lineage_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/api/explain_lineage_test.cc.o.d"
  "/root/repo/tests/builtins/builtins_test.cc" "tests/CMakeFiles/sysds_tests.dir/builtins/builtins_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/builtins/builtins_test.cc.o.d"
  "/root/repo/tests/builtins/validation_builtins_test.cc" "tests/CMakeFiles/sysds_tests.dir/builtins/validation_builtins_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/builtins/validation_builtins_test.cc.o.d"
  "/root/repo/tests/common/json_test.cc" "tests/CMakeFiles/sysds_tests.dir/common/json_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/common/json_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/sysds_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/sysds_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/common/util_test.cc" "tests/CMakeFiles/sysds_tests.dir/common/util_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/common/util_test.cc.o.d"
  "/root/repo/tests/compiler/codegen_test.cc" "tests/CMakeFiles/sysds_tests.dir/compiler/codegen_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/compiler/codegen_test.cc.o.d"
  "/root/repo/tests/compiler/rewrites_test.cc" "tests/CMakeFiles/sysds_tests.dir/compiler/rewrites_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/compiler/rewrites_test.cc.o.d"
  "/root/repo/tests/compress/compressed_block_test.cc" "tests/CMakeFiles/sysds_tests.dir/compress/compressed_block_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/compress/compressed_block_test.cc.o.d"
  "/root/repo/tests/fed/federated_test.cc" "tests/CMakeFiles/sysds_tests.dir/fed/federated_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/fed/federated_test.cc.o.d"
  "/root/repo/tests/frame/frame_test.cc" "tests/CMakeFiles/sysds_tests.dir/frame/frame_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/frame/frame_test.cc.o.d"
  "/root/repo/tests/frame/transform_test.cc" "tests/CMakeFiles/sysds_tests.dir/frame/transform_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/frame/transform_test.cc.o.d"
  "/root/repo/tests/integration/dml_ops_test.cc" "tests/CMakeFiles/sysds_tests.dir/integration/dml_ops_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/integration/dml_ops_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/sysds_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/engine_robustness_test.cc" "tests/CMakeFiles/sysds_tests.dir/integration/engine_robustness_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/integration/engine_robustness_test.cc.o.d"
  "/root/repo/tests/integration/property_test.cc" "tests/CMakeFiles/sysds_tests.dir/integration/property_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/integration/property_test.cc.o.d"
  "/root/repo/tests/integration/recompile_test.cc" "tests/CMakeFiles/sysds_tests.dir/integration/recompile_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/integration/recompile_test.cc.o.d"
  "/root/repo/tests/io/io_test.cc" "tests/CMakeFiles/sysds_tests.dir/io/io_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/io/io_test.cc.o.d"
  "/root/repo/tests/lang/lexer_test.cc" "tests/CMakeFiles/sysds_tests.dir/lang/lexer_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/lang/lexer_test.cc.o.d"
  "/root/repo/tests/lang/parser_fuzz_test.cc" "tests/CMakeFiles/sysds_tests.dir/lang/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/lang/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/lang/parser_test.cc" "tests/CMakeFiles/sysds_tests.dir/lang/parser_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/lang/parser_test.cc.o.d"
  "/root/repo/tests/lineage/dedup_test.cc" "tests/CMakeFiles/sysds_tests.dir/lineage/dedup_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/lineage/dedup_test.cc.o.d"
  "/root/repo/tests/lineage/lineage_test.cc" "tests/CMakeFiles/sysds_tests.dir/lineage/lineage_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/lineage/lineage_test.cc.o.d"
  "/root/repo/tests/matrix/agg_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/agg_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/agg_test.cc.o.d"
  "/root/repo/tests/matrix/datagen_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/datagen_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/datagen_test.cc.o.d"
  "/root/repo/tests/matrix/elementwise_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/elementwise_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/elementwise_test.cc.o.d"
  "/root/repo/tests/matrix/matmult_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/matmult_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/matmult_test.cc.o.d"
  "/root/repo/tests/matrix/matrix_block_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/matrix_block_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/matrix_block_test.cc.o.d"
  "/root/repo/tests/matrix/reorg_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/reorg_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/reorg_test.cc.o.d"
  "/root/repo/tests/matrix/solve_test.cc" "tests/CMakeFiles/sysds_tests.dir/matrix/solve_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/matrix/solve_test.cc.o.d"
  "/root/repo/tests/ps/param_server_test.cc" "tests/CMakeFiles/sysds_tests.dir/ps/param_server_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/ps/param_server_test.cc.o.d"
  "/root/repo/tests/runtime/bufferpool_test.cc" "tests/CMakeFiles/sysds_tests.dir/runtime/bufferpool_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/runtime/bufferpool_test.cc.o.d"
  "/root/repo/tests/runtime/data_test.cc" "tests/CMakeFiles/sysds_tests.dir/runtime/data_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/runtime/data_test.cc.o.d"
  "/root/repo/tests/runtime/parfor_test.cc" "tests/CMakeFiles/sysds_tests.dir/runtime/parfor_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/runtime/parfor_test.cc.o.d"
  "/root/repo/tests/runtime/spark_test.cc" "tests/CMakeFiles/sysds_tests.dir/runtime/spark_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/runtime/spark_test.cc.o.d"
  "/root/repo/tests/tensor/blocking_test.cc" "tests/CMakeFiles/sysds_tests.dir/tensor/blocking_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/tensor/blocking_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_test.cc" "tests/CMakeFiles/sysds_tests.dir/tensor/tensor_test.cc.o" "gcc" "tests/CMakeFiles/sysds_tests.dir/tensor/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sysds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
