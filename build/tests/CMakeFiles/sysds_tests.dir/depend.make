# Empty dependencies file for sysds_tests.
# This may be replaced when dependencies are built.
