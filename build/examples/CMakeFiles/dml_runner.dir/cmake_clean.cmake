file(REMOVE_RECURSE
  "CMakeFiles/dml_runner.dir/dml_runner.cpp.o"
  "CMakeFiles/dml_runner.dir/dml_runner.cpp.o.d"
  "dml_runner"
  "dml_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
