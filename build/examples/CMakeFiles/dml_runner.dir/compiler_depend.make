# Empty compiler generated dependencies file for dml_runner.
# This may be replaced when dependencies are built.
