# Empty compiler generated dependencies file for data_prep_pipeline.
# This may be replaced when dependencies are built.
