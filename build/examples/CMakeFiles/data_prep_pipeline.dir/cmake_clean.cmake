file(REMOVE_RECURSE
  "CMakeFiles/data_prep_pipeline.dir/data_prep_pipeline.cpp.o"
  "CMakeFiles/data_prep_pipeline.dir/data_prep_pipeline.cpp.o.d"
  "data_prep_pipeline"
  "data_prep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_prep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
