file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_baselines_sparse.dir/bench_fig5b_baselines_sparse.cc.o"
  "CMakeFiles/bench_fig5b_baselines_sparse.dir/bench_fig5b_baselines_sparse.cc.o.d"
  "bench_fig5b_baselines_sparse"
  "bench_fig5b_baselines_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_baselines_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
