file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_reuse_dense.dir/bench_fig5c_reuse_dense.cc.o"
  "CMakeFiles/bench_fig5c_reuse_dense.dir/bench_fig5c_reuse_dense.cc.o.d"
  "bench_fig5c_reuse_dense"
  "bench_fig5c_reuse_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_reuse_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
