# Empty compiler generated dependencies file for bench_fig5c_reuse_dense.
# This may be replaced when dependencies are built.
