file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5d_reuse_rows.dir/bench_fig5d_reuse_rows.cc.o"
  "CMakeFiles/bench_fig5d_reuse_rows.dir/bench_fig5d_reuse_rows.cc.o.d"
  "bench_fig5d_reuse_rows"
  "bench_fig5d_reuse_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5d_reuse_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
