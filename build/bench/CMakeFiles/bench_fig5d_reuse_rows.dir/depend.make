# Empty dependencies file for bench_fig5d_reuse_rows.
# This may be replaced when dependencies are built.
