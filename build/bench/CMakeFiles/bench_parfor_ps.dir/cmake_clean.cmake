file(REMOVE_RECURSE
  "CMakeFiles/bench_parfor_ps.dir/bench_parfor_ps.cc.o"
  "CMakeFiles/bench_parfor_ps.dir/bench_parfor_ps.cc.o.d"
  "bench_parfor_ps"
  "bench_parfor_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parfor_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
