# Empty dependencies file for bench_parfor_ps.
# This may be replaced when dependencies are built.
