file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_baselines_dense.dir/bench_fig5a_baselines_dense.cc.o"
  "CMakeFiles/bench_fig5a_baselines_dense.dir/bench_fig5a_baselines_dense.cc.o.d"
  "bench_fig5a_baselines_dense"
  "bench_fig5a_baselines_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_baselines_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
