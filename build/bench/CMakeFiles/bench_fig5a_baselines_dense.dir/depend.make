# Empty dependencies file for bench_fig5a_baselines_dense.
# This may be replaced when dependencies are built.
