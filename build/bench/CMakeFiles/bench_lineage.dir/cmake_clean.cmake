file(REMOVE_RECURSE
  "CMakeFiles/bench_lineage.dir/bench_lineage.cc.o"
  "CMakeFiles/bench_lineage.dir/bench_lineage.cc.o.d"
  "bench_lineage"
  "bench_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
