
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/systemds_context.cc" "src/CMakeFiles/sysds.dir/api/systemds_context.cc.o" "gcc" "src/CMakeFiles/sysds.dir/api/systemds_context.cc.o.d"
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/sysds.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/sysds.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/builtins/registry.cc" "src/CMakeFiles/sysds.dir/builtins/registry.cc.o" "gcc" "src/CMakeFiles/sysds.dir/builtins/registry.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/sysds.dir/common/json.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/json.cc.o.d"
  "/root/repo/src/common/statistics.cc" "src/CMakeFiles/sysds.dir/common/statistics.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/statistics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sysds.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/sysds.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/sysds.dir/common/types.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/types.cc.o.d"
  "/root/repo/src/common/util.cc" "src/CMakeFiles/sysds.dir/common/util.cc.o" "gcc" "src/CMakeFiles/sysds.dir/common/util.cc.o.d"
  "/root/repo/src/compiler/builder.cc" "src/CMakeFiles/sysds.dir/compiler/builder.cc.o" "gcc" "src/CMakeFiles/sysds.dir/compiler/builder.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/CMakeFiles/sysds.dir/compiler/codegen.cc.o" "gcc" "src/CMakeFiles/sysds.dir/compiler/codegen.cc.o.d"
  "/root/repo/src/compiler/hop.cc" "src/CMakeFiles/sysds.dir/compiler/hop.cc.o" "gcc" "src/CMakeFiles/sysds.dir/compiler/hop.cc.o.d"
  "/root/repo/src/compiler/recompiler.cc" "src/CMakeFiles/sysds.dir/compiler/recompiler.cc.o" "gcc" "src/CMakeFiles/sysds.dir/compiler/recompiler.cc.o.d"
  "/root/repo/src/compiler/rewrites.cc" "src/CMakeFiles/sysds.dir/compiler/rewrites.cc.o" "gcc" "src/CMakeFiles/sysds.dir/compiler/rewrites.cc.o.d"
  "/root/repo/src/fed/federated.cc" "src/CMakeFiles/sysds.dir/fed/federated.cc.o" "gcc" "src/CMakeFiles/sysds.dir/fed/federated.cc.o.d"
  "/root/repo/src/io/format_descriptor.cc" "src/CMakeFiles/sysds.dir/io/format_descriptor.cc.o" "gcc" "src/CMakeFiles/sysds.dir/io/format_descriptor.cc.o.d"
  "/root/repo/src/io/matrix_io.cc" "src/CMakeFiles/sysds.dir/io/matrix_io.cc.o" "gcc" "src/CMakeFiles/sysds.dir/io/matrix_io.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/sysds.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/sysds.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/sysds.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/sysds.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/sysds.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/sysds.dir/lang/parser.cc.o.d"
  "/root/repo/src/lineage/lineage.cc" "src/CMakeFiles/sysds.dir/lineage/lineage.cc.o" "gcc" "src/CMakeFiles/sysds.dir/lineage/lineage.cc.o.d"
  "/root/repo/src/runtime/bufferpool/buffer_pool.cc" "src/CMakeFiles/sysds.dir/runtime/bufferpool/buffer_pool.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/bufferpool/buffer_pool.cc.o.d"
  "/root/repo/src/runtime/compress/compressed_block.cc" "src/CMakeFiles/sysds.dir/runtime/compress/compressed_block.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/compress/compressed_block.cc.o.d"
  "/root/repo/src/runtime/controlprog/data.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/data.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/data.cc.o.d"
  "/root/repo/src/runtime/controlprog/execution_context.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/execution_context.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/execution_context.cc.o.d"
  "/root/repo/src/runtime/controlprog/instruction.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instruction.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instruction.cc.o.d"
  "/root/repo/src/runtime/controlprog/instructions_elementwise.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_elementwise.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_elementwise.cc.o.d"
  "/root/repo/src/runtime/controlprog/instructions_linalg.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_linalg.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_linalg.cc.o.d"
  "/root/repo/src/runtime/controlprog/instructions_misc.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_misc.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/instructions_misc.cc.o.d"
  "/root/repo/src/runtime/controlprog/program.cc" "src/CMakeFiles/sysds.dir/runtime/controlprog/program.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/controlprog/program.cc.o.d"
  "/root/repo/src/runtime/dist/blocked_matrix.cc" "src/CMakeFiles/sysds.dir/runtime/dist/blocked_matrix.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/dist/blocked_matrix.cc.o.d"
  "/root/repo/src/runtime/dist/instructions_spark.cc" "src/CMakeFiles/sysds.dir/runtime/dist/instructions_spark.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/dist/instructions_spark.cc.o.d"
  "/root/repo/src/runtime/frame/frame_block.cc" "src/CMakeFiles/sysds.dir/runtime/frame/frame_block.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/frame/frame_block.cc.o.d"
  "/root/repo/src/runtime/frame/transform.cc" "src/CMakeFiles/sysds.dir/runtime/frame/transform.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/frame/transform.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_agg.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_agg.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_agg.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_datagen.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_datagen.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_datagen.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_elementwise.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_elementwise.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_elementwise.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_matmult.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_matmult.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_matmult.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_reorg.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_reorg.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_reorg.cc.o.d"
  "/root/repo/src/runtime/matrix/lib_solve.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_solve.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/lib_solve.cc.o.d"
  "/root/repo/src/runtime/matrix/matrix_block.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/matrix_block.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/matrix_block.cc.o.d"
  "/root/repo/src/runtime/matrix/op_codes.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/op_codes.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/op_codes.cc.o.d"
  "/root/repo/src/runtime/matrix/sparse_block.cc" "src/CMakeFiles/sysds.dir/runtime/matrix/sparse_block.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/matrix/sparse_block.cc.o.d"
  "/root/repo/src/runtime/ps/param_server.cc" "src/CMakeFiles/sysds.dir/runtime/ps/param_server.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/ps/param_server.cc.o.d"
  "/root/repo/src/runtime/tensor/blocking.cc" "src/CMakeFiles/sysds.dir/runtime/tensor/blocking.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/tensor/blocking.cc.o.d"
  "/root/repo/src/runtime/tensor/data_tensor.cc" "src/CMakeFiles/sysds.dir/runtime/tensor/data_tensor.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/tensor/data_tensor.cc.o.d"
  "/root/repo/src/runtime/tensor/tensor_block.cc" "src/CMakeFiles/sysds.dir/runtime/tensor/tensor_block.cc.o" "gcc" "src/CMakeFiles/sysds.dir/runtime/tensor/tensor_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
