# Empty compiler generated dependencies file for sysds.
# This may be replaced when dependencies are built.
