file(REMOVE_RECURSE
  "libsysds.a"
)
