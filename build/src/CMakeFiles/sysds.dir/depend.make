# Empty dependencies file for sysds.
# This may be replaced when dependencies are built.
