#include "compiler/hop.h"

#include <atomic>
#include <set>
#include <sstream>

#include "runtime/matrix/matrix_block.h"

namespace sysds {

const char* HopOpName(HopOp op) {
  switch (op) {
    case HopOp::kLiteral: return "literal";
    case HopOp::kTransientRead: return "tread";
    case HopOp::kTransientWrite: return "twrite";
    case HopOp::kPersistentRead: return "pread";
    case HopOp::kPersistentWrite: return "pwrite";
    case HopOp::kDataGen: return "datagen";
    case HopOp::kBinary: return "binary";
    case HopOp::kUnary: return "unary";
    case HopOp::kAggUnary: return "aggunary";
    case HopOp::kCumAgg: return "cumagg";
    case HopOp::kMatMult: return "ba+*";
    case HopOp::kTsmm: return "tsmm";
    case HopOp::kTmm: return "tmm";
    case HopOp::kReorg: return "reorg";
    case HopOp::kIndexing: return "rightIndex";
    case HopOp::kLeftIndexing: return "leftIndex";
    case HopOp::kNary: return "nary";
    case HopOp::kTernary: return "ternary";
    case HopOp::kParamBuiltin: return "parambuiltin";
    case HopOp::kCast: return "cast";
    case HopOp::kSolve: return "solve";
    case HopOp::kFunctionCall: return "fcall";
    case HopOp::kFedInit: return "fedinit";
    case HopOp::kFusedOp: return "fused";
  }
  return "?";
}

LitValue LitValue::Double(double v) {
  LitValue l;
  l.vt = ValueType::kFP64;
  l.d = v;
  return l;
}
LitValue LitValue::Int(int64_t v) {
  LitValue l;
  l.vt = ValueType::kInt64;
  l.i = v;
  return l;
}
LitValue LitValue::Bool(bool v) {
  LitValue l;
  l.vt = ValueType::kBoolean;
  l.b = v;
  return l;
}
LitValue LitValue::String(std::string v) {
  LitValue l;
  l.vt = ValueType::kString;
  l.s = std::move(v);
  return l;
}

double LitValue::AsDouble() const {
  switch (vt) {
    case ValueType::kFP64: return d;
    case ValueType::kInt64: return static_cast<double>(i);
    case ValueType::kBoolean: return b ? 1.0 : 0.0;
    default: return s.empty() ? 0.0 : std::stod(s);
  }
}
int64_t LitValue::AsInt() const {
  switch (vt) {
    case ValueType::kFP64: return static_cast<int64_t>(d);
    case ValueType::kInt64: return i;
    case ValueType::kBoolean: return b ? 1 : 0;
    default: return s.empty() ? 0 : std::stoll(s);
  }
}
bool LitValue::AsBool() const {
  switch (vt) {
    case ValueType::kFP64: return d != 0.0;
    case ValueType::kInt64: return i != 0;
    case ValueType::kBoolean: return b;
    default: return s == "TRUE" || s == "true";
  }
}
std::string LitValue::AsString() const {
  switch (vt) {
    case ValueType::kFP64: {
      std::ostringstream os;
      os << d;
      return os.str();
    }
    case ValueType::kInt64: return std::to_string(i);
    case ValueType::kBoolean: return b ? "TRUE" : "FALSE";
    default: return s;
  }
}

int64_t Hop::NextId() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

Hop::Hop(HopOp op, std::string opcode, DataType dt, ValueType vt)
    : id_(NextId()), op_(op), opcode_(std::move(opcode)), dt_(dt), vt_(vt) {}

double Hop::Sparsity() const {
  if (!DimsKnown() || nnz_ < 0 || dim1_ * dim2_ == 0) return 1.0;
  return static_cast<double>(nnz_) / (dim1_ * dim2_);
}

void Hop::RefreshSizeInformation() {
  auto in = [&](size_t k) -> Hop* {
    return k < inputs_.size() ? inputs_[k].get() : nullptr;
  };
  switch (op_) {
    case HopOp::kLiteral:
      dim1_ = 0;
      dim2_ = 0;
      break;
    case HopOp::kTransientRead:
    case HopOp::kPersistentRead:
    case HopOp::kFedInit:
    case HopOp::kFusedOp:
      break;  // dims set externally (symbol info / metadata / fusion planner)
    case HopOp::kTransientWrite:
    case HopOp::kPersistentWrite:
    case HopOp::kCumAgg:
      if (in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
        nnz_ = op_ == HopOp::kCumAgg ? -1 : in(0)->nnz();
        dt_ = in(0)->data_type();
        vt_ = in(0)->value_type();
        if (op_ == HopOp::kCumAgg) { dt_ = DataType::kMatrix; }
      }
      break;
    case HopOp::kDataGen:
      // dims set by the builder from rows/cols argument hops when literal.
      break;
    case HopOp::kBinary: {
      if (dt_ == DataType::kScalar) {
        dim1_ = 0;
        dim2_ = 0;
        break;
      }
      Hop* a = in(0);
      Hop* b = in(1);
      const Hop* m = nullptr;
      if (a && a->data_type() == DataType::kMatrix) m = a;
      if (b && b->data_type() == DataType::kMatrix) {
        // Pick the larger (broadcast target).
        if (m == nullptr || (b->DimsKnown() && m->DimsKnown() &&
                             b->dim1() * b->dim2() > m->dim1() * m->dim2())) {
          m = b;
        }
      }
      if (m != nullptr) {
        dim1_ = m->dim1();
        dim2_ = m->dim2();
        // Sparsity: only '*' guaranteed to keep zeros of either side.
        if (opcode_ == "*" && a && b) {
          nnz_ = std::min(a->nnz() < 0 ? INT64_MAX : a->nnz(),
                          b->nnz() < 0 ? INT64_MAX : b->nnz());
          if (nnz_ == INT64_MAX) nnz_ = -1;
        } else {
          nnz_ = -1;
        }
      }
      break;
    }
    case HopOp::kUnary:
      if (dt_ == DataType::kScalar) {
        dim1_ = 0;
        dim2_ = 0;
      } else if (in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
        nnz_ = (opcode_ == "uminus" || opcode_ == "sqrt" ||
                opcode_ == "abs" || opcode_ == "sign")
                   ? in(0)->nnz()
                   : -1;
      }
      break;
    case HopOp::kAggUnary: {
      // Direction encoded in the opcode prefix: ua (all), uar (row), uac (col).
      if (opcode_.rfind("uar", 0) == 0) {
        dim1_ = in(0) ? in(0)->dim1() : -1;
        dim2_ = 1;
      } else if (opcode_.rfind("uac", 0) == 0) {
        dim1_ = 1;
        dim2_ = in(0) ? in(0)->dim2() : -1;
      } else {
        dim1_ = 0;
        dim2_ = 0;
      }
      nnz_ = -1;
      break;
    }
    case HopOp::kMatMult:
      if (in(0) && in(1)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(1)->dim2();
        nnz_ = -1;
      }
      break;
    case HopOp::kTsmm:
      if (in(0)) {
        int64_t n = opcode_ == "right" ? in(0)->dim1() : in(0)->dim2();
        dim1_ = n;
        dim2_ = n;
        nnz_ = -1;
      }
      break;
    case HopOp::kTmm:
      if (in(0) && in(1)) {
        dim1_ = in(0)->dim2();
        dim2_ = in(1)->dim2();
        nnz_ = -1;
      }
      break;
    case HopOp::kReorg:
      if (in(0)) {
        if (opcode_ == "t") {
          dim1_ = in(0)->dim2();
          dim2_ = in(0)->dim1();
          nnz_ = in(0)->nnz();
        } else if (opcode_ == "rev" || opcode_ == "sort") {
          dim1_ = in(0)->dim1();
          dim2_ = in(0)->dim2();
          nnz_ = in(0)->nnz();
        } else if (opcode_ == "rdiag") {
          // vector->matrix or matrix->vector
          if (in(0)->dim2() == 1) {
            dim1_ = in(0)->dim1();
            dim2_ = in(0)->dim1();
            nnz_ = in(0)->nnz();
          } else {
            dim1_ = in(0)->dim1();
            dim2_ = 1;
            nnz_ = -1;
          }
        } else if (opcode_ == "reshape") {
          // dims from literal inputs 1, 2 when available
          if (inputs_.size() >= 3 && in(1)->op() == HopOp::kLiteral &&
              in(2)->op() == HopOp::kLiteral) {
            dim1_ = in(1)->literal().AsInt();
            dim2_ = in(2)->literal().AsInt();
          }
          nnz_ = in(0)->nnz();
        }
      }
      break;
    case HopOp::kIndexing: {
      // inputs: X, rl, ru, cl, cu; literal upper bound -1 means "to end".
      auto lit = [&](size_t k) -> int64_t {
        Hop* h = in(k);
        if (h == nullptr || h->op() != HopOp::kLiteral) return INT64_MIN;
        return h->literal().AsInt();
      };
      int64_t rl = lit(1), ru = lit(2), cl = lit(3), cu = lit(4);
      int64_t in_rows = in(0) ? in(0)->dim1() : -1;
      int64_t in_cols = in(0) ? in(0)->dim2() : -1;
      if (ru == -1 && in_rows >= 0) ru = in_rows;
      if (cu == -1 && in_cols >= 0) cu = in_cols;
      dim1_ = (rl > 0 && ru > 0) ? ru - rl + 1 : -1;
      dim2_ = (cl > 0 && cu > 0) ? cu - cl + 1 : -1;
      nnz_ = -1;
      break;
    }
    case HopOp::kLeftIndexing:
      if (in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
        nnz_ = -1;
      }
      break;
    case HopOp::kNary: {
      if (opcode_ == "cbind") {
        int64_t rows = -1, cols = 0;
        bool all_known = true;
        for (const HopPtr& h : inputs_) {
          if (h->dim1() >= 0) rows = h->dim1();
          if (h->dim2() < 0) all_known = false;
          else cols += h->dim2();
        }
        dim1_ = rows;
        dim2_ = all_known ? cols : -1;
      } else if (opcode_ == "rbind") {
        int64_t rows = 0, cols = -1;
        bool all_known = true;
        for (const HopPtr& h : inputs_) {
          if (h->dim2() >= 0) cols = h->dim2();
          if (h->dim1() < 0) all_known = false;
          else rows += h->dim1();
        }
        dim1_ = all_known ? rows : -1;
        dim2_ = cols;
      }
      nnz_ = -1;
      break;
    }
    case HopOp::kTernary:
      if (opcode_ == "ifelse" && in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
      }
      nnz_ = -1;
      break;
    case HopOp::kParamBuiltin:
      nnz_ = -1;
      break;
    case HopOp::kCast:
      if (opcode_ == "as.scalar" || opcode_ == "as.double" ||
          opcode_ == "as.integer" || opcode_ == "as.logical") {
        dim1_ = 0;
        dim2_ = 0;
      } else if (in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
        nnz_ = in(0)->nnz();
      }
      break;
    case HopOp::kSolve:
      if (opcode_ == "det") {
        dim1_ = 0;
        dim2_ = 0;
      } else if (in(0) && in(1)) {
        dim1_ = in(0)->dim2();
        dim2_ = in(1)->dim2();
      } else if (in(0)) {
        dim1_ = in(0)->dim1();
        dim2_ = in(0)->dim2();
      }
      nnz_ = -1;
      break;
    case HopOp::kFunctionCall:
      break;  // outputs typed at call boundary
  }
}

int64_t Hop::OutputMemEstimate() const {
  if (dt_ == DataType::kScalar) return 64;
  if (!DimsKnown()) return 8LL * 1024 * 1024 * 1024;  // pessimistic unknown
  double sp = nnz_ >= 0 && dim1_ * dim2_ > 0
                  ? static_cast<double>(nnz_) / (dim1_ * dim2_)
                  : 1.0;
  return MatrixBlock::EstimateSizeInBytes(dim1_, dim2_, sp);
}

int64_t Hop::MemEstimate() const {
  int64_t total = OutputMemEstimate();
  for (const HopPtr& h : inputs_) total += h->OutputMemEstimate();
  return total;
}

std::string Hop::DebugString() const {
  std::ostringstream os;
  os << "h" << id_ << " " << HopOpName(op_) << "(" << opcode_ << ")";
  if (!name_.empty()) os << " '" << name_ << "'";
  os << " [" << dim1_ << "x" << dim2_ << ", nnz=" << nnz_ << "] "
     << DataTypeName(dt_) << "/" << ValueTypeName(vt_) << " <-";
  for (const HopPtr& h : inputs_) os << " h" << h->id();
  return os.str();
}

HopPtr MakeLiteralHop(const LitValue& v) {
  auto h = std::make_shared<Hop>(HopOp::kLiteral, "lit", DataType::kScalar,
                                 v.vt);
  h->literal() = v;
  h->set_dims(0, 0);
  return h;
}

HopPtr MakeTransientRead(const std::string& name, DataType dt, ValueType vt,
                         int64_t dim1, int64_t dim2, int64_t nnz) {
  auto h = std::make_shared<Hop>(HopOp::kTransientRead, "tread", dt, vt);
  h->set_name(name);
  h->set_dims(dim1, dim2);
  h->set_nnz(nnz);
  return h;
}

HopPtr MakeTransientWrite(const std::string& name, HopPtr input) {
  auto h = std::make_shared<Hop>(HopOp::kTransientWrite, "twrite",
                                 input->data_type(), input->value_type());
  h->set_name(name);
  h->AddInput(std::move(input));
  h->RefreshSizeInformation();
  return h;
}

namespace {
void TopoVisit(Hop* h, std::set<int64_t>* seen, std::vector<Hop*>* order) {
  if (!seen->insert(h->id()).second) return;
  for (const HopPtr& in : h->inputs()) TopoVisit(in.get(), seen, order);
  order->push_back(h);
}
}  // namespace

std::vector<Hop*> TopoOrder(const std::vector<HopPtr>& roots) {
  std::set<int64_t> seen;
  std::vector<Hop*> order;
  for (const HopPtr& r : roots) TopoVisit(r.get(), &seen, &order);
  return order;
}

void PropagateSizes(const std::vector<HopPtr>& roots) {
  for (Hop* h : TopoOrder(roots)) h->RefreshSizeInformation();
}

}  // namespace sysds
