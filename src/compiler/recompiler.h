#ifndef SYSDS_COMPILER_RECOMPILER_H_
#define SYSDS_COMPILER_RECOMPILER_H_

#include "common/status.h"

namespace sysds {

class BasicBlock;
class ExecutionContext;

/// Dynamic recompilation (paper §2.3(3)): before executing a basic block
/// whose HOP DAG had unknown sizes at compile time, refresh the transient-
/// read sizes from the live symbol table, re-propagate sizes, re-select
/// execution types, and regenerate the instruction sequence — mitigating
/// initial unknowns the way adaptive query processing does.
Status RecompileBasicBlock(BasicBlock* block, ExecutionContext* ec);

}  // namespace sysds

#endif  // SYSDS_COMPILER_RECOMPILER_H_
