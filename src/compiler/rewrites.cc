#include "compiler/rewrites.h"

#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/util.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {

// Applies fn to every hop bottom-up; fn may replace inputs of the visited
// hop (returning a replacement for a child via the rewrite map).
void ForEachHopBottomUp(std::vector<HopPtr>* roots,
                        const std::function<HopPtr(const HopPtr&)>& rewrite) {
  std::map<int64_t, HopPtr> memo;
  std::function<HopPtr(const HopPtr&)> visit =
      [&](const HopPtr& hop) -> HopPtr {
    auto it = memo.find(hop->id());
    if (it != memo.end()) return it->second;
    for (HopPtr& in : hop->inputs()) {
      HopPtr replaced = visit(in);
      if (replaced != in) in = replaced;
    }
    HopPtr result = rewrite(hop);
    memo[hop->id()] = result != nullptr ? result : hop;
    return memo[hop->id()];
  };
  for (HopPtr& root : *roots) {
    HopPtr replaced = visit(root);
    if (replaced != root) root = replaced;
  }
}

bool IsLiteral(const HopPtr& h) { return h->op() == HopOp::kLiteral; }

bool IsLiteralValue(const HopPtr& h, double v) {
  return IsLiteral(h) && h->literal().vt != ValueType::kString &&
         h->literal().AsDouble() == v;
}

HopPtr FoldBinaryLiteral(const Hop& hop) {
  const LitValue& a = hop.inputs()[0]->literal();
  const LitValue& b = hop.inputs()[1]->literal();
  const std::string& op = hop.opcode();
  if (a.vt == ValueType::kString || b.vt == ValueType::kString) {
    if (op == "+") {
      return MakeLiteralHop(LitValue::String(a.AsString() + b.AsString()));
    }
    return nullptr;
  }
  BinaryOpCode code;
  if (op == "+") code = BinaryOpCode::kAdd;
  else if (op == "-") code = BinaryOpCode::kSub;
  else if (op == "*") code = BinaryOpCode::kMul;
  else if (op == "/") code = BinaryOpCode::kDiv;
  else if (op == "^") code = BinaryOpCode::kPow;
  else if (op == "%%") code = BinaryOpCode::kMod;
  else if (op == "%/%") code = BinaryOpCode::kIntDiv;
  else if (op == "min") code = BinaryOpCode::kMin;
  else if (op == "max") code = BinaryOpCode::kMax;
  else if (op == "==") code = BinaryOpCode::kEqual;
  else if (op == "!=") code = BinaryOpCode::kNotEqual;
  else if (op == "<") code = BinaryOpCode::kLess;
  else if (op == "<=") code = BinaryOpCode::kLessEqual;
  else if (op == ">") code = BinaryOpCode::kGreater;
  else if (op == ">=") code = BinaryOpCode::kGreaterEqual;
  else if (op == "&") code = BinaryOpCode::kAnd;
  else if (op == "|") code = BinaryOpCode::kOr;
  else return nullptr;
  double r = ApplyBinary(code, a.AsDouble(), b.AsDouble());
  switch (code) {
    case BinaryOpCode::kEqual:
    case BinaryOpCode::kNotEqual:
    case BinaryOpCode::kLess:
    case BinaryOpCode::kLessEqual:
    case BinaryOpCode::kGreater:
    case BinaryOpCode::kGreaterEqual:
    case BinaryOpCode::kAnd:
    case BinaryOpCode::kOr:
      return MakeLiteralHop(LitValue::Bool(r != 0.0));
    default:
      break;
  }
  if (a.vt == ValueType::kInt64 && b.vt == ValueType::kInt64 &&
      code != BinaryOpCode::kDiv && code != BinaryOpCode::kPow &&
      r == std::floor(r) && std::isfinite(r)) {
    return MakeLiteralHop(LitValue::Int(static_cast<int64_t>(r)));
  }
  return MakeLiteralHop(LitValue::Double(r));
}

HopPtr FoldUnaryLiteral(const Hop& hop) {
  const LitValue& a = hop.inputs()[0]->literal();
  if (a.vt == ValueType::kString) return nullptr;
  const std::string& op = hop.opcode();
  if (op == "uminus") {
    if (a.vt == ValueType::kInt64) return MakeLiteralHop(LitValue::Int(-a.i));
    return MakeLiteralHop(LitValue::Double(-a.AsDouble()));
  }
  if (op == "!") return MakeLiteralHop(LitValue::Bool(!a.AsBool()));
  UnaryOpCode code;
  if (op == "exp") code = UnaryOpCode::kExp;
  else if (op == "log") code = UnaryOpCode::kLog;
  else if (op == "sqrt") code = UnaryOpCode::kSqrt;
  else if (op == "abs") code = UnaryOpCode::kAbs;
  else if (op == "round") code = UnaryOpCode::kRound;
  else if (op == "floor") code = UnaryOpCode::kFloor;
  else if (op == "ceil") code = UnaryOpCode::kCeil;
  else if (op == "sin") code = UnaryOpCode::kSin;
  else if (op == "cos") code = UnaryOpCode::kCos;
  else if (op == "tan") code = UnaryOpCode::kTan;
  else if (op == "sign") code = UnaryOpCode::kSign;
  else return nullptr;
  return MakeLiteralHop(LitValue::Double(ApplyUnary(code, a.AsDouble())));
}

}  // namespace

void RewriteConstantFolding(std::vector<HopPtr>* roots) {
  ForEachHopBottomUp(roots, [](const HopPtr& hop) -> HopPtr {
    if (hop->data_type() != DataType::kScalar) return hop;
    if (hop->op() == HopOp::kBinary && hop->inputs().size() == 2 &&
        IsLiteral(hop->inputs()[0]) && IsLiteral(hop->inputs()[1])) {
      HopPtr folded = FoldBinaryLiteral(*hop);
      if (folded != nullptr) return folded;
    }
    if (hop->op() == HopOp::kUnary && hop->inputs().size() == 1 &&
        IsLiteral(hop->inputs()[0])) {
      HopPtr folded = FoldUnaryLiteral(*hop);
      if (folded != nullptr) return folded;
    }
    return hop;
  });
}

void RewriteAlgebraicSimplification(std::vector<HopPtr>* roots) {
  ForEachHopBottomUp(roots, [](const HopPtr& hop) -> HopPtr {
    // Double transpose elimination: t(t(X)) -> X.
    if (hop->op() == HopOp::kReorg && hop->opcode() == "t" &&
        hop->inputs()[0]->op() == HopOp::kReorg &&
        hop->inputs()[0]->opcode() == "t") {
      return hop->inputs()[0]->inputs()[0];
    }
    if (hop->op() == HopOp::kBinary &&
        hop->data_type() == DataType::kMatrix &&
        hop->inputs().size() == 2) {
      const HopPtr& a = hop->inputs()[0];
      const HopPtr& b = hop->inputs()[1];
      const std::string& op = hop->opcode();
      bool a_matrix = a->data_type() == DataType::kMatrix;
      bool b_matrix = b->data_type() == DataType::kMatrix;
      // X*1, X/1, X+0, X-0, X^1 -> X ; 1*X, 0+X -> X.
      if (a_matrix && ((op == "*" && IsLiteralValue(b, 1.0)) ||
                       (op == "/" && IsLiteralValue(b, 1.0)) ||
                       (op == "+" && IsLiteralValue(b, 0.0)) ||
                       (op == "-" && IsLiteralValue(b, 0.0)) ||
                       (op == "^" && IsLiteralValue(b, 1.0)))) {
        return a;
      }
      if (b_matrix && ((op == "*" && IsLiteralValue(a, 1.0)) ||
                       (op == "+" && IsLiteralValue(a, 0.0)))) {
        return b;
      }
    }
    return hop;
  });
}

void RewriteFusedOps(std::vector<HopPtr>* roots) {
  ForEachHopBottomUp(roots, [](const HopPtr& hop) -> HopPtr {
    if (hop->op() != HopOp::kMatMult || hop->inputs().size() != 2) return hop;
    const HopPtr& a = hop->inputs()[0];
    const HopPtr& b = hop->inputs()[1];
    bool a_t = a->op() == HopOp::kReorg && a->opcode() == "t";
    bool b_t = b->op() == HopOp::kReorg && b->opcode() == "t";
    // t(X) %*% X -> tsmm(X, left)
    if (a_t && a->inputs()[0].get() == b.get()) {
      auto tsmm = std::make_shared<Hop>(HopOp::kTsmm, "left",
                                        DataType::kMatrix, ValueType::kFP64);
      tsmm->AddInput(b);
      tsmm->RefreshSizeInformation();
      return tsmm;
    }
    // X %*% t(X) -> tsmm(X, right)
    if (b_t && b->inputs()[0].get() == a.get()) {
      auto tsmm = std::make_shared<Hop>(HopOp::kTsmm, "right",
                                        DataType::kMatrix, ValueType::kFP64);
      tsmm->AddInput(a);
      tsmm->RefreshSizeInformation();
      return tsmm;
    }
    // t(A) %*% B -> tmm(A, B): avoids materializing the transpose (the
    // fused call the paper notes TF lacks, §4.2).
    if (a_t) {
      auto tmm = std::make_shared<Hop>(HopOp::kTmm, "tmm", DataType::kMatrix,
                                       ValueType::kFP64);
      tmm->AddInput(a->inputs()[0]);
      tmm->AddInput(b);
      tmm->RefreshSizeInformation();
      return tmm;
    }
    return hop;
  });
}

namespace {

// Structural signature for CSE. Non-deterministic datagen (seed -1) and
// reads are excluded by returning a unique signature.
std::string HopSignature(const Hop& hop,
                         const std::map<int64_t, int64_t>& canon) {
  std::ostringstream os;
  switch (hop.op()) {
    case HopOp::kPersistentRead:
    case HopOp::kFunctionCall:
    case HopOp::kParamBuiltin:
    case HopOp::kPersistentWrite:
      os << "unique#" << hop.id();
      return os.str();
    case HopOp::kDataGen:
      for (const HopPtr& in : hop.inputs()) {
        if (in->op() == HopOp::kLiteral &&
            in->literal().vt == ValueType::kInt64 && in->literal().i == -1) {
          os << "unique#" << hop.id();
          return os.str();
        }
      }
      break;
    default:
      break;
  }
  os << HopOpName(hop.op()) << "|" << hop.opcode() << "|" << hop.name()
     << "|";
  if (hop.op() == HopOp::kLiteral) {
    os << ValueTypeName(hop.literal().vt) << ":" << hop.literal().AsString();
  }
  for (const auto& [k, v] : hop.params()) os << k << "=" << v << ";";
  os << "|";
  for (const HopPtr& in : hop.inputs()) {
    auto it = canon.find(in->id());
    os << (it != canon.end() ? it->second : in->id()) << ",";
  }
  return os.str();
}

}  // namespace

void RewriteCommonSubexpressionElimination(std::vector<HopPtr>* roots) {
  std::map<std::string, HopPtr> seen;
  std::map<int64_t, int64_t> canon;  // hop id -> canonical id
  ForEachHopBottomUp(roots, [&](const HopPtr& hop) -> HopPtr {
    if (hop->op() == HopOp::kTransientWrite) return hop;
    std::string sig = HopSignature(*hop, canon);
    auto it = seen.find(sig);
    if (it != seen.end()) {
      canon[hop->id()] = it->second->id();
      return it->second;
    }
    seen[sig] = hop;
    canon[hop->id()] = hop->id();
    return hop;
  });
}

void RewriteMatMultChains(std::vector<HopPtr>* roots) {
  // Collects left/right-deep chains of pure matmults with known dims and
  // reorders them via the classic dynamic-programming parenthesization.
  ForEachHopBottomUp(roots, [](const HopPtr& hop) -> HopPtr {
    if (hop->op() != HopOp::kMatMult) return hop;
    // Gather the chain.
    std::vector<HopPtr> leaves;
    std::function<bool(const HopPtr&)> gather =
        [&](const HopPtr& h) -> bool {
      if (h->op() == HopOp::kMatMult) {
        return gather(h->inputs()[0]) && gather(h->inputs()[1]);
      }
      if (!h->DimsKnown()) return false;
      leaves.push_back(h);
      return true;
    };
    if (!gather(hop) || leaves.size() < 3) return hop;
    size_t n = leaves.size();
    std::vector<int64_t> dims(n + 1);
    for (size_t i = 0; i < n; ++i) dims[i] = leaves[i]->dim1();
    dims[n] = leaves[n - 1]->dim2();
    std::vector<std::vector<int64_t>> cost(n, std::vector<int64_t>(n, 0));
    std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
    for (size_t len = 2; len <= n; ++len) {
      for (size_t i = 0; i + len <= n; ++i) {
        size_t j = i + len - 1;
        cost[i][j] = INT64_MAX;
        for (size_t k = i; k < j; ++k) {
          int64_t c = cost[i][k] + cost[k + 1][j] +
                      dims[i] * dims[k + 1] * dims[j + 1];
          if (c < cost[i][j]) {
            cost[i][j] = c;
            split[i][j] = k;
          }
        }
      }
    }
    std::function<HopPtr(size_t, size_t)> build = [&](size_t i,
                                                      size_t j) -> HopPtr {
      if (i == j) return leaves[i];
      auto mm = std::make_shared<Hop>(HopOp::kMatMult, "ba+*",
                                      DataType::kMatrix, ValueType::kFP64);
      mm->AddInput(build(i, split[i][j]));
      mm->AddInput(build(split[i][j] + 1, j));
      mm->RefreshSizeInformation();
      return mm;
    };
    return build(0, n - 1);
  });
}

void ApplyStaticRewrites(std::vector<HopPtr>* roots) {
  RewriteConstantFolding(roots);
  RewriteAlgebraicSimplification(roots);
  RewriteMatMultChains(roots);
  RewriteFusedOps(roots);
  RewriteCommonSubexpressionElimination(roots);
  PropagateSizes(*roots);
}

}  // namespace sysds
