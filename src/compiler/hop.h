#ifndef SYSDS_COMPILER_HOP_H_
#define SYSDS_COMPILER_HOP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace sysds {

/// High-level (logical) operator kinds (paper §2.3(2)): statement blocks
/// compile into DAGs of these; rewrites, size propagation, and memory
/// estimates run on the DAG before physical operator (LOP) selection.
enum class HopOp {
  kLiteral,
  kTransientRead,   // read of a live variable from the symbol table
  kTransientWrite,  // write of a live variable at block exit
  kPersistentRead,  // read(file, format)
  kPersistentWrite, // write(X, file, format)
  kDataGen,         // opcode: rand | seq | fill | sample
  kBinary,          // opcode: + - * / ^ %% %/% min max == != < <= > >= & |
  kUnary,           // opcode: exp log ... ! uminus nrow ncol length print...
  kAggUnary,        // opcode: uasum uarsum uacsum uamean uamax uarimax ...
  kCumAgg,          // opcode: cumsum cumprod cummin cummax
  kMatMult,         // generic A %*% B
  kTsmm,            // t(X)%*%X fused (opcode: left|right)
  kTmm,             // t(A)%*%B fused
  kReorg,           // opcode: t | rev | rdiag | reshape | sort
  kIndexing,        // inputs: X, rl, ru, cl, cu (1-based scalar hops)
  kLeftIndexing,    // inputs: X, rhs, rl, ru, cl, cu
  kNary,            // opcode: cbind | rbind | list
  kTernary,         // opcode: ifelse | ctable
  kParamBuiltin,    // opcode: transformencode|transformapply|transformdecode|
                    //         replace|removeEmpty|order|table|toString|fmt
  kCast,            // opcode: as.scalar|as.matrix|as.frame|as.double|
                    //         as.integer|as.logical
  kSolve,           // opcode: solve | cholesky | inv | det
  kFunctionCall,    // user or DML-bodied builtin function (multi-output)
  kFedInit,         // federated(addresses, ranges)
  kFusedOp,         // fused elementwise(+aggregate) region; the serialized
                    // micro-plan travels as a trailing string-literal input
};

const char* HopOpName(HopOp op);

/// Literal payload for kLiteral hops and instruction operands.
struct LitValue {
  ValueType vt = ValueType::kFP64;
  double d = 0.0;
  int64_t i = 0;
  bool b = false;
  std::string s;

  static LitValue Double(double v);
  static LitValue Int(int64_t v);
  static LitValue Bool(bool v);
  static LitValue String(std::string v);

  double AsDouble() const;
  int64_t AsInt() const;
  bool AsBool() const;
  std::string AsString() const;
};

class Hop;
using HopPtr = std::shared_ptr<Hop>;

/// A logical operator node. Dimensions use -1 for "unknown"; nnz likewise.
class Hop {
 public:
  Hop(HopOp op, std::string opcode, DataType dt, ValueType vt);

  int64_t id() const { return id_; }
  HopOp op() const { return op_; }
  const std::string& opcode() const { return opcode_; }
  DataType data_type() const { return dt_; }
  ValueType value_type() const { return vt_; }
  void set_types(DataType dt, ValueType vt) { dt_ = dt; vt_ = vt; }

  int64_t dim1() const { return dim1_; }
  int64_t dim2() const { return dim2_; }
  int64_t nnz() const { return nnz_; }
  void set_dims(int64_t d1, int64_t d2) { dim1_ = d1; dim2_ = d2; }
  void set_nnz(int64_t nnz) { nnz_ = nnz; }
  bool DimsKnown() const { return dim1_ >= 0 && dim2_ >= 0; }
  double Sparsity() const;

  std::vector<HopPtr>& inputs() { return inputs_; }
  const std::vector<HopPtr>& inputs() const { return inputs_; }
  void AddInput(HopPtr h) { inputs_.push_back(std::move(h)); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  LitValue& literal() { return literal_; }
  const LitValue& literal() const { return literal_; }

  std::map<std::string, std::string>& params() { return params_; }
  const std::map<std::string, std::string>& params() const { return params_; }

  ExecType exec_type() const { return exec_type_; }
  void set_exec_type(ExecType et) { exec_type_ = et; }

  /// Output names for multi-return function calls (and transformencode).
  std::vector<std::string>& outputs() { return outputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }

  /// Updates this hop's output dims/nnz from its inputs' (local rule; the
  /// DAG-level pass is PropagateSizes).
  void RefreshSizeInformation();

  /// Estimated in-memory size in bytes of this hop's output (worst-case
  /// dense when sparsity unknown).
  int64_t OutputMemEstimate() const;
  /// Output + inputs (the operation footprint used for CP/SPARK selection).
  int64_t MemEstimate() const;

  std::string DebugString() const;

 private:
  static int64_t NextId();

  int64_t id_;
  HopOp op_;
  std::string opcode_;
  DataType dt_;
  ValueType vt_;
  int64_t dim1_ = -1, dim2_ = -1, nnz_ = -1;
  std::vector<HopPtr> inputs_;
  std::string name_;
  LitValue literal_;
  std::map<std::string, std::string> params_;
  ExecType exec_type_ = ExecType::kCP;
  std::vector<std::string> outputs_;
};

// Factories.
HopPtr MakeLiteralHop(const LitValue& v);
HopPtr MakeTransientRead(const std::string& name, DataType dt, ValueType vt,
                         int64_t dim1, int64_t dim2, int64_t nnz);
HopPtr MakeTransientWrite(const std::string& name, HopPtr input);

/// Runs size propagation over the DAG roots (post-order, memoized).
void PropagateSizes(const std::vector<HopPtr>& roots);

/// Collects all hops reachable from roots in topological (post-) order.
std::vector<Hop*> TopoOrder(const std::vector<HopPtr>& roots);

}  // namespace sysds

#endif  // SYSDS_COMPILER_HOP_H_
