#ifndef SYSDS_COMPILER_LOP_H_
#define SYSDS_COMPILER_LOP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "compiler/hop.h"
#include "runtime/controlprog/instruction.h"

namespace sysds {

/// Low-level (physical) operator (paper §2.3(2)): the result of operator
/// selection over a HOP. A LOP fixes the execution backend (CP/SPARK/FED)
/// and the physical opcode, and carries resolved operands; instruction
/// generation is a direct translation of the LOP DAG in topological order.
struct Lop {
  const Hop* hop = nullptr;     // originating logical operator
  std::string opcode;           // physical opcode (e.g. "tsmm", "ba+*")
  ExecType exec_type = ExecType::kCP;
  std::vector<Operand> inputs;
  std::vector<Operand> outputs;
  // Extra physical parameters (e.g. format/header for reads, param names
  // for parameterized builtins, function arg names).
  std::vector<std::string> param_names;

  std::string ToString() const;
};

}  // namespace sysds

#endif  // SYSDS_COMPILER_LOP_H_
