#ifndef SYSDS_COMPILER_REWRITES_H_
#define SYSDS_COMPILER_REWRITES_H_

#include <vector>

#include "compiler/hop.h"

namespace sysds {

/// Static HOP rewrites (paper §2.3(2)): algebraic simplifications, fused
/// operator patterns, common subexpression elimination, and matrix-multiply
/// chain reordering. Rewrites mutate the DAG in place (roots stay valid).
/// Applied before size propagation finalizes and operators are selected.
void ApplyStaticRewrites(std::vector<HopPtr>* roots);

// Individual passes, exposed for unit testing.
void RewriteConstantFolding(std::vector<HopPtr>* roots);
void RewriteAlgebraicSimplification(std::vector<HopPtr>* roots);
void RewriteFusedOps(std::vector<HopPtr>* roots);          // tsmm / tmm
void RewriteCommonSubexpressionElimination(std::vector<HopPtr>* roots);
void RewriteMatMultChains(std::vector<HopPtr>* roots);

}  // namespace sysds

#endif  // SYSDS_COMPILER_REWRITES_H_
