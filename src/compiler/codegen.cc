#include "compiler/codegen.h"

#include <map>
#include <sstream>

#include "compiler/fusion.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/dist/instructions_spark.h"
#include "runtime/matrix/lib_fused.h"

namespace sysds {

std::string Lop::ToString() const {
  std::ostringstream os;
  os << ExecTypeName(exec_type) << " " << opcode;
  for (const Operand& in : inputs) os << " " << in.ToString();
  os << " ->";
  for (const Operand& out : outputs) os << " " << out.ToString();
  return os.str();
}

namespace {

// Ops with a distributed (SPARK-sim) physical implementation.
bool SupportsSpark(const Hop& hop) {
  switch (hop.op()) {
    case HopOp::kMatMult:
    case HopOp::kTsmm:
    case HopOp::kBinary:
    case HopOp::kAggUnary:
      return hop.data_type() == DataType::kMatrix ||
             hop.op() == HopOp::kAggUnary;
    default:
      return false;
  }
}

}  // namespace

void SelectExecTypes(const std::vector<HopPtr>& roots,
                     const DMLConfig& config) {
  for (Hop* hop : TopoOrder(roots)) {
    bool spark = config.force_spark ||
                 hop->MemEstimate() > config.cp_memory_budget;
    hop->set_exec_type(spark && SupportsSpark(*hop) ? ExecType::kSpark
                                                    : ExecType::kCP);
  }
}

namespace {

class LopBuilder {
 public:
  explicit LopBuilder(const DMLConfig& config) : config_(config) {}

  StatusOr<std::vector<Lop>> Build(const std::vector<HopPtr>& roots) {
    for (Hop* hop : TopoOrder(roots)) {
      SYSDS_RETURN_IF_ERROR(Lower(hop));
    }
    // Clean up block-local temporaries (SystemDS emits rmvar likewise); the
    // interpreter drops them from the symbol table and lineage map.
    if (!temps_.empty()) {
      Lop rm;
      rm.opcode = "rmvar";
      rm.exec_type = ExecType::kCP;
      for (const Operand& t : temps_) rm.inputs.push_back(t);
      lops_.push_back(std::move(rm));
    }
    return std::move(lops_);
  }

 private:
  const DMLConfig& config_;
  std::vector<Lop> lops_;
  std::map<int64_t, Operand> operands_;  // hop id -> result operand
  std::vector<Operand> temps_;

  Operand In(const Hop& hop, size_t k) const {
    return operands_.at(hop.inputs()[k]->id());
  }

  Operand MakeTemp(const Hop& hop) {
    Operand out = Operand::Var("_mVar" + std::to_string(hop.id()),
                               hop.data_type(), hop.value_type());
    temps_.push_back(out);
    return out;
  }

  Status Lower(Hop* hop) {
    switch (hop->op()) {
      case HopOp::kLiteral:
        operands_[hop->id()] = Operand::Literal(hop->literal());
        return Status::Ok();
      case HopOp::kTransientRead: {
        Operand var =
            Operand::Var(hop->name(), hop->data_type(), hop->value_type());
        if (hop->params().count("snapshot")) {
          // The variable is reassigned later in this block: snapshot its
          // current value into a temp to avoid write-after-read hazards.
          Lop lop;
          lop.hop = hop;
          lop.opcode = "cpvar";
          lop.inputs.push_back(var);
          lop.outputs.push_back(MakeTemp(*hop));
          operands_[hop->id()] = lop.outputs[0];
          lops_.push_back(std::move(lop));
        } else {
          operands_[hop->id()] = var;
        }
        return Status::Ok();
      }
      case HopOp::kTransientWrite: {
        Operand in = In(*hop, 0);
        if (!in.is_literal && in.name == hop->name()) {
          operands_[hop->id()] = in;
          return Status::Ok();
        }
        Lop lop;
        lop.hop = hop;
        lop.opcode = "cpvar";
        lop.inputs.push_back(in);
        lop.outputs.push_back(
            Operand::Var(hop->name(), hop->data_type(), hop->value_type()));
        operands_[hop->id()] = lop.outputs[0];
        lops_.push_back(std::move(lop));
        return Status::Ok();
      }
      default:
        break;
    }

    Lop lop;
    lop.hop = hop;
    lop.exec_type = hop->exec_type();
    lop.opcode = hop->opcode();
    for (size_t k = 0; k < hop->inputs().size(); ++k) {
      lop.inputs.push_back(In(*hop, k));
    }

    // Output conventions per op class.
    bool has_output = true;
    switch (hop->op()) {
      case HopOp::kPersistentWrite:
        lop.opcode = "pwrite";
        has_output = false;
        break;
      case HopOp::kUnary:
        if (hop->opcode() == "print" || hop->opcode() == "stop") {
          has_output = false;
        }
        break;
      case HopOp::kFunctionCall:
      case HopOp::kParamBuiltin: {
        // Multi-output ops write the declared variable names directly.
        if (!hop->outputs().empty()) {
          has_output = false;
          auto it = hop->params().find("outdts");
          std::vector<std::string> dts;
          if (it != hop->params().end()) {
            std::stringstream ss(it->second);
            std::string tok;
            while (std::getline(ss, tok, ',')) dts.push_back(tok);
          }
          for (size_t k = 0; k < hop->outputs().size(); ++k) {
            DataType dt = DataType::kMatrix;
            ValueType vt = ValueType::kFP64;
            if (k < dts.size()) {
              if (dts[k] == "SCALAR") dt = DataType::kScalar;
              else if (dts[k] == "FRAME") dt = DataType::kFrame;
              else if (dts[k] == "LIST") dt = DataType::kList;
              std::string vts = dts[k].find(':') != std::string::npos
                                    ? dts[k].substr(dts[k].find(':') + 1)
                                    : "";
              if (!vts.empty()) vt = ParseValueType(vts);
              if (dts[k].rfind("SCALAR", 0) == 0) dt = DataType::kScalar;
            }
            lop.outputs.push_back(Operand::Var(hop->outputs()[k], dt, vt));
          }
        }
        break;
      }
      default:
        break;
    }
    if (has_output) {
      lop.outputs.push_back(MakeTemp(*hop));
      operands_[hop->id()] = lop.outputs[0];
    }

    // Physical parameters.
    for (const auto& [key, value] : hop->params()) {
      lop.param_names.push_back(key + "=" + value);
    }
    lops_.push_back(std::move(lop));
    return Status::Ok();
  }
};

StatusOr<InstructionPtr> LopToInstruction(const Lop& lop) {
  const Hop* hop = lop.hop;
  InstructionPtr instr;
  auto param = [&](const std::string& key) -> std::string {
    std::string prefix = key + "=";
    for (const std::string& p : lop.param_names) {
      if (p.rfind(prefix, 0) == 0) return p.substr(prefix.size());
    }
    return "";
  };

  if (lop.opcode == "rmvar") {
    instr = std::make_unique<VariableInstr>("rmvar");
  } else if (lop.opcode == "cpvar") {
    instr = std::make_unique<VariableInstr>("cpvar");
  } else if (hop == nullptr) {
    return CompileError("lop without hop: " + lop.opcode);
  } else {
    switch (hop->op()) {
      case HopOp::kBinary:
        if (lop.exec_type == ExecType::kSpark) {
          instr = std::make_unique<SparkBinaryInstr>(lop.opcode);
        } else {
          instr = std::make_unique<BinaryInstr>(lop.opcode);
        }
        break;
      case HopOp::kUnary:
        if (lop.opcode == "print") {
          instr = std::make_unique<PrintInstr>();
        } else if (lop.opcode == "stop") {
          instr = std::make_unique<StopInstr>();
        } else {
          instr = std::make_unique<UnaryInstr>(lop.opcode);
        }
        break;
      case HopOp::kAggUnary:
        if (lop.exec_type == ExecType::kSpark) {
          instr = std::make_unique<SparkAggUnaryInstr>(lop.opcode);
        } else {
          instr = std::make_unique<AggUnaryInstr>(lop.opcode);
        }
        break;
      case HopOp::kCumAgg:
        instr = std::make_unique<CumAggInstr>(lop.opcode);
        break;
      case HopOp::kMatMult:
        if (lop.exec_type == ExecType::kSpark) {
          instr = std::make_unique<SparkMatMultInstr>();
        } else {
          instr = std::make_unique<MatMultInstr>();
        }
        break;
      case HopOp::kTsmm:
        if (lop.exec_type == ExecType::kSpark) {
          instr = std::make_unique<SparkTsmmInstr>(lop.opcode == "left");
        } else {
          instr = std::make_unique<TsmmInstr>(lop.opcode == "left");
        }
        break;
      case HopOp::kTmm:
        instr = std::make_unique<TmmInstr>();
        break;
      case HopOp::kReorg:
        instr = std::make_unique<ReorgInstr>(lop.opcode);
        break;
      case HopOp::kIndexing:
        instr = std::make_unique<IndexingInstr>();
        break;
      case HopOp::kLeftIndexing:
        instr = std::make_unique<LeftIndexingInstr>();
        break;
      case HopOp::kDataGen:
        instr = std::make_unique<DataGenInstr>(lop.opcode);
        break;
      case HopOp::kNary:
        instr = std::make_unique<AppendInstr>(lop.opcode == "cbind");
        break;
      case HopOp::kTernary:
        instr = std::make_unique<TernaryInstr>(lop.opcode);
        break;
      case HopOp::kCast:
        instr = std::make_unique<CastInstr>(lop.opcode);
        break;
      case HopOp::kSolve:
        instr = std::make_unique<SolveInstr>(lop.opcode);
        break;
      case HopOp::kParamBuiltin: {
        auto pb = std::make_unique<ParamBuiltinInstr>(lop.opcode);
        std::stringstream ss(param("pnames"));
        std::string tok;
        while (std::getline(ss, tok, ',')) pb->ParamNames().push_back(tok);
        instr = std::move(pb);
        break;
      }
      case HopOp::kPersistentRead: {
        auto rd = std::make_unique<ReadInstr>();
        if (!param("format").empty()) rd->format = param("format");
        if (!param("data_type").empty()) rd->data_type = param("data_type");
        rd->header = param("header") == "true";
        if (!param("sep").empty()) rd->sep = param("sep")[0];
        instr = std::move(rd);
        break;
      }
      case HopOp::kPersistentWrite: {
        auto wr = std::make_unique<WriteInstr>();
        if (!param("format").empty()) wr->format = param("format");
        wr->header = param("header") == "true";
        if (!param("sep").empty()) wr->sep = param("sep")[0];
        instr = std::move(wr);
        break;
      }
      case HopOp::kFunctionCall: {
        auto fc = std::make_unique<FunctionCallInstr>(hop->name());
        std::stringstream ss(param("argnames"));
        std::string tok;
        bool any = !param("argnames").empty();
        if (any) {
          while (std::getline(ss, tok, ',')) {
            fc->ArgNames().push_back(tok == "_" ? "" : tok);
          }
        }
        instr = std::move(fc);
        break;
      }
      case HopOp::kFusedOp: {
        if (lop.inputs.empty() || !lop.inputs.back().is_literal) {
          return CompileError("fused op missing micro-plan literal");
        }
        SYSDS_ASSIGN_OR_RETURN(
            FusedPlan plan,
            FusedPlan::Parse(lop.inputs.back().lit.AsString()));
        instr = std::make_unique<FusedInstr>(std::move(plan));
        break;
      }
      case HopOp::kFedInit:
        instr = std::make_unique<SparkBinaryInstr>("fedinit-unsupported");
        return CompileError("federated init must be lowered by the fed module");
      default:
        return CompileError(std::string("cannot lower hop ") +
                            HopOpName(hop->op()) + " opcode " + lop.opcode);
    }
  }

  for (const Operand& in : lop.inputs) instr->AddInput(in);
  for (const Operand& out : lop.outputs) instr->AddOutput(out);
  return instr;
}

}  // namespace

StatusOr<std::vector<Lop>> BuildLops(const std::vector<HopPtr>& roots,
                                     const DMLConfig& config) {
  return LopBuilder(config).Build(roots);
}

StatusOr<std::vector<InstructionPtr>> LopsToInstructions(
    const std::vector<Lop>& lops) {
  std::vector<InstructionPtr> instructions;
  instructions.reserve(lops.size());
  for (const Lop& lop : lops) {
    SYSDS_ASSIGN_OR_RETURN(InstructionPtr instr, LopToInstruction(lop));
    instructions.push_back(std::move(instr));
  }
  return instructions;
}

StatusOr<std::vector<InstructionPtr>> GenerateInstructions(
    const std::vector<HopPtr>& roots, const DMLConfig& config) {
  // Fusion runs on a copy-on-write rebuild so the caller's roots stay
  // pristine for dynamic recompilation (which re-fuses with updated sizes).
  std::vector<HopPtr> planned =
      config.fusion_enabled ? PlanFusion(roots, config) : roots;
  SelectExecTypes(planned, config);
  SYSDS_ASSIGN_OR_RETURN(std::vector<Lop> lops, BuildLops(planned, config));
  return LopsToInstructions(lops);
}

}  // namespace sysds
