#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "builtins/registry.h"
#include "compiler/codegen.h"
#include "compiler/compiler.h"
#include "compiler/compress_rewrite.h"
#include "compiler/hop.h"
#include "compiler/liveness.h"
#include "compiler/rewrites.h"
#include "lang/parser.h"
#include "obs/trace.h"

namespace sysds {

namespace {

Status ErrAt(const Expr& e, const std::string& msg) {
  return ValidateError(msg + " at line " + std::to_string(e.line) + ":" +
                       std::to_string(e.col));
}

Status ErrAt(const Stmt& s, const std::string& msg) {
  return ValidateError(msg + " at line " + std::to_string(s.line) + ":" +
                       std::to_string(s.col));
}

bool IsMatrix(const HopPtr& h) { return h->data_type() == DataType::kMatrix; }
bool IsScalar(const HopPtr& h) { return h->data_type() == DataType::kScalar; }

/// Positional/named argument access for native builtin calls.
class CallArgs {
 public:
  explicit CallArgs(const Expr& call) {
    for (size_t i = 0; i < call.args.size(); ++i) {
      const std::string& name =
          i < call.arg_names.size() ? call.arg_names[i] : "";
      if (name.empty()) {
        positional_.push_back(call.args[i].get());
      } else {
        named_[name] = call.args[i].get();
      }
    }
  }

  size_t NumPositional() const { return positional_.size(); }
  size_t Total() const { return positional_.size() + named_.size(); }

  /// The k-th positional argument or the named argument, else nullptr.
  const Expr* Get(size_t k, const std::string& name) const {
    if (k < positional_.size()) return positional_[k];
    auto it = named_.find(name);
    return it == named_.end() ? nullptr : it->second;
  }

 private:
  std::vector<const Expr*> positional_;
  std::map<std::string, const Expr*> named_;
};

/// Collects variable names assigned anywhere in a statement list (used for
/// conservative size propagation through loops and parfor result vars).
void CollectAssignedVars(const std::vector<StmtPtr>& stmts,
                         std::set<std::string>* out) {
  for (const StmtPtr& s : stmts) {
    switch (s->kind) {
      case StmtKind::kAssign:
        for (const AssignTarget& t : s->targets) out->insert(t.name);
        break;
      case StmtKind::kIf:
        CollectAssignedVars(s->body, out);
        CollectAssignedVars(s->else_body, out);
        break;
      case StmtKind::kWhile:
        CollectAssignedVars(s->body, out);
        break;
      case StmtKind::kFor:
        out->insert(s->loop_var);
        CollectAssignedVars(s->body, out);
        break;
      default:
        break;
    }
  }
}

class Compiler {
 public:
  Compiler(Program* prog, const DMLConfig* config)
      : prog_(prog), config_(config) {}

  Status AddFunctionAsts(const std::vector<StmtPtr>& functions) {
    for (const StmtPtr& f : functions) {
      if (!function_asts_.emplace(f->function_name, f.get()).second) {
        return ErrAt(*f, "duplicate function '" + f->function_name + "'");
      }
    }
    return Status::Ok();
  }

  Status CompileTopLevel(const std::vector<StmtPtr>& stmts,
                         SymbolInfoMap* symbols) {
    return BuildBlocks(stmts, symbols, &prog_->Blocks());
  }

 private:
  // ---- per-basic-block build context ----
  struct BlockCtx {
    std::map<std::string, HopPtr> hops;       // current defs within block
    std::map<std::string, int> versions;      // bumped by fcall outputs
    std::vector<std::string> assigned_order;  // first-assignment order
    // Variables assigned anywhere in this block: transient reads of these
    // must snapshot the value (cpvar to a temp) to avoid write-after-read
    // hazards with the block-exit transient writes.
    std::set<std::string> block_assigned;
    SymbolInfoMap* symbols;
  };

  Program* prog_;
  const DMLConfig* config_;
  std::map<std::string, const Stmt*> function_asts_;
  std::set<std::string> loaded_builtin_scripts_;

  // ---- functions ----

  bool IsFunctionName(const std::string& name) {
    if (prog_->Functions().count(name) || function_asts_.count(name)) {
      return true;
    }
    return GetBuiltinScript(name) != nullptr;
  }

  Status EnsureFunction(const std::string& name) {
    if (prog_->Functions().count(name)) return Status::Ok();
    if (!function_asts_.count(name)) {
      const char* script = GetBuiltinScript(name);
      if (script == nullptr) {
        return ValidateError("unknown function '" + name + "'");
      }
      if (loaded_builtin_scripts_.insert(name).second) {
        SYSDS_ASSIGN_OR_RETURN(DMLProgram parsed, ParseDML(script));
        for (StmtPtr& f : parsed.functions) {
          if (!function_asts_.count(f->function_name)) {
            builtin_fn_storage_.push_back(std::move(f));
            function_asts_[builtin_fn_storage_.back()->function_name] =
                builtin_fn_storage_.back().get();
          }
        }
      }
      if (!function_asts_.count(name)) {
        return Internal("builtin script for '" + name +
                        "' does not define it");
      }
    }
    return CompileFunction(name, function_asts_[name]);
  }

  static StatusOr<LitValue> EvalDefault(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLiteral: return LitValue::Int(e.int_value);
      case ExprKind::kDoubleLiteral: return LitValue::Double(e.double_value);
      case ExprKind::kStringLiteral: return LitValue::String(e.string_value);
      case ExprKind::kBoolLiteral: return LitValue::Bool(e.bool_value);
      case ExprKind::kUnary:
        if (e.name == "-") {
          SYSDS_ASSIGN_OR_RETURN(LitValue v, EvalDefault(*e.args[0]));
          if (v.vt == ValueType::kInt64) return LitValue::Int(-v.i);
          return LitValue::Double(-v.AsDouble());
        }
        break;
      default:
        break;
    }
    return ValidateError("function default values must be literals");
  }

  Status CompileFunction(const std::string& name, const Stmt* ast) {
    auto fb = std::make_shared<FunctionBlock>();
    fb->name = name;
    for (const FunctionParam& p : ast->params) {
      FunctionBlock::Param fp;
      fp.name = p.name;
      fp.dt = p.data_type;
      fp.vt = p.value_type;
      if (p.default_value != nullptr) {
        SYSDS_ASSIGN_OR_RETURN(fp.default_value, EvalDefault(*p.default_value));
        fp.has_default = true;
      }
      fb->params.push_back(std::move(fp));
    }
    for (const FunctionParam& r : ast->returns) {
      FunctionBlock::Param fr;
      fr.name = r.name;
      fr.dt = r.data_type;
      fr.vt = r.value_type;
      fb->returns.push_back(std::move(fr));
    }
    // Insert before compiling the body so recursion resolves.
    prog_->Functions()[name] = fb;

    SymbolInfoMap symbols;
    for (const FunctionBlock::Param& p : fb->params) {
      SymbolInfo info;
      info.dt = p.dt;
      info.vt = p.vt;
      if (p.dt == DataType::kScalar) {
        info.dim1 = 0;
        info.dim2 = 0;
      }
      symbols[p.name] = info;
    }
    return BuildBlocks(ast->body, &symbols, &fb->body);
  }

  // ---- block construction ----

  Status BuildBlocks(const std::vector<StmtPtr>& stmts,
                     SymbolInfoMap* symbols,
                     std::vector<ProgramBlockPtr>* out) {
    std::vector<const Stmt*> run;
    auto flush = [&]() -> Status {
      if (run.empty()) return Status::Ok();
      SYSDS_ASSIGN_OR_RETURN(ProgramBlockPtr block,
                             BuildBasicBlock(run, symbols));
      out->push_back(std::move(block));
      run.clear();
      return Status::Ok();
    };

    for (const StmtPtr& stmt : stmts) {
      switch (stmt->kind) {
        case StmtKind::kAssign:
        case StmtKind::kExpression:
          run.push_back(stmt.get());
          break;
        case StmtKind::kFunctionDef:
          return ErrAt(*stmt, "nested function definitions are not allowed");
        case StmtKind::kIf: {
          SYSDS_RETURN_IF_ERROR(flush());
          SYSDS_ASSIGN_OR_RETURN(PredInfo pred,
                                 BuildPredicate(*stmt->predicate, symbols));
          if (pred.is_const) {
            // Compile-time branch removal (paper Example 1).
            const auto& taken = pred.const_value ? stmt->body
                                                 : stmt->else_body;
            SYSDS_RETURN_IF_ERROR(BuildBlocks(taken, symbols, out));
            break;
          }
          auto ifb = std::make_unique<IfBlock>();
          ifb->GetPredicate() = std::move(pred.predicate);
          SymbolInfoMap then_syms = *symbols;
          SymbolInfoMap else_syms = *symbols;
          SYSDS_RETURN_IF_ERROR(
              BuildBlocks(stmt->body, &then_syms, &ifb->ThenBlocks()));
          SYSDS_RETURN_IF_ERROR(
              BuildBlocks(stmt->else_body, &else_syms, &ifb->ElseBlocks()));
          MergeSymbols(then_syms, else_syms, symbols);
          out->push_back(std::move(ifb));
          break;
        }
        case StmtKind::kWhile: {
          SYSDS_RETURN_IF_ERROR(flush());
          std::set<std::string> assigned;
          CollectAssignedVars(stmt->body, &assigned);
          InvalidateSizes(assigned, symbols);
          auto wb = std::make_unique<WhileBlock>();
          SYSDS_ASSIGN_OR_RETURN(PredInfo pred,
                                 BuildPredicate(*stmt->predicate, symbols));
          wb->GetPredicate() = std::move(pred.predicate);
          SymbolInfoMap body_syms = *symbols;
          SYSDS_RETURN_IF_ERROR(
              BuildBlocks(stmt->body, &body_syms, &wb->Body()));
          AbsorbLoopSymbols(body_syms, assigned, symbols);
          out->push_back(std::move(wb));
          break;
        }
        case StmtKind::kFor: {
          SYSDS_RETURN_IF_ERROR(flush());
          std::set<std::string> assigned;
          CollectAssignedVars(stmt->body, &assigned);
          InvalidateSizes(assigned, symbols);
          SymbolInfo loop_info;
          loop_info.dt = DataType::kScalar;
          loop_info.vt = ValueType::kInt64;
          loop_info.dim1 = 0;
          loop_info.dim2 = 0;
          (*symbols)[stmt->loop_var] = loop_info;

          std::unique_ptr<ForBlock> fb;
          ParForBlock* pfb = nullptr;
          if (stmt->is_parfor) {
            auto p = std::make_unique<ParForBlock>();
            pfb = p.get();
            fb = std::move(p);
          } else {
            fb = std::make_unique<ForBlock>();
          }
          fb->LoopVar() = stmt->loop_var;
          SYSDS_ASSIGN_OR_RETURN(PredInfo from,
                                 BuildPredicate(*stmt->from, symbols));
          SYSDS_ASSIGN_OR_RETURN(PredInfo to,
                                 BuildPredicate(*stmt->to, symbols));
          SYSDS_ASSIGN_OR_RETURN(PredInfo incr,
                                 BuildPredicate(*stmt->increment, symbols));
          fb->From() = std::move(from.predicate);
          fb->To() = std::move(to.predicate);
          fb->Increment() = std::move(incr.predicate);
          SymbolInfoMap body_syms = *symbols;
          SYSDS_RETURN_IF_ERROR(
              BuildBlocks(stmt->body, &body_syms, &fb->Body()));
          AbsorbLoopSymbols(body_syms, assigned, symbols);
          if (pfb != nullptr) {
            for (const std::string& v : assigned) {
              if (v != stmt->loop_var) pfb->ResultVars().push_back(v);
            }
          }
          out->push_back(std::move(fb));
          break;
        }
      }
    }
    return flush();
  }

  static void MergeSymbols(const SymbolInfoMap& a, const SymbolInfoMap& b,
                           SymbolInfoMap* out) {
    SymbolInfoMap merged = a;
    for (const auto& [name, info] : b) {
      auto it = merged.find(name);
      if (it == merged.end()) {
        merged[name] = info;
        merged[name].dim1 = -1;
        merged[name].dim2 = -1;
        merged[name].nnz = -1;
      } else if (it->second.dim1 != info.dim1 ||
                 it->second.dim2 != info.dim2) {
        it->second.dim1 = -1;
        it->second.dim2 = -1;
        it->second.nnz = -1;
      } else if (it->second.nnz != info.nnz) {
        it->second.nnz = -1;
      }
    }
    // Vars only in `a` but possibly skipped in the else branch: sizes stay
    // (they may be stale if only-then assigned; be conservative).
    for (auto& [name, info] : merged) {
      if (!b.count(name) && a.count(name) && !out->count(name)) {
        info.dim1 = -1;
        info.dim2 = -1;
        info.nnz = -1;
      }
    }
    *out = std::move(merged);
  }

  static void InvalidateSizes(const std::set<std::string>& vars,
                              SymbolInfoMap* symbols) {
    for (const std::string& v : vars) {
      auto it = symbols->find(v);
      if (it != symbols->end()) {
        it->second.dim1 = -1;
        it->second.dim2 = -1;
        it->second.nnz = -1;
      }
    }
  }

  static void AbsorbLoopSymbols(const SymbolInfoMap& body_syms,
                                const std::set<std::string>& assigned,
                                SymbolInfoMap* symbols) {
    for (const auto& [name, info] : body_syms) {
      if (!symbols->count(name)) {
        SymbolInfo s = info;
        if (assigned.count(name)) {
          s.dim1 = -1;
          s.dim2 = -1;
          s.nnz = -1;
        }
        (*symbols)[name] = s;
      } else if (assigned.count(name)) {
        SymbolInfo& s = (*symbols)[name];
        s.dt = info.dt;
        s.vt = info.vt;
        s.dim1 = -1;
        s.dim2 = -1;
        s.nnz = -1;
      }
    }
  }

  struct PredInfo {
    Predicate predicate;
    bool is_const = false;
    bool const_value = false;
  };

  StatusOr<PredInfo> BuildPredicate(const Expr& e, SymbolInfoMap* symbols) {
    BlockCtx ctx;
    ctx.symbols = symbols;
    SYSDS_ASSIGN_OR_RETURN(HopPtr hop, BuildExpr(e, &ctx));
    if (hop->data_type() != DataType::kScalar) {
      return ErrAt(e, "predicate must be scalar");
    }
    static int pred_counter = 0;
    std::string var = "__pred" + std::to_string(pred_counter++);
    std::vector<HopPtr> roots = {MakeTransientWrite(var, hop)};
    ApplyStaticRewrites(&roots);
    PredInfo info;
    if (roots[0]->inputs()[0]->op() == HopOp::kLiteral) {
      info.is_const = true;
      info.const_value = roots[0]->inputs()[0]->literal().AsBool();
    }
    SYSDS_ASSIGN_OR_RETURN(info.predicate.instructions,
                           GenerateInstructions(roots, *config_));
    info.predicate.result_var = var;
    info.predicate.hop_roots = std::move(roots);
    return info;
  }

  StatusOr<ProgramBlockPtr> BuildBasicBlock(
      const std::vector<const Stmt*>& stmts, SymbolInfoMap* symbols) {
    BlockCtx ctx;
    ctx.symbols = symbols;
    for (const Stmt* stmt : stmts) {
      if (stmt->kind == StmtKind::kAssign) {
        for (const AssignTarget& t : stmt->targets) {
          ctx.block_assigned.insert(t.name);
        }
      }
    }
    std::vector<HopPtr> roots;

    for (const Stmt* stmt : stmts) {
      if (stmt->kind == StmtKind::kExpression) {
        SYSDS_ASSIGN_OR_RETURN(HopPtr hop, BuildExpr(*stmt->expr, &ctx));
        roots.push_back(std::move(hop));
        continue;
      }
      // kAssign
      if (stmt->targets.size() > 1) {
        SYSDS_RETURN_IF_ERROR(BuildMultiAssign(*stmt, &ctx, &roots));
        continue;
      }
      const AssignTarget& target = stmt->targets[0];
      SYSDS_ASSIGN_OR_RETURN(HopPtr rhs, BuildExpr(*stmt->rhs, &ctx));
      if (target.index != nullptr) {
        SYSDS_ASSIGN_OR_RETURN(
            HopPtr lix, BuildLeftIndexing(*target.index, target.name,
                                          std::move(rhs), &ctx));
        AssignVar(target.name, std::move(lix), &ctx);
      } else {
        AssignVar(target.name, std::move(rhs), &ctx);
      }
    }

    // Transient writes for all assigned variables, in first-assign order.
    for (const std::string& name : ctx.assigned_order) {
      auto it = ctx.hops.find(name);
      if (it == ctx.hops.end()) continue;  // erased by multi-assign
      const HopPtr& hop = it->second;
      if (hop->op() == HopOp::kTransientRead && hop->name() == name) continue;
      roots.push_back(MakeTransientWrite(name, hop));
    }

    ApplyStaticRewrites(&roots);

    // Update compile-time symbols from the (rewritten) outputs.
    bool unknown_sizes = false;
    for (const HopPtr& root : roots) {
      if (root->op() == HopOp::kTransientWrite) {
        SymbolInfo info;
        info.dt = root->data_type();
        info.vt = root->value_type();
        info.dim1 = root->dim1();
        info.dim2 = root->dim2();
        info.nnz = root->nnz();
        (*symbols)[root->name()] = info;
      }
    }
    for (Hop* hop : TopoOrder(roots)) {
      if ((hop->data_type() == DataType::kMatrix ||
           hop->data_type() == DataType::kFrame) &&
          !hop->DimsKnown()) {
        unknown_sizes = true;
      }
    }

    auto block = std::make_unique<BasicBlock>();
    SYSDS_ASSIGN_OR_RETURN(block->Instructions(),
                           GenerateInstructions(roots, *config_));
    block->HopRoots() = std::move(roots);
    block->SetRequiresRecompile(unknown_sizes);
    return StatusOr<ProgramBlockPtr>(std::move(block));
  }

  void AssignVar(const std::string& name, HopPtr hop, BlockCtx* ctx) {
    if (std::find(ctx->assigned_order.begin(), ctx->assigned_order.end(),
                  name) == ctx->assigned_order.end()) {
      ctx->assigned_order.push_back(name);
    }
    SymbolInfo info;
    info.dt = hop->data_type();
    info.vt = hop->value_type();
    info.dim1 = hop->dim1();
    info.dim2 = hop->dim2();
    info.nnz = hop->nnz();
    (*ctx->symbols)[name] = info;
    ctx->hops[name] = std::move(hop);
  }

  Status BuildMultiAssign(const Stmt& stmt, BlockCtx* ctx,
                          std::vector<HopPtr>* roots) {
    if (stmt.rhs->kind != ExprKind::kCall) {
      return ErrAt(stmt, "multi-assignment requires a function call");
    }
    const Expr& call = *stmt.rhs;
    HopPtr hop;
    std::vector<DataType> out_dts;
    std::vector<ValueType> out_vts;
    if (call.name == "transformencode") {
      SYSDS_ASSIGN_OR_RETURN(hop, BuildTransformEncode(call, ctx));
      out_dts = {DataType::kMatrix, DataType::kFrame};
      out_vts = {ValueType::kFP64, ValueType::kString};
    } else if (IsFunctionName(call.name)) {
      SYSDS_ASSIGN_OR_RETURN(hop, BuildFunctionCall(call, ctx));
      const FunctionBlock& fn = *prog_->Functions()[call.name];
      if (fn.returns.size() < stmt.targets.size()) {
        return ErrAt(stmt, "function '" + call.name + "' returns " +
                               std::to_string(fn.returns.size()) +
                               " values, " +
                               std::to_string(stmt.targets.size()) +
                               " requested");
      }
      for (const auto& r : fn.returns) {
        out_dts.push_back(r.dt);
        out_vts.push_back(r.vt);
      }
    } else {
      return ErrAt(stmt, "multi-assignment requires a function call");
    }
    std::string outdts;
    for (size_t k = 0; k < stmt.targets.size(); ++k) {
      hop->outputs().push_back(stmt.targets[k].name);
      if (k > 0) outdts += ",";
      DataType dt = k < out_dts.size() ? out_dts[k] : DataType::kMatrix;
      ValueType vt = k < out_vts.size() ? out_vts[k] : ValueType::kFP64;
      outdts += std::string(DataTypeName(dt)) + ":" + ValueTypeName(vt);
      // Register symbol + bump version; later reads go through fresh treads.
      SymbolInfo info;
      info.dt = dt;
      info.vt = vt;
      if (dt == DataType::kScalar) {
        info.dim1 = 0;
        info.dim2 = 0;
      }
      (*ctx->symbols)[stmt.targets[k].name] = info;
      ctx->hops.erase(stmt.targets[k].name);
      ctx->versions[stmt.targets[k].name]++;
    }
    hop->params()["outdts"] = outdts;
    roots->push_back(std::move(hop));
    return Status::Ok();
  }

  // ---- expressions ----

  StatusOr<HopPtr> ReadVar(const std::string& name, const Expr& e,
                           BlockCtx* ctx) {
    auto it = ctx->hops.find(name);
    if (it != ctx->hops.end()) return it->second;
    auto sit = ctx->symbols->find(name);
    if (sit == ctx->symbols->end()) {
      return ErrAt(e, "undefined variable '" + name + "'");
    }
    const SymbolInfo& info = sit->second;
    HopPtr tread = MakeTransientRead(name, info.dt, info.vt, info.dim1,
                                     info.dim2, info.nnz);
    int version = ctx->versions.count(name) ? ctx->versions[name] : 0;
    if (version > 0) {
      tread->params()["v"] = std::to_string(version);
    }
    if (ctx->block_assigned.count(name)) {
      tread->params()["snapshot"] = "1";
    }
    ctx->hops[name] = tread;  // reuse the same read within the block
    return tread;
  }

  StatusOr<HopPtr> BuildExpr(const Expr& e, BlockCtx* ctx) {
    switch (e.kind) {
      case ExprKind::kIntLiteral:
        return MakeLiteralHop(LitValue::Int(e.int_value));
      case ExprKind::kDoubleLiteral:
        return MakeLiteralHop(LitValue::Double(e.double_value));
      case ExprKind::kStringLiteral:
        return MakeLiteralHop(LitValue::String(e.string_value));
      case ExprKind::kBoolLiteral:
        return MakeLiteralHop(LitValue::Bool(e.bool_value));
      case ExprKind::kIdentifier:
        return ReadVar(e.name, e, ctx);
      case ExprKind::kBinary:
        return BuildBinary(e, ctx);
      case ExprKind::kUnary: {
        SYSDS_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(*e.args[0], ctx));
        std::string opcode = e.name == "-" ? "uminus" : e.name;
        auto hop = std::make_shared<Hop>(HopOp::kUnary, opcode,
                                         in->data_type(),
                                         in->data_type() == DataType::kMatrix
                                             ? ValueType::kFP64
                                             : in->value_type());
        if (opcode == "!") {
          hop->set_types(in->data_type(),
                         IsMatrix(in) ? ValueType::kFP64
                                      : ValueType::kBoolean);
        }
        hop->AddInput(std::move(in));
        hop->RefreshSizeInformation();
        return hop;
      }
      case ExprKind::kCall:
        return BuildCall(e, ctx);
      case ExprKind::kIndex:
        return BuildRightIndexing(e, ctx);
    }
    return ErrAt(e, "unsupported expression");
  }

  StatusOr<HopPtr> BuildBinary(const Expr& e, BlockCtx* ctx) {
    const std::string& op = e.name;
    if (op == ":") {
      // General range expression -> seq(from, to, 1).
      SYSDS_ASSIGN_OR_RETURN(HopPtr from, BuildExpr(*e.args[0], ctx));
      SYSDS_ASSIGN_OR_RETURN(HopPtr to, BuildExpr(*e.args[1], ctx));
      auto hop = std::make_shared<Hop>(HopOp::kDataGen, "seq",
                                       DataType::kMatrix, ValueType::kFP64);
      hop->AddInput(std::move(from));
      hop->AddInput(std::move(to));
      hop->AddInput(MakeLiteralHop(LitValue::Int(1)));
      return hop;
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr lhs, BuildExpr(*e.args[0], ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr rhs, BuildExpr(*e.args[1], ctx));
    if (op == "%*%") {
      if (!IsMatrix(lhs) || !IsMatrix(rhs)) {
        return ErrAt(e, "%*% requires matrix operands");
      }
      if (lhs->dim2() >= 0 && rhs->dim1() >= 0 && lhs->dim2() != rhs->dim1()) {
        return ErrAt(e, "%*% dimension mismatch: " +
                            std::to_string(lhs->dim2()) + " vs " +
                            std::to_string(rhs->dim1()));
      }
      auto hop = std::make_shared<Hop>(HopOp::kMatMult, "ba+*",
                                       DataType::kMatrix, ValueType::kFP64);
      hop->AddInput(std::move(lhs));
      hop->AddInput(std::move(rhs));
      hop->RefreshSizeInformation();
      return hop;
    }
    bool any_matrix = IsMatrix(lhs) || IsMatrix(rhs);
    DataType dt = any_matrix ? DataType::kMatrix : DataType::kScalar;
    ValueType vt = ValueType::kFP64;
    if (!any_matrix) {
      bool comparison = op == "==" || op == "!=" || op == "<" || op == "<=" ||
                        op == ">" || op == ">=" || op == "&" || op == "|";
      if (comparison) {
        vt = ValueType::kBoolean;
      } else if (lhs->value_type() == ValueType::kString ||
                 rhs->value_type() == ValueType::kString) {
        vt = ValueType::kString;
      } else if (lhs->value_type() == ValueType::kInt64 &&
                 rhs->value_type() == ValueType::kInt64 && op != "/" &&
                 op != "^") {
        vt = ValueType::kInt64;
      }
    }
    auto hop = std::make_shared<Hop>(HopOp::kBinary, op, dt, vt);
    hop->AddInput(std::move(lhs));
    hop->AddInput(std::move(rhs));
    hop->RefreshSizeInformation();
    return hop;
  }

  // Bounds: returns {rl, ru, cl, cu} hops with the -1 "to end" convention.
  struct IndexBounds {
    HopPtr rl, ru, cl, cu;
  };

  StatusOr<IndexBounds> BuildBounds(const Expr& e, BlockCtx* ctx) {
    IndexBounds b;
    if (e.row_lower != nullptr) {
      SYSDS_ASSIGN_OR_RETURN(b.rl, BuildExpr(*e.row_lower, ctx));
      if (e.has_row_range) {
        SYSDS_ASSIGN_OR_RETURN(b.ru, BuildExpr(*e.row_upper, ctx));
      } else {
        b.ru = b.rl;
      }
    } else {
      b.rl = MakeLiteralHop(LitValue::Int(1));
      b.ru = MakeLiteralHop(LitValue::Int(-1));
    }
    if (e.col_lower != nullptr) {
      SYSDS_ASSIGN_OR_RETURN(b.cl, BuildExpr(*e.col_lower, ctx));
      if (e.has_col_range) {
        SYSDS_ASSIGN_OR_RETURN(b.cu, BuildExpr(*e.col_upper, ctx));
      } else {
        b.cu = b.cl;
      }
    } else {
      b.cl = MakeLiteralHop(LitValue::Int(1));
      b.cu = MakeLiteralHop(LitValue::Int(-1));
    }
    return b;
  }

  StatusOr<HopPtr> BuildRightIndexing(const Expr& e, BlockCtx* ctx) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr target, BuildExpr(*e.target, ctx));
    bool is_frame = target->data_type() == DataType::kFrame;
    if (!IsMatrix(target) && !is_frame) {
      return ErrAt(e, "indexing requires a matrix or frame");
    }
    SYSDS_ASSIGN_OR_RETURN(IndexBounds b, BuildBounds(e, ctx));
    auto hop = std::make_shared<Hop>(
        HopOp::kIndexing, "rightIndex",
        is_frame ? DataType::kFrame : DataType::kMatrix,
        is_frame ? ValueType::kString : ValueType::kFP64);
    hop->AddInput(std::move(target));
    hop->AddInput(b.rl);
    hop->AddInput(b.ru);
    hop->AddInput(b.cl);
    hop->AddInput(b.cu);
    hop->RefreshSizeInformation();
    return hop;
  }

  StatusOr<HopPtr> BuildLeftIndexing(const Expr& index_expr,
                                     const std::string& name, HopPtr rhs,
                                     BlockCtx* ctx) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr target, ReadVar(name, index_expr, ctx));
    if (!IsMatrix(target)) {
      return ErrAt(index_expr, "left indexing requires a matrix variable");
    }
    SYSDS_ASSIGN_OR_RETURN(IndexBounds b, BuildBounds(index_expr, ctx));
    auto hop = std::make_shared<Hop>(HopOp::kLeftIndexing, "leftIndex",
                                     DataType::kMatrix, ValueType::kFP64);
    hop->AddInput(std::move(target));
    hop->AddInput(std::move(rhs));
    hop->AddInput(b.rl);
    hop->AddInput(b.ru);
    hop->AddInput(b.cl);
    hop->AddInput(b.cu);
    hop->RefreshSizeInformation();
    return hop;
  }

  StatusOr<HopPtr> BuildFunctionCall(const Expr& call, BlockCtx* ctx) {
    SYSDS_RETURN_IF_ERROR(EnsureFunction(call.name));
    const FunctionBlock& fn = *prog_->Functions()[call.name];
    auto hop = std::make_shared<Hop>(
        HopOp::kFunctionCall, "fcall",
        fn.returns.empty() ? DataType::kUnknown : fn.returns[0].dt,
        fn.returns.empty() ? ValueType::kUnknown : fn.returns[0].vt);
    hop->set_name(call.name);
    std::string argnames;
    for (size_t i = 0; i < call.args.size(); ++i) {
      SYSDS_ASSIGN_OR_RETURN(HopPtr arg, BuildExpr(*call.args[i], ctx));
      hop->AddInput(std::move(arg));
      if (i > 0) argnames += ",";
      argnames += call.arg_names[i].empty() ? "_" : call.arg_names[i];
    }
    if (!call.args.empty()) hop->params()["argnames"] = argnames;
    return hop;
  }

  StatusOr<HopPtr> BuildTransformEncode(const Expr& call, BlockCtx* ctx) {
    CallArgs args(call);
    const Expr* target = args.Get(0, "target");
    const Expr* spec = args.Get(1, "spec");
    if (target == nullptr || spec == nullptr) {
      return ErrAt(call, "transformencode requires target and spec");
    }
    auto hop = std::make_shared<Hop>(HopOp::kParamBuiltin, "transformencode",
                                     DataType::kMatrix, ValueType::kFP64);
    SYSDS_ASSIGN_OR_RETURN(HopPtr t, BuildExpr(*target, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr s, BuildExpr(*spec, ctx));
    hop->AddInput(std::move(t));
    hop->AddInput(std::move(s));
    hop->params()["pnames"] = "target,spec";
    return hop;
  }

  StatusOr<HopPtr> BuildCall(const Expr& e, BlockCtx* ctx);

  // Storage for function ASTs loaded from builtin scripts.
  std::vector<StmtPtr> builtin_fn_storage_;
};

// Builds one argument expression or a literal default.
#define BUILD_ARG_OR(expr_ptr, default_lit)                       \
  ((expr_ptr) != nullptr                                          \
       ? BuildExpr(*(expr_ptr), ctx)                              \
       : StatusOr<HopPtr>(MakeLiteralHop(default_lit)))

StatusOr<HopPtr> Compiler::BuildCall(const Expr& e, BlockCtx* ctx) {
  const std::string& name = e.name;
  CallArgs args(e);

  auto make = [&](HopOp op, const std::string& opcode, DataType dt,
                  ValueType vt) {
    return std::make_shared<Hop>(op, opcode, dt, vt);
  };
  auto arg0 = [&]() -> StatusOr<HopPtr> {
    const Expr* a = args.Get(0, "target");
    if (a == nullptr) return ErrAt(e, name + ": missing argument");
    return BuildExpr(*a, ctx);
  };

  // ---- metadata & unary math ----
  if (name == "nrow" || name == "ncol" || name == "length") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kUnary, name, DataType::kScalar, ValueType::kInt64);
    hop->AddInput(std::move(in));
    hop->set_dims(0, 0);
    return hop;
  }
  static const std::set<std::string> kUnaryMath = {
      "exp", "log", "sqrt", "abs", "round", "floor", "ceil",
      "sin", "cos", "tan", "sign", "sigmoid"};
  if (kUnaryMath.count(name)) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    if (name == "log" && args.Total() == 2) {
      const Expr* base = args.Get(1, "base");
      SYSDS_ASSIGN_OR_RETURN(HopPtr base_hop, BuildExpr(*base, ctx));
      auto logx = make(HopOp::kUnary, "log", in->data_type(),
                       IsMatrix(in) ? ValueType::kFP64 : ValueType::kFP64);
      logx->AddInput(std::move(in));
      logx->RefreshSizeInformation();
      auto logb = make(HopOp::kUnary, "log", DataType::kScalar,
                       ValueType::kFP64);
      logb->AddInput(std::move(base_hop));
      auto div = make(HopOp::kBinary, "/", logx->data_type(),
                      ValueType::kFP64);
      div->AddInput(std::move(logx));
      div->AddInput(std::move(logb));
      div->RefreshSizeInformation();
      return div;
    }
    auto hop = make(HopOp::kUnary, name, in->data_type(), ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }

  // ---- aggregates ----
  static const std::map<std::string, std::string> kFullAgg = {
      {"sum", "uasum"},   {"mean", "uamean"}, {"var", "uavar"},
      {"sd", "uasd"},     {"trace", "uatrace"}};
  if (kFullAgg.count(name) && args.Total() == 1) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    if (IsScalar(in)) return in;  // sum(scalar) == scalar
    auto hop = make(HopOp::kAggUnary, kFullAgg.at(name), DataType::kScalar,
                    ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }
  if ((name == "min" || name == "max")) {
    if (args.Total() == 1) {
      SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
      if (IsScalar(in)) return in;
      auto hop = make(HopOp::kAggUnary, name == "min" ? "uamin" : "uamax",
                      DataType::kScalar, ValueType::kFP64);
      hop->AddInput(std::move(in));
      hop->RefreshSizeInformation();
      return hop;
    }
    // n-ary min/max folds into a binary chain.
    HopPtr acc;
    for (size_t i = 0; i < args.Total(); ++i) {
      const Expr* a = args.Get(i, "");
      if (a == nullptr) return ErrAt(e, name + ": positional args required");
      SYSDS_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(*a, ctx));
      if (acc == nullptr) {
        acc = std::move(in);
        continue;
      }
      bool any_matrix = IsMatrix(acc) || IsMatrix(in);
      auto hop = make(HopOp::kBinary, name,
                      any_matrix ? DataType::kMatrix : DataType::kScalar,
                      ValueType::kFP64);
      hop->AddInput(std::move(acc));
      hop->AddInput(std::move(in));
      hop->RefreshSizeInformation();
      acc = std::move(hop);
    }
    return acc;
  }
  static const std::map<std::string, std::string> kRowColAgg = {
      {"colSums", "uacsum"},   {"colMeans", "uacmean"},
      {"colMaxs", "uacmax"},   {"colMins", "uacmin"},
      {"colSds", "uacsd"},     {"colVars", "uacvar"},
      {"rowSums", "uarsum"},   {"rowMeans", "uarmean"},
      {"rowMaxs", "uarmax"},   {"rowMins", "uarmin"},
      {"rowSds", "uarsd"},     {"rowVars", "uarvar"},
      {"rowIndexMax", "uarimax"}, {"rowIndexMin", "uarimin"}};
  if (kRowColAgg.count(name)) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kAggUnary, kRowColAgg.at(name), DataType::kMatrix,
                    ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }
  static const std::set<std::string> kCum = {"cumsum", "cumprod", "cummin",
                                             "cummax"};
  if (kCum.count(name)) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kCumAgg, name, DataType::kMatrix, ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }

  // ---- reorg ----
  if (name == "t" || name == "rev") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kReorg, name, DataType::kMatrix, ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "diag") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kReorg, "rdiag", DataType::kMatrix,
                    ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "matrix") {
    const Expr* data = args.Get(0, "data");
    const Expr* rows = args.Get(1, "rows");
    const Expr* cols = args.Get(2, "cols");
    if (data == nullptr || rows == nullptr || cols == nullptr) {
      return ErrAt(e, "matrix() requires data, rows, cols");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr data_hop, BuildExpr(*data, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr rows_hop, BuildExpr(*rows, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr cols_hop, BuildExpr(*cols, ctx));
    if (IsMatrix(data_hop)) {
      // matrix(X, rows, cols) is reshape.
      auto hop = make(HopOp::kReorg, "reshape", DataType::kMatrix,
                      ValueType::kFP64);
      hop->AddInput(std::move(data_hop));
      hop->AddInput(std::move(rows_hop));
      hop->AddInput(std::move(cols_hop));
      hop->RefreshSizeInformation();
      return hop;
    }
    std::string opcode =
        data_hop->value_type() == ValueType::kString ? "matfromstr" : "fill";
    auto hop = make(HopOp::kDataGen, opcode, DataType::kMatrix,
                    ValueType::kFP64);
    hop->AddInput(std::move(data_hop));
    hop->AddInput(rows_hop);
    hop->AddInput(cols_hop);
    if (rows_hop->op() == HopOp::kLiteral && cols_hop->op() == HopOp::kLiteral) {
      hop->set_dims(rows_hop->literal().AsInt(), cols_hop->literal().AsInt());
    }
    return hop;
  }
  if (name == "reshape") {
    const Expr* data = args.Get(0, "target");
    const Expr* rows = args.Get(1, "rows");
    const Expr* cols = args.Get(2, "cols");
    if (data == nullptr || rows == nullptr || cols == nullptr) {
      return ErrAt(e, "reshape requires target, rows, cols");
    }
    auto hop = make(HopOp::kReorg, "reshape", DataType::kMatrix,
                    ValueType::kFP64);
    SYSDS_ASSIGN_OR_RETURN(HopPtr d, BuildExpr(*data, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr r, BuildExpr(*rows, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr c, BuildExpr(*cols, ctx));
    hop->AddInput(std::move(d));
    hop->AddInput(std::move(r));
    hop->AddInput(std::move(c));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "order") {
    const Expr* target = args.Get(0, "target");
    if (target == nullptr) return ErrAt(e, "order requires target");
    auto hop = make(HopOp::kReorg, "sort", DataType::kMatrix,
                    ValueType::kFP64);
    SYSDS_ASSIGN_OR_RETURN(HopPtr t, BuildExpr(*target, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr by, BUILD_ARG_OR(args.Get(1, "by"),
                                                   LitValue::Int(1)));
    SYSDS_ASSIGN_OR_RETURN(
        HopPtr dec, BUILD_ARG_OR(args.Get(2, "decreasing"),
                                 LitValue::Bool(false)));
    SYSDS_ASSIGN_OR_RETURN(
        HopPtr ixret, BUILD_ARG_OR(args.Get(3, "index.return"),
                                   LitValue::Bool(false)));
    hop->AddInput(std::move(t));
    hop->AddInput(std::move(by));
    hop->AddInput(std::move(dec));
    hop->AddInput(std::move(ixret));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "cbind" || name == "rbind") {
    auto hop = make(HopOp::kNary, name, DataType::kMatrix, ValueType::kFP64);
    for (size_t i = 0; i < args.Total(); ++i) {
      const Expr* a = args.Get(i, "");
      if (a == nullptr) return ErrAt(e, name + ": positional args required");
      SYSDS_ASSIGN_OR_RETURN(HopPtr in, BuildExpr(*a, ctx));
      hop->AddInput(std::move(in));
    }
    hop->RefreshSizeInformation();
    return hop;
  }

  // ---- datagen ----
  if (name == "rand") {
    auto hop = make(HopOp::kDataGen, "rand", DataType::kMatrix,
                    ValueType::kFP64);
    const Expr* rows = args.Get(0, "rows");
    const Expr* cols = args.Get(1, "cols");
    if (rows == nullptr || cols == nullptr) {
      return ErrAt(e, "rand requires rows and cols");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr rows_hop, BuildExpr(*rows, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr cols_hop, BuildExpr(*cols, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr min_hop, BUILD_ARG_OR(args.Get(2, "min"),
                                                        LitValue::Double(0)));
    SYSDS_ASSIGN_OR_RETURN(HopPtr max_hop, BUILD_ARG_OR(args.Get(3, "max"),
                                                        LitValue::Double(1)));
    SYSDS_ASSIGN_OR_RETURN(
        HopPtr sp_hop, BUILD_ARG_OR(args.Get(4, "sparsity"),
                                    LitValue::Double(1)));
    SYSDS_ASSIGN_OR_RETURN(HopPtr seed_hop, BUILD_ARG_OR(args.Get(5, "seed"),
                                                         LitValue::Int(-1)));
    SYSDS_ASSIGN_OR_RETURN(
        HopPtr pdf_hop, BUILD_ARG_OR(args.Get(6, "pdf"),
                                     LitValue::String("uniform")));
    if (rows_hop->op() == HopOp::kLiteral &&
        cols_hop->op() == HopOp::kLiteral) {
      hop->set_dims(rows_hop->literal().AsInt(), cols_hop->literal().AsInt());
      if (sp_hop->op() == HopOp::kLiteral) {
        hop->set_nnz(static_cast<int64_t>(sp_hop->literal().AsDouble() *
                                          hop->dim1() * hop->dim2()));
      }
    }
    hop->AddInput(std::move(rows_hop));
    hop->AddInput(std::move(cols_hop));
    hop->AddInput(std::move(min_hop));
    hop->AddInput(std::move(max_hop));
    hop->AddInput(std::move(sp_hop));
    hop->AddInput(std::move(seed_hop));
    hop->AddInput(std::move(pdf_hop));
    return hop;
  }
  if (name == "seq") {
    auto hop = make(HopOp::kDataGen, "seq", DataType::kMatrix,
                    ValueType::kFP64);
    const Expr* from = args.Get(0, "from");
    const Expr* to = args.Get(1, "to");
    if (from == nullptr || to == nullptr) {
      return ErrAt(e, "seq requires from and to");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr f, BuildExpr(*from, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr t, BuildExpr(*to, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr i, BUILD_ARG_OR(args.Get(2, "incr"),
                                                  LitValue::Int(1)));
    hop->AddInput(std::move(f));
    hop->AddInput(std::move(t));
    hop->AddInput(std::move(i));
    return hop;
  }
  if (name == "sample") {
    auto hop = make(HopOp::kDataGen, "sample", DataType::kMatrix,
                    ValueType::kFP64);
    const Expr* range = args.Get(0, "range");
    const Expr* size = args.Get(1, "size");
    if (range == nullptr || size == nullptr) {
      return ErrAt(e, "sample requires range and size");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr r, BuildExpr(*range, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr s, BuildExpr(*size, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr rep, BUILD_ARG_OR(args.Get(2, "replace"),
                                                    LitValue::Bool(false)));
    SYSDS_ASSIGN_OR_RETURN(HopPtr seed, BUILD_ARG_OR(args.Get(3, "seed"),
                                                     LitValue::Int(-1)));
    hop->AddInput(std::move(r));
    hop->AddInput(std::move(s));
    hop->AddInput(std::move(rep));
    hop->AddInput(std::move(seed));
    return hop;
  }

  // ---- linear algebra ----
  if (name == "solve") {
    const Expr* a = args.Get(0, "A");
    const Expr* b = args.Get(1, "b");
    if (a == nullptr || b == nullptr) return ErrAt(e, "solve requires A, b");
    auto hop = make(HopOp::kSolve, "solve", DataType::kMatrix,
                    ValueType::kFP64);
    SYSDS_ASSIGN_OR_RETURN(HopPtr ah, BuildExpr(*a, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr bh, BuildExpr(*b, ctx));
    hop->AddInput(std::move(ah));
    hop->AddInput(std::move(bh));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "cholesky" || name == "inv" || name == "inverse" ||
      name == "det") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    std::string opcode = name == "inverse" ? "inv" : name;
    auto hop = make(HopOp::kSolve, opcode,
                    name == "det" ? DataType::kScalar : DataType::kMatrix,
                    ValueType::kFP64);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }

  // ---- ternary ----
  if (name == "ifelse") {
    const Expr* c = args.Get(0, "test");
    const Expr* a = args.Get(1, "yes");
    const Expr* b = args.Get(2, "no");
    if (c == nullptr || a == nullptr || b == nullptr) {
      return ErrAt(e, "ifelse requires 3 arguments");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr ch, BuildExpr(*c, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr ah, BuildExpr(*a, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr bh, BuildExpr(*b, ctx));
    bool any_matrix = IsMatrix(ch) || IsMatrix(ah) || IsMatrix(bh);
    auto hop = make(HopOp::kTernary, "ifelse",
                    any_matrix ? DataType::kMatrix : DataType::kScalar,
                    ValueType::kFP64);
    hop->AddInput(std::move(ch));
    hop->AddInput(std::move(ah));
    hop->AddInput(std::move(bh));
    hop->RefreshSizeInformation();
    return hop;
  }
  if (name == "table") {
    const Expr* a = args.Get(0, "A");
    const Expr* b = args.Get(1, "B");
    if (a == nullptr || b == nullptr) return ErrAt(e, "table requires A, B");
    auto hop = make(HopOp::kTernary, "ctable", DataType::kMatrix,
                    ValueType::kFP64);
    SYSDS_ASSIGN_OR_RETURN(HopPtr ah, BuildExpr(*a, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr bh, BuildExpr(*b, ctx));
    hop->AddInput(std::move(ah));
    hop->AddInput(std::move(bh));
    return hop;
  }

  // ---- parameterized builtins ----
  if (name == "paramserv") {
    // paramserv(features=X, labels=y, workers=, epochs=, batchsize=, lr=,
    //           mode="BSP"|"ASP", objective="linear"|"logistic") -> weights
    auto hop = make(HopOp::kParamBuiltin, "paramserv", DataType::kMatrix,
                    ValueType::kFP64);
    static const char* kParams[] = {"features", "labels",  "workers",
                                    "epochs",   "batchsize", "lr",
                                    "mode",     "objective"};
    std::string pnames;
    for (size_t i = 0; i < 8; ++i) {
      const Expr* a = args.Get(i < 2 ? i : 99, kParams[i]);
      if (a == nullptr) {
        if (i < 2) {
          return ErrAt(e, "paramserv requires features and labels");
        }
        continue;
      }
      SYSDS_ASSIGN_OR_RETURN(HopPtr p, BuildExpr(*a, ctx));
      hop->AddInput(std::move(p));
      if (!pnames.empty()) pnames += ",";
      pnames += kParams[i];
    }
    hop->params()["pnames"] = pnames;
    return hop;
  }
  if (name == "replace" || name == "removeEmpty" || name == "toString" ||
      name == "quantile" || name == "median" || name == "transformapply" ||
      name == "transformdecode") {
    auto hop = make(HopOp::kParamBuiltin, name,
                    name == "toString"
                        ? DataType::kScalar
                        : (name == "quantile" || name == "median"
                               ? DataType::kScalar
                               : (name == "transformdecode"
                                      ? DataType::kFrame
                                      : DataType::kMatrix)),
                    name == "toString" ? ValueType::kString
                                       : ValueType::kFP64);
    std::vector<std::pair<std::string, const Expr*>> params;
    if (name == "replace") {
      params = {{"target", args.Get(0, "target")},
                {"pattern", args.Get(1, "pattern")},
                {"replacement", args.Get(2, "replacement")}};
    } else if (name == "removeEmpty") {
      params = {{"target", args.Get(0, "target")},
                {"margin", args.Get(1, "margin")}};
    } else if (name == "toString") {
      params = {{"target", args.Get(0, "target")}};
    } else if (name == "quantile") {
      hop->set_dims(0, 0);
      params = {{"target", args.Get(0, "target")},
                {"p", args.Get(1, "p")}};
    } else if (name == "median") {
      hop->set_dims(0, 0);
      auto h = make(HopOp::kParamBuiltin, "quantile", DataType::kScalar,
                    ValueType::kFP64);
      SYSDS_ASSIGN_OR_RETURN(HopPtr t, arg0());
      h->AddInput(std::move(t));
      h->AddInput(MakeLiteralHop(LitValue::Double(0.5)));
      h->params()["pnames"] = "target,p";
      h->set_dims(0, 0);
      return h;
    } else if (name == "transformapply") {
      params = {{"target", args.Get(0, "target")},
                {"spec", args.Get(1, "spec")},
                {"meta", args.Get(2, "meta")}};
    } else {  // transformdecode
      params = {{"target", args.Get(0, "target")},
                {"spec", args.Get(1, "spec")},
                {"meta", args.Get(2, "meta")},
                {"frame", args.Get(3, "frame")}};
    }
    std::string pnames;
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i].second == nullptr) {
        return ErrAt(e, name + ": missing parameter '" + params[i].first +
                            "'");
      }
      SYSDS_ASSIGN_OR_RETURN(HopPtr p, BuildExpr(*params[i].second, ctx));
      hop->AddInput(std::move(p));
      if (i > 0) pnames += ",";
      pnames += params[i].first;
    }
    hop->params()["pnames"] = pnames;
    return hop;
  }
  if (name == "transformencode") {
    return ErrAt(e,
                 "transformencode returns [X, meta]; use multi-assignment");
  }

  // ---- casts ----
  static const std::set<std::string> kCasts = {
      "as.scalar", "as.matrix", "as.frame", "as.double", "as.integer",
      "as.logical"};
  if (kCasts.count(name)) {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    DataType dt = DataType::kScalar;
    ValueType vt = ValueType::kFP64;
    if (name == "as.matrix") { dt = DataType::kMatrix; }
    else if (name == "as.frame") { dt = DataType::kFrame; vt = ValueType::kString; }
    else if (name == "as.integer") vt = ValueType::kInt64;
    else if (name == "as.logical") vt = ValueType::kBoolean;
    auto hop = make(HopOp::kCast, name, dt, vt);
    hop->AddInput(std::move(in));
    hop->RefreshSizeInformation();
    return hop;
  }

  // ---- I/O and output ----
  if (name == "read") {
    const Expr* path = args.Get(0, "file");
    if (path == nullptr) return ErrAt(e, "read requires a file path");
    SYSDS_ASSIGN_OR_RETURN(HopPtr p, BuildExpr(*path, ctx));
    std::string dt_str = "matrix";
    auto hop = make(HopOp::kPersistentRead, "pread", DataType::kMatrix,
                    ValueType::kFP64);
    auto set_param = [&](const std::string& key, size_t pos) -> Status {
      const Expr* a = args.Get(pos, key);
      if (a == nullptr) return Status::Ok();
      switch (a->kind) {
        case ExprKind::kStringLiteral:
          hop->params()[key] = a->string_value;
          break;
        case ExprKind::kBoolLiteral:
          hop->params()[key] = a->bool_value ? "true" : "false";
          break;
        default:
          return ErrAt(e, "read: parameter '" + key + "' must be a literal");
      }
      return Status::Ok();
    };
    SYSDS_RETURN_IF_ERROR(set_param("format", 99));
    SYSDS_RETURN_IF_ERROR(set_param("header", 99));
    SYSDS_RETURN_IF_ERROR(set_param("sep", 99));
    SYSDS_RETURN_IF_ERROR(set_param("data_type", 99));
    if (hop->params().count("data_type")) {
      dt_str = hop->params()["data_type"];
    }
    if (dt_str == "frame") {
      hop->set_types(DataType::kFrame, ValueType::kString);
    }
    hop->AddInput(std::move(p));
    return hop;
  }
  if (name == "write") {
    const Expr* x = args.Get(0, "x");
    const Expr* path = args.Get(1, "file");
    if (x == nullptr || path == nullptr) {
      return ErrAt(e, "write requires data and a file path");
    }
    SYSDS_ASSIGN_OR_RETURN(HopPtr xh, BuildExpr(*x, ctx));
    SYSDS_ASSIGN_OR_RETURN(HopPtr ph, BuildExpr(*path, ctx));
    auto hop = make(HopOp::kPersistentWrite, "pwrite", xh->data_type(),
                    xh->value_type());
    hop->AddInput(std::move(xh));
    hop->AddInput(std::move(ph));
    const Expr* fmt = args.Get(2, "format");
    if (fmt != nullptr && fmt->kind == ExprKind::kStringLiteral) {
      hop->params()["format"] = fmt->string_value;
    }
    const Expr* header = args.Get(99, "header");
    if (header != nullptr && header->kind == ExprKind::kBoolLiteral) {
      hop->params()["header"] = header->bool_value ? "true" : "false";
    }
    const Expr* sep = args.Get(99, "sep");
    if (sep != nullptr && sep->kind == ExprKind::kStringLiteral) {
      hop->params()["sep"] = sep->string_value;
    }
    return hop;
  }
  if (name == "print") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kUnary, "print", DataType::kScalar,
                    ValueType::kString);
    hop->AddInput(std::move(in));
    return hop;
  }
  if (name == "stop") {
    SYSDS_ASSIGN_OR_RETURN(HopPtr in, arg0());
    auto hop = make(HopOp::kUnary, "stop", DataType::kScalar,
                    ValueType::kString);
    hop->AddInput(std::move(in));
    return hop;
  }

  // ---- user-defined / DML-bodied builtin functions ----
  if (IsFunctionName(name)) {
    SYSDS_RETURN_IF_ERROR(EnsureFunction(name));
    const FunctionBlock& fn = *prog_->Functions()[name];
    if (fn.returns.size() != 1) {
      return ErrAt(e, "function '" + name + "' returns " +
                          std::to_string(fn.returns.size()) +
                          " values; use multi-assignment");
    }
    return BuildFunctionCall(e, ctx);
  }

  return ErrAt(e, "unknown function '" + name + "'");
}

#undef BUILD_ARG_OR

}  // namespace

StatusOr<std::unique_ptr<Program>> CompileDML(const std::string& source,
                                              const DMLConfig& config,
                                              const SymbolInfoMap& inputs) {
  SYSDS_SPAN("compiler", "compile_dml");
  DMLProgram ast;
  {
    SYSDS_SPAN("compiler", "parse");
    SYSDS_ASSIGN_OR_RETURN(ast, ParseDML(source));
  }
  auto program = std::make_unique<Program>();
  Compiler compiler(program.get(), &config);
  {
    SYSDS_SPAN("compiler", "build_and_codegen");
    SYSDS_RETURN_IF_ERROR(compiler.AddFunctionAsts(ast.functions));
    SymbolInfoMap symbols = inputs;
    SYSDS_RETURN_IF_ERROR(compiler.CompileTopLevel(ast.statements, &symbols));
  }
  if (config.compression_enabled) {
    SYSDS_SPAN("compiler", "compress_rewrite");
    InjectCompression(program.get(), config);
  }
  {
    SYSDS_SPAN("compiler", "plan_transform_outputs");
    PlanTransformOutputs(program.get(), config);
  }
  {
    SYSDS_SPAN("compiler", "loop_liveness");
    AnnotateLoopLiveness(program.get());
  }
  return program;
}

}  // namespace sysds
