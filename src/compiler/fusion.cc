#include "compiler/fusion.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/matrix/lib_fused.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {

// Upper bound on pipeline length; regions past this keep correctness but the
// per-row scratch working set starts to defeat the cache locality win.
constexpr size_t kMaxRegionSteps = 64;

// A committed fusion region: the hop it replaces, its member ops (topo
// order, producers before consumers), and the emitted micro-plan with its
// leaf inputs in plan order.
struct Region {
  std::vector<Hop*> members;
  std::vector<HopPtr> matrix_leaves;
  std::vector<HopPtr> scalar_leaves;
  FusedPlan plan;
};

bool CpEligible(const Hop& hop, const DMLConfig& config) {
  return !config.force_spark && hop.MemEstimate() <= config.cp_memory_budget;
}

// Shape of a matrix operand relative to the region shape; false when it
// neither matches nor broadcasts.
bool OperandKind(const Hop& in, int64_t rows, int64_t cols,
                 FusedInputKind* kind) {
  if (!in.DimsKnown()) return false;
  if (in.dim1() == rows && in.dim2() == cols) {
    *kind = FusedInputKind::kFull;
    return true;
  }
  if (in.dim1() == rows && in.dim2() == 1) {
    *kind = FusedInputKind::kColVec;
    return true;
  }
  if (in.dim1() == 1 && in.dim2() == cols) {
    *kind = FusedInputKind::kRowVec;
    return true;
  }
  return false;
}

// True when `hop` is an elementwise kBinary/kUnary over the given region
// shape whose operands are scalars, same-shape matrices, or broadcastable
// vectors — i.e. it can run as one step of a fused row pipeline.
bool FusableElementwise(const Hop& hop, int64_t rows, int64_t cols,
                        const DMLConfig& config) {
  if (hop.data_type() != DataType::kMatrix) return false;
  if (!hop.DimsKnown() || hop.dim1() != rows || hop.dim2() != cols) {
    return false;
  }
  if (!CpEligible(hop, config) || !hop.params().empty()) return false;
  if (hop.op() == HopOp::kBinary) {
    BinaryOpCode bop;
    if (hop.inputs().size() != 2 || !ParseBinaryOpcode(hop.opcode(), &bop)) {
      return false;
    }
  } else if (hop.op() == HopOp::kUnary) {
    UnaryOpCode uop;
    if (hop.inputs().size() != 1 || !ParseUnaryOpcode(hop.opcode(), &uop)) {
      return false;
    }
  } else {
    return false;
  }
  for (const HopPtr& in : hop.inputs()) {
    if (in->data_type() == DataType::kScalar) {
      if (in->value_type() == ValueType::kString) return false;
      continue;
    }
    if (in->data_type() != DataType::kMatrix) return false;
    FusedInputKind kind;
    if (!OperandKind(*in, rows, cols, &kind)) return false;
  }
  return true;
}

// True when `hop` can cap a region: a full/row/col aggregate over a single
// matrix input, excluding the aggregates the fused kernel does not model
// (trace reads the diagonal; imax/imin need per-cell argument tracking
// through the pipeline).
bool FusableAggRoot(const Hop& hop, const DMLConfig& config, AggOpCode* agg,
                    AggDirection* dir) {
  if (hop.op() != HopOp::kAggUnary || hop.inputs().size() != 1) return false;
  if (!ParseAggOpcode(hop.opcode(), agg, dir)) return false;
  if (*agg == AggOpCode::kTrace || *agg == AggOpCode::kIndexMax ||
      *agg == AggOpCode::kIndexMin) {
    return false;
  }
  const Hop& in = *hop.inputs()[0];
  return in.data_type() == DataType::kMatrix && in.DimsKnown() &&
         CpEligible(hop, config);
}

class FusionPlanner {
 public:
  FusionPlanner(const std::vector<HopPtr>& roots, const DMLConfig& config)
      : roots_(roots), config_(config) {}

  std::vector<HopPtr> Run() {
    std::vector<Hop*> order = TopoOrder(roots_);
    for (Hop* hop : order) {
      for (const HopPtr& in : hop->inputs()) {
        consumers_[in->id()]++;
        ptr_of_.emplace(in->id(), in);
      }
    }
    for (const HopPtr& r : roots_) ptr_of_.emplace(r->id(), r);
    // Reverse topological scan: consumers first, so an aggregate claims its
    // elementwise producer chain before the chain can seed its own region.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Hop* hop = *it;
      if (absorbed_.count(hop->id()) || regions_.count(hop->id())) continue;
      TrySeed(hop);
    }
    if (regions_.empty()) return roots_;
    std::vector<HopPtr> rebuilt;
    rebuilt.reserve(roots_.size());
    for (const HopPtr& root : roots_) rebuilt.push_back(Rebuild(root));
    return rebuilt;
  }

 private:
  // Attempts to commit a region rooted at `hop` (aggregate cap or pure
  // elementwise root).
  void TrySeed(Hop* hop) {
    Region region;
    AggOpCode agg;
    AggDirection dir;
    Hop* top = nullptr;  // topmost elementwise member
    int64_t rows, cols;
    if (FusableAggRoot(*hop, config_, &agg, &dir)) {
      const HopPtr& in = hop->inputs()[0];
      rows = in->dim1();
      cols = in->dim2();
      if (rows <= 0 || cols <= 0) return;
      if (consumers_[in->id()] != 1 ||
          !FusableElementwise(*in, rows, cols, config_)) {
        return;
      }
      region.plan.has_agg = true;
      region.plan.agg = agg;
      region.plan.agg_dir = dir;
      top = in.get();
      Grow(in, rows, cols, &region.members);
    } else {
      rows = hop->dim1();
      cols = hop->dim2();
      if (rows <= 0 || cols <= 0) return;
      if (!FusableElementwise(*hop, rows, cols, config_)) return;
      top = hop;
      Grow(ptr_of_.at(hop->id()), rows, cols, &region.members);
      // A single elementwise op gains nothing from fusion.
      if (region.members.size() < 2) return;
    }

    // Profitability gate: fusing must elide at least one interior
    // intermediate of configured size. For aggregate regions the top
    // member's full-size output is elided too; for elementwise regions the
    // top member's output is the region result and still materializes.
    bool worthwhile = false;
    for (Hop* m : region.members) {
      if (m == top && !region.plan.has_agg) continue;
      if (m->OutputMemEstimate() >= config_.fusion_min_intermediate_bytes) {
        worthwhile = true;
        break;
      }
    }
    if (!worthwhile) return;

    if (!EmitPlan(rows, cols, &region)) return;

    obs::MetricsRegistry::Get().GetCounter("fusion.regions")->Add(1);
    obs::MetricsRegistry::Get()
        .GetCounter("fusion.intermediates_elided")
        ->Add(region.plan.IntermediatesElided());
    for (Hop* m : region.members) absorbed_.insert(m->id());
    regions_.emplace(hop->id(), std::move(region));
  }

  // Collects the member tree under `h` (inclusive) in topological order.
  // `h` is already known to be a member; inputs are absorbed when they are
  // exclusively consumed, same-shape, and fusable.
  void Grow(const HopPtr& h, int64_t rows, int64_t cols,
            std::vector<Hop*>* members) {
    for (const HopPtr& in : h->inputs()) {
      if (members->size() + 1 >= kMaxRegionSteps) break;
      if (in->data_type() != DataType::kMatrix) continue;
      if (consumers_[in->id()] != 1) continue;
      if (!FusableElementwise(*in, rows, cols, config_)) continue;
      Grow(in, rows, cols, members);
    }
    members->push_back(h.get());
  }

  // Serializes the members into a micro-plan, collecting matrix/scalar
  // leaves in first-use order. Fails (abandoning the region) when no
  // full-shape matrix input exists to drive the row pipeline.
  bool EmitPlan(int64_t rows, int64_t cols, Region* region) {
    std::map<int64_t, int> step_of;
    std::map<int64_t, int> leaf_of;
    std::map<int64_t, int> scalar_of;
    for (Hop* m : region->members) {
      FusedStep step;
      if (m->op() == HopOp::kBinary) {
        step.is_binary = true;
        ParseBinaryOpcode(m->opcode(), &step.bop);
        step.a = Ref(m->inputs()[0], rows, cols, step_of, &leaf_of,
                     &scalar_of, region);
        step.b = Ref(m->inputs()[1], rows, cols, step_of, &leaf_of,
                     &scalar_of, region);
      } else {
        step.is_binary = false;
        ParseUnaryOpcode(m->opcode(), &step.uop);
        step.a = Ref(m->inputs()[0], rows, cols, step_of, &leaf_of,
                     &scalar_of, region);
      }
      step_of[m->id()] = static_cast<int>(region->plan.steps.size());
      region->plan.steps.push_back(step);
    }
    region->plan.num_inputs = static_cast<int>(region->matrix_leaves.size());
    region->plan.num_scalars = static_cast<int>(region->scalar_leaves.size());
    region->plan.root = static_cast<int>(region->plan.steps.size()) - 1;
    for (FusedInputKind kind : region->plan.input_kinds) {
      if (kind == FusedInputKind::kFull) return true;
    }
    return false;
  }

  FusedRef Ref(const HopPtr& in, int64_t rows, int64_t cols,
               const std::map<int64_t, int>& step_of,
               std::map<int64_t, int>* leaf_of,
               std::map<int64_t, int>* scalar_of, Region* region) {
    FusedRef ref;
    auto sit = step_of.find(in->id());
    if (sit != step_of.end()) {
      ref.kind = FusedRef::kStep;
      ref.idx = sit->second;
      return ref;
    }
    if (in->data_type() == DataType::kScalar) {
      ref.kind = FusedRef::kScalar;
      auto it = scalar_of->find(in->id());
      if (it == scalar_of->end()) {
        it = scalar_of
                 ->emplace(in->id(),
                           static_cast<int>(region->scalar_leaves.size()))
                 .first;
        region->scalar_leaves.push_back(in);
      }
      ref.idx = it->second;
      return ref;
    }
    ref.kind = FusedRef::kInput;
    auto it = leaf_of->find(in->id());
    if (it == leaf_of->end()) {
      it = leaf_of
               ->emplace(in->id(),
                         static_cast<int>(region->matrix_leaves.size()))
               .first;
      region->matrix_leaves.push_back(in);
      FusedInputKind kind = FusedInputKind::kFull;
      OperandKind(*in, rows, cols, &kind);  // validated by FusableElementwise
      region->plan.input_kinds.push_back(kind);
    }
    ref.idx = it->second;
    return ref;
  }

  // Copy-on-write rebuild: fused regions become kFusedOp hops, consumers of
  // changed nodes are shallow-cloned, untouched subtrees are shared with the
  // original DAG (which the recompiler keeps pristine).
  HopPtr Rebuild(const HopPtr& h) {
    auto mit = memo_.find(h->id());
    if (mit != memo_.end()) return mit->second;
    HopPtr result;
    auto rit = regions_.find(h->id());
    if (rit != regions_.end()) {
      const Region& region = rit->second;
      auto fused = std::make_shared<Hop>(HopOp::kFusedOp, "fused",
                                         h->data_type(), h->value_type());
      fused->set_dims(h->dim1(), h->dim2());
      fused->set_nnz(h->nnz());
      for (const HopPtr& leaf : region.matrix_leaves) {
        fused->AddInput(Rebuild(leaf));
      }
      for (const HopPtr& leaf : region.scalar_leaves) {
        fused->AddInput(Rebuild(leaf));
      }
      fused->AddInput(
          MakeLiteralHop(LitValue::String(region.plan.Serialize())));
      result = std::move(fused);
    } else {
      std::vector<HopPtr> new_inputs;
      new_inputs.reserve(h->inputs().size());
      bool changed = false;
      for (const HopPtr& in : h->inputs()) {
        HopPtr ni = Rebuild(in);
        changed |= (ni != in);
        new_inputs.push_back(std::move(ni));
      }
      if (!changed) {
        result = h;
      } else {
        auto clone = std::make_shared<Hop>(h->op(), h->opcode(),
                                           h->data_type(), h->value_type());
        clone->set_dims(h->dim1(), h->dim2());
        clone->set_nnz(h->nnz());
        clone->set_name(h->name());
        clone->literal() = h->literal();
        clone->params() = h->params();
        clone->outputs() = h->outputs();
        clone->inputs() = std::move(new_inputs);
        result = std::move(clone);
      }
    }
    memo_[h->id()] = result;
    return result;
  }

  const std::vector<HopPtr>& roots_;
  const DMLConfig& config_;
  std::map<int64_t, int> consumers_;
  std::map<int64_t, HopPtr> ptr_of_;
  std::set<int64_t> absorbed_;
  std::map<int64_t, Region> regions_;  // replaced-hop id -> region
  std::map<int64_t, HopPtr> memo_;
};

}  // namespace

std::vector<HopPtr> PlanFusion(const std::vector<HopPtr>& roots,
                               const DMLConfig& config) {
  SYSDS_SPAN("compiler", "fusion");
  return FusionPlanner(roots, config).Run();
}

}  // namespace sysds
