#ifndef SYSDS_COMPILER_FUSION_H_
#define SYSDS_COMPILER_FUSION_H_

#include <vector>

#include "common/config.h"
#include "compiler/hop.h"

namespace sysds {

/// Operator-fusion planner (paper §2.3(2), codegen-style fused operators).
///
/// Greedily grows maximal single-consumer regions of CP-eligible elementwise
/// kBinary/kUnary hops, optionally capped by one kAggUnary root, and replaces
/// each profitable region with a kFusedOp hop whose serialized micro-plan
/// rides along as a trailing string-literal input (see
/// runtime/matrix/lib_fused.h for the plan grammar and execution semantics).
///
/// The input DAG is never mutated: PlanFusion returns a copy-on-write rebuild
/// of `roots` where only fused regions (and their transitive consumers) are
/// fresh nodes; untouched subtrees are shared. Callers keep the original
/// roots for dynamic recompilation, which re-runs fusion against updated
/// sizes simply by calling GenerateInstructions again.
///
/// A region is committed only when fusing actually removes work: at least
/// one interior intermediate whose dense output estimate is at least
/// `config.fusion_min_intermediate_bytes` is elided, and the region reads at
/// least one full-shape matrix input to drive the row pipeline.
std::vector<HopPtr> PlanFusion(const std::vector<HopPtr>& roots,
                               const DMLConfig& config);

}  // namespace sysds

#endif  // SYSDS_COMPILER_FUSION_H_
