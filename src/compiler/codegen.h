#ifndef SYSDS_COMPILER_CODEGEN_H_
#define SYSDS_COMPILER_CODEGEN_H_

#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "compiler/hop.h"
#include "compiler/lop.h"
#include "runtime/controlprog/instruction.h"

namespace sysds {

/// Operator selection (paper §2.3(2)): decides CP vs SPARK per hop from the
/// memory estimate against the CP budget (or force_spark).
void SelectExecTypes(const std::vector<HopPtr>& roots,
                     const DMLConfig& config);

/// Lowers a HOP DAG to physical operators in topological order.
StatusOr<std::vector<Lop>> BuildLops(const std::vector<HopPtr>& roots,
                                     const DMLConfig& config);

/// Translates LOPs into executable runtime instructions.
StatusOr<std::vector<InstructionPtr>> LopsToInstructions(
    const std::vector<Lop>& lops);

/// Full lowering: exec-type selection + LOP construction + instruction
/// generation (also used by the dynamic recompiler).
StatusOr<std::vector<InstructionPtr>> GenerateInstructions(
    const std::vector<HopPtr>& roots, const DMLConfig& config);

}  // namespace sysds

#endif  // SYSDS_COMPILER_CODEGEN_H_
