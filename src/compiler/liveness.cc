#include "compiler/liveness.h"

#include <set>
#include <string>
#include <vector>

namespace sysds {

namespace {

// Read/write sets over a block subtree. Reads track matrix- and frame-typed
// variable operands (scalars are cheap enough to always checkpoint via the
// write set, and scalar reads are never lineage-validated); writes track
// every output name regardless of type.
void CollectInstructions(const std::vector<InstructionPtr>& instructions,
                         std::set<std::string>* reads,
                         std::set<std::string>* writes) {
  for (const auto& instr : instructions) {
    for (const Operand& in : instr->inputs()) {
      if (!in.is_literal &&
          (in.dt == DataType::kMatrix || in.dt == DataType::kFrame)) {
        reads->insert(in.name);
      }
    }
    for (const Operand& out : instr->outputs()) writes->insert(out.name);
  }
}

void CollectBlocks(const std::vector<ProgramBlockPtr>& blocks,
                   std::set<std::string>* reads,
                   std::set<std::string>* writes) {
  for (const auto& block : blocks) {
    ProgramBlock* b = block.get();
    if (auto* bb = dynamic_cast<BasicBlock*>(b)) {
      CollectInstructions(bb->Instructions(), reads, writes);
    } else if (auto* ifb = dynamic_cast<IfBlock*>(b)) {
      CollectInstructions(ifb->GetPredicate().instructions, reads, writes);
      CollectBlocks(ifb->ThenBlocks(), reads, writes);
      CollectBlocks(ifb->ElseBlocks(), reads, writes);
    } else if (auto* wb = dynamic_cast<WhileBlock*>(b)) {
      CollectInstructions(wb->GetPredicate().instructions, reads, writes);
      CollectBlocks(wb->Body(), reads, writes);
    } else if (auto* fb = dynamic_cast<ForBlock*>(b)) {
      CollectInstructions(fb->From().instructions, reads, writes);
      CollectInstructions(fb->To().instructions, reads, writes);
      CollectInstructions(fb->Increment().instructions, reads, writes);
      writes->insert(fb->LoopVar());
      if (auto* pfb = dynamic_cast<ParForBlock*>(b)) {
        for (const std::string& v : pfb->ResultVars()) writes->insert(v);
      }
      CollectBlocks(fb->Body(), reads, writes);
    }
  }
}

void AnnotateLoop(const std::vector<ProgramBlockPtr>& body,
                  const Predicate* predicate, const std::string* loop_var,
                  const std::vector<std::string>* result_vars,
                  LoopLiveness* liveness, int* next_id) {
  liveness->loop_id = (*next_id)++;
  std::set<std::string> reads, writes;
  // The predicate re-evaluates every iteration, so its reads/writes are
  // loop-carried too (a while predicate may read the convergence scalar the
  // body updates, or even call a function that writes).
  if (predicate != nullptr) {
    CollectInstructions(predicate->instructions, &reads, &writes);
  }
  CollectBlocks(body, &reads, &writes);
  if (loop_var != nullptr) writes.insert(*loop_var);
  if (result_vars != nullptr) {
    for (const std::string& v : *result_vars) writes.insert(v);
  }
  liveness->checkpoint_vars.assign(writes.begin(), writes.end());
  liveness->invariant_reads.clear();
  for (const std::string& r : reads) {
    if (writes.count(r) == 0) liveness->invariant_reads.push_back(r);
  }
}

// Pre-order walk: outer loops get smaller ids than the loops nested inside
// them, and sibling loops are numbered left to right, matching program
// order. std::set keeps the var lists sorted, so the whole annotation is a
// deterministic function of the compiled program.
void AnnotateBlockList(const std::vector<ProgramBlockPtr>& blocks,
                       int* next_id) {
  for (const auto& block : blocks) {
    ProgramBlock* b = block.get();
    if (auto* ifb = dynamic_cast<IfBlock*>(b)) {
      AnnotateBlockList(ifb->ThenBlocks(), next_id);
      AnnotateBlockList(ifb->ElseBlocks(), next_id);
    } else if (auto* wb = dynamic_cast<WhileBlock*>(b)) {
      AnnotateLoop(wb->Body(), &wb->GetPredicate(), nullptr, nullptr,
                   &wb->Liveness(), next_id);
      AnnotateBlockList(wb->Body(), next_id);
    } else if (auto* fb = dynamic_cast<ForBlock*>(b)) {
      auto* pfb = dynamic_cast<ParForBlock*>(b);
      AnnotateLoop(fb->Body(), nullptr, &fb->LoopVar(),
                   pfb != nullptr ? &pfb->ResultVars() : nullptr,
                   &fb->Liveness(), next_id);
      AnnotateBlockList(fb->Body(), next_id);
    }
  }
}

}  // namespace

void AnnotateLoopLiveness(Program* program) {
  int next_id = 0;
  AnnotateBlockList(program->Blocks(), &next_id);
  // Loops inside functions are annotated too (ids continue the sequence in
  // the function directory's sorted-name order), but checkpointing itself
  // only engages for outermost top-level loops — function-body loops never
  // see a CheckpointManager on their context.
  for (auto& [name, fn] : program->Functions()) {
    (void)name;
    AnnotateBlockList(fn->body, &next_id);
  }
}

}  // namespace sysds
