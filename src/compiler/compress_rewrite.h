#ifndef SYSDS_COMPILER_COMPRESS_REWRITE_H_
#define SYSDS_COMPILER_COMPRESS_REWRITE_H_

#include "common/config.h"
#include "runtime/controlprog/program.h"

namespace sysds {

/// Workload-aware compression rewrite (paper §3.4): for every loop whose
/// body reads a matrix variable that the loop never writes (the lmDS-style
/// "sweep over one dataset" pattern), inject a compress(X) instruction
/// immediately before the loop. The compress instruction itself is lenient
/// (sampling-based planner, min-ratio gate, pass-through on every
/// early-out), so injection is always safe; the rewrite only decides
/// *where* compression could pay off.
void InjectCompression(Program* program, const DMLConfig& config);

}  // namespace sysds

#endif  // SYSDS_COMPILER_COMPRESS_REWRITE_H_
