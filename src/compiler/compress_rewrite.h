#ifndef SYSDS_COMPILER_COMPRESS_REWRITE_H_
#define SYSDS_COMPILER_COMPRESS_REWRITE_H_

#include "common/config.h"
#include "runtime/controlprog/program.h"

namespace sysds {

/// Workload-aware compression rewrite (paper §3.4): for every loop whose
/// body reads a matrix variable that the loop never writes (the lmDS-style
/// "sweep over one dataset" pattern), inject a compress(X) instruction
/// immediately before the loop. The compress instruction itself is lenient
/// (sampling-based planner, min-ratio gate, pass-through on every
/// early-out), so injection is always safe; the rewrite only decides
/// *where* compression could pay off.
void InjectCompression(Program* program, const DMLConfig& config);

/// Marks transformencode/transformapply instructions with their planned
/// output representation: the configured transform_output, upgraded from
/// kDense to kAuto when compression is enabled — encode outputs are natural
/// compression candidates (the fitted dictionaries give exact cardinality),
/// so the encoder prices each column and may emit a CompressedMatrixBlock
/// directly instead of dense-then-compress. Runs unconditionally (the
/// default plan is a no-op kDense stamp).
void PlanTransformOutputs(Program* program, const DMLConfig& config);

}  // namespace sysds

#endif  // SYSDS_COMPILER_COMPRESS_REWRITE_H_
