#ifndef SYSDS_COMPILER_COMPILER_H_
#define SYSDS_COMPILER_COMPILER_H_

#include <map>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/controlprog/program.h"

namespace sysds {

/// Compile-time information about a variable (used for size propagation
/// across statement blocks, §2.3(2)). dims/nnz use -1 for unknown.
struct SymbolInfo {
  DataType dt = DataType::kUnknown;
  ValueType vt = ValueType::kFP64;
  int64_t dim1 = -1;
  int64_t dim2 = -1;
  int64_t nnz = -1;
};

using SymbolInfoMap = std::map<std::string, SymbolInfo>;

/// Compiles a DML script into an executable runtime program: parsing,
/// statement-block construction, HOP DAGs, rewrites, size propagation,
/// operator selection, and instruction generation. `inputs` describes
/// variables that will be bound externally before execution (MLContext /
/// JMLC style).
StatusOr<std::unique_ptr<Program>> CompileDML(const std::string& source,
                                              const DMLConfig& config,
                                              const SymbolInfoMap& inputs = {});

}  // namespace sysds

#endif  // SYSDS_COMPILER_COMPILER_H_
