#include "compiler/compress_rewrite.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runtime/controlprog/instructions_cp.h"

namespace sysds {

namespace {

// Read/write sets over a block subtree. Reads only track matrix-typed
// variable operands (scalars are never compression candidates); writes
// track every output name so a variable updated under any type is treated
// as loop-variant.
void CollectInstructions(const std::vector<InstructionPtr>& instructions,
                         std::set<std::string>* reads,
                         std::set<std::string>* writes) {
  for (const auto& instr : instructions) {
    for (const Operand& in : instr->inputs()) {
      if (!in.is_literal && in.dt == DataType::kMatrix) reads->insert(in.name);
    }
    for (const Operand& out : instr->outputs()) writes->insert(out.name);
  }
}

void CollectPredicate(const Predicate& p, std::set<std::string>* reads,
                      std::set<std::string>* writes) {
  CollectInstructions(p.instructions, reads, writes);
}

void CollectBlocks(const std::vector<ProgramBlockPtr>& blocks,
                   std::set<std::string>* reads,
                   std::set<std::string>* writes) {
  for (const auto& block : blocks) {
    ProgramBlock* b = block.get();
    if (auto* bb = dynamic_cast<BasicBlock*>(b)) {
      CollectInstructions(bb->Instructions(), reads, writes);
    } else if (auto* ifb = dynamic_cast<IfBlock*>(b)) {
      CollectPredicate(ifb->GetPredicate(), reads, writes);
      CollectBlocks(ifb->ThenBlocks(), reads, writes);
      CollectBlocks(ifb->ElseBlocks(), reads, writes);
    } else if (auto* wb = dynamic_cast<WhileBlock*>(b)) {
      CollectPredicate(wb->GetPredicate(), reads, writes);
      CollectBlocks(wb->Body(), reads, writes);
    } else if (auto* fb = dynamic_cast<ForBlock*>(b)) {
      CollectPredicate(fb->From(), reads, writes);
      CollectPredicate(fb->To(), reads, writes);
      CollectPredicate(fb->Increment(), reads, writes);
      writes->insert(fb->LoopVar());
      if (auto* pfb = dynamic_cast<ParForBlock*>(b)) {
        for (const std::string& v : pfb->ResultVars()) writes->insert(v);
      }
      CollectBlocks(fb->Body(), reads, writes);
    }
  }
}

// Builds the injected block: one compress(X) -> X per candidate. The
// instruction reuses the variable name, so downstream instructions see the
// compressed MatrixObject through the ordinary symbol table.
ProgramBlockPtr MakeCompressBlock(const std::set<std::string>& candidates) {
  auto bb = std::make_unique<BasicBlock>();
  for (const std::string& name : candidates) {
    auto instr = std::make_unique<CompressInstr>();
    Operand var = Operand::Var(name, DataType::kMatrix, ValueType::kFP64);
    instr->AddInput(var);
    instr->AddOutput(var);
    bb->Instructions().push_back(std::move(instr));
  }
  return bb;
}

// Walks a block list, injecting a compress block before each loop for the
// matrix variables the loop reads but never writes. Nested loops are
// rewritten too: an inner injection for an already-compressed variable
// early-outs on HasCompressed(), so redundancy costs one symbol lookup.
void RewriteBlockList(std::vector<ProgramBlockPtr>* blocks) {
  for (size_t i = 0; i < blocks->size(); ++i) {
    ProgramBlock* b = (*blocks)[i].get();
    if (auto* ifb = dynamic_cast<IfBlock*>(b)) {
      RewriteBlockList(&ifb->ThenBlocks());
      RewriteBlockList(&ifb->ElseBlocks());
      continue;
    }
    std::set<std::string> reads, writes;
    std::vector<ProgramBlockPtr>* body = nullptr;
    if (auto* wb = dynamic_cast<WhileBlock*>(b)) {
      CollectPredicate(wb->GetPredicate(), &reads, &writes);
      CollectBlocks(wb->Body(), &reads, &writes);
      body = &wb->Body();
    } else if (auto* fb = dynamic_cast<ForBlock*>(b)) {
      CollectPredicate(fb->From(), &reads, &writes);
      CollectPredicate(fb->To(), &reads, &writes);
      CollectPredicate(fb->Increment(), &reads, &writes);
      writes.insert(fb->LoopVar());
      if (auto* pfb = dynamic_cast<ParForBlock*>(b)) {
        for (const std::string& v : pfb->ResultVars()) writes.insert(v);
      }
      CollectBlocks(fb->Body(), &reads, &writes);
      body = &fb->Body();
    } else {
      continue;
    }
    RewriteBlockList(body);
    std::set<std::string> candidates;
    for (const std::string& r : reads) {
      if (writes.count(r) == 0) candidates.insert(r);
    }
    if (candidates.empty()) continue;
    blocks->insert(blocks->begin() + i, MakeCompressBlock(candidates));
    ++i;  // skip back over the loop block we just rewrote
  }
}

}  // namespace

void InjectCompression(Program* program, const DMLConfig& config) {
  if (!config.compression_enabled) return;
  RewriteBlockList(&program->Blocks());
  for (auto& [name, fn] : program->Functions()) {
    (void)name;
    RewriteBlockList(&fn->body);
  }
}

namespace {

void StampInstructions(const std::vector<InstructionPtr>& instructions,
                       TransformOutputFormat planned) {
  for (const auto& instr : instructions) {
    if (auto* pb = dynamic_cast<ParamBuiltinInstr*>(instr.get())) {
      if (pb->opcode() == "transformencode" ||
          pb->opcode() == "transformapply") {
        pb->planned_output = planned;
      }
    }
  }
}

void StampBlockList(const std::vector<ProgramBlockPtr>& blocks,
                    TransformOutputFormat planned) {
  for (const auto& block : blocks) {
    ProgramBlock* b = block.get();
    if (auto* bb = dynamic_cast<BasicBlock*>(b)) {
      StampInstructions(bb->Instructions(), planned);
    } else if (auto* ifb = dynamic_cast<IfBlock*>(b)) {
      StampInstructions(ifb->GetPredicate().instructions, planned);
      StampBlockList(ifb->ThenBlocks(), planned);
      StampBlockList(ifb->ElseBlocks(), planned);
    } else if (auto* wb = dynamic_cast<WhileBlock*>(b)) {
      StampInstructions(wb->GetPredicate().instructions, planned);
      StampBlockList(wb->Body(), planned);
    } else if (auto* fb = dynamic_cast<ForBlock*>(b)) {
      StampInstructions(fb->From().instructions, planned);
      StampInstructions(fb->To().instructions, planned);
      StampInstructions(fb->Increment().instructions, planned);
      StampBlockList(fb->Body(), planned);
    }
  }
}

}  // namespace

void PlanTransformOutputs(Program* program, const DMLConfig& config) {
  TransformOutputFormat planned = config.transform_output;
  if (planned == TransformOutputFormat::kDense && config.compression_enabled) {
    planned = TransformOutputFormat::kAuto;
  }
  StampBlockList(program->Blocks(), planned);
  for (auto& [name, fn] : program->Functions()) {
    (void)name;
    StampBlockList(fn->body, planned);
  }
}

}  // namespace sysds
