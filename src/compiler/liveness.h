#ifndef SYSDS_COMPILER_LIVENESS_H_
#define SYSDS_COMPILER_LIVENESS_H_

#include "runtime/controlprog/program.h"

namespace sysds {

/// Loop-liveness annotation pass for checkpoint/restart (src/runtime/
/// recovery/). Walks the compiled program's block tree and stamps every
/// for/parfor/while block with a LoopLiveness record:
///
///  - loop_id: a stable sequential id in deterministic pre-order walk
///    order, so the same DML source compiles to the same ids on every run
///    (checkpoint manifests key saved state by loop id).
///  - checkpoint_vars: every variable the loop body (or its predicates /
///    nested blocks) writes, plus for-loop induction variables and parfor
///    result variables. These are exactly the loop-carried values a
///    checkpoint must persist — anything else in scope is either invariant
///    (validated by lineage) or dead after the iteration.
///  - invariant_reads: matrix/frame variables the body reads but never
///    writes. Checkpoints record their lineage hashes instead of their
///    bytes; resume recomputes them by re-executing the program prefix and
///    validates the hashes match (a cheap proxy for bit-identity).
///
/// Functions called from loop bodies are treated at call granularity: the
/// call instruction's operands contribute to the read/write sets, which is
/// conservative but safe (a function cannot mutate a caller variable it
/// was not passed as an output).
void AnnotateLoopLiveness(Program* program);

}  // namespace sysds

#endif  // SYSDS_COMPILER_LIVENESS_H_
