#include "compiler/recompiler.h"

#include "common/statistics.h"
#include "compiler/codegen.h"
#include "compiler/hop.h"
#include "obs/trace.h"
#include "runtime/controlprog/program.h"

namespace sysds {

Status RecompileBasicBlock(BasicBlock* block, ExecutionContext* ec) {
  if (block->HopRoots().empty()) return Status::Ok();
  SYSDS_SPAN("compiler", "recompile");
  Statistics::Get().IncCounter("compiler.recompilations");

  for (Hop* hop : TopoOrder(block->HopRoots())) {
    if (hop->op() != HopOp::kTransientRead) continue;
    DataPtr d = ec->Vars().GetOrNull(hop->name());
    if (d == nullptr) continue;
    if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
      hop->set_dims(m->Rows(), m->Cols());
      hop->set_nnz(m->NonZeros());
    } else if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
      hop->set_dims(f->Frame().Rows(), f->Frame().Cols());
    }
  }
  PropagateSizes(block->HopRoots());
  SYSDS_ASSIGN_OR_RETURN(
      std::vector<InstructionPtr> instructions,
      GenerateInstructions(block->HopRoots(), ec->Config()));
  block->Instructions() = std::move(instructions);
  return Status::Ok();
}

}  // namespace sysds
