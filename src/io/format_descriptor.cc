#include "io/format_descriptor.h"

#include <fstream>

#include "common/json.h"
#include "common/util.h"

namespace sysds {

StatusOr<FormatDescriptor> ParseFormatDescriptor(const std::string& json) {
  SYSDS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (root.kind() != JsonValue::Kind::kObject) {
    return InvalidArgument("format descriptor must be a JSON object");
  }
  FormatDescriptor desc;
  const JsonValue* kind = root.Find("kind");
  if (kind == nullptr) {
    return InvalidArgument("format descriptor requires 'kind'");
  }
  desc.kind = kind->AsString();
  if (const JsonValue* d = root.Find("delimiter")) {
    if (!d->AsString().empty()) desc.delimiter = d->AsString()[0];
  }
  if (const JsonValue* h = root.Find("header")) desc.header = h->AsBool();
  if (const JsonValue* cols = root.Find("columns")) {
    for (const JsonValue& c : cols->AsArray()) {
      FormatDescriptor::ColumnDesc cd;
      if (const JsonValue* n = c.Find("name")) cd.name = n->AsString();
      if (const JsonValue* t = c.Find("type")) {
        cd.type = ParseValueType(t->AsString());
        if (cd.type == ValueType::kUnknown) {
          return InvalidArgument("format descriptor: unknown column type '" +
                                 t->AsString() + "'");
        }
      }
      if (const JsonValue* w = c.Find("width")) {
        cd.width = static_cast<int64_t>(w->AsNumber());
      }
      desc.columns.push_back(cd);
    }
  }
  if (const JsonValue* t = root.Find("num_threads")) {
    desc.num_threads = static_cast<int>(t->AsNumber());
  }
  // Matrix kinds carry their full layout in the file; only the generated
  // frame readers need a column specification up front.
  bool generated_kind = desc.kind == "delimited" ||
                        desc.kind == "fixed-width" ||
                        desc.kind == "key-value";
  if (generated_kind && desc.columns.empty()) {
    return InvalidArgument("format descriptor requires 'columns'");
  }
  return desc;
}

FormatDescriptor FormatDescriptor::Csv(char delimiter, bool header,
                                       int num_threads) {
  FormatDescriptor d;
  d.kind = "csv";
  d.delimiter = delimiter;
  d.header = header;
  d.num_threads = num_threads;
  return d;
}

FormatDescriptor FormatDescriptor::Binary() {
  FormatDescriptor d;
  d.kind = "binary";
  return d;
}

FormatDescriptor FormatDescriptor::Ijv() {
  FormatDescriptor d;
  d.kind = "ijv";
  return d;
}

StatusOr<FormatDescriptor> FormatDescriptor::FromFormatName(
    const std::string& name) {
  std::string n = ToLower(name);
  if (n == "csv" || n == "text") return Csv();
  if (n == "binary" || n == "bin") return Binary();
  if (n == "ijv" || n == "mm" || n == "matrixmarket") return Ijv();
  return InvalidArgument("unknown file format '" + name + "'");
}

namespace {

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open '" + path + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

FrameBlock MakeFrame(const FormatDescriptor& desc, int64_t rows) {
  std::vector<ValueType> schema;
  std::vector<std::string> names;
  for (const auto& c : desc.columns) {
    schema.push_back(c.type);
    names.push_back(c.name);
  }
  return FrameBlock(rows, schema, names);
}

}  // namespace

StatusOr<GeneratedReader> GenerateReader(const FormatDescriptor& desc) {
  if (desc.kind == "delimited") {
    // Specialize on delimiter/header/columns now; the closure only scans.
    char delim = desc.delimiter;
    bool header = desc.header;
    size_t ncols = desc.columns.size();
    FormatDescriptor d = desc;
    return GeneratedReader([d, delim, header, ncols](const std::string& path)
                               -> StatusOr<FrameBlock> {
      SYSDS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
      size_t start = header && !lines.empty() ? 1 : 0;
      FrameBlock f = MakeFrame(d, static_cast<int64_t>(lines.size() - start));
      for (size_t r = start; r < lines.size(); ++r) {
        std::vector<std::string> cells = SplitString(lines[r], delim);
        if (cells.size() != ncols) {
          return IoError("generated reader: ragged row " +
                         std::to_string(r + 1));
        }
        for (size_t c = 0; c < ncols; ++c) {
          f.SetString(static_cast<int64_t>(r - start),
                      static_cast<int64_t>(c), TrimString(cells[c]));
        }
      }
      return f;
    });
  }
  if (desc.kind == "fixed-width") {
    for (const auto& c : desc.columns) {
      if (c.width <= 0) {
        return CompileError("fixed-width format requires positive widths");
      }
    }
    FormatDescriptor d = desc;
    return GeneratedReader([d](const std::string& path)
                               -> StatusOr<FrameBlock> {
      SYSDS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
      size_t start = d.header && !lines.empty() ? 1 : 0;
      FrameBlock f = MakeFrame(d, static_cast<int64_t>(lines.size() - start));
      for (size_t r = start; r < lines.size(); ++r) {
        size_t off = 0;
        for (size_t c = 0; c < d.columns.size(); ++c) {
          size_t w = static_cast<size_t>(d.columns[c].width);
          if (off + w > lines[r].size()) {
            return IoError("generated reader: short fixed-width row " +
                           std::to_string(r + 1));
          }
          f.SetString(static_cast<int64_t>(r - start),
                      static_cast<int64_t>(c),
                      TrimString(lines[r].substr(off, w)));
          off += w;
        }
      }
      return f;
    });
  }
  if (desc.kind == "key-value") {
    FormatDescriptor d = desc;
    return GeneratedReader([d](const std::string& path)
                               -> StatusOr<FrameBlock> {
      SYSDS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
      FrameBlock f = MakeFrame(d, static_cast<int64_t>(lines.size()));
      for (size_t r = 0; r < lines.size(); ++r) {
        // Parse "k=v" pairs separated by the delimiter, in any order.
        std::vector<std::string> pairs = SplitString(lines[r], d.delimiter);
        for (const std::string& pair : pairs) {
          size_t eq = pair.find('=');
          if (eq == std::string::npos) continue;
          std::string key = TrimString(pair.substr(0, eq));
          std::string val = TrimString(pair.substr(eq + 1));
          for (size_t c = 0; c < d.columns.size(); ++c) {
            if (d.columns[c].name == key) {
              f.SetString(static_cast<int64_t>(r), static_cast<int64_t>(c),
                          val);
              break;
            }
          }
        }
      }
      return f;
    });
  }
  return CompileError("unknown format kind '" + desc.kind + "'");
}

StatusOr<GeneratedWriter> GenerateWriter(const FormatDescriptor& desc) {
  if (desc.kind != "delimited") {
    return CompileError("generated writers support only delimited formats");
  }
  FormatDescriptor d = desc;
  return GeneratedWriter([d](const FrameBlock& frame,
                             const std::string& path) -> Status {
    if (frame.Cols() != static_cast<int64_t>(d.columns.size())) {
      return InvalidArgument("generated writer: column count mismatch");
    }
    std::ofstream out(path);
    if (!out) return IoError("cannot open '" + path + "' for writing");
    if (d.header) {
      for (size_t c = 0; c < d.columns.size(); ++c) {
        if (c > 0) out << d.delimiter;
        out << d.columns[c].name;
      }
      out << "\n";
    }
    for (int64_t r = 0; r < frame.Rows(); ++r) {
      for (int64_t c = 0; c < frame.Cols(); ++c) {
        if (c > 0) out << d.delimiter;
        out << frame.GetString(r, c);
      }
      out << "\n";
    }
    return Status::Ok();
  });
}

}  // namespace sysds
