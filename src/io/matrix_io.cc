#include "io/matrix_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/thread_pool.h"
#include "common/util.h"

namespace sysds {

StatusOr<FileFormat> ParseFileFormat(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "csv" || n == "text") return FileFormat::kCsv;
  if (n == "binary" || n == "bin") return FileFormat::kBinary;
  if (n == "ijv" || n == "mm" || n == "matrixmarket") return FileFormat::kIjv;
  return InvalidArgument("unknown file format '" + name + "'");
}

namespace {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

// Splits [0, size) into chunks aligned to line boundaries.
std::vector<std::pair<size_t, size_t>> LineAlignedChunks(
    const std::string& data, int num_chunks) {
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t size = data.size();
  size_t target = size / static_cast<size_t>(num_chunks) + 1;
  size_t begin = 0;
  while (begin < size) {
    size_t end = std::min(size, begin + target);
    while (end < size && data[end] != '\n') ++end;
    if (end < size) ++end;  // include the newline
    chunks.emplace_back(begin, end);
    begin = end;
  }
  return chunks;
}

// Fast double parse of data[b..e): strtod on a bounded token.
inline double ParseDoubleToken(const char* s, size_t len) {
  char buf[64];
  len = std::min(len, sizeof(buf) - 1);
  std::memcpy(buf, s, len);
  buf[len] = '\0';
  return std::strtod(buf, nullptr);
}

}  // namespace

StatusOr<MatrixBlock> ReadMatrixCsv(const std::string& path,
                                    const CsvOptions& opts) {
  SYSDS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  int threads = opts.num_threads > 0 ? opts.num_threads : DefaultParallelism();

  // First pass: find row offsets is implicit in chunking; we count columns
  // from the first data line.
  size_t pos = 0;
  if (opts.header) {
    size_t nl = data.find('\n');
    pos = nl == std::string::npos ? data.size() : nl + 1;
  }
  if (pos >= data.size()) return MatrixBlock::Dense(0, 0);

  size_t first_end = data.find('\n', pos);
  if (first_end == std::string::npos) first_end = data.size();
  int64_t cols = 1;
  for (size_t i = pos; i < first_end; ++i) {
    if (data[i] == opts.delimiter) ++cols;
  }

  // Count rows (newlines in the body; tolerate missing trailing newline).
  int64_t rows = 0;
  for (size_t i = pos; i < data.size(); ++i) {
    if (data[i] == '\n') ++rows;
  }
  if (!data.empty() && data.back() != '\n') ++rows;

  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  std::string body = data.substr(pos);
  auto chunks = LineAlignedChunks(body, threads);

  // Precompute the starting row of each chunk.
  std::vector<int64_t> chunk_row(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    int64_t lines = 0;
    for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      if (body[i] == '\n') ++lines;
    }
    if (chunks[c].second == body.size() && !body.empty() &&
        body.back() != '\n') {
      ++lines;
    }
    chunk_row[c + 1] = chunk_row[c] + lines;
  }

  std::vector<Status> chunk_status(chunks.size());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(chunks.size()),
      static_cast<int64_t>(chunks.size()), [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          const char* p = body.data() + chunks[c].first;
          const char* end = body.data() + chunks[c].second;
          int64_t row = chunk_row[c];
          while (p < end) {
            const char* line_end = static_cast<const char*>(
                std::memchr(p, '\n', static_cast<size_t>(end - p)));
            if (line_end == nullptr) line_end = end;
            double* out = m.DenseRow(row);
            int64_t col = 0;
            const char* tok = p;
            for (const char* q = p; q <= line_end; ++q) {
              if (q == line_end || *q == opts.delimiter) {
                if (col < cols) {
                  out[col++] = ParseDoubleToken(
                      tok, static_cast<size_t>(q - tok));
                }
                tok = q + 1;
              }
            }
            if (col != cols) {
              chunk_status[c] = IoError(
                  "csv: row " + std::to_string(row + 1) + " has " +
                  std::to_string(col) + " columns, expected " +
                  std::to_string(cols));
              return;
            }
            ++row;
            p = line_end + 1;
          }
        }
      });
  for (const Status& s : chunk_status) SYSDS_RETURN_IF_ERROR(s);
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

Status WriteMatrixCsv(const MatrixBlock& m, const std::string& path,
                      const CsvOptions& opts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return IoError("cannot open '" + path + "' for writing");
  char buf[64];
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t c = 0; c < m.Cols(); ++c) {
      double v = m.Get(r, c);
      int len = std::snprintf(buf, sizeof(buf), "%.17g", v);
      if (c > 0) std::fputc(opts.delimiter, f);
      std::fwrite(buf, 1, static_cast<size_t>(len), f);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return Status::Ok();
}

namespace {
constexpr uint64_t kBinaryMagic = 0x53595344424d4231ULL;  // "SYSDBMB1"
}  // namespace

Status WriteMatrixBinary(const MatrixBlock& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  uint64_t magic = kBinaryMagic;
  int64_t rows = m.Rows(), cols = m.Cols(), nnz = m.NonZeros();
  uint8_t sparse = m.IsSparse() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&rows), 8);
  out.write(reinterpret_cast<const char*>(&cols), 8);
  out.write(reinterpret_cast<const char*>(&nnz), 8);
  out.write(reinterpret_cast<const char*>(&sparse), 1);
  if (!m.IsSparse()) {
    out.write(reinterpret_cast<const char*>(m.DenseData()),
              static_cast<std::streamsize>(rows * cols * 8));
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      const SparseRow& row = m.SparseData().Row(r);
      int64_t n = row.Size();
      out.write(reinterpret_cast<const char*>(&n), 8);
      out.write(reinterpret_cast<const char*>(row.Indexes()),
                static_cast<std::streamsize>(n * 8));
      out.write(reinterpret_cast<const char*>(row.Values()),
                static_cast<std::streamsize>(n * 8));
    }
  }
  if (!out) return IoError("write failed for '" + path + "'");
  return Status::Ok();
}

StatusOr<MatrixBlock> ReadMatrixBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  uint64_t magic = 0;
  int64_t rows = 0, cols = 0, nnz = 0;
  uint8_t sparse = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  if (magic != kBinaryMagic) {
    return IoError("'" + path + "' is not a SystemDS binary matrix");
  }
  in.read(reinterpret_cast<char*>(&rows), 8);
  in.read(reinterpret_cast<char*>(&cols), 8);
  in.read(reinterpret_cast<char*>(&nnz), 8);
  in.read(reinterpret_cast<char*>(&sparse), 1);
  MatrixBlock m(rows, cols, sparse != 0);
  if (!sparse) {
    in.read(reinterpret_cast<char*>(m.DenseData()),
            static_cast<std::streamsize>(rows * cols * 8));
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      int64_t n = 0;
      in.read(reinterpret_cast<char*>(&n), 8);
      SparseRow& row = m.SparseData().Row(r);
      row.Reserve(n);
      std::vector<int64_t> idx(static_cast<size_t>(n));
      std::vector<double> val(static_cast<size_t>(n));
      in.read(reinterpret_cast<char*>(idx.data()),
              static_cast<std::streamsize>(n * 8));
      in.read(reinterpret_cast<char*>(val.data()),
              static_cast<std::streamsize>(n * 8));
      for (int64_t p = 0; p < n; ++p) row.Append(idx[p], val[p]);
    }
  }
  if (!in) return IoError("truncated binary matrix '" + path + "'");
  m.SetNonZeros(nnz);
  return m;
}

Status WriteMatrixIjv(const MatrixBlock& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return IoError("cannot open '" + path + "' for writing");
  std::fprintf(f, "%%%% %lld %lld %lld\n",
               static_cast<long long>(m.Rows()),
               static_cast<long long>(m.Cols()),
               static_cast<long long>(m.NonZeros()));
  for (int64_t r = 0; r < m.Rows(); ++r) {
    if (m.IsSparse()) {
      const SparseRow& row = m.SparseData().Row(r);
      for (int64_t p = 0; p < row.Size(); ++p) {
        std::fprintf(f, "%lld %lld %.17g\n", static_cast<long long>(r + 1),
                     static_cast<long long>(row.Indexes()[p] + 1),
                     row.Values()[p]);
      }
    } else {
      for (int64_t c = 0; c < m.Cols(); ++c) {
        double v = m.Get(r, c);
        if (v != 0.0) {
          std::fprintf(f, "%lld %lld %.17g\n", static_cast<long long>(r + 1),
                       static_cast<long long>(c + 1), v);
        }
      }
    }
  }
  std::fclose(f);
  return Status::Ok();
}

StatusOr<MatrixBlock> ReadMatrixIjv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::string header;
  if (!std::getline(in, header) || header.size() < 2 ||
      header.compare(0, 2, "%%") != 0) {
    return IoError("ijv: missing %% header in '" + path + "'");
  }
  long long rows = 0, cols = 0, nnz = 0;
  if (std::sscanf(header.c_str(), "%%%% %lld %lld %lld", &rows, &cols,
                  &nnz) < 2) {
    return IoError("ijv: malformed header '" + header + "'");
  }
  double sparsity = rows * cols > 0
                        ? static_cast<double>(nnz) / (rows * cols)
                        : 1.0;
  MatrixBlock m(rows, cols,
                MatrixBlock::EvalSparseFormat(rows, cols, sparsity));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    long long r = 0, c = 0;
    double v = 0.0;
    if (std::sscanf(line.c_str(), "%lld %lld %lf", &r, &c, &v) != 3) {
      return IoError("ijv: malformed line '" + line + "'");
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return IoError("ijv: cell index out of declared bounds");
    }
    m.Set(r - 1, c - 1, v);
  }
  m.MarkNnzDirty();
  return m;
}

StatusOr<MatrixBlock> ReadMatrix(const std::string& path, FileFormat format,
                                 const CsvOptions& opts) {
  switch (format) {
    case FileFormat::kCsv: return ReadMatrixCsv(path, opts);
    case FileFormat::kBinary: return ReadMatrixBinary(path);
    case FileFormat::kIjv: return ReadMatrixIjv(path);
  }
  return InvalidArgument("unknown format");
}

Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                   FileFormat format, const CsvOptions& opts) {
  switch (format) {
    case FileFormat::kCsv: return WriteMatrixCsv(m, path, opts);
    case FileFormat::kBinary: return WriteMatrixBinary(m, path);
    case FileFormat::kIjv: return WriteMatrixIjv(m, path);
  }
  return InvalidArgument("unknown format");
}

StatusOr<FrameBlock> ReadFrameCsv(const std::string& path,
                                  const std::vector<ValueType>& schema,
                                  const CsvOptions& opts) {
  SYSDS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < data.size()) {
    size_t nl = data.find('\n', start);
    if (nl == std::string::npos) nl = data.size();
    if (nl > start) lines.push_back(data.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) return FrameBlock(0, schema);

  std::vector<std::string> names;
  size_t body_start = 0;
  if (opts.header) {
    names = SplitString(lines[0], opts.delimiter);
    body_start = 1;
  }
  int64_t rows = static_cast<int64_t>(lines.size() - body_start);
  std::vector<ValueType> sch = schema;
  int64_t cols = static_cast<int64_t>(
      SplitString(lines[body_start < lines.size() ? body_start : 0],
                  opts.delimiter)
          .size());
  if (sch.empty()) {
    sch.assign(static_cast<size_t>(cols), ValueType::kString);
  }
  if (static_cast<int64_t>(sch.size()) != cols) {
    return IoError("frame csv: schema size does not match column count");
  }
  FrameBlock f(rows, sch, names);
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells =
        SplitString(lines[static_cast<size_t>(r) + body_start],
                    opts.delimiter);
    if (static_cast<int64_t>(cells.size()) != cols) {
      return IoError("frame csv: ragged row " + std::to_string(r + 1));
    }
    for (int64_t c = 0; c < cols; ++c) f.SetString(r, c, cells[c]);
  }
  return f;
}

Status WriteFrameCsv(const FrameBlock& f, const std::string& path,
                     const CsvOptions& opts) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  if (opts.header) {
    for (int64_t c = 0; c < f.Cols(); ++c) {
      if (c > 0) out << opts.delimiter;
      out << f.ColumnNames()[c];
    }
    out << "\n";
  }
  for (int64_t r = 0; r < f.Rows(); ++r) {
    for (int64_t c = 0; c < f.Cols(); ++c) {
      if (c > 0) out << opts.delimiter;
      out << f.GetString(r, c);
    }
    out << "\n";
  }
  return Status::Ok();
}

}  // namespace sysds
