#include "io/matrix_io.h"

#include "common/util.h"

namespace sysds {

// Deprecated shim layer: every entry point forwards to the io:: format
// registry. Kept one release for out-of-tree callers; nothing inside the
// repo should call these (callers were migrated to io::Read/io::Write).

namespace {

FormatDescriptor CsvDesc(const CsvOptions& opts) {
  return FormatDescriptor::Csv(opts.delimiter, opts.header,
                               opts.num_threads);
}

}  // namespace

StatusOr<FileFormat> ParseFileFormat(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "csv" || n == "text") return FileFormat::kCsv;
  if (n == "binary" || n == "bin") return FileFormat::kBinary;
  if (n == "ijv" || n == "mm" || n == "matrixmarket") return FileFormat::kIjv;
  return InvalidArgument("unknown file format '" + name + "'");
}

StatusOr<MatrixBlock> ReadMatrixCsv(const std::string& path,
                                    const CsvOptions& opts) {
  return io::Read(path, CsvDesc(opts));
}

Status WriteMatrixCsv(const MatrixBlock& m, const std::string& path,
                      const CsvOptions& opts) {
  return io::Write(m, path, CsvDesc(opts));
}

StatusOr<MatrixBlock> ReadMatrixBinary(const std::string& path) {
  return io::Read(path, FormatDescriptor::Binary());
}

Status WriteMatrixBinary(const MatrixBlock& m, const std::string& path) {
  return io::Write(m, path, FormatDescriptor::Binary());
}

StatusOr<MatrixBlock> ReadMatrixIjv(const std::string& path) {
  return io::Read(path, FormatDescriptor::Ijv());
}

Status WriteMatrixIjv(const MatrixBlock& m, const std::string& path) {
  return io::Write(m, path, FormatDescriptor::Ijv());
}

StatusOr<MatrixBlock> ReadMatrix(const std::string& path, FileFormat format,
                                 const CsvOptions& opts) {
  switch (format) {
    case FileFormat::kCsv: return ReadMatrixCsv(path, opts);
    case FileFormat::kBinary: return ReadMatrixBinary(path);
    case FileFormat::kIjv: return ReadMatrixIjv(path);
  }
  return InvalidArgument("unknown format");
}

Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                   FileFormat format, const CsvOptions& opts) {
  switch (format) {
    case FileFormat::kCsv: return WriteMatrixCsv(m, path, opts);
    case FileFormat::kBinary: return WriteMatrixBinary(m, path);
    case FileFormat::kIjv: return WriteMatrixIjv(m, path);
  }
  return InvalidArgument("unknown format");
}

StatusOr<FrameBlock> ReadFrameCsv(const std::string& path,
                                  const std::vector<ValueType>& schema,
                                  const CsvOptions& opts) {
  return io::ReadFrame(path, CsvDesc(opts), schema);
}

Status WriteFrameCsv(const FrameBlock& f, const std::string& path,
                     const CsvOptions& opts) {
  return io::Write(f, path, CsvDesc(opts));
}

}  // namespace sysds
