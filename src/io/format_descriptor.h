#ifndef SYSDS_IO_FORMAT_DESCRIPTOR_H_
#define SYSDS_IO_FORMAT_DESCRIPTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "runtime/frame/frame_block.h"

namespace sysds {

/// High-level description of an external data format from which we
/// "generate" an efficient reader (paper §3.2: code generation of I/O
/// primitives from high-level descriptions). The generated reader is a
/// composed closure specialized to the descriptor — the in-process analogue
/// of emitting and compiling parser code: all format decisions (delimiter,
/// widths, key order) are resolved once at generation time, not per line.
///
/// Supported format kinds:
///  - "csv": delimited numeric matrix / string frame text
///  - "binary": SystemDS binary block format (matrix)
///  - "ijv": MatrixMarket-style coordinate text (matrix)
///  - "delimited": delimiter, optional header, typed columns (frame)
///  - "fixed-width": byte widths per column (frame)
///  - "key-value": lines of k=v pairs, keys mapped to columns (frame)
///
/// The descriptor doubles as the key of the io:: format registry: every
/// reader/writer is looked up by `kind`, so adding a format is one
/// RegisterFormat call, not a new set of free functions.
struct FormatDescriptor {
  std::string kind;
  char delimiter = ',';
  bool header = false;
  // Parser threads for formats with parallel readers (0 = DefaultParallelism).
  int num_threads = 0;
  struct ColumnDesc {
    std::string name;
    ValueType type = ValueType::kString;
    int64_t width = 0;  // fixed-width only
  };
  std::vector<ColumnDesc> columns;

  // Convenience factories for the built-in matrix formats.
  static FormatDescriptor Csv(char delimiter = ',', bool header = false,
                              int num_threads = 0);
  static FormatDescriptor Binary();
  static FormatDescriptor Ijv();
  /// Maps a user-facing format name ("csv"/"text", "binary"/"bin",
  /// "ijv"/"mm"/"matrixmarket") to a descriptor of the canonical kind.
  static StatusOr<FormatDescriptor> FromFormatName(const std::string& name);
};

/// Parses a JSON format descriptor, e.g.
///   {"kind":"delimited","delimiter":";","header":true,
///    "columns":[{"name":"id","type":"int64"},{"name":"v","type":"fp64"}]}
StatusOr<FormatDescriptor> ParseFormatDescriptor(const std::string& json);

/// A generated reader: consumes a file and produces a typed frame.
using GeneratedReader =
    std::function<StatusOr<FrameBlock>(const std::string& path)>;

/// "Compiles" a reader for the descriptor. Returns CompileError for
/// malformed descriptors; the returned closure performs no per-record
/// format dispatch.
StatusOr<GeneratedReader> GenerateReader(const FormatDescriptor& desc);

/// A generated writer for the same descriptor (delimited only).
using GeneratedWriter = std::function<Status(const FrameBlock& frame,
                                             const std::string& path)>;
StatusOr<GeneratedWriter> GenerateWriter(const FormatDescriptor& desc);

}  // namespace sysds

#endif  // SYSDS_IO_FORMAT_DESCRIPTOR_H_
