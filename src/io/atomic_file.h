#ifndef SYSDS_IO_ATOMIC_FILE_H_
#define SYSDS_IO_ATOMIC_FILE_H_

#include <functional>
#include <ostream>
#include <string>

#include "common/status.h"

namespace sysds {
namespace io {

// Crash-safe durable files: every spill/checkpoint artifact is written
// through WriteAtomic (payload streamed to `<path>.tmp`, CRC-32 footer
// appended, then an atomic rename installs the final name) and read back
// through ReadVerified (footer checked before a single payload byte is
// parsed). A crash mid-write leaves at worst a stale `.tmp` alongside the
// previous intact version; a torn or bit-flipped file fails verification
// with StatusCode::kCorrupt — retryable per the fault-tolerance taxonomy —
// instead of being deserialized into garbage.

/// Footer magic trailing every checksummed file ("SYSDSCRC", little-endian).
constexpr uint64_t kChecksumFooterMagic = 0x4352435344535953ULL;

/// Bytes of (magic, payload_size, crc32, pad) appended after the payload.
constexpr int64_t kChecksumFooterSize = 8 + 8 + 4 + 4;

/// Streams the payload produced by `write_payload` into `path + ".tmp"`,
/// appends the checksum footer, flushes, and atomically renames onto
/// `path`. The callback writes the payload to the provided stream and may
/// fail; on any failure the temp file is removed and `path` is untouched.
Status WriteAtomic(const std::string& path,
                   const std::function<Status(std::ostream&)>& write_payload);

/// Reads the whole file, validates the checksum footer, and returns the
/// payload bytes (footer stripped). kCorrupt when the footer is missing,
/// the recorded size disagrees, or the CRC does not match; kIoError when
/// the file cannot be opened.
StatusOr<std::string> ReadVerified(const std::string& path);

}  // namespace io
}  // namespace sysds

#endif  // SYSDS_IO_ATOMIC_FILE_H_
