#include "io/io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/thread_pool.h"
#include "common/util.h"

namespace sysds {
namespace io {

StatusOr<MatrixBlock> Reader::ReadMatrix(const std::string& path,
                                         const FormatDescriptor& desc) const {
  (void)path;
  return Unimplemented("format '" + desc.kind + "' has no matrix reader");
}

StatusOr<FrameBlock> Reader::ReadFrame(
    const std::string& path, const FormatDescriptor& desc,
    const std::vector<ValueType>& schema) const {
  (void)path;
  (void)schema;
  return Unimplemented("format '" + desc.kind + "' has no frame reader");
}

Status Writer::WriteMatrix(const MatrixBlock& m, const std::string& path,
                           const FormatDescriptor& desc) const {
  (void)m;
  (void)path;
  return Unimplemented("format '" + desc.kind + "' has no matrix writer");
}

Status Writer::WriteFrame(const FrameBlock& f, const std::string& path,
                          const FormatDescriptor& desc) const {
  (void)f;
  (void)path;
  return Unimplemented("format '" + desc.kind + "' has no frame writer");
}

namespace {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

// Splits [0, size) into chunks aligned to line boundaries; shared by the
// matrix and frame text readers so both parallelize identically.
std::vector<std::pair<size_t, size_t>> LineAlignedChunks(
    const std::string& data, int num_chunks) {
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t size = data.size();
  size_t target = size / static_cast<size_t>(num_chunks) + 1;
  size_t begin = 0;
  while (begin < size) {
    size_t end = std::min(size, begin + target);
    while (end < size && data[end] != '\n') ++end;
    if (end < size) ++end;  // include the newline
    chunks.emplace_back(begin, end);
    begin = end;
  }
  return chunks;
}

// Fast double parse of data[b..e): strtod on a bounded token.
inline double ParseDoubleToken(const char* s, size_t len) {
  char buf[64];
  len = std::min(len, sizeof(buf) - 1);
  std::memcpy(buf, s, len);
  buf[len] = '\0';
  return std::strtod(buf, nullptr);
}

// ---------------------------------------------------------------------------
// csv: parallel numeric matrix text and frame text.

StatusOr<MatrixBlock> ReadMatrixCsvImpl(const std::string& path,
                                        const FormatDescriptor& desc) {
  SYSDS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  int threads =
      desc.num_threads > 0 ? desc.num_threads : DefaultParallelism();

  size_t pos = 0;
  if (desc.header) {
    size_t nl = data.find('\n');
    pos = nl == std::string::npos ? data.size() : nl + 1;
  }
  if (pos >= data.size()) return MatrixBlock::Dense(0, 0);

  size_t first_end = data.find('\n', pos);
  if (first_end == std::string::npos) first_end = data.size();
  int64_t cols = 1;
  for (size_t i = pos; i < first_end; ++i) {
    if (data[i] == desc.delimiter) ++cols;
  }

  // Count rows (newlines in the body; tolerate missing trailing newline).
  int64_t rows = 0;
  for (size_t i = pos; i < data.size(); ++i) {
    if (data[i] == '\n') ++rows;
  }
  if (!data.empty() && data.back() != '\n') ++rows;

  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  std::string body = data.substr(pos);
  auto chunks = LineAlignedChunks(body, threads);

  // Precompute the starting row of each chunk.
  std::vector<int64_t> chunk_row(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    int64_t lines = 0;
    for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      if (body[i] == '\n') ++lines;
    }
    if (chunks[c].second == body.size() && !body.empty() &&
        body.back() != '\n') {
      ++lines;
    }
    chunk_row[c + 1] = chunk_row[c] + lines;
  }

  std::vector<Status> chunk_status(chunks.size());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(chunks.size()),
      static_cast<int64_t>(chunks.size()), [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          const char* p = body.data() + chunks[c].first;
          const char* end = body.data() + chunks[c].second;
          int64_t row = chunk_row[c];
          while (p < end) {
            const char* line_end = static_cast<const char*>(
                std::memchr(p, '\n', static_cast<size_t>(end - p)));
            if (line_end == nullptr) line_end = end;
            double* out = m.DenseRow(row);
            int64_t col = 0;
            const char* tok = p;
            for (const char* q = p; q <= line_end; ++q) {
              if (q == line_end || *q == desc.delimiter) {
                if (col < cols) {
                  out[col++] = ParseDoubleToken(
                      tok, static_cast<size_t>(q - tok));
                }
                tok = q + 1;
              }
            }
            if (col != cols) {
              chunk_status[c] = IoError(
                  "csv: row " + std::to_string(row + 1) + " has " +
                  std::to_string(col) + " columns, expected " +
                  std::to_string(cols));
              return;
            }
            ++row;
            p = line_end + 1;
          }
        }
      },
      "io.read");
  for (const Status& s : chunk_status) SYSDS_RETURN_IF_ERROR(s);
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

Status WriteMatrixCsvImpl(const MatrixBlock& m, const std::string& path,
                          const FormatDescriptor& desc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return IoError("cannot open '" + path + "' for writing");
  char buf[64];
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t c = 0; c < m.Cols(); ++c) {
      double v = m.Get(r, c);
      int len = std::snprintf(buf, sizeof(buf), "%.17g", v);
      if (c > 0) std::fputc(desc.delimiter, f);
      std::fwrite(buf, 1, static_cast<size_t>(len), f);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return Status::Ok();
}

// True for numeric/boolean frame columns, which get strict cell validation.
inline bool IsTypedNumeric(ValueType t) {
  return t != ValueType::kString && t != ValueType::kUnknown;
}

// Parses a numeric frame cell strictly: empty is missing (0.0), anything
// else must be a full double literal (trailing spaces/CR allowed).
// Returns false on malformed input.
inline bool ParseStrictNumeric(const std::string& cell, double* out) {
  if (cell.empty()) {
    *out = 0.0;
    return true;
  }
  const char* s = cell.c_str();
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

StatusOr<FrameBlock> ReadFrameCsvImpl(const std::string& path,
                                      const FormatDescriptor& desc,
                                      const std::vector<ValueType>& schema) {
  SYSDS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  int threads =
      desc.num_threads > 0 ? desc.num_threads : DefaultParallelism();

  size_t pos = 0;
  std::vector<std::string> names;
  if (desc.header) {
    size_t nl = data.find('\n');
    size_t hdr_end = nl == std::string::npos ? data.size() : nl;
    names = SplitString(data.substr(0, hdr_end), desc.delimiter);
    pos = nl == std::string::npos ? data.size() : nl + 1;
  }
  std::string body = data.substr(pos);

  // Column count from the first non-empty line (header included when there
  // is no body, matching the serial reader).
  int64_t cols = 0;
  {
    size_t b = 0;
    std::string first_line;
    while (b < body.size()) {
      size_t nl = body.find('\n', b);
      if (nl == std::string::npos) nl = body.size();
      if (nl > b) {
        first_line = body.substr(b, nl - b);
        break;
      }
      b = nl + 1;
    }
    if (first_line.empty() && desc.header && !names.empty()) {
      cols = static_cast<int64_t>(names.size());
    } else if (!first_line.empty()) {
      cols = static_cast<int64_t>(
          SplitString(first_line, desc.delimiter).size());
    }
  }
  if (cols == 0) return FrameBlock(0, schema);

  std::vector<ValueType> sch = schema;
  if (sch.empty()) {
    sch.assign(static_cast<size_t>(cols), ValueType::kString);
  }
  if (static_cast<int64_t>(sch.size()) != cols) {
    return IoError("frame csv: schema size does not match column count");
  }

  auto chunks = LineAlignedChunks(body, threads);
  // Rows = non-empty lines; prefix-count per chunk so workers know their
  // absolute row numbers (both for placement and error messages).
  std::vector<int64_t> chunk_row(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    int64_t lines = 0;
    size_t b = chunks[c].first;
    while (b < chunks[c].second) {
      size_t nl = body.find('\n', b);
      if (nl == std::string::npos || nl >= chunks[c].second) {
        nl = chunks[c].second;
      }
      if (nl > b) ++lines;
      b = nl + 1;
    }
    chunk_row[c + 1] = chunk_row[c] + lines;
  }
  int64_t rows = chunk_row[chunks.size()];

  FrameBlock f(rows, sch, names);
  std::vector<Status> chunk_status(chunks.size());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(chunks.size()),
      static_cast<int64_t>(chunks.size()), [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          const char* base = body.data();
          size_t p = chunks[c].first;
          int64_t row = chunk_row[c];
          while (p < chunks[c].second) {
            const char* nl = static_cast<const char*>(
                std::memchr(base + p, '\n', chunks[c].second - p));
            size_t line_end =
                nl == nullptr ? chunks[c].second
                              : static_cast<size_t>(nl - base);
            if (line_end > p) {
              std::string line = body.substr(p, line_end - p);
              std::vector<std::string> cells =
                  SplitString(line, desc.delimiter);
              if (static_cast<int64_t>(cells.size()) != cols) {
                chunk_status[c] = IoError(
                    "frame csv: ragged row " + std::to_string(row + 1) +
                    ": " + std::to_string(cells.size()) +
                    " columns, expected " + std::to_string(cols));
                return;
              }
              for (int64_t col = 0; col < cols; ++col) {
                if (IsTypedNumeric(sch[static_cast<size_t>(col)])) {
                  double v;
                  if (!ParseStrictNumeric(cells[static_cast<size_t>(col)],
                                          &v)) {
                    chunk_status[c] = IoError(
                        "frame csv: row " + std::to_string(row + 1) +
                        ", column " + std::to_string(col + 1) +
                        ": malformed numeric value '" +
                        cells[static_cast<size_t>(col)] + "'");
                    return;
                  }
                  f.SetDouble(row, col, v);
                } else {
                  f.SetString(row, col,
                              cells[static_cast<size_t>(col)]);
                }
              }
              ++row;
            }
            p = line_end + 1;
          }
        }
      },
      "io.write");
  for (const Status& s : chunk_status) SYSDS_RETURN_IF_ERROR(s);
  return f;
}

Status WriteFrameCsvImpl(const FrameBlock& f, const std::string& path,
                         const FormatDescriptor& desc) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  if (desc.header) {
    for (int64_t c = 0; c < f.Cols(); ++c) {
      if (c > 0) out << desc.delimiter;
      out << f.ColumnNames()[c];
    }
    out << "\n";
  }
  for (int64_t r = 0; r < f.Rows(); ++r) {
    for (int64_t c = 0; c < f.Cols(); ++c) {
      if (c > 0) out << desc.delimiter;
      out << f.GetString(r, c);
    }
    out << "\n";
  }
  return Status::Ok();
}

class CsvFormatReader : public Reader {
 public:
  StatusOr<MatrixBlock> ReadMatrix(const std::string& path,
                                   const FormatDescriptor& desc)
      const override {
    return ReadMatrixCsvImpl(path, desc);
  }
  StatusOr<FrameBlock> ReadFrame(const std::string& path,
                                 const FormatDescriptor& desc,
                                 const std::vector<ValueType>& schema)
      const override {
    return ReadFrameCsvImpl(path, desc, schema);
  }
};

class CsvFormatWriter : public Writer {
 public:
  Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                     const FormatDescriptor& desc) const override {
    return WriteMatrixCsvImpl(m, path, desc);
  }
  Status WriteFrame(const FrameBlock& f, const std::string& path,
                    const FormatDescriptor& desc) const override {
    return WriteFrameCsvImpl(f, path, desc);
  }
};

// ---------------------------------------------------------------------------
// binary: SystemDS binary block format.

constexpr uint64_t kBinaryMagic = 0x53595344424d4231ULL;  // "SYSDBMB1"
constexpr uint64_t kBinaryFrameMagic = 0x53595344424d4631ULL;  // "SYSDBMF1"

class BinaryFormatReader : public Reader {
 public:
  StatusOr<MatrixBlock> ReadMatrix(const std::string& path,
                                   const FormatDescriptor& desc)
      const override {
    (void)desc;
    std::ifstream in(path, std::ios::binary);
    if (!in) return IoError("cannot open '" + path + "' for reading");
    auto m = ReadMatrixBinaryStream(in);
    if (!m.ok()) {
      return Status(m.status().code(), m.status().message() + " ('" + path + "')");
    }
    return m;
  }
};

class BinaryFormatWriter : public Writer {
 public:
  Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                     const FormatDescriptor& desc) const override {
    (void)desc;
    std::ofstream out(path, std::ios::binary);
    if (!out) return IoError("cannot open '" + path + "' for writing");
    SYSDS_RETURN_IF_ERROR(WriteMatrixBinaryStream(m, out));
    if (!out) return IoError("write failed for '" + path + "'");
    return Status::Ok();
  }
};

// ---------------------------------------------------------------------------
// ijv: MatrixMarket-style coordinate text.

class IjvFormatReader : public Reader {
 public:
  StatusOr<MatrixBlock> ReadMatrix(const std::string& path,
                                   const FormatDescriptor& desc)
      const override {
    (void)desc;
    std::ifstream in(path);
    if (!in) return IoError("cannot open '" + path + "' for reading");
    std::string header;
    if (!std::getline(in, header) || header.size() < 2 ||
        header.compare(0, 2, "%%") != 0) {
      return IoError("ijv: missing %% header in '" + path + "'");
    }
    long long rows = 0, cols = 0, nnz = 0;
    if (std::sscanf(header.c_str(), "%%%% %lld %lld %lld", &rows, &cols,
                    &nnz) < 2) {
      return IoError("ijv: malformed header '" + header + "'");
    }
    double sparsity = rows * cols > 0
                          ? static_cast<double>(nnz) / (rows * cols)
                          : 1.0;
    MatrixBlock m(rows, cols,
                  MatrixBlock::EvalSparseFormat(rows, cols, sparsity));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      long long r = 0, c = 0;
      double v = 0.0;
      if (std::sscanf(line.c_str(), "%lld %lld %lf", &r, &c, &v) != 3) {
        return IoError("ijv: malformed line '" + line + "'");
      }
      if (r < 1 || r > rows || c < 1 || c > cols) {
        return IoError("ijv: cell index out of declared bounds");
      }
      m.Set(r - 1, c - 1, v);
    }
    m.MarkNnzDirty();
    return m;
  }
};

class IjvFormatWriter : public Writer {
 public:
  Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                     const FormatDescriptor& desc) const override {
    (void)desc;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return IoError("cannot open '" + path + "' for writing");
    }
    std::fprintf(f, "%%%% %lld %lld %lld\n",
                 static_cast<long long>(m.Rows()),
                 static_cast<long long>(m.Cols()),
                 static_cast<long long>(m.NonZeros()));
    for (int64_t r = 0; r < m.Rows(); ++r) {
      if (m.IsSparse()) {
        const SparseRow& row = m.SparseData().Row(r);
        for (int64_t p = 0; p < row.Size(); ++p) {
          std::fprintf(f, "%lld %lld %.17g\n",
                       static_cast<long long>(r + 1),
                       static_cast<long long>(row.Indexes()[p] + 1),
                       row.Values()[p]);
        }
      } else {
        for (int64_t c = 0; c < m.Cols(); ++c) {
          double v = m.Get(r, c);
          if (v != 0.0) {
            std::fprintf(f, "%lld %lld %.17g\n",
                         static_cast<long long>(r + 1),
                         static_cast<long long>(c + 1), v);
          }
        }
      }
    }
    std::fclose(f);
    return Status::Ok();
  }
};

// ---------------------------------------------------------------------------
// Generated frame formats (delimited/fixed-width/key-value): the registry
// entry compiles a reader closure from the descriptor on each call (§3.2
// code generation of I/O primitives), so the registry stays the single
// entry point for every format kind.

class GeneratedFormatReader : public Reader {
 public:
  StatusOr<FrameBlock> ReadFrame(const std::string& path,
                                 const FormatDescriptor& desc,
                                 const std::vector<ValueType>& schema)
      const override {
    if (!schema.empty()) {
      return InvalidArgument(
          "generated formats take their schema from the descriptor");
    }
    SYSDS_ASSIGN_OR_RETURN(GeneratedReader read, GenerateReader(desc));
    return read(path);
  }
};

class GeneratedFormatWriter : public Writer {
 public:
  Status WriteFrame(const FrameBlock& f, const std::string& path,
                    const FormatDescriptor& desc) const override {
    SYSDS_ASSIGN_OR_RETURN(GeneratedWriter write, GenerateWriter(desc));
    return write(f, path);
  }
};

}  // namespace

Status WriteMatrixBinaryStream(const MatrixBlock& m, std::ostream& out) {
  uint64_t magic = kBinaryMagic;
  int64_t rows = m.Rows(), cols = m.Cols(), nnz = m.NonZeros();
  uint8_t sparse = m.IsSparse() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&rows), 8);
  out.write(reinterpret_cast<const char*>(&cols), 8);
  out.write(reinterpret_cast<const char*>(&nnz), 8);
  out.write(reinterpret_cast<const char*>(&sparse), 1);
  if (!m.IsSparse()) {
    out.write(reinterpret_cast<const char*>(m.DenseData()),
              static_cast<std::streamsize>(rows * cols * 8));
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      const SparseRow& row = m.SparseData().Row(r);
      int64_t n = row.Size();
      out.write(reinterpret_cast<const char*>(&n), 8);
      out.write(reinterpret_cast<const char*>(row.Indexes()),
                static_cast<std::streamsize>(n * 8));
      out.write(reinterpret_cast<const char*>(row.Values()),
                static_cast<std::streamsize>(n * 8));
    }
  }
  if (!out) return IoError("binary matrix stream write failed");
  return Status::Ok();
}

StatusOr<MatrixBlock> ReadMatrixBinaryStream(std::istream& in) {
  uint64_t magic = 0;
  int64_t rows = 0, cols = 0, nnz = 0;
  uint8_t sparse = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  if (!in || magic != kBinaryMagic) {
    return CorruptError("not a SystemDS binary matrix");
  }
  in.read(reinterpret_cast<char*>(&rows), 8);
  in.read(reinterpret_cast<char*>(&cols), 8);
  in.read(reinterpret_cast<char*>(&nnz), 8);
  in.read(reinterpret_cast<char*>(&sparse), 1);
  if (!in || rows < 0 || cols < 0) {
    return CorruptError("malformed binary matrix header");
  }
  MatrixBlock m(rows, cols, sparse != 0);
  if (!sparse) {
    in.read(reinterpret_cast<char*>(m.DenseData()),
            static_cast<std::streamsize>(rows * cols * 8));
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      int64_t n = 0;
      in.read(reinterpret_cast<char*>(&n), 8);
      if (!in || n < 0 || n > cols) {
        return CorruptError("malformed sparse row in binary matrix");
      }
      SparseRow& row = m.SparseData().Row(r);
      row.Reserve(n);
      std::vector<int64_t> idx(static_cast<size_t>(n));
      std::vector<double> val(static_cast<size_t>(n));
      in.read(reinterpret_cast<char*>(idx.data()),
              static_cast<std::streamsize>(n * 8));
      in.read(reinterpret_cast<char*>(val.data()),
              static_cast<std::streamsize>(n * 8));
      for (int64_t p = 0; p < n; ++p) row.Append(idx[p], val[p]);
    }
  }
  if (!in) return IoError("truncated binary matrix");
  m.SetNonZeros(nnz);
  return m;
}

Status WriteFrameBinaryStream(const FrameBlock& f, std::ostream& out) {
  uint64_t magic = kBinaryFrameMagic;
  int64_t rows = f.Rows(), cols = f.Cols();
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&rows), 8);
  out.write(reinterpret_cast<const char*>(&cols), 8);
  auto write_string = [&out](const std::string& s) {
    int64_t n = static_cast<int64_t>(s.size());
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(s.data(), static_cast<std::streamsize>(n));
  };
  for (int64_t c = 0; c < cols; ++c) {
    uint8_t type = static_cast<uint8_t>(f.Schema()[static_cast<size_t>(c)]);
    out.write(reinterpret_cast<const char*>(&type), 1);
  }
  uint8_t has_names = f.ColumnNames().empty() ? 0 : 1;
  out.write(reinterpret_cast<const char*>(&has_names), 1);
  if (has_names) {
    for (int64_t c = 0; c < cols; ++c) {
      write_string(f.ColumnNames()[static_cast<size_t>(c)]);
    }
  }
  for (int64_t c = 0; c < cols; ++c) {
    if (const double* num = f.NumericData(c)) {
      out.write(reinterpret_cast<const char*>(num),
                static_cast<std::streamsize>(rows * 8));
    } else {
      const std::string* str = f.StringData(c);
      for (int64_t r = 0; r < rows; ++r) write_string(str[r]);
    }
  }
  if (!out) return IoError("binary frame stream write failed");
  return Status::Ok();
}

StatusOr<FrameBlock> ReadFrameBinaryStream(std::istream& in) {
  uint64_t magic = 0;
  int64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  if (!in || magic != kBinaryFrameMagic) {
    return CorruptError("not a SystemDS binary frame");
  }
  in.read(reinterpret_cast<char*>(&rows), 8);
  in.read(reinterpret_cast<char*>(&cols), 8);
  if (!in || rows < 0 || cols < 0) {
    return CorruptError("malformed binary frame header");
  }
  auto read_string = [&in](std::string* s) -> bool {
    int64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), 8);
    if (!in || n < 0) return false;
    s->resize(static_cast<size_t>(n));
    in.read(s->data(), static_cast<std::streamsize>(n));
    return static_cast<bool>(in);
  };
  std::vector<ValueType> schema(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    uint8_t type = 0;
    in.read(reinterpret_cast<char*>(&type), 1);
    schema[static_cast<size_t>(c)] = static_cast<ValueType>(type);
  }
  uint8_t has_names = 0;
  in.read(reinterpret_cast<char*>(&has_names), 1);
  if (!in) return CorruptError("malformed binary frame header");
  std::vector<std::string> names;
  if (has_names) {
    names.resize(static_cast<size_t>(cols));
    for (int64_t c = 0; c < cols; ++c) {
      if (!read_string(&names[static_cast<size_t>(c)])) {
        return CorruptError("malformed binary frame column names");
      }
    }
  }
  FrameBlock f = has_names ? FrameBlock(rows, schema, names)
                           : FrameBlock(rows, schema);
  for (int64_t c = 0; c < cols; ++c) {
    if (schema[static_cast<size_t>(c)] == ValueType::kString) {
      std::string cell;
      for (int64_t r = 0; r < rows; ++r) {
        if (!read_string(&cell)) {
          return IoError("truncated binary frame");
        }
        f.SetString(r, c, cell);
      }
    } else {
      std::vector<double> col(static_cast<size_t>(rows));
      in.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(rows * 8));
      for (int64_t r = 0; r < rows; ++r) {
        f.SetDouble(r, c, col[static_cast<size_t>(r)]);
      }
    }
  }
  if (!in) return IoError("truncated binary frame");
  return f;
}

FormatRegistry::FormatRegistry() {
  RegisterFormat("csv", std::make_unique<CsvFormatReader>(),
                 std::make_unique<CsvFormatWriter>());
  RegisterFormat("binary", std::make_unique<BinaryFormatReader>(),
                 std::make_unique<BinaryFormatWriter>());
  RegisterFormat("ijv", std::make_unique<IjvFormatReader>(),
                 std::make_unique<IjvFormatWriter>());
  RegisterFormat("delimited", std::make_unique<GeneratedFormatReader>(),
                 std::make_unique<GeneratedFormatWriter>());
  RegisterFormat("fixed-width", std::make_unique<GeneratedFormatReader>(),
                 nullptr);
  RegisterFormat("key-value", std::make_unique<GeneratedFormatReader>(),
                 nullptr);
}

FormatRegistry& FormatRegistry::Get() {
  static FormatRegistry* registry = new FormatRegistry();
  return *registry;
}

void FormatRegistry::RegisterFormat(const std::string& kind,
                                    std::unique_ptr<Reader> reader,
                                    std::unique_ptr<Writer> writer) {
  for (auto& [name, entry] : formats_) {
    if (name == kind) {
      entry.reader = std::move(reader);
      entry.writer = std::move(writer);
      return;
    }
  }
  formats_.emplace_back(kind, Entry{std::move(reader), std::move(writer)});
}

StatusOr<const Reader*> FormatRegistry::FindReader(
    const std::string& kind) const {
  for (const auto& [name, entry] : formats_) {
    if (name == kind && entry.reader != nullptr) return entry.reader.get();
  }
  return InvalidArgument("no reader registered for format '" + kind + "'");
}

StatusOr<const Writer*> FormatRegistry::FindWriter(
    const std::string& kind) const {
  for (const auto& [name, entry] : formats_) {
    if (name == kind && entry.writer != nullptr) return entry.writer.get();
  }
  return InvalidArgument("no writer registered for format '" + kind + "'");
}

std::vector<std::string> FormatRegistry::Kinds() const {
  std::vector<std::string> kinds;
  for (const auto& [name, entry] : formats_) kinds.push_back(name);
  return kinds;
}

StatusOr<MatrixBlock> Read(const std::string& path,
                           const FormatDescriptor& desc) {
  SYSDS_ASSIGN_OR_RETURN(const Reader* reader,
                         FormatRegistry::Get().FindReader(desc.kind));
  return reader->ReadMatrix(path, desc);
}

StatusOr<FrameBlock> ReadFrame(const std::string& path,
                               const FormatDescriptor& desc,
                               const std::vector<ValueType>& schema) {
  SYSDS_ASSIGN_OR_RETURN(const Reader* reader,
                         FormatRegistry::Get().FindReader(desc.kind));
  return reader->ReadFrame(path, desc, schema);
}

Status Write(const MatrixBlock& m, const std::string& path,
             const FormatDescriptor& desc) {
  SYSDS_ASSIGN_OR_RETURN(const Writer* writer,
                         FormatRegistry::Get().FindWriter(desc.kind));
  return writer->WriteMatrix(m, path, desc);
}

Status Write(const FrameBlock& f, const std::string& path,
             const FormatDescriptor& desc) {
  SYSDS_ASSIGN_OR_RETURN(const Writer* writer,
                         FormatRegistry::Get().FindWriter(desc.kind));
  return writer->WriteFrame(f, path, desc);
}

}  // namespace io
}  // namespace sysds
