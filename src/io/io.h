#ifndef SYSDS_IO_IO_H_
#define SYSDS_IO_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/format_descriptor.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {
namespace io {

/// A format's read side. Implementations override the entry points they
/// support; the defaults return Unimplemented so a matrix-only format (e.g.
/// binary blocks) needs no frame stub and vice versa.
class Reader {
 public:
  virtual ~Reader() = default;
  virtual StatusOr<MatrixBlock> ReadMatrix(const std::string& path,
                                           const FormatDescriptor& desc) const;
  virtual StatusOr<FrameBlock> ReadFrame(const std::string& path,
                                         const FormatDescriptor& desc,
                                         const std::vector<ValueType>& schema)
      const;
};

/// A format's write side; same default-Unimplemented contract as Reader.
class Writer {
 public:
  virtual ~Writer() = default;
  virtual Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                             const FormatDescriptor& desc) const;
  virtual Status WriteFrame(const FrameBlock& f, const std::string& path,
                            const FormatDescriptor& desc) const;
};

/// Registry mapping FormatDescriptor::kind to its Reader/Writer. The
/// built-in formats (csv, binary, ijv, and the generated frame kinds
/// delimited/fixed-width/key-value) self-register; external formats add one
/// RegisterFormat call. Lookup is by exact kind string — callers usually go
/// through FormatDescriptor::FromFormatName first.
class FormatRegistry {
 public:
  static FormatRegistry& Get();

  /// Registers (or replaces) a format; either side may be null for
  /// read-only / write-only formats.
  void RegisterFormat(const std::string& kind, std::unique_ptr<Reader> reader,
                      std::unique_ptr<Writer> writer);

  StatusOr<const Reader*> FindReader(const std::string& kind) const;
  StatusOr<const Writer*> FindWriter(const std::string& kind) const;
  std::vector<std::string> Kinds() const;

 private:
  FormatRegistry();
  struct Entry {
    std::unique_ptr<Reader> reader;
    std::unique_ptr<Writer> writer;
  };
  std::vector<std::pair<std::string, Entry>> formats_;
};

// ---------------------------------------------------------------------------
// Unified entry points: one Read/Write pair for every format, keyed by the
// descriptor. These replace the per-format free functions of matrix_io.h
// (ReadMatrixCsv, WriteMatrixBinary, ...), which survive only as deprecated
// shims over this API for one release.

/// Reads a matrix in the format named by desc.kind.
StatusOr<MatrixBlock> Read(const std::string& path,
                           const FormatDescriptor& desc);

/// Reads a frame. An empty schema means all-string columns inferred from
/// the first row (csv) or the descriptor's columns (generated kinds).
StatusOr<FrameBlock> ReadFrame(const std::string& path,
                               const FormatDescriptor& desc,
                               const std::vector<ValueType>& schema = {});

/// Writes a matrix in the format named by desc.kind.
Status Write(const MatrixBlock& m, const std::string& path,
             const FormatDescriptor& desc);

/// Writes a frame in the format named by desc.kind.
Status Write(const FrameBlock& f, const std::string& path,
             const FormatDescriptor& desc);

// ---------------------------------------------------------------------------
// Stream-based binary serialization. The binary file format, the buffer
// pool's spill files, and the recovery subsystem's checkpoint files all
// share these, so a block written by any of them round-trips through the
// others (and through io::WriteAtomic's checksummed payload stream).

/// Writes `m` in SystemDS binary block layout (magic + header + payload).
Status WriteMatrixBinaryStream(const MatrixBlock& m, std::ostream& out);

/// Reads a matrix written by WriteMatrixBinaryStream. Fails with kCorrupt
/// on a bad magic and kIoError on truncation.
StatusOr<MatrixBlock> ReadMatrixBinaryStream(std::istream& in);

/// Writes `f` (schema, column names, cells) in a binary frame layout.
Status WriteFrameBinaryStream(const FrameBlock& f, std::ostream& out);

/// Reads a frame written by WriteFrameBinaryStream.
StatusOr<FrameBlock> ReadFrameBinaryStream(std::istream& in);

}  // namespace io
}  // namespace sysds

#endif  // SYSDS_IO_IO_H_
