#ifndef SYSDS_IO_MATRIX_IO_H_
#define SYSDS_IO_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "io/io.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

// DEPRECATED: this header survives one release as a shim layer. The
// per-format free functions below forward to the io:: format registry
// (io/io.h) — use io::Read / io::ReadFrame / io::Write with a
// FormatDescriptor instead. New formats register with FormatRegistry and
// never appear here.

/// DEPRECATED: use FormatDescriptor::FromFormatName.
enum class FileFormat { kCsv, kBinary, kIjv };

StatusOr<FileFormat> ParseFileFormat(const std::string& name);

/// DEPRECATED: use FormatDescriptor fields (delimiter/header/num_threads).
struct CsvOptions {
  char delimiter = ',';
  bool header = false;
  // Number of parser threads (0 = DefaultParallelism).
  int num_threads = 0;
};

// DEPRECATED matrix readers/writers; thin wrappers over io::Read/io::Write.
StatusOr<MatrixBlock> ReadMatrixCsv(const std::string& path,
                                    const CsvOptions& opts = {});
Status WriteMatrixCsv(const MatrixBlock& m, const std::string& path,
                      const CsvOptions& opts = {});
StatusOr<MatrixBlock> ReadMatrixBinary(const std::string& path);
Status WriteMatrixBinary(const MatrixBlock& m, const std::string& path);
StatusOr<MatrixBlock> ReadMatrixIjv(const std::string& path);
Status WriteMatrixIjv(const MatrixBlock& m, const std::string& path);

// DEPRECATED dispatch by format enum.
StatusOr<MatrixBlock> ReadMatrix(const std::string& path, FileFormat format,
                                 const CsvOptions& opts = {});
Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                   FileFormat format, const CsvOptions& opts = {});

// DEPRECATED frame readers/writers.
StatusOr<FrameBlock> ReadFrameCsv(const std::string& path,
                                  const std::vector<ValueType>& schema,
                                  const CsvOptions& opts = {});
Status WriteFrameCsv(const FrameBlock& f, const std::string& path,
                     const CsvOptions& opts = {});

}  // namespace sysds

#endif  // SYSDS_IO_MATRIX_IO_H_
