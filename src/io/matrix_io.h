#ifndef SYSDS_IO_MATRIX_IO_H_
#define SYSDS_IO_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Supported external formats (§3.2: CSV/text plus an efficient binary
/// block format; IJV doubles as the MatrixMarket-style text format).
enum class FileFormat { kCsv, kBinary, kIjv };

StatusOr<FileFormat> ParseFileFormat(const std::string& name);

struct CsvOptions {
  char delimiter = ',';
  bool header = false;
  // Number of parser threads (0 = DefaultParallelism). The reader splits
  // the file into line-aligned chunks parsed in parallel — the
  // "multi-threaded I/O ... because string-to-double parsing is compute-
  // intensive" observation of §4.2.
  int num_threads = 0;
};

// Matrix readers/writers.
StatusOr<MatrixBlock> ReadMatrixCsv(const std::string& path,
                                    const CsvOptions& opts = {});
Status WriteMatrixCsv(const MatrixBlock& m, const std::string& path,
                      const CsvOptions& opts = {});

/// Binary block format: little-endian header (magic, rows, cols, nnz,
/// format flag) followed by dense cells or per-row sparse runs.
StatusOr<MatrixBlock> ReadMatrixBinary(const std::string& path);
Status WriteMatrixBinary(const MatrixBlock& m, const std::string& path);

/// IJV text: "row col value" per line, 1-based, with a "%%" header line
/// carrying dims (MatrixMarket coordinate subset).
StatusOr<MatrixBlock> ReadMatrixIjv(const std::string& path);
Status WriteMatrixIjv(const MatrixBlock& m, const std::string& path);

/// Dispatch by format.
StatusOr<MatrixBlock> ReadMatrix(const std::string& path, FileFormat format,
                                 const CsvOptions& opts = {});
Status WriteMatrix(const MatrixBlock& m, const std::string& path,
                   FileFormat format, const CsvOptions& opts = {});

// Frame readers/writers (CSV with optional header and schema line).
StatusOr<FrameBlock> ReadFrameCsv(const std::string& path,
                                  const std::vector<ValueType>& schema,
                                  const CsvOptions& opts = {});
Status WriteFrameCsv(const FrameBlock& f, const std::string& path,
                     const CsvOptions& opts = {});

}  // namespace sysds

#endif  // SYSDS_IO_MATRIX_IO_H_
