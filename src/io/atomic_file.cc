#include "io/atomic_file.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <streambuf>

#include "common/crc32.h"

namespace sysds {
namespace io {

namespace {

// Streambuf tee: forwards every byte to the underlying file stream while
// folding it into the running CRC, so large blocks are checksummed in one
// pass without a second read or an in-memory copy of the payload.
class ChecksummingBuf : public std::streambuf {
 public:
  explicit ChecksummingBuf(std::ofstream* out) : out_(out) {}

  uint32_t crc() const { return crc_.Value(); }
  int64_t bytes() const { return bytes_; }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return ch;
    char c = static_cast<char>(ch);
    crc_.Update(&c, 1);
    ++bytes_;
    out_->put(c);
    return out_->good() ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    crc_.Update(s, static_cast<size_t>(n));
    bytes_ += n;
    out_->write(s, n);
    return out_->good() ? n : 0;
  }

 private:
  std::ofstream* out_;
  Crc32 crc_;
  int64_t bytes_ = 0;
};

}  // namespace

Status WriteAtomic(const std::string& path,
                   const std::function<Status(std::ostream&)>& write_payload) {
  const std::string tmp = path + ".tmp";
  Status result;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot open '" + tmp + "' for writing");
    ChecksummingBuf buf(&out);
    std::ostream payload_stream(&buf);
    result = write_payload(payload_stream);
    payload_stream.flush();
    if (result.ok() && !out) {
      result = IoError("write failed for '" + tmp + "'");
    }
    if (result.ok()) {
      // Footer bypasses the checksumming buf: it covers the payload only.
      uint64_t magic = kChecksumFooterMagic;
      int64_t size = buf.bytes();
      uint32_t crc = buf.crc(), pad = 0;
      out.write(reinterpret_cast<const char*>(&magic), 8);
      out.write(reinterpret_cast<const char*>(&size), 8);
      out.write(reinterpret_cast<const char*>(&crc), 4);
      out.write(reinterpret_cast<const char*>(&pad), 4);
      out.flush();
      if (!out) result = IoError("footer write failed for '" + tmp + "'");
    }
  }
  if (result.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    result = IoError("atomic rename failed for '" + path + "'");
  }
  if (!result.ok()) std::remove(tmp.c_str());
  return result;
}

StatusOr<std::string> ReadVerified(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (static_cast<int64_t>(contents.size()) < kChecksumFooterSize) {
    return CorruptError("'" + path + "': too short for a checksum footer");
  }
  const char* footer =
      contents.data() + contents.size() - static_cast<size_t>(kChecksumFooterSize);
  uint64_t magic = 0;
  int64_t size = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, footer, 8);
  std::memcpy(&size, footer + 8, 8);
  std::memcpy(&crc, footer + 16, 4);
  if (magic != kChecksumFooterMagic) {
    return CorruptError("'" + path + "': missing checksum footer (truncated?)");
  }
  int64_t payload_size =
      static_cast<int64_t>(contents.size()) - kChecksumFooterSize;
  if (size != payload_size) {
    return CorruptError("'" + path + "': payload size mismatch (recorded " +
                        std::to_string(size) + ", actual " +
                        std::to_string(payload_size) + ")");
  }
  uint32_t actual = Crc32::Of(contents.data(), static_cast<size_t>(payload_size));
  if (actual != crc) {
    return CorruptError("'" + path + "': CRC32 mismatch (file is corrupt)");
  }
  contents.resize(static_cast<size_t>(payload_size));
  return contents;
}

}  // namespace io
}  // namespace sysds
