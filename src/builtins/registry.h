#ifndef SYSDS_BUILTINS_REGISTRY_H_
#define SYSDS_BUILTINS_REGISTRY_H_

#include <string>
#include <vector>

namespace sysds {

/// Registry of DML-bodied builtin functions (paper §2.2): lifecycle
/// abstractions implemented in the DSL itself so the compiler can collapse
/// them (Example 1: steplm -> lm -> lmDS/lmCG -> linear algebra). Returns
/// nullptr if `name` is not a registered builtin. The returned script may
/// define several functions (helpers are registered under their own names).
const char* GetBuiltinScript(const std::string& name);

/// All registered builtin names (docs and tests).
std::vector<std::string> BuiltinNames();

}  // namespace sysds

#endif  // SYSDS_BUILTINS_REGISTRY_H_
