#include "builtins/registry.h"

#include <map>

namespace sysds {

namespace {

// ---------------------------------------------------------------------------
// ML training builtins (Figure 2 of the paper): lm dispatches on the number
// of features between the closed-form direct solve (lmDS) and conjugate
// gradient (lmCG).
// ---------------------------------------------------------------------------

const char* kLm = R"dml(
lm = function(Matrix[Double] X, Matrix[Double] y, Double icpt = 0,
              Double reg = 1e-7, Double tol = 1e-7, Integer maxi = 0,
              Boolean verbose = FALSE)
    return (Matrix[Double] B) {
  if (ncol(X) <= 1024) {
    B = lmDS(X, y, icpt, reg, verbose)
  } else {
    B = lmCG(X, y, icpt, reg, tol, maxi, verbose)
  }
}
)dml";

const char* kLmDS = R"dml(
lmDS = function(Matrix[Double] X, Matrix[Double] y, Double icpt = 0,
                Double reg = 1e-7, Boolean verbose = FALSE)
    return (Matrix[Double] B) {
  if (icpt > 0) {
    ones = matrix(1, nrow(X), 1)
    X = cbind(X, ones)
  }
  l = matrix(reg, ncol(X), 1)
  A = t(X) %*% X + diag(l)
  b = t(X) %*% y
  B = solve(A, b)
}
)dml";

const char* kLmCG = R"dml(
lmCG = function(Matrix[Double] X, Matrix[Double] y, Double icpt = 0,
                Double reg = 1e-7, Double tol = 1e-7, Integer maxi = 0,
                Boolean verbose = FALSE)
    return (Matrix[Double] B) {
  if (icpt > 0) {
    ones = matrix(1, nrow(X), 1)
    X = cbind(X, ones)
  }
  m = ncol(X)
  imax = maxi
  if (imax == 0) { imax = m }
  B = matrix(0, m, 1)
  r = -(t(X) %*% y)
  p = -r
  norm_r2 = sum(r^2)
  norm_r2_tgt = norm_r2 * tol^2
  i = 0
  while (i < imax & norm_r2 > norm_r2_tgt) {
    q = t(X) %*% (X %*% p) + reg * p
    alpha = norm_r2 / sum(p * q)
    B = B + alpha * p
    r = r + alpha * q
    old_norm_r2 = norm_r2
    norm_r2 = sum(r^2)
    p = -r + (norm_r2 / old_norm_r2) * p
    i = i + 1
  }
}
)dml";

// Stepwise linear regression (paper Example 1): greedy forward feature
// selection by AIC; the parfor over candidate features is the workload that
// exercises lineage-based partial reuse (§3.1).
const char* kSteplm = R"dml(
aicScore = function(Matrix[Double] X, Matrix[Double] y, Matrix[Double] B)
    return (Double aic) {
  n = nrow(X)
  r = X %*% B - y
  rss = sum(r^2)
  aic = n * log(rss / n + 1e-300) + 2 * ncol(X)
}

steplm = function(Matrix[Double] X, Matrix[Double] y, Double icpt = 0,
                  Double reg = 1e-7, Double thr = 0.001)
    return (Matrix[Double] B, Matrix[Double] S) {
  n = nrow(X)
  m = ncol(X)
  fixed = matrix(0, 1, m)
  Xg = matrix(1, n, 1)
  Bg = lmDS(Xg, y, 0, reg)
  aic_best = aicScore(Xg, y, Bg)
  S = matrix(0, 1, m)
  continue = TRUE
  nsel = 0
  while (continue & nsel < m) {
    aics = matrix(1e308, 1, m)
    parfor (i in 1:m) {
      if (as.scalar(fixed[1, i]) == 0) {
        Xi = cbind(Xg, X[, i])
        Bi = lmDS(Xi, y, 0, reg)
        aics[1, i] = aicScore(Xi, y, Bi)
      }
    }
    aic_min = min(aics)
    best = as.scalar(rowIndexMax(-aics))
    if (aic_min < aic_best - thr) {
      aic_best = aic_min
      fixed[1, best] = 1
      nsel = nsel + 1
      S[1, best] = nsel
      Xg = cbind(Xg, X[, best])
    } else {
      continue = FALSE
    }
  }
  B = lmDS(Xg, y, 0, reg)
}
)dml";

// ---------------------------------------------------------------------------
// Data preparation and cleaning builtins (§3.2).
// ---------------------------------------------------------------------------

const char* kScale = R"dml(
scale = function(Matrix[Double] X, Boolean center = TRUE,
                 Boolean scale = TRUE)
    return (Matrix[Double] Y, Matrix[Double] ColMean, Matrix[Double] ColSD) {
  ColMean = colMeans(X)
  if (center) {
    X = X - ColMean
  }
  ColSD = colSds(X)
  if (scale) {
    X = X / ifelse(ColSD == 0, 1, ColSD)
  }
  Y = X
}
)dml";

const char* kNormalize = R"dml(
normalize = function(Matrix[Double] X)
    return (Matrix[Double] Y, Matrix[Double] cmin, Matrix[Double] cmax) {
  cmin = colMins(X)
  cmax = colMaxs(X)
  span = cmax - cmin
  Y = (X - cmin) / ifelse(span == 0, 1, span)
}
)dml";

const char* kImputeByMean = R"dml(
imputeByMean = function(Matrix[Double] X) return (Matrix[Double] Y) {
  nan = X != X
  Xz = replace(target = X, pattern = 0 / 0, replacement = 0)
  counts = colSums(1 - nan)
  means = colSums(Xz) / max(counts, 1)
  Y = Xz + nan * means
}
)dml";

const char* kWinsorize = R"dml(
winsorize = function(Matrix[Double] X, Double lo = 0.05, Double up = 0.95)
    return (Matrix[Double] Y) {
  Y = X
  for (j in 1:ncol(X)) {
    q1 = quantile(X[, j], lo)
    q2 = quantile(X[, j], up)
    Y[, j] = min(max(X[, j], q1), q2)
  }
}
)dml";

// Caps per-column outliers outside [Q1 - k*IQR, Q3 + k*IQR] (repair by
// capping, the default repair method of the SystemDS builtin).
const char* kOutlierByIQR = R"dml(
outlierByIQR = function(Matrix[Double] X, Double k = 1.5)
    return (Matrix[Double] Y) {
  Y = X
  for (j in 1:ncol(X)) {
    q1 = quantile(X[, j], 0.25)
    q3 = quantile(X[, j], 0.75)
    iqr = q3 - q1
    Y[, j] = min(max(X[, j], q1 - k * iqr), q3 + k * iqr)
  }
}
)dml";

const char* kOutlierBySd = R"dml(
outlierBySd = function(Matrix[Double] X, Double k = 3)
    return (Matrix[Double] Y) {
  mu = colMeans(X)
  sig = colSds(X)
  lower = mu - k * sig
  upper = mu + k * sig
  Y = min(max(X, lower), upper)
}
)dml";

// ---------------------------------------------------------------------------
// Model selection / validation builtins (§2.2: hyper-parameter tuning and
// cross validation on top of parfor).
// ---------------------------------------------------------------------------

const char* kGridSearch = R"dml(
gridSearch = function(Matrix[Double] X, Matrix[Double] y,
                      Matrix[Double] params)
    return (Matrix[Double] B, Double opt) {
  k = nrow(params)
  losses = matrix(1e308, k, 1)
  parfor (i in 1:k) {
    regi = as.scalar(params[i, 1])
    Bi = lmDS(X, y, 0, regi)
    r = X %*% Bi - y
    losses[i, 1] = sum(r^2)
  }
  opt_i = as.scalar(rowIndexMax(t(-losses)))
  opt = as.scalar(params[opt_i, 1])
  B = lmDS(X, y, 0, opt)
}
)dml";

const char* kCrossV = R"dml(
crossV = function(Matrix[Double] X, Matrix[Double] y, Integer k = 4,
                  Double reg = 1e-7)
    return (Double meanLoss, Matrix[Double] losses) {
  n = nrow(X)
  fs = n %/% k
  losses = matrix(0, k, 1)
  parfor (i in 1:k) {
    lo = (i - 1) * fs + 1
    hi = i * fs
    if (i == k) {
      hi = n
    }
    Xte = X[lo:hi, ]
    yte = y[lo:hi, ]
    if (lo == 1) {
      Xtr = X[(hi + 1):n, ]
      ytr = y[(hi + 1):n, ]
    } else if (hi == n) {
      Xtr = X[1:(lo - 1), ]
      ytr = y[1:(lo - 1), ]
    } else {
      Xtr = rbind(X[1:(lo - 1), ], X[(hi + 1):n, ])
      ytr = rbind(y[1:(lo - 1), ], y[(hi + 1):n, ])
    }
    B = lmDS(Xtr, ytr, 0, reg)
    r = Xte %*% B - yte
    losses[i, 1] = sum(r^2) / nrow(Xte)
  }
  meanLoss = mean(losses)
}
)dml";

// ---------------------------------------------------------------------------
// Additional ML algorithms (L3: diversity beyond mini-batch DNNs).
// ---------------------------------------------------------------------------

const char* kKmeans = R"dml(
kmeans = function(Matrix[Double] X, Integer k = 3, Integer maxi = 20,
                  Integer seed = 42)
    return (Matrix[Double] C, Matrix[Double] labels) {
  n = nrow(X)
  m = ncol(X)
  idx = sample(n, k, FALSE, seed)
  C = matrix(0, k, m)
  for (i in 1:k) {
    C[i, ] = X[as.scalar(idx[i, 1]), ]
  }
  labels = matrix(0, n, 1)
  for (iter in 1:maxi) {
    D = -2 * (X %*% t(C)) + t(rowSums(C^2))
    labels = rowIndexMax(-D)
    P = table(seq(1, n, 1), labels)
    if (ncol(P) < k) {
      P = cbind(P, matrix(0, n, k - ncol(P)))
    }
    counts = t(colSums(P))
    C = (t(P) %*% X) / max(counts, 1)
  }
}
)dml";

const char* kPca = R"dml(
pca = function(Matrix[Double] X, Integer k = 2, Integer iters = 50)
    return (Matrix[Double] Xr, Matrix[Double] V, Matrix[Double] evals) {
  n = nrow(X)
  m = ncol(X)
  Xc = X - colMeans(X)
  A = (t(Xc) %*% Xc) / (n - 1)
  V = matrix(0, m, k)
  evals = matrix(0, k, 1)
  for (j in 1:k) {
    v = rand(rows = m, cols = 1, seed = j)
    v = v / sqrt(sum(v^2))
    for (it in 1:iters) {
      v = A %*% v
      v = v / sqrt(sum(v^2))
    }
    lambda = as.scalar(t(v) %*% A %*% v)
    A = A - lambda * (v %*% t(v))
    V[, j] = v
    evals[j, 1] = lambda
  }
  Xr = Xc %*% V
}
)dml";

const char* kL2svm = R"dml(
l2svm = function(Matrix[Double] X, Matrix[Double] Y, Double reg = 1,
                 Double step = 1.0, Integer maxi = 40)
    return (Matrix[Double] w) {
  n = nrow(X)
  m = ncol(X)
  w = matrix(0, m, 1)
  for (i in 1:maxi) {
    margin = 1 - Y * (X %*% w)
    active = margin > 0
    g = -(t(X) %*% (Y * active)) / n + reg * w
    w = w - step * g
    step = step * 0.9
  }
}
)dml";

const char* kGlmIrls = R"dml(
logisticRegression = function(Matrix[Double] X, Matrix[Double] y,
                              Double reg = 1e-6, Integer maxi = 12)
    return (Matrix[Double] B) {
  m = ncol(X)
  B = matrix(0, m, 1)
  for (i in 1:maxi) {
    eta = X %*% B
    p = 1 / (1 + exp(-eta))
    W = p * (1 - p) + 1e-10
    z = eta + (y - p) / W
    A = t(X) %*% (X * W) + diag(matrix(reg, m, 1))
    b = t(X) %*% (W * z)
    B = solve(A, b)
  }
}
)dml";

// ---------------------------------------------------------------------------
// Statistics and model-validation builtins (§2.2 model validation /
// debugging abstractions).
// ---------------------------------------------------------------------------

const char* kCovCor = R"dml(
cov = function(Matrix[Double] x, Matrix[Double] y) return (Double c) {
  n = nrow(x)
  c = sum((x - mean(x)) * (y - mean(y))) / (n - 1)
}

cor = function(Matrix[Double] x, Matrix[Double] y) return (Double r) {
  r = cov(x, y) / (sd(x) * sd(y))
}
)dml";

const char* kMetrics = R"dml(
mse = function(Matrix[Double] yhat, Matrix[Double] y) return (Double e) {
  e = sum((yhat - y)^2) / nrow(y)
}

rmse = function(Matrix[Double] yhat, Matrix[Double] y) return (Double e) {
  e = sqrt(mse(yhat, y))
}

r2 = function(Matrix[Double] yhat, Matrix[Double] y) return (Double r) {
  ss_res = sum((y - yhat)^2)
  ss_tot = sum((y - mean(y))^2)
  r = 1 - ss_res / max(ss_tot, 1e-300)
}
)dml";

// Confusion matrix over 1-based integer class labels; pads to the larger
// of the two label ranges so rows (actual) and columns (predicted) align.
const char* kConfusionMatrix = R"dml(
confusionMatrix = function(Matrix[Double] pred, Matrix[Double] y)
    return (Matrix[Double] cm, Double acc) {
  k = max(max(pred), max(y))
  cm = table(y, pred)
  if (nrow(cm) < k) {
    cm = rbind(cm, matrix(0, k - nrow(cm), ncol(cm)))
  }
  if (ncol(cm) < k) {
    cm = cbind(cm, matrix(0, nrow(cm), k - ncol(cm)))
  }
  acc = trace(cm) / nrow(y)
}
)dml";

// Deterministic train/test split by row ranges (no shuffling; callers can
// permute via order/sample first).
const char* kSplit = R"dml(
trainTestSplit = function(Matrix[Double] X, Matrix[Double] y,
                          Double train_frac = 0.8)
    return (Matrix[Double] Xtr, Matrix[Double] ytr,
            Matrix[Double] Xte, Matrix[Double] yte) {
  n = nrow(X)
  ntr = max(1, floor(n * train_frac))
  if (ntr >= n) {
    ntr = n - 1
  }
  Xtr = X[1:ntr, ]
  ytr = y[1:ntr, ]
  Xte = X[(ntr + 1):n, ]
  yte = y[(ntr + 1):n, ]
}
)dml";

const std::map<std::string, const char*>& Registry() {
  static const auto* registry = new std::map<std::string, const char*>{
      {"lm", kLm},
      {"lmDS", kLmDS},
      {"lmCG", kLmCG},
      {"steplm", kSteplm},
      {"aicScore", kSteplm},
      {"scale", kScale},
      {"normalize", kNormalize},
      {"imputeByMean", kImputeByMean},
      {"winsorize", kWinsorize},
      {"outlierByIQR", kOutlierByIQR},
      {"outlierBySd", kOutlierBySd},
      {"gridSearch", kGridSearch},
      {"crossV", kCrossV},
      {"kmeans", kKmeans},
      {"pca", kPca},
      {"l2svm", kL2svm},
      {"logisticRegression", kGlmIrls},
      {"cov", kCovCor},
      {"cor", kCovCor},
      {"mse", kMetrics},
      {"rmse", kMetrics},
      {"r2", kMetrics},
      {"confusionMatrix", kConfusionMatrix},
      {"trainTestSplit", kSplit},
  };
  return *registry;
}

}  // namespace

const char* GetBuiltinScript(const std::string& name) {
  auto it = Registry().find(name);
  return it == Registry().end() ? nullptr : it->second;
}

std::vector<std::string> BuiltinNames() {
  std::vector<std::string> names;
  for (const auto& [name, script] : Registry()) names.push_back(name);
  return names;
}

}  // namespace sysds
