#ifndef SYSDS_SERVE_SCORING_SERVICE_H_
#define SYSDS_SERVE_SCORING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/systemds_context.h"
#include "common/status.h"

namespace sysds {
namespace serve {

/// Service-wide knobs, fixed at construction.
struct ServiceOptions {
  /// Worker threads draining the admission queue. Each worker executes one
  /// request (or micro-batch) at a time on its own ExecutionContext.
  int num_workers = 2;
  /// Bound on queued (admitted, not yet executing) requests. Submissions
  /// beyond this fail fast with StatusCode::kOom — a retryable signal that
  /// the service is saturated, instead of unbounded queue growth.
  size_t max_queue_depth = 64;
  /// Deadline applied to requests that do not carry their own; zero means
  /// unlimited.
  std::chrono::nanoseconds default_deadline{0};
  /// Memory-pressure admission (paper §2.3(3)): reject with kOom when the
  /// buffer pool's real headroom (limit − pinned − in-flight restores)
  /// drops below this many bytes. Backpressure kicks in before executions
  /// start thrashing the spill device, and kOom is retryable — clients back
  /// off exactly as for a full queue. Zero disables the check (default).
  int64_t admission_headroom_bytes = 0;
};

/// Per-model execution knobs.
struct ModelOptions {
  /// Opt-in micro-batching: the service may stack several queued
  /// single-row requests of this model into one execution. Only valid for
  /// row-wise scoring functions (each output row depends only on the
  /// corresponding input row); the service cannot verify this property.
  bool micro_batching = false;
  /// Name of the row-vector input that varies per request (the feature
  /// row). All other inputs must be shared (pointer-identical DataPtrs)
  /// for requests to be batched together.
  std::string batch_input;
  /// Largest number of requests stacked into one execution.
  size_t max_batch_size = 8;
};

/// Per-request controls.
struct RequestOptions {
  /// Absolute deadline; overrides ServiceOptions::default_deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative cancellation; fires StatusCode::kCancelled.
  std::shared_ptr<CancellationToken> cancel;
};

/// Point-in-time service counters (service-local, in addition to the
/// process-wide src/obs/ metrics under the "serve." prefix).
struct ServiceStats {
  int64_t accepted = 0;          // admitted to the queue
  int64_t rejected = 0;          // refused with kOom (queue full)
  int64_t completed = 0;         // futures resolved with a value
  int64_t failed = 0;            // futures resolved with an error
  int64_t deadline_misses = 0;   // kTimeout before or during execution
  int64_t batches = 0;           // micro-batched executions
  int64_t batched_requests = 0;  // requests served through a batch
  /// Failures with a retryable status (kOom/kTimeout/kCancelled/
  /// kUnavailable/kCorrupt — see IsRetryable): a degraded backend surfaces
  /// to clients as a retryable serve error, not kInternal.
  int64_t retryable_failures = 0;
};

/// A model-scoring service over prepared scripts (the paper's §2.2(1)
/// low-latency deployment path, JMLC-style): each registered model is one
/// compiled PreparedScript shared by all workers; requests enter a bounded
/// admission queue and resolve through futures.
///
///   ScoringService svc({.num_workers = 4, .max_queue_depth = 128});
///   svc.RegisterModel("lm", std::move(prepared), {"yhat"});
///   auto fut = svc.Submit("lm", Inputs().Matrix("X", row));
///   StatusOr<ScriptResult> r = fut.get();
///
/// Thread-safe: Submit/Score may be called from any thread. Shutdown()
/// (also run by the destructor) stops admission, drains already-admitted
/// requests, and joins the workers.
class ScoringService {
 public:
  explicit ScoringService(ServiceOptions options = {});
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Registers `script` under `name`; `outputs` are the variables returned
  /// to callers on every request. Fails with kInvalidArgument on duplicate
  /// names, missing script, or inconsistent micro-batching options.
  Status RegisterModel(const std::string& name,
                       std::shared_ptr<const PreparedScript> script,
                       std::vector<std::string> outputs,
                       ModelOptions options = {});

  /// Asynchronous scoring: admits the request (kOom when the queue is
  /// full, kNotFound for unknown models, kCancelled after Shutdown) and
  /// returns a future that resolves with the execution result.
  std::future<StatusOr<ScriptResult>> Submit(const std::string& model,
                                             Inputs inputs,
                                             const RequestOptions& options = {});

  /// Synchronous convenience wrapper over Submit().get().
  StatusOr<ScriptResult> Score(const std::string& model, Inputs inputs,
                               const RequestOptions& options = {});

  /// Stops admission, drains every already-admitted request, and joins the
  /// worker threads. Idempotent; called by the destructor.
  void Shutdown();

  ServiceStats Stats() const;
  int64_t QueueDepth() const;

 private:
  struct Model {
    std::shared_ptr<const PreparedScript> script;
    Outputs outputs = Outputs::None();
    ModelOptions options;
  };

  struct Request {
    const Model* model = nullptr;
    Inputs inputs;
    RequestOptions options;
    std::chrono::steady_clock::time_point enqueue_time;
    std::promise<StatusOr<ScriptResult>> promise;
  };

  void WorkerLoop();
  /// Pops the next request plus (if its model opted in) compatible queued
  /// requests to micro-batch. Returns false when shutting down and drained.
  bool NextWork(std::vector<Request>& work);
  /// True if `req` can join a micro-batch: its batch input is a single-row
  /// matrix and all other inputs match `head`'s bindings.
  static bool CompatibleForBatch(const Request& head, const Request& req);
  static bool IsSingleRowBatchInput(const Request& req);
  void ExecuteSingle(Request& req);
  /// Stacks the batch rows, executes once, slices per-request outputs.
  /// Falls back to per-request execution when outputs are not sliceable or
  /// the batched run fails.
  void ExecuteBatch(std::vector<Request>& batch);
  void Resolve(Request& req, StatusOr<ScriptResult> result);

  const ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<Model>> models_;  // stable addresses
  std::deque<Request> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> deadline_misses_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_requests_{0};
  std::atomic<int64_t> retryable_failures_{0};
};

}  // namespace serve
}  // namespace sysds

#endif  // SYSDS_SERVE_SCORING_SERVICE_H_
