#include "serve/scoring_service.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/matrix/lib_reorg.h"

namespace sysds {
namespace serve {

namespace {

obs::Counter& RequestsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.requests");
  return *c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.rejected");
  return *c;
}
obs::Counter& DeadlineMissCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.deadline_misses");
  return *c;
}
obs::Counter& RetryableFailureCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.retryable_failures");
  return *c;
}
obs::Counter& BatchesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.batches");
  return *c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("serve.queue_depth");
  return *g;
}
obs::Histogram& LatencyHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("serve.latency_ns");
  return *h;
}

std::future<StatusOr<ScriptResult>> ReadyFuture(Status status) {
  std::promise<StatusOr<ScriptResult>> p;
  p.set_value(StatusOr<ScriptResult>(std::move(status)));
  return p.get_future();
}

}  // namespace

ScoringService::ScoringService(ServiceOptions options) : options_(options) {
  int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ScoringService::~ScoringService() { Shutdown(); }

Status ScoringService::RegisterModel(
    const std::string& name, std::shared_ptr<const PreparedScript> script,
    std::vector<std::string> outputs, ModelOptions options) {
  if (script == nullptr) {
    return InvalidArgument("model '" + name + "': script is null");
  }
  if (options.micro_batching && options.batch_input.empty()) {
    return InvalidArgument("model '" + name +
                           "': micro_batching requires batch_input");
  }
  if (options.micro_batching && options.max_batch_size < 2) {
    return InvalidArgument("model '" + name +
                           "': micro_batching requires max_batch_size >= 2");
  }
  auto model = std::make_unique<Model>();
  model->script = std::move(script);
  model->outputs = Outputs::FromVector(std::move(outputs));
  model->options = std::move(options);
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) {
    return CancelledError("scoring service is shut down");
  }
  if (!models_.emplace(name, std::move(model)).second) {
    return InvalidArgument("model '" + name + "' is already registered");
  }
  return Status::Ok();
}

std::future<StatusOr<ScriptResult>> ScoringService::Submit(
    const std::string& model, Inputs inputs, const RequestOptions& options) {
  RequestsCounter().Add(1);
  Request req;
  req.inputs = std::move(inputs);
  req.options = options;
  req.enqueue_time = std::chrono::steady_clock::now();
  if (!req.options.deadline.has_value() &&
      options_.default_deadline.count() > 0) {
    req.options.deadline = req.enqueue_time + options_.default_deadline;
  }
  std::future<StatusOr<ScriptResult>> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return ReadyFuture(CancelledError("scoring service is shut down"));
    }
    auto it = models_.find(model);
    if (it == models_.end()) {
      return ReadyFuture(NotFound("model '" + model + "' is not registered"));
    }
    if (queue_.size() >= options_.max_queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      RejectedCounter().Add(1);
      return ReadyFuture(
          OomError("admission queue full (" +
                   std::to_string(options_.max_queue_depth) +
                   " requests); retry with backoff"));
    }
    if (options_.admission_headroom_bytes > 0) {
      if (BufferPool* pool = MatrixObject::GetBufferPool()) {
        int64_t headroom = pool->Headroom();
        if (headroom < options_.admission_headroom_bytes) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          RejectedCounter().Add(1);
          return ReadyFuture(OomError(
              "memory headroom low (" + std::to_string(headroom) + " < " +
              std::to_string(options_.admission_headroom_bytes) +
              " bytes); retry with backoff"));
        }
      }
    }
    req.model = it->second.get();
    queue_.push_back(std::move(req));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

StatusOr<ScriptResult> ScoringService::Score(const std::string& model,
                                             Inputs inputs,
                                             const RequestOptions& options) {
  return Submit(model, std::move(inputs), options).get();
}

void ScoringService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServiceStats ScoringService::Stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.retryable_failures = retryable_failures_.load(std::memory_order_relaxed);
  return s;
}

int64_t ScoringService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

bool ScoringService::IsSingleRowBatchInput(const Request& req) {
  const auto& bindings = req.inputs.Bindings();
  auto it = bindings.find(req.model->options.batch_input);
  if (it == bindings.end()) return false;
  auto* m = dynamic_cast<MatrixObject*>(it->second.get());
  return m != nullptr && m->Rows() == 1;
}

bool ScoringService::CompatibleForBatch(const Request& head,
                                        const Request& req) {
  if (req.model != head.model) return false;
  if (req.options.cancel != nullptr && req.options.cancel->Cancelled()) {
    return false;
  }
  if (!IsSingleRowBatchInput(req)) return false;
  // All non-batch inputs must be the same objects (shared weights etc.);
  // value comparison would cost more than the batching saves.
  const std::string& batch_input = head.model->options.batch_input;
  const auto& a = head.inputs.Bindings();
  const auto& b = req.inputs.Bindings();
  if (a.size() != b.size()) return false;
  for (auto ita = a.begin(), itb = b.begin(); ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (ita->first == batch_input) continue;
    if (ita->second.get() != itb->second.get()) return false;
  }
  return true;
}

bool ScoringService::NextWork(std::vector<Request>& work) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // shutdown and drained
  work.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const Model& model = *work.front().model;
  if (model.options.micro_batching && IsSingleRowBatchInput(work.front())) {
    for (auto it = queue_.begin();
         it != queue_.end() && work.size() < model.options.max_batch_size;) {
      if (CompatibleForBatch(work.front(), *it)) {
        work.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  return true;
}

void ScoringService::WorkerLoop() {
  std::vector<Request> work;
  while (NextWork(work)) {
    if (work.size() == 1) {
      ExecuteSingle(work.front());
    } else {
      ExecuteBatch(work);
    }
    work.clear();
  }
}

void ScoringService::Resolve(Request& req, StatusOr<ScriptResult> result) {
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (result.status().code() == StatusCode::kTimeout) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      DeadlineMissCounter().Add(1);
    }
    if (IsRetryable(result.status())) {
      // Chaos-degraded backends (kUnavailable/kCorrupt) and saturation
      // (kOom/kTimeout/kCancelled) are transient from the client's view.
      retryable_failures_.fetch_add(1, std::memory_order_relaxed);
      RetryableFailureCounter().Add(1);
    }
  }
  LatencyHistogram().Observe(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - req.enqueue_time)
          .count());
  req.promise.set_value(std::move(result));
}

void ScoringService::ExecuteSingle(Request& req) {
  SYSDS_SPAN("serve", "execute");
  ExecuteOptions exec;
  exec.deadline = req.options.deadline;
  exec.cancel = req.options.cancel;
  const Model& model = *req.model;
  Resolve(req, model.script->Execute(req.inputs, model.outputs, exec));
}

void ScoringService::ExecuteBatch(std::vector<Request>& batch) {
  SYSDS_SPAN("serve", "execute_batch");
  const Model& model = *batch.front().model;
  const std::string& batch_input = model.options.batch_input;

  // Weed out requests that are already dead; they must not consume compute.
  std::vector<Request> live;
  live.reserve(batch.size());
  auto now = std::chrono::steady_clock::now();
  for (Request& req : batch) {
    if (req.options.cancel != nullptr && req.options.cancel->Cancelled()) {
      Resolve(req, CancelledError("request cancelled before execution"));
    } else if (req.options.deadline.has_value() &&
               now >= *req.options.deadline) {
      Resolve(req, TimeoutError("request deadline expired in queue"));
    } else {
      live.push_back(std::move(req));
    }
  }
  batch.clear();
  if (live.empty()) return;
  if (live.size() == 1) {
    ExecuteSingle(live.front());
    return;
  }

  // Stack the feature rows into one input matrix.
  std::vector<MatrixObject*> pinned;
  std::vector<const MatrixBlock*> rows;
  pinned.reserve(live.size());
  rows.reserve(live.size());
  for (Request& req : live) {
    auto* m = dynamic_cast<MatrixObject*>(
        req.inputs.Bindings().at(batch_input).get());
    auto acquired = m->AcquireRead();
    if (!acquired.ok()) {
      // A request whose input can't be pinned poisons the whole batch;
      // fall back to per-request execution so each surfaces its own error.
      for (MatrixObject* p : pinned) p->Release();
      for (Request& req2 : live) ExecuteSingle(req2);
      return;
    }
    pinned.push_back(m);
    rows.push_back(*acquired);
  }
  StatusOr<MatrixBlock> stacked = RBind(rows);
  for (MatrixObject* m : pinned) m->Release();
  if (!stacked.ok()) {
    for (Request& req : live) ExecuteSingle(req);
    return;
  }

  Inputs combined = live.front().inputs;
  combined.Matrix(batch_input, std::move(stacked).value());
  ExecuteOptions exec;
  // The batched run races the earliest member deadline; cancellation stays
  // per-request and is re-checked when results are handed out.
  for (const Request& req : live) {
    if (!req.options.deadline.has_value()) continue;
    if (!exec.deadline.has_value() || *req.options.deadline < *exec.deadline) {
      exec.deadline = req.options.deadline;
    }
  }
  StatusOr<ScriptResult> batched =
      model.script->Execute(combined, model.outputs, exec);

  // Any batch-level failure (including the earliest deadline firing) falls
  // back to per-request execution with each request's own deadline.
  bool sliceable = batched.ok();
  std::vector<std::pair<std::string, MatrixBlock>> full_outputs;
  if (sliceable) {
    for (const std::string& name : model.outputs.Names()) {
      StatusOr<MatrixBlock> m = batched.value().GetMatrix(name);
      if (!m.ok() || m.value().Rows() != static_cast<int64_t>(live.size())) {
        sliceable = false;  // scalar/frame or non-row-aligned output
        break;
      }
      full_outputs.emplace_back(name, std::move(m).value());
    }
  }
  if (!sliceable) {
    for (Request& req : live) ExecuteSingle(req);
    return;
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(static_cast<int64_t>(live.size()),
                              std::memory_order_relaxed);
  BatchesCounter().Add(1);
  for (size_t i = 0; i < live.size(); ++i) {
    Request& req = live[i];
    if (req.options.cancel != nullptr && req.options.cancel->Cancelled()) {
      Resolve(req, CancelledError("request cancelled during execution"));
      continue;
    }
    ScriptResult result;
    Status slice_status = Status::Ok();
    for (const auto& [name, full] : full_outputs) {
      StatusOr<MatrixBlock> row = SliceMatrix(
          full, static_cast<int64_t>(i), static_cast<int64_t>(i), 0,
          full.Cols() - 1);
      if (!row.ok()) {
        slice_status = row.status();
        break;
      }
      result.SetValue(name,
                      std::make_shared<MatrixObject>(std::move(row).value()));
    }
    // print() output of the batched run is shared; per-row attribution is
    // not possible.
    result.SetOutputText(batched.value().Output());
    if (slice_status.ok()) {
      Resolve(req, std::move(result));
    } else {
      Resolve(req, slice_status);
    }
  }
}

}  // namespace serve
}  // namespace sysds
