#ifndef SYSDS_OBS_METRICS_H_
#define SYSDS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace sysds {
namespace obs {

/// Shard index of the calling thread. Threads get round-robin ids, so up
/// to kShards threads increment disjoint cache lines.
constexpr size_t kMetricShards = 16;
size_t ThreadShard();

/// Monotonically increasing counter backed by per-shard atomics: Add() is a
/// single relaxed fetch_add on a (mostly) thread-private cache line, Value()
/// sums the shards. No mutex anywhere.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    cells_[ThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[kMetricShards];
};

/// Point-in-time value (queue depth, cached bytes, active workers).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale (power-of-two bucket) histogram for long-tailed values such as
/// latencies in nanoseconds or sizes in bytes. Bucket i counts values v
/// with bit_width(v) == i, i.e. [2^(i-1), 2^i); bucket 0 counts v <= 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t v);
  int64_t Count() const;
  int64_t Sum() const { return sum_.Value(); }
  int64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Upper bound (2^i) of the bucket containing the p-quantile, p in [0,1].
  int64_t ApproxQuantile(double p) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  Counter sum_;
};

/// Per-opcode instruction timing: invocation count plus accumulated
/// nanoseconds (the substrate under Statistics::IncInstruction).
struct InstrStat {
  Counter count;
  Counter nanos;
};

/// Process-wide registry of named metrics. Lookup takes a shared (reader)
/// lock; creation takes the exclusive lock once per name. Returned pointers
/// are stable for the process lifetime, so hot paths resolve a metric once
/// and then update it lock-free (see Statistics for the thread-local
/// memoization pattern).
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  InstrStat* GetInstrStat(const std::string& name);

  /// Value of a counter, 0 when it was never created (no side effects).
  int64_t CounterValue(const std::string& name) const;

  /// Zeroes counters, histograms, and instruction stats; gauges describe
  /// current state (queue depths, cached bytes) and are left alone.
  void ResetValues();

  struct CounterSnapshot {
    std::string name;
    int64_t value;
  };
  struct GaugeSnapshot {
    std::string name;
    int64_t value;
  };
  struct InstrSnapshot {
    std::string name;
    int64_t count;
    double seconds;
  };

  /// Name-sorted snapshots (std::map iteration order).
  std::vector<CounterSnapshot> Counters() const;
  std::vector<GaugeSnapshot> Gauges() const;
  std::vector<InstrSnapshot> Instructions() const;

  /// JSON export: {"counters":{...},"gauges":{...},"instructions":{...},
  /// "histograms":{...}}.
  std::string ExportJson() const;

 private:
  MetricsRegistry() = default;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<InstrStat>> instructions_;
};

}  // namespace obs
}  // namespace sysds

#endif  // SYSDS_OBS_METRICS_H_
