#ifndef SYSDS_OBS_TRACE_H_
#define SYSDS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace sysds {
namespace obs {

/// Monotonic nanosecond timestamp (process-relative, steady clock).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One recorded event. Names are copied into a fixed inline buffer so a
/// span may outlive the instruction/string that named it; categories must
/// be string literals (stored by pointer).
struct TraceEvent {
  static constexpr size_t kNameCapacity = 47;

  char name[kNameCapacity + 1];
  const char* category;
  uint64_t ts_ns;    // start (instant: event time)
  uint64_t dur_ns;   // 0 for instants
  uint32_t depth;    // span nesting depth on the recording thread
  bool instant;
};

/// Single-writer ring buffer of trace events. The owning thread appends
/// without locks (release-publish on the head index); the exporter reads
/// with acquire ordering after tracing has been disabled. When full, the
/// oldest events are overwritten and counted as dropped.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(uint32_t tid, size_t capacity);

  void Append(const TraceEvent& ev) {
    uint64_t h = head_.load(std::memory_order_relaxed);
    events_[h % events_.size()] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  uint32_t tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

  /// Events currently retained, oldest first. Call after tracing is
  /// disabled on the owning thread (export-time drain).
  std::vector<TraceEvent> Drain() const;
  uint64_t DroppedCount() const;
  void Clear() { head_.store(0, std::memory_order_release); }

 private:
  uint32_t tid_;
  std::string thread_name_;
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> head_{0};
};

/// Aggregated per-(category, name) timing, for the flat text summary.
struct SpanAggregate {
  std::string category;
  std::string name;
  int64_t count = 0;
  uint64_t total_ns = 0;
};

/// Process-wide span tracer. Disabled by default: the only hot-path cost of
/// an inactive ScopedSpan is one relaxed atomic load and a branch. Threads
/// register lazily on their first event; buffers belong to the tracer and
/// survive thread exit so late exports see every thread's events.
class Tracer {
 public:
  static Tracer& Get();

  static bool Enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }
  void Enable() { g_enabled.store(true, std::memory_order_relaxed); }
  void Disable() { g_enabled.store(false, std::memory_order_relaxed); }

  /// Records a zero-duration instant event (e.g. a buffer-pool eviction).
  static void Instant(const char* category, const char* name) {
    if (!Enabled()) return;
    Get().RecordInstant(category, name);
  }
  static void Instant(const char* category, const std::string& name) {
    if (!Enabled()) return;
    Get().RecordInstant(category, name.c_str());
  }

  /// Names the calling thread in the trace viewer ("pool-worker-3").
  /// Cheap enough to call unconditionally from thread mains.
  static void SetCurrentThreadName(const std::string& name);

  /// Drops all recorded events (buffers and thread registrations remain).
  void Clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
  /// chrome://tracing and https://ui.perfetto.dev. Timestamps are
  /// microseconds rebased to the earliest event.
  void ExportChromeTrace(std::ostream& os) const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Flat text summary: per-(category, name) count and total time, plus
  /// dropped-event accounting.
  std::string Summary() const;
  std::vector<SpanAggregate> Aggregate() const;

  /// Ring capacity (events per thread) used for buffers created after the
  /// call; existing buffers keep their size. Default 16384, or
  /// SYSDS_TRACE_BUFFER if set.
  void SetBufferCapacity(size_t capacity);

  // Internal: the calling thread's buffer, created on first use.
  ThreadTraceBuffer* ThreadBuffer();

  void RecordComplete(const char* category, const char* name,
                      uint64_t ts_ns, uint64_t dur_ns, uint32_t depth);
  void RecordInstant(const char* category, const char* name);

 private:
  Tracer();

  static std::atomic<bool> g_enabled;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers_;
  std::atomic<size_t> capacity_;
  std::atomic<uint32_t> next_tid_{0};
};

namespace internal {
// Span nesting depth of the current thread (diagnostics + summary).
extern thread_local uint32_t t_span_depth;
}  // namespace internal

/// RAII span: records a complete ("ph":"X") event covering its lifetime.
/// Constructing one while tracing is disabled records nothing; a span also
/// stays inert if tracing flips on mid-lifetime (no half-open events).
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (!Tracer::Enabled()) return;
    Begin(category, name);
  }
  ScopedSpan(const char* category, const std::string& name) {
    if (!Tracer::Enabled()) return;
    Begin(category, name.c_str());
  }
  ~ScopedSpan() {
    if (!active_) return;
    --internal::t_span_depth;
    Tracer::Get().RecordComplete(category_, name_, start_ns_,
                                 NowNanos() - start_ns_, depth_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* category, const char* name) {
    active_ = true;
    category_ = category;
    std::strncpy(name_, name, TraceEvent::kNameCapacity);
    name_[TraceEvent::kNameCapacity] = '\0';
    depth_ = internal::t_span_depth++;
    start_ns_ = NowNanos();
  }

  bool active_ = false;
  const char* category_ = nullptr;
  char name_[TraceEvent::kNameCapacity + 1];
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace sysds

/// Span convenience macro: SYSDS_SPAN("cp", opcode). Category must be a
/// string literal; name may be a const char* or std::string.
#define SYSDS_OBS_CONCAT2(a, b) a##b
#define SYSDS_OBS_CONCAT(a, b) SYSDS_OBS_CONCAT2(a, b)
#define SYSDS_SPAN(category, name) \
  ::sysds::obs::ScopedSpan SYSDS_OBS_CONCAT(_sysds_span_, __LINE__)( \
      category, name)

#endif  // SYSDS_OBS_TRACE_H_
