#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace sysds {
namespace obs {

std::atomic<bool> Tracer::g_enabled{false};

namespace internal {
thread_local uint32_t t_span_depth = 0;
}  // namespace internal

namespace {

thread_local ThreadTraceBuffer* t_buffer = nullptr;

size_t DefaultCapacity() {
  if (const char* env = std::getenv("SYSDS_TRACE_BUFFER")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 16384;
}

void JsonEscape(const char* s, std::ostream& os) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

ThreadTraceBuffer::ThreadTraceBuffer(uint32_t tid, size_t capacity)
    : tid_(tid), events_(std::max<size_t>(capacity, 16)) {}

std::vector<TraceEvent> ThreadTraceBuffer::Drain() const {
  uint64_t h = head_.load(std::memory_order_acquire);
  uint64_t cap = events_.size();
  uint64_t n = std::min(h, cap);
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest retained event first.
  for (uint64_t i = h - n; i < h; ++i) {
    out.push_back(events_[i % cap]);
  }
  return out;
}

uint64_t ThreadTraceBuffer::DroppedCount() const {
  uint64_t h = head_.load(std::memory_order_acquire);
  uint64_t cap = events_.size();
  return h > cap ? h - cap : 0;
}

Tracer::Tracer() : capacity_(DefaultCapacity()) {}

Tracer& Tracer::Get() {
  static Tracer* instance = new Tracer();
  return *instance;
}

ThreadTraceBuffer* Tracer::ThreadBuffer() {
  if (t_buffer != nullptr) return t_buffer;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  uint32_t tid = next_tid_.fetch_add(1);
  buffers_.push_back(std::make_unique<ThreadTraceBuffer>(
      tid, capacity_.load(std::memory_order_relaxed)));
  t_buffer = buffers_.back().get();
  return t_buffer;
}

void Tracer::RecordComplete(const char* category, const char* name,
                            uint64_t ts_ns, uint64_t dur_ns, uint32_t depth) {
  TraceEvent ev;
  std::strncpy(ev.name, name, TraceEvent::kNameCapacity);
  ev.name[TraceEvent::kNameCapacity] = '\0';
  ev.category = category;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.depth = depth;
  ev.instant = false;
  ThreadBuffer()->Append(ev);
}

void Tracer::RecordInstant(const char* category, const char* name) {
  TraceEvent ev;
  std::strncpy(ev.name, name, TraceEvent::kNameCapacity);
  ev.name[TraceEvent::kNameCapacity] = '\0';
  ev.category = category;
  ev.ts_ns = NowNanos();
  ev.dur_ns = 0;
  ev.depth = internal::t_span_depth;
  ev.instant = true;
  ThreadBuffer()->Append(ev);
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  Get().ThreadBuffer()->set_thread_name(name);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& b : buffers_) b->Clear();
}

void Tracer::SetBufferCapacity(size_t capacity) {
  capacity_.store(std::max<size_t>(capacity, 16),
                  std::memory_order_relaxed);
}

void Tracer::ExportChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  // Rebase timestamps so the viewer's x-axis starts near zero.
  uint64_t base = UINT64_MAX;
  std::vector<std::vector<TraceEvent>> drained;
  drained.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    drained.push_back(b->Drain());
    for (const TraceEvent& ev : drained.back()) base = std::min(base, ev.ts_ns);
  }
  if (base == UINT64_MAX) base = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (size_t i = 0; i < buffers_.size(); ++i) {
    const ThreadTraceBuffer& b = *buffers_[i];
    if (!b.thread_name().empty()) {
      comma();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << b.tid() << ",\"args\":{\"name\":\"";
      JsonEscape(b.thread_name().c_str(), os);
      os << "\"}}";
    }
    for (const TraceEvent& ev : drained[i]) {
      comma();
      os << "{\"name\":\"";
      JsonEscape(ev.name, os);
      os << "\",\"cat\":\"";
      JsonEscape(ev.category, os);
      os << "\",\"pid\":1,\"tid\":" << b.tid() << ",\"ts\":"
         << (ev.ts_ns - base) / 1000 << "."
         << (ev.ts_ns - base) % 1000 / 100;
      if (ev.instant) {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      } else {
        os << ",\"ph\":\"X\",\"dur\":" << ev.dur_ns / 1000 << "."
           << ev.dur_ns % 1000 / 100;
      }
      os << "}";
    }
  }
  os << "]}";
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return IoError("cannot open trace output file: " + path);
  ExportChromeTrace(out);
  out << "\n";
  if (!out) return IoError("failed writing trace output file: " + path);
  return Status::Ok();
}

std::vector<SpanAggregate> Tracer::Aggregate() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::map<std::pair<std::string, std::string>, SpanAggregate> agg;
  for (const auto& b : buffers_) {
    for (const TraceEvent& ev : b->Drain()) {
      if (ev.instant) continue;
      SpanAggregate& a = agg[{ev.category, ev.name}];
      a.category = ev.category;
      a.name = ev.name;
      a.count += 1;
      a.total_ns += ev.dur_ns;
    }
  }
  std::vector<SpanAggregate> out;
  out.reserve(agg.size());
  for (auto& [key, a] : agg) out.push_back(std::move(a));
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::string Tracer::Summary() const {
  std::vector<SpanAggregate> agg = Aggregate();
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& b : buffers_) dropped += b->DroppedCount();
  }
  std::ostringstream os;
  os << "Trace summary (category.name, count, total[ms]):\n";
  for (const SpanAggregate& a : agg) {
    os << "  " << a.category << "." << a.name << "\t" << a.count << "\t"
       << static_cast<double>(a.total_ns) / 1e6 << "\n";
  }
  if (dropped > 0) {
    os << "  (dropped " << dropped << " events: ring buffers wrapped)\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace sysds
