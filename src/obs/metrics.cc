#include "obs/metrics.h"

#include <bit>
#include <mutex>
#include <sstream>

namespace sysds {
namespace obs {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1) % kMetricShards;
  return shard;
}

void Histogram::Observe(int64_t v) {
  int bucket =
      v <= 0 ? 0 : std::bit_width(static_cast<uint64_t>(v));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.Add(v);
}

int64_t Histogram::Count() const {
  int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

int64_t Histogram::ApproxQuantile(double p) const {
  int64_t n = Count();
  if (n == 0) return 0;
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(n - 1));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      return i == 0 ? 0 : (int64_t{1} << std::min(i, 62));
    }
  }
  return int64_t{1} << 62;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.Reset();
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

namespace {
// Shared-lock lookup with exclusive-lock insertion on miss; values are
// never erased, so returned pointers stay valid forever.
template <typename T>
T* GetOrCreate(std::shared_mutex& mutex,
               std::map<std::string, std::unique_ptr<T>>& map,
               const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex);
    auto it = map.find(name);
    if (it != map.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mutex);
  auto& slot = map[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return slot.get();
}

void JsonEscapeTo(const std::string& s, std::ostream& os) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(mutex_, counters_, name);
}
Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(mutex_, gauges_, name);
}
Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(mutex_, histograms_, name);
}
InstrStat* MetricsRegistry::GetInstrStat(const std::string& name) {
  return GetOrCreate(mutex_, instructions_, name);
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

void MetricsRegistry::ResetValues() {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : instructions_) {
    s->count.Reset();
    s->nanos.Reset();
  }
}

std::vector<MetricsRegistry::CounterSnapshot> MetricsRegistry::Counters()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back({name, c->Value()});
  return out;
}

std::vector<MetricsRegistry::GaugeSnapshot> MetricsRegistry::Gauges() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back({name, g->Value()});
  return out;
}

std::vector<MetricsRegistry::InstrSnapshot> MetricsRegistry::Instructions()
    const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<InstrSnapshot> out;
  out.reserve(instructions_.size());
  for (const auto& [name, s] : instructions_) {
    out.push_back({name, s->count.Value(),
                   static_cast<double>(s->nanos.Value()) / 1e9});
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscapeTo(name, os);
    os << "\":" << c->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscapeTo(name, os);
    os << "\":" << g->Value();
  }
  os << "},\"instructions\":{";
  first = true;
  for (const auto& [name, s] : instructions_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscapeTo(name, os);
    os << "\":{\"count\":" << s->count.Value()
       << ",\"seconds\":" << static_cast<double>(s->nanos.Value()) / 1e9
       << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscapeTo(name, os);
    os << "\":{\"count\":" << h->Count() << ",\"sum\":" << h->Sum()
       << ",\"p50\":" << h->ApproxQuantile(0.5)
       << ",\"p99\":" << h->ApproxQuantile(0.99) << ",\"buckets\":[";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t v = h->BucketCount(i);
      if (v == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << i << "," << v << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace obs
}  // namespace sysds
