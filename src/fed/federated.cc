#include "fed/federated.h"

#include <cstring>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"
#include "runtime/matrix/lib_solve.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

std::vector<uint8_t> SerializeMatrix(const MatrixBlock& m) {
  // Dense little-endian framing: rows, cols, then cells.
  int64_t rows = m.Rows(), cols = m.Cols();
  std::vector<uint8_t> buf(16 + static_cast<size_t>(rows * cols) * 8);
  std::memcpy(buf.data(), &rows, 8);
  std::memcpy(buf.data() + 8, &cols, 8);
  double* cells = reinterpret_cast<double*>(buf.data() + 16);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) cells[r * cols + c] = m.Get(r, c);
  }
  return buf;
}

StatusOr<MatrixBlock> DeserializeMatrix(const std::vector<uint8_t>& buf) {
  if (buf.size() < 16) return IoError("federated: truncated matrix payload");
  int64_t rows = 0, cols = 0;
  std::memcpy(&rows, buf.data(), 8);
  std::memcpy(&cols, buf.data() + 8, 8);
  if (buf.size() != 16 + static_cast<size_t>(rows * cols) * 8) {
    return IoError("federated: malformed matrix payload");
  }
  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  std::memcpy(m.DenseData(), buf.data() + 16,
              static_cast<size_t>(rows * cols) * 8);
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

FederatedWorker::FederatedWorker(int id) : id_(id) {
  thread_ = std::thread([this] { Loop(); });
}

FederatedWorker::~FederatedWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

namespace {
struct FedMetrics {
  obs::Counter* requests;
  obs::Counter* bytes_to_site;
  obs::Counter* bytes_from_site;
};

FedMetrics& Metrics() {
  static FedMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fed.requests"),
      obs::MetricsRegistry::Get().GetCounter("fed.bytes_to_site"),
      obs::MetricsRegistry::Get().GetCounter("fed.bytes_from_site"),
  };
  return m;
}

const char* RequestSpanName(const FederatedMessage& msg) {
  switch (msg.type) {
    case FederatedMessage::Type::kPutMatrix: return "put_matrix";
    case FederatedMessage::Type::kGetMatrix: return "get_matrix";
    case FederatedMessage::Type::kExec: return "exec";
    default: return "request";
  }
}
}  // namespace

FederatedMessage FederatedWorker::Request(FederatedMessage msg) {
  // Master-side view of the round trip: queueing for the site's single
  // request slot, remote processing, and response shipping.
  SYSDS_SPAN("fed", RequestSpanName(msg));
  Metrics().requests->Add(1);
  Metrics().bytes_to_site->Add(static_cast<int64_t>(msg.payload.size()) + 64);
  std::unique_lock<std::mutex> lock(mutex_);
  // Wait for the slot (serializes concurrent masters).
  cv_.wait(lock, [this] { return !has_request_; });
  bytes_in_ += static_cast<int64_t>(msg.payload.size()) + 64;
  request_ = &msg;
  has_request_ = true;
  has_response_ = false;
  cv_.notify_all();
  response_cv_.wait(lock, [this] { return has_response_; });
  FederatedMessage resp = std::move(response_);
  bytes_out_ += static_cast<int64_t>(resp.payload.size()) + 64;
  Metrics().bytes_from_site->Add(static_cast<int64_t>(resp.payload.size()) +
                                 64);
  has_request_ = false;
  request_ = nullptr;
  cv_.notify_all();
  return resp;
}

void FederatedWorker::Loop() {
  obs::Tracer::SetCurrentThreadName("fed-site-" + std::to_string(id_));
  for (;;) {
    FederatedMessage* req = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || (has_request_ && !has_response_); });
      if (stop_) return;
      req = request_;
    }
    FederatedMessage resp;
    {
      // Site-side processing span (its own named thread track).
      SYSDS_SPAN("fed", req->opcode.empty() ? "handle" : req->opcode.c_str());
      resp = Handle(*req);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      response_ = std::move(resp);
      has_response_ = true;
    }
    response_cv_.notify_all();
  }
}

FederatedMessage FederatedWorker::Handle(const FederatedMessage& msg) {
  FederatedMessage resp;
  resp.type = FederatedMessage::Type::kResponse;
  auto fail = [&](const std::string& err) {
    resp.type = FederatedMessage::Type::kError;
    resp.error = err;
    return resp;
  };
  switch (msg.type) {
    case FederatedMessage::Type::kPutMatrix: {
      auto m = DeserializeMatrix(msg.payload);
      if (!m.ok()) return fail(m.status().ToString());
      data_[msg.output_name] = std::move(*m);
      return resp;
    }
    case FederatedMessage::Type::kGetMatrix: {
      auto it = data_.find(msg.names.empty() ? "" : msg.names[0]);
      if (it == data_.end()) return fail("federated: unknown variable");
      resp.payload = SerializeMatrix(it->second);
      return resp;
    }
    case FederatedMessage::Type::kExec: {
      // Resolve inputs.
      std::vector<const MatrixBlock*> ins;
      for (const std::string& name : msg.names) {
        auto it = data_.find(name);
        if (it == data_.end()) return fail("federated: unknown input " + name);
        ins.push_back(&it->second);
      }
      StatusOr<MatrixBlock> out = InvalidArgument("");
      if (msg.opcode == "tsmm" && ins.size() == 1) {
        out = TransposeSelfMatMult(*ins[0], true, 1);
      } else if (msg.opcode == "tmm" && ins.size() == 2) {
        out = TransposeLeftMatMult(*ins[0], *ins[1], 1);
      } else if (msg.opcode == "matvec" && ins.size() == 1 &&
                 !msg.payload.empty()) {
        auto v = DeserializeMatrix(msg.payload);
        if (!v.ok()) return fail(v.status().ToString());
        out = MatMult(*ins[0], *v, 1);
      } else if (msg.opcode == "colsums" && ins.size() == 1) {
        out = AggregateRowCol(AggOpCode::kSum, AggDirection::kCol, *ins[0], 1);
      } else if (msg.opcode == "scale" && ins.size() == 1) {
        out = StatusOr<MatrixBlock>(BinaryMatrixScalar(
            BinaryOpCode::kMul, *ins[0], msg.scalar, false, 1));
      } else {
        return fail("federated: unsupported opcode " + msg.opcode);
      }
      if (!out.ok()) return fail(out.status().ToString());
      if (!msg.output_name.empty()) {
        data_[msg.output_name] = *out;
      }
      resp.payload = SerializeMatrix(*out);
      return resp;
    }
    default:
      return fail("federated: bad request");
  }
}

FederatedRegistry::FederatedRegistry(int n) {
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<FederatedWorker>(i));
  }
}

int64_t FederatedRegistry::TotalBytesTransferred() const {
  int64_t total = 0;
  for (const auto& w : workers_) {
    total += w->BytesReceived() + w->BytesSent();
  }
  return total;
}

StatusOr<FederatedMatrix> FederatedMatrix::Distribute(
    FederatedRegistry* registry, const MatrixBlock& m,
    const std::string& name) {
  FederatedMatrix fm(registry, m.Rows(), m.Cols());
  int n = registry->NumWorkers();
  int64_t rows_per = (m.Rows() + n - 1) / n;
  for (int w = 0; w < n; ++w) {
    int64_t rb = w * rows_per;
    int64_t re = std::min<int64_t>(m.Rows(), rb + rows_per);
    if (rb >= re) break;
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part,
                           SliceMatrix(m, rb, re - 1, 0, m.Cols() - 1));
    FederatedMessage put;
    put.type = FederatedMessage::Type::kPutMatrix;
    put.output_name = name;
    put.payload = SerializeMatrix(part);
    FederatedMessage resp = registry->Worker(w)->Request(std::move(put));
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    fm.partitions_.push_back({w, rb, re, name});
  }
  return fm;
}

StatusOr<MatrixBlock> FederatedMatrix::TsmmLeft() const {
  MatrixBlock acc = MatrixBlock::Dense(cols_, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "tsmm";
    req.names = {p.var_name};
    FederatedMessage resp = registry_->Worker(p.worker_id)->Request(req);
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, DeserializeMatrix(resp.payload));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::Tmm(const FederatedMatrix& y) const {
  if (y.rows_ != rows_ || partitions_.size() != y.partitions_.size()) {
    return InvalidArgument("federated tmm: misaligned partitions");
  }
  MatrixBlock acc = MatrixBlock::Dense(cols_, y.cols_);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].worker_id != y.partitions_[i].worker_id ||
        partitions_[i].row_begin != y.partitions_[i].row_begin) {
      return InvalidArgument("federated tmm: misaligned partitions");
    }
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "tmm";
    req.names = {partitions_[i].var_name, y.partitions_[i].var_name};
    FederatedMessage resp =
        registry_->Worker(partitions_[i].worker_id)->Request(req);
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, DeserializeMatrix(resp.payload));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::MatVec(const MatrixBlock& v) const {
  if (v.Rows() != cols_ || v.Cols() != 1) {
    return InvalidArgument("federated matvec: vector shape mismatch");
  }
  MatrixBlock out = MatrixBlock::Dense(rows_, 1);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "matvec";
    req.names = {p.var_name};
    req.payload = SerializeMatrix(v);
    FederatedMessage resp = registry_->Worker(p.worker_id)->Request(req);
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, DeserializeMatrix(resp.payload));
    for (int64_t r = 0; r < part.Rows(); ++r) {
      out.DenseData()[p.row_begin + r] = part.Get(r, 0);
    }
  }
  out.MarkNnzDirty();
  return out;
}

StatusOr<MatrixBlock> FederatedMatrix::ColSums() const {
  MatrixBlock acc = MatrixBlock::Dense(1, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "colsums";
    req.names = {p.var_name};
    FederatedMessage resp = registry_->Worker(p.worker_id)->Request(req);
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, DeserializeMatrix(resp.payload));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::Collect() const {
  MatrixBlock out = MatrixBlock::Dense(rows_, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kGetMatrix;
    req.names = {p.var_name};
    FederatedMessage resp = registry_->Worker(p.worker_id)->Request(req);
    if (resp.type == FederatedMessage::Type::kError) {
      return RuntimeError(resp.error);
    }
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, DeserializeMatrix(resp.payload));
    for (int64_t r = 0; r < part.Rows(); ++r) {
      for (int64_t c = 0; c < cols_; ++c) {
        out.DenseRow(p.row_begin + r)[c] = part.Get(r, c);
      }
    }
  }
  out.MarkNnzDirty();
  out.ExamSparsity();
  return out;
}

StatusOr<MatrixBlock> FederatedLmDS(const FederatedMatrix& x,
                                    const FederatedMatrix& y, double reg) {
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock a, x.TsmmLeft());
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, x.Tmm(y));
  a.ToDense();
  for (int64_t i = 0; i < a.Rows(); ++i) {
    a.DenseRow(i)[i] += reg;
  }
  a.MarkNnzDirty();
  return Solve(a, b);
}

}  // namespace sysds
