#include "fed/federated.h"

#include <cstring>
#include <iostream>
#include <limits>

#include "common/faults.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"
#include "runtime/matrix/lib_solve.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {

// Wire header: rows (8) + cols (8) + FNV-1a checksum of the cell bytes (8).
constexpr size_t kWireHeaderBytes = 24;

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Shared framing checks of ValidateMatrixPayload / DeserializeMatrix.
Status ParseWireHeader(const std::vector<uint8_t>& buf, int64_t* rows,
                       int64_t* cols) {
  if (buf.size() < kWireHeaderBytes) {
    return CorruptError("federated: truncated matrix payload (" +
                        std::to_string(buf.size()) + " bytes)");
  }
  std::memcpy(rows, buf.data(), 8);
  std::memcpy(cols, buf.data() + 8, 8);
  if (*rows < 0 || *cols < 0) {
    return CorruptError("federated: negative matrix dimensions in payload");
  }
  // Overflow-safe size check: rows*cols*8 must equal the remaining bytes.
  uint64_t cells_avail = (buf.size() - kWireHeaderBytes) / 8;
  if ((buf.size() - kWireHeaderBytes) % 8 != 0 ||
      (*cols != 0 &&
       static_cast<uint64_t>(*rows) >
           std::numeric_limits<uint64_t>::max() /
               static_cast<uint64_t>(*cols)) ||
      static_cast<uint64_t>(*rows) * static_cast<uint64_t>(*cols) !=
          cells_avail) {
    return CorruptError("federated: malformed matrix payload (header " +
                        std::to_string(*rows) + "x" + std::to_string(*cols) +
                        " vs " + std::to_string(buf.size()) + " bytes)");
  }
  uint64_t checksum = 0;
  std::memcpy(&checksum, buf.data() + 16, 8);
  if (checksum != Fnv1a(buf.data() + kWireHeaderBytes,
                        buf.size() - kWireHeaderBytes)) {
    return CorruptError("federated: matrix payload checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> SerializeMatrix(const MatrixBlock& m) {
  // Dense little-endian framing: rows, cols, checksum, then cells.
  int64_t rows = m.Rows(), cols = m.Cols();
  std::vector<uint8_t> buf(kWireHeaderBytes +
                           static_cast<size_t>(rows * cols) * 8);
  std::memcpy(buf.data(), &rows, 8);
  std::memcpy(buf.data() + 8, &cols, 8);
  double* cells = reinterpret_cast<double*>(buf.data() + kWireHeaderBytes);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) cells[r * cols + c] = m.Get(r, c);
  }
  uint64_t checksum =
      Fnv1a(buf.data() + kWireHeaderBytes, buf.size() - kWireHeaderBytes);
  std::memcpy(buf.data() + 16, &checksum, 8);
  return buf;
}

Status ValidateMatrixPayload(const std::vector<uint8_t>& buf) {
  int64_t rows = 0, cols = 0;
  return ParseWireHeader(buf, &rows, &cols);
}

StatusOr<MatrixBlock> DeserializeMatrix(const std::vector<uint8_t>& buf) {
  int64_t rows = 0, cols = 0;
  SYSDS_RETURN_IF_ERROR(ParseWireHeader(buf, &rows, &cols));
  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  std::memcpy(m.DenseData(), buf.data() + kWireHeaderBytes,
              static_cast<size_t>(rows * cols) * 8);
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

bool IsFederatedDataLossError(const std::string& error) {
  return error.find("crashed:") != std::string::npos ||
         error.find("unknown input") != std::string::npos ||
         error.find("unknown variable") != std::string::npos;
}

FederatedWorker::FederatedWorker(int id) : id_(id) {
  thread_ = std::thread([this] { Loop(); });
}

FederatedWorker::~FederatedWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

namespace {
struct FedMetrics {
  obs::Counter* requests;
  obs::Counter* bytes_to_site;
  obs::Counter* bytes_from_site;
};

FedMetrics& Metrics() {
  static FedMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fed.requests"),
      obs::MetricsRegistry::Get().GetCounter("fed.bytes_to_site"),
      obs::MetricsRegistry::Get().GetCounter("fed.bytes_from_site"),
  };
  return m;
}

struct FedFaultMetrics {
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* corrupt_rejected;
  obs::Counter* circuit_rejections;
  obs::Counter* circuit_opens;
  obs::Counter* local_fallbacks;
  obs::Counter* reputs;
  obs::Histogram* retry_latency_ns;
};

FedFaultMetrics& FaultMetrics() {
  static FedFaultMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fault.fed.retries"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.timeouts"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.corrupt_rejected"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.circuit_rejections"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.circuit_opens"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.local_fallbacks"),
      obs::MetricsRegistry::Get().GetCounter("fault.fed.reputs"),
      obs::MetricsRegistry::Get().GetHistogram("fault.fed.retry_latency_ns"),
  };
  return m;
}

const char* RequestSpanName(const FederatedMessage& msg) {
  switch (msg.type) {
    case FederatedMessage::Type::kPutMatrix: return "put_matrix";
    case FederatedMessage::Type::kGetMatrix: return "get_matrix";
    case FederatedMessage::Type::kExec: return "exec";
    default: return "request";
  }
}
}  // namespace

FederatedMessage FederatedWorker::Request(FederatedMessage msg) {
  // Master-side view of the round trip: queueing for the site's single
  // request slot, remote processing, and response shipping.
  SYSDS_SPAN("fed", RequestSpanName(msg));
  Metrics().requests->Add(1);
  Metrics().bytes_to_site->Add(static_cast<int64_t>(msg.payload.size()) + 64);
  std::unique_lock<std::mutex> lock(mutex_);
  // Wait for the slot (serializes concurrent masters).
  cv_.wait(lock, [this] { return !has_request_; });
  bytes_in_ += static_cast<int64_t>(msg.payload.size()) + 64;
  request_ = &msg;
  has_request_ = true;
  has_response_ = false;
  cv_.notify_all();
  response_cv_.wait(lock, [this] { return has_response_; });
  FederatedMessage resp = std::move(response_);
  bytes_out_ += static_cast<int64_t>(resp.payload.size()) + 64;
  Metrics().bytes_from_site->Add(static_cast<int64_t>(resp.payload.size()) +
                                 64);
  has_request_ = false;
  request_ = nullptr;
  cv_.notify_all();
  return resp;
}

void FederatedWorker::Loop() {
  obs::Tracer::SetCurrentThreadName("fed-site-" + std::to_string(id_));
  for (;;) {
    FederatedMessage* req = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || (has_request_ && !has_response_); });
      if (stop_) return;
      req = request_;
    }
    FederatedMessage resp;
    if (FaultInjector::Get().ShouldInject(FaultLayer::kFederated, id_,
                                          FaultKind::kCrash)) {
      // Simulated site crash: the process restarts with its in-memory
      // variables gone; the in-flight request is answered with a data-loss
      // error so the master re-ships partitions from source.
      data_.clear();
      resp.type = FederatedMessage::Type::kError;
      resp.error = "crashed: site restarted, in-memory state lost";
      obs::Tracer::Instant("fed", "site_crash");
    } else {
      // Site-side processing span (its own named thread track).
      SYSDS_SPAN("fed", req->opcode.empty() ? "handle" : req->opcode.c_str());
      resp = Handle(*req);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      response_ = std::move(resp);
      has_response_ = true;
    }
    response_cv_.notify_all();
  }
}

FederatedMessage FederatedWorker::Handle(const FederatedMessage& msg) {
  FederatedMessage resp;
  resp.type = FederatedMessage::Type::kResponse;
  auto fail = [&](const std::string& err) {
    resp.type = FederatedMessage::Type::kError;
    resp.error = err;
    return resp;
  };
  switch (msg.type) {
    case FederatedMessage::Type::kPutMatrix: {
      auto m = DeserializeMatrix(msg.payload);
      if (!m.ok()) return fail(m.status().ToString());
      data_[msg.output_name] = std::move(*m);
      return resp;
    }
    case FederatedMessage::Type::kGetMatrix: {
      auto it = data_.find(msg.names.empty() ? "" : msg.names[0]);
      if (it == data_.end()) return fail("federated: unknown variable");
      resp.payload = SerializeMatrix(it->second);
      return resp;
    }
    case FederatedMessage::Type::kExec: {
      // Resolve inputs.
      std::vector<const MatrixBlock*> ins;
      for (const std::string& name : msg.names) {
        auto it = data_.find(name);
        if (it == data_.end()) return fail("federated: unknown input " + name);
        ins.push_back(&it->second);
      }
      StatusOr<MatrixBlock> out = InvalidArgument("");
      if (msg.opcode == "tsmm" && ins.size() == 1) {
        out = TransposeSelfMatMult(*ins[0], true, 1);
      } else if (msg.opcode == "tmm" && ins.size() == 2) {
        out = TransposeLeftMatMult(*ins[0], *ins[1], 1);
      } else if (msg.opcode == "matvec" && ins.size() == 1 &&
                 !msg.payload.empty()) {
        auto v = DeserializeMatrix(msg.payload);
        if (!v.ok()) return fail(v.status().ToString());
        out = MatMult(*ins[0], *v, 1);
      } else if (msg.opcode == "colsums" && ins.size() == 1) {
        out = AggregateRowCol(AggOpCode::kSum, AggDirection::kCol, *ins[0], 1);
      } else if (msg.opcode == "scale" && ins.size() == 1) {
        out = StatusOr<MatrixBlock>(BinaryMatrixScalar(
            BinaryOpCode::kMul, *ins[0], msg.scalar, false, 1));
      } else {
        return fail("federated: unsupported opcode " + msg.opcode);
      }
      if (!out.ok()) return fail(out.status().ToString());
      if (!msg.output_name.empty()) {
        data_[msg.output_name] = *out;
      }
      resp.payload = SerializeMatrix(*out);
      return resp;
    }
    default:
      return fail("federated: bad request");
  }
}

FederatedRegistry::FederatedRegistry(int n) {
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<FederatedWorker>(i));
  }
  health_.resize(static_cast<size_t>(n));
}

int64_t FederatedRegistry::TotalBytesTransferred() const {
  int64_t total = 0;
  for (const auto& w : workers_) {
    total += w->BytesReceived() + w->BytesSent();
  }
  return total;
}

bool FederatedRegistry::SiteHealthy(int site) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_[static_cast<size_t>(site)].consecutive_call_failures <
         kCircuitBreakerThreshold;
}

bool FederatedRegistry::AdmitCall(int site, bool* probe) {
  *probe = false;
  std::lock_guard<std::mutex> lock(health_mutex_);
  SiteHealth& h = health_[static_cast<size_t>(site)];
  if (h.consecutive_call_failures < kCircuitBreakerThreshold) return true;
  if (++h.rejections_since_probe >= kHalfOpenInterval) {
    h.rejections_since_probe = 0;
    *probe = true;
    obs::Tracer::Instant("fed", "circuit_half_open");
    return true;
  }
  return false;
}

void FederatedRegistry::ReportCallResult(int site, bool ok) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  SiteHealth& h = health_[static_cast<size_t>(site)];
  if (ok) {
    if (h.consecutive_call_failures >= kCircuitBreakerThreshold) {
      obs::Tracer::Instant("fed", "circuit_close");
      h.fallback_logged = false;  // a re-degradation is worth logging again
    }
    h.consecutive_call_failures = 0;
    h.rejections_since_probe = 0;
    return;
  }
  ++h.consecutive_call_failures;
  if (h.consecutive_call_failures == kCircuitBreakerThreshold) {
    FaultMetrics().circuit_opens->Add(1);
    obs::Tracer::Instant("fed", "circuit_open");
  }
}

StatusOr<FederatedMessage> FederatedRegistry::Call(
    int site, const FederatedMessage& msg, const FedCallOptions& options) {
  if (site < 0 || site >= NumWorkers()) {
    return InvalidArgument("fed call: no such site " + std::to_string(site));
  }
  bool probe = false;
  if (!AdmitCall(site, &probe)) {
    FaultMetrics().circuit_rejections->Add(1);
    return UnavailableError("fed site " + std::to_string(site) +
                            ": circuit breaker open");
  }
  // A half-open probe gets exactly one attempt: if the site is still dead
  // it fails fast, if it recovered the success closes the breaker.
  const int max_attempts = probe ? 1 : options.max_attempts;
  FaultInjector& inj = FaultInjector::Get();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + options.overall_deadline;
  bool retried = false;
  Status last = UnavailableError("fed site " + std::to_string(site) +
                                 ": no attempts made");
  auto finish = [&](bool ok) {
    ReportCallResult(site, ok);
    if (retried) {
      FaultMetrics().retry_latency_ns->Observe(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  };
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      retried = true;
      FaultMetrics().retries->Add(1);
      // Exponential backoff with deterministic jitter, capped by both the
      // per-step cap and the overall deadline.
      int64_t backoff_ms =
          std::min<int64_t>(options.backoff_cap.count(),
                            options.backoff_base.count() << (attempt - 1));
      backoff_ms += inj.JitterMs(FaultLayer::kFederated, site, attempt,
                                 static_cast<int>(backoff_ms));
      auto wake =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(backoff_ms);
      if (wake >= deadline) {
        last = UnavailableError("fed site " + std::to_string(site) +
                                ": retry deadline exhausted after " +
                                std::to_string(attempt) + " attempts");
        break;
      }
      std::this_thread::sleep_until(wake);
    }
    if (inj.IsDead(FaultLayer::kFederated, site)) {
      FaultMetrics().timeouts->Add(1);
      last = UnavailableError("fed site " + std::to_string(site) +
                              ": request timed out (site dead)");
      continue;
    }
    if (inj.ShouldInject(FaultLayer::kFederated, site,
                         FaultKind::kMessageDrop)) {
      FaultMetrics().timeouts->Add(1);
      last = UnavailableError("fed site " + std::to_string(site) +
                              ": request timed out (message dropped)");
      continue;
    }
    if (inj.ShouldInject(FaultLayer::kFederated, site, FaultKind::kDelay)) {
      int delay_ms = inj.DelayMs();
      if (std::chrono::milliseconds(delay_ms) > options.request_timeout) {
        FaultMetrics().timeouts->Add(1);
        last = UnavailableError("fed site " + std::to_string(site) +
                                ": response exceeded request timeout");
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    FederatedMessage resp = workers_[static_cast<size_t>(site)]->Request(msg);
    if (resp.type == FederatedMessage::Type::kError) {
      // Application-level error: the transport is healthy (keeps the
      // circuit closed). Data loss surfaces retryable so callers run the
      // re-put recovery; anything else is a deterministic failure.
      finish(true);
      if (IsFederatedDataLossError(resp.error)) {
        return UnavailableError(resp.error);
      }
      return RuntimeError(resp.error);
    }
    if (!resp.payload.empty()) {
      if (inj.enabled() && inj.ShouldInject(FaultLayer::kFederated, site,
                                            FaultKind::kCorruptPayload)) {
        inj.CorruptPayload(FaultLayer::kFederated, site, &resp.payload);
      }
      Status integrity = ValidateMatrixPayload(resp.payload);
      if (!integrity.ok()) {
        FaultMetrics().corrupt_rejected->Add(1);
        last = integrity;
        continue;  // retransmit
      }
    }
    finish(true);
    return resp;
  }
  finish(false);
  return last;
}

StatusOr<FederatedMatrix> FederatedMatrix::Distribute(
    FederatedRegistry* registry, const MatrixBlock& m,
    const std::string& name) {
  FederatedMatrix fm(registry, m.Rows(), m.Cols());
  // Retain the source: it models the durable input (HDFS block / lineage
  // recompute) that failover pulls from when a site dies.
  fm.source_ = std::make_shared<const MatrixBlock>(m);
  int n = registry->NumWorkers();
  int64_t rows_per = (m.Rows() + n - 1) / n;
  for (int w = 0; w < n; ++w) {
    int64_t rb = w * rows_per;
    int64_t re = std::min<int64_t>(m.Rows(), rb + rows_per);
    if (rb >= re) break;
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part,
                           SliceMatrix(m, rb, re - 1, 0, m.Cols() - 1));
    FederatedMessage put;
    put.type = FederatedMessage::Type::kPutMatrix;
    put.output_name = name;
    put.payload = SerializeMatrix(part);
    StatusOr<FederatedMessage> resp = registry->Call(w, put);
    if (!resp.ok()) {
      if (!IsRetryable(resp.status())) return resp.status();
      // Site unreachable: record the partition anyway; every operation on
      // it will degrade to local execution from source.
      obs::Tracer::Instant("fed", "distribute_degraded");
    }
    fm.partitions_.push_back({w, rb, re, name});
  }
  return fm;
}

StatusOr<MatrixBlock> FederatedMatrix::SourceSlice(const Partition& p) const {
  if (source_ == nullptr) {
    return UnavailableError("federated: no source retained for partition of " +
                            p.var_name);
  }
  return SliceMatrix(*source_, p.row_begin, p.row_end - 1, 0, cols_ - 1);
}

Status FederatedMatrix::RePut(const Partition& p) const {
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock part, SourceSlice(p));
  FederatedMessage put;
  put.type = FederatedMessage::Type::kPutMatrix;
  put.output_name = p.var_name;
  put.payload = SerializeMatrix(part);
  SYSDS_ASSIGN_OR_RETURN(FederatedMessage resp,
                         registry_->Call(p.worker_id, put));
  (void)resp;
  FaultMetrics().reputs->Add(1);
  return Status::Ok();
}

StatusOr<MatrixBlock> FederatedMatrix::CallPartition(
    const Partition& p, const FederatedMessage& req,
    const std::function<Status()>& reput,
    const std::function<StatusOr<MatrixBlock>()>& local) const {
  // Route through Call unconditionally: its admission logic rejects on an
  // open circuit (cheaply) but also grants the periodic half-open probes
  // that rediscover a recovered site.
  StatusOr<FederatedMessage> resp = registry_->Call(p.worker_id, req);
  if (!resp.ok() && resp.status().code() == StatusCode::kUnavailable &&
      IsFederatedDataLossError(resp.status().message()) &&
      source_ != nullptr && reput != nullptr) {
    // The site is alive but lost its state (crash): re-ship the inputs
    // from source and retry the operation once.
    Status restored = reput();
    if (restored.ok()) resp = registry_->Call(p.worker_id, req);
  }
  if (resp.ok()) return DeserializeMatrix(resp->payload);
  Status last = resp.status();
  if (!IsRetryable(last)) return last;  // deterministic site error
  // Degradation ladder bottom: pull the partition local and execute in CP.
  // One-time cost per call; bit-identical because the same single-threaded
  // kernels run on the same slice the site held.
  if (source_ == nullptr) return last;
  {
    std::lock_guard<std::mutex> lock(registry_->health_mutex_);
    auto& h = registry_->health_[static_cast<size_t>(p.worker_id)];
    if (!h.fallback_logged) {
      h.fallback_logged = true;
      std::cerr << "[sysds.fed] site " << p.worker_id
                << " unavailable; executing its partitions locally in CP ("
                << last.ToString() << ")\n";
    }
  }
  FaultMetrics().local_fallbacks->Add(1);
  obs::Tracer::Instant("fed", "local_fallback");
  return local();
}

StatusOr<MatrixBlock> FederatedMatrix::TsmmLeft() const {
  MatrixBlock acc = MatrixBlock::Dense(cols_, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "tsmm";
    req.names = {p.var_name};
    SYSDS_ASSIGN_OR_RETURN(
        MatrixBlock part,
        CallPartition(
            p, req, [&] { return RePut(p); },
            [&]() -> StatusOr<MatrixBlock> {
              SYSDS_ASSIGN_OR_RETURN(MatrixBlock slice, SourceSlice(p));
              return TransposeSelfMatMult(slice, true, 1);
            }));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::Tmm(const FederatedMatrix& y) const {
  if (y.rows_ != rows_ || partitions_.size() != y.partitions_.size()) {
    return InvalidArgument("federated tmm: misaligned partitions");
  }
  MatrixBlock acc = MatrixBlock::Dense(cols_, y.cols_);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& px = partitions_[i];
    const Partition& py = y.partitions_[i];
    if (px.worker_id != py.worker_id || px.row_begin != py.row_begin) {
      return InvalidArgument("federated tmm: misaligned partitions");
    }
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "tmm";
    req.names = {px.var_name, py.var_name};
    SYSDS_ASSIGN_OR_RETURN(
        MatrixBlock part,
        CallPartition(
            px, req,
            [&]() -> Status {
              // A crash wipes every variable at the site: restore both.
              SYSDS_RETURN_IF_ERROR(RePut(px));
              return y.RePut(py);
            },
            [&]() -> StatusOr<MatrixBlock> {
              SYSDS_ASSIGN_OR_RETURN(MatrixBlock xs, SourceSlice(px));
              SYSDS_ASSIGN_OR_RETURN(MatrixBlock ys, y.SourceSlice(py));
              return TransposeLeftMatMult(xs, ys, 1);
            }));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::MatVec(const MatrixBlock& v) const {
  if (v.Rows() != cols_ || v.Cols() != 1) {
    return InvalidArgument("federated matvec: vector shape mismatch");
  }
  MatrixBlock out = MatrixBlock::Dense(rows_, 1);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "matvec";
    req.names = {p.var_name};
    req.payload = SerializeMatrix(v);
    SYSDS_ASSIGN_OR_RETURN(
        MatrixBlock part,
        CallPartition(
            p, req, [&] { return RePut(p); },
            [&]() -> StatusOr<MatrixBlock> {
              SYSDS_ASSIGN_OR_RETURN(MatrixBlock slice, SourceSlice(p));
              return MatMult(slice, v, 1);
            }));
    for (int64_t r = 0; r < part.Rows(); ++r) {
      out.DenseData()[p.row_begin + r] = part.Get(r, 0);
    }
  }
  out.MarkNnzDirty();
  return out;
}

StatusOr<MatrixBlock> FederatedMatrix::ColSums() const {
  MatrixBlock acc = MatrixBlock::Dense(1, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kExec;
    req.opcode = "colsums";
    req.names = {p.var_name};
    SYSDS_ASSIGN_OR_RETURN(
        MatrixBlock part,
        CallPartition(
            p, req, [&] { return RePut(p); },
            [&]() -> StatusOr<MatrixBlock> {
              SYSDS_ASSIGN_OR_RETURN(MatrixBlock slice, SourceSlice(p));
              return AggregateRowCol(AggOpCode::kSum, AggDirection::kCol,
                                     slice, 1);
            }));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return acc;
}

StatusOr<MatrixBlock> FederatedMatrix::Collect() const {
  MatrixBlock out = MatrixBlock::Dense(rows_, cols_);
  for (const Partition& p : partitions_) {
    FederatedMessage req;
    req.type = FederatedMessage::Type::kGetMatrix;
    req.names = {p.var_name};
    SYSDS_ASSIGN_OR_RETURN(
        MatrixBlock part,
        CallPartition(
            p, req, [&] { return RePut(p); },
            [&]() -> StatusOr<MatrixBlock> { return SourceSlice(p); }));
    for (int64_t r = 0; r < part.Rows(); ++r) {
      for (int64_t c = 0; c < cols_; ++c) {
        out.DenseRow(p.row_begin + r)[c] = part.Get(r, c);
      }
    }
  }
  out.MarkNnzDirty();
  out.ExamSparsity();
  return out;
}

StatusOr<MatrixBlock> FederatedLmDS(const FederatedMatrix& x,
                                    const FederatedMatrix& y, double reg) {
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock a, x.TsmmLeft());
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, x.Tmm(y));
  a.ToDense();
  for (int64_t i = 0; i < a.Rows(); ++i) {
    a.DenseRow(i)[i] += reg;
  }
  a.MarkNnzDirty();
  return Solve(a, b);
}

}  // namespace sysds
