#ifndef SYSDS_FED_FEDERATED_H_
#define SYSDS_FED_FEDERATED_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// A serialized federated message (request or response). All data crossing
/// a site boundary passes through these byte buffers, simulating the wire;
/// the registry counts transferred bytes so benchmarks can report exchange
/// volumes (§3.3: "adhering to exchange constraints").
struct FederatedMessage {
  enum class Type {
    kPutMatrix,   // name + matrix payload
    kGetMatrix,   // name -> matrix payload in response
    kExec,        // opcode + input names + output name (+ scalar arg)
    kResponse,
    kError,
  };
  Type type = Type::kResponse;
  std::string opcode;
  std::vector<std::string> names;
  std::string output_name;
  double scalar = 0.0;
  std::vector<uint8_t> payload;  // serialized matrix, if any
  std::string error;
};

/// Serialization of matrices onto the simulated wire. The frame carries an
/// FNV-1a checksum of the cell bytes so receivers detect truncated or
/// bit-flipped payloads (chaos mode injects both) as StatusCode::kCorrupt.
std::vector<uint8_t> SerializeMatrix(const MatrixBlock& m);
StatusOr<MatrixBlock> DeserializeMatrix(const std::vector<uint8_t>& buf);

/// Integrity check without materializing the matrix: verifies framing,
/// non-negative overflow-checked dimensions, and the checksum.
Status ValidateMatrixPayload(const std::vector<uint8_t>& buf);

/// Retry/backoff policy of one master->site call (FederatedRegistry::Call).
/// Defaults keep chaos tests fast while exercising every path: exponential
/// backoff with deterministic jitter, capped by an overall deadline.
struct FedCallOptions {
  int max_attempts = 4;
  /// Per-request timeout: an injected delay longer than this counts as a
  /// lost response (the simulated wire has no true async timeout).
  std::chrono::milliseconds request_timeout{25};
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{8};
  /// Overall deadline across all attempts and backoff sleeps.
  std::chrono::milliseconds overall_deadline{2000};
};

/// One federated site: a worker thread with private local data, processing
/// requests from its queue. Supported push-down operations keep raw data
/// local and only ship small aggregates back:
///   tsmm     : out = t(X) %*% X          (cols x cols)
///   tmm      : out = t(X) %*% Y          (cols x cols2)
///   matvec   : out = X %*% v             (local rows x 1; v shipped in)
///   colsums / colsq : column aggregates
///   scale    : out = X * scalar
///
/// Chaos mode may crash the site between requests: its in-memory variables
/// are dropped and the pending request answers with a data-loss error, after
/// which masters re-ship partitions from their durable source (the
/// simulation of recomputing from HDFS/lineage).
class FederatedWorker {
 public:
  explicit FederatedWorker(int id);
  ~FederatedWorker();

  int id() const { return id_; }

  /// Synchronous request/response over the simulated wire (thread-safe).
  /// This is the raw transport: no retries, no fault injection. Use
  /// FederatedRegistry::Call for the fault-tolerant path.
  FederatedMessage Request(FederatedMessage msg);

  int64_t BytesReceived() const { return bytes_in_; }
  int64_t BytesSent() const { return bytes_out_; }

 private:
  void Loop();
  FederatedMessage Handle(const FederatedMessage& msg);

  int id_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Single in-flight request slot (synchronous protocol).
  FederatedMessage* request_ = nullptr;
  FederatedMessage response_;
  bool has_request_ = false;
  bool has_response_ = false;
  std::condition_variable response_cv_;

  std::map<std::string, MatrixBlock> data_;
  int64_t bytes_in_ = 0;
  int64_t bytes_out_ = 0;
};

/// True for site errors meaning the variable no longer exists at the site
/// (crash wiped it); masters recover by re-shipping from source.
bool IsFederatedDataLossError(const std::string& error);

/// Owns the federated sites of one "deployment" and tracks per-site health.
class FederatedRegistry {
 public:
  /// Creates `n` workers (sites).
  explicit FederatedRegistry(int n);

  int NumWorkers() const { return static_cast<int>(workers_.size()); }
  FederatedWorker* Worker(int id) { return workers_[id].get(); }

  int64_t TotalBytesTransferred() const;

  /// Fault-tolerant request: retries transport failures (dropped/delayed/
  /// corrupted responses) with exponential backoff + jitter under an
  /// overall deadline, and feeds the per-site circuit breaker. Returns
  ///   kUnavailable — site dead, circuit open, or retries exhausted
  ///   kCorrupt     — payload still corrupt after retries
  ///   kRuntimeError— site-level application error (bad opcode etc.)
  /// Application errors caused by site data loss surface as kUnavailable
  /// with the site's error text (see IsFederatedDataLossError).
  StatusOr<FederatedMessage> Call(int site, const FederatedMessage& msg,
                                  const FedCallOptions& options = {});

  /// Circuit breaker: false once kCircuitBreakerThreshold consecutive
  /// calls (not attempts) to the site failed. While open, every
  /// kHalfOpenInterval-th rejected call is admitted as a single-attempt
  /// half-open probe (see AdmitCall), so a recovered site is rediscovered
  /// instead of being degraded forever. A healthy response closes the
  /// breaker again.
  bool SiteHealthy(int site) const;
  static constexpr int kCircuitBreakerThreshold = 3;
  static constexpr int kHalfOpenInterval = 4;

 private:
  struct SiteHealth {
    int consecutive_call_failures = 0;
    int rejections_since_probe = 0;  // counts rejections while open
    bool fallback_logged = false;
  };

  /// Admission decision for one call. Closed circuit: admit normally.
  /// Open circuit: reject, except every kHalfOpenInterval-th rejection,
  /// which is admitted with *probe=true — the caller limits it to a
  /// single attempt so probing a still-dead site stays cheap. Counting
  /// rejections (not wall time) keeps chaos runs deterministic.
  bool AdmitCall(int site, bool* probe);

  void ReportCallResult(int site, bool ok);

  std::vector<std::unique_ptr<FederatedWorker>> workers_;
  mutable std::mutex health_mutex_;
  std::vector<SiteHealth> health_;

  friend class FederatedMatrix;
};

/// A federated tensor/matrix (paper §2.4): a metadata object holding
/// references to remote partitions covering disjoint row ranges.
///
/// Fault tolerance: Distribute retains a handle to the source matrix (the
/// durable input in a real deployment). When a site is dead or a call
/// exhausts its retry budget, the operation degrades gracefully: the
/// partition's slice is pulled local and the push-down kernel runs in CP
/// with the same single-threaded kernels the site would use, so results
/// stay bit-identical to the fault-free run (one-time cost, logged once
/// per site, counted in fault.fed.local_fallbacks).
class FederatedMatrix {
 public:
  struct Partition {
    int worker_id;
    int64_t row_begin;  // inclusive
    int64_t row_end;    // exclusive
    std::string var_name;
  };

  FederatedMatrix(FederatedRegistry* registry, int64_t rows, int64_t cols)
      : registry_(registry), rows_(rows), cols_(cols) {}

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  const std::vector<Partition>& Partitions() const { return partitions_; }

  /// Creates a federated matrix by row-partitioning a local matrix across
  /// all workers of the registry (the data ships once at init). Sites that
  /// cannot be reached still get a partition entry; operations on them run
  /// in degraded local mode.
  static StatusOr<FederatedMatrix> Distribute(FederatedRegistry* registry,
                                              const MatrixBlock& m,
                                              const std::string& name);

  // Federated instructions (§3.3): push computation to the sites, combine
  // small partial results at the master.
  /// t(X) %*% X via per-site tsmm + master-side add.
  StatusOr<MatrixBlock> TsmmLeft() const;
  /// t(X) %*% Y for an aligned federated Y (e.g. labels).
  StatusOr<MatrixBlock> Tmm(const FederatedMatrix& y) const;
  /// X %*% v for a small local v (broadcast v, concatenate results).
  StatusOr<MatrixBlock> MatVec(const MatrixBlock& v) const;
  /// colSums(X).
  StatusOr<MatrixBlock> ColSums() const;
  /// Fetches and reassembles the full matrix (the "centralize" baseline —
  /// what push-down avoids).
  StatusOr<MatrixBlock> Collect() const;

 private:
  /// Row slice of the retained source for partition p.
  StatusOr<MatrixBlock> SourceSlice(const Partition& p) const;

  /// Re-ships partition p from source after a site crash wiped it.
  Status RePut(const Partition& p) const;

  /// The degradation ladder shared by all push-down ops: healthy site ->
  /// Call with retries -> crash recovery (reput + one more call) -> local
  /// CP fallback. `reput` restores every site variable the request needs;
  /// `local` computes the partition's contribution from source slices.
  StatusOr<MatrixBlock> CallPartition(
      const Partition& p, const FederatedMessage& req,
      const std::function<Status()>& reput,
      const std::function<StatusOr<MatrixBlock>()>& local) const;

  FederatedRegistry* registry_;
  int64_t rows_, cols_;
  std::vector<Partition> partitions_;
  std::shared_ptr<const MatrixBlock> source_;
};

/// Federated linear regression (closed form): solves
/// (t(X)X + reg I) B = t(X) y entirely via push-down aggregates; raw rows
/// never leave their sites.
StatusOr<MatrixBlock> FederatedLmDS(const FederatedMatrix& x,
                                    const FederatedMatrix& y, double reg);

}  // namespace sysds

#endif  // SYSDS_FED_FEDERATED_H_
