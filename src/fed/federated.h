#ifndef SYSDS_FED_FEDERATED_H_
#define SYSDS_FED_FEDERATED_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// A serialized federated message (request or response). All data crossing
/// a site boundary passes through these byte buffers, simulating the wire;
/// the registry counts transferred bytes so benchmarks can report exchange
/// volumes (§3.3: "adhering to exchange constraints").
struct FederatedMessage {
  enum class Type {
    kPutMatrix,   // name + matrix payload
    kGetMatrix,   // name -> matrix payload in response
    kExec,        // opcode + input names + output name (+ scalar arg)
    kResponse,
    kError,
  };
  Type type = Type::kResponse;
  std::string opcode;
  std::vector<std::string> names;
  std::string output_name;
  double scalar = 0.0;
  std::vector<uint8_t> payload;  // serialized matrix, if any
  std::string error;
};

/// Serialization of matrices onto the simulated wire.
std::vector<uint8_t> SerializeMatrix(const MatrixBlock& m);
StatusOr<MatrixBlock> DeserializeMatrix(const std::vector<uint8_t>& buf);

/// One federated site: a worker thread with private local data, processing
/// requests from its queue. Supported push-down operations keep raw data
/// local and only ship small aggregates back:
///   tsmm     : out = t(X) %*% X          (cols x cols)
///   tmm      : out = t(X) %*% Y          (cols x cols2)
///   matvec   : out = X %*% v             (local rows x 1; v shipped in)
///   colsums / colsq : column aggregates
///   scale    : out = X * scalar
class FederatedWorker {
 public:
  explicit FederatedWorker(int id);
  ~FederatedWorker();

  int id() const { return id_; }

  /// Synchronous request/response over the simulated wire (thread-safe).
  FederatedMessage Request(FederatedMessage msg);

  int64_t BytesReceived() const { return bytes_in_; }
  int64_t BytesSent() const { return bytes_out_; }

 private:
  void Loop();
  FederatedMessage Handle(const FederatedMessage& msg);

  int id_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Single in-flight request slot (synchronous protocol).
  FederatedMessage* request_ = nullptr;
  FederatedMessage response_;
  bool has_request_ = false;
  bool has_response_ = false;
  std::condition_variable response_cv_;

  std::map<std::string, MatrixBlock> data_;
  int64_t bytes_in_ = 0;
  int64_t bytes_out_ = 0;
};

/// Owns the federated sites of one "deployment".
class FederatedRegistry {
 public:
  /// Creates `n` workers (sites).
  explicit FederatedRegistry(int n);

  int NumWorkers() const { return static_cast<int>(workers_.size()); }
  FederatedWorker* Worker(int id) { return workers_[id].get(); }

  int64_t TotalBytesTransferred() const;

 private:
  std::vector<std::unique_ptr<FederatedWorker>> workers_;
};

/// A federated tensor/matrix (paper §2.4): a metadata object holding
/// references to remote partitions covering disjoint row ranges.
class FederatedMatrix {
 public:
  struct Partition {
    int worker_id;
    int64_t row_begin;  // inclusive
    int64_t row_end;    // exclusive
    std::string var_name;
  };

  FederatedMatrix(FederatedRegistry* registry, int64_t rows, int64_t cols)
      : registry_(registry), rows_(rows), cols_(cols) {}

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  const std::vector<Partition>& Partitions() const { return partitions_; }

  /// Creates a federated matrix by row-partitioning a local matrix across
  /// all workers of the registry (the data ships once at init).
  static StatusOr<FederatedMatrix> Distribute(FederatedRegistry* registry,
                                              const MatrixBlock& m,
                                              const std::string& name);

  // Federated instructions (§3.3): push computation to the sites, combine
  // small partial results at the master.
  /// t(X) %*% X via per-site tsmm + master-side add.
  StatusOr<MatrixBlock> TsmmLeft() const;
  /// t(X) %*% Y for an aligned federated Y (e.g. labels).
  StatusOr<MatrixBlock> Tmm(const FederatedMatrix& y) const;
  /// X %*% v for a small local v (broadcast v, concatenate results).
  StatusOr<MatrixBlock> MatVec(const MatrixBlock& v) const;
  /// colSums(X).
  StatusOr<MatrixBlock> ColSums() const;
  /// Fetches and reassembles the full matrix (the "centralize" baseline —
  /// what push-down avoids).
  StatusOr<MatrixBlock> Collect() const;

 private:
  FederatedRegistry* registry_;
  int64_t rows_, cols_;
  std::vector<Partition> partitions_;
};

/// Federated linear regression (closed form): solves
/// (t(X)X + reg I) B = t(X) y entirely via push-down aggregates; raw rows
/// never leave their sites.
StatusOr<MatrixBlock> FederatedLmDS(const FederatedMatrix& x,
                                    const FederatedMatrix& y, double reg);

}  // namespace sysds

#endif  // SYSDS_FED_FEDERATED_H_
