#ifndef SYSDS_RUNTIME_TENSOR_TENSOR_BLOCK_H_
#define SYSDS_RUNTIME_TENSOR_TENSOR_BLOCK_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace sysds {

/// A homogeneous, linearized multi-dimensional array (paper §2.4,
/// BasicTensorBlock): a single value type out of FP32/FP64/INT32/INT64/
/// Bool/String, with dense storage; a COO-style sparse representation is
/// used when the block is allocated sparse.
///
/// Cell addressing is row-major over the dims vector. The 2D FP64 case is
/// better served by MatrixBlock; TensorBlock provides the generality the
/// data model needs (conversion helpers bridge the two).
class TensorBlock {
 public:
  TensorBlock() : value_type_(ValueType::kFP64) {}
  TensorBlock(std::vector<int64_t> dims, ValueType vt);

  static StatusOr<TensorBlock> FromDoubles(std::vector<int64_t> dims,
                                           const std::vector<double>& values);

  const std::vector<int64_t>& Dims() const { return dims_; }
  int64_t NumDims() const { return static_cast<int64_t>(dims_.size()); }
  int64_t Dim(int64_t i) const { return dims_[static_cast<size_t>(i)]; }
  int64_t CellCount() const;
  ValueType GetValueType() const { return value_type_; }

  /// Linearizes a multi-dimensional index (row-major).
  int64_t LinearIndex(const std::vector<int64_t>& ix) const;

  // Typed cell access; Get/Set convert between the numeric storage types.
  double GetDouble(const std::vector<int64_t>& ix) const;
  void SetDouble(const std::vector<int64_t>& ix, double v);
  std::string GetString(const std::vector<int64_t>& ix) const;
  void SetString(const std::vector<int64_t>& ix, const std::string& v);

  double GetDoubleLinear(int64_t i) const;
  void SetDoubleLinear(int64_t i, double v);

  /// Elementwise binary op against an equal-shaped tensor; numeric types
  /// promote to the wider type (String is invalid).
  StatusOr<TensorBlock> ElementwiseBinary(const TensorBlock& other,
                                          char op) const;

  /// Full reduction (numeric types only).
  StatusOr<double> Sum() const;

  /// Slices a sub-tensor given inclusive 0-based lower/upper bounds per dim.
  StatusOr<TensorBlock> Slice(const std::vector<int64_t>& lower,
                              const std::vector<int64_t>& upper) const;

  /// Reshapes in row-major order (cell count must match).
  StatusOr<TensorBlock> Reshape(std::vector<int64_t> new_dims) const;

  int64_t EstimateSizeInBytes() const;

  bool EqualsApprox(const TensorBlock& other, double eps = 1e-9) const;

  std::string ToString() const;

 private:
  template <typename T>
  const std::vector<T>& Store() const;
  template <typename T>
  std::vector<T>& Store();

  std::vector<int64_t> dims_;
  ValueType value_type_;
  // One variant arm per supported value type (linearized dense storage).
  std::variant<std::vector<double>, std::vector<float>,
               std::vector<int64_t>, std::vector<int32_t>,
               std::vector<uint8_t>, std::vector<std::string>>
      data_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_TENSOR_TENSOR_BLOCK_H_
