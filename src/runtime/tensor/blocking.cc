#include "runtime/tensor/blocking.h"

#include <algorithm>

namespace sysds {

int64_t BlockSideForRank(int64_t num_dims) {
  // 1024^2, 128^3, 32^4, 16^5, 8^6, 8^7 (paper §2.4).
  switch (num_dims) {
    case 0:
    case 1:
    case 2: return 1024;
    case 3: return 128;
    case 4: return 32;
    case 5: return 16;
    default: return 8;
  }
}

namespace {

// Iterates an odometer over block-grid coordinates.
bool NextIndex(std::vector<int64_t>* ix, const std::vector<int64_t>& limits) {
  for (int64_t d = static_cast<int64_t>(ix->size()) - 1; d >= 0; --d) {
    if (++(*ix)[d] < limits[d]) return true;
    (*ix)[d] = 0;
  }
  return false;
}

}  // namespace

StatusOr<BlockedTensor> BlockedTensor::FromTensor(const TensorBlock& t,
                                                  int64_t block_side) {
  BlockedTensor bt;
  bt.dims_ = t.Dims();
  bt.value_type_ = t.GetValueType();
  bt.block_side_ = block_side > 0 ? block_side : BlockSideForRank(t.NumDims());
  int64_t nd = t.NumDims();
  if (nd == 0) return InvalidArgument("cannot block a rank-0 tensor");

  std::vector<int64_t> grid(nd);
  for (int64_t d = 0; d < nd; ++d) {
    grid[d] = (t.Dim(d) + bt.block_side_ - 1) / bt.block_side_;
    if (grid[d] == 0) grid[d] = 1;
  }
  std::vector<int64_t> bix(nd, 0);
  do {
    std::vector<int64_t> lower(nd), upper(nd);
    bool empty = false;
    for (int64_t d = 0; d < nd; ++d) {
      lower[d] = bix[d] * bt.block_side_;
      upper[d] = std::min(t.Dim(d), lower[d] + bt.block_side_) - 1;
      if (upper[d] < lower[d]) empty = true;
    }
    if (!empty) {
      SYSDS_ASSIGN_OR_RETURN(TensorBlock blk, t.Slice(lower, upper));
      bt.blocks_.emplace(bix, std::move(blk));
    }
  } while (NextIndex(&bix, grid));
  return bt;
}

StatusOr<TensorBlock> BlockedTensor::ToTensor() const {
  TensorBlock out(dims_, value_type_);
  int64_t nd = static_cast<int64_t>(dims_.size());
  for (const auto& [bix, blk] : blocks_) {
    // Copy each block cell into the global tensor.
    std::vector<int64_t> ix(static_cast<size_t>(nd), 0);
    const std::vector<int64_t>& bdims = blk.Dims();
    int64_t cells = blk.CellCount();
    for (int64_t i = 0; i < cells; ++i) {
      std::vector<int64_t> gix(static_cast<size_t>(nd));
      for (int64_t d = 0; d < nd; ++d) {
        gix[d] = bix[d] * block_side_ + ix[d];
      }
      if (value_type_ == ValueType::kString) {
        out.SetString(gix, blk.GetString(ix));
      } else {
        out.SetDouble(gix, blk.GetDouble(ix));
      }
      for (int64_t d = nd - 1; d >= 0; --d) {
        if (++ix[d] < bdims[d]) break;
        ix[d] = 0;
      }
    }
  }
  return out;
}

StatusOr<BlockedTensor> BlockedTensor::Reblock(int64_t new_side) const {
  if (new_side <= 0) return InvalidArgument("reblock: invalid block side");
  if (new_side < block_side_ && block_side_ % new_side != 0) {
    return InvalidArgument(
        "reblock: only integer split ratios supported (local conversion)");
  }
  if (new_side > block_side_ && new_side % block_side_ != 0) {
    return InvalidArgument(
        "reblock: only integer merge ratios supported (local conversion)");
  }
  // Local conversion: materialize and re-split. For the split case this
  // never shuffles data across source blocks, which is the property the
  // paper's scheme is designed for; we exploit it by keeping the code
  // simple (block-local slicing happens inside FromTensor).
  SYSDS_ASSIGN_OR_RETURN(TensorBlock full, ToTensor());
  return FromTensor(full, new_side);
}

}  // namespace sysds
