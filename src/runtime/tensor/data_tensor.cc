#include "runtime/tensor/data_tensor.h"

#include <sstream>

namespace sysds {

StatusOr<DataTensorBlock> DataTensorBlock::Create(
    std::vector<int64_t> dims, std::vector<ValueType> schema) {
  if (dims.size() < 2) {
    return InvalidArgument("data tensor requires at least 2 dimensions");
  }
  if (dims[1] != static_cast<int64_t>(schema.size())) {
    return InvalidArgument(
        "data tensor schema size must equal the second dimension");
  }
  DataTensorBlock t;
  t.dims_ = std::move(dims);
  t.schema_ = std::move(schema);
  // Per-column basic tensors with the schema dimension removed.
  std::vector<int64_t> col_dims;
  for (size_t d = 0; d < t.dims_.size(); ++d) {
    if (d != 1) col_dims.push_back(t.dims_[d]);
  }
  t.columns_.reserve(t.schema_.size());
  for (ValueType vt : t.schema_) {
    t.columns_.emplace_back(col_dims, vt);
  }
  return t;
}

std::vector<int64_t> DataTensorBlock::ColumnIndex(
    const std::vector<int64_t>& ix) const {
  std::vector<int64_t> out;
  out.reserve(ix.size() - 1);
  for (size_t d = 0; d < ix.size(); ++d) {
    if (d != 1) out.push_back(ix[d]);
  }
  return out;
}

double DataTensorBlock::GetDouble(const std::vector<int64_t>& ix) const {
  return columns_[ix[1]].GetDouble(ColumnIndex(ix));
}

void DataTensorBlock::SetDouble(const std::vector<int64_t>& ix, double v) {
  columns_[ix[1]].SetDouble(ColumnIndex(ix), v);
}

std::string DataTensorBlock::GetString(const std::vector<int64_t>& ix) const {
  return columns_[ix[1]].GetString(ColumnIndex(ix));
}

void DataTensorBlock::SetString(const std::vector<int64_t>& ix,
                                const std::string& v) {
  columns_[ix[1]].SetString(ColumnIndex(ix), v);
}

int64_t DataTensorBlock::EstimateSizeInBytes() const {
  int64_t total = 64;
  for (const TensorBlock& c : columns_) total += c.EstimateSizeInBytes();
  return total;
}

std::string DataTensorBlock::ToString() const {
  std::ostringstream os;
  os << "data_tensor(";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d > 0) os << "x";
    os << dims_[d];
  }
  os << ", schema=[";
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) os << ",";
    os << ValueTypeName(schema_[c]);
  }
  os << "])";
  return os.str();
}

}  // namespace sysds
