#include "runtime/tensor/tensor_block.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace sysds {

namespace {
int64_t Product(const std::vector<int64_t>& dims) {
  int64_t p = 1;
  for (int64_t d : dims) p *= d;
  return p;
}
}  // namespace

TensorBlock::TensorBlock(std::vector<int64_t> dims, ValueType vt)
    : dims_(std::move(dims)), value_type_(vt) {
  size_t n = static_cast<size_t>(Product(dims_));
  switch (vt) {
    case ValueType::kFP64: data_ = std::vector<double>(n, 0.0); break;
    case ValueType::kFP32: data_ = std::vector<float>(n, 0.0f); break;
    case ValueType::kInt64: data_ = std::vector<int64_t>(n, 0); break;
    case ValueType::kInt32: data_ = std::vector<int32_t>(n, 0); break;
    case ValueType::kBoolean: data_ = std::vector<uint8_t>(n, 0); break;
    case ValueType::kString: data_ = std::vector<std::string>(n); break;
    case ValueType::kUnknown:
      value_type_ = ValueType::kFP64;
      data_ = std::vector<double>(n, 0.0);
      break;
  }
}

StatusOr<TensorBlock> TensorBlock::FromDoubles(
    std::vector<int64_t> dims, const std::vector<double>& values) {
  if (Product(dims) != static_cast<int64_t>(values.size())) {
    return InvalidArgument("tensor dims do not match value count");
  }
  TensorBlock t(std::move(dims), ValueType::kFP64);
  std::get<std::vector<double>>(t.data_) = values;
  return t;
}

int64_t TensorBlock::CellCount() const { return Product(dims_); }

int64_t TensorBlock::LinearIndex(const std::vector<int64_t>& ix) const {
  int64_t lin = 0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    lin = lin * dims_[d] + ix[d];
  }
  return lin;
}

double TensorBlock::GetDoubleLinear(int64_t i) const {
  switch (value_type_) {
    case ValueType::kFP64: return std::get<std::vector<double>>(data_)[i];
    case ValueType::kFP32: return std::get<std::vector<float>>(data_)[i];
    case ValueType::kInt64:
      return static_cast<double>(std::get<std::vector<int64_t>>(data_)[i]);
    case ValueType::kInt32:
      return static_cast<double>(std::get<std::vector<int32_t>>(data_)[i]);
    case ValueType::kBoolean:
      return static_cast<double>(std::get<std::vector<uint8_t>>(data_)[i]);
    case ValueType::kString: {
      const std::string& s = std::get<std::vector<std::string>>(data_)[i];
      return s.empty() ? 0.0 : std::stod(s);
    }
    default: return 0.0;
  }
}

void TensorBlock::SetDoubleLinear(int64_t i, double v) {
  switch (value_type_) {
    case ValueType::kFP64: std::get<std::vector<double>>(data_)[i] = v; break;
    case ValueType::kFP32:
      std::get<std::vector<float>>(data_)[i] = static_cast<float>(v);
      break;
    case ValueType::kInt64:
      std::get<std::vector<int64_t>>(data_)[i] = static_cast<int64_t>(v);
      break;
    case ValueType::kInt32:
      std::get<std::vector<int32_t>>(data_)[i] = static_cast<int32_t>(v);
      break;
    case ValueType::kBoolean:
      std::get<std::vector<uint8_t>>(data_)[i] = (v != 0.0) ? 1 : 0;
      break;
    case ValueType::kString: {
      std::ostringstream os;
      os << v;
      std::get<std::vector<std::string>>(data_)[i] = os.str();
      break;
    }
    default: break;
  }
}

double TensorBlock::GetDouble(const std::vector<int64_t>& ix) const {
  return GetDoubleLinear(LinearIndex(ix));
}

void TensorBlock::SetDouble(const std::vector<int64_t>& ix, double v) {
  SetDoubleLinear(LinearIndex(ix), v);
}

std::string TensorBlock::GetString(const std::vector<int64_t>& ix) const {
  int64_t i = LinearIndex(ix);
  if (value_type_ == ValueType::kString) {
    return std::get<std::vector<std::string>>(data_)[i];
  }
  std::ostringstream os;
  os << GetDoubleLinear(i);
  return os.str();
}

void TensorBlock::SetString(const std::vector<int64_t>& ix,
                            const std::string& v) {
  int64_t i = LinearIndex(ix);
  if (value_type_ == ValueType::kString) {
    std::get<std::vector<std::string>>(data_)[i] = v;
  } else {
    SetDoubleLinear(i, v.empty() ? 0.0 : std::stod(v));
  }
}

StatusOr<TensorBlock> TensorBlock::ElementwiseBinary(const TensorBlock& other,
                                                     char op) const {
  if (dims_ != other.dims_) {
    return InvalidArgument("tensor elementwise op: shape mismatch");
  }
  if (value_type_ == ValueType::kString ||
      other.value_type_ == ValueType::kString) {
    return InvalidArgument("tensor elementwise op: string tensors invalid");
  }
  // Numeric promotion: FP64 > FP32 > INT64 > INT32 > BOOL.
  auto rank = [](ValueType vt) {
    switch (vt) {
      case ValueType::kFP64: return 5;
      case ValueType::kFP32: return 4;
      case ValueType::kInt64: return 3;
      case ValueType::kInt32: return 2;
      case ValueType::kBoolean: return 1;
      default: return 0;
    }
  };
  ValueType out_vt =
      rank(value_type_) >= rank(other.value_type_) ? value_type_
                                                   : other.value_type_;
  if (op == '/') out_vt = ValueType::kFP64;
  TensorBlock out(dims_, out_vt);
  int64_t n = CellCount();
  for (int64_t i = 0; i < n; ++i) {
    double a = GetDoubleLinear(i), b = other.GetDoubleLinear(i);
    double v;
    switch (op) {
      case '+': v = a + b; break;
      case '-': v = a - b; break;
      case '*': v = a * b; break;
      case '/': v = a / b; break;
      default: return InvalidArgument("unsupported tensor op");
    }
    out.SetDoubleLinear(i, v);
  }
  return out;
}

StatusOr<double> TensorBlock::Sum() const {
  if (value_type_ == ValueType::kString) {
    return InvalidArgument("sum of string tensor");
  }
  double s = 0.0, corr = 0.0;
  int64_t n = CellCount();
  for (int64_t i = 0; i < n; ++i) {
    double y = GetDoubleLinear(i) - corr;
    double t = s + y;
    corr = (t - s) - y;
    s = t;
  }
  return s;
}

StatusOr<TensorBlock> TensorBlock::Slice(
    const std::vector<int64_t>& lower,
    const std::vector<int64_t>& upper) const {
  if (lower.size() != dims_.size() || upper.size() != dims_.size()) {
    return InvalidArgument("tensor slice: bounds rank mismatch");
  }
  std::vector<int64_t> out_dims(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (lower[d] < 0 || upper[d] >= dims_[d] || lower[d] > upper[d]) {
      return OutOfRange("tensor slice out of bounds");
    }
    out_dims[d] = upper[d] - lower[d] + 1;
  }
  TensorBlock out(out_dims, value_type_);
  // Odometer iteration over the output cells.
  std::vector<int64_t> ix(dims_.size(), 0);
  int64_t n = out.CellCount();
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> src(dims_.size());
    for (size_t d = 0; d < dims_.size(); ++d) src[d] = lower[d] + ix[d];
    if (value_type_ == ValueType::kString) {
      out.SetString(ix, GetString(src));
    } else {
      out.SetDouble(ix, GetDouble(src));
    }
    // Increment odometer.
    for (int64_t d = static_cast<int64_t>(dims_.size()) - 1; d >= 0; --d) {
      if (++ix[d] < out_dims[d]) break;
      ix[d] = 0;
    }
  }
  return out;
}

StatusOr<TensorBlock> TensorBlock::Reshape(std::vector<int64_t> new_dims) const {
  if (Product(new_dims) != CellCount()) {
    return InvalidArgument("tensor reshape cell count mismatch");
  }
  TensorBlock out = *this;
  out.dims_ = std::move(new_dims);
  return out;
}

int64_t TensorBlock::EstimateSizeInBytes() const {
  int64_t base = CellCount() * ValueTypeSize(value_type_) + 64;
  if (value_type_ == ValueType::kString) {
    for (const std::string& s : std::get<std::vector<std::string>>(data_)) {
      base += static_cast<int64_t>(s.size());
    }
  }
  return base;
}

bool TensorBlock::EqualsApprox(const TensorBlock& other, double eps) const {
  if (dims_ != other.dims_) return false;
  int64_t n = CellCount();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(GetDoubleLinear(i) - other.GetDoubleLinear(i)) > eps) {
      return false;
    }
  }
  return true;
}

std::string TensorBlock::ToString() const {
  std::ostringstream os;
  os << "tensor(";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d > 0) os << "x";
    os << dims_[d];
  }
  os << ", " << ValueTypeName(value_type_) << ")";
  return os.str();
}

}  // namespace sysds
