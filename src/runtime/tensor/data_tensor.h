#ifndef SYSDS_RUNTIME_TENSOR_DATA_TENSOR_H_
#define SYSDS_RUNTIME_TENSOR_DATA_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "runtime/tensor/tensor_block.h"

namespace sysds {

/// Heterogeneous tensor (paper §2.4, DataTensorBlock / Figure 4(a)): a
/// multi-dimensional array with a schema on the *second* dimension. Each
/// schema column holds a basic tensor of shape dims with dim2==1, i.e. the
/// data tensor is composed of per-column homogeneous tensors — exactly the
/// composition the paper describes.
class DataTensorBlock {
 public:
  DataTensorBlock() = default;

  /// dims[1] must equal schema.size().
  static StatusOr<DataTensorBlock> Create(std::vector<int64_t> dims,
                                          std::vector<ValueType> schema);

  const std::vector<int64_t>& Dims() const { return dims_; }
  int64_t NumDims() const { return static_cast<int64_t>(dims_.size()); }
  const std::vector<ValueType>& Schema() const { return schema_; }

  /// Access by full index; the second coordinate selects the schema column.
  double GetDouble(const std::vector<int64_t>& ix) const;
  void SetDouble(const std::vector<int64_t>& ix, double v);
  std::string GetString(const std::vector<int64_t>& ix) const;
  void SetString(const std::vector<int64_t>& ix, const std::string& v);

  /// The homogeneous basic tensor backing one schema column.
  const TensorBlock& Column(int64_t c) const { return columns_[c]; }
  TensorBlock& MutableColumn(int64_t c) { return columns_[c]; }

  int64_t EstimateSizeInBytes() const;

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
  std::vector<ValueType> schema_;
  std::vector<TensorBlock> columns_;

  // Maps a data-tensor index to the per-column tensor index (drops dim 2).
  std::vector<int64_t> ColumnIndex(const std::vector<int64_t>& ix) const;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_TENSOR_DATA_TENSOR_H_
