#ifndef SYSDS_RUNTIME_TENSOR_BLOCKING_H_
#define SYSDS_RUNTIME_TENSOR_BLOCKING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "runtime/tensor/tensor_block.h"

namespace sysds {

/// The paper's n-dimensional fixed-size blocking scheme (§2.4): block side
/// lengths decrease exponentially with the number of dimensions —
/// 1024² , 128³ , 32⁴ , 16⁵ , 8⁶ , 8⁷ — which bounds block sizes to a few
/// megabytes and permits local conversion between blockings (e.g. one 1024²
/// matrix block splits into 8x8=64 aligned 128² tiles of a 128³ blocking).
int64_t BlockSideForRank(int64_t num_dims);

/// Index of a block within a blocked tensor (one coordinate per dimension).
using BlockIndex = std::vector<int64_t>;

/// A tensor partitioned into fixed-size, independently encoded blocks — the
/// in-process analogue of the paper's
/// PairRDD<TensorIndexes, TensorBlock>.
class BlockedTensor {
 public:
  BlockedTensor() = default;

  /// Splits a tensor into aligned blocks of the rank-appropriate side
  /// length (or an explicit side for testing).
  static StatusOr<BlockedTensor> FromTensor(const TensorBlock& t,
                                            int64_t block_side = 0);

  /// Reassembles the full tensor.
  StatusOr<TensorBlock> ToTensor() const;

  /// Converts to a different block side length via local split/merge. Only
  /// integer ratios are supported (e.g. 1024 -> 128), which is what the
  /// exponentially decreasing scheme guarantees.
  StatusOr<BlockedTensor> Reblock(int64_t new_side) const;

  const std::vector<int64_t>& Dims() const { return dims_; }
  int64_t BlockSide() const { return block_side_; }
  int64_t NumBlocks() const { return static_cast<int64_t>(blocks_.size()); }

  const std::map<BlockIndex, TensorBlock>& Blocks() const { return blocks_; }

 private:
  std::vector<int64_t> dims_;
  int64_t block_side_ = 0;
  ValueType value_type_ = ValueType::kFP64;
  std::map<BlockIndex, TensorBlock> blocks_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_TENSOR_BLOCKING_H_
