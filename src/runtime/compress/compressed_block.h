#ifndef SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_
#define SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

struct CompressionPlan;

/// Column-group encodings (paper §3.4, after Elgohary et al., "Compressed
/// Linear Algebra for Large-Scale Machine Learning"):
///  - kDDC1/kDDC2: dense dictionary coding, one code per row (1 or 2 bytes)
///    indexing a dictionary of distinct value tuples.
///  - kRLE: run-length encoding of the code sequence — runs of identical
///    tuples store one (start, code) pair per run.
///  - kSDC: sparse dictionary coding — a default tuple covers most rows and
///    only the exception rows store (row, code) pairs.
///  - kUncompressed: plain column-major values (high-cardinality or
///    NaN-containing columns; NaN breaks dictionary ordering, see Compress).
enum class ColEncoding : uint8_t {
  kUncompressed = 0,
  kDDC1 = 1,
  kDDC2 = 2,
  kRLE = 3,
  kSDC = 4,
};

const char* ColEncodingName(ColEncoding e);

/// A group of adjacent columns sharing one dictionary of value tuples
/// (co-coding). Groups always cover a contiguous, ascending column range so
/// that iterating groups in order visits global columns in ascending order —
/// the compressed kernels rely on this to replay the uncompressed kernels'
/// per-cell accumulation order exactly (see RightMatMult).
struct ColGroup {
  ColEncoding encoding = ColEncoding::kUncompressed;
  std::vector<int64_t> cols;   // ascending, contiguous global column ids
  // Dictionary: NumValues() tuples of NumCols() doubles, row-major.
  std::vector<double> dict;
  std::vector<uint8_t> codes8;     // kDDC1: one code per row
  std::vector<uint16_t> codes16;   // kDDC2
  std::vector<int64_t> run_starts; // kRLE: ascending; run i spans
                                   // [run_starts[i], run_starts[i+1])
  std::vector<uint16_t> run_codes;
  std::vector<int64_t> sdc_rows;   // kSDC: sorted exception rows
  std::vector<uint16_t> sdc_codes;
  uint16_t sdc_default = 0;        // kSDC: dictionary index of the default
  std::vector<double> values;      // kUncompressed: column-major values
  // Per local column: true if any cell is NaN/Inf. Operand-side zero
  // skipping (e.g. v[c] == 0 in a right-multiply) is only safe for columns
  // of finite values — 0 * Inf must still produce NaN.
  std::vector<uint8_t> col_has_nonfinite;

  int64_t NumCols() const { return static_cast<int64_t>(cols.size()); }
  int64_t NumValues() const {
    return cols.empty() ? 0 : static_cast<int64_t>(dict.size()) / NumCols();
  }
  bool IsCompressed() const { return encoding != ColEncoding::kUncompressed; }
  /// Payload bytes of this group's arrays (buffer-pool accounting).
  int64_t SizeInBytes() const;
};

/// Direct-encode construction of a dictionary-coded group, bypassing the
/// sampling planner: the producer (transformencode's direct-to-compressed
/// sink) already knows the exact dictionary and per-row codes — recode
/// codes *are* DDC codes. `dict` holds row-major tuples over `cols`;
/// `codes[r]` indexes a tuple and every code must be < the tuple count,
/// which must be <= 65536. Picks kDDC1/kDDC2 from the dictionary size and
/// derives nnz (accumulated into *nnz_out) and the per-column nonfinite
/// flags from the dictionary alone.
StatusOr<ColGroup> BuildDdcGroupFromCodes(std::vector<int64_t> cols,
                                          std::vector<double> dict,
                                          const uint16_t* codes, int64_t rows,
                                          int64_t* nnz_out);

/// Uncompressed fallback group from column-major values (`rows` cells per
/// column); computes nnz (into *nnz_out) and the nonfinite flags by scan.
ColGroup BuildUncompressedGroup(std::vector<int64_t> cols,
                                std::vector<double> values, int64_t rows,
                                int64_t* nnz_out);

/// Lossless compressed matrix (paper §3.4): a list of column groups, each
/// with its own encoding. Key linear-algebra operations execute directly on
/// the compressed representation — value-indexed pre-aggregation turns
/// O(rows) work into O(#distinct) per group where possible — without
/// decompressing. Per-row kernels (Decompress, RightMatMult) replay the
/// uncompressed kernels' per-cell operation order and zero handling, so
/// their results are bit-identical to the uncompressed path; dictionary-
/// aggregated kernels (Sum, LeftMatMult, TsmmLeft) reassociate adds and are
/// deterministic but only approximately equal.
class CompressedMatrixBlock {
 public:
  /// Compresses a matrix with the default planner settings. Every column is
  /// kept (columns that do not pay off become uncompressed groups); use the
  /// planner's `worthwhile` gate to decide whether to compress at all.
  static CompressedMatrixBlock Compress(const MatrixBlock& m);

  /// Compresses following a planner-produced group layout; groups are built
  /// in parallel. The plan's encodings are hints from sampled estimates: the
  /// exact per-group scan upgrades DDC1->DDC2 when the true distinct count
  /// exceeds 255 and falls back to uncompressed on NaN or >65535 distinct.
  static CompressedMatrixBlock Compress(const MatrixBlock& m,
                                        const CompressionPlan& plan,
                                        int num_threads);

  /// Reassembles a block from deserialized parts (compress_io).
  static CompressedMatrixBlock FromParts(int64_t rows, int64_t cols,
                                         int64_t nnz,
                                         std::vector<ColGroup> groups);

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  int64_t NonZeros() const { return nnz_; }

  /// Ratio of uncompressed (dense) size to compressed size; > 1 means the
  /// compression pays off.
  double CompressionRatio() const;
  int64_t EstimateSizeInBytes() const;

  /// Number of dictionary-coded columns (vs. uncompressed fallbacks).
  int64_t NumCompressedColumns() const;
  int64_t NumColGroups() const { return static_cast<int64_t>(groups_.size()); }
  /// True when no group fell back to uncompressed storage (the compressed
  /// tsmm kernel requires this).
  bool AllGroupsCompressed() const;

  const std::vector<ColGroup>& Groups() const { return groups_; }

  /// Reconstructs the uncompressed matrix (row-chunk parallel).
  MatrixBlock Decompress(int num_threads = 1) const;

  double Get(int64_t r, int64_t c) const;

  // ---- compressed operations (no decompression) ----

  /// sum(X): per-code counts times the dictionary (value-indexed
  /// pre-aggregation). Deterministic; approximately equal to the Kahan
  /// uncompressed aggregate.
  double Sum(int num_threads = 1) const;

  /// colSums(X) as 1 x cols.
  MatrixBlock ColSums() const;

  /// Full aggregate to a scalar for the dictionary-friendly subset
  /// (kSum, kMean, kNnz exact-count, kMin, kMax); Unimplemented otherwise
  /// (callers decompress and retry).
  StatusOr<double> Aggregate(AggOpCode op) const;

  /// Column aggregate (1 x cols) for kSum, kMean, kNnz, kMin, kMax.
  StatusOr<MatrixBlock> AggregateCols(AggOpCode op) const;

  /// X %*% b: dictionaries are pre-scaled where possible and codes index
  /// the scaled dictionary. Per-cell accumulation order and zero handling
  /// match the dense tiled GEMM kernel exactly, so the result is
  /// bit-identical to MatMult on the decompressed input.
  StatusOr<MatrixBlock> RightMatMult(const MatrixBlock& b,
                                     int num_threads = 1) const;

  /// X %*% v for v of shape cols x 1 (compat wrapper over RightMatMult).
  StatusOr<MatrixBlock> MatVecRight(const MatrixBlock& v) const {
    return RightMatMult(v, 1);
  }

  /// t(X) %*% b for b of shape rows x n: b-rows accumulate into per-code
  /// buckets (value-indexed aggregation), then one dictionary contraction
  /// per group.
  StatusOr<MatrixBlock> LeftMatMult(const MatrixBlock& b,
                                    int num_threads = 1) const;

  /// t(X) %*% y compat wrapper over LeftMatMult.
  StatusOr<MatrixBlock> VecMatLeft(const MatrixBlock& y) const {
    return LeftMatMult(y, 1);
  }

  /// t(X) %*% X via per-group-pair code co-occurrence counts contracted
  /// with the dictionaries: O(rows * pairs) counting plus O(di * dj) per
  /// pair, independent of the output size. Requires AllGroupsCompressed();
  /// Unimplemented otherwise (callers decompress and retry).
  StatusOr<MatrixBlock> TsmmLeft(int num_threads = 1) const;

  /// X * scalar executed on dictionaries only (O(#distinct) per group).
  CompressedMatrixBlock ScaleByScalar(double s) const;

 private:
  int64_t rows_ = 0, cols_ = 0;
  int64_t nnz_ = 0;
  std::vector<ColGroup> groups_;
  // col_to_group_[c] = index into groups_ owning global column c.
  std::vector<int32_t> col_to_group_;

  void RebuildColIndex();
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_
