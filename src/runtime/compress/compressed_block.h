#ifndef SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_
#define SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Lossless compressed linear algebra (paper §3.4, after Elgohary et al.,
/// "Compressed Linear Algebra for Large-Scale Machine Learning"): columns
/// with few distinct values are stored as a per-column dictionary plus a
/// dense code array (DDC-1: one byte per cell); high-cardinality columns
/// fall back to uncompressed storage. Key linear-algebra operations execute
/// directly on the compressed representation — value-indexed pre-
/// aggregation turns O(rows) work into O(#distinct) per column where
/// possible — without decompressing.
class CompressedMatrixBlock {
 public:
  /// Compresses a matrix column-by-column. Columns with more than 255
  /// distinct values stay uncompressed.
  static CompressedMatrixBlock Compress(const MatrixBlock& m);

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }

  /// Ratio of uncompressed (dense) size to compressed size; > 1 means the
  /// compression pays off.
  double CompressionRatio() const;
  int64_t EstimateSizeInBytes() const;

  /// Number of dictionary-coded columns (vs. uncompressed fallbacks).
  int64_t NumCompressedColumns() const;

  /// Reconstructs the uncompressed matrix.
  MatrixBlock Decompress() const;

  double Get(int64_t r, int64_t c) const;

  // ---- compressed operations (no decompression) ----

  /// sum(X): per DDC column, counts per code value times the dictionary.
  double Sum() const;

  /// colSums(X) as 1 x cols.
  MatrixBlock ColSums() const;

  /// X %*% v for v of shape cols x 1: per DDC column the dictionary is
  /// pre-scaled by v[c], then codes index the scaled dictionary.
  StatusOr<MatrixBlock> MatVecRight(const MatrixBlock& v) const;

  /// t(X) %*% y for y of shape rows x 1: per DDC column, y-values
  /// accumulate into per-code buckets (value-indexed aggregation).
  StatusOr<MatrixBlock> VecMatLeft(const MatrixBlock& y) const;

  /// X * scalar executed on dictionaries only (O(#distinct) per column).
  CompressedMatrixBlock ScaleByScalar(double s) const;

 private:
  struct ColGroup {
    bool compressed = false;
    std::vector<double> dict;      // distinct values (DDC)
    std::vector<uint8_t> codes;    // rows entries indexing dict
    std::vector<double> values;    // uncompressed fallback (rows entries)
  };

  int64_t rows_ = 0, cols_ = 0;
  std::vector<ColGroup> groups_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_COMPRESS_COMPRESSED_BLOCK_H_
