#include "runtime/compress/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace sysds {

namespace {

// Fixed per-group overhead charged to every compressed candidate so that
// marginal wins on tiny columns do not flip the decision.
constexpr double kGroupOverheadBytes = 64.0;
constexpr int64_t kMaxDistinct = 65535;  // DDC2 code domain

// Deterministic sample row indices: up to 16 contiguous segments spread
// evenly over the rows. `segment_of[i]` identifies the segment of sample
// position i so run estimation only counts within-segment adjacencies.
void BuildSampleRows(int64_t rows, int64_t sample_rows,
                     std::vector<int64_t>* sample,
                     std::vector<int32_t>* segment_of) {
  int64_t s = std::min(rows, std::max<int64_t>(1, sample_rows));
  int64_t segments = std::min<int64_t>(16, std::max<int64_t>(1, s / 128));
  int64_t seg_len = (s + segments - 1) / segments;
  int64_t stride = rows <= seg_len * segments
                       ? seg_len
                       : (rows - seg_len) / std::max<int64_t>(1, segments - 1);
  sample->clear();
  segment_of->clear();
  for (int64_t seg = 0; seg < segments && static_cast<int64_t>(sample->size()) < s;
       ++seg) {
    int64_t start = std::min(seg * stride, rows - seg_len);
    start = std::max<int64_t>(0, start);
    for (int64_t r = start;
         r < std::min(rows, start + seg_len) &&
         static_cast<int64_t>(sample->size()) < s;
         ++r) {
      // Overlapping segments on tiny inputs would double-count rows.
      if (!sample->empty() && sample->back() >= r) continue;
      sample->push_back(r);
      segment_of->push_back(static_cast<int32_t>(seg));
    }
  }
}

// Chao-style scale-up of the sampled distinct count: values seen exactly
// once in the sample predict further unseen values in the unsampled rows.
int64_t EstimateDistinct(int64_t d_sample, int64_t f1, int64_t rows,
                         int64_t sampled) {
  if (sampled <= 0) return 0;
  if (sampled >= rows) return d_sample;
  double est = static_cast<double>(d_sample) +
               static_cast<double>(f1) *
                   (static_cast<double>(rows - sampled) / sampled);
  return std::min<int64_t>(
      rows, std::max<int64_t>(d_sample, static_cast<int64_t>(est)));
}

struct ColumnStats {
  bool has_nan = false;
  int64_t d_sample = 0;
  int64_t est_distinct = 0;
  int64_t est_runs = 0;
  double default_share = 0;          // sampled frequency of the mode
  std::vector<int32_t> sample_codes; // sample-local dictionary codes
};

ColumnStats ScanColumn(const MatrixBlock& m, int64_t col,
                       const std::vector<int64_t>& sample,
                       const std::vector<int32_t>& segment_of) {
  ColumnStats st;
  std::unordered_map<double, int64_t> counts;
  std::unordered_map<double, int32_t> codes;
  st.sample_codes.reserve(sample.size());
  int64_t changes = 0, adjacent = 0;
  double prev = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    double v = m.Get(sample[i], col);
    if (std::isnan(v)) {
      st.has_nan = true;
      return st;
    }
    auto inserted = codes.emplace(v, static_cast<int32_t>(codes.size()));
    st.sample_codes.push_back(inserted.first->second);
    ++counts[v];
    if (i > 0 && segment_of[i] == segment_of[i - 1]) {
      ++adjacent;
      if (v != prev) ++changes;
    }
    prev = v;
  }
  st.d_sample = static_cast<int64_t>(counts.size());
  int64_t f1 = 0, max_count = 0;
  for (const auto& kv : counts) {
    if (kv.second == 1) ++f1;
    max_count = std::max(max_count, kv.second);
  }
  int64_t rows = m.Rows();
  int64_t sampled = static_cast<int64_t>(sample.size());
  st.est_distinct = EstimateDistinct(st.d_sample, f1, rows, sampled);
  st.est_runs =
      1 + (adjacent > 0 ? changes * std::max<int64_t>(0, rows - 1) / adjacent
                        : (st.d_sample > 1 ? rows : 0));
  st.default_share =
      sampled > 0 ? static_cast<double>(max_count) / sampled : 0.0;
  return st;
}

// Estimated bytes of one encoding for a (possibly co-coded) group. Returns
// infinity when the encoding cannot represent the group.
double EncodingBytes(ColEncoding e, int64_t rows, int64_t ncols,
                     int64_t distinct, int64_t runs, double default_share) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double dict = static_cast<double>(distinct) * ncols * 8;
  switch (e) {
    case ColEncoding::kUncompressed:
      return static_cast<double>(rows) * ncols * 8;
    case ColEncoding::kDDC1:
      if (distinct > 255) return kInf;
      return kGroupOverheadBytes + rows * 1.0 + dict;
    case ColEncoding::kDDC2:
      if (distinct > kMaxDistinct) return kInf;
      return kGroupOverheadBytes + rows * 2.0 + dict;
    case ColEncoding::kRLE:
      if (distinct > kMaxDistinct || ncols != 1) return kInf;
      return kGroupOverheadBytes + static_cast<double>(runs) * 10.0 + dict;
    case ColEncoding::kSDC:
      if (distinct > kMaxDistinct || ncols != 1) return kInf;
      return kGroupOverheadBytes +
             (1.0 - default_share) * rows * 10.0 + dict;
  }
  return kInf;
}

struct Candidate {
  ColEncoding encoding = ColEncoding::kUncompressed;
  double bytes = 0;
};

Candidate BestEncoding(int64_t rows, int64_t ncols, int64_t distinct,
                       int64_t runs, double default_share) {
  Candidate best{ColEncoding::kUncompressed,
                 EncodingBytes(ColEncoding::kUncompressed, rows, ncols,
                               distinct, runs, default_share)};
  for (ColEncoding e : {ColEncoding::kDDC1, ColEncoding::kDDC2,
                        ColEncoding::kRLE, ColEncoding::kSDC}) {
    double b = EncodingBytes(e, rows, ncols, distinct, runs, default_share);
    if (b < best.bytes) best = {e, b};
  }
  return best;
}

// Working state of the greedy co-coding pass.
struct GroupState {
  std::vector<int64_t> cols;
  ColEncoding encoding = ColEncoding::kUncompressed;
  double bytes = 0;
  int64_t est_distinct = 0;
  std::vector<int32_t> sample_codes;  // joint sample-local codes
  int64_t domain = 0;                 // joint sample distinct count
};

}  // namespace

CompressionPlan CompressionPlanner::Plan(const MatrixBlock& m,
                                         const CompressionSettings& settings) {
  CompressionPlan plan;
  int64_t rows = m.Rows(), cols = m.Cols();
  if (rows <= 0 || cols <= 0) {
    plan.worthwhile = false;
    return plan;
  }
  std::vector<int64_t> sample;
  std::vector<int32_t> segment_of;
  BuildSampleRows(rows, settings.sample_rows, &sample, &segment_of);
  plan.sampled_rows = static_cast<int64_t>(sample.size());

  // Per-column stats and initial single-column groups.
  std::vector<GroupState> groups;
  groups.reserve(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    ColumnStats st = ScanColumn(m, c, sample, segment_of);
    GroupState g;
    g.cols = {c};
    if (st.has_nan) {
      g.encoding = ColEncoding::kUncompressed;
      g.bytes = static_cast<double>(rows) * 8;
      g.est_distinct = 0;
    } else {
      Candidate best = BestEncoding(rows, 1, st.est_distinct, st.est_runs,
                                    st.default_share);
      g.encoding = best.encoding;
      g.bytes = best.bytes;
      g.est_distinct = st.est_distinct;
      g.sample_codes = std::move(st.sample_codes);
      g.domain = st.d_sample;
    }
    groups.push_back(std::move(g));
  }

  // Greedy adjacent co-coding: merge the running group with the next column
  // when the estimated joint dictionary-coded size beats the separate sizes.
  std::vector<GroupState> coded;
  for (GroupState& next : groups) {
    if (coded.empty()) {
      coded.push_back(std::move(next));
      continue;
    }
    GroupState& cur = coded.back();
    bool try_merge = settings.cocode && cur.encoding != ColEncoding::kUncompressed &&
                     next.encoding != ColEncoding::kUncompressed &&
                     static_cast<int64_t>(cur.cols.size()) <
                         settings.max_group_cols &&
                     !cur.sample_codes.empty() && !next.sample_codes.empty();
    if (try_merge) {
      // Joint sample distinct count + f1 over combined codes.
      std::unordered_map<int64_t, int64_t> joint;
      std::vector<int32_t> joint_codes(cur.sample_codes.size());
      std::unordered_map<int64_t, int32_t> remap;
      for (size_t i = 0; i < cur.sample_codes.size(); ++i) {
        int64_t key = static_cast<int64_t>(cur.sample_codes[i]) * next.domain +
                      next.sample_codes[i];
        ++joint[key];
        auto ins = remap.emplace(key, static_cast<int32_t>(remap.size()));
        joint_codes[i] = ins.first->second;
      }
      int64_t d_sample = static_cast<int64_t>(joint.size());
      int64_t f1 = 0;
      for (const auto& kv : joint) f1 += (kv.second == 1);
      int64_t est_joint = EstimateDistinct(
          d_sample, f1, rows, static_cast<int64_t>(cur.sample_codes.size()));
      int64_t ncols = static_cast<int64_t>(cur.cols.size()) + 1;
      double ddc1 = EncodingBytes(ColEncoding::kDDC1, rows, ncols, est_joint,
                                  0, 0);
      double ddc2 = EncodingBytes(ColEncoding::kDDC2, rows, ncols, est_joint,
                                  0, 0);
      double joint_bytes = std::min(ddc1, ddc2);
      if (joint_bytes < cur.bytes + next.bytes) {
        cur.cols.push_back(next.cols[0]);
        cur.encoding = ddc1 <= ddc2 ? ColEncoding::kDDC1 : ColEncoding::kDDC2;
        cur.bytes = joint_bytes;
        cur.est_distinct = est_joint;
        cur.sample_codes = std::move(joint_codes);
        cur.domain = d_sample;
        continue;
      }
    }
    coded.push_back(std::move(next));
  }

  bool any_compressed = false;
  for (GroupState& g : coded) {
    PlannedGroup pg;
    pg.cols = std::move(g.cols);
    pg.encoding = g.encoding;
    pg.est_distinct = g.est_distinct;
    pg.est_bytes = g.bytes;
    any_compressed |= g.encoding != ColEncoding::kUncompressed;
    plan.est_compressed_bytes += g.bytes;
    plan.groups.push_back(std::move(pg));
  }
  double base = static_cast<double>(m.EstimateSizeInBytes());
  plan.est_ratio = plan.est_compressed_bytes > 0
                       ? base / plan.est_compressed_bytes
                       : 1.0;
  plan.worthwhile = any_compressed && plan.est_ratio >= settings.min_ratio;
  return plan;
}

}  // namespace sysds
