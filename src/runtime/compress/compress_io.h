#ifndef SYSDS_RUNTIME_COMPRESS_COMPRESS_IO_H_
#define SYSDS_RUNTIME_COMPRESS_COMPRESS_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "runtime/compress/compressed_block.h"

namespace sysds {

/// Binary serialization of a CompressedMatrixBlock: little-endian header
/// (own magic, rows, cols, nnz, group count) followed by one record per
/// column group. Used by the buffer pool to spill compressed blocks in
/// compressed form — the spill file is a fraction of the dense block and
/// restore skips re-running the planner.
Status WriteCompressedBinary(const CompressedMatrixBlock& c,
                             const std::string& path);

StatusOr<CompressedMatrixBlock> ReadCompressedBinary(const std::string& path);

/// Stream variants of the same layout, for embedding compressed blocks in
/// checksummed containers (checkpoint files, atomic spill writes).
Status WriteCompressedStream(const CompressedMatrixBlock& c, std::ostream& out);

StatusOr<CompressedMatrixBlock> ReadCompressedStream(std::istream& in);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_COMPRESS_COMPRESS_IO_H_
