#include "runtime/compress/compress_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace sysds {

namespace {

// "SDSCMP01" little-endian.
constexpr uint64_t kCompressedMagic = 0x313030504D435344ULL;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  int64_t n = static_cast<int64_t>(v.size());
  WritePod(out, n);
  if (n > 0) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(T)));
  }
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v) {
  int64_t n = 0;
  if (!ReadPod(in, &n) || n < 0) return false;
  v->resize(static_cast<size_t>(n));
  if (n > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  }
  return static_cast<bool>(in);
}

}  // namespace

Status WriteCompressedStream(const CompressedMatrixBlock& c,
                             std::ostream& out) {
  WritePod(out, kCompressedMagic);
  WritePod(out, c.Rows());
  WritePod(out, c.Cols());
  WritePod(out, c.NonZeros());
  WritePod(out, c.NumColGroups());
  for (const ColGroup& g : c.Groups()) {
    WritePod(out, static_cast<uint8_t>(g.encoding));
    WritePod(out, g.sdc_default);
    WriteVec(out, g.cols);
    WriteVec(out, g.dict);
    WriteVec(out, g.codes8);
    WriteVec(out, g.codes16);
    WriteVec(out, g.run_starts);
    WriteVec(out, g.run_codes);
    WriteVec(out, g.sdc_rows);
    WriteVec(out, g.sdc_codes);
    WriteVec(out, g.values);
    WriteVec(out, g.col_has_nonfinite);
  }
  if (!out) return IoError("compressed block stream write failed");
  return Status::Ok();
}

StatusOr<CompressedMatrixBlock> ReadCompressedStream(std::istream& in) {
  uint64_t magic = 0;
  int64_t rows = 0, cols = 0, nnz = 0, ngroups = 0;
  if (!ReadPod(in, &magic) || magic != kCompressedMagic) {
    return CorruptError("not a SystemDS compressed matrix");
  }
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || !ReadPod(in, &nnz) ||
      !ReadPod(in, &ngroups) || ngroups < 0) {
    return CorruptError("truncated compressed matrix header");
  }
  std::vector<ColGroup> groups(static_cast<size_t>(ngroups));
  for (ColGroup& g : groups) {
    uint8_t enc = 0;
    bool ok = ReadPod(in, &enc) && ReadPod(in, &g.sdc_default) &&
              ReadVec(in, &g.cols) && ReadVec(in, &g.dict) &&
              ReadVec(in, &g.codes8) && ReadVec(in, &g.codes16) &&
              ReadVec(in, &g.run_starts) && ReadVec(in, &g.run_codes) &&
              ReadVec(in, &g.sdc_rows) && ReadVec(in, &g.sdc_codes) &&
              ReadVec(in, &g.values) && ReadVec(in, &g.col_has_nonfinite);
    if (!ok || enc > static_cast<uint8_t>(ColEncoding::kSDC)) {
      return CorruptError("truncated compressed matrix group");
    }
    g.encoding = static_cast<ColEncoding>(enc);
  }
  return CompressedMatrixBlock::FromParts(rows, cols, nnz, std::move(groups));
}

Status WriteCompressedBinary(const CompressedMatrixBlock& c,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  Status st = WriteCompressedStream(c, out);
  if (!st.ok()) {
    return IoError("failed writing compressed block to '" + path + "'");
  }
  out.flush();
  if (!out) return IoError("failed writing compressed block to '" + path + "'");
  return Status::Ok();
}

StatusOr<CompressedMatrixBlock> ReadCompressedBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open '" + path + "' for reading");
  auto c = ReadCompressedStream(in);
  if (!c.ok()) {
    return Status(c.status().code(),
                  c.status().message() + " ('" + path + "')");
  }
  return c;
}

}  // namespace sysds
