#ifndef SYSDS_RUNTIME_COMPRESS_COMPRESS_METRICS_H_
#define SYSDS_RUNTIME_COMPRESS_COMPRESS_METRICS_H_

#include "obs/metrics.h"

namespace sysds {
namespace compress_metrics {

// compress.* observability shared by the compress instruction, the
// transparent instruction dispatch, and the buffer-pool integration.

inline obs::Counter* PlannerInvocations() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "compress.planner_invocations");
  return c;
}

/// compress() produced a compressed block.
inline obs::Counter* CompressedBlocks() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("compress.compressed_blocks");
  return c;
}

/// Planner decided compression does not pay off (min-ratio gate).
inline obs::Counter* SkippedNotWorthwhile() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "compress.skipped_not_worthwhile");
  return c;
}

/// Input below compression_min_size_bytes.
inline obs::Counter* SkippedSmall() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("compress.skipped_small");
  return c;
}

/// Buffer-pool pressure overrode the static size gate: the input would be
/// skipped as small, but headroom is low enough that shrinking it beats
/// spilling it.
inline obs::Counter* PressureCompressions() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "compress.pressure_compressions");
  return c;
}

/// An instruction executed a compressed kernel directly.
inline obs::Counter* DispatchHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("compress.dispatch_hits");
  return c;
}

/// A compressed kernel was unsupported; the instruction decompressed and
/// retried on the uncompressed path.
inline obs::Counter* DispatchFallbacks() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("compress.dispatch_fallbacks");
  return c;
}

/// Achieved compression ratios, x100 (a ratio of 8.5 observes 850).
inline obs::Histogram* RatioX100() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("compress.ratio_x100");
  return h;
}

}  // namespace compress_metrics
}  // namespace sysds

#endif  // SYSDS_RUNTIME_COMPRESS_COMPRESS_METRICS_H_
