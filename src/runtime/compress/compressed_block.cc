#include "runtime/compress/compressed_block.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/compress/planner.h"

namespace sysds {

namespace {

// Dictionary domain limit: kDDC2/kRLE/kSDC codes are uint16.
constexpr int64_t kMaxDictSize = 65536;

/// Sequential per-row code access for any encoding. Rows must be visited in
/// ascending order starting from the row passed to the constructor (the
/// row-chunked kernels construct one cursor per chunk).
class CodeCursor {
 public:
  CodeCursor(const ColGroup& g, int64_t start_row) : g_(&g) {
    if (g.encoding == ColEncoding::kRLE) {
      run_ = static_cast<size_t>(
          std::upper_bound(g.run_starts.begin(), g.run_starts.end(),
                           start_row) -
          g.run_starts.begin());
    } else if (g.encoding == ColEncoding::kSDC) {
      pos_ = static_cast<size_t>(
          std::lower_bound(g.sdc_rows.begin(), g.sdc_rows.end(), start_row) -
          g.sdc_rows.begin());
    }
  }

  uint32_t At(int64_t r) {
    switch (g_->encoding) {
      case ColEncoding::kDDC1:
        return g_->codes8[static_cast<size_t>(r)];
      case ColEncoding::kDDC2:
        return g_->codes16[static_cast<size_t>(r)];
      case ColEncoding::kRLE:
        while (run_ < g_->run_starts.size() && g_->run_starts[run_] <= r) {
          ++run_;
        }
        return g_->run_codes[run_ - 1];
      case ColEncoding::kSDC:
        while (pos_ < g_->sdc_rows.size() && g_->sdc_rows[pos_] < r) ++pos_;
        if (pos_ < g_->sdc_rows.size() && g_->sdc_rows[pos_] == r) {
          return g_->sdc_codes[pos_];
        }
        return g_->sdc_default;
      case ColEncoding::kUncompressed:
        break;
    }
    return 0;
  }

 private:
  const ColGroup* g_;
  size_t run_ = 0;
  size_t pos_ = 0;
};

// Calls fn(r, code) for every row in [rb, re) in ascending order with
// encoding-direct access — the group-major alternative to a CodeCursor,
// with no per-row encoding dispatch in the hot loop.
template <typename Fn>
void ForEachRowCode(const ColGroup& g, int64_t rows, int64_t rb, int64_t re,
                    Fn&& fn) {
  switch (g.encoding) {
    case ColEncoding::kDDC1: {
      const uint8_t* codes = g.codes8.data();
      for (int64_t r = rb; r < re; ++r) fn(r, codes[r]);
      break;
    }
    case ColEncoding::kDDC2: {
      const uint16_t* codes = g.codes16.data();
      for (int64_t r = rb; r < re; ++r) fn(r, codes[r]);
      break;
    }
    case ColEncoding::kRLE: {
      size_t run = static_cast<size_t>(
          std::upper_bound(g.run_starts.begin(), g.run_starts.end(), rb) -
          g.run_starts.begin());
      int64_t r = rb;
      while (r < re) {
        const uint32_t k = g.run_codes[run - 1];
        const int64_t run_end =
            run < g.run_starts.size() ? g.run_starts[run] : rows;
        const int64_t stop = std::min(re, run_end);
        for (; r < stop; ++r) fn(r, k);
        ++run;
      }
      break;
    }
    case ColEncoding::kSDC: {
      size_t pos = static_cast<size_t>(
          std::lower_bound(g.sdc_rows.begin(), g.sdc_rows.end(), rb) -
          g.sdc_rows.begin());
      const uint32_t def = g.sdc_default;
      for (int64_t r = rb; r < re; ++r) {
        if (pos < g.sdc_rows.size() && g.sdc_rows[pos] == r) {
          fn(r, static_cast<uint32_t>(g.sdc_codes[pos]));
          ++pos;
        } else {
          fn(r, def);
        }
      }
      break;
    }
    case ColEncoding::kUncompressed:
      break;
  }
}

// Occurrences per dictionary code — O(runs) for RLE and O(exceptions) for
// SDC, which is where value-indexed aggregation gets its asymptotic win.
std::vector<int64_t> GroupCodeCounts(const ColGroup& g, int64_t rows) {
  std::vector<int64_t> counts(static_cast<size_t>(g.NumValues()), 0);
  switch (g.encoding) {
    case ColEncoding::kDDC1:
      for (uint8_t c : g.codes8) ++counts[c];
      break;
    case ColEncoding::kDDC2:
      for (uint16_t c : g.codes16) ++counts[c];
      break;
    case ColEncoding::kRLE:
      for (size_t i = 0; i < g.run_starts.size(); ++i) {
        int64_t end = i + 1 < g.run_starts.size() ? g.run_starts[i + 1] : rows;
        counts[g.run_codes[i]] += end - g.run_starts[i];
      }
      break;
    case ColEncoding::kSDC:
      for (uint16_t c : g.sdc_codes) ++counts[c];
      counts[g.sdc_default] += rows - static_cast<int64_t>(g.sdc_rows.size());
      break;
    case ColEncoding::kUncompressed:
      break;
  }
  return counts;
}

// Builds one column group with an exact full scan. The planner's encoding is
// a hint from sampled estimates: NaN anywhere or more than kMaxDictSize
// distinct tuples falls back to an uncompressed group (NaN compares
// equivalent to every key under operator<, so letting it into a double-keyed
// dictionary map silently mis-codes cells), and DDC picks the 1- or 2-byte
// tier from the true distinct count.
ColGroup BuildGroup(const MatrixBlock& m, const PlannedGroup& pg,
                    int64_t* nnz_out) {
  const int64_t rows = m.Rows();
  const int64_t ncols = static_cast<int64_t>(pg.cols.size());
  ColGroup g;
  g.cols = pg.cols;
  g.col_has_nonfinite.assign(static_cast<size_t>(ncols), 0);
  int64_t nnz = 0;

  bool fallback = pg.encoding == ColEncoding::kUncompressed;
  std::vector<uint32_t> codes;
  std::vector<double> dict;
  if (!fallback) {
    codes.resize(static_cast<size_t>(rows));
    if (ncols == 1) {
      const int64_t col = pg.cols[0];
      std::map<double, uint32_t> dmap;
      for (int64_t r = 0; r < rows; ++r) {
        double v = m.Get(r, col);
        if (std::isnan(v)) {
          fallback = true;
          break;
        }
        auto ins = dmap.emplace(v, static_cast<uint32_t>(dmap.size()));
        if (ins.second) {
          if (static_cast<int64_t>(dmap.size()) > kMaxDictSize) {
            fallback = true;
            break;
          }
          dict.push_back(v);
        }
        codes[static_cast<size_t>(r)] = ins.first->second;
      }
    } else {
      std::map<std::vector<double>, uint32_t> dmap;
      std::vector<double> tuple(static_cast<size_t>(ncols));
      for (int64_t r = 0; r < rows && !fallback; ++r) {
        for (int64_t j = 0; j < ncols; ++j) {
          double v = m.Get(r, pg.cols[static_cast<size_t>(j)]);
          if (std::isnan(v)) {
            fallback = true;
            break;
          }
          tuple[static_cast<size_t>(j)] = v;
        }
        if (fallback) break;
        auto ins = dmap.emplace(tuple, static_cast<uint32_t>(dmap.size()));
        if (ins.second) {
          if (static_cast<int64_t>(dmap.size()) > kMaxDictSize) {
            fallback = true;
            break;
          }
          dict.insert(dict.end(), tuple.begin(), tuple.end());
        }
        codes[static_cast<size_t>(r)] = ins.first->second;
      }
    }
  }

  if (fallback) {
    g.encoding = ColEncoding::kUncompressed;
    g.values.resize(static_cast<size_t>(ncols * rows));
    for (int64_t j = 0; j < ncols; ++j) {
      const int64_t col = pg.cols[static_cast<size_t>(j)];
      double* dst = g.values.data() + j * rows;
      bool nonfinite = false;
      for (int64_t r = 0; r < rows; ++r) {
        double v = m.Get(r, col);
        dst[r] = v;
        nnz += (v != 0.0);
        nonfinite |= !std::isfinite(v);
      }
      g.col_has_nonfinite[static_cast<size_t>(j)] = nonfinite ? 1 : 0;
    }
    *nnz_out = nnz;
    return g;
  }

  const int64_t d = static_cast<int64_t>(dict.size()) / std::max<int64_t>(
                        1, ncols);
  g.dict = std::move(dict);
  // Nonfinite flags and per-tuple nonzero counts come from the dictionary
  // alone — it covers every cell value of the group.
  std::vector<int32_t> tuple_nnz(static_cast<size_t>(d), 0);
  for (int64_t k = 0; k < d; ++k) {
    for (int64_t j = 0; j < ncols; ++j) {
      double v = g.dict[static_cast<size_t>(k * ncols + j)];
      if (!std::isfinite(v)) g.col_has_nonfinite[static_cast<size_t>(j)] = 1;
      tuple_nnz[static_cast<size_t>(k)] += (v != 0.0);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    nnz += tuple_nnz[codes[static_cast<size_t>(r)]];
  }

  if (pg.encoding == ColEncoding::kRLE && ncols == 1) {
    g.encoding = ColEncoding::kRLE;
    for (int64_t r = 0; r < rows; ++r) {
      uint32_t c = codes[static_cast<size_t>(r)];
      if (g.run_codes.empty() || g.run_codes.back() != c) {
        g.run_starts.push_back(r);
        g.run_codes.push_back(static_cast<uint16_t>(c));
      }
    }
  } else if (pg.encoding == ColEncoding::kSDC && ncols == 1) {
    g.encoding = ColEncoding::kSDC;
    std::vector<int64_t> counts(static_cast<size_t>(d), 0);
    for (uint32_t c : codes) ++counts[c];
    g.sdc_default = static_cast<uint16_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    for (int64_t r = 0; r < rows; ++r) {
      uint32_t c = codes[static_cast<size_t>(r)];
      if (c != g.sdc_default) {
        g.sdc_rows.push_back(r);
        g.sdc_codes.push_back(static_cast<uint16_t>(c));
      }
    }
  } else if (d <= 256) {
    g.encoding = ColEncoding::kDDC1;
    g.codes8.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      g.codes8[static_cast<size_t>(r)] =
          static_cast<uint8_t>(codes[static_cast<size_t>(r)]);
    }
  } else {
    g.encoding = ColEncoding::kDDC2;
    g.codes16.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      g.codes16[static_cast<size_t>(r)] =
          static_cast<uint16_t>(codes[static_cast<size_t>(r)]);
    }
  }
  *nnz_out = nnz;
  return g;
}

}  // namespace

const char* ColEncodingName(ColEncoding e) {
  switch (e) {
    case ColEncoding::kUncompressed:
      return "uncompressed";
    case ColEncoding::kDDC1:
      return "ddc1";
    case ColEncoding::kDDC2:
      return "ddc2";
    case ColEncoding::kRLE:
      return "rle";
    case ColEncoding::kSDC:
      return "sdc";
  }
  return "?";
}

int64_t ColGroup::SizeInBytes() const {
  return 64 + static_cast<int64_t>(dict.size()) * 8 +
         static_cast<int64_t>(codes8.size()) +
         static_cast<int64_t>(codes16.size()) * 2 +
         static_cast<int64_t>(run_starts.size()) * 10 +
         static_cast<int64_t>(sdc_rows.size()) * 10 +
         static_cast<int64_t>(values.size()) * 8 +
         static_cast<int64_t>(col_has_nonfinite.size());
}

StatusOr<ColGroup> BuildDdcGroupFromCodes(std::vector<int64_t> cols,
                                          std::vector<double> dict,
                                          const uint16_t* codes, int64_t rows,
                                          int64_t* nnz_out) {
  const int64_t ncols = static_cast<int64_t>(cols.size());
  if (ncols == 0 || dict.empty() || dict.size() % cols.size() != 0) {
    return InvalidArgument("ddc group: dict must hold whole tuples");
  }
  const int64_t d = static_cast<int64_t>(dict.size()) / ncols;
  if (d > kMaxDictSize) {
    return InvalidArgument("ddc group: dictionary exceeds 65536 tuples");
  }
  ColGroup g;
  g.cols = std::move(cols);
  g.dict = std::move(dict);
  g.col_has_nonfinite.assign(static_cast<size_t>(ncols), 0);
  std::vector<int32_t> tuple_nnz(static_cast<size_t>(d), 0);
  for (int64_t k = 0; k < d; ++k) {
    for (int64_t j = 0; j < ncols; ++j) {
      double v = g.dict[static_cast<size_t>(k * ncols + j)];
      if (!std::isfinite(v)) g.col_has_nonfinite[static_cast<size_t>(j)] = 1;
      tuple_nnz[static_cast<size_t>(k)] += (v != 0.0);
    }
  }
  int64_t nnz = 0;
  if (d <= 256) {
    g.encoding = ColEncoding::kDDC1;
    g.codes8.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      uint16_t c = codes[r];
      if (c >= d) return InvalidArgument("ddc group: code out of range");
      g.codes8[static_cast<size_t>(r)] = static_cast<uint8_t>(c);
      nnz += tuple_nnz[c];
    }
  } else {
    g.encoding = ColEncoding::kDDC2;
    g.codes16.assign(codes, codes + rows);
    for (int64_t r = 0; r < rows; ++r) {
      uint16_t c = codes[r];
      if (c >= d) return InvalidArgument("ddc group: code out of range");
      nnz += tuple_nnz[c];
    }
  }
  *nnz_out += nnz;
  return g;
}

ColGroup BuildUncompressedGroup(std::vector<int64_t> cols,
                                std::vector<double> values, int64_t rows,
                                int64_t* nnz_out) {
  const int64_t ncols = static_cast<int64_t>(cols.size());
  ColGroup g;
  g.encoding = ColEncoding::kUncompressed;
  g.cols = std::move(cols);
  g.values = std::move(values);
  g.col_has_nonfinite.assign(static_cast<size_t>(ncols), 0);
  int64_t nnz = 0;
  for (int64_t j = 0; j < ncols; ++j) {
    const double* src = g.values.data() + j * rows;
    bool nonfinite = false;
    for (int64_t r = 0; r < rows; ++r) {
      nnz += (src[r] != 0.0);
      nonfinite |= !std::isfinite(src[r]);
    }
    g.col_has_nonfinite[static_cast<size_t>(j)] = nonfinite ? 1 : 0;
  }
  *nnz_out += nnz;
  return g;
}

void CompressedMatrixBlock::RebuildColIndex() {
  col_to_group_.assign(static_cast<size_t>(cols_), -1);
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    for (int64_t c : groups_[gi].cols) {
      col_to_group_[static_cast<size_t>(c)] = static_cast<int32_t>(gi);
    }
  }
}

CompressedMatrixBlock CompressedMatrixBlock::Compress(const MatrixBlock& m) {
  CompressionSettings settings;
  return Compress(m, CompressionPlanner::Plan(m, settings), 1);
}

CompressedMatrixBlock CompressedMatrixBlock::Compress(
    const MatrixBlock& m, const CompressionPlan& plan, int num_threads) {
  CompressedMatrixBlock out;
  out.rows_ = m.Rows();
  out.cols_ = m.Cols();
  int64_t ngroups = static_cast<int64_t>(plan.groups.size());
  out.groups_.resize(static_cast<size_t>(ngroups));
  std::vector<int64_t> group_nnz(static_cast<size_t>(ngroups), 0);
  if (ngroups > 0) {
    int64_t chunks =
        num_threads <= 1 ? 1 : std::min<int64_t>(num_threads, ngroups);
    ThreadPool::Global().ParallelFor(
        0, ngroups, chunks, [&](int64_t gb, int64_t ge) {
          for (int64_t gi = gb; gi < ge; ++gi) {
            out.groups_[static_cast<size_t>(gi)] =
                BuildGroup(m, plan.groups[static_cast<size_t>(gi)],
                           &group_nnz[static_cast<size_t>(gi)]);
          }
        },
        "compress");
  }
  out.nnz_ = 0;
  for (int64_t n : group_nnz) out.nnz_ += n;
  out.RebuildColIndex();
  return out;
}

CompressedMatrixBlock CompressedMatrixBlock::FromParts(
    int64_t rows, int64_t cols, int64_t nnz, std::vector<ColGroup> groups) {
  CompressedMatrixBlock out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.nnz_ = nnz;
  out.groups_ = std::move(groups);
  out.RebuildColIndex();
  return out;
}

double CompressedMatrixBlock::CompressionRatio() const {
  double dense = static_cast<double>(rows_) * cols_ * 8;
  int64_t compressed = EstimateSizeInBytes();
  return compressed > 0 ? dense / compressed : 1.0;
}

int64_t CompressedMatrixBlock::EstimateSizeInBytes() const {
  int64_t total = 64;
  for (const ColGroup& g : groups_) total += g.SizeInBytes();
  return total;
}

int64_t CompressedMatrixBlock::NumCompressedColumns() const {
  int64_t n = 0;
  for (const ColGroup& g : groups_) {
    if (g.IsCompressed()) n += g.NumCols();
  }
  return n;
}

bool CompressedMatrixBlock::AllGroupsCompressed() const {
  for (const ColGroup& g : groups_) {
    if (!g.IsCompressed()) return false;
  }
  return true;
}

MatrixBlock CompressedMatrixBlock::Decompress(int num_threads) const {
  MatrixBlock out = MatrixBlock::Dense(rows_, cols_);
  if (rows_ == 0 || cols_ == 0) return out;
  ThreadPool::Global().ParallelFor(
      0, rows_, PickChunks(rows_, num_threads), [&](int64_t rb, int64_t re) {
        for (const ColGroup& g : groups_) {
          const int64_t c = g.NumCols();
          if (!g.IsCompressed()) {
            for (int64_t j = 0; j < c; ++j) {
              const double* src = g.values.data() + j * rows_;
              const int64_t col = g.cols[static_cast<size_t>(j)];
              for (int64_t r = rb; r < re; ++r) {
                out.DenseRow(r)[col] = src[r];
              }
            }
            continue;
          }
          CodeCursor cursor(g, rb);
          for (int64_t r = rb; r < re; ++r) {
            const double* tuple = g.dict.data() + cursor.At(r) * c;
            double* orow = out.DenseRow(r);
            for (int64_t j = 0; j < c; ++j) {
              orow[g.cols[static_cast<size_t>(j)]] = tuple[j];
            }
          }
        }
      },
      "compress");
  out.ExamSparsity(nnz_);
  return out;
}

double CompressedMatrixBlock::Get(int64_t r, int64_t c) const {
  const ColGroup& g = groups_[static_cast<size_t>(col_to_group_[c])];
  const int64_t j = c - g.cols[0];  // group columns are contiguous ascending
  if (!g.IsCompressed()) return g.values[static_cast<size_t>(j * rows_ + r)];
  uint32_t code = 0;
  switch (g.encoding) {
    case ColEncoding::kDDC1:
      code = g.codes8[static_cast<size_t>(r)];
      break;
    case ColEncoding::kDDC2:
      code = g.codes16[static_cast<size_t>(r)];
      break;
    case ColEncoding::kRLE: {
      size_t run = static_cast<size_t>(
          std::upper_bound(g.run_starts.begin(), g.run_starts.end(), r) -
          g.run_starts.begin());
      code = g.run_codes[run - 1];
      break;
    }
    case ColEncoding::kSDC: {
      auto it = std::lower_bound(g.sdc_rows.begin(), g.sdc_rows.end(), r);
      code = (it != g.sdc_rows.end() && *it == r)
                 ? g.sdc_codes[static_cast<size_t>(it - g.sdc_rows.begin())]
                 : g.sdc_default;
      break;
    }
    case ColEncoding::kUncompressed:
      break;
  }
  return g.dict[static_cast<size_t>(code * g.NumCols() + j)];
}

double CompressedMatrixBlock::Sum(int num_threads) const {
  int64_t ngroups = static_cast<int64_t>(groups_.size());
  if (ngroups == 0) return 0.0;
  std::vector<double> partials(static_cast<size_t>(ngroups), 0.0);
  int64_t chunks =
      num_threads <= 1 ? 1 : std::min<int64_t>(num_threads, ngroups);
  ThreadPool::Global().ParallelFor(
      0, ngroups, chunks, [&](int64_t gb, int64_t ge) {
        for (int64_t gi = gb; gi < ge; ++gi) {
          const ColGroup& g = groups_[static_cast<size_t>(gi)];
          double sum = 0.0;
          if (g.IsCompressed()) {
            std::vector<int64_t> counts = GroupCodeCounts(g, rows_);
            const int64_t c = g.NumCols();
            for (int64_t k = 0; k < static_cast<int64_t>(counts.size());
                 ++k) {
              if (counts[static_cast<size_t>(k)] == 0) continue;
              double tuple_sum = 0.0;
              for (int64_t j = 0; j < c; ++j) {
                tuple_sum += g.dict[static_cast<size_t>(k * c + j)];
              }
              sum += tuple_sum * counts[static_cast<size_t>(k)];
            }
          } else {
            for (double v : g.values) sum += v;
          }
          partials[static_cast<size_t>(gi)] = sum;
        }
      },
      "compress");
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

MatrixBlock CompressedMatrixBlock::ColSums() const {
  auto result = AggregateCols(AggOpCode::kSum);
  return result.ok() ? std::move(*result) : MatrixBlock::Dense(1, cols_);
}

StatusOr<double> CompressedMatrixBlock::Aggregate(AggOpCode op) const {
  switch (op) {
    case AggOpCode::kSum:
      return Sum();
    case AggOpCode::kMean: {
      int64_t cells = rows_ * cols_;
      return cells > 0 ? Sum() / cells : 0.0;
    }
    case AggOpCode::kNnz:
      return static_cast<double>(nnz_);
    case AggOpCode::kMin:
    case AggOpCode::kMax: {
      if (rows_ == 0 || cols_ == 0) return 0.0;
      // fmin/fmax over occurring dictionary values mirrors CellStats'
      // NaN-ignoring min/max semantics exactly.
      double acc = op == AggOpCode::kMin
                       ? std::numeric_limits<double>::infinity()
                       : -std::numeric_limits<double>::infinity();
      for (const ColGroup& g : groups_) {
        if (g.IsCompressed()) {
          std::vector<int64_t> counts = GroupCodeCounts(g, rows_);
          const int64_t c = g.NumCols();
          for (int64_t k = 0; k < static_cast<int64_t>(counts.size()); ++k) {
            if (counts[static_cast<size_t>(k)] == 0) continue;
            for (int64_t j = 0; j < c; ++j) {
              double v = g.dict[static_cast<size_t>(k * c + j)];
              acc = op == AggOpCode::kMin ? std::fmin(acc, v)
                                          : std::fmax(acc, v);
            }
          }
        } else {
          for (double v : g.values) {
            acc = op == AggOpCode::kMin ? std::fmin(acc, v)
                                        : std::fmax(acc, v);
          }
        }
      }
      return acc;
    }
    default:
      return Unimplemented("compress: unsupported aggregate");
  }
}

StatusOr<MatrixBlock> CompressedMatrixBlock::AggregateCols(
    AggOpCode op) const {
  if (op != AggOpCode::kSum && op != AggOpCode::kMean &&
      op != AggOpCode::kMin && op != AggOpCode::kMax &&
      op != AggOpCode::kNnz) {
    return Unimplemented("compress: unsupported column aggregate");
  }
  MatrixBlock out = MatrixBlock::Dense(1, cols_);
  if (cols_ == 0) {
    out.MarkNnzDirty();
    return out;
  }
  double* orow = out.DenseRow(0);
  for (const ColGroup& g : groups_) {
    const int64_t c = g.NumCols();
    std::vector<int64_t> counts;
    if (g.IsCompressed()) counts = GroupCodeCounts(g, rows_);
    for (int64_t j = 0; j < c; ++j) {
      const int64_t col = g.cols[static_cast<size_t>(j)];
      double sum = 0.0, mn = std::numeric_limits<double>::infinity(),
             mx = -std::numeric_limits<double>::infinity();
      int64_t nnz = 0;
      if (g.IsCompressed()) {
        for (int64_t k = 0; k < static_cast<int64_t>(counts.size()); ++k) {
          int64_t cnt = counts[static_cast<size_t>(k)];
          if (cnt == 0) continue;
          double v = g.dict[static_cast<size_t>(k * c + j)];
          sum += v * cnt;
          mn = std::fmin(mn, v);
          mx = std::fmax(mx, v);
          if (v != 0.0) nnz += cnt;
        }
      } else {
        const double* src = g.values.data() + j * rows_;
        for (int64_t r = 0; r < rows_; ++r) {
          double v = src[r];
          sum += v;
          mn = std::fmin(mn, v);
          mx = std::fmax(mx, v);
          nnz += (v != 0.0);
        }
      }
      switch (op) {
        case AggOpCode::kSum:
          orow[col] = sum;
          break;
        case AggOpCode::kMean:
          orow[col] = rows_ > 0 ? sum / rows_ : 0.0;
          break;
        case AggOpCode::kMin:
          orow[col] = rows_ > 0 ? mn : 0.0;
          break;
        case AggOpCode::kMax:
          orow[col] = rows_ > 0 ? mx : 0.0;
          break;
        case AggOpCode::kNnz:
          orow[col] = static_cast<double>(nnz);
          break;
        default:
          break;
      }
    }
  }
  out.MarkNnzDirty();
  return out;
}

StatusOr<MatrixBlock> CompressedMatrixBlock::RightMatMult(
    const MatrixBlock& b, int num_threads) const {
  if (b.Rows() != cols_) {
    return InvalidArgument("compressed matmult dimension mismatch: " +
                           std::to_string(cols_) + " vs " +
                           std::to_string(b.Rows()));
  }
  const int64_t n = b.Cols();
  MatrixBlock out = MatrixBlock::Dense(rows_, n);
  if (rows_ == 0 || n == 0) {
    out.ExamSparsity(0);
    return out;
  }

  // Unified zero-skip rule (shared semantics with the dense GEMM kernels):
  // matrix-side zeros always skip, operand-side all-zero b-rows skip only
  // when the matrix column is finite everywhere. A finite value times zero
  // adds an exact +/-0 that never changes an accumulator, so the skip is
  // bit-preserving — but 0 * Inf must still produce NaN, hence the
  // col_has_nonfinite guard.
  std::vector<uint8_t> brow_zero(static_cast<size_t>(cols_), 0);
  for (int64_t l = 0; l < cols_; ++l) {
    if (b.IsSparse()) {
      brow_zero[static_cast<size_t>(l)] =
          b.SparseData().Row(l).Size() == 0 ? 1 : 0;
    } else {
      const double* brow = b.DenseRow(l);
      bool zero = true;
      for (int64_t q = 0; q < n && zero; ++q) zero = brow[q] == 0.0;
      brow_zero[static_cast<size_t>(l)] = zero ? 1 : 0;
    }
  }
  struct GroupPrep {
    std::vector<int32_t> active;  // local columns that can contribute
    // n==1 dense fast path: per-code compacted add lists. flat holds, for
    // each code in order, the dict*v products of active columns whose dict
    // value is nonzero (ascending j); offs[k]..offs[k+1] delimits code k.
    // Skipping a zero dict value at prep time is the same skip the dense
    // GEMM kernel does per cell, and dict*v is the same product it computes
    // — so replaying a row's list adds the same values in the same order.
    std::vector<double> flat;
    std::vector<int32_t> offs;
  };
  const bool vec_path = n == 1 && !b.IsSparse();
  std::vector<GroupPrep> preps(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const ColGroup& g = groups_[gi];
    GroupPrep& p = preps[gi];
    for (int64_t j = 0; j < g.NumCols(); ++j) {
      int64_t col = g.cols[static_cast<size_t>(j)];
      if (brow_zero[static_cast<size_t>(col)] &&
          !g.col_has_nonfinite[static_cast<size_t>(j)]) {
        continue;
      }
      p.active.push_back(static_cast<int32_t>(j));
    }
    if (vec_path && g.IsCompressed() && !p.active.empty()) {
      const int64_t c = g.NumCols();
      p.offs.reserve(static_cast<size_t>(g.NumValues()) + 1);
      p.offs.push_back(0);
      for (int64_t k = 0; k < g.NumValues(); ++k) {
        for (int32_t j : p.active) {
          double val = g.dict[static_cast<size_t>(k * c + j)];
          if (val == 0.0) continue;
          p.flat.push_back(val *
                           b.DenseRow(g.cols[static_cast<size_t>(j)])[0]);
        }
        p.offs.push_back(static_cast<int32_t>(p.flat.size()));
      }
    }
  }

  // Group-major traversal: each group streams its code array sequentially
  // over the row chunk. Per output accumulator the contribution order is
  // unchanged (groups ascend in column order, columns ascend within a
  // group), so results stay bit-identical to the row-major dense kernel.
  ThreadPool::Global().ParallelFor(
      0, rows_, PickChunks(rows_, num_threads), [&](int64_t rb, int64_t re) {
        double* odata = vec_path ? out.DenseData() : nullptr;
        for (size_t gi = 0; gi < groups_.size(); ++gi) {
          const ColGroup& g = groups_[gi];
          const GroupPrep& p = preps[gi];
          if (p.active.empty()) continue;
          const int64_t c = g.NumCols();
          if (g.IsCompressed()) {
            if (vec_path) {
              const double* flat = p.flat.data();
              const int32_t* offs = p.offs.data();
              ForEachRowCode(g, rows_, rb, re, [&](int64_t r, uint32_t k) {
                const double* s = flat + offs[k];
                const double* e = flat + offs[k + 1];
                double acc = odata[r];
                for (; s < e; ++s) acc += *s;
                odata[r] = acc;
              });
              continue;
            }
            ForEachRowCode(g, rows_, rb, re, [&](int64_t r, uint32_t k) {
              const double* tuple = g.dict.data() + k * c;
              double* orow = out.DenseRow(r);
              for (int32_t j : p.active) {
                double val = tuple[j];
                if (val == 0.0) continue;
                const int64_t col = g.cols[static_cast<size_t>(j)];
                if (!b.IsSparse()) {
                  const double* brow = b.DenseRow(col);
                  for (int64_t q = 0; q < n; ++q) orow[q] += val * brow[q];
                } else {
                  const SparseRow& brow = b.SparseData().Row(col);
                  for (int64_t q = 0; q < brow.Size(); ++q) {
                    orow[brow.Indexes()[q]] += val * brow.Values()[q];
                  }
                }
              }
            });
          } else {
            for (int32_t j : p.active) {
              const double* src =
                  g.values.data() + static_cast<int64_t>(j) * rows_;
              const int64_t col = g.cols[static_cast<size_t>(j)];
              if (vec_path) {
                const double bv = b.DenseRow(col)[0];
                for (int64_t r = rb; r < re; ++r) {
                  double val = src[r];
                  if (val == 0.0) continue;
                  odata[r] += val * bv;
                }
              } else if (!b.IsSparse()) {
                const double* brow = b.DenseRow(col);
                for (int64_t r = rb; r < re; ++r) {
                  double val = src[r];
                  if (val == 0.0) continue;
                  double* orow = out.DenseRow(r);
                  for (int64_t q = 0; q < n; ++q) orow[q] += val * brow[q];
                }
              } else {
                const SparseRow& brow = b.SparseData().Row(col);
                for (int64_t r = rb; r < re; ++r) {
                  double val = src[r];
                  if (val == 0.0) continue;
                  double* orow = out.DenseRow(r);
                  for (int64_t q = 0; q < brow.Size(); ++q) {
                    orow[brow.Indexes()[q]] += val * brow.Values()[q];
                  }
                }
              }
            }
          }
        }
      },
      "compress");
  out.MarkNnzDirty();
  out.ExamSparsity();
  return out;
}

StatusOr<MatrixBlock> CompressedMatrixBlock::LeftMatMult(
    const MatrixBlock& b, int num_threads) const {
  if (b.Rows() != rows_) {
    return InvalidArgument("compressed t(X)%*%B dimension mismatch: " +
                           std::to_string(rows_) + " vs " +
                           std::to_string(b.Rows()));
  }
  const int64_t n = b.Cols();
  MatrixBlock out = MatrixBlock::Dense(cols_, n);
  if (rows_ == 0 || n == 0 || cols_ == 0) {
    out.ExamSparsity(0);
    return out;
  }
  const size_t ngroups = groups_.size();
  const int64_t chunks = PickChunks(rows_, num_threads);
  const int64_t chunk_rows = (rows_ + chunks - 1) / chunks;
  // partials[chunk][group]: d x n bucket matrix for coded groups (rows
  // collapse into per-code b-row sums — value-indexed aggregation), c x n
  // partial result for uncompressed groups.
  std::vector<std::vector<std::vector<double>>> partials(
      static_cast<size_t>(chunks));
  ThreadPool::Global().ParallelFor(
      0, rows_, chunks, [&](int64_t rb, int64_t re) {
        auto& bucket = partials[static_cast<size_t>(rb / chunk_rows)];
        bucket.resize(ngroups);
        std::vector<CodeCursor> cursors;
        cursors.reserve(ngroups);
        for (size_t gi = 0; gi < ngroups; ++gi) {
          const ColGroup& g = groups_[gi];
          cursors.emplace_back(g, rb);
          int64_t slots = g.IsCompressed() ? g.NumValues() : g.NumCols();
          bucket[gi].assign(static_cast<size_t>(slots * n), 0.0);
        }
        for (int64_t r = rb; r < re; ++r) {
          for (size_t gi = 0; gi < ngroups; ++gi) {
            const ColGroup& g = groups_[gi];
            if (g.IsCompressed()) {
              double* dst = bucket[gi].data() + cursors[gi].At(r) * n;
              if (!b.IsSparse()) {
                const double* brow = b.DenseRow(r);
                for (int64_t q = 0; q < n; ++q) dst[q] += brow[q];
              } else {
                const SparseRow& brow = b.SparseData().Row(r);
                for (int64_t q = 0; q < brow.Size(); ++q) {
                  dst[brow.Indexes()[q]] += brow.Values()[q];
                }
              }
            } else {
              for (int64_t j = 0; j < g.NumCols(); ++j) {
                double v = g.values[static_cast<size_t>(j * rows_ + r)];
                if (v == 0.0) continue;
                double* dst = bucket[gi].data() + j * n;
                if (!b.IsSparse()) {
                  const double* brow = b.DenseRow(r);
                  for (int64_t q = 0; q < n; ++q) dst[q] += v * brow[q];
                } else {
                  const SparseRow& brow = b.SparseData().Row(r);
                  for (int64_t q = 0; q < brow.Size(); ++q) {
                    dst[brow.Indexes()[q]] += v * brow.Values()[q];
                  }
                }
              }
            }
          }
        }
      },
      "compress");
  // Merge chunk partials in chunk order (deterministic for a fixed thread
  // count), then contract the coded buckets with the dictionaries.
  for (size_t gi = 0; gi < ngroups; ++gi) {
    const ColGroup& g = groups_[gi];
    const int64_t c = g.NumCols();
    int64_t slots = g.IsCompressed() ? g.NumValues() : c;
    std::vector<double> merged(static_cast<size_t>(slots * n), 0.0);
    for (const auto& chunk : partials) {
      if (chunk.empty() || chunk[gi].empty()) continue;
      for (int64_t i = 0; i < slots * n; ++i) {
        merged[static_cast<size_t>(i)] += chunk[gi][static_cast<size_t>(i)];
      }
    }
    if (g.IsCompressed()) {
      for (int64_t k = 0; k < slots; ++k) {
        const double* src = merged.data() + k * n;
        for (int64_t j = 0; j < c; ++j) {
          double dv = g.dict[static_cast<size_t>(k * c + j)];
          if (dv == 0.0) continue;
          double* orow = out.DenseRow(g.cols[static_cast<size_t>(j)]);
          for (int64_t q = 0; q < n; ++q) orow[q] += dv * src[q];
        }
      }
    } else {
      for (int64_t j = 0; j < c; ++j) {
        double* orow = out.DenseRow(g.cols[static_cast<size_t>(j)]);
        const double* src = merged.data() + j * n;
        for (int64_t q = 0; q < n; ++q) orow[q] += src[q];
      }
    }
  }
  out.MarkNnzDirty();
  out.ExamSparsity();
  return out;
}

StatusOr<MatrixBlock> CompressedMatrixBlock::TsmmLeft(int num_threads) const {
  if (!AllGroupsCompressed()) {
    return Unimplemented(
        "compressed tsmm requires all column groups dictionary-coded");
  }
  MatrixBlock out = MatrixBlock::Dense(cols_, cols_);
  if (rows_ == 0 || cols_ == 0) {
    out.ExamSparsity(0);
    return out;
  }
  const int64_t ngroups = static_cast<int64_t>(groups_.size());
  // Pair list: (gi, gi) diagonal entries use 1-D code counts; (gi, gj) with
  // gi < gj use di x dj co-occurrence tables.
  struct Pair {
    int32_t gi, gj;
    int64_t table_size;
  };
  std::vector<Pair> pairs;
  int64_t total_entries = 0;
  for (int32_t i = 0; i < ngroups; ++i) {
    int64_t di = groups_[static_cast<size_t>(i)].NumValues();
    pairs.push_back({i, i, di});
    total_entries += di;
    for (int32_t j = i + 1; j < ngroups; ++j) {
      int64_t dj = groups_[static_cast<size_t>(j)].NumValues();
      pairs.push_back({i, j, di * dj});
      total_entries += di * dj;
    }
  }
  // Dictionary domains too large for count tables: caller decompresses.
  if (total_entries > (int64_t{1} << 27)) {
    return Unimplemented("compressed tsmm: dictionary domains too large");
  }
  const int64_t chunks = PickChunks(rows_, num_threads);
  const int64_t chunk_rows = (rows_ + chunks - 1) / chunks;
  std::vector<std::vector<std::vector<uint32_t>>> chunk_counts(
      static_cast<size_t>(chunks));
  ThreadPool::Global().ParallelFor(
      0, rows_, chunks, [&](int64_t rb, int64_t re) {
        auto& counts = chunk_counts[static_cast<size_t>(rb / chunk_rows)];
        counts.resize(pairs.size());
        for (size_t p = 0; p < pairs.size(); ++p) {
          counts[p].assign(static_cast<size_t>(pairs[p].table_size), 0);
        }
        std::vector<CodeCursor> cursors;
        std::vector<uint32_t> codes(static_cast<size_t>(ngroups));
        cursors.reserve(static_cast<size_t>(ngroups));
        for (const ColGroup& g : groups_) cursors.emplace_back(g, rb);
        for (int64_t r = rb; r < re; ++r) {
          for (int64_t gi = 0; gi < ngroups; ++gi) {
            codes[static_cast<size_t>(gi)] =
                cursors[static_cast<size_t>(gi)].At(r);
          }
          for (size_t p = 0; p < pairs.size(); ++p) {
            const Pair& pr = pairs[p];
            if (pr.gi == pr.gj) {
              ++counts[p][codes[static_cast<size_t>(pr.gi)]];
            } else {
              int64_t dj = groups_[static_cast<size_t>(pr.gj)].NumValues();
              ++counts[p][static_cast<size_t>(
                  codes[static_cast<size_t>(pr.gi)] * dj +
                  codes[static_cast<size_t>(pr.gj)])];
            }
          }
        }
      },
      "compress");
  // Integer merge — exact regardless of chunk count, so the whole tsmm is
  // deterministic independent of threading.
  std::vector<std::vector<int64_t>> counts(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    counts[p].assign(static_cast<size_t>(pairs[p].table_size), 0);
    for (const auto& chunk : chunk_counts) {
      if (chunk.empty()) continue;
      for (int64_t i = 0; i < pairs[p].table_size; ++i) {
        counts[p][static_cast<size_t>(i)] += chunk[p][static_cast<size_t>(i)];
      }
    }
  }
  // Contract each pair's count table with the two dictionaries. Pairs write
  // disjoint output panels, so the contraction fans out over pairs.
  std::vector<int64_t> group_start(static_cast<size_t>(ngroups));
  for (int64_t gi = 0; gi < ngroups; ++gi) {
    group_start[static_cast<size_t>(gi)] =
        groups_[static_cast<size_t>(gi)].cols.front();
  }
  int64_t pair_chunks =
      num_threads <= 1
          ? 1
          : std::min<int64_t>(num_threads,
                              static_cast<int64_t>(pairs.size()));
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(pairs.size()), pair_chunks,
      [&](int64_t pb, int64_t pe) {
        for (int64_t p = pb; p < pe; ++p) {
          const Pair& pr = pairs[static_cast<size_t>(p)];
          const ColGroup& a = groups_[static_cast<size_t>(pr.gi)];
          const ColGroup& bg = groups_[static_cast<size_t>(pr.gj)];
          const int64_t ca = a.NumCols(), cb = bg.NumCols();
          const int64_t base_a = group_start[static_cast<size_t>(pr.gi)];
          const int64_t base_b = group_start[static_cast<size_t>(pr.gj)];
          const std::vector<int64_t>& cnt = counts[static_cast<size_t>(p)];
          if (pr.gi == pr.gj) {
            for (int64_t k = 0; k < a.NumValues(); ++k) {
              int64_t c = cnt[static_cast<size_t>(k)];
              if (c == 0) continue;
              const double* tuple = a.dict.data() + k * ca;
              double cd = static_cast<double>(c);
              for (int64_t pi = 0; pi < ca; ++pi) {
                if (tuple[pi] == 0.0) continue;
                double av = tuple[pi] * cd;
                double* orow = out.DenseRow(base_a + pi);
                for (int64_t qi = pi; qi < ca; ++qi) {
                  orow[base_a + qi] += av * tuple[qi];
                }
              }
            }
          } else {
            const int64_t db = bg.NumValues();
            for (int64_t ki = 0; ki < a.NumValues(); ++ki) {
              const double* ta = a.dict.data() + ki * ca;
              for (int64_t kj = 0; kj < db; ++kj) {
                int64_t c = cnt[static_cast<size_t>(ki * db + kj)];
                if (c == 0) continue;
                const double* tb = bg.dict.data() + kj * cb;
                double cd = static_cast<double>(c);
                for (int64_t pi = 0; pi < ca; ++pi) {
                  if (ta[pi] == 0.0) continue;
                  double av = ta[pi] * cd;
                  double* orow = out.DenseRow(base_a + pi);
                  for (int64_t qi = 0; qi < cb; ++qi) {
                    orow[base_b + qi] += av * tb[qi];
                  }
                }
              }
            }
          }
        }
      },
      "compress");
  // Mirror the computed upper triangle into the lower one.
  double* pc = out.DenseData();
  for (int64_t i = 0; i < cols_; ++i) {
    for (int64_t j = 0; j < i; ++j) pc[i * cols_ + j] = pc[j * cols_ + i];
  }
  out.MarkNnzDirty();
  out.ExamSparsity();
  return out;
}

CompressedMatrixBlock CompressedMatrixBlock::ScaleByScalar(double s) const {
  CompressedMatrixBlock out = *this;
  for (ColGroup& g : out.groups_) {
    for (double& v : g.dict) v *= s;
    for (double& v : g.values) v *= s;
    // Re-derive the nonfinite flags: scaling by Inf/NaN or overflow can
    // introduce nonfinite values where there were none.
    std::fill(g.col_has_nonfinite.begin(), g.col_has_nonfinite.end(), 0);
    const int64_t c = g.NumCols();
    if (g.IsCompressed()) {
      for (int64_t k = 0; k < g.NumValues(); ++k) {
        for (int64_t j = 0; j < c; ++j) {
          if (!std::isfinite(g.dict[static_cast<size_t>(k * c + j)])) {
            g.col_has_nonfinite[static_cast<size_t>(j)] = 1;
          }
        }
      }
    } else {
      for (int64_t j = 0; j < c; ++j) {
        const double* src = g.values.data() + j * rows_;
        for (int64_t r = 0; r < rows_; ++r) {
          if (!std::isfinite(src[r])) {
            g.col_has_nonfinite[static_cast<size_t>(j)] = 1;
            break;
          }
        }
      }
    }
  }
  if (s == 0.0) out.nnz_ = 0;
  return out;
}

}  // namespace sysds
