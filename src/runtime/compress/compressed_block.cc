#include "runtime/compress/compressed_block.h"

#include <map>

namespace sysds {

CompressedMatrixBlock CompressedMatrixBlock::Compress(const MatrixBlock& m) {
  CompressedMatrixBlock c;
  c.rows_ = m.Rows();
  c.cols_ = m.Cols();
  c.groups_.resize(static_cast<size_t>(m.Cols()));
  for (int64_t col = 0; col < m.Cols(); ++col) {
    ColGroup& g = c.groups_[static_cast<size_t>(col)];
    // Distinct-value analysis with an early exit at 256.
    std::map<double, uint8_t> dict_map;
    bool compressible = true;
    for (int64_t r = 0; r < m.Rows(); ++r) {
      double v = m.Get(r, col);
      if (dict_map.count(v)) continue;
      if (dict_map.size() >= 255) {
        compressible = false;
        break;
      }
      dict_map.emplace(v, static_cast<uint8_t>(dict_map.size()));
    }
    if (compressible) {
      g.compressed = true;
      g.dict.resize(dict_map.size());
      for (const auto& [value, code] : dict_map) g.dict[code] = value;
      g.codes.resize(static_cast<size_t>(m.Rows()));
      for (int64_t r = 0; r < m.Rows(); ++r) {
        g.codes[static_cast<size_t>(r)] = dict_map[m.Get(r, col)];
      }
    } else {
      g.values.resize(static_cast<size_t>(m.Rows()));
      for (int64_t r = 0; r < m.Rows(); ++r) {
        g.values[static_cast<size_t>(r)] = m.Get(r, col);
      }
    }
  }
  return c;
}

int64_t CompressedMatrixBlock::EstimateSizeInBytes() const {
  int64_t total = 64;
  for (const ColGroup& g : groups_) {
    if (g.compressed) {
      total += static_cast<int64_t>(g.dict.size()) * 8 +
               static_cast<int64_t>(g.codes.size());
    } else {
      total += static_cast<int64_t>(g.values.size()) * 8;
    }
  }
  return total;
}

double CompressedMatrixBlock::CompressionRatio() const {
  int64_t dense = rows_ * cols_ * 8;
  int64_t compressed = EstimateSizeInBytes();
  return compressed > 0 ? static_cast<double>(dense) / compressed : 1.0;
}

int64_t CompressedMatrixBlock::NumCompressedColumns() const {
  int64_t n = 0;
  for (const ColGroup& g : groups_) n += g.compressed;
  return n;
}

double CompressedMatrixBlock::Get(int64_t r, int64_t c) const {
  const ColGroup& g = groups_[static_cast<size_t>(c)];
  return g.compressed ? g.dict[g.codes[static_cast<size_t>(r)]]
                      : g.values[static_cast<size_t>(r)];
}

MatrixBlock CompressedMatrixBlock::Decompress() const {
  MatrixBlock m = MatrixBlock::Dense(rows_, cols_);
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < rows_; ++r) {
      double v = Get(r, c);
      if (v != 0.0) m.DenseRow(r)[c] = v;
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

double CompressedMatrixBlock::Sum() const {
  double total = 0.0;
  for (const ColGroup& g : groups_) {
    if (g.compressed) {
      // Value-indexed aggregation: count per code, then dot with dict.
      std::vector<int64_t> counts(g.dict.size(), 0);
      for (uint8_t code : g.codes) ++counts[code];
      for (size_t k = 0; k < g.dict.size(); ++k) {
        total += g.dict[k] * static_cast<double>(counts[k]);
      }
    } else {
      for (double v : g.values) total += v;
    }
  }
  return total;
}

MatrixBlock CompressedMatrixBlock::ColSums() const {
  MatrixBlock out = MatrixBlock::Dense(1, cols_);
  for (int64_t c = 0; c < cols_; ++c) {
    const ColGroup& g = groups_[static_cast<size_t>(c)];
    double total = 0.0;
    if (g.compressed) {
      std::vector<int64_t> counts(g.dict.size(), 0);
      for (uint8_t code : g.codes) ++counts[code];
      for (size_t k = 0; k < g.dict.size(); ++k) {
        total += g.dict[k] * static_cast<double>(counts[k]);
      }
    } else {
      for (double v : g.values) total += v;
    }
    out.DenseData()[c] = total;
  }
  out.MarkNnzDirty();
  return out;
}

StatusOr<MatrixBlock> CompressedMatrixBlock::MatVecRight(
    const MatrixBlock& v) const {
  if (v.Rows() != cols_ || v.Cols() != 1) {
    return InvalidArgument("compressed matvec: vector shape mismatch");
  }
  MatrixBlock out = MatrixBlock::Dense(rows_, 1);
  double* po = out.DenseData();
  for (int64_t c = 0; c < cols_; ++c) {
    const ColGroup& g = groups_[static_cast<size_t>(c)];
    double vc = v.Get(c, 0);
    if (vc == 0.0) continue;
    if (g.compressed) {
      // Pre-scale the dictionary once, then a code-indexed gather.
      std::vector<double> scaled(g.dict.size());
      for (size_t k = 0; k < g.dict.size(); ++k) scaled[k] = g.dict[k] * vc;
      for (int64_t r = 0; r < rows_; ++r) {
        po[r] += scaled[g.codes[static_cast<size_t>(r)]];
      }
    } else {
      for (int64_t r = 0; r < rows_; ++r) {
        po[r] += g.values[static_cast<size_t>(r)] * vc;
      }
    }
  }
  out.MarkNnzDirty();
  return out;
}

StatusOr<MatrixBlock> CompressedMatrixBlock::VecMatLeft(
    const MatrixBlock& y) const {
  if (y.Rows() != rows_ || y.Cols() != 1) {
    return InvalidArgument("compressed t(X)y: vector shape mismatch");
  }
  MatrixBlock out = MatrixBlock::Dense(cols_, 1);
  for (int64_t c = 0; c < cols_; ++c) {
    const ColGroup& g = groups_[static_cast<size_t>(c)];
    double total = 0.0;
    if (g.compressed) {
      // Value-indexed aggregation of y into per-code buckets.
      std::vector<double> buckets(g.dict.size(), 0.0);
      for (int64_t r = 0; r < rows_; ++r) {
        buckets[g.codes[static_cast<size_t>(r)]] += y.Get(r, 0);
      }
      for (size_t k = 0; k < g.dict.size(); ++k) {
        total += g.dict[k] * buckets[k];
      }
    } else {
      for (int64_t r = 0; r < rows_; ++r) {
        total += g.values[static_cast<size_t>(r)] * y.Get(r, 0);
      }
    }
    out.DenseData()[c] = total;
  }
  out.MarkNnzDirty();
  return out;
}

CompressedMatrixBlock CompressedMatrixBlock::ScaleByScalar(double s) const {
  CompressedMatrixBlock out = *this;
  for (ColGroup& g : out.groups_) {
    if (g.compressed) {
      for (double& v : g.dict) v *= s;  // O(#distinct), codes untouched
    } else {
      for (double& v : g.values) v *= s;
    }
  }
  return out;
}

}  // namespace sysds
