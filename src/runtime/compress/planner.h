#ifndef SYSDS_RUNTIME_COMPRESS_PLANNER_H_
#define SYSDS_RUNTIME_COMPRESS_PLANNER_H_

#include <cstdint>
#include <vector>

#include "runtime/compress/compressed_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Knobs of the sampling-based compression planner (config surface:
/// DMLConfig::compression_*).
struct CompressionSettings {
  // Rows to sample for the estimates. The sample is a set of contiguous row
  // segments spread evenly over the matrix: contiguity preserves adjacency
  // for the RLE run estimate while the spread keeps distinct-count
  // estimates honest. Deterministic — no RNG, so plans are reproducible.
  int64_t sample_rows = 2048;
  // A matrix is only worth compressing when (estimated) in-memory size /
  // compressed size reaches this ratio.
  double min_ratio = 1.2;
  // Upper bound on co-coded group width.
  int64_t max_group_cols = 4;
  // Greedy adjacent-column co-coding (merge two groups when the joint
  // dictionary is estimated smaller than the separate ones).
  bool cocode = true;
};

/// One planned column group: which adjacent columns to co-code and the
/// encoding chosen from the sampled estimates.
struct PlannedGroup {
  std::vector<int64_t> cols;
  ColEncoding encoding = ColEncoding::kUncompressed;
  // Sampled estimates behind the decision (exposed for tests/metrics).
  int64_t est_distinct = 0;
  double est_bytes = 0;
};

struct CompressionPlan {
  std::vector<PlannedGroup> groups;
  double est_compressed_bytes = 0;
  // Estimated (current in-memory size) / (compressed size); sparse inputs
  // are measured against their sparse size, not the dense upper bound.
  double est_ratio = 0;
  // est_ratio >= min_ratio and at least one group compresses.
  bool worthwhile = false;
  int64_t sampled_rows = 0;
};

/// Sampling-based compression planner (cost-gated plan selection in the
/// spirit of Boehm's runtime-plan costing): estimates per-column distinct
/// counts (Chao-style scale-up of sample distincts), RLE run counts and SDC
/// default-value frequency from a row sample, prices every encoding per
/// column, greedily co-codes adjacent correlated columns, and applies the
/// min-ratio gate.
class CompressionPlanner {
 public:
  static CompressionPlan Plan(const MatrixBlock& m,
                              const CompressionSettings& settings);
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_COMPRESS_PLANNER_H_
