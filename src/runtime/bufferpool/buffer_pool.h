#ifndef SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_
#define SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"

namespace sysds {

class MatrixObject;

/// Asynchronous, pressure-aware multi-level buffer pool (paper §2.3(3)).
///
/// Tracks the in-memory matrix working set against a byte limit and evicts
/// unpinned variables to local temp files when the limit is exceeded. Three
/// properties distinguish it from a synchronous LRU cache:
///
///  1. Write-behind eviction. Blocks are immutable once constructed, so an
///     object whose spill file has been written ("clean") can be evicted by
///     simply dropping the in-memory payload — no I/O on the caller path.
///     A background writer thread spills dirty unpinned blocks ahead of
///     need (via the crash-safe io::WriteAtomic path), turning most future
///     evictions into free page drops. Synchronous spilling only happens
///     as a backstop when memory exceeds the hard limit (limit times
///     Options::hard_limit_factor) faster than the writer can drain.
///
///  2. Scan-resistant victim selection. The default 2Q-style policy keeps a
///     probationary FIFO (A1in) for objects seen once and a protected LRU
///     (Am) for objects re-referenced after admission. One large scan
///     (decompress, transformencode, data load) cycles through A1in without
///     displacing the protected working set. Options::policy = kLru
///     restores the classic single-queue behaviour for comparison.
///
///  3. Pressure export and hint-driven prefetch. Headroom() reports
///     limit - pinned - inflight-restore bytes, the real admission signal
///     consumed by the scoring service's kOom fast-reject and the
///     compression rewrite. Prefetch(obj) schedules an asynchronous restore
///     of a spilled object on the background thread; the compiler's loop
///     liveness pass drives it with each loop's invariant reads so cold
///     operands stream back in while the current iteration computes.
///
/// Object state machine (one MatrixObject, as seen by the pool):
///
///   resident-dirty --(write-behind / sync spill write)--> resident-clean
///   resident-clean --(evict: free drop)-----------------> spilled
///   resident-dirty --(sync evict: write + drop)---------> spilled
///   spilled --(AcquireRead miss / Prefetch)-------------> restoring
///   restoring --(read + checksum verify ok)-------------> resident-clean
///   restoring --(kCorrupt / kIoError)-------------------> spilled (file
///                                            kept, error retryable)
///
/// Restores are single-flight: concurrent acquires of one spilled object
/// coalesce onto one disk read (waiters block on the object's condition
/// variable, not on a second read). A restored object keeps its spill file
/// and stays clean, so re-evicting it is again a free drop.
///
/// MatrixObject calls Register/Touch/Unregister/NotePinned; eviction and
/// write-behind call back into MatrixObject::EvictTo/WriteBack/DropIfClean.
/// Lock order is strictly pool -> object; the object never calls the pool
/// while holding its own mutex.
class BufferPool {
 public:
  enum class EvictionPolicy {
    kLru,  // single recency queue (the pre-async behaviour)
    k2Q,   // probationary FIFO + protected LRU (scan-resistant, default)
  };

  struct Options {
    int64_t limit_bytes = 0;
    EvictionPolicy policy = EvictionPolicy::k2Q;
    /// Background spill writer: evictions prefer free drops of clean
    /// blocks and dirty victims are written behind. When off, every
    /// eviction writes synchronously on the caller thread.
    bool write_behind = true;
    /// Accept Prefetch() hints (loop-invariant reads restore ahead of
    /// need). When off, Prefetch() is a no-op.
    bool prefetch = true;
    /// Callers block on synchronous eviction only above
    /// limit_bytes * hard_limit_factor; between the soft and hard limit
    /// the writer catches up asynchronously.
    double hard_limit_factor = 1.25;
    /// Fraction of the limit reserved for the probationary A1in queue
    /// before its head is evicted in preference to the protected queue.
    double probation_fraction = 0.25;
  };

  explicit BufferPool(int64_t limit_bytes);
  explicit BufferPool(const Options& options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers (or re-registers after restore) a cached object of the given
  /// size and evicts others if over the limit.
  void Register(MatrixObject* obj, int64_t size_bytes);

  /// Marks the object referenced: promotes a re-referenced probationary
  /// entry to the protected queue (2Q) or moves it most-recently-used
  /// (LRU).
  void Touch(MatrixObject* obj);

  /// Removes the object from tracking (destruction or eviction). Blocks
  /// until any in-flight background writeback/prefetch touching the object
  /// has completed, so the caller may safely destroy it afterwards.
  void Unregister(MatrixObject* obj);

  /// Pin accounting from MatrixObject::AcquireRead/Release: `pinned` flips
  /// on the 0->1 and 1->0 pin-count transitions. Pinned bytes feed
  /// Headroom().
  void NotePinned(MatrixObject* obj, bool pinned);

  /// Hint-driven prefetch: schedules an asynchronous restore when `obj` is
  /// spilled and no restore is in flight. No-op for resident objects, when
  /// prefetching is disabled, or while the pool is shutting down.
  void Prefetch(MatrixObject* obj);

  /// Real admission headroom: limit - pinned - inflight-restore bytes.
  /// May be negative when pinned data alone exceeds the limit (the
  /// pinned-storm case a caller should fast-reject on).
  int64_t Headroom() const;

  /// True when admitting `upcoming_bytes` more live data would exceed the
  /// current headroom — the pressure signal for admission control and the
  /// compression rewrite.
  bool UnderPressure(int64_t upcoming_bytes) const;

  /// Blocks until the background queue is empty and no task is in flight
  /// (then re-runs one eviction pass so freshly-cleaned blocks can drop).
  /// Tests and benchmarks use this to observe the steady state.
  void Drain();

  int64_t CachedBytes() const;
  int64_t PinnedBytes() const;
  int64_t EvictionCount() const;
  int64_t limit_bytes() const;
  void SetLimit(int64_t limit_bytes);
  const Options& options() const { return options_; }

  /// Directory for spill files (created on demand).
  const std::string& SpillDir() const { return spill_dir_; }

  /// Stable per-object spill path: the spill file is written once and
  /// stays valid for the object's lifetime (blocks are immutable), so
  /// repeated evictions reuse it without rewriting.
  std::string SpillPathFor(const MatrixObject* obj) const;

 private:
  enum class TaskKind { kWriteback, kPrefetch };
  struct Task {
    TaskKind kind;
    MatrixObject* obj;
  };

  struct Entry {
    int64_t size = 0;
    // In a recency queue with a valid `pos`. False for ghost entries
    // created by Prefetch for spilled (untracked) objects.
    bool resident = false;
    std::list<MatrixObject*>::iterator pos;
    int queue = 0;        // 0 = A1in (probation), 1 = Am (protected)
    int64_t touches = 0;  // promotions happen on the second touch
    bool pinned = false;
    bool queued_writeback = false;
    // Background tasks currently holding a raw pointer to the object;
    // Unregister waits for this to reach zero.
    int inflight = 0;
    // Restore scheduled or running for this object (prefetch headroom).
    bool restoring = false;
  };

  // All *Locked methods require mutex_ held. `caller_blocking` is true when
  // a foreground thread is waiting on the pass (feeds the stall histogram).
  void EvictIfNeededLocked(std::unique_lock<std::mutex>& lock,
                           bool caller_blocking);
  // `protect_am` guards the protected queue against scan pressure: when the
  // probation queue is over its reservation but has no actionable victim
  // (everything queued behind the writer), return null and let the pass
  // wait for write-behind instead of flushing Am. Passed false above the
  // hard limit, where bounding memory beats preserving the working set.
  MatrixObject* PickVictimLocked(
      const std::unordered_set<MatrixObject*>& skip, bool protect_am);
  void RemoveEntryLocked(Entry* e, MatrixObject* obj);
  // Drops queued (not yet started) tasks referencing `obj` and resets the
  // matching entry flags. `e` may be null when the object has no entry.
  void PurgeTasksLocked(MatrixObject* obj, Entry* e);
  void EnqueueLocked(Task task, Entry* e);
  void BackgroundLoop();
  void RunWriteback(MatrixObject* obj, std::unique_lock<std::mutex>& lock);
  void RunPrefetch(MatrixObject* obj, std::unique_lock<std::mutex>& lock);

  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      // background thread wakeup
  std::condition_variable inflight_cv_;  // Unregister / Drain wait
  int64_t limit_bytes_;
  int64_t cached_bytes_ = 0;
  int64_t pinned_bytes_ = 0;
  int64_t inflight_restore_bytes_ = 0;
  int64_t evictions_ = 0;
  bool stopping_ = false;
  int inflight_tasks_ = 0;
  std::string spill_dir_;
  std::deque<Task> task_queue_;
  // queues_[0] = A1in probationary FIFO, queues_[1] = Am protected LRU.
  // In kLru mode only queues_[1] is used. Front = next eviction candidate.
  std::list<MatrixObject*> queues_[2];
  int64_t queue_bytes_[2] = {0, 0};
  std::unordered_map<MatrixObject*, Entry> entries_;
  std::thread background_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_
