#ifndef SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_
#define SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace sysds {

class MatrixObject;

/// Multi-level buffer pool (paper §2.3(3)): tracks the in-memory matrix
/// working set and evicts least-recently-used, unpinned variables to local
/// temp files when the configured limit is exceeded. MatrixObject calls
/// Register/Touch/Unregister; eviction writes the binary block format and
/// the object restores lazily on its next acquire.
class BufferPool {
 public:
  explicit BufferPool(int64_t limit_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers (or re-registers after restore) a cached object of the given
  /// size and evicts others if over the limit.
  void Register(MatrixObject* obj, int64_t size_bytes);

  /// Marks the object most-recently-used.
  void Touch(MatrixObject* obj);

  /// Removes the object from tracking (destruction or eviction).
  void Unregister(MatrixObject* obj);

  int64_t CachedBytes() const;
  int64_t EvictionCount() const { return evictions_; }
  int64_t limit_bytes() const { return limit_bytes_; }
  void SetLimit(int64_t limit_bytes);

  /// Directory for spill files (created on demand).
  const std::string& SpillDir() const { return spill_dir_; }

 private:
  void EvictIfNeededLocked();

  mutable std::mutex mutex_;
  int64_t limit_bytes_;
  int64_t cached_bytes_ = 0;
  int64_t evictions_ = 0;
  int64_t file_counter_ = 0;
  std::string spill_dir_;
  // LRU list front = least recently used.
  std::list<MatrixObject*> lru_;
  std::unordered_map<MatrixObject*,
                     std::pair<std::list<MatrixObject*>::iterator, int64_t>>
      entries_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_BUFFERPOOL_BUFFER_POOL_H_
