#include "runtime/bufferpool/buffer_pool.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/controlprog/data.h"

namespace sysds {

namespace {
struct PoolMetrics {
  obs::Gauge* cached_bytes;
  obs::Counter* evictions;
  obs::Counter* spilled_bytes;
  obs::Counter* spill_retries;
  obs::Counter* spill_repins;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = {
      obs::MetricsRegistry::Get().GetGauge("bufferpool.cached_bytes"),
      obs::MetricsRegistry::Get().GetCounter("bufferpool.evictions"),
      obs::MetricsRegistry::Get().GetCounter("bufferpool.spilled_bytes"),
      obs::MetricsRegistry::Get().GetCounter("fault.bufferpool.spill_retries"),
      obs::MetricsRegistry::Get().GetCounter("fault.bufferpool.spill_repins"),
  };
  return m;
}
}  // namespace

BufferPool::BufferPool(int64_t limit_bytes) : limit_bytes_(limit_bytes) {
  spill_dir_ = (std::filesystem::temp_directory_path() /
                ("sysds_bufferpool_" + std::to_string(::getpid())))
                   .string();
}

BufferPool::~BufferPool() {
  std::error_code ec;
  std::filesystem::remove_all(spill_dir_, ec);
}

void BufferPool::Register(MatrixObject* obj, int64_t size_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it != entries_.end()) {
    cached_bytes_ -= it->second.second;
    lru_.erase(it->second.first);
    entries_.erase(it);
  }
  lru_.push_back(obj);
  entries_[obj] = {std::prev(lru_.end()), size_bytes};
  cached_bytes_ += size_bytes;
  EvictIfNeededLocked();
  Metrics().cached_bytes->Set(cached_bytes_);
}

void BufferPool::Touch(MatrixObject* obj) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it == entries_.end()) return;
  lru_.erase(it->second.first);
  lru_.push_back(obj);
  it->second.first = std::prev(lru_.end());
}

void BufferPool::Unregister(MatrixObject* obj) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it == entries_.end()) return;
  cached_bytes_ -= it->second.second;
  lru_.erase(it->second.first);
  entries_.erase(it);
  Metrics().cached_bytes->Set(cached_bytes_);
}

int64_t BufferPool::CachedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cached_bytes_;
}

void BufferPool::SetLimit(int64_t limit_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  limit_bytes_ = limit_bytes;
  EvictIfNeededLocked();
}

void BufferPool::EvictIfNeededLocked() {
  if (cached_bytes_ <= limit_bytes_) return;
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  // Objects whose spill failed twice this pass: re-pinned in memory (entry
  // and byte accounting stay intact) and skipped until the next pass.
  std::unordered_set<MatrixObject*> repinned;
  auto it = lru_.begin();
  while (cached_bytes_ > limit_bytes_ && it != lru_.end()) {
    MatrixObject* victim = *it;
    if (victim->PinCount() > 0 || !victim->IsCached() ||
        repinned.count(victim) > 0) {
      ++it;
      continue;
    }
    // Spill first, then account: entry and bytes are only removed once the
    // block is safely on disk (a failed spill must not strand the object
    // cached-but-untracked).
    StatusOr<bool> evicted = false;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt > 0) Metrics().spill_retries->Add(1);
      std::string path =
          spill_dir_ + "/m" + std::to_string(file_counter_++) + ".bin";
      SYSDS_SPAN("bufferpool", "spill");
      evicted = victim->EvictTo(path);
      if (evicted.ok()) break;
    }
    if (!evicted.ok()) {
      // Degrade: keep the block resident and move on. The pool may stay
      // over its limit until the spill device recovers.
      Metrics().spill_repins->Add(1);
      obs::Tracer::Instant("bufferpool", "spill_repin");
      repinned.insert(victim);
      ++it;
      continue;
    }
    if (!*evicted) {  // raced with a concurrent pin
      ++it;
      continue;
    }
    auto entry = entries_.find(victim);
    int64_t size = entry->second.second;
    it = lru_.erase(it);
    entries_.erase(entry);
    cached_bytes_ -= size;
    ++evictions_;
    Metrics().evictions->Add(1);
    Metrics().spilled_bytes->Add(size);
    obs::Tracer::Instant("bufferpool", "evict");
  }
  Metrics().cached_bytes->Set(cached_bytes_);
}

}  // namespace sysds
