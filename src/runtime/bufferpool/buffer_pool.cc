#include "runtime/bufferpool/buffer_pool.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/controlprog/data.h"

namespace sysds {

namespace {
struct PoolMetrics {
  obs::Gauge* cached_bytes;
  obs::Gauge* pinned_bytes;
  obs::Gauge* headroom;
  obs::Counter* evictions;
  obs::Counter* free_drops;
  obs::Counter* sync_spills;
  obs::Counter* spilled_bytes;
  obs::Counter* writebacks;
  obs::Counter* writeback_bytes;
  obs::Counter* writeback_failures;
  obs::Counter* prefetch_issued;
  obs::Counter* spill_retries;
  obs::Counter* spill_repins;
  obs::Histogram* evict_stall_ns;
  obs::Histogram* spill_ns;
};

PoolMetrics& Metrics() {
  auto& r = obs::MetricsRegistry::Get();
  static PoolMetrics m = {
      r.GetGauge("bufferpool.cached_bytes"),
      r.GetGauge("bufferpool.pinned_bytes"),
      r.GetGauge("bufferpool.headroom"),
      r.GetCounter("bufferpool.evictions"),
      r.GetCounter("bufferpool.free_drops"),
      r.GetCounter("bufferpool.sync_spills"),
      r.GetCounter("bufferpool.spilled_bytes"),
      r.GetCounter("bufferpool.writebacks"),
      r.GetCounter("bufferpool.writeback_bytes"),
      r.GetCounter("fault.bufferpool.writeback_failures"),
      r.GetCounter("bufferpool.prefetch_issued"),
      r.GetCounter("fault.bufferpool.spill_retries"),
      r.GetCounter("fault.bufferpool.spill_repins"),
      r.GetHistogram("bufferpool.evict_stall_ns"),
      r.GetHistogram("bufferpool.spill_ns"),
  };
  return m;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

BufferPool::BufferPool(int64_t limit_bytes)
    : BufferPool(Options{.limit_bytes = limit_bytes}) {}

BufferPool::BufferPool(const Options& options)
    : options_(options), limit_bytes_(options.limit_bytes) {
  spill_dir_ = (std::filesystem::temp_directory_path() /
                ("sysds_bufferpool_" + std::to_string(::getpid()) + "_" +
                 std::to_string(reinterpret_cast<uintptr_t>(this))))
                   .string();
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  if (options_.write_behind || options_.prefetch) {
    background_ = std::thread([this] { BackgroundLoop(); });
  }
}

BufferPool::~BufferPool() {
  // If the process-global pool pointer still names this pool, clear it now:
  // MatrixObjects may outlive their pool (e.g. lineage-cached blocks held by
  // a PreparedScript whose pool member is destroyed first), and their
  // destructors must see null rather than call Unregister on freed memory.
  MatrixObject::ClearBufferPool(this);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Abandon queued tasks; the in-flight one (if any) finishes first.
    for (const Task& t : task_queue_) {
      auto it = entries_.find(t.obj);
      if (it == entries_.end()) continue;
      if (t.kind == TaskKind::kWriteback) it->second.queued_writeback = false;
      if (t.kind == TaskKind::kPrefetch && it->second.restoring) {
        it->second.restoring = false;
        inflight_restore_bytes_ -= it->second.size;
      }
    }
    task_queue_.clear();
  }
  work_cv_.notify_all();
  if (background_.joinable()) background_.join();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir_, ec);
}

std::string BufferPool::SpillPathFor(const MatrixObject* obj) const {
  return spill_dir_ + "/m" + std::to_string(obj->ObjectId()) + ".bin";
}

void BufferPool::Register(MatrixObject* obj, int64_t size_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it == entries_.end()) {
    it = entries_.emplace(obj, Entry{}).first;
  }
  Entry& e = it->second;
  if (e.resident) {
    cached_bytes_ -= e.size;
    queue_bytes_[e.queue] -= e.size;
    queues_[e.queue].erase(e.pos);
    e.resident = false;
  }
  if (e.restoring) {
    // A demand restore raced with (and completed before) a scheduled
    // prefetch of the same object; release the prefetch's headroom claim —
    // the task itself will find the object resident and bail.
    inflight_restore_bytes_ -= e.size;
    e.restoring = false;
  }
  e.size = size_bytes;
  int target = 1;  // Am / the single LRU queue
  if (options_.policy == EvictionPolicy::k2Q && e.touches < 2) {
    target = 0;  // probationary A1in until the object proves re-reference
  }
  e.queue = target;
  queues_[target].push_back(obj);
  e.pos = std::prev(queues_[target].end());
  e.resident = true;
  cached_bytes_ += size_bytes;
  queue_bytes_[target] += size_bytes;
  EvictIfNeededLocked(lock, /*caller_blocking=*/true);
  Metrics().cached_bytes->Set(cached_bytes_);
}

void BufferPool::Touch(MatrixObject* obj) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  ++e.touches;
  if (!e.resident) return;  // ghost touch: remembered for re-admission
  int target = e.queue;
  if (options_.policy == EvictionPolicy::k2Q && e.queue == 0 &&
      e.touches >= 2) {
    target = 1;  // promote probation -> protected on re-reference
  }
  if (target != e.queue) {
    queues_[e.queue].erase(e.pos);
    queue_bytes_[e.queue] -= e.size;
    queues_[target].push_back(obj);
    e.pos = std::prev(queues_[target].end());
    e.queue = target;
    queue_bytes_[target] += e.size;
  } else {
    // Move most-recently-used within its queue (FIFO order is preserved
    // for probationary entries: one touch does not reorder A1in).
    if (e.queue == 1) {
      queues_[1].splice(queues_[1].end(), queues_[1], e.pos);
      e.pos = std::prev(queues_[1].end());
    }
  }
}

void BufferPool::PurgeTasksLocked(MatrixObject* obj, Entry* e) {
  for (auto qit = task_queue_.begin(); qit != task_queue_.end();) {
    if (qit->obj == obj) {
      if (e != nullptr) {
        if (qit->kind == TaskKind::kPrefetch && e->restoring) {
          e->restoring = false;
          inflight_restore_bytes_ -= e->size;
        }
        if (qit->kind == TaskKind::kWriteback) e->queued_writeback = false;
      }
      qit = task_queue_.erase(qit);
    } else {
      ++qit;
    }
  }
}

void BufferPool::Unregister(MatrixObject* obj) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  Entry* e = it == entries_.end() ? nullptr : &it->second;
  // Drop queued background work referencing the object. Done even without
  // an entry: a queued task must never outlive its object (the queue holds
  // raw pointers).
  PurgeTasksLocked(obj, e);
  if (e == nullptr) return;
  // Wait out an in-flight writeback/prefetch: the background thread holds a
  // raw pointer to the object and the caller is about to destroy it. The
  // entry must be re-looked-up on every wake — while we wait, the writer's
  // own re-evict pass may free-drop the object and erase the entry.
  inflight_cv_.wait(lock, [&] {
    auto wit = entries_.find(obj);
    return wit == entries_.end() || wit->second.inflight == 0;
  });
  it = entries_.find(obj);
  if (it == entries_.end()) return;
  e = &it->second;
  if (e->restoring) {
    e->restoring = false;
    inflight_restore_bytes_ -= e->size;
  }
  RemoveEntryLocked(e, obj);
  entries_.erase(it);
  Metrics().cached_bytes->Set(cached_bytes_);
  Metrics().pinned_bytes->Set(pinned_bytes_);
}

void BufferPool::RemoveEntryLocked(Entry* e, MatrixObject* obj) {
  (void)obj;
  if (e->resident) {
    cached_bytes_ -= e->size;
    queue_bytes_[e->queue] -= e->size;
    queues_[e->queue].erase(e->pos);
    e->resident = false;
  }
  if (e->pinned) {
    pinned_bytes_ -= e->size;
    e->pinned = false;
  }
}

void BufferPool::NotePinned(MatrixObject* obj, bool pinned) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(obj);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.pinned == pinned) return;
  e.pinned = pinned;
  pinned_bytes_ += pinned ? e.size : -e.size;
  Metrics().pinned_bytes->Set(pinned_bytes_);
  Metrics().headroom->Set(limit_bytes_ - pinned_bytes_ -
                          inflight_restore_bytes_);
}

void BufferPool::Prefetch(MatrixObject* obj) {
  if (!options_.prefetch || background_.joinable() == false) return;
  // Sizing the object takes its lock: pool -> object nesting is the
  // sanctioned order.
  const bool resident = obj->HasPayload();
  const int64_t size = obj->EstimateSizeInBytes();
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || resident) return;
  auto it = entries_.find(obj);
  if (it == entries_.end()) {
    // Evicted objects are not tracked; re-admit a ghost entry so the
    // restore's headroom claim and single-flight state have a home.
    it = entries_.emplace(obj, Entry{}).first;
    it->second.size = size;
  }
  Entry& e = it->second;
  if (e.resident || e.restoring || e.inflight > 0 || e.queued_writeback) {
    return;
  }
  e.restoring = true;
  inflight_restore_bytes_ += e.size;
  task_queue_.push_back({TaskKind::kPrefetch, obj});
  Metrics().prefetch_issued->Add(1);
  work_cv_.notify_one();
}

int64_t BufferPool::Headroom() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_bytes_ - pinned_bytes_ - inflight_restore_bytes_;
}

bool BufferPool::UnderPressure(int64_t upcoming_bytes) const {
  return Headroom() < upcoming_bytes;
}

void BufferPool::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  inflight_cv_.wait(lock, [&] {
    return task_queue_.empty() && inflight_tasks_ == 0;
  });
  EvictIfNeededLocked(lock, /*caller_blocking=*/false);
  Metrics().cached_bytes->Set(cached_bytes_);
}

int64_t BufferPool::CachedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cached_bytes_;
}

int64_t BufferPool::PinnedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pinned_bytes_;
}

int64_t BufferPool::EvictionCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

int64_t BufferPool::limit_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_bytes_;
}

void BufferPool::SetLimit(int64_t limit_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  limit_bytes_ = limit_bytes;
  EvictIfNeededLocked(lock, /*caller_blocking=*/true);
  Metrics().cached_bytes->Set(cached_bytes_);
}

MatrixObject* BufferPool::PickVictimLocked(
    const std::unordered_set<MatrixObject*>& skip, bool protect_am) {
  auto first_unskipped = [&](std::list<MatrixObject*>& q) -> MatrixObject* {
    for (MatrixObject* o : q) {
      if (skip.count(o) == 0) return o;
    }
    return nullptr;
  };
  if (options_.policy == EvictionPolicy::kLru) {
    return first_unskipped(queues_[1]);
  }
  // 2Q: evict probation first while it holds more than its reservation (or
  // the protected queue is empty), else the protected LRU head.
  int64_t a1_target = static_cast<int64_t>(
      static_cast<double>(limit_bytes_) * options_.probation_fraction);
  MatrixObject* victim = nullptr;
  if (queue_bytes_[0] > a1_target || queues_[1].empty()) {
    victim = first_unskipped(queues_[0]);
    // Probation holds the overflow but every candidate is waiting on the
    // background writer: don't let a one-touch scan displace the protected
    // working set. The writer's own re-evict pass drains probation soon.
    if (victim == nullptr && protect_am && !queues_[1].empty()) {
      return nullptr;
    }
  }
  if (victim == nullptr) victim = first_unskipped(queues_[1]);
  if (victim == nullptr) victim = first_unskipped(queues_[0]);
  return victim;
}

void BufferPool::EvictIfNeededLocked(std::unique_lock<std::mutex>& lock,
                                     bool caller_blocking) {
  if (cached_bytes_ <= limit_bytes_) return;
  const int64_t t0 = caller_blocking ? NowNanos() : 0;
  const int64_t hard_limit =
      options_.write_behind
          ? static_cast<int64_t>(static_cast<double>(limit_bytes_) *
                                 options_.hard_limit_factor)
          : limit_bytes_;
  // Victims that cannot make progress this pass: pinned, mid-writeback,
  // scheduled for write-behind, or re-pinned after a failed spill.
  std::unordered_set<MatrixObject*> skip;
  bool did_sync_spill = false;
  while (cached_bytes_ > limit_bytes_) {
    MatrixObject* victim = PickVictimLocked(
        skip, options_.write_behind && cached_bytes_ <= hard_limit);
    if (victim == nullptr) break;
    Entry& e = entries_[victim];
    if (victim->PinCount() > 0 || !victim->HasPayload() || e.inflight > 0) {
      skip.insert(victim);
      continue;
    }
    // Clean blocks drop for free: the spill file already holds the bytes.
    if (victim->DropIfClean()) {
      int64_t size = e.size;
      PurgeTasksLocked(victim, &e);
      RemoveEntryLocked(&e, victim);
      entries_.erase(victim);
      ++evictions_;
      Metrics().evictions->Add(1);
      Metrics().free_drops->Add(1);
      Metrics().spilled_bytes->Add(size);
      obs::Tracer::Instant("bufferpool", "evict_free");
      continue;
    }
    // Dirty victim. Under the hard limit, hand it to the background writer
    // and keep scanning for clean blocks; above it, spill synchronously —
    // the caller eats the write so memory stays bounded.
    if (options_.write_behind && cached_bytes_ <= hard_limit) {
      EnqueueLocked({TaskKind::kWriteback, victim}, &e);
      skip.insert(victim);
      continue;
    }
    StatusOr<bool> evicted = false;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt > 0) Metrics().spill_retries->Add(1);
      SYSDS_SPAN("bufferpool", "spill");
      int64_t w0 = NowNanos();
      evicted = victim->EvictTo(SpillPathFor(victim));
      Metrics().spill_ns->Observe(NowNanos() - w0);
      if (evicted.ok()) break;
    }
    if (!evicted.ok()) {
      // Degrade: keep the block resident and move on. The pool may stay
      // over its limit until the spill device recovers.
      Metrics().spill_repins->Add(1);
      obs::Tracer::Instant("bufferpool", "spill_repin");
      skip.insert(victim);
      continue;
    }
    if (!*evicted) {  // raced with a concurrent pin or an in-flight write
      skip.insert(victim);
      continue;
    }
    int64_t size = e.size;
    PurgeTasksLocked(victim, &e);
    RemoveEntryLocked(&e, victim);
    entries_.erase(victim);
    ++evictions_;
    did_sync_spill = true;
    Metrics().evictions->Add(1);
    Metrics().sync_spills->Add(1);
    Metrics().spilled_bytes->Add(size);
    obs::Tracer::Instant("bufferpool", "evict");
  }
  (void)lock;
  (void)did_sync_spill;
  if (caller_blocking) {
    Metrics().evict_stall_ns->Observe(NowNanos() - t0);
  }
  Metrics().cached_bytes->Set(cached_bytes_);
}

void BufferPool::EnqueueLocked(Task task, Entry* e) {
  if (stopping_) return;
  if (task.kind == TaskKind::kWriteback) {
    if (e->queued_writeback || e->inflight > 0) return;
    e->queued_writeback = true;
  }
  task_queue_.push_back(task);
  work_cv_.notify_one();
}

void BufferPool::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !task_queue_.empty(); });
    if (stopping_) break;
    Task task = task_queue_.front();
    task_queue_.pop_front();
    auto it = entries_.find(task.obj);
    if (it == entries_.end()) continue;  // unregistered while queued
    Entry& e = it->second;
    ++e.inflight;
    ++inflight_tasks_;
    if (task.kind == TaskKind::kWriteback) {
      e.queued_writeback = false;
      RunWriteback(task.obj, lock);
    } else {
      RunPrefetch(task.obj, lock);
    }
    // `e` stays valid: Unregister cannot erase the entry while
    // e.inflight > 0 (it waits on inflight_cv_).
    --e.inflight;
    --inflight_tasks_;
    inflight_cv_.notify_all();
    if (cached_bytes_ > limit_bytes_) {
      EvictIfNeededLocked(lock, /*caller_blocking=*/false);
    }
    Metrics().cached_bytes->Set(cached_bytes_);
  }
}

void BufferPool::RunWriteback(MatrixObject* obj,
                              std::unique_lock<std::mutex>& lock) {
  const std::string path = SpillPathFor(obj);
  lock.unlock();
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  SYSDS_SPAN("bufferpool", "writeback");
  StatusOr<bool> wrote = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) Metrics().spill_retries->Add(1);
    int64_t w0 = NowNanos();
    wrote = obj->WriteBack(path);
    Metrics().spill_ns->Observe(NowNanos() - w0);
    if (wrote.ok()) break;
  }
  lock.lock();
  auto it = entries_.find(obj);
  if (!wrote.ok()) {
    Metrics().writeback_failures->Add(1);
    obs::Tracer::Instant("bufferpool", "writeback_failed");
    return;
  }
  if (*wrote && it != entries_.end()) {
    Metrics().writebacks->Add(1);
    Metrics().writeback_bytes->Add(it->second.size);
  }
}

void BufferPool::RunPrefetch(MatrixObject* obj,
                             std::unique_lock<std::mutex>& lock) {
  // Claimed size is released here (restore either made the object resident
  // and accountable as cached bytes, or failed and freed the claim).
  lock.unlock();
  SYSDS_SPAN("bufferpool", "prefetch");
  obj->PrefetchRestore();
  int64_t size = obj->EstimateSizeInBytes();
  bool resident = obj->HasPayload();
  lock.lock();
  auto it = entries_.find(obj);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.restoring) {
    e.restoring = false;
    inflight_restore_bytes_ -= e.size;
  }
  if (!resident || e.resident) {
    // Restore failed (silently: the next demand acquire surfaces the
    // error) or a demand restore re-registered the object concurrently.
    return;
  }
  e.size = size;
  int target = 1;
  if (options_.policy == EvictionPolicy::k2Q && e.touches < 2) target = 0;
  e.queue = target;
  queues_[target].push_back(obj);
  e.pos = std::prev(queues_[target].end());
  e.resident = true;
  cached_bytes_ += size;
  queue_bytes_[target] += size;
}

}  // namespace sysds
