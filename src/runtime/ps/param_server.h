#ifndef SYSDS_RUNTIME_PS_PARAM_SERVER_H_
#define SYSDS_RUNTIME_PS_PARAM_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Update protocol of the parameter server backend (paper §2.3(4)): bulk-
/// synchronous (workers barrier every batch round) or asynchronous (workers
/// push/pull without coordination).
enum class PsUpdateMode { kBSP, kASP };

/// Objective for the built-in mini-batch workers.
enum class PsObjective { kLinearRegression, kLogisticRegression };

struct PsConfig {
  int num_workers = 4;
  int epochs = 5;
  int64_t batch_size = 32;
  double learning_rate = 0.1;
  double reg = 0.0;
  PsUpdateMode mode = PsUpdateMode::kBSP;
  PsObjective objective = PsObjective::kLinearRegression;
  uint64_t seed = 42;  // shuffling

  // Model-version checkpoints (src/runtime/recovery/): in BSP mode the
  // model is snapshotted to `<checkpoint_dir>/ps_model.ckpt` (crash-safe:
  // CRC32 footer + atomic rename) every `checkpoint_every_rounds` completed
  // rounds. A later run with `resume` set restarts training from the saved
  // model and round instead of round 0. BSP aggregation is deterministic
  // (gradients buffered per round, applied in worker-id order at the
  // barrier), so an uninterrupted run and a crash+resume run produce
  // bit-identical weights.
  std::string checkpoint_dir;
  int64_t checkpoint_every_rounds = 1;
  bool resume = false;
  // Rollback on worker-exclusion cascades: when this many workers have been
  // excluded since the last checkpoint, the model is rolled back to that
  // checkpoint (discarding rounds that may mix partial pushes from the dead
  // workers) and training continues with the survivors. 0 disables.
  int rollback_after_exclusions = 0;
};

struct PsResult {
  MatrixBlock weights;
  double final_loss = 0.0;
  int64_t pushes = 0;  // gradient pushes processed by the server
  /// Workers dropped from the aggregation after exhausting their retry
  /// budget (chaos mode); the barrier adapts so surviving workers finish.
  int excluded_workers = 0;
  /// Model rollbacks to the last checkpoint (exclusion cascades).
  int rollbacks = 0;
  /// Round training restarted from (0 for a fresh run).
  int64_t resumed_round = 0;
};

/// In-process parameter server: the model lives at the "server" (mutex-
/// protected); N worker threads iterate mini-batches of their row
/// partition, pull the model, compute gradients, and push updates.
/// BSP barriers after each round; ASP runs free. Data is row-partitioned
/// across workers (each worker's shard stays private, mirroring the data-
/// parallel execution SystemDS compiles for mini-batch training).
///
/// Fault tolerance: pull/push calls probe FaultLayer::kPs (id = worker).
/// Dropped calls are retried (bounded, fault.ps.retries); a worker that
/// crashes or exhausts its budget is excluded from the aggregation — the
/// BSP barrier shrinks to the surviving workers instead of wedging
/// (fault.ps.excluded_workers, PsResult::excluded_workers). Training only
/// fails when every worker is lost.
StatusOr<PsResult> PsTrain(const MatrixBlock& x, const MatrixBlock& y,
                           const PsConfig& config);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_PS_PARAM_SERVER_H_
