#include "runtime/ps/param_server.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "io/atomic_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

namespace {

// Gradient of the objective on rows [rb, re) given dense weights; returns
// the per-example-averaged gradient.
std::vector<double> ComputeGradient(const MatrixBlock& x,
                                    const MatrixBlock& y, int64_t rb,
                                    int64_t re,
                                    const std::vector<double>& w,
                                    PsObjective objective, double reg) {
  int64_t m = x.Cols();
  std::vector<double> grad(static_cast<size_t>(m), 0.0);
  for (int64_t r = rb; r < re; ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    double err;
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      err = p - y.Get(r, 0);
    } else {
      err = pred - y.Get(r, 0);
    }
    for (int64_t c = 0; c < m; ++c) grad[c] += err * x.Get(r, c);
  }
  double inv = 1.0 / static_cast<double>(re - rb);
  for (int64_t c = 0; c < m; ++c) grad[c] = grad[c] * inv + reg * w[c];
  return grad;
}

double ComputeLoss(const MatrixBlock& x, const MatrixBlock& y,
                   const std::vector<double>& w, PsObjective objective) {
  double loss = 0.0;
  int64_t m = x.Cols();
  for (int64_t r = 0; r < x.Rows(); ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      double yv = y.Get(r, 0);
      p = std::min(1.0 - 1e-12, std::max(1e-12, p));
      loss += -(yv * std::log(p) + (1.0 - yv) * std::log(1.0 - p));
    } else {
      double d = pred - y.Get(r, 0);
      loss += 0.5 * d * d;
    }
  }
  return loss / static_cast<double>(std::max<int64_t>(1, x.Rows()));
}

// Push/pull retry budget. Training runs make thousands of server calls, so
// the budget must drive the per-call permanent-failure probability low
// enough that a 10% drop rate (the chaos-suite default) rarely costs a
// worker: 0.1^5 = 1e-5 per call.
constexpr int kPsMaxAttempts = 5;

struct PsFaultMetrics {
  obs::Counter* retries;
  obs::Counter* excluded;
};

PsFaultMetrics& FaultMetrics() {
  static PsFaultMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fault.ps.retries"),
      obs::MetricsRegistry::Get().GetCounter("fault.ps.excluded_workers"),
  };
  return m;
}

/// One worker->server call (pull or push) under fault injection: a dropped
/// message is retried with a short pause; the budget bounds how long a
/// sick worker can hold up its round.
template <typename Op>
Status PsCall(int wid, const char* what, Op&& op) {
  FaultInjector& inj = FaultInjector::Get();
  for (int attempt = 0; attempt < kPsMaxAttempts; ++attempt) {
    if (attempt > 0) {
      FaultMetrics().retries->Add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (inj.enabled() &&
        inj.ShouldInject(FaultLayer::kPs, wid, FaultKind::kMessageDrop)) {
      continue;
    }
    op();
    return Status::Ok();
  }
  return UnavailableError("ps worker " + std::to_string(wid) + ": " + what +
                          " failed after " + std::to_string(kPsMaxAttempts) +
                          " attempts");
}

// Model-version checkpoint file: magic, round, model width, weights.
constexpr uint64_t kPsCheckpointMagic = 0x3153504453445953ULL;  // "SYSDSPS1"

struct PsRecoveryMetrics {
  obs::Counter* checkpoints;
  obs::Counter* rollbacks;
  obs::Counter* resumes;
};

PsRecoveryMetrics& RecoveryMetrics() {
  static PsRecoveryMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("recovery.ps_checkpoints"),
      obs::MetricsRegistry::Get().GetCounter("recovery.ps_rollbacks"),
      obs::MetricsRegistry::Get().GetCounter("recovery.ps_resumes"),
  };
  return m;
}

std::string PsCheckpointPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "ps_model.ckpt").string();
}

Status WritePsCheckpoint(const std::string& dir, int64_t round,
                         const std::vector<double>& w) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return io::WriteAtomic(PsCheckpointPath(dir), [&](std::ostream& out) {
    auto put = [&out](const void* p, size_t n) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    };
    put(&kPsCheckpointMagic, sizeof(kPsCheckpointMagic));
    put(&round, sizeof(round));
    int64_t m = static_cast<int64_t>(w.size());
    put(&m, sizeof(m));
    put(w.data(), w.size() * sizeof(double));
    if (!out.good()) return IoError("ps checkpoint: stream write failed");
    return Status::Ok();
  });
}

struct PsCheckpoint {
  int64_t round = 0;
  std::vector<double> weights;
};

StatusOr<PsCheckpoint> ReadPsCheckpoint(const std::string& dir) {
  auto payload = io::ReadVerified(PsCheckpointPath(dir));
  if (!payload.ok()) return payload.status();
  const std::string& buf = payload.value();
  uint64_t magic = 0;
  int64_t round = 0, m = 0;
  size_t header = sizeof(magic) + sizeof(round) + sizeof(m);
  if (buf.size() < header) {
    return CorruptError("ps checkpoint: truncated header");
  }
  std::memcpy(&magic, buf.data(), sizeof(magic));
  std::memcpy(&round, buf.data() + sizeof(magic), sizeof(round));
  std::memcpy(&m, buf.data() + sizeof(magic) + sizeof(round), sizeof(m));
  if (magic != kPsCheckpointMagic) {
    return CorruptError("ps checkpoint: bad magic");
  }
  if (m < 0 || buf.size() != header + static_cast<size_t>(m) * sizeof(double)) {
    return CorruptError("ps checkpoint: payload size mismatch");
  }
  PsCheckpoint ckpt;
  ckpt.round = round;
  ckpt.weights.resize(static_cast<size_t>(m));
  std::memcpy(ckpt.weights.data(), buf.data() + header,
              static_cast<size_t>(m) * sizeof(double));
  return ckpt;
}

}  // namespace

StatusOr<PsResult> PsTrain(const MatrixBlock& x, const MatrixBlock& y,
                           const PsConfig& config) {
  if (x.Rows() != y.Rows() || y.Cols() != 1) {
    return InvalidArgument("PsTrain: X and y must be row-aligned, y n x 1");
  }
  if (config.num_workers < 1 || config.epochs < 1 ||
      config.batch_size < 1) {
    return InvalidArgument("PsTrain: invalid configuration");
  }
  if (!config.checkpoint_dir.empty() && config.mode != PsUpdateMode::kBSP) {
    return InvalidArgument(
        "PsTrain: model checkpoints require BSP (deterministic rounds)");
  }
  int64_t n = x.Rows(), m = x.Cols();
  int workers = static_cast<int>(
      std::min<int64_t>(config.num_workers, std::max<int64_t>(1, n)));
  bool bsp = config.mode == PsUpdateMode::kBSP;
  bool checkpointing = bsp && !config.checkpoint_dir.empty();

  // Server state.
  std::vector<double> weights(static_cast<size_t>(m), 0.0);
  std::mutex model_mutex;
  std::atomic<int64_t> pushes{0};

  // BSP barrier, adaptive to worker exclusion: `active_workers` is the
  // barrier width; excluding a worker shrinks it and releases the round if
  // the remaining waiters now fill it (no wedged barrier).
  //
  // Deterministic aggregation: in BSP mode gradients are buffered into
  // per-worker slots and applied in worker-id order by whichever thread
  // fills the barrier. The model therefore only mutates at round
  // boundaries, every pull within a round sees the same weights, and the
  // final model is independent of thread scheduling — which is what makes
  // a crash+resume run bit-identical to an uninterrupted one.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  int64_t barrier_round = 0;
  int active_workers = workers;
  int excluded_count = 0;
  std::vector<std::vector<double>> round_grads(static_cast<size_t>(workers));
  std::vector<char> grad_present(static_cast<size_t>(workers), 0);
  int64_t completed_rounds = 0;  // applied rounds (includes resumed prefix)
  int rollbacks = 0;
  int exclusions_since_ckpt = 0;
  // Rollback baseline: the last committed model version — the initial (or
  // resumed) model until the first checkpoint commits.
  std::vector<double> ckpt_weights;

  // Crash unwind (injected kill points at checkpoint boundaries).
  std::atomic<bool> aborted{false};
  Status abort_status;  // guarded by barrier_mutex

  int64_t rows_per = (n + workers - 1) / workers;
  int64_t max_batches = 0;
  for (int w = 0; w < workers; ++w) {
    int64_t rb = w * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    if (re > rb) {
      max_batches = std::max(
          max_batches, (re - rb + config.batch_size - 1) / config.batch_size);
    }
  }
  int64_t total_rounds = static_cast<int64_t>(config.epochs) * max_batches;

  // Resume: restart from the last committed model version.
  int64_t start_round = 0;
  if (checkpointing && config.resume) {
    auto ckpt = ReadPsCheckpoint(config.checkpoint_dir);
    if (ckpt.ok()) {
      if (static_cast<int64_t>(ckpt.value().weights.size()) != m) {
        return CorruptError("ps checkpoint: model width mismatch");
      }
      weights = ckpt.value().weights;
      start_round = std::min(ckpt.value().round, total_rounds);
      completed_rounds = start_round;
      RecoveryMetrics().resumes->Add(1);
    } else if (ckpt.status().code() != StatusCode::kNotFound &&
               ckpt.status().code() != StatusCode::kIoError) {
      return ckpt.status();  // corrupt checkpoint: refuse to train on it
    }
  }
  ckpt_weights = weights;

  static obs::Counter* push_counter =
      obs::MetricsRegistry::Get().GetCounter("ps.pushes");

  // Applies the buffered round in worker-id order, commits a model
  // checkpoint when due, and releases the barrier. Caller holds
  // barrier_mutex (lock order: barrier_mutex -> model_mutex).
  auto apply_round_locked = [&]() {
    {
      std::lock_guard<std::mutex> ml(model_mutex);
      for (int w = 0; w < workers; ++w) {
        if (!grad_present[w]) continue;
        for (int64_t c = 0; c < m; ++c) {
          weights[c] -= config.learning_rate * round_grads[w][c];
        }
        grad_present[w] = 0;
      }
    }
    ++completed_rounds;
    if (checkpointing && config.checkpoint_every_rounds > 0 &&
        completed_rounds % config.checkpoint_every_rounds == 0) {
      Status written =
          WritePsCheckpoint(config.checkpoint_dir, completed_rounds, weights);
      if (written.ok()) {
        RecoveryMetrics().checkpoints->Add(1);
        ckpt_weights = weights;
        exclusions_since_ckpt = 0;
        // Deterministic kill point: the Nth checkpoint boundary of this
        // run aborts training, simulating a crash just after commit.
        if (FaultInjector::Get().enabled() &&
            FaultInjector::Get().ShouldInject(FaultLayer::kRecovery,
                                              kPsRecoveryId,
                                              FaultKind::kCrash)) {
          abort_status = AbortedError(
              "simulated crash at ps checkpoint boundary (round " +
              std::to_string(completed_rounds) + ")");
          aborted.store(true, std::memory_order_release);
        }
      } else {
        std::cerr << "[sysds.ps] checkpoint write failed (continuing): "
                  << written.ToString() << "\n";
      }
    }
    barrier_count = 0;
    ++barrier_round;
    barrier_cv.notify_all();
  };

  // Drops a worker from the aggregation: shrink the barrier and release the
  // current round if everyone still active is already waiting on it. An
  // exclusion cascade (rollback_after_exclusions reached) rolls the model
  // back to the last committed checkpoint and discards the tainted round's
  // buffered gradients.
  auto exclude_worker = [&](int wid, const Status& why) {
    FaultMetrics().excluded->Add(1);
    obs::Tracer::Instant("ps", "worker_excluded");
    std::lock_guard<std::mutex> lock(barrier_mutex);
    --active_workers;
    ++excluded_count;
    ++exclusions_since_ckpt;
    std::cerr << "[sysds.ps] excluding worker " << wid
              << " from aggregation: " << why.ToString() << "\n";
    if (config.rollback_after_exclusions > 0 &&
        exclusions_since_ckpt >= config.rollback_after_exclusions) {
      {
        std::lock_guard<std::mutex> ml(model_mutex);
        weights = ckpt_weights;
      }
      std::fill(grad_present.begin(), grad_present.end(), 0);
      ++rollbacks;
      exclusions_since_ckpt = 0;
      RecoveryMetrics().rollbacks->Add(1);
      obs::Tracer::Instant("ps", "model_rollback");
    }
    if (active_workers > 0 && barrier_count >= active_workers) {
      apply_round_locked();
    }
    barrier_cv.notify_all();
  };

  auto worker_fn = [&](int wid) {
    obs::Tracer::SetCurrentThreadName("ps-worker-" + std::to_string(wid));
    SYSDS_SPAN("ps", "worker#" + std::to_string(wid));
    FaultInjector& inj = FaultInjector::Get();
    int64_t rb = wid * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    for (int64_t round = start_round; round < total_rounds; ++round) {
      if (aborted.load(std::memory_order_acquire)) return;
      int64_t batch = round % max_batches;
      if (inj.enabled() &&
          inj.ShouldInject(FaultLayer::kPs, wid, FaultKind::kCrash)) {
        exclude_worker(wid, UnavailableError("worker crashed"));
        return;
      }
      int64_t bb = rb + batch * config.batch_size;
      int64_t be = std::min(re, bb + config.batch_size);
      if (bb < be) {
        // Pull.
        std::vector<double> local;
        Status pulled = PsCall(wid, "pull", [&] {
          std::lock_guard<std::mutex> lock(model_mutex);
          local = weights;
        });
        if (!pulled.ok()) {
          exclude_worker(wid, pulled);
          return;
        }
        std::vector<double> grad = ComputeGradient(
            x, y, bb, be, local, config.objective, config.reg);
        // Push: BSP buffers into this worker's slot (applied in wid order
        // at the barrier); ASP applies immediately.
        Status pushed = PsCall(wid, "push", [&] {
          if (bsp) {
            std::lock_guard<std::mutex> lock(barrier_mutex);
            round_grads[wid] = std::move(grad);
            grad_present[wid] = 1;
          } else {
            std::lock_guard<std::mutex> lock(model_mutex);
            for (int64_t c = 0; c < m; ++c) {
              weights[c] -= config.learning_rate * grad[c];
            }
          }
        });
        if (!pushed.ok()) {
          exclude_worker(wid, pushed);
          return;
        }
        pushes.fetch_add(1);
        push_counter->Add(1);
      }
      if (bsp) {
        std::unique_lock<std::mutex> lock(barrier_mutex);
        int64_t my_round = barrier_round;
        if (++barrier_count >= active_workers) {
          apply_round_locked();
        } else {
          barrier_cv.wait(lock, [&] {
            return barrier_round != my_round ||
                   aborted.load(std::memory_order_acquire);
          });
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  if (aborted.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(barrier_mutex);
    return abort_status;
  }
  if (excluded_count == workers) {
    return UnavailableError(
        "PsTrain: every worker was lost; no surviving aggregation");
  }
  PsResult result;
  result.weights = MatrixBlock::Dense(m, 1);
  for (int64_t c = 0; c < m; ++c) result.weights.DenseData()[c] = weights[c];
  result.weights.MarkNnzDirty();
  result.final_loss = ComputeLoss(x, y, weights, config.objective);
  result.pushes = pushes.load();
  result.excluded_workers = excluded_count;
  result.rollbacks = rollbacks;
  result.resumed_round = start_round;
  return result;
}

}  // namespace sysds
