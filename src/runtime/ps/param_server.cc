#include "runtime/ps/param_server.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

namespace {

// Gradient of the objective on rows [rb, re) given dense weights; returns
// the per-example-averaged gradient.
std::vector<double> ComputeGradient(const MatrixBlock& x,
                                    const MatrixBlock& y, int64_t rb,
                                    int64_t re,
                                    const std::vector<double>& w,
                                    PsObjective objective, double reg) {
  int64_t m = x.Cols();
  std::vector<double> grad(static_cast<size_t>(m), 0.0);
  for (int64_t r = rb; r < re; ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    double err;
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      err = p - y.Get(r, 0);
    } else {
      err = pred - y.Get(r, 0);
    }
    for (int64_t c = 0; c < m; ++c) grad[c] += err * x.Get(r, c);
  }
  double inv = 1.0 / static_cast<double>(re - rb);
  for (int64_t c = 0; c < m; ++c) grad[c] = grad[c] * inv + reg * w[c];
  return grad;
}

double ComputeLoss(const MatrixBlock& x, const MatrixBlock& y,
                   const std::vector<double>& w, PsObjective objective) {
  double loss = 0.0;
  int64_t m = x.Cols();
  for (int64_t r = 0; r < x.Rows(); ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      double yv = y.Get(r, 0);
      p = std::min(1.0 - 1e-12, std::max(1e-12, p));
      loss += -(yv * std::log(p) + (1.0 - yv) * std::log(1.0 - p));
    } else {
      double d = pred - y.Get(r, 0);
      loss += 0.5 * d * d;
    }
  }
  return loss / static_cast<double>(std::max<int64_t>(1, x.Rows()));
}

// Push/pull retry budget. Training runs make thousands of server calls, so
// the budget must drive the per-call permanent-failure probability low
// enough that a 10% drop rate (the chaos-suite default) rarely costs a
// worker: 0.1^5 = 1e-5 per call.
constexpr int kPsMaxAttempts = 5;

struct PsFaultMetrics {
  obs::Counter* retries;
  obs::Counter* excluded;
};

PsFaultMetrics& FaultMetrics() {
  static PsFaultMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fault.ps.retries"),
      obs::MetricsRegistry::Get().GetCounter("fault.ps.excluded_workers"),
  };
  return m;
}

/// One worker->server call (pull or push) under fault injection: a dropped
/// message is retried with a short pause; the budget bounds how long a
/// sick worker can hold up its round.
template <typename Op>
Status PsCall(int wid, const char* what, Op&& op) {
  FaultInjector& inj = FaultInjector::Get();
  for (int attempt = 0; attempt < kPsMaxAttempts; ++attempt) {
    if (attempt > 0) {
      FaultMetrics().retries->Add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (inj.enabled() &&
        inj.ShouldInject(FaultLayer::kPs, wid, FaultKind::kMessageDrop)) {
      continue;
    }
    op();
    return Status::Ok();
  }
  return UnavailableError("ps worker " + std::to_string(wid) + ": " + what +
                          " failed after " + std::to_string(kPsMaxAttempts) +
                          " attempts");
}

}  // namespace

StatusOr<PsResult> PsTrain(const MatrixBlock& x, const MatrixBlock& y,
                           const PsConfig& config) {
  if (x.Rows() != y.Rows() || y.Cols() != 1) {
    return InvalidArgument("PsTrain: X and y must be row-aligned, y n x 1");
  }
  if (config.num_workers < 1 || config.epochs < 1 ||
      config.batch_size < 1) {
    return InvalidArgument("PsTrain: invalid configuration");
  }
  int64_t n = x.Rows(), m = x.Cols();
  int workers = static_cast<int>(
      std::min<int64_t>(config.num_workers, std::max<int64_t>(1, n)));

  // Server state.
  std::vector<double> weights(static_cast<size_t>(m), 0.0);
  std::mutex model_mutex;
  std::atomic<int64_t> pushes{0};

  // BSP barrier, adaptive to worker exclusion: `active_workers` is the
  // barrier width; excluding a worker shrinks it and releases the round if
  // the remaining waiters now fill it (no wedged barrier).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  int64_t barrier_round = 0;
  int active_workers = workers;
  int excluded_count = 0;

  int64_t rows_per = (n + workers - 1) / workers;
  int64_t max_batches = 0;
  for (int w = 0; w < workers; ++w) {
    int64_t rb = w * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    if (re > rb) {
      max_batches = std::max(
          max_batches, (re - rb + config.batch_size - 1) / config.batch_size);
    }
  }

  static obs::Counter* push_counter =
      obs::MetricsRegistry::Get().GetCounter("ps.pushes");

  // Drops a worker from the aggregation: shrink the barrier and release the
  // current round if everyone still active is already waiting on it.
  auto exclude_worker = [&](int wid, const Status& why) {
    FaultMetrics().excluded->Add(1);
    obs::Tracer::Instant("ps", "worker_excluded");
    std::lock_guard<std::mutex> lock(barrier_mutex);
    --active_workers;
    ++excluded_count;
    std::cerr << "[sysds.ps] excluding worker " << wid
              << " from aggregation: " << why.ToString() << "\n";
    if (active_workers > 0 && barrier_count >= active_workers) {
      barrier_count = 0;
      ++barrier_round;
    }
    barrier_cv.notify_all();
  };

  auto worker_fn = [&](int wid) {
    obs::Tracer::SetCurrentThreadName("ps-worker-" + std::to_string(wid));
    SYSDS_SPAN("ps", "worker#" + std::to_string(wid));
    FaultInjector& inj = FaultInjector::Get();
    int64_t rb = wid * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      SYSDS_SPAN("ps", "epoch#" + std::to_string(epoch));
      for (int64_t batch = 0; batch < max_batches; ++batch) {
        if (inj.enabled() &&
            inj.ShouldInject(FaultLayer::kPs, wid, FaultKind::kCrash)) {
          exclude_worker(wid, UnavailableError("worker crashed"));
          return;
        }
        int64_t bb = rb + batch * config.batch_size;
        int64_t be = std::min(re, bb + config.batch_size);
        if (bb < be) {
          // Pull.
          std::vector<double> local;
          Status pulled = PsCall(wid, "pull", [&] {
            std::lock_guard<std::mutex> lock(model_mutex);
            local = weights;
          });
          if (!pulled.ok()) {
            exclude_worker(wid, pulled);
            return;
          }
          std::vector<double> grad = ComputeGradient(
              x, y, bb, be, local, config.objective, config.reg);
          // Push.
          Status pushed = PsCall(wid, "push", [&] {
            std::lock_guard<std::mutex> lock(model_mutex);
            for (int64_t c = 0; c < m; ++c) {
              weights[c] -= config.learning_rate * grad[c];
            }
          });
          if (!pushed.ok()) {
            exclude_worker(wid, pushed);
            return;
          }
          pushes.fetch_add(1);
          push_counter->Add(1);
        }
        if (config.mode == PsUpdateMode::kBSP) {
          std::unique_lock<std::mutex> lock(barrier_mutex);
          int64_t my_round = barrier_round;
          if (++barrier_count >= active_workers) {
            barrier_count = 0;
            ++barrier_round;
            barrier_cv.notify_all();
          } else {
            barrier_cv.wait(lock,
                            [&] { return barrier_round != my_round; });
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  if (excluded_count == workers) {
    return UnavailableError(
        "PsTrain: every worker was lost; no surviving aggregation");
  }
  PsResult result;
  result.weights = MatrixBlock::Dense(m, 1);
  for (int64_t c = 0; c < m; ++c) result.weights.DenseData()[c] = weights[c];
  result.weights.MarkNnzDirty();
  result.final_loss = ComputeLoss(x, y, weights, config.objective);
  result.pushes = pushes.load();
  result.excluded_workers = excluded_count;
  return result;
}

}  // namespace sysds
