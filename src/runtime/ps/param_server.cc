#include "runtime/ps/param_server.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

namespace {

// Gradient of the objective on rows [rb, re) given dense weights; returns
// the per-example-averaged gradient.
std::vector<double> ComputeGradient(const MatrixBlock& x,
                                    const MatrixBlock& y, int64_t rb,
                                    int64_t re,
                                    const std::vector<double>& w,
                                    PsObjective objective, double reg) {
  int64_t m = x.Cols();
  std::vector<double> grad(static_cast<size_t>(m), 0.0);
  for (int64_t r = rb; r < re; ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    double err;
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      err = p - y.Get(r, 0);
    } else {
      err = pred - y.Get(r, 0);
    }
    for (int64_t c = 0; c < m; ++c) grad[c] += err * x.Get(r, c);
  }
  double inv = 1.0 / static_cast<double>(re - rb);
  for (int64_t c = 0; c < m; ++c) grad[c] = grad[c] * inv + reg * w[c];
  return grad;
}

double ComputeLoss(const MatrixBlock& x, const MatrixBlock& y,
                   const std::vector<double>& w, PsObjective objective) {
  double loss = 0.0;
  int64_t m = x.Cols();
  for (int64_t r = 0; r < x.Rows(); ++r) {
    double pred = 0.0;
    for (int64_t c = 0; c < m; ++c) pred += x.Get(r, c) * w[c];
    if (objective == PsObjective::kLogisticRegression) {
      double p = 1.0 / (1.0 + std::exp(-pred));
      double yv = y.Get(r, 0);
      p = std::min(1.0 - 1e-12, std::max(1e-12, p));
      loss += -(yv * std::log(p) + (1.0 - yv) * std::log(1.0 - p));
    } else {
      double d = pred - y.Get(r, 0);
      loss += 0.5 * d * d;
    }
  }
  return loss / static_cast<double>(std::max<int64_t>(1, x.Rows()));
}

}  // namespace

StatusOr<PsResult> PsTrain(const MatrixBlock& x, const MatrixBlock& y,
                           const PsConfig& config) {
  if (x.Rows() != y.Rows() || y.Cols() != 1) {
    return InvalidArgument("PsTrain: X and y must be row-aligned, y n x 1");
  }
  if (config.num_workers < 1 || config.epochs < 1 ||
      config.batch_size < 1) {
    return InvalidArgument("PsTrain: invalid configuration");
  }
  int64_t n = x.Rows(), m = x.Cols();
  int workers = static_cast<int>(
      std::min<int64_t>(config.num_workers, std::max<int64_t>(1, n)));

  // Server state.
  std::vector<double> weights(static_cast<size_t>(m), 0.0);
  std::mutex model_mutex;
  std::atomic<int64_t> pushes{0};

  // BSP barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  int64_t barrier_round = 0;

  int64_t rows_per = (n + workers - 1) / workers;
  int64_t max_batches = 0;
  for (int w = 0; w < workers; ++w) {
    int64_t rb = w * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    if (re > rb) {
      max_batches = std::max(
          max_batches, (re - rb + config.batch_size - 1) / config.batch_size);
    }
  }

  static obs::Counter* push_counter =
      obs::MetricsRegistry::Get().GetCounter("ps.pushes");
  auto worker_fn = [&](int wid) {
    obs::Tracer::SetCurrentThreadName("ps-worker-" + std::to_string(wid));
    SYSDS_SPAN("ps", "worker#" + std::to_string(wid));
    int64_t rb = wid * rows_per;
    int64_t re = std::min(n, rb + rows_per);
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      SYSDS_SPAN("ps", "epoch#" + std::to_string(epoch));
      for (int64_t batch = 0; batch < max_batches; ++batch) {
        int64_t bb = rb + batch * config.batch_size;
        int64_t be = std::min(re, bb + config.batch_size);
        if (bb < be) {
          // Pull.
          std::vector<double> local;
          {
            std::lock_guard<std::mutex> lock(model_mutex);
            local = weights;
          }
          std::vector<double> grad = ComputeGradient(
              x, y, bb, be, local, config.objective, config.reg);
          // Push.
          {
            std::lock_guard<std::mutex> lock(model_mutex);
            for (int64_t c = 0; c < m; ++c) {
              weights[c] -= config.learning_rate * grad[c];
            }
          }
          pushes.fetch_add(1);
          push_counter->Add(1);
        }
        if (config.mode == PsUpdateMode::kBSP) {
          std::unique_lock<std::mutex> lock(barrier_mutex);
          int64_t my_round = barrier_round;
          if (++barrier_count == workers) {
            barrier_count = 0;
            ++barrier_round;
            barrier_cv.notify_all();
          } else {
            barrier_cv.wait(lock,
                            [&] { return barrier_round != my_round; });
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  PsResult result;
  result.weights = MatrixBlock::Dense(m, 1);
  for (int64_t c = 0; c < m; ++c) result.weights.DenseData()[c] = weights[c];
  result.weights.MarkNnzDirty();
  result.final_loss = ComputeLoss(x, y, weights, config.objective);
  result.pushes = pushes.load();
  return result;
}

}  // namespace sysds
