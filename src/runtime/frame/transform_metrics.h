#ifndef SYSDS_RUNTIME_FRAME_TRANSFORM_METRICS_H_
#define SYSDS_RUNTIME_FRAME_TRANSFORM_METRICS_H_

#include "obs/metrics.h"

namespace sysds {
namespace transform_metrics {

// transform.* observability shared by the encoder (fit/apply/decode) and
// the transformencode/transformapply/transformdecode instructions.

inline obs::Counter* FitCalls() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("transform.fit_calls");
  return c;
}

inline obs::Counter* ApplyCalls() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("transform.apply_calls");
  return c;
}

inline obs::Counter* DecodeCalls() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("transform.decode_calls");
  return c;
}

/// Rows encoded by Apply (dense and compressed sinks alike).
inline obs::Counter* RowsEncoded() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("transform.rows_encoded");
  return c;
}

/// Apply emitted a CompressedMatrixBlock directly (no dense intermediate).
inline obs::Counter* DirectCompressedOutputs() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "transform.direct_compressed_outputs");
  return c;
}

/// Apply emitted a dense/sparse MatrixBlock (kDense, or kAuto under the
/// min-ratio gate).
inline obs::Counter* DenseOutputs() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("transform.dense_outputs");
  return c;
}

/// Byte-pricing ratio (dense bytes / compressed bytes) of direct-compressed
/// outputs, x100 (a ratio of 8.5 observes 850).
inline obs::Histogram* OutputRatioX100() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("transform.output_ratio_x100");
  return h;
}

}  // namespace transform_metrics
}  // namespace sysds

#endif  // SYSDS_RUNTIME_FRAME_TRANSFORM_METRICS_H_
