#include "runtime/frame/transform.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include "common/json.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "obs/trace.h"
#include "runtime/frame/transform_metrics.h"

namespace sysds {

namespace {

// Resolves a JSON column reference (name string or 1-based number) to a
// 0-based index.
StatusOr<int64_t> ResolveColumn(const JsonValue& v, const FrameBlock& frame) {
  if (v.kind() == JsonValue::Kind::kString) {
    SYSDS_ASSIGN_OR_RETURN(int64_t idx, frame.ColumnIndex(v.AsString()));
    return idx;
  }
  if (v.kind() == JsonValue::Kind::kNumber) {
    int64_t idx = static_cast<int64_t>(v.AsNumber()) - 1;
    if (idx < 0 || idx >= frame.Cols()) {
      return OutOfRange("transform spec column index out of range");
    }
    return idx;
  }
  return InvalidArgument("transform spec: column must be name or index");
}

// Fixed fit chunk size: the chunk decomposition depends only on the row
// count, never on the thread count, so per-chunk partials and their
// chunk-order merge are identical at every parallelism level.
constexpr int64_t kFitChunkRows = 4096;

int64_t NumFitChunks(int64_t rows) {
  return std::max<int64_t>(1, (rows + kFitChunkRows - 1) / kFitChunkRows);
}

// Runs fn(chunk_index) for every chunk in [0, num_chunks). Each fit chunk is
// one schedulable unit (results are indexed by chunk id, so the scheduler's
// chunk->thread assignment never affects them); the work-stealing pool
// load-balances the chunks across however many workers are free. `threads`
// is kept for call-site compatibility.
void RunChunks(int64_t num_chunks, int threads,
               const std::function<void(int64_t)>& fn) {
  (void)threads;
  ThreadPool::Global().ParallelFor(
      0, num_chunks, num_chunks,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) fn(i);
      },
      "transform");
}

}  // namespace

StatusOr<TransformSpec> ParseTransformSpec(const std::string& spec_json,
                                           const FrameBlock& frame) {
  SYSDS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(spec_json));
  if (root.kind() != JsonValue::Kind::kObject) {
    return InvalidArgument("transform spec must be a JSON object");
  }
  TransformSpec spec;
  if (const JsonValue* rc = root.Find("recode")) {
    for (const JsonValue& v : rc->AsArray()) {
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(v, frame));
      spec.recode_cols.push_back(c);
    }
  }
  if (const JsonValue* dc = root.Find("dummycode")) {
    for (const JsonValue& v : dc->AsArray()) {
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(v, frame));
      spec.dummycode_cols.push_back(c);
    }
  }
  if (const JsonValue* bins = root.Find("bin")) {
    for (const JsonValue& v : bins->AsArray()) {
      const JsonValue* name = v.Find("name");
      if (name == nullptr) {
        return InvalidArgument("bin spec entries require a 'name'");
      }
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(*name, frame));
      TransformSpec::BinSpec b;
      b.col = c;
      b.num_bins = 5;
      b.method = "equi-width";
      if (const JsonValue* nb = v.Find("numbins")) {
        b.num_bins = static_cast<int64_t>(nb->AsNumber());
      }
      if (const JsonValue* m = v.Find("method")) b.method = m->AsString();
      if (b.num_bins < 1) return InvalidArgument("bin: numbins must be >= 1");
      spec.bin_cols.push_back(b);
    }
  }
  if (const JsonValue* imp = root.Find("impute")) {
    for (const JsonValue& v : imp->AsArray()) {
      const JsonValue* name = v.Find("name");
      if (name == nullptr) {
        return InvalidArgument("impute spec entries require a 'name'");
      }
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(*name, frame));
      TransformSpec::ImputeSpec i;
      i.col = c;
      i.method = "mean";
      if (const JsonValue* m = v.Find("method")) i.method = m->AsString();
      if (const JsonValue* cv = v.Find("value")) i.constant = cv->AsString();
      spec.impute_cols.push_back(i);
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// EncodedOutput

EncodedOutput EncodedOutput::FromDense(MatrixBlock m) {
  EncodedOutput out;
  out.is_compressed_ = false;
  out.dense_ = std::move(m);
  return out;
}

EncodedOutput EncodedOutput::FromCompressed(CompressedMatrixBlock c) {
  EncodedOutput out;
  out.is_compressed_ = true;
  out.compressed_ = std::move(c);
  return out;
}

int64_t EncodedOutput::Rows() const {
  return is_compressed_ ? compressed_.Rows() : dense_.Rows();
}

int64_t EncodedOutput::Cols() const {
  return is_compressed_ ? compressed_.Cols() : dense_.Cols();
}

MatrixBlock EncodedOutput::ToMatrix(int num_threads) const {
  if (is_compressed_) return compressed_.Decompress(num_threads);
  return dense_;
}

// ---------------------------------------------------------------------------
// MultiColumnEncoder

void MultiColumnEncoder::AssignOutputOffsets() {
  int64_t off = 0;
  for (ColumnEncoder& e : encoders_) {
    e.recode_lookup =
        std::unordered_map<std::string, int64_t>(e.recode_map.begin(),
                                                 e.recode_map.end());
    e.out_offset = off;
    if (e.dummycode) {
      e.out_width = e.encoding == ColEncodingKind::kRecode
                        ? static_cast<int64_t>(e.recode_tokens.size())
                        : e.num_bins;
      if (e.out_width == 0) e.out_width = 1;
    } else {
      e.out_width = 1;
    }
    off += e.out_width;
  }
}

int64_t MultiColumnEncoder::NumOutputCols() const {
  int64_t n = 0;
  for (const ColumnEncoder& e : encoders_) n += e.out_width;
  return n;
}

StatusOr<MultiColumnEncoder> MultiColumnEncoder::Fit(
    const FrameBlock& frame, const TransformSpec& spec, int num_threads) {
  SYSDS_SPAN("transform", "fit");
  transform_metrics::FitCalls()->Add();
  const int threads = num_threads > 0 ? num_threads : DefaultParallelism();

  MultiColumnEncoder enc;
  enc.num_input_cols_ = frame.Cols();
  enc.encoders_.resize(static_cast<size_t>(frame.Cols()));

  for (int64_t c : spec.recode_cols) {
    enc.encoders_[c].encoding = ColEncodingKind::kRecode;
  }
  for (const auto& b : spec.bin_cols) {
    if (enc.encoders_[b.col].encoding == ColEncodingKind::kRecode) {
      return InvalidArgument("column cannot be both recoded and binned");
    }
    enc.encoders_[b.col].encoding = ColEncodingKind::kBin;
    enc.encoders_[b.col].num_bins = b.num_bins;
    enc.encoders_[b.col].bin_method = b.method;
  }
  for (int64_t c : spec.dummycode_cols) {
    enc.encoders_[c].dummycode = true;
    if (enc.encoders_[c].encoding == ColEncodingKind::kPassThrough) {
      // Dummycode over raw values implies recode first (SystemDS behaviour).
      enc.encoders_[c].encoding = ColEncodingKind::kRecode;
    }
  }
  for (const auto& i : spec.impute_cols) {
    enc.encoders_[i.col].impute = true;
    enc.encoders_[i.col].impute_string = i.method;
  }

  const int64_t rows = frame.Rows();
  const int64_t cols = frame.Cols();
  const int64_t nchunks = NumFitChunks(rows);
  auto chunk_range = [rows](int64_t ci) {
    int64_t rb = ci * kFitChunkRows;
    return std::pair<int64_t, int64_t>(rb,
                                       std::min(rows, rb + kFitChunkRows));
  };

  // --- Stage 1: imputation statistics (mean needs sum/count, mode needs
  // token counts). Per-chunk partials merged in chunk order; the resulting
  // impute values feed stage 2's dictionaries and histograms.
  std::vector<int64_t> impute_cols;
  for (int64_t c = 0; c < cols; ++c) {
    if (enc.encoders_[c].impute) impute_cols.push_back(c);
  }
  if (!impute_cols.empty()) {
    struct ImputePartial {
      double sum = 0.0;
      int64_t count = 0;
      std::map<std::string, int64_t> counts;
    };
    std::vector<std::vector<ImputePartial>> partials(
        static_cast<size_t>(nchunks),
        std::vector<ImputePartial>(impute_cols.size()));
    RunChunks(nchunks, threads, [&](int64_t ci) {
      auto [rb, re] = chunk_range(ci);
      for (size_t ic = 0; ic < impute_cols.size(); ++ic) {
        const int64_t c = impute_cols[ic];
        const ColumnEncoder& e = enc.encoders_[c];
        ImputePartial& p = partials[static_cast<size_t>(ci)][ic];
        const std::string* sd = frame.StringData(c);
        const double* nd = frame.NumericData(c);
        if (e.impute_string == "mean") {
          // Missing = empty string or NaN (numeric cells render non-empty).
          if (sd != nullptr) {
            for (int64_t r = rb; r < re; ++r) {
              const std::string& s = sd[r];
              if (s.empty()) continue;
              double v = std::strtod(s.c_str(), nullptr);
              if (!std::isnan(v)) {
                p.sum += v;
                ++p.count;
              }
            }
          } else {
            for (int64_t r = rb; r < re; ++r) {
              if (!std::isnan(nd[r])) {
                p.sum += nd[r];
                ++p.count;
              }
            }
          }
        } else if (e.impute_string == "mode") {
          if (sd != nullptr) {
            for (int64_t r = rb; r < re; ++r) {
              if (!sd[r].empty()) ++p.counts[sd[r]];
            }
          } else {
            for (int64_t r = rb; r < re; ++r) {
              ++p.counts[frame.GetString(r, c)];
            }
          }
        }
      }
    });
    for (size_t ic = 0; ic < impute_cols.size(); ++ic) {
      ColumnEncoder& e = enc.encoders_[impute_cols[ic]];
      if (e.impute_string == "mean") {
        double sum = 0.0;
        int64_t count = 0;
        for (int64_t ci = 0; ci < nchunks; ++ci) {
          sum += partials[static_cast<size_t>(ci)][ic].sum;
          count += partials[static_cast<size_t>(ci)][ic].count;
        }
        e.impute_value = count ? sum / count : 0.0;
      } else if (e.impute_string == "mode") {
        std::map<std::string, int64_t> counts;
        for (int64_t ci = 0; ci < nchunks; ++ci) {
          for (const auto& [token, n] : partials[static_cast<size_t>(ci)][ic]
                                            .counts) {
            counts[token] += n;
          }
        }
        // Ties break to the smallest token: ascending map order plus a
        // strictly-greater update.
        int64_t best = -1;
        for (const auto& [token, n] : counts) {
          if (n > best) {
            best = n;
            e.impute_string = token;
          }
        }
        if (best < 0) e.impute_string = "0";
        e.impute_value = std::strtod(e.impute_string.c_str(), nullptr);
      } else {
        // constant
        e.impute_value = std::strtod(e.impute_string.c_str(), nullptr);
      }
    }
  }

  // --- Stage 2: recode dictionaries and bin histograms. Distinct-token
  // sets union across chunks (codes then assigned in sorted-token order);
  // bin samples concatenate in chunk order, reproducing the serial row
  // order exactly before the equi-height sort.
  std::vector<int64_t> fit_cols;
  for (int64_t c = 0; c < cols; ++c) {
    if (enc.encoders_[c].encoding != ColEncodingKind::kPassThrough) {
      fit_cols.push_back(c);
    }
  }
  if (!fit_cols.empty()) {
    struct FitPartial {
      std::set<std::string> distinct;
      std::vector<double> vals;
    };
    std::vector<std::vector<FitPartial>> partials(
        static_cast<size_t>(nchunks),
        std::vector<FitPartial>(fit_cols.size()));
    RunChunks(nchunks, threads, [&](int64_t ci) {
      auto [rb, re] = chunk_range(ci);
      for (size_t fc = 0; fc < fit_cols.size(); ++fc) {
        const int64_t c = fit_cols[fc];
        const ColumnEncoder& e = enc.encoders_[c];
        FitPartial& p = partials[static_cast<size_t>(ci)][fc];
        const std::string* sd = frame.StringData(c);
        const double* nd = frame.NumericData(c);
        if (e.encoding == ColEncodingKind::kRecode) {
          if (sd != nullptr) {
            for (int64_t r = rb; r < re; ++r) {
              const std::string* s = &sd[r];
              if (s->empty() && e.impute) s = &e.impute_string;
              if (!s->empty()) p.distinct.insert(*s);
            }
          } else {
            for (int64_t r = rb; r < re; ++r) {
              // Numeric cells render non-empty, so the impute substitution
              // of the reference path cannot fire here.
              p.distinct.insert(frame.GetString(r, c));
            }
          }
        } else {  // kBin
          p.vals.reserve(static_cast<size_t>(re - rb));
          for (int64_t r = rb; r < re; ++r) {
            double v;
            if (sd != nullptr) {
              v = sd[r].empty() ? 0.0
                                : std::strtod(sd[r].c_str(), nullptr);
            } else {
              v = nd[r];
            }
            if (std::isnan(v) && e.impute) v = e.impute_value;
            if (!std::isnan(v)) p.vals.push_back(v);
          }
        }
      }
    });
    for (size_t fc = 0; fc < fit_cols.size(); ++fc) {
      ColumnEncoder& e = enc.encoders_[fit_cols[fc]];
      if (e.encoding == ColEncodingKind::kRecode) {
        std::set<std::string> distinct;
        for (int64_t ci = 0; ci < nchunks; ++ci) {
          auto& part = partials[static_cast<size_t>(ci)][fc].distinct;
          distinct.insert(part.begin(), part.end());
        }
        int64_t code = 1;
        for (const std::string& token : distinct) {
          e.recode_map[token] = code++;
          e.recode_tokens.push_back(token);
        }
      } else {  // kBin
        std::vector<double> vals;
        vals.reserve(static_cast<size_t>(rows));
        for (int64_t ci = 0; ci < nchunks; ++ci) {
          auto& part = partials[static_cast<size_t>(ci)][fc].vals;
          vals.insert(vals.end(), part.begin(), part.end());
        }
        if (vals.empty()) vals.push_back(0.0);
        double lo = *std::min_element(vals.begin(), vals.end());
        double hi = *std::max_element(vals.begin(), vals.end());
        e.bin_min = lo;
        if (e.bin_method == "equi-height") {
          std::sort(vals.begin(), vals.end());
          e.bin_uppers.resize(static_cast<size_t>(e.num_bins));
          for (int64_t b = 0; b < e.num_bins; ++b) {
            size_t idx = static_cast<size_t>(
                std::min<double>(vals.size() - 1,
                                 std::ceil(static_cast<double>(vals.size()) *
                                           (b + 1) / e.num_bins) -
                                     1));
            e.bin_uppers[b] = vals[idx];
          }
          e.bin_uppers.back() = hi;
        } else {
          e.bin_width = (hi - lo) / static_cast<double>(e.num_bins);
          if (e.bin_width == 0.0) e.bin_width = 1.0;
        }
      }
    }
  }
  enc.AssignOutputOffsets();
  return enc;
}

namespace {

// Decodes bin membership exactly like the reference path (shared by all
// sinks): lower_bound over equi-height uppers or the equi-width formula,
// clamped to [1, num_bins].
inline int64_t BinOf(double v, const std::vector<double>& uppers,
                     double bin_min, double bin_width, int64_t num_bins) {
  int64_t bin;
  if (!uppers.empty()) {
    bin = static_cast<int64_t>(
              std::lower_bound(uppers.begin(), uppers.end(), v) -
              uppers.begin()) +
          1;
  } else {
    bin = static_cast<int64_t>(std::floor((v - bin_min) / bin_width)) + 1;
  }
  return std::max<int64_t>(1, std::min<int64_t>(num_bins, bin));
}

}  // namespace

// Emits emit(r, code) for rows [rb, re) of input column c, replicating the
// reference serial semantics cell for cell while reading column storage
// directly (no per-cell string copies on the hot paths).
template <typename ColumnEncoderT, typename Emit>
static void EncodeRange(const FrameBlock& frame, int64_t c,
                        const ColumnEncoderT& e, int encoding_kind,
                        int64_t rb, int64_t re, Emit&& emit) {
  const std::string* sd = frame.StringData(c);
  const double* nd = frame.NumericData(c);
  switch (encoding_kind) {
    case 0: {  // pass-through
      if (sd != nullptr) {
        for (int64_t r = rb; r < re; ++r) {
          const std::string& s = sd[r];
          double v = s.empty() ? 0.0 : std::strtod(s.c_str(), nullptr);
          if (std::isnan(v) && e.impute) v = e.impute_value;
          if (s.empty() && e.impute) v = e.impute_value;
          emit(r, v);
        }
      } else {
        for (int64_t r = rb; r < re; ++r) {
          double v = nd[r];
          if (std::isnan(v) && e.impute) v = e.impute_value;
          emit(r, v);
        }
      }
      break;
    }
    case 1: {  // recode (hash lookup; recode_map only defines assignment)
      const auto end = e.recode_lookup.end();
      if (sd != nullptr) {
        for (int64_t r = rb; r < re; ++r) {
          const std::string* s = &sd[r];
          if (s->empty() && e.impute) s = &e.impute_string;
          auto it = e.recode_lookup.find(*s);
          emit(r, it == end ? 0.0 : static_cast<double>(it->second));
        }
      } else {
        for (int64_t r = rb; r < re; ++r) {
          auto it = e.recode_lookup.find(frame.GetString(r, c));
          emit(r, it == end ? 0.0 : static_cast<double>(it->second));
        }
      }
      break;
    }
    default: {  // bin
      for (int64_t r = rb; r < re; ++r) {
        double v;
        if (sd != nullptr) {
          const std::string& s = sd[r];
          v = s.empty() ? 0.0 : std::strtod(s.c_str(), nullptr);
        } else {
          v = nd[r];
        }
        if (std::isnan(v) && e.impute) v = e.impute_value;
        emit(r, static_cast<double>(BinOf(v, e.bin_uppers, e.bin_min,
                                          e.bin_width, e.num_bins)));
      }
    }
  }
}

StatusOr<EncodedOutput> MultiColumnEncoder::Apply(
    const FrameBlock& frame, const EncodeOptions& options) const {
  SYSDS_SPAN("transform", "apply");
  if (frame.Cols() != num_input_cols_) {
    return InvalidArgument("transformapply: column count mismatch");
  }
  transform_metrics::ApplyCalls()->Add();
  transform_metrics::RowsEncoded()->Add(frame.Rows());
  const int threads =
      options.num_threads > 0 ? options.num_threads : DefaultParallelism();
  const int64_t rows = frame.Rows();
  const int64_t out_cols = NumOutputCols();

  // Per-encoder byte pricing, mirroring the compression planner: a DDC
  // group costs its dictionary plus one code per row; the alternative is an
  // uncompressed column-major group. The fitted dictionary gives the exact
  // tuple count, so no sampling is involved.
  bool emit_compressed = false;
  if (options.output == TransformOutputFormat::kCompressed) {
    emit_compressed = true;
  } else if (options.output == TransformOutputFormat::kAuto) {
    double compressed_bytes = 0.0;
    for (const ColumnEncoder& e : encoders_) {
      int64_t dict_vals = 0;
      if (e.encoding == ColEncodingKind::kRecode) {
        dict_vals = static_cast<int64_t>(e.recode_tokens.size()) + 1;
      } else if (e.encoding == ColEncodingKind::kBin) {
        dict_vals = e.num_bins;
      }
      double unc = 64.0 + 8.0 * rows * e.out_width + e.out_width;
      if (dict_vals >= 1 && dict_vals <= 65536) {
        double ddc = 64.0 + 8.0 * dict_vals * e.out_width +
                     (dict_vals <= 256 ? 1.0 : 2.0) * rows + e.out_width;
        compressed_bytes += std::min(ddc, unc);
      } else {
        compressed_bytes += unc;
      }
    }
    double dense_bytes = 8.0 * rows * out_cols;
    if (compressed_bytes > 0.0 &&
        dense_bytes / compressed_bytes >= options.min_ratio) {
      emit_compressed = true;
      transform_metrics::OutputRatioX100()->Observe(
          static_cast<int64_t>(100.0 * dense_bytes / compressed_bytes));
    }
  }

  if (emit_compressed) {
    SYSDS_ASSIGN_OR_RETURN(CompressedMatrixBlock c,
                           ApplyCompressed(frame, threads));
    transform_metrics::DirectCompressedOutputs()->Add();
    return EncodedOutput::FromCompressed(std::move(c));
  }

  MatrixBlock m = MatrixBlock::Dense(rows, out_cols);
  const int64_t chunks = PickChunks(rows, threads);
  ThreadPool::Global().ParallelFor(
      0, rows, chunks, [&](int64_t rb, int64_t re) {
        for (int64_t c = 0; c < num_input_cols_; ++c) {
          const ColumnEncoder& e = encoders_[c];
          const int kind = e.encoding == ColEncodingKind::kPassThrough ? 0
                           : e.encoding == ColEncodingKind::kRecode    ? 1
                                                                       : 2;
          if (e.dummycode) {
            EncodeRange(frame, c, e, kind, rb, re, [&](int64_t r,
                                                       double code) {
              int64_t k = static_cast<int64_t>(code);
              if (k >= 1 && k <= e.out_width) {
                m.DenseRow(r)[e.out_offset + k - 1] = 1.0;
              }
            });
          } else {
            EncodeRange(frame, c, e, kind, rb, re,
                        [&](int64_t r, double code) {
                          m.DenseRow(r)[e.out_offset] = code;
                        });
          }
        }
      },
      "transform");
  m.MarkNnzDirty();
  m.ExamSparsity();
  transform_metrics::DenseOutputs()->Add();
  return EncodedOutput::FromDense(std::move(m));
}

StatusOr<CompressedMatrixBlock> MultiColumnEncoder::ApplyCompressed(
    const FrameBlock& frame, int threads) const {
  const int64_t rows = frame.Rows();
  const int64_t chunks = PickChunks(rows, threads);
  std::vector<ColGroup> groups;
  groups.reserve(encoders_.size());
  int64_t nnz = 0;

  for (int64_t c = 0; c < num_input_cols_; ++c) {
    const ColumnEncoder& e = encoders_[c];
    std::vector<int64_t> gcols(static_cast<size_t>(e.out_width));
    for (int64_t j = 0; j < e.out_width; ++j) gcols[j] = e.out_offset + j;

    // Dictionary layout: recode code k is DDC code k directly (tuple 0 is
    // the all-zero missing/unseen tuple); bin b maps to code b-1.
    int64_t dict_vals = 0;
    if (e.encoding == ColEncodingKind::kRecode) {
      dict_vals = static_cast<int64_t>(e.recode_tokens.size()) + 1;
    } else if (e.encoding == ColEncodingKind::kBin) {
      dict_vals = e.num_bins;
    }
    const bool ddc = dict_vals >= 1 && dict_vals <= 65536;

    if (ddc) {
      std::vector<double> dict(
          static_cast<size_t>(dict_vals * e.out_width), 0.0);
      if (e.dummycode) {
        if (e.encoding == ColEncodingKind::kRecode) {
          // Tuple k = e_k (one-hot); tuple 0 stays all-zero.
          for (int64_t k = 1; k < dict_vals; ++k) {
            dict[static_cast<size_t>(k * e.out_width + (k - 1))] = 1.0;
          }
        } else {
          // Bin b -> tuple b-1 = e_b.
          for (int64_t k = 0; k < dict_vals; ++k) {
            dict[static_cast<size_t>(k * e.out_width + k)] = 1.0;
          }
        }
      } else {
        if (e.encoding == ColEncodingKind::kRecode) {
          for (int64_t k = 0; k < dict_vals; ++k) {
            dict[static_cast<size_t>(k)] = static_cast<double>(k);
          }
        } else {
          for (int64_t k = 0; k < dict_vals; ++k) {
            dict[static_cast<size_t>(k)] = static_cast<double>(k + 1);
          }
        }
      }
      const int kind = e.encoding == ColEncodingKind::kRecode ? 1 : 2;
      const int64_t code_shift =
          e.encoding == ColEncodingKind::kBin ? 1 : 0;
      std::vector<uint16_t> codes(static_cast<size_t>(rows), 0);
      ThreadPool::Global().ParallelFor(
          0, rows, chunks, [&](int64_t rb, int64_t re) {
            EncodeRange(frame, c, e, kind, rb, re,
                        [&](int64_t r, double code) {
                          codes[static_cast<size_t>(r)] =
                              static_cast<uint16_t>(
                                  static_cast<int64_t>(code) - code_shift);
                        });
          },
          "transform");
      SYSDS_ASSIGN_OR_RETURN(
          ColGroup g, BuildDdcGroupFromCodes(std::move(gcols),
                                             std::move(dict), codes.data(),
                                             rows, &nnz));
      groups.push_back(std::move(g));
    } else {
      // Pass-through (and over-wide dictionaries): uncompressed
      // column-major fallback, filled row-chunk parallel.
      std::vector<double> values(static_cast<size_t>(e.out_width * rows),
                                 0.0);
      const int kind = e.encoding == ColEncodingKind::kPassThrough ? 0
                       : e.encoding == ColEncodingKind::kRecode    ? 1
                                                                   : 2;
      ThreadPool::Global().ParallelFor(
          0, rows, chunks, [&](int64_t rb, int64_t re) {
            if (e.dummycode) {
              EncodeRange(frame, c, e, kind, rb, re,
                          [&](int64_t r, double code) {
                            int64_t k = static_cast<int64_t>(code);
                            if (k >= 1 && k <= e.out_width) {
                              values[static_cast<size_t>((k - 1) * rows +
                                                         r)] = 1.0;
                            }
                          });
            } else {
              EncodeRange(frame, c, e, kind, rb, re,
                          [&](int64_t r, double code) {
                            values[static_cast<size_t>(r)] = code;
                          });
            }
          },
          "transform");
      groups.push_back(BuildUncompressedGroup(std::move(gcols),
                                              std::move(values), rows,
                                              &nnz));
    }
  }
  return CompressedMatrixBlock::FromParts(rows, NumOutputCols(), nnz,
                                          std::move(groups));
}

StatusOr<MatrixBlock> MultiColumnEncoder::Apply(
    const FrameBlock& frame) const {
  EncodeOptions options;
  SYSDS_ASSIGN_OR_RETURN(EncodedOutput out, Apply(frame, options));
  return std::move(out.Dense());
}

StatusOr<MatrixBlock> MultiColumnEncoder::ApplyReferenceSerial(
    const FrameBlock& frame) const {
  if (frame.Cols() != num_input_cols_) {
    return InvalidArgument("transformapply: column count mismatch");
  }
  MatrixBlock m = MatrixBlock::Dense(frame.Rows(), NumOutputCols());
  for (int64_t c = 0; c < frame.Cols(); ++c) {
    const ColumnEncoder& e = encoders_[c];
    for (int64_t r = 0; r < frame.Rows(); ++r) {
      double code = 0.0;
      switch (e.encoding) {
        case ColEncodingKind::kPassThrough: {
          double v = frame.GetDouble(r, c);
          if (std::isnan(v) && e.impute) v = e.impute_value;
          std::string s = frame.GetString(r, c);
          if (s.empty() && e.impute) v = e.impute_value;
          code = v;
          break;
        }
        case ColEncodingKind::kRecode: {
          std::string s = frame.GetString(r, c);
          if (s.empty() && e.impute) s = e.impute_string;
          auto it = e.recode_map.find(s);
          code = it == e.recode_map.end() ? 0.0
                                          : static_cast<double>(it->second);
          break;
        }
        case ColEncodingKind::kBin: {
          double v = frame.GetDouble(r, c);
          if (std::isnan(v) && e.impute) v = e.impute_value;
          code = static_cast<double>(
              BinOf(v, e.bin_uppers, e.bin_min, e.bin_width, e.num_bins));
          break;
        }
      }
      if (e.dummycode) {
        int64_t k = static_cast<int64_t>(code);
        if (k >= 1 && k <= e.out_width) {
          m.DenseRow(r)[e.out_offset + k - 1] = 1.0;
        }
      } else {
        m.DenseRow(r)[e.out_offset] = code;
      }
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

FrameBlock MultiColumnEncoder::MetaFrame() const {
  // One string column per input column; rows hold "payload" strings.
  int64_t max_rows = 1;
  for (const ColumnEncoder& e : encoders_) {
    max_rows = std::max<int64_t>(
        max_rows, static_cast<int64_t>(e.recode_tokens.size()) + 2);
    max_rows = std::max<int64_t>(
        max_rows, static_cast<int64_t>(e.bin_uppers.size()) + 2);
  }
  FrameBlock meta(max_rows,
                  std::vector<ValueType>(static_cast<size_t>(num_input_cols_),
                                         ValueType::kString));
  for (int64_t c = 0; c < num_input_cols_; ++c) {
    const ColumnEncoder& e = encoders_[c];
    std::ostringstream hdr;
    // max_digits10 so fitted doubles (means, equi-height boundaries)
    // round-trip exactly through FromMeta.
    hdr << std::setprecision(std::numeric_limits<double>::max_digits10);
    switch (e.encoding) {
      case ColEncodingKind::kPassThrough: hdr << "pass"; break;
      case ColEncodingKind::kRecode: hdr << "recode"; break;
      case ColEncodingKind::kBin: hdr << "bin"; break;
    }
    hdr << "," << (e.dummycode ? 1 : 0) << "," << (e.impute ? 1 : 0) << ","
        << e.impute_value << "," << e.num_bins << "," << e.bin_min << ","
        << e.bin_width;
    meta.SetString(0, c, hdr.str());
    int64_t r = 1;
    for (size_t t = 0; t < e.recode_tokens.size(); ++t) {
      meta.SetString(r++, c,
                     e.recode_tokens[t] + "\t" + std::to_string(t + 1));
    }
    for (double u : e.bin_uppers) {
      std::ostringstream os;
      os << std::setprecision(std::numeric_limits<double>::max_digits10)
         << "ub\t" << u;
      meta.SetString(r++, c, os.str());
    }
  }
  return meta;
}

StatusOr<MultiColumnEncoder> MultiColumnEncoder::FromMeta(
    const TransformSpec& spec, const FrameBlock& meta,
    int64_t num_input_cols) {
  (void)spec;
  if (meta.Cols() != num_input_cols) {
    return InvalidArgument("transformapply: meta column count mismatch");
  }
  MultiColumnEncoder enc;
  enc.num_input_cols_ = num_input_cols;
  enc.encoders_.resize(static_cast<size_t>(num_input_cols));
  for (int64_t c = 0; c < num_input_cols; ++c) {
    ColumnEncoder& e = enc.encoders_[c];
    std::vector<std::string> hdr = SplitString(meta.GetString(0, c), ',');
    if (hdr.size() < 7) return InvalidArgument("malformed transform meta");
    if (hdr[0] == "recode") e.encoding = ColEncodingKind::kRecode;
    else if (hdr[0] == "bin") e.encoding = ColEncodingKind::kBin;
    else e.encoding = ColEncodingKind::kPassThrough;
    e.dummycode = hdr[1] == "1";
    e.impute = hdr[2] == "1";
    e.impute_value = std::strtod(hdr[3].c_str(), nullptr);
    e.num_bins = std::strtoll(hdr[4].c_str(), nullptr, 10);
    e.bin_min = std::strtod(hdr[5].c_str(), nullptr);
    e.bin_width = std::strtod(hdr[6].c_str(), nullptr);
    e.impute_string = hdr[3];
    for (int64_t r = 1; r < meta.Rows(); ++r) {
      std::string cell = meta.GetString(r, c);
      if (cell.empty()) continue;
      size_t tab = cell.find('\t');
      if (tab == std::string::npos) continue;
      std::string key = cell.substr(0, tab);
      std::string val = cell.substr(tab + 1);
      if (e.encoding == ColEncodingKind::kRecode) {
        int64_t code = std::strtoll(val.c_str(), nullptr, 10);
        e.recode_map[key] = code;
        if (static_cast<int64_t>(e.recode_tokens.size()) < code) {
          e.recode_tokens.resize(static_cast<size_t>(code));
        }
        e.recode_tokens[static_cast<size_t>(code - 1)] = key;
      } else if (e.encoding == ColEncodingKind::kBin && key == "ub") {
        e.bin_uppers.push_back(std::strtod(val.c_str(), nullptr));
      }
    }
  }
  enc.AssignOutputOffsets();
  return enc;
}

StatusOr<FrameBlock> MultiColumnEncoder::Decode(const MatrixBlock& m,
                                                const FrameBlock& like,
                                                int num_threads) const {
  SYSDS_SPAN("transform", "decode");
  if (m.Cols() != NumOutputCols()) {
    return InvalidArgument("transformdecode: column count mismatch");
  }
  transform_metrics::DecodeCalls()->Add();
  const int threads =
      num_threads > 0 ? num_threads : DefaultParallelism();
  FrameBlock out(m.Rows(), like.Schema(), like.ColumnNames());
  const int64_t chunks = PickChunks(m.Rows(), threads);
  ThreadPool::Global().ParallelFor(
      0, m.Rows(), chunks, [&](int64_t rb, int64_t re) {
        for (int64_t c = 0; c < num_input_cols_; ++c) {
          const ColumnEncoder& e = encoders_[c];
          for (int64_t r = rb; r < re; ++r) {
            double code;
            if (e.dummycode) {
              code = 0.0;
              for (int64_t k = 0; k < e.out_width; ++k) {
                if (m.Get(r, e.out_offset + k) != 0.0) {
                  code = static_cast<double>(k + 1);
                  break;
                }
              }
            } else {
              code = m.Get(r, e.out_offset);
            }
            if (e.encoding == ColEncodingKind::kRecode) {
              int64_t k = static_cast<int64_t>(code);
              if (k >= 1 &&
                  k <= static_cast<int64_t>(e.recode_tokens.size())) {
                out.SetString(r, c,
                              e.recode_tokens[static_cast<size_t>(k - 1)]);
              } else {
                out.SetString(r, c, "");
              }
            } else {
              out.SetDouble(r, c, code);
            }
          }
        }
      },
      "transform");
  return out;
}

}  // namespace sysds
