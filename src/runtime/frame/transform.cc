#include "runtime/frame/transform.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/json.h"
#include "common/util.h"

namespace sysds {

namespace {

// Resolves a JSON column reference (name string or 1-based number) to a
// 0-based index.
StatusOr<int64_t> ResolveColumn(const JsonValue& v, const FrameBlock& frame) {
  if (v.kind() == JsonValue::Kind::kString) {
    SYSDS_ASSIGN_OR_RETURN(int64_t idx, frame.ColumnIndex(v.AsString()));
    return idx;
  }
  if (v.kind() == JsonValue::Kind::kNumber) {
    int64_t idx = static_cast<int64_t>(v.AsNumber()) - 1;
    if (idx < 0 || idx >= frame.Cols()) {
      return OutOfRange("transform spec column index out of range");
    }
    return idx;
  }
  return InvalidArgument("transform spec: column must be name or index");
}

}  // namespace

StatusOr<TransformSpec> ParseTransformSpec(const std::string& spec_json,
                                           const FrameBlock& frame) {
  SYSDS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(spec_json));
  if (root.kind() != JsonValue::Kind::kObject) {
    return InvalidArgument("transform spec must be a JSON object");
  }
  TransformSpec spec;
  if (const JsonValue* rc = root.Find("recode")) {
    for (const JsonValue& v : rc->AsArray()) {
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(v, frame));
      spec.recode_cols.push_back(c);
    }
  }
  if (const JsonValue* dc = root.Find("dummycode")) {
    for (const JsonValue& v : dc->AsArray()) {
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(v, frame));
      spec.dummycode_cols.push_back(c);
    }
  }
  if (const JsonValue* bins = root.Find("bin")) {
    for (const JsonValue& v : bins->AsArray()) {
      const JsonValue* name = v.Find("name");
      if (name == nullptr) {
        return InvalidArgument("bin spec entries require a 'name'");
      }
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(*name, frame));
      TransformSpec::BinSpec b;
      b.col = c;
      b.num_bins = 5;
      b.method = "equi-width";
      if (const JsonValue* nb = v.Find("numbins")) {
        b.num_bins = static_cast<int64_t>(nb->AsNumber());
      }
      if (const JsonValue* m = v.Find("method")) b.method = m->AsString();
      if (b.num_bins < 1) return InvalidArgument("bin: numbins must be >= 1");
      spec.bin_cols.push_back(b);
    }
  }
  if (const JsonValue* imp = root.Find("impute")) {
    for (const JsonValue& v : imp->AsArray()) {
      const JsonValue* name = v.Find("name");
      if (name == nullptr) {
        return InvalidArgument("impute spec entries require a 'name'");
      }
      SYSDS_ASSIGN_OR_RETURN(int64_t c, ResolveColumn(*name, frame));
      TransformSpec::ImputeSpec i;
      i.col = c;
      i.method = "mean";
      if (const JsonValue* m = v.Find("method")) i.method = m->AsString();
      if (const JsonValue* cv = v.Find("value")) i.constant = cv->AsString();
      spec.impute_cols.push_back(i);
    }
  }
  return spec;
}

void MultiColumnEncoder::AssignOutputOffsets() {
  int64_t off = 0;
  for (ColumnEncoder& e : encoders_) {
    e.out_offset = off;
    if (e.dummycode) {
      e.out_width = e.encoding == ColEncoding::kRecode
                        ? static_cast<int64_t>(e.recode_tokens.size())
                        : e.num_bins;
      if (e.out_width == 0) e.out_width = 1;
    } else {
      e.out_width = 1;
    }
    off += e.out_width;
  }
}

int64_t MultiColumnEncoder::NumOutputCols() const {
  int64_t n = 0;
  for (const ColumnEncoder& e : encoders_) n += e.out_width;
  return n;
}

StatusOr<MultiColumnEncoder> MultiColumnEncoder::Fit(
    const FrameBlock& frame, const TransformSpec& spec) {
  MultiColumnEncoder enc;
  enc.num_input_cols_ = frame.Cols();
  enc.encoders_.resize(static_cast<size_t>(frame.Cols()));

  for (int64_t c : spec.recode_cols) {
    enc.encoders_[c].encoding = ColEncoding::kRecode;
  }
  for (const auto& b : spec.bin_cols) {
    if (enc.encoders_[b.col].encoding == ColEncoding::kRecode) {
      return InvalidArgument("column cannot be both recoded and binned");
    }
    enc.encoders_[b.col].encoding = ColEncoding::kBin;
    enc.encoders_[b.col].num_bins = b.num_bins;
    enc.encoders_[b.col].bin_method = b.method;
  }
  for (int64_t c : spec.dummycode_cols) {
    enc.encoders_[c].dummycode = true;
    if (enc.encoders_[c].encoding == ColEncoding::kPassThrough) {
      // Dummycode over raw values implies recode first (SystemDS behaviour).
      enc.encoders_[c].encoding = ColEncoding::kRecode;
    }
  }
  for (const auto& i : spec.impute_cols) {
    enc.encoders_[i.col].impute = true;
    enc.encoders_[i.col].impute_string = i.method;
  }

  for (int64_t c = 0; c < frame.Cols(); ++c) {
    ColumnEncoder& e = enc.encoders_[c];
    // Fit imputation first: mean/mode over non-missing cells (missing =
    // empty string or NaN).
    if (e.impute) {
      if (e.impute_string == "mean") {
        double sum = 0.0;
        int64_t count = 0;
        for (int64_t r = 0; r < frame.Rows(); ++r) {
          std::string s = frame.GetString(r, c);
          double v = frame.GetDouble(r, c);
          if (!s.empty() && !std::isnan(v)) {
            sum += v;
            ++count;
          }
        }
        e.impute_value = count ? sum / count : 0.0;
      } else if (e.impute_string == "mode") {
        std::map<std::string, int64_t> counts;
        for (int64_t r = 0; r < frame.Rows(); ++r) {
          std::string s = frame.GetString(r, c);
          if (!s.empty()) ++counts[s];
        }
        int64_t best = -1;
        for (const auto& [token, n] : counts) {
          if (n > best) {
            best = n;
            e.impute_string = token;
          }
        }
        if (best < 0) e.impute_string = "0";
        e.impute_value = std::strtod(e.impute_string.c_str(), nullptr);
      } else {
        // constant
        e.impute_value = std::strtod(e.impute_string.c_str(), nullptr);
      }
    }

    if (e.encoding == ColEncoding::kRecode) {
      std::set<std::string> distinct;
      for (int64_t r = 0; r < frame.Rows(); ++r) {
        std::string s = frame.GetString(r, c);
        if (s.empty() && e.impute) s = e.impute_string;
        if (!s.empty()) distinct.insert(s);
      }
      int64_t code = 1;
      for (const std::string& token : distinct) {
        e.recode_map[token] = code++;
        e.recode_tokens.push_back(token);
      }
    } else if (e.encoding == ColEncoding::kBin) {
      std::vector<double> vals;
      vals.reserve(static_cast<size_t>(frame.Rows()));
      for (int64_t r = 0; r < frame.Rows(); ++r) {
        double v = frame.GetDouble(r, c);
        if (std::isnan(v) && e.impute) v = e.impute_value;
        if (!std::isnan(v)) vals.push_back(v);
      }
      if (vals.empty()) vals.push_back(0.0);
      double lo = *std::min_element(vals.begin(), vals.end());
      double hi = *std::max_element(vals.begin(), vals.end());
      e.bin_min = lo;
      if (e.bin_method == "equi-height") {
        std::sort(vals.begin(), vals.end());
        e.bin_uppers.resize(static_cast<size_t>(e.num_bins));
        for (int64_t b = 0; b < e.num_bins; ++b) {
          size_t idx = static_cast<size_t>(
              std::min<double>(vals.size() - 1,
                               std::ceil(static_cast<double>(vals.size()) *
                                         (b + 1) / e.num_bins) -
                                   1));
          e.bin_uppers[b] = vals[idx];
        }
        e.bin_uppers.back() = hi;
      } else {
        e.bin_width = (hi - lo) / static_cast<double>(e.num_bins);
        if (e.bin_width == 0.0) e.bin_width = 1.0;
      }
    }
  }
  enc.AssignOutputOffsets();
  return enc;
}

StatusOr<MatrixBlock> MultiColumnEncoder::Apply(const FrameBlock& frame) const {
  if (frame.Cols() != num_input_cols_) {
    return InvalidArgument("transformapply: column count mismatch");
  }
  MatrixBlock m = MatrixBlock::Dense(frame.Rows(), NumOutputCols());
  for (int64_t c = 0; c < frame.Cols(); ++c) {
    const ColumnEncoder& e = encoders_[c];
    for (int64_t r = 0; r < frame.Rows(); ++r) {
      double code = 0.0;
      switch (e.encoding) {
        case ColEncoding::kPassThrough: {
          double v = frame.GetDouble(r, c);
          if (std::isnan(v) && e.impute) v = e.impute_value;
          std::string s = frame.GetString(r, c);
          if (s.empty() && e.impute) v = e.impute_value;
          code = v;
          break;
        }
        case ColEncoding::kRecode: {
          std::string s = frame.GetString(r, c);
          if (s.empty() && e.impute) s = e.impute_string;
          auto it = e.recode_map.find(s);
          code = it == e.recode_map.end() ? 0.0
                                          : static_cast<double>(it->second);
          break;
        }
        case ColEncoding::kBin: {
          double v = frame.GetDouble(r, c);
          if (std::isnan(v) && e.impute) v = e.impute_value;
          int64_t bin;
          if (!e.bin_uppers.empty()) {
            bin = static_cast<int64_t>(
                std::lower_bound(e.bin_uppers.begin(), e.bin_uppers.end(), v) -
                e.bin_uppers.begin()) + 1;
          } else {
            bin = static_cast<int64_t>(
                      std::floor((v - e.bin_min) / e.bin_width)) + 1;
          }
          bin = std::max<int64_t>(1, std::min<int64_t>(e.num_bins, bin));
          code = static_cast<double>(bin);
          break;
        }
      }
      if (e.dummycode) {
        int64_t k = static_cast<int64_t>(code);
        if (k >= 1 && k <= e.out_width) {
          m.DenseRow(r)[e.out_offset + k - 1] = 1.0;
        }
      } else {
        m.DenseRow(r)[e.out_offset] = code;
      }
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

FrameBlock MultiColumnEncoder::MetaFrame() const {
  // One string column per input column; rows hold "payload" strings.
  int64_t max_rows = 1;
  for (const ColumnEncoder& e : encoders_) {
    max_rows = std::max<int64_t>(
        max_rows, static_cast<int64_t>(e.recode_tokens.size()) + 2);
    max_rows = std::max<int64_t>(
        max_rows, static_cast<int64_t>(e.bin_uppers.size()) + 2);
  }
  FrameBlock meta(max_rows,
                  std::vector<ValueType>(static_cast<size_t>(num_input_cols_),
                                         ValueType::kString));
  for (int64_t c = 0; c < num_input_cols_; ++c) {
    const ColumnEncoder& e = encoders_[c];
    std::ostringstream hdr;
    switch (e.encoding) {
      case ColEncoding::kPassThrough: hdr << "pass"; break;
      case ColEncoding::kRecode: hdr << "recode"; break;
      case ColEncoding::kBin: hdr << "bin"; break;
    }
    hdr << "," << (e.dummycode ? 1 : 0) << "," << (e.impute ? 1 : 0) << ","
        << e.impute_value << "," << e.num_bins << "," << e.bin_min << ","
        << e.bin_width;
    meta.SetString(0, c, hdr.str());
    int64_t r = 1;
    for (size_t t = 0; t < e.recode_tokens.size(); ++t) {
      meta.SetString(r++, c,
                     e.recode_tokens[t] + "\t" + std::to_string(t + 1));
    }
    for (double u : e.bin_uppers) {
      std::ostringstream os;
      os << "ub\t" << u;
      meta.SetString(r++, c, os.str());
    }
  }
  return meta;
}

StatusOr<MultiColumnEncoder> MultiColumnEncoder::FromMeta(
    const TransformSpec& spec, const FrameBlock& meta,
    int64_t num_input_cols) {
  (void)spec;
  if (meta.Cols() != num_input_cols) {
    return InvalidArgument("transformapply: meta column count mismatch");
  }
  MultiColumnEncoder enc;
  enc.num_input_cols_ = num_input_cols;
  enc.encoders_.resize(static_cast<size_t>(num_input_cols));
  for (int64_t c = 0; c < num_input_cols; ++c) {
    ColumnEncoder& e = enc.encoders_[c];
    std::vector<std::string> hdr = SplitString(meta.GetString(0, c), ',');
    if (hdr.size() < 7) return InvalidArgument("malformed transform meta");
    if (hdr[0] == "recode") e.encoding = ColEncoding::kRecode;
    else if (hdr[0] == "bin") e.encoding = ColEncoding::kBin;
    else e.encoding = ColEncoding::kPassThrough;
    e.dummycode = hdr[1] == "1";
    e.impute = hdr[2] == "1";
    e.impute_value = std::strtod(hdr[3].c_str(), nullptr);
    e.num_bins = std::strtoll(hdr[4].c_str(), nullptr, 10);
    e.bin_min = std::strtod(hdr[5].c_str(), nullptr);
    e.bin_width = std::strtod(hdr[6].c_str(), nullptr);
    e.impute_string = hdr[3];
    for (int64_t r = 1; r < meta.Rows(); ++r) {
      std::string cell = meta.GetString(r, c);
      if (cell.empty()) continue;
      size_t tab = cell.find('\t');
      if (tab == std::string::npos) continue;
      std::string key = cell.substr(0, tab);
      std::string val = cell.substr(tab + 1);
      if (e.encoding == ColEncoding::kRecode) {
        int64_t code = std::strtoll(val.c_str(), nullptr, 10);
        e.recode_map[key] = code;
        if (static_cast<int64_t>(e.recode_tokens.size()) < code) {
          e.recode_tokens.resize(static_cast<size_t>(code));
        }
        e.recode_tokens[static_cast<size_t>(code - 1)] = key;
      } else if (e.encoding == ColEncoding::kBin && key == "ub") {
        e.bin_uppers.push_back(std::strtod(val.c_str(), nullptr));
      }
    }
  }
  enc.AssignOutputOffsets();
  return enc;
}

StatusOr<FrameBlock> MultiColumnEncoder::Decode(const MatrixBlock& m,
                                                const FrameBlock& like) const {
  if (m.Cols() != NumOutputCols()) {
    return InvalidArgument("transformdecode: column count mismatch");
  }
  FrameBlock out(m.Rows(), like.Schema(), like.ColumnNames());
  for (int64_t c = 0; c < num_input_cols_; ++c) {
    const ColumnEncoder& e = encoders_[c];
    for (int64_t r = 0; r < m.Rows(); ++r) {
      double code;
      if (e.dummycode) {
        code = 0.0;
        for (int64_t k = 0; k < e.out_width; ++k) {
          if (m.Get(r, e.out_offset + k) != 0.0) {
            code = static_cast<double>(k + 1);
            break;
          }
        }
      } else {
        code = m.Get(r, e.out_offset);
      }
      if (e.encoding == ColEncoding::kRecode) {
        int64_t k = static_cast<int64_t>(code);
        if (k >= 1 && k <= static_cast<int64_t>(e.recode_tokens.size())) {
          out.SetString(r, c, e.recode_tokens[static_cast<size_t>(k - 1)]);
        } else {
          out.SetString(r, c, "");
        }
      } else {
        out.SetDouble(r, c, code);
      }
    }
  }
  return out;
}

}  // namespace sysds
