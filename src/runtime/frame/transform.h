#ifndef SYSDS_RUNTIME_FRAME_TRANSFORM_H_
#define SYSDS_RUNTIME_FRAME_TRANSFORM_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Per-column transform selection parsed from a SystemDS-style JSON spec:
///   {"recode":["city"], "dummycode":["city"],
///    "bin":[{"name":"age","method":"equi-width","numbins":5}],
///    "impute":[{"name":"age","method":"mean"}]}
/// Columns may be referenced by name or 1-based index number.
struct TransformSpec {
  std::vector<int64_t> recode_cols;
  std::vector<int64_t> dummycode_cols;
  struct BinSpec {
    int64_t col;
    int64_t num_bins;
    std::string method;  // "equi-width" (default) or "equi-height"
  };
  std::vector<BinSpec> bin_cols;
  struct ImputeSpec {
    int64_t col;
    std::string method;  // "mean" or "mode" or "constant"
    std::string constant;
  };
  std::vector<ImputeSpec> impute_cols;
};

/// Parses the JSON spec against a frame (resolving column names).
StatusOr<TransformSpec> ParseTransformSpec(const std::string& spec_json,
                                           const FrameBlock& frame);

/// Options for MultiColumnEncoder::Apply. The output sink decides the
/// representation: recoded/dummy-coded/binned columns are natural DDC
/// column groups (the fitted dictionary gives the exact cardinality, so the
/// sampling planner is skipped), kAuto prices bytes per column like the
/// compression planner and emits dense below the min-ratio gate.
struct EncodeOptions {
  TransformOutputFormat output = TransformOutputFormat::kDense;
  // Threads for the row-chunk parallel encode (0 = DefaultParallelism).
  int num_threads = 1;
  // kAuto gate: emit compressed only when dense bytes / compressed bytes
  // reaches this ratio (same default as the compression planner).
  double min_ratio = 1.2;
};

/// Result of an encode: either a dense/sparse MatrixBlock or a directly
/// emitted CompressedMatrixBlock, depending on EncodeOptions::output.
class EncodedOutput {
 public:
  static EncodedOutput FromDense(MatrixBlock m);
  static EncodedOutput FromCompressed(CompressedMatrixBlock c);

  bool IsCompressed() const { return is_compressed_; }
  int64_t Rows() const;
  int64_t Cols() const;

  /// The dense result; only valid when !IsCompressed().
  MatrixBlock& Dense() { return dense_; }
  const MatrixBlock& Dense() const { return dense_; }

  /// The compressed result; only valid when IsCompressed().
  CompressedMatrixBlock& Compressed() { return compressed_; }
  const CompressedMatrixBlock& Compressed() const { return compressed_; }

  /// Materializes an uncompressed MatrixBlock (decompressing if needed).
  MatrixBlock ToMatrix(int num_threads = 1) const;

 private:
  bool is_compressed_ = false;
  MatrixBlock dense_;
  CompressedMatrixBlock compressed_;
};

/// The fitted state of a transformencode: recode dictionaries, bin
/// boundaries, impute values — consumable as data (the paper's "retain the
/// appearance of a stateless system by consuming pre-trained models and
/// rules as tensors/frames themselves").
///
/// Fit and Apply are chunked parallel pipelines (§4.2: multi-threaded
/// feature transformations). Determinism: the fit chunk decomposition is a
/// fixed row-block size independent of the thread count — threads only
/// change which worker runs a chunk, never the chunk boundaries — and the
/// per-chunk partials (distinct-token sets, sum/count pairs, value buffers)
/// are merged in chunk order. Token codes are assigned in sorted token
/// order and equi-height boundaries come from the merged sorted sample, so
/// fitting at any thread count produces identical state, and Apply (whose
/// cells are independent) is bit-identical to the serial reference path.
class MultiColumnEncoder {
 public:
  /// Fits all encoders on the input frame (transformencode's first half).
  /// num_threads = 0 means DefaultParallelism().
  static StatusOr<MultiColumnEncoder> Fit(const FrameBlock& frame,
                                          const TransformSpec& spec,
                                          int num_threads = 1);

  /// Encodes a frame per the options. Unseen recode tokens map to 0
  /// (missing); unseen bin values clamp to boundary bins. The compressed
  /// sink emits DDC column groups directly from the fitted dictionaries;
  /// decompressing the result equals the dense result exactly.
  StatusOr<EncodedOutput> Apply(const FrameBlock& frame,
                                const EncodeOptions& options) const;

  /// DEPRECATED: dense-only shim over Apply(frame, {kDense}); kept one
  /// release for callers of the pre-parallel API.
  StatusOr<MatrixBlock> Apply(const FrameBlock& frame) const;

  /// Reference single-threaded encode: the pre-parallel implementation,
  /// cell at a time through the generic frame accessors. Kept as the
  /// differential baseline — Apply must be bit-identical to this at every
  /// thread count and for every sink.
  StatusOr<MatrixBlock> ApplyReferenceSerial(const FrameBlock& frame) const;

  /// Serializes the fitted state to a string frame (one column per input
  /// column; rows are "token(tab)code" / bin boundaries / impute value).
  FrameBlock MetaFrame() const;

  /// Rebuilds an encoder from a meta frame (transformapply's input).
  static StatusOr<MultiColumnEncoder> FromMeta(const TransformSpec& spec,
                                               const FrameBlock& meta,
                                               int64_t num_input_cols);

  /// Inverse transform of recode/dummycode columns (transformdecode).
  /// Row-chunk parallel; rows are independent.
  StatusOr<FrameBlock> Decode(const MatrixBlock& m, const FrameBlock& like,
                              int num_threads = 1) const;

  /// Number of output matrix columns after dummy-coding expansion.
  int64_t NumOutputCols() const;

 private:
  enum class ColEncodingKind { kPassThrough, kRecode, kBin };

  struct ColumnEncoder {
    ColEncodingKind encoding = ColEncodingKind::kPassThrough;
    bool dummycode = false;
    // Recode dictionary token -> 1-based code, and its inverse. The
    // ordered map defines code assignment and meta serialization; the
    // hash map is a lookup accelerator for the Apply hot path, rebuilt by
    // AssignOutputOffsets.
    std::map<std::string, int64_t> recode_map;
    std::unordered_map<std::string, int64_t> recode_lookup;
    std::vector<std::string> recode_tokens;
    // Binning state.
    int64_t num_bins = 0;
    double bin_min = 0.0, bin_width = 0.0;
    std::vector<double> bin_uppers;  // equi-height boundaries
    std::string bin_method;
    // Imputation.
    bool impute = false;
    double impute_value = 0.0;
    std::string impute_string;
    // Output placement.
    int64_t out_offset = 0;
    int64_t out_width = 1;
  };

  int64_t num_input_cols_ = 0;
  std::vector<ColumnEncoder> encoders_;

  void AssignOutputOffsets();

  StatusOr<CompressedMatrixBlock> ApplyCompressed(const FrameBlock& frame,
                                                  int threads) const;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_FRAME_TRANSFORM_H_
