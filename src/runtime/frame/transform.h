#ifndef SYSDS_RUNTIME_FRAME_TRANSFORM_H_
#define SYSDS_RUNTIME_FRAME_TRANSFORM_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Per-column transform selection parsed from a SystemDS-style JSON spec:
///   {"recode":["city"], "dummycode":["city"],
///    "bin":[{"name":"age","method":"equi-width","numbins":5}],
///    "impute":[{"name":"age","method":"mean"}]}
/// Columns may be referenced by name or 1-based index number.
struct TransformSpec {
  std::vector<int64_t> recode_cols;
  std::vector<int64_t> dummycode_cols;
  struct BinSpec {
    int64_t col;
    int64_t num_bins;
    std::string method;  // "equi-width" (default) or "equi-height"
  };
  std::vector<BinSpec> bin_cols;
  struct ImputeSpec {
    int64_t col;
    std::string method;  // "mean" or "mode" or "constant"
    std::string constant;
  };
  std::vector<ImputeSpec> impute_cols;
};

/// Parses the JSON spec against a frame (resolving column names).
StatusOr<TransformSpec> ParseTransformSpec(const std::string& spec_json,
                                           const FrameBlock& frame);

/// The fitted state of a transformencode: recode dictionaries, bin
/// boundaries, impute values — consumable as data (the paper's "retain the
/// appearance of a stateless system by consuming pre-trained models and
/// rules as tensors/frames themselves").
class MultiColumnEncoder {
 public:
  /// Fits all encoders on the input frame (transformencode's first half).
  static StatusOr<MultiColumnEncoder> Fit(const FrameBlock& frame,
                                          const TransformSpec& spec);

  /// Encodes a frame to its numeric matrix representation. Unseen recode
  /// tokens map to 0 (missing); unseen bin values clamp to boundary bins.
  StatusOr<MatrixBlock> Apply(const FrameBlock& frame) const;

  /// Serializes the fitted state to a string frame (one column per input
  /// column; rows are "token(tab)code" / bin boundaries / impute value).
  FrameBlock MetaFrame() const;

  /// Rebuilds an encoder from a meta frame (transformapply's input).
  static StatusOr<MultiColumnEncoder> FromMeta(const TransformSpec& spec,
                                               const FrameBlock& meta,
                                               int64_t num_input_cols);

  /// Inverse transform of recode/dummycode columns (transformdecode).
  StatusOr<FrameBlock> Decode(const MatrixBlock& m,
                              const FrameBlock& like) const;

  /// Number of output matrix columns after dummy-coding expansion.
  int64_t NumOutputCols() const;

 private:
  enum class ColEncoding { kPassThrough, kRecode, kBin };

  struct ColumnEncoder {
    ColEncoding encoding = ColEncoding::kPassThrough;
    bool dummycode = false;
    // Recode dictionary token -> 1-based code, and its inverse.
    std::map<std::string, int64_t> recode_map;
    std::vector<std::string> recode_tokens;
    // Binning state.
    int64_t num_bins = 0;
    double bin_min = 0.0, bin_width = 0.0;
    std::vector<double> bin_uppers;  // equi-height boundaries
    std::string bin_method;
    // Imputation.
    bool impute = false;
    double impute_value = 0.0;
    std::string impute_string;
    // Output placement.
    int64_t out_offset = 0;
    int64_t out_width = 1;
  };

  int64_t num_input_cols_ = 0;
  std::vector<ColumnEncoder> encoders_;

  void AssignOutputOffsets();
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_FRAME_TRANSFORM_H_
