#ifndef SYSDS_RUNTIME_FRAME_FRAME_BLOCK_H_
#define SYSDS_RUNTIME_FRAME_FRAME_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// A 2D table with a per-column schema (paper L4 / §2.4): the substrate of
/// feature transformations and data-preparation builtins. Numeric columns
/// (FP64/FP32/INT64/INT32/BOOLEAN) are stored as doubles, string columns as
/// std::string; cells convert on access.
class FrameBlock {
 public:
  FrameBlock() = default;
  FrameBlock(int64_t rows, std::vector<ValueType> schema);
  FrameBlock(int64_t rows, std::vector<ValueType> schema,
             std::vector<std::string> column_names);

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return static_cast<int64_t>(schema_.size()); }
  const std::vector<ValueType>& Schema() const { return schema_; }
  const std::vector<std::string>& ColumnNames() const { return names_; }

  /// Resolves a column name to its 0-based index (NotFound on miss).
  StatusOr<int64_t> ColumnIndex(const std::string& name) const;

  std::string GetString(int64_t r, int64_t c) const;
  double GetDouble(int64_t r, int64_t c) const;
  void SetString(int64_t r, int64_t c, const std::string& v);
  void SetDouble(int64_t r, int64_t c, double v);

  /// Direct read-only view of a string column's cells, or nullptr for
  /// numeric columns. The encode hot loops use these instead of GetString
  /// (which copies the cell) / GetDouble.
  const std::string* StringData(int64_t c) const;
  /// Direct view of a numeric column's cells, or nullptr for string columns.
  const double* NumericData(int64_t c) const;

  /// Appends an empty row (cells default to 0/"").
  void AppendRow();

  /// Converts all-numeric frames to a matrix; string columns are parsed as
  /// doubles and fail with InvalidArgument on non-numeric content.
  StatusOr<MatrixBlock> ToMatrix() const;

  /// Builds a frame of FP64 columns from a matrix.
  static FrameBlock FromMatrix(const MatrixBlock& m);

  /// Row range slice [rl..ru] inclusive, 0-based, all columns.
  StatusOr<FrameBlock> SliceRows(int64_t rl, int64_t ru) const;

  int64_t EstimateSizeInBytes() const;

  std::string ToString(int64_t max_rows = 10) const;

 private:
  struct Column {
    ValueType type = ValueType::kFP64;
    std::vector<double> num;
    std::vector<std::string> str;
    bool IsString() const { return type == ValueType::kString; }
  };

  int64_t rows_ = 0;
  std::vector<ValueType> schema_;
  std::vector<std::string> names_;
  std::vector<Column> columns_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_FRAME_FRAME_BLOCK_H_
