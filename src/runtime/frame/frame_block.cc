#include "runtime/frame/frame_block.h"

#include <cstdlib>
#include <sstream>

namespace sysds {

FrameBlock::FrameBlock(int64_t rows, std::vector<ValueType> schema)
    : FrameBlock(rows, std::move(schema), {}) {}

FrameBlock::FrameBlock(int64_t rows, std::vector<ValueType> schema,
                       std::vector<std::string> column_names)
    : rows_(rows), schema_(std::move(schema)), names_(std::move(column_names)) {
  if (names_.empty()) {
    names_.reserve(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      names_.push_back("C" + std::to_string(c + 1));
    }
  }
  columns_.resize(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    columns_[c].type = schema_[c];
    if (columns_[c].IsString()) {
      columns_[c].str.assign(static_cast<size_t>(rows_), "");
    } else {
      columns_[c].num.assign(static_cast<size_t>(rows_), 0.0);
    }
  }
}

StatusOr<int64_t> FrameBlock::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return static_cast<int64_t>(c);
  }
  return NotFound("frame column '" + name + "' not found");
}

std::string FrameBlock::GetString(int64_t r, int64_t c) const {
  const Column& col = columns_[static_cast<size_t>(c)];
  if (col.IsString()) return col.str[static_cast<size_t>(r)];
  std::ostringstream os;
  os << col.num[static_cast<size_t>(r)];
  return os.str();
}

double FrameBlock::GetDouble(int64_t r, int64_t c) const {
  const Column& col = columns_[static_cast<size_t>(c)];
  if (!col.IsString()) return col.num[static_cast<size_t>(r)];
  const std::string& s = col.str[static_cast<size_t>(r)];
  return s.empty() ? 0.0 : std::strtod(s.c_str(), nullptr);
}

void FrameBlock::SetString(int64_t r, int64_t c, const std::string& v) {
  Column& col = columns_[static_cast<size_t>(c)];
  if (col.IsString()) {
    col.str[static_cast<size_t>(r)] = v;
  } else {
    col.num[static_cast<size_t>(r)] =
        v.empty() ? 0.0 : std::strtod(v.c_str(), nullptr);
  }
}

void FrameBlock::SetDouble(int64_t r, int64_t c, double v) {
  Column& col = columns_[static_cast<size_t>(c)];
  if (col.IsString()) {
    std::ostringstream os;
    os << v;
    col.str[static_cast<size_t>(r)] = os.str();
  } else {
    col.num[static_cast<size_t>(r)] = v;
  }
}

const std::string* FrameBlock::StringData(int64_t c) const {
  const Column& col = columns_[static_cast<size_t>(c)];
  return col.IsString() ? col.str.data() : nullptr;
}

const double* FrameBlock::NumericData(int64_t c) const {
  const Column& col = columns_[static_cast<size_t>(c)];
  return col.IsString() ? nullptr : col.num.data();
}

void FrameBlock::AppendRow() {
  ++rows_;
  for (Column& col : columns_) {
    if (col.IsString()) {
      col.str.emplace_back();
    } else {
      col.num.push_back(0.0);
    }
  }
}

StatusOr<MatrixBlock> FrameBlock::ToMatrix() const {
  MatrixBlock m = MatrixBlock::Dense(rows_, Cols());
  for (int64_t c = 0; c < Cols(); ++c) {
    const Column& col = columns_[static_cast<size_t>(c)];
    for (int64_t r = 0; r < rows_; ++r) {
      double v;
      if (col.IsString()) {
        const std::string& s = col.str[static_cast<size_t>(r)];
        char* endp = nullptr;
        v = s.empty() ? 0.0 : std::strtod(s.c_str(), &endp);
        if (!s.empty() && endp != s.c_str() + s.size()) {
          return InvalidArgument("as.matrix: non-numeric cell '" + s +
                                 "' in column " + names_[c]);
        }
      } else {
        v = col.num[static_cast<size_t>(r)];
      }
      m.DenseRow(r)[c] = v;
    }
  }
  m.MarkNnzDirty();
  return m;
}

FrameBlock FrameBlock::FromMatrix(const MatrixBlock& m) {
  FrameBlock f(m.Rows(),
               std::vector<ValueType>(static_cast<size_t>(m.Cols()),
                                      ValueType::kFP64));
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t c = 0; c < m.Cols(); ++c) {
      f.SetDouble(r, c, m.Get(r, c));
    }
  }
  return f;
}

StatusOr<FrameBlock> FrameBlock::SliceRows(int64_t rl, int64_t ru) const {
  if (rl < 0 || ru >= rows_ || rl > ru) {
    return OutOfRange("frame row slice out of bounds");
  }
  FrameBlock out(ru - rl + 1, schema_, names_);
  for (int64_t c = 0; c < Cols(); ++c) {
    for (int64_t r = rl; r <= ru; ++r) {
      if (columns_[static_cast<size_t>(c)].IsString()) {
        out.SetString(r - rl, c, GetString(r, c));
      } else {
        out.SetDouble(r - rl, c, GetDouble(r, c));
      }
    }
  }
  return out;
}

int64_t FrameBlock::EstimateSizeInBytes() const {
  int64_t total = 64;
  for (const Column& col : columns_) {
    if (col.IsString()) {
      total += static_cast<int64_t>(col.str.size()) * 32;
      for (const std::string& s : col.str) {
        total += static_cast<int64_t>(s.size());
      }
    } else {
      total += static_cast<int64_t>(col.num.size()) * 8;
    }
  }
  return total;
}

std::string FrameBlock::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << "frame " << rows_ << "x" << Cols() << " [";
  for (int64_t c = 0; c < Cols(); ++c) {
    if (c > 0) os << ",";
    os << names_[c] << ":" << ValueTypeName(schema_[c]);
  }
  os << "]\n";
  for (int64_t r = 0; r < std::min(rows_, max_rows); ++r) {
    for (int64_t c = 0; c < Cols(); ++c) {
      if (c > 0) os << " ";
      os << GetString(r, c);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sysds
