#ifndef SYSDS_RUNTIME_DIST_INSTRUCTIONS_SPARK_H_
#define SYSDS_RUNTIME_DIST_INSTRUCTIONS_SPARK_H_

#include <string>

#include "runtime/controlprog/instruction.h"

namespace sysds {

// Distributed instructions of the simulated Spark backend (paper §2.3(4)).
// Each instruction reblocks its inputs into the fixed-size blocked
// representation, runs the distributed kernel over the executor pool, and
// collects the result back into a local MatrixObject (simulating the
// driver-side collect that SystemDS performs for small outputs).

class SparkMatMultInstr final : public Instruction {
 public:
  SparkMatMultInstr() : Instruction("sp_ba+*", ExecType::kSpark) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

class SparkTsmmInstr final : public Instruction {
 public:
  explicit SparkTsmmInstr(bool left)
      : Instruction("sp_tsmm", ExecType::kSpark), left_(left) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }

 private:
  bool left_;
};

class SparkBinaryInstr final : public Instruction {
 public:
  explicit SparkBinaryInstr(const std::string& opcode)
      : Instruction("sp_" + opcode, ExecType::kSpark), base_opcode_(opcode) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }

 private:
  std::string base_opcode_;
};

class SparkAggUnaryInstr final : public Instruction {
 public:
  explicit SparkAggUnaryInstr(const std::string& opcode)
      : Instruction("sp_" + opcode, ExecType::kSpark), base_opcode_(opcode) {}
  Status Execute(ExecutionContext* ec) override;

 private:
  std::string base_opcode_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_DIST_INSTRUCTIONS_SPARK_H_
