#include "runtime/dist/blocked_matrix.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/statistics.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "runtime/dist/task_runner.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

BlockedMatrix BlockedMatrix::FromMatrix(const MatrixBlock& m,
                                        int64_t block_size) {
  SYSDS_SPAN("dist", "reblock");
  BlockedMatrix out;
  out.SetShape(m.Rows(), m.Cols(), block_size);
  Statistics::Get().IncCounter("spark.reblocks");
  for (int64_t bi = 0; bi < out.RowBlocks(); ++bi) {
    for (int64_t bj = 0; bj < out.ColBlocks(); ++bj) {
      int64_t rb = bi * block_size;
      int64_t re = std::min(m.Rows(), rb + block_size);
      int64_t cb = bj * block_size;
      int64_t ce = std::min(m.Cols(), cb + block_size);
      MatrixBlock blk(re - rb, ce - cb, /*sparse=*/false);
      bool nonzero = false;
      for (int64_t r = rb; r < re; ++r) {
        for (int64_t c = cb; c < ce; ++c) {
          double v = m.Get(r, c);
          if (v != 0.0) {
            blk.DenseRow(r - rb)[c - cb] = v;
            nonzero = true;
          }
        }
      }
      if (nonzero) {
        blk.MarkNnzDirty();
        blk.ExamSparsity();
        out.blocks_.emplace(Key{bi, bj}, std::move(blk));
      }
    }
  }
  Statistics::Get().IncCounter("spark.blocks_written",
                               static_cast<int64_t>(out.blocks_.size()));
  return out;
}

MatrixBlock BlockedMatrix::ToMatrix() const {
  MatrixBlock m = MatrixBlock::Dense(rows_, cols_);
  for (const auto& [key, blk] : blocks_) {
    int64_t rb = key.first * block_size_;
    int64_t cb = key.second * block_size_;
    for (int64_t r = 0; r < blk.Rows(); ++r) {
      for (int64_t c = 0; c < blk.Cols(); ++c) {
        double v = blk.Get(r, c);
        if (v != 0.0) m.DenseRow(rb + r)[cb + c] = v;
      }
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

const MatrixBlock* BlockedMatrix::BlockAt(int64_t bi, int64_t bj) const {
  auto it = blocks_.find(Key{bi, bj});
  return it == blocks_.end() ? nullptr : &it->second;
}

StatusOr<BlockedMatrix> DistMatMult(const BlockedMatrix& a,
                                    const BlockedMatrix& b) {
  if (a.Cols() != b.Rows() || a.BlockSize() != b.BlockSize()) {
    return InvalidArgument("distributed matmult: incompatible inputs");
  }
  SYSDS_SPAN("dist", "matmult_shuffle");
  BlockedMatrix c;
  c.SetShape(a.Rows(), b.Cols(), a.BlockSize());
  int64_t rb = a.RowBlocks(), cb = b.ColBlocks(), kb = a.ColBlocks();
  // Replicated join on the shared dimension: every (i,k)x(k,j) pair is one
  // shuffled block pair in a real cluster.
  Statistics::Get().IncCounter("spark.shuffled_blocks", rb * cb * kb);
  // Each output block is one retryable task; results commit into per-task
  // slots so re-executed or speculative attempts cannot reorder anything.
  std::vector<std::pair<BlockedMatrix::Key, MatrixBlock>> results(
      static_cast<size_t>(rb * cb));
  SYSDS_RETURN_IF_ERROR(RunRetryableTasks(
      rb * cb,
      [&](int64_t t)
          -> StatusOr<std::pair<BlockedMatrix::Key, MatrixBlock>> {
        int64_t bi = t / cb, bj = t % cb;
        SYSDS_SPAN("dist", "mm_block_task");
        MatrixBlock acc;
        bool has = false;
        for (int64_t bk = 0; bk < kb; ++bk) {
          const MatrixBlock* ab = a.BlockAt(bi, bk);
          const MatrixBlock* bb = b.BlockAt(bk, bj);
          if (ab == nullptr || bb == nullptr) continue;
          SYSDS_ASSIGN_OR_RETURN(MatrixBlock prod, MatMult(*ab, *bb, 1));
          if (!has) {
            acc = std::move(prod);
            has = true;
          } else {
            SYSDS_ASSIGN_OR_RETURN(
                acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, prod, 1));
          }
        }
        if (has && acc.NonZeros() > 0) {
          acc.ExamSparsity();
          return std::make_pair(BlockedMatrix::Key{bi, bj}, std::move(acc));
        }
        return std::make_pair(BlockedMatrix::Key{-1, -1}, MatrixBlock());
      },
      [&](int64_t t, std::pair<BlockedMatrix::Key, MatrixBlock>&& r) {
        results[static_cast<size_t>(t)] = std::move(r);
      }));
  for (auto& [key, blk] : results) {
    if (key.first >= 0) c.MutableBlocks().emplace(key, std::move(blk));
  }
  return c;
}

StatusOr<BlockedMatrix> DistTsmmLeft(const BlockedMatrix& x) {
  // t(X)%*%X: per row-block stripe tsmm over the stripe's blocks, then a
  // tree-aggregate of partials (one pass here).
  SYSDS_SPAN("dist", "tsmm");
  int64_t n = x.Cols();
  Statistics::Get().IncCounter("spark.shuffled_blocks",
                               static_cast<int64_t>(x.Blocks().size()));
  // One retryable task per row-block stripe; partials commit into stripe
  // slots and the tree-aggregate runs serially in stripe order afterwards,
  // keeping the result bit-identical under re-execution and speculation.
  std::vector<MatrixBlock> partials(static_cast<size_t>(x.RowBlocks()));
  std::vector<uint8_t> present(static_cast<size_t>(x.RowBlocks()), 0);
  SYSDS_RETURN_IF_ERROR(RunRetryableTasks(
      x.RowBlocks(),
      [&](int64_t bi) -> StatusOr<MatrixBlock> {
        // Assemble the stripe (all column blocks of row-block bi).
        int64_t rb = bi * x.BlockSize();
        int64_t re = std::min(x.Rows(), rb + x.BlockSize());
        MatrixBlock stripe(re - rb, n, /*sparse=*/false);
        bool has = false;
        for (int64_t bj = 0; bj < x.ColBlocks(); ++bj) {
          const MatrixBlock* blk = x.BlockAt(bi, bj);
          if (blk == nullptr) continue;
          has = true;
          int64_t cb = bj * x.BlockSize();
          for (int64_t r = 0; r < blk->Rows(); ++r) {
            for (int64_t c = 0; c < blk->Cols(); ++c) {
              stripe.DenseRow(r)[cb + c] = blk->Get(r, c);
            }
          }
        }
        if (!has) return MatrixBlock();
        stripe.MarkNnzDirty();
        return TransposeSelfMatMult(stripe, true, 1);
      },
      [&](int64_t bi, MatrixBlock&& part) {
        if (part.Rows() > 0) {
          partials[static_cast<size_t>(bi)] = std::move(part);
          present[static_cast<size_t>(bi)] = 1;
        }
      }));
  MatrixBlock acc = MatrixBlock::Dense(n, n);
  for (int64_t bi = 0; bi < x.RowBlocks(); ++bi) {
    if (!present[static_cast<size_t>(bi)]) continue;
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc,
                                partials[static_cast<size_t>(bi)], 1));
  }
  return BlockedMatrix::FromMatrix(acc, x.BlockSize());
}

StatusOr<BlockedMatrix> DistBinary(const BlockedMatrix& a,
                                   const BlockedMatrix& b,
                                   const std::string& opcode) {
  if (a.Rows() != b.Rows() || a.Cols() != b.Cols() ||
      a.BlockSize() != b.BlockSize()) {
    return InvalidArgument("distributed binary: incompatible inputs");
  }
  BinaryOpCode code;
  if (opcode == "+") code = BinaryOpCode::kAdd;
  else if (opcode == "-") code = BinaryOpCode::kSub;
  else if (opcode == "*") code = BinaryOpCode::kMul;
  else if (opcode == "/") code = BinaryOpCode::kDiv;
  else return InvalidArgument("distributed binary: unsupported op " + opcode);
  SYSDS_SPAN("dist", "binary");
  // Aligned blocking => co-partitioned join, no shuffle (paper §2.4). Each
  // block pair is one retryable task committing into its own slot.
  BlockedMatrix c;
  c.SetShape(a.Rows(), a.Cols(), a.BlockSize());
  int64_t rbs = a.RowBlocks(), cbs = a.ColBlocks();
  std::vector<MatrixBlock> blocks(static_cast<size_t>(rbs * cbs));
  std::vector<uint8_t> present(static_cast<size_t>(rbs * cbs), 0);
  SYSDS_RETURN_IF_ERROR(RunRetryableTasks(
      rbs * cbs,
      [&](int64_t t) -> StatusOr<MatrixBlock> {
        int64_t bi = t / cbs, bj = t % cbs;
        const MatrixBlock* ab = a.BlockAt(bi, bj);
        const MatrixBlock* bb = b.BlockAt(bi, bj);
        int64_t rows = std::min(a.Rows() - bi * a.BlockSize(), a.BlockSize());
        int64_t cols = std::min(a.Cols() - bj * a.BlockSize(), a.BlockSize());
        MatrixBlock zero(rows, cols, /*sparse=*/true);
        const MatrixBlock& lhs = ab != nullptr ? *ab : zero;
        const MatrixBlock& rhs = bb != nullptr ? *bb : zero;
        return BinaryMatrixMatrix(code, lhs, rhs, 1);
      },
      [&](int64_t t, MatrixBlock&& blk) {
        if (blk.NonZeros() > 0) {
          blocks[static_cast<size_t>(t)] = std::move(blk);
          present[static_cast<size_t>(t)] = 1;
        }
      }));
  for (int64_t t = 0; t < rbs * cbs; ++t) {
    if (!present[static_cast<size_t>(t)]) continue;
    c.MutableBlocks().emplace(BlockedMatrix::Key{t / cbs, t % cbs},
                              std::move(blocks[static_cast<size_t>(t)]));
  }
  return c;
}

StatusOr<MatrixBlock> DistAggSum(const BlockedMatrix& a) {
  double sum = 0.0, corr = 0.0;
  for (const auto& [key, blk] : a.Blocks()) {
    for (int64_t r = 0; r < blk.Rows(); ++r) {
      for (int64_t c = 0; c < blk.Cols(); ++c) {
        double y = blk.Get(r, c) - corr;
        double t = sum + y;
        corr = (t - sum) - y;
        sum = t;
      }
    }
  }
  MatrixBlock out = MatrixBlock::Dense(1, 1, sum);
  return out;
}

}  // namespace sysds
