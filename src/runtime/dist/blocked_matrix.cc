#include "runtime/dist/blocked_matrix.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/statistics.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

BlockedMatrix BlockedMatrix::FromMatrix(const MatrixBlock& m,
                                        int64_t block_size) {
  SYSDS_SPAN("dist", "reblock");
  BlockedMatrix out;
  out.SetShape(m.Rows(), m.Cols(), block_size);
  Statistics::Get().IncCounter("spark.reblocks");
  for (int64_t bi = 0; bi < out.RowBlocks(); ++bi) {
    for (int64_t bj = 0; bj < out.ColBlocks(); ++bj) {
      int64_t rb = bi * block_size;
      int64_t re = std::min(m.Rows(), rb + block_size);
      int64_t cb = bj * block_size;
      int64_t ce = std::min(m.Cols(), cb + block_size);
      MatrixBlock blk(re - rb, ce - cb, /*sparse=*/false);
      bool nonzero = false;
      for (int64_t r = rb; r < re; ++r) {
        for (int64_t c = cb; c < ce; ++c) {
          double v = m.Get(r, c);
          if (v != 0.0) {
            blk.DenseRow(r - rb)[c - cb] = v;
            nonzero = true;
          }
        }
      }
      if (nonzero) {
        blk.MarkNnzDirty();
        blk.ExamSparsity();
        out.blocks_.emplace(Key{bi, bj}, std::move(blk));
      }
    }
  }
  Statistics::Get().IncCounter("spark.blocks_written",
                               static_cast<int64_t>(out.blocks_.size()));
  return out;
}

MatrixBlock BlockedMatrix::ToMatrix() const {
  MatrixBlock m = MatrixBlock::Dense(rows_, cols_);
  for (const auto& [key, blk] : blocks_) {
    int64_t rb = key.first * block_size_;
    int64_t cb = key.second * block_size_;
    for (int64_t r = 0; r < blk.Rows(); ++r) {
      for (int64_t c = 0; c < blk.Cols(); ++c) {
        double v = blk.Get(r, c);
        if (v != 0.0) m.DenseRow(rb + r)[cb + c] = v;
      }
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

const MatrixBlock* BlockedMatrix::BlockAt(int64_t bi, int64_t bj) const {
  auto it = blocks_.find(Key{bi, bj});
  return it == blocks_.end() ? nullptr : &it->second;
}

StatusOr<BlockedMatrix> DistMatMult(const BlockedMatrix& a,
                                    const BlockedMatrix& b) {
  if (a.Cols() != b.Rows() || a.BlockSize() != b.BlockSize()) {
    return InvalidArgument("distributed matmult: incompatible inputs");
  }
  SYSDS_SPAN("dist", "matmult_shuffle");
  BlockedMatrix c;
  c.SetShape(a.Rows(), b.Cols(), a.BlockSize());
  int64_t rb = a.RowBlocks(), cb = b.ColBlocks(), kb = a.ColBlocks();
  // Replicated join on the shared dimension: every (i,k)x(k,j) pair is one
  // shuffled block pair in a real cluster.
  Statistics::Get().IncCounter("spark.shuffled_blocks", rb * cb * kb);
  std::mutex mu;
  std::vector<std::pair<BlockedMatrix::Key, MatrixBlock>> results(
      static_cast<size_t>(rb * cb));
  std::vector<Status> statuses(static_cast<size_t>(rb * cb));
  ThreadPool::Global().ParallelFor(
      0, rb * cb, DefaultParallelism(), [&](int64_t tb, int64_t te) {
        for (int64_t t = tb; t < te; ++t) {
          int64_t bi = t / cb, bj = t % cb;
          SYSDS_SPAN("dist", "mm_block_task");
          MatrixBlock acc;
          bool has = false;
          for (int64_t bk = 0; bk < kb; ++bk) {
            const MatrixBlock* ab = a.BlockAt(bi, bk);
            const MatrixBlock* bb = b.BlockAt(bk, bj);
            if (ab == nullptr || bb == nullptr) continue;
            auto prod = MatMult(*ab, *bb, 1);
            if (!prod.ok()) {
              statuses[static_cast<size_t>(t)] = prod.status();
              return;
            }
            if (!has) {
              acc = std::move(*prod);
              has = true;
            } else {
              auto sum = BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, *prod, 1);
              if (!sum.ok()) {
                statuses[static_cast<size_t>(t)] = sum.status();
                return;
              }
              acc = std::move(*sum);
            }
          }
          if (has && acc.NonZeros() > 0) {
            results[static_cast<size_t>(t)] = {{bi, bj}, std::move(acc)};
            results[static_cast<size_t>(t)].second.ExamSparsity();
          } else {
            results[static_cast<size_t>(t)].first = {-1, -1};
          }
        }
      });
  for (const Status& s : statuses) SYSDS_RETURN_IF_ERROR(s);
  for (auto& [key, blk] : results) {
    if (key.first >= 0) c.MutableBlocks().emplace(key, std::move(blk));
  }
  return c;
}

StatusOr<BlockedMatrix> DistTsmmLeft(const BlockedMatrix& x) {
  // t(X)%*%X: per row-block stripe tsmm over the stripe's blocks, then a
  // tree-aggregate of partials (one pass here).
  SYSDS_SPAN("dist", "tsmm");
  int64_t n = x.Cols();
  Statistics::Get().IncCounter("spark.shuffled_blocks",
                               static_cast<int64_t>(x.Blocks().size()));
  MatrixBlock acc = MatrixBlock::Dense(n, n);
  for (int64_t bi = 0; bi < x.RowBlocks(); ++bi) {
    // Assemble the stripe (all column blocks of row-block bi).
    int64_t rb = bi * x.BlockSize();
    int64_t re = std::min(x.Rows(), rb + x.BlockSize());
    MatrixBlock stripe(re - rb, n, /*sparse=*/false);
    bool has = false;
    for (int64_t bj = 0; bj < x.ColBlocks(); ++bj) {
      const MatrixBlock* blk = x.BlockAt(bi, bj);
      if (blk == nullptr) continue;
      has = true;
      int64_t cb = bj * x.BlockSize();
      for (int64_t r = 0; r < blk->Rows(); ++r) {
        for (int64_t c = 0; c < blk->Cols(); ++c) {
          stripe.DenseRow(r)[cb + c] = blk->Get(r, c);
        }
      }
    }
    if (!has) continue;
    stripe.MarkNnzDirty();
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock part,
                           TransposeSelfMatMult(stripe, true,
                                                DefaultParallelism()));
    SYSDS_ASSIGN_OR_RETURN(
        acc, BinaryMatrixMatrix(BinaryOpCode::kAdd, acc, part, 1));
  }
  return BlockedMatrix::FromMatrix(acc, x.BlockSize());
}

StatusOr<BlockedMatrix> DistBinary(const BlockedMatrix& a,
                                   const BlockedMatrix& b,
                                   const std::string& opcode) {
  if (a.Rows() != b.Rows() || a.Cols() != b.Cols() ||
      a.BlockSize() != b.BlockSize()) {
    return InvalidArgument("distributed binary: incompatible inputs");
  }
  BinaryOpCode code;
  if (opcode == "+") code = BinaryOpCode::kAdd;
  else if (opcode == "-") code = BinaryOpCode::kSub;
  else if (opcode == "*") code = BinaryOpCode::kMul;
  else if (opcode == "/") code = BinaryOpCode::kDiv;
  else return InvalidArgument("distributed binary: unsupported op " + opcode);
  SYSDS_SPAN("dist", "binary");
  // Aligned blocking => co-partitioned join, no shuffle (paper §2.4).
  BlockedMatrix c;
  c.SetShape(a.Rows(), a.Cols(), a.BlockSize());
  for (int64_t bi = 0; bi < a.RowBlocks(); ++bi) {
    for (int64_t bj = 0; bj < a.ColBlocks(); ++bj) {
      const MatrixBlock* ab = a.BlockAt(bi, bj);
      const MatrixBlock* bb = b.BlockAt(bi, bj);
      int64_t rows = std::min(a.Rows() - bi * a.BlockSize(), a.BlockSize());
      int64_t cols = std::min(a.Cols() - bj * a.BlockSize(), a.BlockSize());
      MatrixBlock zero(rows, cols, /*sparse=*/true);
      const MatrixBlock& lhs = ab != nullptr ? *ab : zero;
      const MatrixBlock& rhs = bb != nullptr ? *bb : zero;
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock blk,
                             BinaryMatrixMatrix(code, lhs, rhs, 1));
      if (blk.NonZeros() > 0) {
        c.MutableBlocks().emplace(BlockedMatrix::Key{bi, bj},
                                  std::move(blk));
      }
    }
  }
  return c;
}

StatusOr<MatrixBlock> DistAggSum(const BlockedMatrix& a) {
  double sum = 0.0, corr = 0.0;
  for (const auto& [key, blk] : a.Blocks()) {
    for (int64_t r = 0; r < blk.Rows(); ++r) {
      for (int64_t c = 0; c < blk.Cols(); ++c) {
        double y = blk.Get(r, c) - corr;
        double t = sum + y;
        corr = (t - sum) - y;
        sum = t;
      }
    }
  }
  MatrixBlock out = MatrixBlock::Dense(1, 1, sum);
  return out;
}

}  // namespace sysds
