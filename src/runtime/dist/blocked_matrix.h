#ifndef SYSDS_RUNTIME_DIST_BLOCKED_MATRIX_H_
#define SYSDS_RUNTIME_DIST_BLOCKED_MATRIX_H_

#include <cstdint>
#include <map>
#include <utility>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// The distributed matrix representation of the simulated Spark backend: a
/// collection of squared, fixed-size, independently encoded blocks keyed by
/// block indexes — the in-process analogue of SystemDS's
/// PairRDD<MatrixIndexes, MatrixBlock> (paper §2.4). Blocks are aligned, so
/// binary operations join block-wise without re-partitioning, and matrix
/// multiply joins A's column-block index with B's row-block index.
class BlockedMatrix {
 public:
  using Key = std::pair<int64_t, int64_t>;

  BlockedMatrix() = default;

  /// Splits ("reblocks") a local matrix into aligned blocks.
  static BlockedMatrix FromMatrix(const MatrixBlock& m, int64_t block_size);

  /// Collects all blocks back into a local matrix.
  MatrixBlock ToMatrix() const;

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  int64_t BlockSize() const { return block_size_; }
  int64_t RowBlocks() const {
    return (rows_ + block_size_ - 1) / block_size_;
  }
  int64_t ColBlocks() const {
    return (cols_ + block_size_ - 1) / block_size_;
  }

  const std::map<Key, MatrixBlock>& Blocks() const { return blocks_; }
  std::map<Key, MatrixBlock>& MutableBlocks() { return blocks_; }
  void SetShape(int64_t rows, int64_t cols, int64_t block_size) {
    rows_ = rows;
    cols_ = cols;
    block_size_ = block_size;
  }

  /// The block at (bi, bj), or nullptr if absent (all-zero block).
  const MatrixBlock* BlockAt(int64_t bi, int64_t bj) const;

 private:
  int64_t rows_ = 0, cols_ = 0, block_size_ = 1024;
  std::map<Key, MatrixBlock> blocks_;
};

/// Distributed kernels over blocked matrices, executed by the shared
/// executor pool. Shuffle/compute volumes are recorded in Statistics
/// ("spark.*" counters) so benchmarks can report data movement.
StatusOr<BlockedMatrix> DistMatMult(const BlockedMatrix& a,
                                    const BlockedMatrix& b);
StatusOr<BlockedMatrix> DistTsmmLeft(const BlockedMatrix& x);
StatusOr<BlockedMatrix> DistBinary(const BlockedMatrix& a,
                                   const BlockedMatrix& b,
                                   const std::string& opcode);
StatusOr<MatrixBlock> DistAggSum(const BlockedMatrix& a);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_DIST_BLOCKED_MATRIX_H_
