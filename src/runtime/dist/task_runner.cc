#include "runtime/dist/task_runner.h"

#include "obs/metrics.h"

namespace sysds {
namespace dist_internal {

DistFaultMetrics& Metrics() {
  static DistFaultMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("fault.dist.retries"),
      obs::MetricsRegistry::Get().GetCounter("fault.dist.failed_tasks"),
      obs::MetricsRegistry::Get().GetCounter("fault.dist.speculative"),
      obs::MetricsRegistry::Get().GetCounter("fault.dist.speculative_wins"),
  };
  return m;
}

void BumpRetries() { Metrics().retries->Add(1); }
void BumpFailed() { Metrics().failed_tasks->Add(1); }
void BumpSpeculative() { Metrics().speculative->Add(1); }
void BumpSpeculativeWin() { Metrics().speculative_wins->Add(1); }

}  // namespace dist_internal
}  // namespace sysds
