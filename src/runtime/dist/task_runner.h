#ifndef SYSDS_RUNTIME_DIST_TASK_RUNNER_H_
#define SYSDS_RUNTIME_DIST_TASK_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/faults.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace sysds {

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

/// Scheduling policy of RunRetryableTasks — the simulated Spark scheduler's
/// fault-tolerance knobs (bounded task re-execution + speculative execution
/// of stragglers, mirroring spark.task.maxFailures / spark.speculation).
struct TaskRunnerOptions {
  /// Attempts per task before the stage fails (crash injection and compute
  /// errors both consume attempts).
  int max_attempts = 3;
  /// Launch a duplicate attempt for tasks running far beyond their siblings.
  bool speculation = true;
  /// A task is a straggler once it runs longer than
  /// max(straggler_floor, straggler_factor * p95 of completed durations),
  /// evaluated only after half the stage completed.
  double straggler_factor = 1.5;
  std::chrono::milliseconds straggler_floor{20};
  /// Monitor poll interval while the stage is in flight.
  std::chrono::milliseconds poll{2};
};

namespace dist_internal {
struct DistFaultMetrics {
  obs::Counter* retries;           // fault.dist.retries
  obs::Counter* failed_tasks;      // fault.dist.failed_tasks
  obs::Counter* speculative;       // fault.dist.speculative
  obs::Counter* speculative_wins;  // fault.dist.speculative_wins
};
DistFaultMetrics& Metrics();
void BumpRetries();
void BumpFailed();
void BumpSpeculative();
void BumpSpeculativeWin();
}  // namespace dist_internal

/// Runs `num_tasks` independent block tasks on the shared executor pool with
/// bounded re-execution and straggler speculation. `compute(t)` produces the
/// task's result (it must be a pure function of `t` so re-execution and
/// duplicates are safe); `commit(t, result)` stores it. Each task commits
/// exactly once even when a speculative duplicate races the original, so
/// callers can commit into pre-sized slot vectors and accumulate serially
/// afterwards for deterministic (bit-identical) results.
///
/// Chaos mode: each attempt probes FaultLayer::kDist with the task index as
/// id. kDelay injects a straggler (sleep), kCrash loses the attempt (the
/// simulated executor died; the task is re-executed, consuming an attempt).
/// Returns the first permanent task failure, after all in-flight attempts
/// drained. A task fails permanently only when its *last* in-flight attempt
/// ends uncommitted: an original that exhausts its budget while a
/// speculative duplicate is still running defers the verdict to the
/// duplicate.
///
/// When called from a pool worker (parfor bodies execute dist instructions
/// on pool threads) — or on a zero-worker pool — the monitor performs a
/// helping join (same discipline as ThreadPool::ParallelFor): it drains
/// pending pool tasks on the calling thread instead of sleeping on the
/// saturated pool, so nested stages keep every core busy and cannot
/// deadlock. Speculation stays active either way.
template <typename Compute, typename Commit>
Status RunRetryableTasks(int64_t num_tasks, Compute&& compute, Commit&& commit,
                         const TaskRunnerOptions& options = {}) {
  if (num_tasks <= 0) return Status::Ok();
  struct TaskState {
    std::atomic<bool> committed{false};
    std::atomic<int64_t> started_ns{-1};
    std::atomic<bool> speculated{false};
    // Guarded by mu.
    int inflight = 1;     // executions running or queued (original + dup)
    bool failed = false;  // permanent failure already recorded
    Status last_error;
  };
  std::vector<TaskState> states(static_cast<size_t>(num_tasks));
  std::mutex mu;
  std::condition_variable cv;
  int64_t outstanding = 0;  // in-flight executions (originals + duplicates)
  Status first_error;
  std::vector<double> durations_ms;  // completed-task runtimes, for p95

  auto now_ns = [] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  // One execution of task t: the original runs the full retry loop, a
  // speculative duplicate gets a single attempt.
  auto run = [&](int64_t t, bool speculative) {
    FaultInjector& inj = FaultInjector::Get();
    TaskState& st = states[static_cast<size_t>(t)];
    int attempts = speculative ? 1 : options.max_attempts;
    Status last;
    for (int attempt = 0;
         attempt < attempts && !st.committed.load(std::memory_order_acquire);
         ++attempt) {
      if (attempt > 0) dist_internal::BumpRetries();
      int64_t t0 = now_ns();
      int64_t expected = -1;
      st.started_ns.compare_exchange_strong(expected, t0,
                                            std::memory_order_relaxed);
      if (inj.enabled()) {
        if (inj.ShouldInject(FaultLayer::kDist, static_cast<int>(t),
                             FaultKind::kDelay)) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(inj.DelayMs()));
        }
        if (inj.ShouldInject(FaultLayer::kDist, static_cast<int>(t),
                             FaultKind::kCrash)) {
          last = UnavailableError("dist task " + std::to_string(t) +
                                  ": executor lost, re-executing");
          continue;
        }
      }
      auto result = compute(t);
      if (!result.ok()) {
        last = result.status();
        continue;
      }
      if (!st.committed.exchange(true, std::memory_order_acq_rel)) {
        commit(t, std::move(*result));
        if (speculative) dist_internal::BumpSpeculativeWin();
        double ms = static_cast<double>(now_ns() - t0) * 1e-6;
        std::lock_guard<std::mutex> lock(mu);
        durations_ms.push_back(ms);
      }
      last = Status::Ok();
      break;
    }
    std::lock_guard<std::mutex> lock(mu);
    if (!last.ok()) st.last_error = last;
    --st.inflight;
    // Permanent failure is decided by the task's last in-flight attempt: an
    // exhausted original with a speculative duplicate still running leaves
    // the verdict to the duplicate (which may yet commit).
    if (st.inflight == 0 && !st.failed && !st.last_error.ok() &&
        !st.committed.load(std::memory_order_acquire)) {
      st.failed = true;
      dist_internal::BumpFailed();
      if (first_error.ok()) first_error = st.last_error;
    }
    --outstanding;
    cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(mu);
    outstanding = num_tasks;
  }
  ThreadPool& pool = ThreadPool::Global();
  for (int64_t t = 0; t < num_tasks; ++t) {
    pool.Submit([&run, t] { run(t, /*speculative=*/false); });
  }

  // Wait for the stage, acting as the speculation monitor while we do. A
  // caller that is itself a pool worker — or any caller on a zero-worker
  // pool — helps: it runs pending pool tasks (this stage's or anyone
  // else's) instead of sleeping on the saturated pool.
  const bool help = ThreadPool::InCurrentWorker() || pool.num_threads() == 0;
  std::unique_lock<std::mutex> lock(mu);
  int64_t last_monitor_ns = now_ns();
  for (;;) {
    if (outstanding == 0) break;
    if (help) {
      bool ran;
      lock.unlock();
      ran = pool.TryRunPendingTask();
      lock.lock();
      if (!ran &&
          cv.wait_for(lock, options.poll, [&] { return outstanding == 0; })) {
        break;
      }
    } else if (cv.wait_for(lock, options.poll,
                           [&] { return outstanding == 0; })) {
      break;
    }
    // Throttle the straggler scan to the poll interval — a helping caller
    // can iterate far faster than the poll clock.
    int64_t scan_now = now_ns();
    if (scan_now - last_monitor_ns < options.poll.count() * 1000000) continue;
    last_monitor_ns = scan_now;
    if (!options.speculation ||
        static_cast<int64_t>(durations_ms.size()) * 2 < num_tasks) {
      continue;
    }
    std::vector<double> sorted = durations_ms;
    std::sort(sorted.begin(), sorted.end());
    double p95 = sorted[static_cast<size_t>(
        0.95 * static_cast<double>(sorted.size() - 1))];
    double threshold_ms =
        std::max(static_cast<double>(options.straggler_floor.count()),
                 options.straggler_factor * p95);
    std::vector<int64_t> stragglers;
    int64_t now = now_ns();
    for (int64_t t = 0; t < num_tasks; ++t) {
      TaskState& st = states[static_cast<size_t>(t)];
      int64_t started = st.started_ns.load(std::memory_order_relaxed);
      if (st.committed.load(std::memory_order_acquire) || started < 0 ||
          st.failed) {
        continue;
      }
      if (static_cast<double>(now - started) * 1e-6 <= threshold_ms) continue;
      if (st.speculated.exchange(true, std::memory_order_relaxed)) continue;
      ++st.inflight;
      stragglers.push_back(t);
    }
    outstanding += static_cast<int64_t>(stragglers.size());
    lock.unlock();
    for (int64_t t : stragglers) {
      dist_internal::BumpSpeculative();
      pool.Submit([&run, t] { run(t, /*speculative=*/true); });
    }
    lock.lock();
  }
  return first_error;
}

}  // namespace sysds

#endif  // SYSDS_RUNTIME_DIST_TASK_RUNNER_H_
