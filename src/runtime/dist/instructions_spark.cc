#include "runtime/dist/instructions_spark.h"

#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/dist/blocked_matrix.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {
int64_t BlockSizeOf(ExecutionContext* ec) { return ec->Config().block_size; }
}  // namespace

Status SparkMatMultInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m1, ec->GetMatrix(inputs()[0]));
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m2, ec->GetMatrix(inputs()[1]));
  int64_t bs = BlockSizeOf(ec);
  SYSDS_ACQUIRE_READ(a_blk, m1);
  SYSDS_ACQUIRE_READ_CLEANUP(b_blk, m2, m1->Release());
  BlockedMatrix a = BlockedMatrix::FromMatrix(a_blk, bs);
  BlockedMatrix b = BlockedMatrix::FromMatrix(b_blk, bs);
  m1->Release();
  m2->Release();
  SYSDS_ASSIGN_OR_RETURN(BlockedMatrix c, DistMatMult(a, b));
  ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(c.ToMatrix()));
  return Status::Ok();
}

Status SparkTsmmInstr::Execute(ExecutionContext* ec) {
  if (!left_) {
    return RuntimeError("sp_tsmm: only left tsmm is distributed");
  }
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(x_blk, m);
  BlockedMatrix x = BlockedMatrix::FromMatrix(x_blk, BlockSizeOf(ec));
  m->Release();
  SYSDS_ASSIGN_OR_RETURN(BlockedMatrix c, DistTsmmLeft(x));
  ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(c.ToMatrix()));
  return Status::Ok();
}

Status SparkBinaryInstr::Execute(ExecutionContext* ec) {
  // Only matrix-matrix same-shape ops run distributed; other shapes fall
  // back to the CP kernel (SystemDS compiles map-side broadcasts likewise).
  const Operand& in1 = inputs()[0];
  const Operand& in2 = inputs()[1];
  DataPtr d1 = in1.is_literal ? nullptr : ec->Vars().GetOrNull(in1.name);
  DataPtr d2 = in2.is_literal ? nullptr : ec->Vars().GetOrNull(in2.name);
  auto* m1 = dynamic_cast<MatrixObject*>(d1.get());
  auto* m2 = dynamic_cast<MatrixObject*>(d2.get());
  if (m1 != nullptr && m2 != nullptr && m1->Rows() == m2->Rows() &&
      m1->Cols() == m2->Cols() &&
      (base_opcode_ == "+" || base_opcode_ == "-" || base_opcode_ == "*" ||
       base_opcode_ == "/")) {
    int64_t bs = BlockSizeOf(ec);
    SYSDS_ACQUIRE_READ(a_blk, m1);
    SYSDS_ACQUIRE_READ_CLEANUP(b_blk, m2, m1->Release());
    BlockedMatrix a = BlockedMatrix::FromMatrix(a_blk, bs);
    BlockedMatrix b = BlockedMatrix::FromMatrix(b_blk, bs);
    m1->Release();
    m2->Release();
    SYSDS_ASSIGN_OR_RETURN(BlockedMatrix c, DistBinary(a, b, base_opcode_));
    ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(c.ToMatrix()));
    return Status::Ok();
  }
  BinaryInstr fallback(base_opcode_);
  for (const Operand& in : inputs()) fallback.AddInput(in);
  for (const Operand& out : outputs()) fallback.AddOutput(out);
  return fallback.Execute(ec);
}

Status SparkAggUnaryInstr::Execute(ExecutionContext* ec) {
  if (base_opcode_ == "uasum") {
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
    SYSDS_ACQUIRE_READ(a_blk, m);
    BlockedMatrix a = BlockedMatrix::FromMatrix(a_blk, BlockSizeOf(ec));
    m->Release();
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock s, DistAggSum(a));
    ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(s.Get(0, 0)));
    return Status::Ok();
  }
  AggUnaryInstr fallback(base_opcode_);
  for (const Operand& in : inputs()) fallback.AddInput(in);
  for (const Operand& out : outputs()) fallback.AddOutput(out);
  return fallback.Execute(ec);
}

}  // namespace sysds
