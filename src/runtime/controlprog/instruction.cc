#include "runtime/controlprog/instruction.h"

#include <sstream>

namespace sysds {

Operand Operand::Var(std::string name, DataType dt, ValueType vt) {
  Operand op;
  op.name = std::move(name);
  op.dt = dt;
  op.vt = vt;
  return op;
}

Operand Operand::Literal(const LitValue& v) {
  Operand op;
  op.is_literal = true;
  op.lit = v;
  op.vt = v.vt;
  op.dt = DataType::kScalar;
  return op;
}

std::string Operand::ToString() const {
  std::ostringstream os;
  if (is_literal) {
    os << lit.AsString() << "\xc2\xb7LITERAL\xc2\xb7" << ValueTypeName(vt);
  } else {
    os << name << "\xc2\xb7" << DataTypeName(dt) << "\xc2\xb7"
       << ValueTypeName(vt);
  }
  return os.str();
}

std::string Instruction::ToString() const {
  std::ostringstream os;
  os << ExecTypeName(exec_type()) << "\xc2\xb0" << opcode_;
  for (const Operand& in : inputs_) os << "\xc2\xb0" << in.ToString();
  for (const Operand& out : outputs_) os << "\xc2\xb0" << out.ToString();
  return os.str();
}

}  // namespace sysds
