#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/io.h"
#include "lineage/lineage.h"
#include "runtime/ps/param_server.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/controlprog/program.h"
#include "runtime/frame/transform.h"
#include "runtime/matrix/lib_reorg.h"

namespace sysds {

Status CastInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(inputs()[0]));
  if (op == "as.scalar" || op == "as.double") {
    if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
      if (m->Rows() != 1 || m->Cols() != 1) {
        return RuntimeError("as.scalar: matrix is " +
                            std::to_string(m->Rows()) + "x" +
                            std::to_string(m->Cols()) + ", expected 1x1");
      }
      SYSDS_ACQUIRE_READ(b, m);
      double v = b.Get(0, 0);
      m->Release();
      ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(v));
      return Status::Ok();
    }
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op));
    ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(s->AsDouble()));
    return Status::Ok();
  }
  if (op == "as.integer") {
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op));
    ec->SetOutput(outputs()[0], ScalarObject::MakeInt(s->AsInt()));
    return Status::Ok();
  }
  if (op == "as.logical") {
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op));
    ec->SetOutput(outputs()[0], ScalarObject::MakeBool(s->AsBool()));
    return Status::Ok();
  }
  if (op == "as.matrix") {
    if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock m, f->Frame().ToMatrix());
      ec->SetOutput(outputs()[0],
                    std::make_shared<MatrixObject>(std::move(m)));
      return Status::Ok();
    }
    if (auto* s = dynamic_cast<ScalarObject*>(d.get())) {
      MatrixBlock m = MatrixBlock::Dense(1, 1, s->AsDouble());
      ec->SetOutput(outputs()[0],
                    std::make_shared<MatrixObject>(std::move(m)));
      return Status::Ok();
    }
    ec->SetOutput(outputs()[0], d);
    return Status::Ok();
  }
  if (op == "as.frame") {
    if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
      SYSDS_ACQUIRE_READ(b, m);
      FrameBlock f = FrameBlock::FromMatrix(b);
      m->Release();
      ec->SetOutput(outputs()[0],
                    std::make_shared<FrameObject>(std::move(f)));
      return Status::Ok();
    }
    ec->SetOutput(outputs()[0], d);
    return Status::Ok();
  }
  return RuntimeError("unknown cast '" + op + "'");
}

StatusOr<const Operand*> ParamBuiltinInstr::Param(
    const std::string& name) const {
  for (size_t i = 0; i < param_names_.size() && i < inputs().size(); ++i) {
    if (param_names_[i] == name) return &inputs()[i];
  }
  return NotFound("parameter '" + name + "' missing for " + opcode());
}

bool ParamBuiltinInstr::IsReusable() const {
  return opcode() == "replace" || opcode() == "removeEmpty" ||
         opcode() == "order" || opcode() == "table";
}

namespace {

// Encode options for transformencode/transformapply: the compiler-planned
// output format (falling back to the session config for instructions built
// outside the compiler), the configured transform parallelism, and the
// compression planner's min-ratio gate for kAuto pricing.
EncodeOptions TransformEncodeOptions(ExecutionContext* ec,
                                     TransformOutputFormat planned) {
  const DMLConfig& cfg = ec->Config();
  EncodeOptions opts;
  opts.output =
      planned != TransformOutputFormat::kDense ? planned : cfg.transform_output;
  opts.num_threads = cfg.transform_num_threads > 0 ? cfg.transform_num_threads
                                                   : ec->NumThreads();
  opts.min_ratio = cfg.compression_min_ratio;
  return opts;
}

// Binds an encode result to a variable: compressed outputs become
// compressed matrix objects directly (no dense intermediate), so downstream
// compressed kernels run on them as if the compression rewrite had fired.
void SetEncodedOutput(ExecutionContext* ec, const Operand& out,
                      EncodedOutput x) {
  if (x.IsCompressed()) {
    ec->SetOutput(out,
                  std::make_shared<MatrixObject>(std::move(x.Compressed())));
  } else {
    ec->SetOutput(out, std::make_shared<MatrixObject>(std::move(x.Dense())));
  }
}

}  // namespace

Status ParamBuiltinInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  if (op == "replace") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* pattern, Param("pattern"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* repl, Param("replacement"));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(*target));
    SYSDS_ASSIGN_OR_RETURN(double p, ec->GetDouble(*pattern));
    SYSDS_ASSIGN_OR_RETURN(double r, ec->GetDouble(*repl));
    SYSDS_ACQUIRE_READ(a, m);
    MatrixBlock result = ReplaceValues(a, p, r);
    m->Release();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(result)));
    return Status::Ok();
  }
  if (op == "removeEmpty") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* margin, Param("margin"));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(*target));
    SYSDS_ASSIGN_OR_RETURN(std::string mg, ec->GetString(*margin));
    SYSDS_ACQUIRE_READ(a, m);
    MatrixBlock result = RemoveEmpty(a, mg == "rows");
    m->Release();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(result)));
    return Status::Ok();
  }
  if (op == "quantile") {
    // quantile(column vector, p) with linear interpolation.
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* pop, Param("p"));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(*target));
    SYSDS_ASSIGN_OR_RETURN(double p, ec->GetDouble(*pop));
    if (p < 0.0 || p > 1.0) {
      m->Release();
      return RuntimeError("quantile: p must be in [0,1]");
    }
    SYSDS_ACQUIRE_READ(a, m);
    if (a.Cols() != 1 || a.Rows() == 0) {
      m->Release();
      return RuntimeError("quantile requires a non-empty column vector");
    }
    std::vector<double> vals(static_cast<size_t>(a.Rows()));
    for (int64_t r = 0; r < a.Rows(); ++r) vals[static_cast<size_t>(r)] = a.Get(r, 0);
    m->Release();
    std::sort(vals.begin(), vals.end());
    double pos = p * (static_cast<double>(vals.size()) - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(vals.size() - 1, lo + 1);
    double frac = pos - static_cast<double>(lo);
    double q = vals[lo] * (1.0 - frac) + vals[hi] * frac;
    ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(q));
    return Status::Ok();
  }
  if (op == "paramserv") {
    // Mini-batch training on the parameter server backend (§2.3(4)).
    SYSDS_ASSIGN_OR_RETURN(const Operand* xop, Param("features"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* yop, Param("labels"));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * xm, ec->GetMatrix(*xop));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * ym, ec->GetMatrix(*yop));
    PsConfig config;
    auto int_param = [&](const char* name, int64_t* out) -> Status {
      auto p = Param(name);
      if (p.ok()) {
        SYSDS_ASSIGN_OR_RETURN(*out, ec->GetInt(**p));
      }
      return Status::Ok();
    };
    int64_t workers = config.num_workers, epochs = config.epochs;
    SYSDS_RETURN_IF_ERROR(int_param("workers", &workers));
    SYSDS_RETURN_IF_ERROR(int_param("epochs", &epochs));
    SYSDS_RETURN_IF_ERROR(int_param("batchsize", &config.batch_size));
    config.num_workers = static_cast<int>(workers);
    config.epochs = static_cast<int>(epochs);
    if (auto p = Param("lr"); p.ok()) {
      SYSDS_ASSIGN_OR_RETURN(config.learning_rate, ec->GetDouble(**p));
    }
    if (auto p = Param("mode"); p.ok()) {
      SYSDS_ASSIGN_OR_RETURN(std::string mode, ec->GetString(**p));
      config.mode = mode == "ASP" ? PsUpdateMode::kASP : PsUpdateMode::kBSP;
    }
    if (auto p = Param("objective"); p.ok()) {
      SYSDS_ASSIGN_OR_RETURN(std::string obj, ec->GetString(**p));
      config.objective = obj == "logistic"
                             ? PsObjective::kLogisticRegression
                             : PsObjective::kLinearRegression;
    }
    SYSDS_ACQUIRE_READ(x, xm);
    SYSDS_ACQUIRE_READ_CLEANUP(y, ym, xm->Release());
    auto result = PsTrain(x, y, config);
    xm->Release();
    ym->Release();
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(
                                    std::move(result->weights)));
    return Status::Ok();
  }
  if (op == "toString") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(*target));
    std::string s;
    if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
      SYSDS_ACQUIRE_READ(b, m);
      s = b.ToString(100, 100);
      m->Release();
    } else {
      s = d->DebugString();
    }
    ec->SetOutput(outputs()[0], ScalarObject::MakeString(s));
    return Status::Ok();
  }
  if (op == "transformencode") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* spec, Param("spec"));
    SYSDS_ASSIGN_OR_RETURN(FrameObject * f, ec->GetFrame(*target));
    SYSDS_ASSIGN_OR_RETURN(std::string spec_json, ec->GetString(*spec));
    SYSDS_ASSIGN_OR_RETURN(TransformSpec tspec,
                           ParseTransformSpec(spec_json, f->Frame()));
    EncodeOptions opts = TransformEncodeOptions(ec, planned_output);
    SYSDS_ASSIGN_OR_RETURN(
        MultiColumnEncoder enc,
        MultiColumnEncoder::Fit(f->Frame(), tspec, opts.num_threads));
    SYSDS_ASSIGN_OR_RETURN(EncodedOutput x, enc.Apply(f->Frame(), opts));
    SetEncodedOutput(ec, outputs()[0], std::move(x));
    ec->SetOutput(outputs()[1],
                  std::make_shared<FrameObject>(enc.MetaFrame()));
    return Status::Ok();
  }
  if (op == "transformapply") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* spec, Param("spec"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* meta, Param("meta"));
    SYSDS_ASSIGN_OR_RETURN(FrameObject * f, ec->GetFrame(*target));
    SYSDS_ASSIGN_OR_RETURN(std::string spec_json, ec->GetString(*spec));
    SYSDS_ASSIGN_OR_RETURN(FrameObject * mf, ec->GetFrame(*meta));
    SYSDS_ASSIGN_OR_RETURN(TransformSpec tspec,
                           ParseTransformSpec(spec_json, f->Frame()));
    SYSDS_ASSIGN_OR_RETURN(
        MultiColumnEncoder enc,
        MultiColumnEncoder::FromMeta(tspec, mf->Frame(), f->Frame().Cols()));
    EncodeOptions opts = TransformEncodeOptions(ec, planned_output);
    SYSDS_ASSIGN_OR_RETURN(EncodedOutput x, enc.Apply(f->Frame(), opts));
    SetEncodedOutput(ec, outputs()[0], std::move(x));
    return Status::Ok();
  }
  if (op == "transformdecode") {
    SYSDS_ASSIGN_OR_RETURN(const Operand* target, Param("target"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* spec, Param("spec"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* meta, Param("meta"));
    SYSDS_ASSIGN_OR_RETURN(const Operand* like, Param("frame"));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(*target));
    SYSDS_ASSIGN_OR_RETURN(std::string spec_json, ec->GetString(*spec));
    SYSDS_ASSIGN_OR_RETURN(FrameObject * mf, ec->GetFrame(*meta));
    SYSDS_ASSIGN_OR_RETURN(FrameObject * lf, ec->GetFrame(*like));
    SYSDS_ASSIGN_OR_RETURN(TransformSpec tspec,
                           ParseTransformSpec(spec_json, lf->Frame()));
    SYSDS_ASSIGN_OR_RETURN(
        MultiColumnEncoder enc,
        MultiColumnEncoder::FromMeta(tspec, mf->Frame(), lf->Frame().Cols()));
    SYSDS_ACQUIRE_READ(b, m);
    auto decoded =
        enc.Decode(b, lf->Frame(), TransformEncodeOptions(ec, planned_output)
                                       .num_threads);
    m->Release();
    if (!decoded.ok()) return decoded.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<FrameObject>(std::move(*decoded)));
    return Status::Ok();
  }
  return RuntimeError("unknown parameterized builtin '" + op + "'");
}

Status ReadInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(std::string path, ec->GetString(inputs()[0]));
  SYSDS_ASSIGN_OR_RETURN(FormatDescriptor desc,
                         FormatDescriptor::FromFormatName(format));
  desc.header = header;
  desc.delimiter = sep;
  desc.num_threads = ec->NumThreads();
  if (data_type == "frame") {
    // Frames are csv text regardless of the matrix format name.
    FormatDescriptor fdesc =
        FormatDescriptor::Csv(sep, header, ec->NumThreads());
    SYSDS_ASSIGN_OR_RETURN(FrameBlock f, io::ReadFrame(path, fdesc));
    ec->SetOutput(outputs()[0], std::make_shared<FrameObject>(std::move(f)));
    return Status::Ok();
  }
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock m, io::Read(path, desc));
  ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(std::move(m)));
  return Status::Ok();
}

Status WriteInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(inputs()[0]));
  SYSDS_ASSIGN_OR_RETURN(std::string path, ec->GetString(inputs()[1]));
  SYSDS_ASSIGN_OR_RETURN(FormatDescriptor desc,
                         FormatDescriptor::FromFormatName(format));
  desc.header = header;
  desc.delimiter = sep;
  if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
    SYSDS_ACQUIRE_READ(b, m);
    Status s = io::Write(b, path, desc);
    m->Release();
    return s;
  }
  if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
    return io::Write(f->Frame(), path, FormatDescriptor::Csv(sep, header));
  }
  if (auto* s = dynamic_cast<ScalarObject*>(d.get())) {
    std::ofstream out(path);
    if (!out) return IoError("cannot open '" + path + "'");
    out << s->AsString() << "\n";
    return Status::Ok();
  }
  return RuntimeError("write: unsupported data type");
}

Status VariableInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  if (op == "rmvar") {
    for (const Operand& in : inputs()) {
      ec->Vars().Remove(in.name);
      if (ec->TracingEnabled()) ec->Lineage()->Remove(in.name);
    }
    return Status::Ok();
  }
  if (op == "cpvar" || op == "assignvar") {
    SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(inputs()[0]));
    ec->SetOutput(outputs()[0], std::move(d));
    return Status::Ok();
  }
  return RuntimeError("unknown variable op '" + op + "'");
}

Status PrintInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(inputs()[0]));
  if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
    SYSDS_ACQUIRE_READ(b, m);
    ec->Out() << b.ToString() << std::endl;
    m->Release();
  } else if (auto* s = dynamic_cast<ScalarObject*>(d.get())) {
    ec->Out() << s->AsString() << std::endl;
  } else {
    ec->Out() << d->DebugString() << std::endl;
  }
  return Status::Ok();
}

Status StopInstr::Execute(ExecutionContext* ec) {
  std::string msg = "stop";
  if (!inputs().empty()) {
    auto s = ec->GetString(inputs()[0]);
    if (s.ok()) msg = *s;
  }
  return RuntimeError(msg);
}

Status FunctionCallInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(const FunctionBlock* fn,
                         ec->GetProgram()->GetFunction(function_name_));
  return fn->Execute(ec, inputs(), arg_names_, outputs());
}

}  // namespace sysds
