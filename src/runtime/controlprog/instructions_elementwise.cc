#include <cmath>

#include "runtime/compress/compress_metrics.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {

StatusOr<BinaryOpCode> ParseBinaryOp(const std::string& op) {
  BinaryOpCode code;
  if (!ParseBinaryOpcode(op, &code)) {
    return InvalidArgument("unknown binary opcode '" + op + "'");
  }
  return code;
}

StatusOr<UnaryOpCode> ParseUnaryOp(const std::string& op) {
  UnaryOpCode code;
  if (!ParseUnaryOpcode(op, &code)) {
    return InvalidArgument("unknown unary opcode '" + op + "'");
  }
  return code;
}

bool IsScalarOperand(const Operand& op, ExecutionContext* ec) {
  if (op.is_literal) return true;
  DataPtr d = ec->Vars().GetOrNull(op.name);
  return d != nullptr && d->GetDataType() == DataType::kScalar;
}

// Scalar result typing: comparisons/logic -> bool; int x int stays int for
// closed ops; everything else double.
DataPtr MakeScalarResult(BinaryOpCode code, const ScalarObject& a,
                         const ScalarObject& b, double result) {
  switch (code) {
    case BinaryOpCode::kEqual:
    case BinaryOpCode::kNotEqual:
    case BinaryOpCode::kLess:
    case BinaryOpCode::kLessEqual:
    case BinaryOpCode::kGreater:
    case BinaryOpCode::kGreaterEqual:
    case BinaryOpCode::kAnd:
    case BinaryOpCode::kOr:
    case BinaryOpCode::kXor:
      return ScalarObject::MakeBool(result != 0.0);
    case BinaryOpCode::kAdd:
    case BinaryOpCode::kSub:
    case BinaryOpCode::kMul:
    case BinaryOpCode::kMod:
    case BinaryOpCode::kIntDiv:
    case BinaryOpCode::kMin:
    case BinaryOpCode::kMax:
      if (a.GetValueType() == ValueType::kInt64 &&
          b.GetValueType() == ValueType::kInt64 &&
          result == std::floor(result)) {
        return ScalarObject::MakeInt(static_cast<int64_t>(result));
      }
      return ScalarObject::MakeDouble(result);
    default:
      return ScalarObject::MakeDouble(result);
  }
}

}  // namespace

bool BinaryInstr::IsReusable() const {
  return !outputs().empty() && outputs()[0].dt == DataType::kMatrix;
}

Status BinaryInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(BinaryOpCode code, ParseBinaryOp(opcode()));
  const Operand& in1 = inputs()[0];
  const Operand& in2 = inputs()[1];
  bool s1 = IsScalarOperand(in1, ec), s2 = IsScalarOperand(in2, ec);

  if (s1 && s2) {
    SYSDS_ASSIGN_OR_RETURN(DataPtr d1, ec->Resolve(in1));
    SYSDS_ASSIGN_OR_RETURN(DataPtr d2, ec->Resolve(in2));
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * a, AsScalar(d1, "binary lhs"));
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * b, AsScalar(d2, "binary rhs"));
    // String handling: concatenation and comparisons.
    if (a->GetValueType() == ValueType::kString ||
        b->GetValueType() == ValueType::kString) {
      switch (code) {
        case BinaryOpCode::kAdd:
          ec->SetOutput(outputs()[0],
                        ScalarObject::MakeString(a->AsString() + b->AsString()));
          return Status::Ok();
        case BinaryOpCode::kEqual:
          ec->SetOutput(outputs()[0], ScalarObject::MakeBool(
                                          a->AsString() == b->AsString()));
          return Status::Ok();
        case BinaryOpCode::kNotEqual:
          ec->SetOutput(outputs()[0], ScalarObject::MakeBool(
                                          a->AsString() != b->AsString()));
          return Status::Ok();
        default:
          return RuntimeError("invalid string operation '" + opcode() + "'");
      }
    }
    double r = ApplyBinary(code, a->AsDouble(), b->AsDouble());
    ec->SetOutput(outputs()[0], MakeScalarResult(code, *a, *b, r));
    return Status::Ok();
  }

  if (!s1 && !s2) {
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m1, ec->GetMatrix(in1));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m2, ec->GetMatrix(in2));
    SYSDS_ACQUIRE_READ(a, m1);
    SYSDS_ACQUIRE_READ_CLEANUP(b, m2, m1->Release());
    auto result = BinaryMatrixMatrix(code, a, b, ec->NumThreads());
    m1->Release();
    m2->Release();
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }

  // Matrix-scalar (either side).
  const Operand& mop = s1 ? in2 : in1;
  const Operand& sop = s1 ? in1 : in2;
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(mop));
  SYSDS_ASSIGN_OR_RETURN(double scalar, ec->GetDouble(sop));
  SYSDS_ACQUIRE_READ(a, m);
  MatrixBlock result =
      BinaryMatrixScalar(code, a, scalar, /*scalar_left=*/s1, ec->NumThreads());
  m->Release();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(result)));
  return Status::Ok();
}

bool UnaryInstr::IsReusable() const {
  return !outputs().empty() && outputs()[0].dt == DataType::kMatrix;
}

Status UnaryInstr::Execute(ExecutionContext* ec) {
  const Operand& in = inputs()[0];
  const std::string& op = opcode();

  // Metadata ops on matrices/frames.
  if (op == "nrow" || op == "ncol" || op == "length") {
    SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(in));
    int64_t rows = 0, cols = 0;
    if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
      rows = m->Rows();
      cols = m->Cols();
    } else if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
      rows = f->Frame().Rows();
      cols = f->Frame().Cols();
    } else if (auto* l = dynamic_cast<ListObject*>(d.get())) {
      rows = l->Size();
      cols = 1;
    } else {
      return RuntimeError(op + ": expected matrix/frame/list input");
    }
    int64_t v = op == "nrow" ? rows : (op == "ncol" ? cols : rows * cols);
    ec->SetOutput(outputs()[0], ScalarObject::MakeInt(v));
    return Status::Ok();
  }

  SYSDS_ASSIGN_OR_RETURN(UnaryOpCode code, ParseUnaryOp(op));
  if (IsScalarOperand(in, ec)) {
    SYSDS_ASSIGN_OR_RETURN(double v, ec->GetDouble(in));
    double r = ApplyUnary(code, v);
    if (code == UnaryOpCode::kNot) {
      ec->SetOutput(outputs()[0], ScalarObject::MakeBool(r != 0.0));
    } else if ((code == UnaryOpCode::kNegate ||
                code == UnaryOpCode::kAbs ||
                code == UnaryOpCode::kSign ||
                code == UnaryOpCode::kRound ||
                code == UnaryOpCode::kFloor ||
                code == UnaryOpCode::kCeil) &&
               !in.is_literal && r == std::floor(r)) {
      SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Resolve(in));
      auto* s = static_cast<ScalarObject*>(d.get());
      if (s->GetValueType() == ValueType::kInt64) {
        ec->SetOutput(outputs()[0],
                      ScalarObject::MakeInt(static_cast<int64_t>(r)));
        return Status::Ok();
      }
      ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(r));
    } else {
      ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(r));
    }
    return Status::Ok();
  }
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(in));
  SYSDS_ACQUIRE_READ(a, m);
  MatrixBlock result = UnaryMatrix(code, a, ec->NumThreads());
  m->Release();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(result)));
  return Status::Ok();
}

bool AggUnaryInstr::IsReusable() const {
  return !outputs().empty() && outputs()[0].dt == DataType::kMatrix;
}

Status AggUnaryInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  AggDirection dir;
  AggOpCode agg;
  if (!ParseAggOpcode(op, &agg, &dir)) {
    return RuntimeError("unknown aggregate '" + op + "'");
  }

  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  // Compressed dispatch (§3.4): full and column aggregates of the
  // dictionary-friendly subset run on per-code counts; anything else
  // (row aggregates, var/sd, ...) decompresses and retries.
  if (m->HasCompressed() && dir != AggDirection::kRow) {
    auto comp = m->AcquireCompressed();
    if (comp.ok()) {
      if (dir == AggDirection::kAll) {
        auto r = (*comp)->Aggregate(agg);
        m->Release();
        if (r.ok()) {
          compress_metrics::DispatchHits()->Add(1);
          if (agg == AggOpCode::kNnz) {
            ec->SetOutput(outputs()[0],
                          ScalarObject::MakeInt(static_cast<int64_t>(*r)));
          } else {
            ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(*r));
          }
          return Status::Ok();
        }
        if (r.status().code() != StatusCode::kUnimplemented) {
          return r.status();
        }
      } else {
        auto r = (*comp)->AggregateCols(agg);
        m->Release();
        if (r.ok()) {
          compress_metrics::DispatchHits()->Add(1);
          ec->SetOutput(outputs()[0],
                        std::make_shared<MatrixObject>(std::move(*r)));
          return Status::Ok();
        }
        if (r.status().code() != StatusCode::kUnimplemented) {
          return r.status();
        }
      }
      compress_metrics::DispatchFallbacks()->Add(1);
    }
  }
  SYSDS_ACQUIRE_READ(a, m);
  if (dir == AggDirection::kAll) {
    auto r = AggregateAll(agg, a, ec->NumThreads());
    m->Release();
    if (!r.ok()) return r.status();
    if (agg == AggOpCode::kNnz) {
      ec->SetOutput(outputs()[0],
                    ScalarObject::MakeInt(static_cast<int64_t>(*r)));
    } else {
      ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(*r));
    }
    return Status::Ok();
  }
  auto r = AggregateRowCol(agg, dir, a, ec->NumThreads());
  m->Release();
  if (!r.ok()) return r.status();
  ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(std::move(*r)));
  return Status::Ok();
}

Status CumAggInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(a, m);
  MatrixBlock result;
  if (opcode() == "cumsum") result = CumSum(a);
  else if (opcode() == "cumprod") result = CumProd(a);
  else if (opcode() == "cummin") result = CumMin(a);
  else if (opcode() == "cummax") result = CumMax(a);
  else {
    m->Release();
    return RuntimeError("unknown cumulative aggregate '" + opcode() + "'");
  }
  m->Release();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(result)));
  return Status::Ok();
}

}  // namespace sysds
