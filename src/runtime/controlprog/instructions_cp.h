#ifndef SYSDS_RUNTIME_CONTROLPROG_INSTRUCTIONS_CP_H_
#define SYSDS_RUNTIME_CONTROLPROG_INSTRUCTIONS_CP_H_

#include <map>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "runtime/controlprog/instruction.h"
#include "runtime/matrix/lib_fused.h"

namespace sysds {

// The local (control-program) instruction set. Construction convention:
// operands are added via AddInput/AddOutput by the code generator; the
// constructors only fix opcode/exec-type and any static parameters.

/// Elementwise binary: scalar-scalar, matrix-scalar, matrix-matrix (with
/// broadcasting). Opcodes: + - * / ^ %% %/% min max == != < <= > >= & | xor.
class BinaryInstr final : public Instruction {
 public:
  explicit BinaryInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;
};

/// Elementwise/metadata unary. Opcodes: exp log sqrt abs round floor ceil
/// sin cos tan sign sigmoid ! uminus nrow ncol length.
class UnaryInstr final : public Instruction {
 public:
  explicit UnaryInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;
};

/// Full/row/column aggregates; opcode = AggOpName(op, dir), e.g. "uasum",
/// "uarmax", "uacmean".
class AggUnaryInstr final : public Instruction {
 public:
  explicit AggUnaryInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;
};

/// Fused elementwise(+aggregate) pipeline over a micro-plan produced by the
/// fusion planner (compiler/fusion.h). Operand layout: plan.num_inputs
/// matrix inputs, then plan.num_scalars scalars, then the serialized plan as
/// a trailing string literal (which thereby keys the lineage entry).
class FusedInstr final : public Instruction {
 public:
  explicit FusedInstr(FusedPlan plan)
      : Instruction("fused", ExecType::kCP), plan_(std::move(plan)) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;

  const FusedPlan& plan() const { return plan_; }

 private:
  FusedPlan plan_;
};

class CumAggInstr final : public Instruction {
 public:
  explicit CumAggInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

class MatMultInstr final : public Instruction {
 public:
  MatMultInstr() : Instruction("ba+*", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// Fused transpose-self matmult t(X)%*%X (left) or X%*%t(X) (right).
class TsmmInstr final : public Instruction {
 public:
  explicit TsmmInstr(bool left)
      : Instruction("tsmm", ExecType::kCP), left_(left) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
  bool left() const { return left_; }

 private:
  bool left_;
};

/// Fused t(A)%*%B.
class TmmInstr final : public Instruction {
 public:
  TmmInstr() : Instruction("tmm", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// Reorganization ops: t, rev, rdiag, reshape(X,rows,cols),
/// sort(X, by, decreasing, index.return).
class ReorgInstr final : public Instruction {
 public:
  explicit ReorgInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// Right indexing X[rl:ru, cl:cu]; bounds are 1-based scalar operands and
/// an upper bound of -1 selects "to end".
class IndexingInstr final : public Instruction {
 public:
  IndexingInstr() : Instruction("rightIndex", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// Left indexing: out = X with X[rl:ru, cl:cu] <- rhs (matrix or scalar).
class LeftIndexingInstr final : public Instruction {
 public:
  LeftIndexingInstr() : Instruction("leftIndex", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// Data generation: rand(rows, cols, min, max, sparsity, seed, pdf),
/// seq(from, to, incr), sample(range, size, replace, seed).
class DataGenInstr final : public Instruction {
 public:
  explicit DataGenInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// cbind / rbind over n matrices.
class AppendInstr final : public Instruction {
 public:
  explicit AppendInstr(bool cbind)
      : Instruction(cbind ? "cbind" : "rbind", ExecType::kCP),
        cbind_(cbind) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }

 private:
  bool cbind_;
};

/// ifelse(cond, yes, no) and table(A, B[, w]).
class TernaryInstr final : public Instruction {
 public:
  explicit TernaryInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override { return true; }
};

/// Casts between data/value types.
class CastInstr final : public Instruction {
 public:
  explicit CastInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// solve / cholesky / inv / det.
class SolveInstr final : public Instruction {
 public:
  explicit SolveInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;
};

/// Parameterized builtins with keyword parameters: replace, removeEmpty,
/// order, toString, transformencode, transformapply, transformdecode.
/// Parameter operands are paired with names in `param_names`.
class ParamBuiltinInstr final : public Instruction {
 public:
  explicit ParamBuiltinInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
  bool IsReusable() const override;

  std::vector<std::string>& ParamNames() { return param_names_; }

  /// Planned output representation for transformencode/transformapply,
  /// stamped by the compiler's PlanTransformOutputs pass: kDense unless the
  /// config (or the compression rewrite) marks encode outputs
  /// compression-eligible, in which case Apply prices bytes per column and
  /// may emit a CompressedMatrixBlock directly.
  TransformOutputFormat planned_output = TransformOutputFormat::kDense;

 private:
  StatusOr<const Operand*> Param(const std::string& name) const;
  std::vector<std::string> param_names_;
};

/// read(file, format=..., data_type=...): persistent read.
class ReadInstr final : public Instruction {
 public:
  ReadInstr() : Instruction("pread", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;

  std::string data_type = "matrix";  // matrix | frame
  std::string format = "csv";
  bool header = false;
  char sep = ',';
};

/// write(X, file, format=...).
class WriteInstr final : public Instruction {
 public:
  WriteInstr() : Instruction("pwrite", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;

  std::string format = "csv";
  bool header = false;
  char sep = ',';
};

/// compress(X): plans and applies column compression (§3.4). The rewrite
/// injects it for large loop-invariant read-only inputs; it is lenient by
/// design — a missing variable, a non-matrix, an already-compressed input,
/// a too-small matrix, or a plan under the min-ratio gate all pass the
/// input through unchanged, so injected instructions can never fail a
/// previously-working script.
class CompressInstr final : public Instruction {
 public:
  CompressInstr() : Instruction("compress", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// decompress(X): materializes the uncompressed block of a compressed
/// matrix (no-op pass-through for uncompressed inputs).
class DecompressInstr final : public Instruction {
 public:
  DecompressInstr() : Instruction("decompress", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// Variable maintenance: rmvar (inputs), cpvar (input -> output).
class VariableInstr final : public Instruction {
 public:
  explicit VariableInstr(const std::string& opcode)
      : Instruction(opcode, ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// print(x) — writes to the context's output stream.
class PrintInstr final : public Instruction {
 public:
  PrintInstr() : Instruction("print", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// stop(message) — aborts script execution with a runtime error.
class StopInstr final : public Instruction {
 public:
  StopInstr() : Instruction("stop", ExecType::kCP) {}
  Status Execute(ExecutionContext* ec) override;
};

/// Calls a user-defined or DML-bodied builtin function.
class FunctionCallInstr final : public Instruction {
 public:
  explicit FunctionCallInstr(std::string function_name)
      : Instruction("fcall", ExecType::kCP),
        function_name_(std::move(function_name)) {}
  Status Execute(ExecutionContext* ec) override;

  const std::string& function_name() const { return function_name_; }
  std::vector<std::string>& ArgNames() { return arg_names_; }

 private:
  std::string function_name_;
  std::vector<std::string> arg_names_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_CONTROLPROG_INSTRUCTIONS_CP_H_
