#include "common/util.h"
#include "obs/trace.h"
#include "runtime/compress/compress_metrics.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"
#include "runtime/matrix/lib_solve.h"

namespace sysds {

Status MatMultInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m1, ec->GetMatrix(inputs()[0]));
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m2, ec->GetMatrix(inputs()[1]));
  // Transparent compressed dispatch (§3.4): a compressed left operand
  // multiplies without decompressing; the kernel replays the uncompressed
  // accumulation order, so the result is bit-identical.
  if (m1->HasCompressed()) {
    auto comp = m1->AcquireCompressed();
    if (comp.ok()) {
      SYSDS_SPAN("compress", "matmult_dispatch");
      SYSDS_ACQUIRE_READ_CLEANUP(b, m2, m1->Release());
      auto result = (*comp)->RightMatMult(b, ec->NumThreads());
      m1->Release();
      m2->Release();
      if (!result.ok()) return result.status();
      compress_metrics::DispatchHits()->Add(1);
      ec->SetOutput(outputs()[0],
                    std::make_shared<MatrixObject>(std::move(*result)));
      return Status::Ok();
    }
  }
  SYSDS_ACQUIRE_READ(a, m1);
  SYSDS_ACQUIRE_READ_CLEANUP(b, m2, m1->Release());
  auto result = MatMult(a, b, ec->NumThreads());
  m1->Release();
  m2->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status TsmmInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  // Compressed t(X)%*%X via per-group value-indexed pre-aggregation — the
  // hot op of the lmDS pattern. Unsupported layouts (uncompressed fallback
  // groups, oversized dictionary pair tables) decompress and retry.
  if (left_ && m->HasCompressed()) {
    auto comp = m->AcquireCompressed();
    if (comp.ok()) {
      SYSDS_SPAN("compress", "tsmm_dispatch");
      auto result = (*comp)->TsmmLeft(ec->NumThreads());
      m->Release();
      if (result.ok()) {
        compress_metrics::DispatchHits()->Add(1);
        ec->SetOutput(outputs()[0],
                      std::make_shared<MatrixObject>(std::move(*result)));
        return Status::Ok();
      }
      if (result.status().code() != StatusCode::kUnimplemented) {
        return result.status();
      }
      compress_metrics::DispatchFallbacks()->Add(1);
    }
  }
  SYSDS_ACQUIRE_READ(x, m);
  auto result = TransposeSelfMatMult(x, left_, ec->NumThreads());
  m->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status TmmInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m1, ec->GetMatrix(inputs()[0]));
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m2, ec->GetMatrix(inputs()[1]));
  // Compressed t(A)%*%B: b-rows collapse into per-code buckets.
  if (m1->HasCompressed()) {
    auto comp = m1->AcquireCompressed();
    if (comp.ok()) {
      SYSDS_SPAN("compress", "tmm_dispatch");
      SYSDS_ACQUIRE_READ_CLEANUP(b, m2, m1->Release());
      auto result = (*comp)->LeftMatMult(b, ec->NumThreads());
      m1->Release();
      m2->Release();
      if (!result.ok()) return result.status();
      compress_metrics::DispatchHits()->Add(1);
      ec->SetOutput(outputs()[0],
                    std::make_shared<MatrixObject>(std::move(*result)));
      return Status::Ok();
    }
  }
  SYSDS_ACQUIRE_READ(a, m1);
  SYSDS_ACQUIRE_READ_CLEANUP(b, m2, m1->Release());
  auto result = TransposeLeftMatMult(a, b, ec->NumThreads());
  m1->Release();
  m2->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status ReorgInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(a, m);
  StatusOr<MatrixBlock> result = InvalidArgument("");
  const std::string& op = opcode();
  if (op == "t") {
    result = Transpose(a, ec->NumThreads());
  } else if (op == "rev") {
    result = ReverseRows(a);
  } else if (op == "rdiag") {
    result = Diag(a);
  } else if (op == "reshape") {
    auto rows = ec->GetInt(inputs()[1]);
    auto cols = ec->GetInt(inputs()[2]);
    if (!rows.ok()) { m->Release(); return rows.status(); }
    if (!cols.ok()) { m->Release(); return cols.status(); }
    result = Reshape(a, *rows, *cols);
  } else if (op == "sort") {
    auto by = ec->GetInt(inputs()[1]);
    auto dec = ec->GetBool(inputs()[2]);
    auto ixret = ec->GetBool(inputs()[3]);
    if (!by.ok()) { m->Release(); return by.status(); }
    if (!dec.ok()) { m->Release(); return dec.status(); }
    if (!ixret.ok()) { m->Release(); return ixret.status(); }
    result = OrderByColumn(a, *by - 1, *dec, *ixret);
  } else {
    m->Release();
    return RuntimeError("unknown reorg op '" + op + "'");
  }
  m->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

namespace {
// Resolves 1-based (rl, ru, cl, cu) with -1 uppers meaning "to end".
Status ResolveBounds(ExecutionContext* ec, const std::vector<Operand>& ins,
                     size_t first, int64_t rows, int64_t cols, int64_t* rl,
                     int64_t* ru, int64_t* cl, int64_t* cu) {
  SYSDS_ASSIGN_OR_RETURN(*rl, ec->GetInt(ins[first]));
  SYSDS_ASSIGN_OR_RETURN(*ru, ec->GetInt(ins[first + 1]));
  SYSDS_ASSIGN_OR_RETURN(*cl, ec->GetInt(ins[first + 2]));
  SYSDS_ASSIGN_OR_RETURN(*cu, ec->GetInt(ins[first + 3]));
  if (*ru == -1) *ru = rows;
  if (*cu == -1) *cu = cols;
  --*rl; --*ru; --*cl; --*cu;  // to 0-based inclusive
  return Status::Ok();
}
}  // namespace

Status IndexingInstr::Execute(ExecutionContext* ec) {
  // Frame slicing: rows and column projection on 2D tables.
  DataPtr target = ec->Vars().GetOrNull(inputs()[0].name);
  if (auto* f = dynamic_cast<FrameObject*>(target.get())) {
    const FrameBlock& fb = f->Frame();
    int64_t rl, ru, cl, cu;
    SYSDS_RETURN_IF_ERROR(ResolveBounds(ec, inputs(), 1, fb.Rows(),
                                        fb.Cols(), &rl, &ru, &cl, &cu));
    if (rl < 0 || ru >= fb.Rows() || rl > ru || cl < 0 || cu >= fb.Cols() ||
        cl > cu) {
      return OutOfRange("frame index range out of bounds");
    }
    std::vector<ValueType> schema(fb.Schema().begin() + cl,
                                  fb.Schema().begin() + cu + 1);
    std::vector<std::string> names(fb.ColumnNames().begin() + cl,
                                   fb.ColumnNames().begin() + cu + 1);
    FrameBlock out(ru - rl + 1, schema, names);
    for (int64_t r = rl; r <= ru; ++r) {
      for (int64_t c = cl; c <= cu; ++c) {
        out.SetString(r - rl, c - cl, fb.GetString(r, c));
      }
    }
    ec->SetOutput(outputs()[0], std::make_shared<FrameObject>(std::move(out)));
    return Status::Ok();
  }
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(a, m);
  int64_t rl, ru, cl, cu;
  Status bounds =
      ResolveBounds(ec, inputs(), 1, a.Rows(), a.Cols(), &rl, &ru, &cl, &cu);
  if (!bounds.ok()) { m->Release(); return bounds; }
  auto result = SliceMatrix(a, rl, ru, cl, cu);
  m->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status LeftIndexingInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(a, m);
  int64_t rl, ru, cl, cu;
  Status bounds =
      ResolveBounds(ec, inputs(), 2, a.Rows(), a.Cols(), &rl, &ru, &cl, &cu);
  if (!bounds.ok()) { m->Release(); return bounds; }

  // rhs: matrix or scalar.
  const Operand& rhs_op = inputs()[1];
  DataPtr rhs_data = ec->Vars().GetOrNull(rhs_op.name);
  StatusOr<MatrixBlock> result = InvalidArgument("");
  if (!rhs_op.is_literal && rhs_data != nullptr &&
      rhs_data->GetDataType() == DataType::kMatrix) {
    auto* rm = static_cast<MatrixObject*>(rhs_data.get());
    SYSDS_ACQUIRE_READ_CLEANUP(rhs, rm, m->Release());
    result = LeftIndex(a, rhs, rl, ru, cl, cu);
    rm->Release();
  } else {
    auto v = ec->GetDouble(rhs_op);
    if (!v.ok()) { m->Release(); return v.status(); }
    MatrixBlock rhs = MatrixBlock::Dense(ru - rl + 1, cu - cl + 1, *v);
    result = LeftIndex(a, rhs, rl, ru, cl, cu);
  }
  m->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status DataGenInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  if (op == "rand") {
    SYSDS_ASSIGN_OR_RETURN(int64_t rows, ec->GetInt(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(int64_t cols, ec->GetInt(inputs()[1]));
    SYSDS_ASSIGN_OR_RETURN(double minv, ec->GetDouble(inputs()[2]));
    SYSDS_ASSIGN_OR_RETURN(double maxv, ec->GetDouble(inputs()[3]));
    SYSDS_ASSIGN_OR_RETURN(double sparsity, ec->GetDouble(inputs()[4]));
    SYSDS_ASSIGN_OR_RETURN(int64_t seed, ec->GetInt(inputs()[5]));
    SYSDS_ASSIGN_OR_RETURN(std::string pdf, ec->GetString(inputs()[6]));
    uint64_t actual_seed =
        seed == -1 ? GenerateSeed() : static_cast<uint64_t>(seed);
    auto result = RandMatrix(rows, cols, minv, maxv, sparsity, actual_seed,
                             pdf == "normal" ? RandPdf::kNormal
                                             : RandPdf::kUniform,
                             ec->NumThreads());
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  if (op == "seq") {
    SYSDS_ASSIGN_OR_RETURN(double from, ec->GetDouble(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(double to, ec->GetDouble(inputs()[1]));
    SYSDS_ASSIGN_OR_RETURN(double incr, ec->GetDouble(inputs()[2]));
    auto result = SeqMatrix(from, to, incr);
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  if (op == "fill") {
    // matrix(value, rows, cols)
    SYSDS_ASSIGN_OR_RETURN(double value, ec->GetDouble(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(int64_t rows, ec->GetInt(inputs()[1]));
    SYSDS_ASSIGN_OR_RETURN(int64_t cols, ec->GetInt(inputs()[2]));
    if (rows < 0 || cols < 0) {
      return RuntimeError("matrix(): negative dimensions");
    }
    ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(
                                    MatrixBlock::Dense(rows, cols, value)));
    return Status::Ok();
  }
  if (op == "matfromstr") {
    // matrix("1 2 3 4", rows, cols): whitespace/comma separated values.
    SYSDS_ASSIGN_OR_RETURN(std::string data, ec->GetString(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(int64_t rows, ec->GetInt(inputs()[1]));
    SYSDS_ASSIGN_OR_RETURN(int64_t cols, ec->GetInt(inputs()[2]));
    MatrixBlock m = MatrixBlock::Dense(rows, cols);
    int64_t idx = 0;
    const char* p = data.c_str();
    char* end = nullptr;
    while (idx < rows * cols) {
      while (*p == ' ' || *p == ',' || *p == '\t' || *p == '\n') ++p;
      if (*p == '\0') break;
      double v = std::strtod(p, &end);
      if (end == p) break;
      m.DenseData()[idx++] = v;
      p = end;
    }
    if (idx != rows * cols) {
      return RuntimeError("matrix(): string data has fewer values than cells");
    }
    m.MarkNnzDirty();
    ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(std::move(m)));
    return Status::Ok();
  }
  if (op == "sample") {
    SYSDS_ASSIGN_OR_RETURN(int64_t range, ec->GetInt(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(int64_t size, ec->GetInt(inputs()[1]));
    SYSDS_ASSIGN_OR_RETURN(bool replace, ec->GetBool(inputs()[2]));
    SYSDS_ASSIGN_OR_RETURN(int64_t seed, ec->GetInt(inputs()[3]));
    uint64_t actual_seed =
        seed == -1 ? GenerateSeed() : static_cast<uint64_t>(seed);
    auto result = SampleMatrix(range, size, replace, actual_seed);
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  return RuntimeError("unknown datagen op '" + op + "'");
}

Status AppendInstr::Execute(ExecutionContext* ec) {
  std::vector<MatrixObject*> objs;
  std::vector<const MatrixBlock*> blocks;
  for (const Operand& in : inputs()) {
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(in));
    auto blk = m->AcquireRead();
    if (!blk.ok()) {
      for (MatrixObject* o : objs) o->Release();
      return blk.status();
    }
    objs.push_back(m);
    blocks.push_back(*blk);
  }
  auto result = cbind_ ? CBind(blocks) : RBind(blocks);
  for (MatrixObject* m : objs) m->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

Status TernaryInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  if (op == "ifelse") {
    // Scalar condition: select one arm directly.
    DataPtr cond_d =
        inputs()[0].is_literal ? nullptr
                               : ec->Vars().GetOrNull(inputs()[0].name);
    bool cond_scalar =
        inputs()[0].is_literal ||
        (cond_d != nullptr && cond_d->GetDataType() == DataType::kScalar);
    if (cond_scalar) {
      SYSDS_ASSIGN_OR_RETURN(bool take, ec->GetBool(inputs()[0]));
      SYSDS_ASSIGN_OR_RETURN(DataPtr arm,
                             ec->Resolve(take ? inputs()[1] : inputs()[2]));
      ec->SetOutput(outputs()[0], std::move(arm));
      return Status::Ok();
    }
    // Matrix condition; yes/no arms may be matrices or scalars.
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * mc, ec->GetMatrix(inputs()[0]));
    SYSDS_ACQUIRE_READ(cond, mc);
    auto arm = [&](const Operand& op_in, const MatrixBlock** blk,
                   MatrixObject** obj, double* scalar) -> Status {
      DataPtr d = ec->Vars().GetOrNull(op_in.name);
      if (!op_in.is_literal && d != nullptr &&
          d->GetDataType() == DataType::kMatrix) {
        auto* m = static_cast<MatrixObject*>(d.get());
        auto acquired = m->AcquireRead();
        if (!acquired.ok()) return acquired.status();
        *obj = m;  // only publish a successfully pinned object for cleanup
        *blk = *acquired;
      } else {
        SYSDS_ASSIGN_OR_RETURN(*scalar, ec->GetDouble(op_in));
      }
      return Status::Ok();
    };
    const MatrixBlock* ablk = nullptr;
    const MatrixBlock* bblk = nullptr;
    MatrixObject* aobj = nullptr;
    MatrixObject* bobj = nullptr;
    double as = 0, bs = 0;
    Status s1 = arm(inputs()[1], &ablk, &aobj, &as);
    Status s2 = arm(inputs()[2], &bblk, &bobj, &bs);
    auto cleanup = [&]() {
      mc->Release();
      if (aobj) aobj->Release();
      if (bobj) bobj->Release();
    };
    if (!s1.ok()) { cleanup(); return s1; }
    if (!s2.ok()) { cleanup(); return s2; }
    auto result = TernaryIfElse(cond, ablk, as, bblk, bs, ec->NumThreads());
    cleanup();
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  if (op == "ctable") {
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * ma, ec->GetMatrix(inputs()[0]));
    SYSDS_ASSIGN_OR_RETURN(MatrixObject * mb, ec->GetMatrix(inputs()[1]));
    double w = 1.0;
    if (inputs().size() > 2) {
      SYSDS_ASSIGN_OR_RETURN(w, ec->GetDouble(inputs()[2]));
    }
    SYSDS_ACQUIRE_READ(a, ma);
    SYSDS_ACQUIRE_READ_CLEANUP(b, mb, ma->Release());
    auto result = CTable(a, b, w);
    ma->Release();
    mb->Release();
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  return RuntimeError("unknown ternary op '" + op + "'");
}

bool SolveInstr::IsReusable() const {
  return !outputs().empty() && outputs()[0].dt == DataType::kMatrix;
}

Status SolveInstr::Execute(ExecutionContext* ec) {
  const std::string& op = opcode();
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * ma, ec->GetMatrix(inputs()[0]));
  SYSDS_ACQUIRE_READ(a, ma);
  if (op == "solve") {
    auto mb_or = ec->GetMatrix(inputs()[1]);
    if (!mb_or.ok()) { ma->Release(); return mb_or.status(); }
    MatrixObject* mb = *mb_or;
    SYSDS_ACQUIRE_READ_CLEANUP(b, mb, ma->Release());
    auto result = Solve(a, b);
    ma->Release();
    mb->Release();
    if (!result.ok()) return result.status();
    ec->SetOutput(outputs()[0],
                  std::make_shared<MatrixObject>(std::move(*result)));
    return Status::Ok();
  }
  StatusOr<MatrixBlock> result = InvalidArgument("");
  if (op == "cholesky") result = Cholesky(a);
  else if (op == "inv") result = Inverse(a);
  else if (op == "det") {
    auto d = Determinant(a);
    ma->Release();
    if (!d.ok()) return d.status();
    ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(*d));
    return Status::Ok();
  } else {
    ma->Release();
    return RuntimeError("unknown solve op '" + op + "'");
  }
  ma->Release();
  if (!result.ok()) return result.status();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(*result)));
  return Status::Ok();
}

}  // namespace sysds
