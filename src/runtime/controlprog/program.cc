#include "runtime/controlprog/program.h"

#include <cmath>
#include <functional>
#include <set>
#include <sstream>

#include "common/statistics.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "compiler/recompiler.h"
#include "lineage/lineage.h"
#include "obs/trace.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/recovery/checkpoint_manager.h"

namespace sysds {

namespace {

// Hint-driven prefetch (paper §2.3(3)): at loop entry and each iteration
// boundary, ask the buffer pool to restore the loop's spilled matrix
// operands in the background so the next iteration's reads hit memory. The
// liveness pass already knows the loop's invariant reads and loop-carried
// variables; everything resident is a cheap no-op.
void PrefetchLoopOperands(ExecutionContext* ec, const LoopLiveness& live) {
  BufferPool* pool = MatrixObject::GetBufferPool();
  if (pool == nullptr || !pool->options().prefetch) return;
  auto hint = [&](const std::string& var) {
    DataPtr d = ec->Vars().GetOrNull(var);
    auto* m = dynamic_cast<MatrixObject*>(d.get());
    if (m != nullptr && !m->HasPayload()) pool->Prefetch(m);
  };
  for (const std::string& var : live.invariant_reads) hint(var);
  for (const std::string& var : live.checkpoint_vars) hint(var);
}

// Scalar variables are traced by value ("literal replacement"), which makes
// lineage of indexed reads and hyper-parameters comparable across loop
// iterations and function scopes.
LineageItemPtr OperandLineage(const Operand& op, ExecutionContext* ec) {
  if (op.is_literal) return LineageItem::Leaf("lit", op.lit.AsString());
  DataPtr d = ec->Vars().GetOrNull(op.name);
  if (d != nullptr && d->GetDataType() == DataType::kScalar) {
    auto* s = static_cast<ScalarObject*>(d.get());
    return LineageItem::Leaf("lit", s->AsString());
  }
  return ec->Lineage()->GetOrCreate(op.name);
}

LineageItemPtr InstructionLineage(const Instruction& instr,
                                  ExecutionContext* ec) {
  // Variable copies are lineage-transparent: the copy has the same lineage
  // as its source, so snapshots/renames never break reuse matching.
  if (instr.opcode() == "cpvar" || instr.opcode() == "assignvar") {
    return OperandLineage(instr.inputs()[0], ec);
  }
  std::vector<LineageItemPtr> inputs;
  inputs.reserve(instr.inputs().size());
  for (const Operand& op : instr.inputs()) {
    inputs.push_back(OperandLineage(op, ec));
  }
  // Lineage traces logical operations (§3.1): the physical backend prefix
  // is stripped so CP and SPARK executions of the same op share lineage.
  std::string opcode = instr.opcode();
  if (opcode.rfind("sp_", 0) == 0) opcode = opcode.substr(3);
  return LineageItem::Node(opcode, std::move(inputs));
}

bool IsNonDeterministic(const Instruction& instr) {
  if (instr.opcode() != "rand" && instr.opcode() != "sample") return false;
  // The seed operand is last by construction; -1 means "generate".
  for (const Operand& op : instr.inputs()) {
    if (op.is_literal && op.lit.vt == ValueType::kInt64 && op.lit.i == -1) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status ExecuteInstructions(const std::vector<InstructionPtr>& instructions,
                           ExecutionContext* ec) {
  const bool tracing = ec->TracingEnabled();
  const bool stats = ec->Config().statistics;
  const bool interruptible = ec->HasInterrupt();
  LineageCache* cache = ec->Cache();
  const bool reuse =
      cache != nullptr && ec->Config().reuse_policy != ReusePolicy::kNone;

  for (const InstructionPtr& instr : instructions) {
    if (interruptible) SYSDS_RETURN_IF_ERROR(ec->CheckInterrupt());
    SYSDS_SPAN("cp", instr->opcode());
    Timer timer;
    LineageItemPtr item;
    bool nondet = false;
    if (tracing && !instr->outputs().empty()) {
      nondet = IsNonDeterministic(*instr);
      if (!nondet) item = InstructionLineage(*instr, ec);
    }

    bool served = false;
    if (item != nullptr && reuse && instr->IsReusable() &&
        instr->outputs().size() == 1) {
      DataPtr hit = cache->Probe(item);
      if (hit == nullptr) {
        auto partial = cache->ProbePartial(*instr, item, ec);
        if (partial.ok()) hit = std::move(partial).value();
      }
      if (hit != nullptr) {
        ec->SetOutput(instr->outputs()[0], hit);
        Statistics::Get().IncCounter("lineage.reuse_hits");
        obs::Tracer::Instant("lineage", "reuse_hit");
        served = true;
      }
    }

    if (!served) {
      Status s = instr->Execute(ec);
      if (!s.ok()) {
        return Status(s.code(),
                      s.message() + " [in " + instr->opcode() + "]");
      }
      if (item != nullptr && reuse && instr->IsReusable() &&
          instr->outputs().size() == 1) {
        DataPtr out = ec->Vars().GetOrNull(instr->outputs()[0].name);
        if (out != nullptr) cache->Put(item, out);
      }
    }

    if (tracing && !instr->outputs().empty() &&
        instr->opcode() != "fcall") {
      // (fcall outputs already carry the fine-grained lineage mapped back
      // from the function scope; wrapping them in an opaque node would
      // hide the operations inside the function.)
      if (nondet) {
        // Unique leaf: non-deterministic outputs never falsely match.
        item = LineageItem::Leaf(
            instr->opcode(), "nondet#" + std::to_string(GenerateSeed()));
      }
      if (instr->outputs().size() == 1) {
        ec->Lineage()->Set(instr->outputs()[0].name, item);
      } else {
        for (size_t k = 0; k < instr->outputs().size(); ++k) {
          std::vector<LineageItemPtr> inputs = {item};
          ec->Lineage()->Set(
              instr->outputs()[k].name,
              LineageItem::Node("out" + std::to_string(k), std::move(inputs)));
        }
      }
    }

    if (stats) {
      Statistics::Get().IncInstruction(instr->opcode(),
                                       timer.ElapsedSeconds());
    }
  }
  return Status::Ok();
}

Status BasicBlock::Execute(ExecutionContext* ec) {
  if (requires_recompile_ && ec->Config().dynamic_recompilation &&
      ec->RecompileAllowed()) {
    SYSDS_RETURN_IF_ERROR(RecompileBasicBlock(this, ec));
  }
  return ExecuteInstructions(instructions_, ec);
}

StatusOr<DataPtr> Predicate::Evaluate(ExecutionContext* ec) const {
  SYSDS_RETURN_IF_ERROR(ExecuteInstructions(instructions, ec));
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec->Vars().Get(result_var));
  return d;
}

Status IfBlock::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(DataPtr pred, predicate_.Evaluate(ec));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(pred, "if predicate"));
  const std::vector<ProgramBlockPtr>& branch =
      s->AsBool() ? then_blocks_ : else_blocks_;
  for (const ProgramBlockPtr& b : branch) {
    SYSDS_RETURN_IF_ERROR(b->Execute(ec));
  }
  return Status::Ok();
}

namespace {
DataPtr MakeLoopScalar(double v) {
  if (v == std::floor(v)) {
    return ScalarObject::MakeInt(static_cast<int64_t>(v));
  }
  return ScalarObject::MakeDouble(v);
}

// Loop lineage deduplication (§3.1): instead of accumulating the full
// per-instruction trace every iteration, each changed variable's lineage
// collapses into a single node referencing (a) the distinct control-flow
// path taken — identified by a structural patch hash over the iteration's
// trace with loop-carried inputs as placeholders — (b) the iteration
// value, and (c) the prior lineage of the loop-carried inputs it read.
class LoopLineageDedup {
 public:
  LoopLineageDedup(ExecutionContext* ec, const void* block)
      : ec_(ec),
        block_(block),
        enabled_(ec->TracingEnabled() && ec->Config().lineage_dedup) {}

  void BeginIteration() {
    if (!enabled_) return;
    before_ = ec_->Lineage()->Items();
  }

  void EndIteration(double iter_value) {
    if (!enabled_) return;
    std::map<const LineageItem*, int> boundary;
    int idx = 0;
    for (const auto& [name, item] : before_) {
      boundary[item.get()] = idx++;
    }
    std::vector<std::pair<std::string, LineageItemPtr>> changed;
    uint64_t signature = 0xcbf29ce484222325ULL;
    for (const auto& [name, item] : ec_->Lineage()->Items()) {
      auto bit = before_.find(name);
      if (bit != before_.end() && bit->second.get() == item.get()) continue;
      changed.emplace_back(name, item);
      signature = HashCombine(
          signature,
          HashCombine(HashString(name), LineagePatchHash(*item, boundary)));
    }
    if (changed.empty()) return;
    int path;
    auto pit = path_ids_.find(signature);
    if (pit == path_ids_.end()) {
      path = next_path_++;
      path_ids_[signature] = path;
      Statistics::Get().IncCounter("lineage.dedup_paths");
    } else {
      path = pit->second;
    }
    for (const auto& [name, item] : changed) {
      // Loop-invariant recomputations (same raw hash as the previous
      // iteration) keep their previous dedup node: zero trace growth.
      auto lit = last_raw_hash_.find(name);
      if (lit != last_raw_hash_.end() && lit->second == item->hash() &&
          last_dedup_.count(name)) {
        ec_->Lineage()->Set(name, last_dedup_[name]);
        continue;
      }
      last_raw_hash_[name] = item->hash();
      std::vector<LineageItemPtr> inputs;
      inputs.push_back(TagLeaf(path, name));
      std::ostringstream iv;
      iv << iter_value;
      inputs.push_back(LineageItem::Leaf("lit", iv.str()));
      CollectBoundaryInputs(item.get(), boundary, &inputs);
      LineageItemPtr node = LineageItem::Node("dedup", std::move(inputs));
      last_dedup_[name] = node;
      ec_->Lineage()->Set(name, std::move(node));
    }
  }

 private:
  // One interned tag leaf per (path, var): the path pattern is stored once
  // (paper: "determine the lineage trace per path once").
  LineageItemPtr TagLeaf(int path, const std::string& name) {
    auto key = std::make_pair(path, name);
    auto it = tag_leaves_.find(key);
    if (it != tag_leaves_.end()) return it->second;
    std::ostringstream tag;
    tag << "b" << block_ << ":p" << path << ":" << name;
    LineageItemPtr leaf = LineageItem::Leaf("dedup", tag.str());
    tag_leaves_[key] = leaf;
    return leaf;
  }

  void CollectBoundaryInputs(const LineageItem* item,
                             const std::map<const LineageItem*, int>& boundary,
                             std::vector<LineageItemPtr>* inputs) {
    std::set<const LineageItem*> visited;
    std::set<const LineageItem*> added;
    std::function<void(const LineageItem*)> visit =
        [&](const LineageItem* node) {
          if (!visited.insert(node).second) return;
          if (boundary.count(node)) {
            if (added.insert(node).second) {
              // Boundary items are owned by before_; find the shared_ptr.
              for (const auto& [name, owned] : before_) {
                if (owned.get() == node) {
                  inputs->push_back(owned);
                  break;
                }
              }
            }
            return;
          }
          for (const LineageItemPtr& in : node->inputs()) visit(in.get());
        };
    visit(item);
  }

  ExecutionContext* ec_;
  const void* block_;
  bool enabled_;
  std::map<std::string, LineageItemPtr> before_;
  std::map<uint64_t, int> path_ids_;
  std::map<std::pair<int, std::string>, LineageItemPtr> tag_leaves_;
  std::map<std::string, uint64_t> last_raw_hash_;
  std::map<std::string, LineageItemPtr> last_dedup_;
  int next_path_ = 0;
};
}  // namespace

Status WhileBlock::Execute(ExecutionContext* ec) {
  CheckpointScope ckpt(ec, liveness_);
  int64_t start = 0;
  if (ckpt.active()) {
    SYSDS_ASSIGN_OR_RETURN(start, ckpt.TryResume(ec));
  }
  LoopLineageDedup dedup(ec, this);
  PrefetchLoopOperands(ec, liveness_);
  // On resume the predicate evaluates over the restored loop-carried state,
  // so no explicit fast-forward is needed; `iteration` starts at the
  // restored count to keep lineage-dedup numbering identical to an
  // uninterrupted run.
  for (int64_t iteration = start;; ++iteration) {
    SYSDS_ASSIGN_OR_RETURN(DataPtr pred, predicate_.Evaluate(ec));
    SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(pred, "while predicate"));
    if (!s->AsBool()) break;
    dedup.BeginIteration();
    for (const ProgramBlockPtr& b : body_) {
      SYSDS_RETURN_IF_ERROR(b->Execute(ec));
    }
    dedup.EndIteration(static_cast<double>(iteration));
    SYSDS_RETURN_IF_ERROR(ckpt.AtBoundary(ec, iteration + 1));
    PrefetchLoopOperands(ec, liveness_);
  }
  return ckpt.Finish();
}

StatusOr<std::vector<double>> ForBlock::EvaluateRange(
    ExecutionContext* ec) const {
  SYSDS_ASSIGN_OR_RETURN(DataPtr fromd, from_.Evaluate(ec));
  SYSDS_ASSIGN_OR_RETURN(DataPtr tod, to_.Evaluate(ec));
  SYSDS_ASSIGN_OR_RETURN(DataPtr incrd, increment_.Evaluate(ec));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * froms, AsScalar(fromd, "for from"));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * tos, AsScalar(tod, "for to"));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * incrs, AsScalar(incrd, "for incr"));
  double from = froms->AsDouble(), to = tos->AsDouble(),
         incr = incrs->AsDouble();
  if (incr == 0.0) return RuntimeError("for: zero increment");
  std::vector<double> iterations;
  if (incr > 0) {
    for (double v = from; v <= to + 1e-12; v += incr) iterations.push_back(v);
  } else {
    for (double v = from; v >= to - 1e-12; v += incr) iterations.push_back(v);
  }
  return iterations;
}



Status ForBlock::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(std::vector<double> iterations, EvaluateRange(ec));
  CheckpointScope ckpt(ec, liveness_);
  size_t start = 0;
  if (ckpt.active()) {
    SYSDS_ASSIGN_OR_RETURN(int64_t done, ckpt.TryResume(ec));
    start = std::min(iterations.size(), static_cast<size_t>(done));
  }
  LoopLineageDedup dedup(ec, this);
  PrefetchLoopOperands(ec, liveness_);
  for (size_t i = start; i < iterations.size(); ++i) {
    double v = iterations[i];
    ec->Vars().Set(loop_var_, MakeLoopScalar(v));
    dedup.BeginIteration();
    for (const ProgramBlockPtr& b : body_) {
      SYSDS_RETURN_IF_ERROR(b->Execute(ec));
    }
    dedup.EndIteration(v);
    SYSDS_RETURN_IF_ERROR(ckpt.AtBoundary(ec, static_cast<int64_t>(i) + 1));
    PrefetchLoopOperands(ec, liveness_);
  }
  return ckpt.Finish();
}

Status ParForBlock::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(std::vector<double> iterations, EvaluateRange(ec));
  if (iterations.empty()) return Status::Ok();
  // Parfor checkpoints at one boundary — after compare-and-merge — since
  // workers run in parallel with no consistent mid-flight cut. A crash at
  // that boundary resumes by restoring the merged result variables and
  // skipping the whole (already-completed) parfor.
  CheckpointScope ckpt(ec, liveness_);
  if (ckpt.active()) {
    SYSDS_ASSIGN_OR_RETURN(int64_t done, ckpt.TryResume(ec));
    if (done > 0) return ckpt.Finish();
  }
  int64_t k = std::min<int64_t>(ec->NumThreads(),
                                static_cast<int64_t>(iterations.size()));
  Statistics::Get().IncCounter("parfor.executions");
  PrefetchLoopOperands(ec, liveness_);

  // Snapshot originals of result variables for compare-and-merge.
  std::map<std::string, DataPtr> originals;
  for (const std::string& var : result_vars_) {
    originals[var] = ec->Vars().GetOrNull(var);
  }

  // Worker contexts: shallow copies of the symbol table (instructions never
  // mutate Data in place), private lineage maps seeded from the parent.
  std::vector<std::unique_ptr<ExecutionContext>> workers;
  std::vector<Status> statuses(static_cast<size_t>(k));
  for (int64_t w = 0; w < k; ++w) {
    auto child = ec->CreateChild();
    for (const auto& [name, value] : ec->Vars().All()) {
      child->Vars().Set(name, value);
      if (ec->TracingEnabled()) {
        LineageItemPtr li = ec->Lineage()->GetOrNull(name);
        if (li != nullptr) child->Lineage()->Set(name, li);
      }
    }
    child->SetRecompileAllowed(false);  // blocks are shared across workers
    workers.push_back(std::move(child));
  }

  // Round-robin task assignment (static factoring) over local workers.
  ThreadPool::Global().ParallelFor(0, k, k, [&](int64_t wb, int64_t we) {
    for (int64_t w = wb; w < we; ++w) {
      SYSDS_SPAN("parfor", "worker#" + std::to_string(w));
      ExecutionContext* wec = workers[static_cast<size_t>(w)].get();
      for (size_t i = static_cast<size_t>(w); i < iterations.size();
           i += static_cast<size_t>(k)) {
        wec->Vars().Set(loop_var_, MakeLoopScalar(iterations[i]));
        for (const ProgramBlockPtr& b : body_) {
          Status s = b->Execute(wec);
          if (!s.ok()) {
            statuses[static_cast<size_t>(w)] = s;
            return;
          }
        }
      }
    }
  },
  "parfor");
  for (const Status& s : statuses) SYSDS_RETURN_IF_ERROR(s);

  // Result merge: matrices via compare-and-merge against the original
  // value; scalars and shape-changed matrices last-writer-wins in worker
  // order (deterministic).
  for (const std::string& var : result_vars_) {
    DataPtr original = originals[var];
    auto* orig_m = dynamic_cast<MatrixObject*>(original.get());
    bool mergeable = orig_m != nullptr;
    MatrixBlock merged;
    if (mergeable) {
      SYSDS_ASSIGN_OR_RETURN(const MatrixBlock* ob0, orig_m->AcquireRead());
      merged = *ob0;  // copy
      orig_m->Release();
      merged.ToDense();
    }
    DataPtr last_changed;
    for (int64_t w = 0; w < k; ++w) {
      DataPtr wv = workers[static_cast<size_t>(w)]->Vars().GetOrNull(var);
      if (wv == nullptr || wv == original) continue;
      last_changed = wv;
      if (!mergeable) continue;
      auto* wm = dynamic_cast<MatrixObject*>(wv.get());
      if (wm == nullptr || wm->Rows() != merged.Rows() ||
          wm->Cols() != merged.Cols()) {
        mergeable = false;
        continue;
      }
      SYSDS_ACQUIRE_READ(wb, wm);
      SYSDS_ACQUIRE_READ_CLEANUP(ob, orig_m, wm->Release());
      for (int64_t r = 0; r < merged.Rows(); ++r) {
        for (int64_t c = 0; c < merged.Cols(); ++c) {
          double nv = wb.Get(r, c);
          if (nv != ob.Get(r, c)) merged.Set(r, c, nv);
        }
      }
      wm->Release();
      orig_m->Release();
    }
    if (last_changed == nullptr) continue;
    if (mergeable) {
      merged.MarkNnzDirty();
      merged.ExamSparsity();
      ec->Vars().Set(var, std::make_shared<MatrixObject>(std::move(merged)));
    } else {
      ec->Vars().Set(var, last_changed);
    }
    if (ec->TracingEnabled()) {
      ec->Lineage()->Set(var, LineageItem::Leaf(
                                  "parfor",
                                  var + "#" + std::to_string(GenerateSeed())));
    }
  }
  SYSDS_RETURN_IF_ERROR(
      ckpt.AtBoundary(ec, static_cast<int64_t>(iterations.size())));
  return ckpt.Finish();
}

Status FunctionBlock::Execute(ExecutionContext* caller,
                              const std::vector<Operand>& args,
                              const std::vector<std::string>& arg_names,
                              const std::vector<Operand>& outputs) const {
  std::unique_ptr<ExecutionContext> callee = caller->CreateChild();

  // Bind arguments: named args match by name, positional in order.
  std::vector<bool> bound(params.size(), false);
  size_t positional = 0;
  for (size_t a = 0; a < args.size(); ++a) {
    int64_t target = -1;
    if (a < arg_names.size() && !arg_names[a].empty()) {
      for (size_t p = 0; p < params.size(); ++p) {
        if (params[p].name == arg_names[a]) {
          target = static_cast<int64_t>(p);
          break;
        }
      }
      if (target < 0) {
        return RuntimeError("function " + name + ": unknown argument '" +
                            arg_names[a] + "'");
      }
    } else {
      while (positional < params.size() && bound[positional]) ++positional;
      if (positional >= params.size()) {
        return RuntimeError("function " + name + ": too many arguments");
      }
      target = static_cast<int64_t>(positional);
    }
    const Param& p = params[static_cast<size_t>(target)];
    SYSDS_ASSIGN_OR_RETURN(DataPtr value, caller->Resolve(args[a]));
    callee->Vars().Set(p.name, std::move(value));
    bound[static_cast<size_t>(target)] = true;
    if (caller->TracingEnabled()) {
      callee->Lineage()->Set(p.name, OperandLineage(args[a], caller));
    }
  }
  // Defaults for unbound parameters.
  for (size_t p = 0; p < params.size(); ++p) {
    if (bound[p]) continue;
    if (!params[p].has_default) {
      return RuntimeError("function " + name + ": missing argument '" +
                          params[p].name + "'");
    }
    Operand lit = Operand::Literal(params[p].default_value);
    SYSDS_ASSIGN_OR_RETURN(DataPtr value, callee->Resolve(lit));
    callee->Vars().Set(params[p].name, std::move(value));
  }

  callee->SetRecompileAllowed(caller->RecompileAllowed());
  for (const ProgramBlockPtr& b : body) {
    SYSDS_RETURN_IF_ERROR(b->Execute(callee.get()));
  }

  // Copy results back.
  for (size_t r = 0; r < outputs.size() && r < returns.size(); ++r) {
    SYSDS_ASSIGN_OR_RETURN(DataPtr value, callee->Vars().Get(returns[r].name));
    caller->SetOutput(outputs[r], std::move(value));
    if (caller->TracingEnabled()) {
      LineageItemPtr li = callee->Lineage()->GetOrNull(returns[r].name);
      if (li != nullptr) caller->Lineage()->Set(outputs[r].name, li);
    }
  }
  return Status::Ok();
}

namespace {
std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

void ExplainPredicate(const Predicate& p, const char* label,
                      std::ostream& os, int indent) {
  os << Indent(indent) << "-- " << label << " (-> " << p.result_var << ")\n";
  for (const InstructionPtr& instr : p.instructions) {
    os << Indent(indent + 2) << instr->ToString() << "\n";
  }
}
}  // namespace

void BasicBlock::Explain(std::ostream& os, int indent) const {
  os << Indent(indent) << "GENERIC block"
     << (requires_recompile_ ? " [recompile]" : "") << "\n";
  for (const InstructionPtr& instr : instructions_) {
    os << Indent(indent + 2) << instr->ToString() << "\n";
  }
}

void IfBlock::Explain(std::ostream& os, int indent) const {
  os << Indent(indent) << "IF block\n";
  ExplainPredicate(predicate_, "predicate", os, indent + 2);
  for (const ProgramBlockPtr& b : then_blocks_) b->Explain(os, indent + 2);
  if (!else_blocks_.empty()) {
    os << Indent(indent) << "ELSE\n";
    for (const ProgramBlockPtr& b : else_blocks_) b->Explain(os, indent + 2);
  }
}

void WhileBlock::Explain(std::ostream& os, int indent) const {
  os << Indent(indent) << "WHILE block\n";
  ExplainPredicate(predicate_, "predicate", os, indent + 2);
  for (const ProgramBlockPtr& b : body_) b->Explain(os, indent + 2);
}

void ForBlock::Explain(std::ostream& os, int indent) const {
  os << Indent(indent)
     << (dynamic_cast<const ParForBlock*>(this) ? "PARFOR" : "FOR")
     << " block (" << loop_var_ << ")\n";
  ExplainPredicate(from_, "from", os, indent + 2);
  ExplainPredicate(to_, "to", os, indent + 2);
  ExplainPredicate(increment_, "increment", os, indent + 2);
  for (const ProgramBlockPtr& b : body_) b->Explain(os, indent + 2);
}

std::string Program::Explain() const {
  std::ostringstream os;
  os << "PROGRAM (" << blocks_.size() << " blocks, " << functions_.size()
     << " functions)\n";
  for (const auto& [name, fn] : functions_) {
    os << "FUNCTION " << name << "(";
    for (size_t i = 0; i < fn->params.size(); ++i) {
      if (i > 0) os << ", ";
      os << fn->params[i].name;
    }
    os << ") -> (";
    for (size_t i = 0; i < fn->returns.size(); ++i) {
      if (i > 0) os << ", ";
      os << fn->returns[i].name;
    }
    os << ")\n";
    for (const ProgramBlockPtr& b : fn->body) b->Explain(os, 2);
  }
  os << "MAIN\n";
  for (const ProgramBlockPtr& b : blocks_) b->Explain(os, 2);
  return os.str();
}

StatusOr<const FunctionBlock*> Program::GetFunction(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFound("function '" + name + "' is not defined");
  }
  return it->second.get();
}

Status Program::Execute(ExecutionContext* ec) {
  for (const ProgramBlockPtr& b : blocks_) {
    SYSDS_RETURN_IF_ERROR(b->Execute(ec));
  }
  return Status::Ok();
}

}  // namespace sysds
