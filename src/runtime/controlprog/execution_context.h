#ifndef SYSDS_RUNTIME_CONTROLPROG_EXECUTION_CONTEXT_H_
#define SYSDS_RUNTIME_CONTROLPROG_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/instruction.h"

namespace sysds {

class Program;
class BufferPool;
class LineageMap;
class LineageCache;
class FederatedRegistry;
class CheckpointManager;

/// Cooperative cancellation signal shared between a request submitter and
/// the executing context tree (root, function scopes, parfor workers). The
/// interpreter polls it between instructions, so cancellation takes effect
/// at the next instruction boundary.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The variable environment of a (control) program scope.
class SymbolTable {
 public:
  StatusOr<DataPtr> Get(const std::string& name) const;
  DataPtr GetOrNull(const std::string& name) const;
  void Set(const std::string& name, DataPtr value);
  void Remove(const std::string& name);
  bool Contains(const std::string& name) const;
  const std::map<std::string, DataPtr>& All() const { return vars_; }

 private:
  std::map<std::string, DataPtr> vars_;
};

/// Execution state threaded through the interpreter: symbol table, config,
/// lineage, buffer pool, and the program (for function lookup). Child
/// contexts (function calls, parfor workers) share program/config/cache but
/// get their own symbol table and lineage map.
class ExecutionContext {
 public:
  ExecutionContext(Program* program, const DMLConfig* config);
  ~ExecutionContext();

  SymbolTable& Vars() { return vars_; }
  const DMLConfig& Config() const { return *config_; }
  Program* GetProgram() const { return program_; }

  int NumThreads() const;

  // Operand resolution.
  StatusOr<DataPtr> Resolve(const Operand& op) const;
  StatusOr<double> GetDouble(const Operand& op) const;
  StatusOr<int64_t> GetInt(const Operand& op) const;
  StatusOr<bool> GetBool(const Operand& op) const;
  StatusOr<std::string> GetString(const Operand& op) const;
  StatusOr<MatrixObject*> GetMatrix(const Operand& op) const;
  StatusOr<FrameObject*> GetFrame(const Operand& op) const;

  void SetOutput(const Operand& op, DataPtr value);

  // Lineage: each context (root, function scope, parfor worker) owns its
  // own map of live variables to lineage items; the reuse cache is shared.
  LineageMap* Lineage() const { return lineage_.get(); }
  LineageCache* Cache() const { return cache_; }
  void SetCache(LineageCache* cache) { cache_ = cache; }
  bool TracingEnabled() const;

  FederatedRegistry* Federated() const { return federated_; }
  void SetFederated(FederatedRegistry* fed) { federated_ = fed; }

  // Checkpoint/restart (src/runtime/recovery/): set on the root context
  // only. Deliberately NOT propagated to children — loops inside function
  // calls and parfor workers are covered by the outermost loop's checkpoint
  // (or by prefix re-execution), never checkpointed themselves.
  CheckpointManager* Checkpoints() const { return checkpoints_; }
  void SetCheckpoints(CheckpointManager* cm) { checkpoints_ = cm; }

  // Script output stream (print/toString); tests redirect it.
  std::ostream& Out() const { return *out_; }
  void SetOut(std::ostream* out) { out_ = out; }

  // Dynamic recompilation is disabled inside parfor workers because program
  // blocks are shared across worker threads.
  bool RecompileAllowed() const { return recompile_allowed_; }
  void SetRecompileAllowed(bool v) { recompile_allowed_ = v; }

  // Per-request deadline and cancellation (serving): both are polled by the
  // interpreter between instructions. Propagated to child contexts so
  // function calls and parfor workers observe the same request lifetime.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetCancelToken(std::shared_ptr<CancellationToken> token) {
    cancel_ = std::move(token);
  }
  /// Cheap test whether any interrupt source is configured (hot path guard).
  bool HasInterrupt() const { return has_deadline_ || cancel_ != nullptr; }
  /// kCancelled if the token fired, kTimeout if past the deadline, Ok else.
  Status CheckInterrupt() const;

  /// Creates a child context for function calls / parfor workers.
  std::unique_ptr<ExecutionContext> CreateChild() const;

 private:
  Program* program_;
  const DMLConfig* config_;
  SymbolTable vars_;
  std::unique_ptr<LineageMap> lineage_;
  LineageCache* cache_ = nullptr;
  FederatedRegistry* federated_ = nullptr;
  CheckpointManager* checkpoints_ = nullptr;
  std::ostream* out_ = &std::cout;
  bool recompile_allowed_ = true;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::shared_ptr<CancellationToken> cancel_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_CONTROLPROG_EXECUTION_CONTEXT_H_
