#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"
#include "runtime/matrix/lib_fused.h"

namespace sysds {

bool FusedInstr::IsReusable() const {
  return !outputs().empty() && outputs()[0].dt == DataType::kMatrix;
}

Status FusedInstr::Execute(ExecutionContext* ec) {
  SYSDS_SPAN("cp", "fused_pipeline");
  size_t want = static_cast<size_t>(plan_.num_inputs + plan_.num_scalars) + 1;
  if (inputs().size() != want) {
    return RuntimeError("fused: operand count mismatch");
  }

  // Pin all matrix inputs; on any acquire failure release the pins taken so
  // far and propagate (same discipline as the unfused instructions).
  std::vector<MatrixObject*> objs;
  std::vector<const MatrixBlock*> blocks;
  objs.reserve(static_cast<size_t>(plan_.num_inputs));
  blocks.reserve(static_cast<size_t>(plan_.num_inputs));
  auto release_all = [&objs]() {
    for (MatrixObject* o : objs) o->Release();
  };
  for (int i = 0; i < plan_.num_inputs; ++i) {
    auto m = ec->GetMatrix(inputs()[static_cast<size_t>(i)]);
    if (!m.ok()) {
      release_all();
      return m.status();
    }
    auto block = (*m)->AcquireRead();
    if (!block.ok()) {
      release_all();
      return block.status();
    }
    objs.push_back(*m);
    blocks.push_back(*block);
  }

  std::vector<double> scalars;
  scalars.reserve(static_cast<size_t>(plan_.num_scalars));
  for (int i = 0; i < plan_.num_scalars; ++i) {
    auto v =
        ec->GetDouble(inputs()[static_cast<size_t>(plan_.num_inputs + i)]);
    if (!v.ok()) {
      release_all();
      return v.status();
    }
    scalars.push_back(*v);
  }

  auto result = ExecuteFusedPlan(plan_, blocks, scalars, ec->NumThreads());
  release_all();
  if (!result.ok()) return result.status();

  if (result->is_scalar) {
    // Mirror AggUnaryInstr's result typing: nnz counts are integers.
    if (plan_.has_agg && plan_.agg == AggOpCode::kNnz) {
      ec->SetOutput(outputs()[0], ScalarObject::MakeInt(
                                      static_cast<int64_t>(result->scalar)));
    } else {
      ec->SetOutput(outputs()[0], ScalarObject::MakeDouble(result->scalar));
    }
  } else {
    ec->SetOutput(outputs()[0], std::make_shared<MatrixObject>(
                                    std::move(result->matrix)));
  }
  return Status::Ok();
}

}  // namespace sysds
