#include "runtime/controlprog/execution_context.h"

#include "common/thread_pool.h"
#include "lineage/lineage.h"

namespace sysds {

StatusOr<DataPtr> SymbolTable::Get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return RuntimeError("variable '" + name + "' is not defined");
  }
  return it->second;
}

DataPtr SymbolTable::GetOrNull(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : it->second;
}

void SymbolTable::Set(const std::string& name, DataPtr value) {
  vars_[name] = std::move(value);
}

void SymbolTable::Remove(const std::string& name) { vars_.erase(name); }

bool SymbolTable::Contains(const std::string& name) const {
  return vars_.count(name) > 0;
}

ExecutionContext::ExecutionContext(Program* program, const DMLConfig* config)
    : program_(program),
      config_(config),
      lineage_(std::make_unique<LineageMap>()) {}

ExecutionContext::~ExecutionContext() = default;

bool ExecutionContext::TracingEnabled() const {
  return config_->lineage_tracing ||
         config_->reuse_policy != ReusePolicy::kNone;
}

int ExecutionContext::NumThreads() const {
  return config_->num_threads > 0 ? config_->num_threads
                                  : DefaultParallelism();
}

StatusOr<DataPtr> ExecutionContext::Resolve(const Operand& op) const {
  if (op.is_literal) {
    switch (op.lit.vt) {
      case ValueType::kFP64: return ScalarObject::MakeDouble(op.lit.d);
      case ValueType::kInt64: return ScalarObject::MakeInt(op.lit.i);
      case ValueType::kBoolean: return ScalarObject::MakeBool(op.lit.b);
      default: return ScalarObject::MakeString(op.lit.s);
    }
  }
  return vars_.Get(op.name);
}

StatusOr<double> ExecutionContext::GetDouble(const Operand& op) const {
  if (op.is_literal) return op.lit.AsDouble();
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op.name));
  return s->AsDouble();
}

StatusOr<int64_t> ExecutionContext::GetInt(const Operand& op) const {
  if (op.is_literal) return op.lit.AsInt();
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op.name));
  return s->AsInt();
}

StatusOr<bool> ExecutionContext::GetBool(const Operand& op) const {
  if (op.is_literal) return op.lit.AsBool();
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op.name));
  return s->AsBool();
}

StatusOr<std::string> ExecutionContext::GetString(const Operand& op) const {
  if (op.is_literal) return op.lit.AsString();
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(d, op.name));
  return s->AsString();
}

StatusOr<MatrixObject*> ExecutionContext::GetMatrix(const Operand& op) const {
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  return AsMatrix(d, op.name);
}

StatusOr<FrameObject*> ExecutionContext::GetFrame(const Operand& op) const {
  SYSDS_ASSIGN_OR_RETURN(DataPtr d, vars_.Get(op.name));
  return AsFrame(d, op.name);
}

void ExecutionContext::SetOutput(const Operand& op, DataPtr value) {
  vars_.Set(op.name, std::move(value));
}

Status ExecutionContext::CheckInterrupt() const {
  if (cancel_ != nullptr && cancel_->Cancelled()) {
    return CancelledError("execution cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return TimeoutError("request deadline exceeded during execution");
  }
  return Status::Ok();
}

std::unique_ptr<ExecutionContext> ExecutionContext::CreateChild() const {
  auto child = std::make_unique<ExecutionContext>(program_, config_);
  child->cache_ = cache_;
  child->federated_ = federated_;
  child->out_ = out_;
  child->has_deadline_ = has_deadline_;
  child->deadline_ = deadline_;
  child->cancel_ = cancel_;
  return child;
}

}  // namespace sysds
