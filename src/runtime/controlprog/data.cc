#include "runtime/controlprog/data.h"

#include <atomic>
#include <chrono>
#include <sstream>

#include "common/faults.h"
#include "io/atomic_file.h"
#include "io/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/compress/compress_io.h"

namespace sysds {

namespace {
std::atomic<BufferPool*> g_buffer_pool{nullptr};

// Acquire-path hit/miss accounting: a miss means the block was evicted and
// had to be restored from its spill file.
obs::Counter* PoolHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("bufferpool.hits");
  return c;
}
obs::Counter* PoolMisses() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("bufferpool.misses");
  return c;
}
std::atomic<int64_t> g_next_object_id{1};

obs::Counter* RestoreRetries() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "fault.bufferpool.restore_retries");
  return c;
}
obs::Counter* RestoreFailures() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "fault.bufferpool.restore_failures");
  return c;
}

// A kernel without a compressed implementation forced an on-demand
// decompression of a compressed object.
obs::Counter* DecompressFallbacks() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "compress.decompress_fallbacks");
  return c;
}

// An acquire found the payload resident because a prefetch restored it
// ahead of demand (the prefetcher's success metric).
obs::Counter* PrefetchHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("bufferpool.prefetch_hits");
  return c;
}
obs::Counter* PrefetchFailures() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(
      "fault.bufferpool.prefetch_failures");
  return c;
}
obs::Histogram* RestoreNs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("bufferpool.restore_ns");
  return h;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Data::Data()
    : object_id_(g_next_object_id.fetch_add(1, std::memory_order_relaxed)) {}

DataPtr ScalarObject::MakeDouble(double v) {
  auto s = std::make_shared<ScalarObject>();
  s->vt_ = ValueType::kFP64;
  s->dval_ = v;
  return s;
}

DataPtr ScalarObject::MakeInt(int64_t v) {
  auto s = std::make_shared<ScalarObject>();
  s->vt_ = ValueType::kInt64;
  s->ival_ = v;
  return s;
}

DataPtr ScalarObject::MakeBool(bool v) {
  auto s = std::make_shared<ScalarObject>();
  s->vt_ = ValueType::kBoolean;
  s->bval_ = v;
  return s;
}

DataPtr ScalarObject::MakeString(std::string v) {
  auto s = std::make_shared<ScalarObject>();
  s->vt_ = ValueType::kString;
  s->sval_ = std::move(v);
  return s;
}

double ScalarObject::AsDouble() const {
  switch (vt_) {
    case ValueType::kFP64: return dval_;
    case ValueType::kInt64: return static_cast<double>(ival_);
    case ValueType::kBoolean: return bval_ ? 1.0 : 0.0;
    case ValueType::kString: return sval_.empty() ? 0.0 : std::stod(sval_);
    default: return 0.0;
  }
}

int64_t ScalarObject::AsInt() const {
  switch (vt_) {
    case ValueType::kFP64: return static_cast<int64_t>(dval_);
    case ValueType::kInt64: return ival_;
    case ValueType::kBoolean: return bval_ ? 1 : 0;
    case ValueType::kString: return sval_.empty() ? 0 : std::stoll(sval_);
    default: return 0;
  }
}

bool ScalarObject::AsBool() const {
  switch (vt_) {
    case ValueType::kFP64: return dval_ != 0.0;
    case ValueType::kInt64: return ival_ != 0;
    case ValueType::kBoolean: return bval_;
    case ValueType::kString: return sval_ == "TRUE" || sval_ == "true";
    default: return false;
  }
}

std::string ScalarObject::AsString() const {
  switch (vt_) {
    case ValueType::kFP64: {
      std::ostringstream os;
      os << dval_;
      return os.str();
    }
    case ValueType::kInt64: return std::to_string(ival_);
    case ValueType::kBoolean: return bval_ ? "TRUE" : "FALSE";
    case ValueType::kString: return sval_;
    default: return "";
  }
}

void MatrixObject::SetBufferPool(BufferPool* pool) { g_buffer_pool = pool; }

BufferPool* MatrixObject::GetBufferPool() { return g_buffer_pool.load(); }

void MatrixObject::ClearBufferPool(BufferPool* expected) {
  g_buffer_pool.compare_exchange_strong(expected, nullptr);
}

MatrixObject::MatrixObject(MatrixBlock block) {
  rows_ = block.Rows();
  cols_ = block.Cols();
  nnz_ = block.NonZeros();
  block_ = std::make_shared<MatrixBlock>(std::move(block));
  if (BufferPool* pool = g_buffer_pool.load()) {
    pool->Register(this, block_->EstimateSizeInBytes());
  }
}

MatrixObject::MatrixObject(CompressedMatrixBlock block) {
  rows_ = block.Rows();
  cols_ = block.Cols();
  nnz_ = block.NonZeros();
  compressed_ =
      std::make_shared<const CompressedMatrixBlock>(std::move(block));
  if (BufferPool* pool = g_buffer_pool.load()) {
    // Compressed blocks are accounted at their compressed size — the point
    // of §3.4: more live data fits under the same memory budget.
    pool->Register(this, compressed_->EstimateSizeInBytes());
  }
}

MatrixObject::~MatrixObject() {
  if (BufferPool* pool = g_buffer_pool.load()) pool->Unregister(this);
  if (!evicted_path_.empty()) std::remove(evicted_path_.c_str());
}

StatusOr<const MatrixBlock*> MatrixObject::AcquireRead() {
  // Pin BEFORE any pool interaction: a re-registration below may trigger
  // evictions, and an unpinned freshly-restored block could be chosen as
  // its own victim (returning a dangling reference).
  const MatrixBlock* result;
  bool restored = false;
  bool prefetch_hit = false;
  bool first_pin = false;
  int64_t size = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++pin_count_;
    first_pin = pin_count_ == 1;
    if (block_ == nullptr && compressed_ == nullptr) {
      SYSDS_SPAN("bufferpool", "restore");
      Status s = EnsureRestoredLocked(lock);
      if (!s.ok()) {
        // The acquire failed: undo the pin and surface the error instead
        // of substituting data the script would silently compute with.
        // The spill file is kept, so a later acquire can retry.
        --pin_count_;
        PoolMisses()->Add(1);
        return s;
      }
      restored = true;
    }
    if (block_ == nullptr && compressed_ != nullptr) {
      // Materialize an uncompressed view for kernels without a compressed
      // implementation. The compressed form stays authoritative — eviction
      // spills it, not the decompressed copy.
      SYSDS_SPAN("compress", "decompress_on_read");
      block_ = std::make_shared<MatrixBlock>(compressed_->Decompress());
      DecompressFallbacks()->Add(1);
      restored = true;
    }
    prefetch_hit = !restored && prefetched_;
    prefetched_ = false;
    if (restored || first_pin) size = EstimateSizeLocked();
    result = block_.get();
  }
  if (restored) {
    PoolMisses()->Add(1);
  } else {
    PoolHits()->Add(1);
  }
  if (prefetch_hit) PrefetchHits()->Add(1);
  if (BufferPool* pool = g_buffer_pool.load()) {
    if (restored) pool->Register(this, size);
    pool->Touch(this);
    if (first_pin) pool->NotePinned(this, true);
  }
  return result;
}

void MatrixObject::Release() {
  bool last_unpin = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pin_count_ > 0) {
      --pin_count_;
      last_unpin = pin_count_ == 0;
    }
  }
  if (last_unpin) {
    if (BufferPool* pool = g_buffer_pool.load()) pool->NotePinned(this, false);
  }
}

StatusOr<const CompressedMatrixBlock*> MatrixObject::AcquireCompressed() {
  const CompressedMatrixBlock* result;
  bool restored = false;
  bool prefetch_hit = false;
  bool first_pin = false;
  int64_t size = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++pin_count_;
    first_pin = pin_count_ == 1;
    if (compressed_ == nullptr) {
      if (!spilled_compressed_) {
        --pin_count_;
        return Internal("matrix has no compressed representation");
      }
      SYSDS_SPAN("bufferpool", "restore");
      Status s = EnsureRestoredLocked(lock);
      if (!s.ok() || compressed_ == nullptr) {
        --pin_count_;
        PoolMisses()->Add(1);
        return s.ok() ? Internal("compressed restore produced no block") : s;
      }
      restored = true;
    }
    prefetch_hit = !restored && prefetched_;
    prefetched_ = false;
    if (restored || first_pin) size = EstimateSizeLocked();
    result = compressed_.get();
  }
  if (restored) {
    PoolMisses()->Add(1);
  } else {
    PoolHits()->Add(1);
  }
  if (prefetch_hit) PrefetchHits()->Add(1);
  if (BufferPool* pool = g_buffer_pool.load()) {
    if (restored) pool->Register(this, size);
    pool->Touch(this);
    if (first_pin) pool->NotePinned(this, true);
  }
  return result;
}

StatusOr<bool> MatrixObject::EvictTo(const std::string& path) {
  // Called by the buffer pool (which holds its own lock); the object lock
  // closes the race against a concurrent AcquireRead pinning the block.
  std::lock_guard<std::mutex> lock(mutex_);
  if ((block_ == nullptr && compressed_ == nullptr) || pin_count_ > 0 ||
      spilling_) {
    return false;
  }
  if (clean_spill_ && !evicted_path_.empty()) {
    // The spill file already holds the payload (write-behind ran, or the
    // object was restored and kept its file): eviction is a free drop.
    block_.reset();
    compressed_.reset();
    prefetched_ = false;
    return true;
  }
  if (FaultInjector::Get().ShouldInject(FaultLayer::kBufferPool, 0,
                                        FaultKind::kSpillIoError)) {
    return IoError("bufferpool: injected spill write error (" + path + ")");
  }
  if (compressed_ != nullptr) {
    // Spill in compressed form (§3.4): the file is a fraction of the dense
    // block and a restore skips re-running the planner. The decompressed
    // copy, if any, is discarded — it can be rebuilt from the spill.
    const CompressedMatrixBlock& cb = *compressed_;
    SYSDS_RETURN_IF_ERROR(io::WriteAtomic(path, [&cb](std::ostream& out) {
      return WriteCompressedStream(cb, out);
    }));
    spilled_compressed_ = true;
  } else {
    const MatrixBlock& mb = *block_;
    SYSDS_RETURN_IF_ERROR(io::WriteAtomic(path, [&mb](std::ostream& out) {
      return io::WriteMatrixBinaryStream(mb, out);
    }));
    spilled_compressed_ = false;
  }
  evicted_path_ = path;
  clean_spill_ = true;
  block_.reset();
  compressed_.reset();
  prefetched_ = false;
  return true;
}

StatusOr<bool> MatrixObject::WriteBack(const std::string& path) {
  // Snapshot the payload under the lock, write outside it: blocks are
  // immutable, so the shared_ptr copies stay valid while acquires proceed.
  std::shared_ptr<MatrixBlock> block;
  std::shared_ptr<const CompressedMatrixBlock> compressed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (clean_spill_ || spilling_ ||
        (block_ == nullptr && compressed_ == nullptr)) {
      return false;
    }
    spilling_ = true;
    block = block_;
    compressed = compressed_;
  }
  Status written;
  if (FaultInjector::Get().ShouldInject(FaultLayer::kBufferPool, 0,
                                        FaultKind::kSpillIoError)) {
    written =
        IoError("bufferpool: injected writeback error (" + path + ")");
  } else if (compressed != nullptr) {
    const CompressedMatrixBlock& cb = *compressed;
    written = io::WriteAtomic(path, [&cb](std::ostream& out) {
      return WriteCompressedStream(cb, out);
    });
  } else {
    const MatrixBlock& mb = *block;
    written = io::WriteAtomic(path, [&mb](std::ostream& out) {
      return io::WriteMatrixBinaryStream(mb, out);
    });
  }
  std::lock_guard<std::mutex> lock(mutex_);
  spilling_ = false;
  if (!written.ok()) return written;  // stays dirty: retried next pass
  evicted_path_ = path;
  spilled_compressed_ = compressed != nullptr;
  clean_spill_ = true;
  return true;
}

bool MatrixObject::DropIfClean() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pin_count_ > 0 || !clean_spill_ || evicted_path_.empty() ||
      (block_ == nullptr && compressed_ == nullptr)) {
    return false;
  }
  block_.reset();
  compressed_.reset();
  prefetched_ = false;
  return true;
}

void MatrixObject::PrefetchRestore() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (block_ != nullptr || compressed_ != nullptr || restoring_ ||
      evicted_path_.empty()) {
    return;
  }
  Status s = EnsureRestoredLocked(lock);
  if (s.ok()) {
    prefetched_ = true;
  } else {
    // Silent by design: the next demand acquire retries the read and
    // surfaces the error with full context.
    PrefetchFailures()->Add(1);
  }
}

Status MatrixObject::EnsureRestoredLocked(std::unique_lock<std::mutex>& lock) {
  // Single-flight: if another thread is mid-restore, wait for it instead
  // of issuing a second disk read for the same bytes.
  while (restoring_) restore_cv_.wait(lock);
  if (block_ != nullptr || compressed_ != nullptr) return Status::Ok();
  if (evicted_path_.empty()) {
    return Internal("bufferpool: restore without a spill file");
  }
  restoring_ = true;
  const std::string path = evicted_path_;
  const bool compressed_format = spilled_compressed_;
  lock.unlock();

  const int64_t t0 = NowNanos();
  Status last;
  std::shared_ptr<MatrixBlock> new_block;
  std::shared_ptr<const CompressedMatrixBlock> new_compressed;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) RestoreRetries()->Add(1);
    if (FaultInjector::Get().ShouldInject(FaultLayer::kBufferPool, 0,
                                          FaultKind::kSpillIoError)) {
      last = IoError("bufferpool: injected evict-read error (" + path + ")");
      continue;
    }
    // Checksum verification first (crash-safe spill files): a torn or
    // bit-flipped spill surfaces as kCorrupt — retryable, and the spill
    // file is kept so a later acquire can retry — never as garbage
    // deserialized into a block.
    auto payload = io::ReadVerified(path);
    if (!payload.ok()) {
      last = payload.status();
      continue;
    }
    std::istringstream in(std::move(payload).value());
    if (compressed_format) {
      auto restored = ReadCompressedStream(in);
      if (!restored.ok()) {
        last = restored.status();
        continue;
      }
      new_compressed = std::make_shared<const CompressedMatrixBlock>(
          std::move(restored).value());
    } else {
      auto restored = io::ReadMatrixBinaryStream(in);
      if (!restored.ok()) {
        last = restored.status();
        continue;
      }
      new_block = std::make_shared<MatrixBlock>(std::move(restored).value());
    }
    break;
  }
  RestoreNs()->Observe(NowNanos() - t0);

  lock.lock();
  restoring_ = false;
  restore_cv_.notify_all();
  if (new_block == nullptr && new_compressed == nullptr) {
    // Keep the spill file: the data still exists on disk, so the failure
    // is retryable on the next acquire instead of a permanent loss.
    RestoreFailures()->Add(1);
    return last;
  }
  // Keep the spill file on success too — blocks are immutable, so the
  // file stays a valid copy and the next eviction is a free drop.
  if (new_compressed != nullptr) {
    compressed_ = std::move(new_compressed);
  } else {
    block_ = std::move(new_block);
  }
  clean_spill_ = true;
  return Status::Ok();
}

int64_t MatrixObject::EstimateSizeLocked() const {
  if (block_ == nullptr && compressed_ == nullptr) {
    return MatrixBlock::EstimateSizeInBytes(
        rows_, cols_,
        rows_ * cols_ > 0 ? static_cast<double>(nnz_) / (rows_ * cols_)
                          : 0.0);
  }
  int64_t total = 0;
  if (block_) total += block_->EstimateSizeInBytes();
  if (compressed_) total += compressed_->EstimateSizeInBytes();
  return total;
}

int64_t MatrixObject::EstimateSizeInBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EstimateSizeLocked();
}

std::string MatrixObject::DebugString() const {
  std::ostringstream os;
  os << "matrix " << rows_ << "x" << cols_ << " nnz=" << nnz_;
  std::lock_guard<std::mutex> lock(mutex_);
  if (compressed_) os << " (compressed)";
  os << (block_ || compressed_ ? " (cached)" : " (evicted)");
  return os.str();
}

StatusOr<DataPtr> ListObject::GetByName(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return items_[i];
  }
  return NotFound("list element '" + name + "' not found");
}

std::string ListObject::DebugString() const {
  std::ostringstream os;
  os << "list(" << items_.size() << " elements)";
  return os.str();
}

StatusOr<ScalarObject*> AsScalar(const DataPtr& d, const std::string& what) {
  if (d == nullptr) return RuntimeError(what + ": variable not initialized");
  auto* s = dynamic_cast<ScalarObject*>(d.get());
  if (s == nullptr) {
    return RuntimeError(what + ": expected scalar, got " +
                        DataTypeName(d->GetDataType()));
  }
  return s;
}

StatusOr<MatrixObject*> AsMatrix(const DataPtr& d, const std::string& what) {
  if (d == nullptr) return RuntimeError(what + ": variable not initialized");
  auto* m = dynamic_cast<MatrixObject*>(d.get());
  if (m == nullptr) {
    return RuntimeError(what + ": expected matrix, got " +
                        DataTypeName(d->GetDataType()));
  }
  return m;
}

StatusOr<FrameObject*> AsFrame(const DataPtr& d, const std::string& what) {
  if (d == nullptr) return RuntimeError(what + ": variable not initialized");
  auto* f = dynamic_cast<FrameObject*>(d.get());
  if (f == nullptr) {
    return RuntimeError(what + ": expected frame, got " +
                        DataTypeName(d->GetDataType()));
  }
  return f;
}

}  // namespace sysds
