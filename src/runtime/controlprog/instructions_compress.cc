#include <algorithm>

#include "obs/trace.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/compress/compress_metrics.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/compress/planner.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instructions_cp.h"

namespace sysds {

// compress(X) — workload-aware compression (§3.4). Lenient by design: every
// early-out passes the input through unchanged so a rewrite-injected
// compress can never break a previously-working script.
Status CompressInstr::Execute(ExecutionContext* ec) {
  DataPtr in = ec->Vars().GetOrNull(inputs()[0].name);
  auto pass_through = [&]() {
    if (in != nullptr && inputs()[0].name != outputs()[0].name) {
      ec->SetOutput(outputs()[0], in);
    }
    return Status::Ok();
  };
  if (in == nullptr || in->GetDataType() != DataType::kMatrix) {
    return pass_through();
  }
  auto* m = static_cast<MatrixObject*>(in.get());
  if (m->HasCompressed()) return pass_through();

  const DMLConfig& cfg = ec->Config();
  const int64_t size = m->EstimateSizeInBytes();
  if (size < cfg.compression_min_size_bytes) {
    // Pressure-aware admission (§2.3(3)): under real memory pressure —
    // pool headroom below a few multiples of this matrix — compress even
    // below the static size gate; shrinking live data is cheaper than
    // spilling it.
    BufferPool* pool = MatrixObject::GetBufferPool();
    bool pressured = pool != nullptr && pool->UnderPressure(4 * size);
    if (!pressured) {
      compress_metrics::SkippedSmall()->Add(1);
      return pass_through();
    }
    compress_metrics::PressureCompressions()->Add(1);
  }

  SYSDS_SPAN("compress", "compress_instr");
  SYSDS_ACQUIRE_READ(x, m);
  CompressionSettings settings;
  settings.sample_rows = cfg.compression_sample_rows;
  settings.min_ratio = cfg.compression_min_ratio;
  settings.max_group_cols = cfg.compression_max_group_cols;
  compress_metrics::PlannerInvocations()->Add(1);
  CompressionPlan plan = CompressionPlanner::Plan(x, settings);
  if (!plan.worthwhile) {
    m->Release();
    compress_metrics::SkippedNotWorthwhile()->Add(1);
    return pass_through();
  }
  CompressedMatrixBlock compressed =
      CompressedMatrixBlock::Compress(x, plan, ec->NumThreads());
  // The exact scan can fall short of the sampled estimate (NaN columns,
  // underestimated distinct counts): re-check the achieved ratio before
  // replacing the block.
  double achieved = static_cast<double>(x.EstimateSizeInBytes()) /
                    std::max<int64_t>(1, compressed.EstimateSizeInBytes());
  m->Release();
  if (compressed.NumCompressedColumns() == 0 ||
      achieved < cfg.compression_min_ratio) {
    compress_metrics::SkippedNotWorthwhile()->Add(1);
    return pass_through();
  }
  compress_metrics::CompressedBlocks()->Add(1);
  compress_metrics::RatioX100()->Observe(
      static_cast<int64_t>(achieved * 100.0));
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(compressed)));
  return Status::Ok();
}

Status DecompressInstr::Execute(ExecutionContext* ec) {
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, ec->GetMatrix(inputs()[0]));
  if (!m->HasCompressed()) {
    if (inputs()[0].name != outputs()[0].name) {
      SYSDS_ASSIGN_OR_RETURN(DataPtr in, ec->Resolve(inputs()[0]));
      ec->SetOutput(outputs()[0], std::move(in));
    }
    return Status::Ok();
  }
  SYSDS_SPAN("compress", "decompress_instr");
  // AcquireRead materializes the uncompressed block from the compressed
  // representation; copy it into a plain MatrixObject.
  SYSDS_ACQUIRE_READ(x, m);
  MatrixBlock plain = x;
  m->Release();
  ec->SetOutput(outputs()[0],
                std::make_shared<MatrixObject>(std::move(plain)));
  return Status::Ok();
}

}  // namespace sysds
