#ifndef SYSDS_RUNTIME_CONTROLPROG_INSTRUCTION_H_
#define SYSDS_RUNTIME_CONTROLPROG_INSTRUCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "compiler/hop.h"

namespace sysds {

class ExecutionContext;

/// A runtime instruction operand: either a symbol-table variable reference
/// or an inline literal (the textual form mirrors SystemDS's
/// name·DATATYPE·VALUETYPE operand encoding).
struct Operand {
  std::string name;
  DataType dt = DataType::kScalar;
  ValueType vt = ValueType::kFP64;
  bool is_literal = false;
  LitValue lit;

  static Operand Var(std::string name, DataType dt, ValueType vt);
  static Operand Literal(const LitValue& v);

  std::string ToString() const;
};

/// Base of all runtime instructions. A compiled basic block is a sequence
/// of instructions interpreted by the control program; each instruction
/// reads inputs from (and writes outputs to) the symbol table.
class Instruction {
 public:
  Instruction(std::string opcode, ExecType exec_type)
      : opcode_(std::move(opcode)), exec_type_(exec_type) {}
  virtual ~Instruction() = default;

  virtual Status Execute(ExecutionContext* ec) = 0;

  const std::string& opcode() const { return opcode_; }
  ExecType exec_type() const { return exec_type_; }

  const std::vector<Operand>& inputs() const { return inputs_; }
  const std::vector<Operand>& outputs() const { return outputs_; }
  void AddInput(Operand op) { inputs_.push_back(std::move(op)); }
  void AddOutput(Operand op) { outputs_.push_back(std::move(op)); }

  /// Whether lineage-based reuse may cache/serve this instruction's output
  /// (deterministic, side-effect free, matrix-producing).
  virtual bool IsReusable() const { return false; }

  std::string ToString() const;

 private:
  std::string opcode_;
  ExecType exec_type_;
  std::vector<Operand> inputs_;
  std::vector<Operand> outputs_;
};

using InstructionPtr = std::unique_ptr<Instruction>;

}  // namespace sysds

#endif  // SYSDS_RUNTIME_CONTROLPROG_INSTRUCTION_H_
