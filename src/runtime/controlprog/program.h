#ifndef SYSDS_RUNTIME_CONTROLPROG_PROGRAM_H_
#define SYSDS_RUNTIME_CONTROLPROG_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "compiler/hop.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/controlprog/instruction.h"

namespace sysds {

/// Runtime program blocks (paper §2.3(3)): the compiled program is a tree
/// of blocks interpreted by the control program; basic blocks carry their
/// HOP DAG for dynamic recompilation.
class ProgramBlock {
 public:
  virtual ~ProgramBlock() = default;
  virtual Status Execute(ExecutionContext* ec) = 0;
  /// Renders this block for the `explain` plan output.
  virtual void Explain(std::ostream& os, int indent) const = 0;
};

using ProgramBlockPtr = std::unique_ptr<ProgramBlock>;

/// Loop annotations computed by AnnotateLoopLiveness (src/compiler/
/// liveness.cc) and consumed by the checkpoint/restart subsystem
/// (src/runtime/recovery/): a stable loop id, the loop-carried variables a
/// checkpoint must persist (everything the body writes that survives the
/// iteration), and the read-only matrix/frame inputs whose lineage is
/// validated on resume instead of being re-saved every checkpoint.
struct LoopLiveness {
  int loop_id = -1;  // -1 = not annotated (checkpointing skips the loop)
  std::vector<std::string> checkpoint_vars;
  std::vector<std::string> invariant_reads;
};

/// A straight-line sequence of instructions compiled from one HOP DAG.
class BasicBlock final : public ProgramBlock {
 public:
  Status Execute(ExecutionContext* ec) override;

  std::vector<InstructionPtr>& Instructions() { return instructions_; }
  std::vector<HopPtr>& HopRoots() { return hop_roots_; }
  const std::vector<HopPtr>& HopRoots() const { return hop_roots_; }

  void SetRequiresRecompile(bool v) { requires_recompile_ = v; }
  bool RequiresRecompile() const { return requires_recompile_; }

  void Explain(std::ostream& os, int indent) const override;

 private:
  std::vector<InstructionPtr> instructions_;
  std::vector<HopPtr> hop_roots_;
  bool requires_recompile_ = false;
};

/// A compiled predicate: instructions that produce a scalar in `result_var`.
struct Predicate {
  std::vector<InstructionPtr> instructions;
  std::string result_var;
  std::vector<HopPtr> hop_roots;

  StatusOr<DataPtr> Evaluate(ExecutionContext* ec) const;
};

class IfBlock final : public ProgramBlock {
 public:
  Status Execute(ExecutionContext* ec) override;

  Predicate& GetPredicate() { return predicate_; }
  std::vector<ProgramBlockPtr>& ThenBlocks() { return then_blocks_; }
  std::vector<ProgramBlockPtr>& ElseBlocks() { return else_blocks_; }

  void Explain(std::ostream& os, int indent) const override;

 private:
  Predicate predicate_;
  std::vector<ProgramBlockPtr> then_blocks_;
  std::vector<ProgramBlockPtr> else_blocks_;
};

class WhileBlock final : public ProgramBlock {
 public:
  Status Execute(ExecutionContext* ec) override;

  Predicate& GetPredicate() { return predicate_; }
  std::vector<ProgramBlockPtr>& Body() { return body_; }

  LoopLiveness& Liveness() { return liveness_; }
  const LoopLiveness& Liveness() const { return liveness_; }

  void Explain(std::ostream& os, int indent) const override;

 private:
  Predicate predicate_;
  std::vector<ProgramBlockPtr> body_;
  LoopLiveness liveness_;
};

class ForBlock : public ProgramBlock {
 public:
  Status Execute(ExecutionContext* ec) override;

  void Explain(std::ostream& os, int indent) const override;

  std::string& LoopVar() { return loop_var_; }
  Predicate& From() { return from_; }
  Predicate& To() { return to_; }
  Predicate& Increment() { return increment_; }
  std::vector<ProgramBlockPtr>& Body() { return body_; }

  LoopLiveness& Liveness() { return liveness_; }
  const LoopLiveness& Liveness() const { return liveness_; }

 protected:
  StatusOr<std::vector<double>> EvaluateRange(ExecutionContext* ec) const;

  std::string loop_var_;
  Predicate from_, to_, increment_;
  std::vector<ProgramBlockPtr> body_;
  LoopLiveness liveness_;
};

/// Parallel for (paper §2.3(4)): local multi-threaded workers over disjoint
/// iteration ranges with compare-and-merge of result variables.
class ParForBlock final : public ForBlock {
 public:
  Status Execute(ExecutionContext* ec) override;

  /// Variables assigned in the body that are live afterwards (merged back).
  std::vector<std::string>& ResultVars() { return result_vars_; }

 private:
  std::vector<std::string> result_vars_;
};

/// A user-defined or DML-bodied builtin function.
class FunctionBlock {
 public:
  struct Param {
    std::string name;
    DataType dt = DataType::kScalar;
    ValueType vt = ValueType::kFP64;
    bool has_default = false;
    LitValue default_value;
  };

  std::string name;
  std::vector<Param> params;
  std::vector<Param> returns;
  std::vector<ProgramBlockPtr> body;

  Status Execute(ExecutionContext* caller, const std::vector<Operand>& args,
                 const std::vector<std::string>& arg_names,
                 const std::vector<Operand>& outputs) const;
};

/// The compiled runtime program: top-level blocks plus the function
/// directory (user functions and loaded DML-bodied builtins).
class Program {
 public:
  std::vector<ProgramBlockPtr>& Blocks() { return blocks_; }
  std::map<std::string, std::shared_ptr<FunctionBlock>>& Functions() {
    return functions_;
  }

  StatusOr<const FunctionBlock*> GetFunction(const std::string& name) const;

  Status Execute(ExecutionContext* ec);

  /// Renders the whole runtime plan: functions then top-level blocks.
  std::string Explain() const;

 private:
  std::vector<ProgramBlockPtr> blocks_;
  std::map<std::string, std::shared_ptr<FunctionBlock>> functions_;
};

/// Executes a straight-line instruction sequence with the lineage/reuse
/// wrapper (trace -> probe -> execute -> cache) described in §3.1.
Status ExecuteInstructions(const std::vector<InstructionPtr>& instructions,
                           ExecutionContext* ec);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_CONTROLPROG_PROGRAM_H_
