#ifndef SYSDS_RUNTIME_CONTROLPROG_DATA_H_
#define SYSDS_RUNTIME_CONTROLPROG_DATA_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/frame/frame_block.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/tensor/tensor_block.h"

namespace sysds {

class BufferPool;
class FederatedMatrix;

/// Base of all language-level runtime values held in symbol tables.
class Data {
 public:
  Data();
  virtual ~Data() = default;
  virtual DataType GetDataType() const = 0;
  virtual ValueType GetValueType() const = 0;
  virtual std::string DebugString() const = 0;

  /// Process-unique identity, assigned at construction. Lineage tracing
  /// uses it to identify bound in-memory inputs: two executions that bind
  /// the same object trace the same leaf (and may reuse each other's
  /// intermediates), while distinct objects — even with equal contents —
  /// never alias.
  int64_t ObjectId() const { return object_id_; }

 private:
  int64_t object_id_;
};

using DataPtr = std::shared_ptr<Data>;

/// A scalar value of one of the four scalar value types.
class ScalarObject final : public Data {
 public:
  static DataPtr MakeDouble(double v);
  static DataPtr MakeInt(int64_t v);
  static DataPtr MakeBool(bool v);
  static DataPtr MakeString(std::string v);

  DataType GetDataType() const override { return DataType::kScalar; }
  ValueType GetValueType() const override { return vt_; }

  double AsDouble() const;
  int64_t AsInt() const;
  bool AsBool() const;
  /// String rendering (used by print/toString and operand encoding).
  std::string AsString() const;

  std::string DebugString() const override { return AsString(); }

 private:
  ValueType vt_ = ValueType::kFP64;
  double dval_ = 0.0;
  int64_t ival_ = 0;
  bool bval_ = false;
  std::string sval_;
};

/// A matrix variable: metadata plus the cached MatrixBlock. Participates in
/// the buffer pool: the block may be evicted to disk and restored on
/// acquire (paper §2.3(3), multi-level buffer pool).
class MatrixObject final : public Data {
 public:
  explicit MatrixObject(MatrixBlock block);
  /// Wraps a compressed block (paper §3.4). The compressed form stays
  /// authoritative: AcquireRead materializes an uncompressed copy on demand
  /// for kernels without a compressed implementation, while AcquireCompressed
  /// serves the transparent compressed dispatch in the instructions.
  explicit MatrixObject(CompressedMatrixBlock block);
  ~MatrixObject() override;

  DataType GetDataType() const override { return DataType::kMatrix; }
  ValueType GetValueType() const override { return ValueType::kFP64; }

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  int64_t NonZeros() const { return nnz_; }

  /// Pins the block in memory (restoring from disk if evicted) and returns
  /// it. Callers must not mutate; Release() unpins. Fails (kIoError /
  /// kCorrupt) when an evicted block cannot be restored from its spill
  /// file even after a retry; the object is left unpinned with the spill
  /// file intact, so a later acquire can try again once the I/O fault
  /// clears. Callers must propagate the error — never substitute data.
  StatusOr<const MatrixBlock*> AcquireRead();
  void Release();

  /// True when this object carries a compressed representation (in memory
  /// or spilled in compressed form). Instructions consult this before
  /// attempting compressed dispatch.
  bool HasCompressed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return compressed_ != nullptr || spilled_compressed_;
  }

  /// Pins the compressed block (restoring a compressed spill file if
  /// needed) and returns it; Release() unpins. Fails when the object holds
  /// no compressed representation — gate on HasCompressed().
  StatusOr<const CompressedMatrixBlock*> AcquireCompressed();

  /// True if the in-memory block is currently present.
  bool IsCached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return block_ != nullptr;
  }
  /// True if any in-memory representation (dense or compressed) is present
  /// — the buffer pool's notion of "resident".
  bool HasPayload() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return block_ != nullptr || compressed_ != nullptr;
  }
  int64_t PinCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pin_count_;
  }

  /// Buffer-pool hook: spills the block to `path` and drops it. When the
  /// object is clean (its spill file already holds the payload — blocks
  /// are immutable, so a spill file once written stays valid), the drop is
  /// free and no I/O happens. Returns true if the block was evicted, false
  /// if eviction was skipped (pinned, already evicted, or a write-behind
  /// spill is in flight), or an error when the spill write failed (the
  /// block stays safely in memory; the pool retries once, then re-pins).
  StatusOr<bool> EvictTo(const std::string& path);

  /// Write-behind hook: writes the payload to `path` without dropping it,
  /// marking the object clean so a later eviction is a free drop. Returns
  /// false when there is nothing to do (already clean, no payload, or a
  /// concurrent spill of the same file is in flight). The write runs
  /// outside the object lock — acquires proceed concurrently.
  StatusOr<bool> WriteBack(const std::string& path);

  /// Drops the in-memory payload iff the object is clean and unpinned
  /// (free eviction — no I/O). Returns true when the payload was dropped.
  bool DropIfClean();

  /// Prefetch hook (background thread): restores a spilled payload ahead
  /// of demand. Failures are silent — the next AcquireRead retries and
  /// surfaces the error. Single-flight with demand restores: whichever
  /// starts first reads the file, the other waits or bails.
  void PrefetchRestore();

  int64_t EstimateSizeInBytes() const;

  std::string DebugString() const override;

  /// Process-wide buffer pool used for eviction (set by the context).
  static void SetBufferPool(BufferPool* pool);

  /// Clears the process-wide pool only if it still points at `expected`: a
  /// context tearing down must not null out a newer context's pool.
  static void ClearBufferPool(BufferPool* expected);

  /// The process-wide pool (nullptr when disabled). Pressure consumers
  /// (admission control, the compression rewrite, prefetch hints) use this
  /// to reach Headroom()/Prefetch().
  static BufferPool* GetBufferPool();

 private:
  // Single-flight restore. Requires `lock` held on entry; drops it around
  // the disk read and re-acquires before returning. Concurrent callers
  // coalesce: one performs the read, the rest wait on restore_cv_. Retries
  // a failed read once (fault.bufferpool.restore_retries). Performs no
  // buffer-pool calls (lock ordering: the pool locks pool->object, the
  // acquire path must never nest object->pool). On final failure the
  // error is returned and the spill file is kept so the next acquire can
  // retry (fault.bufferpool.restore_failures). On success the spill file
  // is also kept and the object stays clean: blocks are immutable, so the
  // file remains valid and re-eviction is a free drop.
  Status EnsureRestoredLocked(std::unique_lock<std::mutex>& lock);

  // Sum of the in-memory representations (caller holds mutex_); falls back
  // to the metadata estimate when everything is evicted.
  int64_t EstimateSizeLocked() const;

  mutable std::mutex mutex_;
  std::shared_ptr<MatrixBlock> block_;
  // Compressed representation (§3.4). May coexist with block_ after a
  // decompress-on-demand; eviction then spills only the compressed form.
  std::shared_ptr<const CompressedMatrixBlock> compressed_;
  // True while evicted_path_ holds the compressed serialization format.
  bool spilled_compressed_ = false;
  // True while evicted_path_ holds a valid, current copy of the payload
  // (written by eviction, write-behind, or a kept file after restore).
  bool clean_spill_ = false;
  // True while a thread is reading the spill file (single-flight guard).
  bool restoring_ = false;
  // True while a write-behind thread is writing the spill file (prevents
  // two writers racing on the same temp file).
  bool spilling_ = false;
  // Set by a successful PrefetchRestore, cleared by the next acquire:
  // attributes the avoided miss to the prefetcher (prefetch_hits).
  bool prefetched_ = false;
  std::condition_variable restore_cv_;
  std::string evicted_path_;
  int64_t rows_ = 0, cols_ = 0, nnz_ = 0;
  int64_t pin_count_ = 0;
};

class FrameObject final : public Data {
 public:
  explicit FrameObject(FrameBlock frame) : frame_(std::move(frame)) {}
  DataType GetDataType() const override { return DataType::kFrame; }
  ValueType GetValueType() const override { return ValueType::kString; }
  const FrameBlock& Frame() const { return frame_; }
  FrameBlock& MutableFrame() { return frame_; }
  std::string DebugString() const override { return frame_.ToString(); }

 private:
  FrameBlock frame_;
};

class TensorObject final : public Data {
 public:
  explicit TensorObject(TensorBlock tensor) : tensor_(std::move(tensor)) {}
  DataType GetDataType() const override { return DataType::kTensor; }
  ValueType GetValueType() const override { return tensor_.GetValueType(); }
  const TensorBlock& Tensor() const { return tensor_; }
  std::string DebugString() const override { return tensor_.ToString(); }

 private:
  TensorBlock tensor_;
};

class ListObject final : public Data {
 public:
  DataType GetDataType() const override { return DataType::kList; }
  ValueType GetValueType() const override { return ValueType::kUnknown; }
  void Append(DataPtr item, std::string name = "") {
    items_.push_back(std::move(item));
    names_.push_back(std::move(name));
  }
  int64_t Size() const { return static_cast<int64_t>(items_.size()); }
  const DataPtr& Get(int64_t i) const { return items_[static_cast<size_t>(i)]; }
  StatusOr<DataPtr> GetByName(const std::string& name) const;
  std::string DebugString() const override;

 private:
  std::vector<DataPtr> items_;
  std::vector<std::string> names_;
};

// Convenience casts with error reporting.
StatusOr<ScalarObject*> AsScalar(const DataPtr& d, const std::string& what);
StatusOr<MatrixObject*> AsMatrix(const DataPtr& d, const std::string& what);
StatusOr<FrameObject*> AsFrame(const DataPtr& d, const std::string& what);

// Pins `obj` for reading and binds `ref` (a const MatrixBlock&) to the
// pinned block, propagating restore failures to the caller. The _CLEANUP
// variant runs `cleanup` before returning on failure — use it to Release()
// pins acquired earlier in the same scope.
#define SYSDS_ACQUIRE_READ_CLEANUP(ref, obj, cleanup)            \
  auto SYSDS_CONCAT(_acquire_, __LINE__) = (obj)->AcquireRead(); \
  if (!SYSDS_CONCAT(_acquire_, __LINE__).ok()) {                 \
    cleanup;                                                     \
    return SYSDS_CONCAT(_acquire_, __LINE__).status();           \
  }                                                              \
  const ::sysds::MatrixBlock& ref = **SYSDS_CONCAT(_acquire_, __LINE__)

#define SYSDS_ACQUIRE_READ(ref, obj) \
  SYSDS_ACQUIRE_READ_CLEANUP(ref, obj, (void)0)

}  // namespace sysds

#endif  // SYSDS_RUNTIME_CONTROLPROG_DATA_H_
