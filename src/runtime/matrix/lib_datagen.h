#ifndef SYSDS_RUNTIME_MATRIX_LIB_DATAGEN_H_
#define SYSDS_RUNTIME_MATRIX_LIB_DATAGEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Probability distribution for rand().
enum class RandPdf { kUniform, kNormal };

/// Generates a rows x cols matrix with the given sparsity. Non-zero cells
/// are uniform in [min,max) or N(0,1). Generation is deterministic in the
/// seed and independent of the thread count: each row block derives its own
/// sub-seed (this is also what lineage records, paper §3.1).
StatusOr<MatrixBlock> RandMatrix(int64_t rows, int64_t cols, double min_val,
                                 double max_val, double sparsity,
                                 uint64_t seed, RandPdf pdf, int num_threads);

/// seq(from, to, incr) as a column vector.
StatusOr<MatrixBlock> SeqMatrix(double from, double to, double incr);

/// sample(range, size, replace, seed): column vector of integers in
/// [1, range].
StatusOr<MatrixBlock> SampleMatrix(int64_t range, int64_t size, bool replace,
                                   uint64_t seed);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_DATAGEN_H_
