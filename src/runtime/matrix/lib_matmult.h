#ifndef SYSDS_RUNTIME_MATRIX_LIB_MATMULT_H_
#define SYSDS_RUNTIME_MATRIX_LIB_MATMULT_H_

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Selects the dense GEMM implementation, mirroring the paper's §4.2
/// distinction between SystemDS's portable (Java) kernel and the native
/// BLAS path (SysDS-B): kPortable is a straightforward dot-product-ordered
/// loop nest without tiling (no "packed SIMD"); kNative is the
/// cache-blocked, unrolled, vectorizer-friendly kernel.
enum class GemmKernel {
  kPortable,
  kNative,
};

/// Sets/gets the process-wide dense GEMM kernel (benchmarks toggle this).
void SetGemmKernel(GemmKernel kernel);
GemmKernel GetGemmKernel();

/// C = A %*% B. Dispatches on the input formats (dense/sparse on either
/// side) and shape fast paths (matrix-vector). Inputs must satisfy
/// a.Cols() == b.Rows(); violations return InvalidArgument.
StatusOr<MatrixBlock> MatMult(const MatrixBlock& a, const MatrixBlock& b,
                              int num_threads);

/// Fused transpose-self matrix multiply (the `tsmm` operator the compiler
/// rewrites t(X)%*%X into, §4.2): left => t(X)%*%X, otherwise X%*%t(X).
StatusOr<MatrixBlock> TransposeSelfMatMult(const MatrixBlock& x, bool left,
                                           int num_threads);

/// Fused C = t(A) %*% B without materializing t(A) (the `tsmm2`-style fused
/// call the paper notes TF lacks for sparse inputs).
StatusOr<MatrixBlock> TransposeLeftMatMult(const MatrixBlock& a,
                                           const MatrixBlock& b,
                                           int num_threads);

namespace internal {
// Exposed for the kernel micro-benchmarks (bench_kernels).
void GemmDensePortable(const double* a, const double* b, double* c,
                       int64_t m, int64_t n, int64_t k);
void GemmDenseTiled(const double* a, const double* b, double* c, int64_t m,
                    int64_t n, int64_t k);
}  // namespace internal

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_MATMULT_H_
