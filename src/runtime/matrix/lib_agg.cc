#include "runtime/matrix/lib_agg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.h"

namespace sysds {

namespace {

using agg::CellStats;
using agg::Finalize;
using agg::Kahan;
using agg::SkipZeros;

// Folds all cells of row r into the stats in column order. With skip_zeros,
// v == 0.0 cells (stored or implicit) are skipped so the result is
// independent of the storage format; without it, implicit zeros of sparse
// rows are visited too (min/max/mean must see zeros).
void ScanRow(const MatrixBlock& a, int64_t r, CellStats* stats,
             bool skip_zeros) {
  int64_t cols = a.Cols();
  if (!a.IsSparse()) {
    const double* row = a.DenseRow(r);
    if (skip_zeros) {
      for (int64_t j = 0; j < cols; ++j) {
        double v = row[j];
        if (v != 0.0) stats->Add(v, j);
      }
    } else {
      for (int64_t j = 0; j < cols; ++j) stats->Add(row[j], j);
    }
    return;
  }
  const SparseRow& row = a.SparseData().Row(r);
  if (skip_zeros) {
    for (int64_t p = 0; p < row.Size(); ++p) {
      double v = row.Values()[p];
      if (v != 0.0) stats->Add(v, row.Indexes()[p]);
    }
    return;
  }
  int64_t p = 0;
  for (int64_t j = 0; j < cols; ++j) {
    if (p < row.Size() && row.Indexes()[p] == j) {
      stats->Add(row.Values()[p++], j);
    } else {
      stats->Add(0.0, j);
    }
  }
}

// Column-direction variant: folds row r into the per-column stats array,
// using the row index as the running cell index.
void ScanRowIntoCols(const MatrixBlock& a, int64_t r, CellStats* stats,
                     bool skip_zeros) {
  int64_t cols = a.Cols();
  if (!a.IsSparse()) {
    const double* row = a.DenseRow(r);
    if (skip_zeros) {
      for (int64_t j = 0; j < cols; ++j) {
        double v = row[j];
        if (v != 0.0) stats[j].Add(v, r);
      }
    } else {
      for (int64_t j = 0; j < cols; ++j) stats[j].Add(row[j], r);
    }
    return;
  }
  const SparseRow& row = a.SparseData().Row(r);
  if (skip_zeros) {
    for (int64_t p = 0; p < row.Size(); ++p) {
      double v = row.Values()[p];
      if (v != 0.0) stats[row.Indexes()[p]].Add(v, r);
    }
    return;
  }
  int64_t p = 0;
  for (int64_t j = 0; j < cols; ++j) {
    if (p < row.Size() && row.Indexes()[p] == j) {
      stats[j].Add(row.Values()[p++], r);
    } else {
      stats[j].Add(0.0, r);
    }
  }
}

}  // namespace

StatusOr<double> AggregateAll(AggOpCode op, const MatrixBlock& a,
                              int num_threads) {
  if (op == AggOpCode::kTrace) {
    if (a.Rows() != a.Cols()) {
      return InvalidArgument("trace requires a square matrix");
    }
    Kahan k;
    for (int64_t i = 0; i < a.Rows(); ++i) k.Add(a.Get(i, i));
    return k.sum;
  }
  if (op == AggOpCode::kIndexMax || op == AggOpCode::kIndexMin) {
    return InvalidArgument("indexmax/indexmin are row-wise aggregates");
  }
  if (op == AggOpCode::kSum && !a.IsSparse()) {
    int64_t cols = a.Cols();
    return agg::FullSumChunked(a.Rows(), num_threads, [&]() {
             return [&](int64_t r, Kahan* k) {
               agg::SumDenseRowInto(a.DenseRow(r), cols, k);
             };
           })
        .sum;
  }
  bool skip = SkipZeros(op);
  CellStats stats = agg::FullAggChunked(a.Rows(), num_threads, [&]() {
    return [&](int64_t r, CellStats* s) { ScanRow(a, r, s, skip); };
  });
  return Finalize(op, stats);
}

StatusOr<MatrixBlock> AggregateRowCol(AggOpCode op, AggDirection dir,
                                      const MatrixBlock& a, int num_threads) {
  bool skip = SkipZeros(op);
  if (dir == AggDirection::kRow) {
    MatrixBlock c = MatrixBlock::Dense(a.Rows(), 1);
    bool sum_fast = op == AggOpCode::kSum && !a.IsSparse();
    int64_t cols = a.Cols();
    ThreadPool::Global().ParallelFor(
        0, a.Rows(), PickChunks(a.Rows(), num_threads),
        [&](int64_t rb, int64_t re) {
          for (int64_t r = rb; r < re; ++r) {
            if (sum_fast) {
              c.DenseData()[r] = agg::SumDenseRow(a.DenseRow(r), cols);
              continue;
            }
            CellStats stats;
            ScanRow(a, r, &stats, skip);
            c.DenseData()[r] = Finalize(op, stats);
          }
        },
        "agg");
    c.MarkNnzDirty();
    return c;
  }
  if (dir == AggDirection::kCol) {
    int64_t cols = a.Cols();
    std::vector<CellStats> stats =
        agg::ColAggChunked(a.Rows(), cols, num_threads, [&]() {
          return [&](int64_t r, CellStats* s) {
            ScanRowIntoCols(a, r, s, skip);
          };
        });
    MatrixBlock c = MatrixBlock::Dense(1, cols);
    for (int64_t j = 0; j < cols; ++j) {
      c.DenseData()[j] = Finalize(op, stats[j]);
    }
    c.MarkNnzDirty();
    return c;
  }
  return InvalidArgument("AggregateRowCol requires row or col direction");
}

namespace {
template <typename Fn>
MatrixBlock CumulativeColwise(const MatrixBlock& a, double init, Fn fn) {
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  int64_t cols = a.Cols();
  std::vector<double> acc(static_cast<size_t>(cols), init);
  for (int64_t r = 0; r < a.Rows(); ++r) {
    double* crow = c.DenseRow(r);
    for (int64_t j = 0; j < cols; ++j) {
      acc[j] = fn(acc[j], a.Get(r, j));
      crow[j] = acc[j];
    }
  }
  c.MarkNnzDirty();
  return c;
}
}  // namespace

MatrixBlock CumSum(const MatrixBlock& a) {
  return CumulativeColwise(a, 0.0, [](double x, double y) { return x + y; });
}
MatrixBlock CumProd(const MatrixBlock& a) {
  return CumulativeColwise(a, 1.0, [](double x, double y) { return x * y; });
}
MatrixBlock CumMin(const MatrixBlock& a) {
  return CumulativeColwise(a, std::numeric_limits<double>::infinity(),
                           [](double x, double y) { return std::fmin(x, y); });
}
MatrixBlock CumMax(const MatrixBlock& a) {
  return CumulativeColwise(a, -std::numeric_limits<double>::infinity(),
                           [](double x, double y) { return std::fmax(x, y); });
}

}  // namespace sysds
