#include "runtime/matrix/lib_agg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.h"

namespace sysds {

namespace {

// Kahan-compensated accumulator (SystemDS KahanPlus).
struct Kahan {
  double sum = 0.0;
  double corr = 0.0;
  void Add(double v) {
    double y = v - corr;
    double t = sum + y;
    corr = (t - sum) - y;
    sum = t;
  }
};

struct RowStats {
  Kahan sum;
  Kahan sumsq;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t nnz = 0;
  int64_t count = 0;
  int64_t argmax = 0;
  int64_t argmin = 0;
  double argmax_val = -std::numeric_limits<double>::infinity();
  double argmin_val = std::numeric_limits<double>::infinity();

  void Add(double v, int64_t idx) {
    sum.Add(v);
    sumsq.Add(v * v);
    min = std::fmin(min, v);
    max = std::fmax(max, v);
    nnz += (v != 0.0);
    ++count;
    if (v > argmax_val) { argmax_val = v; argmax = idx; }
    if (v < argmin_val) { argmin_val = v; argmin = idx; }
  }
};

double Finalize(AggOpCode op, const RowStats& s) {
  switch (op) {
    case AggOpCode::kSum: return s.sum.sum;
    case AggOpCode::kSumSq: return s.sumsq.sum;
    case AggOpCode::kMean: return s.count ? s.sum.sum / s.count : 0.0;
    case AggOpCode::kVar: {
      if (s.count < 2) return 0.0;
      double mean = s.sum.sum / s.count;
      return (s.sumsq.sum - s.count * mean * mean) / (s.count - 1);
    }
    case AggOpCode::kSd: {
      if (s.count < 2) return 0.0;
      double mean = s.sum.sum / s.count;
      double var = (s.sumsq.sum - s.count * mean * mean) / (s.count - 1);
      return std::sqrt(std::fmax(0.0, var));
    }
    case AggOpCode::kMin: return s.count ? s.min : 0.0;
    case AggOpCode::kMax: return s.count ? s.max : 0.0;
    case AggOpCode::kNnz: return static_cast<double>(s.nnz);
    case AggOpCode::kIndexMax: return static_cast<double>(s.argmax + 1);
    case AggOpCode::kIndexMin: return static_cast<double>(s.argmin + 1);
    case AggOpCode::kTrace: return s.sum.sum;
  }
  return std::nan("");
}

// Folds all cells of row r into the stats, including implicit zeros of
// sparse rows (min/max/mean must see zeros).
void ScanRow(const MatrixBlock& a, int64_t r, RowStats* stats) {
  int64_t cols = a.Cols();
  if (!a.IsSparse()) {
    const double* row = a.DenseRow(r);
    for (int64_t j = 0; j < cols; ++j) stats->Add(row[j], j);
  } else {
    const SparseRow& row = a.SparseData().Row(r);
    int64_t p = 0;
    for (int64_t j = 0; j < cols; ++j) {
      if (p < row.Size() && row.Indexes()[p] == j) {
        stats->Add(row.Values()[p++], j);
      } else {
        stats->Add(0.0, j);
      }
    }
  }
}

}  // namespace

StatusOr<double> AggregateAll(AggOpCode op, const MatrixBlock& a,
                              int num_threads) {
  (void)num_threads;
  if (op == AggOpCode::kTrace) {
    if (a.Rows() != a.Cols()) {
      return InvalidArgument("trace requires a square matrix");
    }
    Kahan k;
    for (int64_t i = 0; i < a.Rows(); ++i) k.Add(a.Get(i, i));
    return k.sum;
  }
  if (op == AggOpCode::kIndexMax || op == AggOpCode::kIndexMin) {
    return InvalidArgument("indexmax/indexmin are row-wise aggregates");
  }
  // Fast sparse path for sum-like aggregates (zeros contribute nothing).
  if (a.IsSparse() &&
      (op == AggOpCode::kSum || op == AggOpCode::kSumSq ||
       op == AggOpCode::kNnz)) {
    Kahan k;
    int64_t nnz = 0;
    for (int64_t r = 0; r < a.Rows(); ++r) {
      const SparseRow& row = a.SparseData().Row(r);
      for (int64_t p = 0; p < row.Size(); ++p) {
        double v = row.Values()[p];
        k.Add(op == AggOpCode::kSumSq ? v * v : v);
        nnz += (v != 0.0);
      }
    }
    if (op == AggOpCode::kNnz) return static_cast<double>(nnz);
    return k.sum;
  }
  RowStats stats;
  for (int64_t r = 0; r < a.Rows(); ++r) ScanRow(a, r, &stats);
  return Finalize(op, stats);
}

StatusOr<MatrixBlock> AggregateRowCol(AggOpCode op, AggDirection dir,
                                      const MatrixBlock& a, int num_threads) {
  if (dir == AggDirection::kRow) {
    MatrixBlock c = MatrixBlock::Dense(a.Rows(), 1);
    ThreadPool::Global().ParallelFor(
        0, a.Rows(),
        num_threads <= 1 ? 1 : std::min<int64_t>(num_threads, a.Rows()),
        [&](int64_t rb, int64_t re) {
          for (int64_t r = rb; r < re; ++r) {
            RowStats stats;
            ScanRow(a, r, &stats);
            c.DenseData()[r] = Finalize(op, stats);
          }
        });
    c.MarkNnzDirty();
    return c;
  }
  if (dir == AggDirection::kCol) {
    // Column aggregates: one stats object per column, single pass over rows.
    int64_t cols = a.Cols();
    std::vector<RowStats> stats(static_cast<size_t>(cols));
    for (int64_t r = 0; r < a.Rows(); ++r) {
      if (!a.IsSparse()) {
        const double* row = a.DenseRow(r);
        for (int64_t j = 0; j < cols; ++j) stats[j].Add(row[j], r);
      } else {
        const SparseRow& row = a.SparseData().Row(r);
        int64_t p = 0;
        for (int64_t j = 0; j < cols; ++j) {
          if (p < row.Size() && row.Indexes()[p] == j) {
            stats[j].Add(row.Values()[p++], r);
          } else {
            stats[j].Add(0.0, r);
          }
        }
      }
    }
    MatrixBlock c = MatrixBlock::Dense(1, cols);
    for (int64_t j = 0; j < cols; ++j) {
      c.DenseData()[j] = Finalize(op, stats[j]);
    }
    c.MarkNnzDirty();
    return c;
  }
  return InvalidArgument("AggregateRowCol requires row or col direction");
}

namespace {
template <typename Fn>
MatrixBlock CumulativeColwise(const MatrixBlock& a, double init, Fn fn) {
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  int64_t cols = a.Cols();
  std::vector<double> acc(static_cast<size_t>(cols), init);
  for (int64_t r = 0; r < a.Rows(); ++r) {
    double* crow = c.DenseRow(r);
    for (int64_t j = 0; j < cols; ++j) {
      acc[j] = fn(acc[j], a.Get(r, j));
      crow[j] = acc[j];
    }
  }
  c.MarkNnzDirty();
  return c;
}
}  // namespace

MatrixBlock CumSum(const MatrixBlock& a) {
  return CumulativeColwise(a, 0.0, [](double x, double y) { return x + y; });
}
MatrixBlock CumProd(const MatrixBlock& a) {
  return CumulativeColwise(a, 1.0, [](double x, double y) { return x * y; });
}
MatrixBlock CumMin(const MatrixBlock& a) {
  return CumulativeColwise(a, std::numeric_limits<double>::infinity(),
                           [](double x, double y) { return std::fmin(x, y); });
}
MatrixBlock CumMax(const MatrixBlock& a) {
  return CumulativeColwise(a, -std::numeric_limits<double>::infinity(),
                           [](double x, double y) { return std::fmax(x, y); });
}

}  // namespace sysds
