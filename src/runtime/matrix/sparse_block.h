#ifndef SYSDS_RUNTIME_MATRIX_SPARSE_BLOCK_H_
#define SYSDS_RUNTIME_MATRIX_SPARSE_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sysds {

/// One row of a sparse matrix in MCSR layout: sorted column indexes plus
/// values. Kept simple (two parallel vectors) for cache-friendly scans.
class SparseRow {
 public:
  int64_t Size() const { return static_cast<int64_t>(indexes_.size()); }
  bool Empty() const { return indexes_.empty(); }

  const int64_t* Indexes() const { return indexes_.data(); }
  const double* Values() const { return values_.data(); }
  int64_t* MutableIndexes() { return indexes_.data(); }
  double* MutableValues() { return values_.data(); }

  /// Appends a nonzero with column index >= all existing ones (fast path
  /// for readers and kernels that produce sorted output).
  void Append(int64_t col, double val) {
    indexes_.push_back(col);
    values_.push_back(val);
  }

  /// Sets (insert/update/delete-on-zero) maintaining sorted order.
  void Set(int64_t col, double val);

  /// Returns the value at the column, or 0 if not present.
  double Get(int64_t col) const;

  void Clear() {
    indexes_.clear();
    values_.clear();
  }

  void Reserve(int64_t n) {
    indexes_.reserve(n);
    values_.reserve(n);
  }

  /// Sorts entries by column index (for kernels that append out of order).
  void SortByIndex();

 private:
  std::vector<int64_t> indexes_;
  std::vector<double> values_;
};

/// Modified-CSR sparse block: a vector of independently grown rows. This is
/// SystemDS's default sparse format for incremental updates; conversion to a
/// contiguous CSR view is provided for read-heavy kernels.
class SparseBlock {
 public:
  SparseBlock() = default;
  explicit SparseBlock(int64_t rows) : rows_(rows) {}

  void Reset(int64_t rows) {
    rows_.assign(static_cast<size_t>(rows), SparseRow());
  }

  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }

  SparseRow& Row(int64_t r) { return rows_[static_cast<size_t>(r)]; }
  const SparseRow& Row(int64_t r) const { return rows_[static_cast<size_t>(r)]; }

  int64_t CountNonZeros() const;

 private:
  std::vector<SparseRow> rows_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_SPARSE_BLOCK_H_
