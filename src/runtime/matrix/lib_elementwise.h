#ifndef SYSDS_RUNTIME_MATRIX_LIB_ELEMENTWISE_H_
#define SYSDS_RUNTIME_MATRIX_LIB_ELEMENTWISE_H_

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

/// C = a op b with R-style broadcasting: equal shapes, column-vector
/// broadcast (b is rows x 1), or row-vector broadcast (b is 1 x cols); the
/// vector may be on either side. Shape violations return InvalidArgument.
StatusOr<MatrixBlock> BinaryMatrixMatrix(BinaryOpCode op,
                                         const MatrixBlock& a,
                                         const MatrixBlock& b,
                                         int num_threads);

/// C = a op scalar (scalar on the right); use swap for left scalars of
/// non-commutative ops at the call site, or pass scalar_left=true.
MatrixBlock BinaryMatrixScalar(BinaryOpCode op, const MatrixBlock& a,
                               double scalar, bool scalar_left,
                               int num_threads);

/// C = op(a) elementwise; sparse-safe ops keep the sparse format.
MatrixBlock UnaryMatrix(UnaryOpCode op, const MatrixBlock& a,
                        int num_threads);

/// C = ifelse(cond, a, b) with scalar or matrix arms (matching shapes).
StatusOr<MatrixBlock> TernaryIfElse(const MatrixBlock& cond,
                                    const MatrixBlock* a, double a_scalar,
                                    const MatrixBlock* b, double b_scalar,
                                    int num_threads);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_ELEMENTWISE_H_
