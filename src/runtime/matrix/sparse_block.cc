#include "runtime/matrix/sparse_block.h"

#include <algorithm>
#include <numeric>

namespace sysds {

void SparseRow::Set(int64_t col, double val) {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), col);
  size_t pos = static_cast<size_t>(it - indexes_.begin());
  if (it != indexes_.end() && *it == col) {
    if (val == 0.0) {
      indexes_.erase(it);
      values_.erase(values_.begin() + pos);
    } else {
      values_[pos] = val;
    }
  } else if (val != 0.0) {
    indexes_.insert(it, col);
    values_.insert(values_.begin() + pos, val);
  }
}

double SparseRow::Get(int64_t col) const {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), col);
  if (it != indexes_.end() && *it == col) {
    return values_[static_cast<size_t>(it - indexes_.begin())];
  }
  return 0.0;
}

void SparseRow::SortByIndex() {
  if (std::is_sorted(indexes_.begin(), indexes_.end())) return;
  std::vector<size_t> perm(indexes_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [this](size_t a, size_t b) { return indexes_[a] < indexes_[b]; });
  std::vector<int64_t> idx(indexes_.size());
  std::vector<double> val(values_.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    idx[i] = indexes_[perm[i]];
    val[i] = values_[perm[i]];
  }
  indexes_ = std::move(idx);
  values_ = std::move(val);
}

int64_t SparseBlock::CountNonZeros() const {
  int64_t nnz = 0;
  for (const auto& r : rows_) nnz += r.Size();
  return nnz;
}

}  // namespace sysds
