#include "runtime/matrix/op_codes.h"

namespace sysds {

const char* BinaryOpName(BinaryOpCode op) {
  switch (op) {
    case BinaryOpCode::kAdd: return "+";
    case BinaryOpCode::kSub: return "-";
    case BinaryOpCode::kMul: return "*";
    case BinaryOpCode::kDiv: return "/";
    case BinaryOpCode::kPow: return "^";
    case BinaryOpCode::kMod: return "%%";
    case BinaryOpCode::kIntDiv: return "%/%";
    case BinaryOpCode::kMin: return "min";
    case BinaryOpCode::kMax: return "max";
    case BinaryOpCode::kEqual: return "==";
    case BinaryOpCode::kNotEqual: return "!=";
    case BinaryOpCode::kLess: return "<";
    case BinaryOpCode::kLessEqual: return "<=";
    case BinaryOpCode::kGreater: return ">";
    case BinaryOpCode::kGreaterEqual: return ">=";
    case BinaryOpCode::kAnd: return "&";
    case BinaryOpCode::kOr: return "|";
    case BinaryOpCode::kXor: return "xor";
  }
  return "?";
}

const char* UnaryOpName(UnaryOpCode op) {
  switch (op) {
    case UnaryOpCode::kExp: return "exp";
    case UnaryOpCode::kLog: return "log";
    case UnaryOpCode::kSqrt: return "sqrt";
    case UnaryOpCode::kAbs: return "abs";
    case UnaryOpCode::kRound: return "round";
    case UnaryOpCode::kFloor: return "floor";
    case UnaryOpCode::kCeil: return "ceil";
    case UnaryOpCode::kSin: return "sin";
    case UnaryOpCode::kCos: return "cos";
    case UnaryOpCode::kTan: return "tan";
    case UnaryOpCode::kSign: return "sign";
    case UnaryOpCode::kNot: return "!";
    case UnaryOpCode::kNegate: return "uminus";
    case UnaryOpCode::kSigmoid: return "sigmoid";
  }
  return "?";
}

std::string AggOpName(AggOpCode op, AggDirection dir) {
  std::string base;
  switch (op) {
    case AggOpCode::kSum: base = "sum"; break;
    case AggOpCode::kSumSq: base = "sumsq"; break;
    case AggOpCode::kMean: base = "mean"; break;
    case AggOpCode::kVar: base = "var"; break;
    case AggOpCode::kSd: base = "sd"; break;
    case AggOpCode::kMin: base = "min"; break;
    case AggOpCode::kMax: base = "max"; break;
    case AggOpCode::kNnz: base = "nnz"; break;
    case AggOpCode::kTrace: base = "trace"; break;
    case AggOpCode::kIndexMax: base = "imax"; break;
    case AggOpCode::kIndexMin: base = "imin"; break;
  }
  switch (dir) {
    case AggDirection::kAll: return "ua" + base;
    case AggDirection::kRow: return "uar" + base;
    case AggDirection::kCol: return "uac" + base;
  }
  return base;
}

bool ParseBinaryOpcode(const std::string& op, BinaryOpCode* out) {
  if (op == "+") *out = BinaryOpCode::kAdd;
  else if (op == "-") *out = BinaryOpCode::kSub;
  else if (op == "*") *out = BinaryOpCode::kMul;
  else if (op == "/") *out = BinaryOpCode::kDiv;
  else if (op == "^") *out = BinaryOpCode::kPow;
  else if (op == "%%") *out = BinaryOpCode::kMod;
  else if (op == "%/%") *out = BinaryOpCode::kIntDiv;
  else if (op == "min") *out = BinaryOpCode::kMin;
  else if (op == "max") *out = BinaryOpCode::kMax;
  else if (op == "==") *out = BinaryOpCode::kEqual;
  else if (op == "!=") *out = BinaryOpCode::kNotEqual;
  else if (op == "<") *out = BinaryOpCode::kLess;
  else if (op == "<=") *out = BinaryOpCode::kLessEqual;
  else if (op == ">") *out = BinaryOpCode::kGreater;
  else if (op == ">=") *out = BinaryOpCode::kGreaterEqual;
  else if (op == "&") *out = BinaryOpCode::kAnd;
  else if (op == "|") *out = BinaryOpCode::kOr;
  else if (op == "xor") *out = BinaryOpCode::kXor;
  else return false;
  return true;
}

bool ParseUnaryOpcode(const std::string& op, UnaryOpCode* out) {
  if (op == "exp") *out = UnaryOpCode::kExp;
  else if (op == "log") *out = UnaryOpCode::kLog;
  else if (op == "sqrt") *out = UnaryOpCode::kSqrt;
  else if (op == "abs") *out = UnaryOpCode::kAbs;
  else if (op == "round") *out = UnaryOpCode::kRound;
  else if (op == "floor") *out = UnaryOpCode::kFloor;
  else if (op == "ceil") *out = UnaryOpCode::kCeil;
  else if (op == "sin") *out = UnaryOpCode::kSin;
  else if (op == "cos") *out = UnaryOpCode::kCos;
  else if (op == "tan") *out = UnaryOpCode::kTan;
  else if (op == "sign") *out = UnaryOpCode::kSign;
  else if (op == "!") *out = UnaryOpCode::kNot;
  else if (op == "uminus") *out = UnaryOpCode::kNegate;
  else if (op == "sigmoid") *out = UnaryOpCode::kSigmoid;
  else return false;
  return true;
}

bool ParseAggOpcode(const std::string& op, AggOpCode* out, AggDirection* dir) {
  if (op.rfind("ua", 0) != 0) return false;
  *dir = AggDirection::kAll;
  std::string base = op.substr(2);
  if (op.rfind("uar", 0) == 0) {
    *dir = AggDirection::kRow;
    base = op.substr(3);
  } else if (op.rfind("uac", 0) == 0) {
    *dir = AggDirection::kCol;
    base = op.substr(3);
  }
  if (base == "sum") *out = AggOpCode::kSum;
  else if (base == "sumsq") *out = AggOpCode::kSumSq;
  else if (base == "mean") *out = AggOpCode::kMean;
  else if (base == "var") *out = AggOpCode::kVar;
  else if (base == "sd") *out = AggOpCode::kSd;
  else if (base == "min") *out = AggOpCode::kMin;
  else if (base == "max") *out = AggOpCode::kMax;
  else if (base == "nz" || base == "nnz") *out = AggOpCode::kNnz;
  else if (base == "trace") *out = AggOpCode::kTrace;
  else if (base == "imax") *out = AggOpCode::kIndexMax;
  else if (base == "imin") *out = AggOpCode::kIndexMin;
  else return false;
  return true;
}

bool IsSparseSafeBinary(BinaryOpCode op) {
  // Only ops where op(x,0)==0 AND op(0,x)==0 are fully sparse-safe for
  // sparse-sparse execution (multiply); add/sub are handled as sparse
  // merges separately.
  return op == BinaryOpCode::kMul;
}

bool IsSparseSafeUnary(UnaryOpCode op) {
  switch (op) {
    case UnaryOpCode::kSqrt:
    case UnaryOpCode::kAbs:
    case UnaryOpCode::kRound:
    case UnaryOpCode::kFloor:
    case UnaryOpCode::kCeil:
    case UnaryOpCode::kSin:
    case UnaryOpCode::kTan:
    case UnaryOpCode::kSign:
    case UnaryOpCode::kNegate:
      return true;
    default:
      return false;
  }
}

}  // namespace sysds
