#include "runtime/matrix/op_codes.h"

namespace sysds {

const char* BinaryOpName(BinaryOpCode op) {
  switch (op) {
    case BinaryOpCode::kAdd: return "+";
    case BinaryOpCode::kSub: return "-";
    case BinaryOpCode::kMul: return "*";
    case BinaryOpCode::kDiv: return "/";
    case BinaryOpCode::kPow: return "^";
    case BinaryOpCode::kMod: return "%%";
    case BinaryOpCode::kIntDiv: return "%/%";
    case BinaryOpCode::kMin: return "min";
    case BinaryOpCode::kMax: return "max";
    case BinaryOpCode::kEqual: return "==";
    case BinaryOpCode::kNotEqual: return "!=";
    case BinaryOpCode::kLess: return "<";
    case BinaryOpCode::kLessEqual: return "<=";
    case BinaryOpCode::kGreater: return ">";
    case BinaryOpCode::kGreaterEqual: return ">=";
    case BinaryOpCode::kAnd: return "&";
    case BinaryOpCode::kOr: return "|";
    case BinaryOpCode::kXor: return "xor";
  }
  return "?";
}

const char* UnaryOpName(UnaryOpCode op) {
  switch (op) {
    case UnaryOpCode::kExp: return "exp";
    case UnaryOpCode::kLog: return "log";
    case UnaryOpCode::kSqrt: return "sqrt";
    case UnaryOpCode::kAbs: return "abs";
    case UnaryOpCode::kRound: return "round";
    case UnaryOpCode::kFloor: return "floor";
    case UnaryOpCode::kCeil: return "ceil";
    case UnaryOpCode::kSin: return "sin";
    case UnaryOpCode::kCos: return "cos";
    case UnaryOpCode::kTan: return "tan";
    case UnaryOpCode::kSign: return "sign";
    case UnaryOpCode::kNot: return "!";
    case UnaryOpCode::kNegate: return "uminus";
    case UnaryOpCode::kSigmoid: return "sigmoid";
  }
  return "?";
}

std::string AggOpName(AggOpCode op, AggDirection dir) {
  std::string base;
  switch (op) {
    case AggOpCode::kSum: base = "sum"; break;
    case AggOpCode::kSumSq: base = "sumsq"; break;
    case AggOpCode::kMean: base = "mean"; break;
    case AggOpCode::kVar: base = "var"; break;
    case AggOpCode::kSd: base = "sd"; break;
    case AggOpCode::kMin: base = "min"; break;
    case AggOpCode::kMax: base = "max"; break;
    case AggOpCode::kNnz: base = "nnz"; break;
    case AggOpCode::kTrace: base = "trace"; break;
    case AggOpCode::kIndexMax: base = "imax"; break;
    case AggOpCode::kIndexMin: base = "imin"; break;
  }
  switch (dir) {
    case AggDirection::kAll: return "ua" + base;
    case AggDirection::kRow: return "uar" + base;
    case AggDirection::kCol: return "uac" + base;
  }
  return base;
}

double ApplyBinary(BinaryOpCode op, double a, double b) {
  switch (op) {
    case BinaryOpCode::kAdd: return a + b;
    case BinaryOpCode::kSub: return a - b;
    case BinaryOpCode::kMul: return a * b;
    case BinaryOpCode::kDiv: return a / b;
    case BinaryOpCode::kPow: return std::pow(a, b);
    case BinaryOpCode::kMod: {
      if (b == 0.0) return std::nan("");
      double r = std::fmod(a, b);
      if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
      return r;
    }
    case BinaryOpCode::kIntDiv: return std::floor(a / b);
    case BinaryOpCode::kMin: return std::fmin(a, b);
    case BinaryOpCode::kMax: return std::fmax(a, b);
    case BinaryOpCode::kEqual: return a == b ? 1.0 : 0.0;
    case BinaryOpCode::kNotEqual: return a != b ? 1.0 : 0.0;
    case BinaryOpCode::kLess: return a < b ? 1.0 : 0.0;
    case BinaryOpCode::kLessEqual: return a <= b ? 1.0 : 0.0;
    case BinaryOpCode::kGreater: return a > b ? 1.0 : 0.0;
    case BinaryOpCode::kGreaterEqual: return a >= b ? 1.0 : 0.0;
    case BinaryOpCode::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case BinaryOpCode::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case BinaryOpCode::kXor: return ((a != 0.0) != (b != 0.0)) ? 1.0 : 0.0;
  }
  return std::nan("");
}

double ApplyUnary(UnaryOpCode op, double a) {
  switch (op) {
    case UnaryOpCode::kExp: return std::exp(a);
    case UnaryOpCode::kLog: return std::log(a);
    case UnaryOpCode::kSqrt: return std::sqrt(a);
    case UnaryOpCode::kAbs: return std::fabs(a);
    case UnaryOpCode::kRound: return std::round(a);
    case UnaryOpCode::kFloor: return std::floor(a);
    case UnaryOpCode::kCeil: return std::ceil(a);
    case UnaryOpCode::kSin: return std::sin(a);
    case UnaryOpCode::kCos: return std::cos(a);
    case UnaryOpCode::kTan: return std::tan(a);
    case UnaryOpCode::kSign: return a > 0 ? 1.0 : (a < 0 ? -1.0 : 0.0);
    case UnaryOpCode::kNot: return a == 0.0 ? 1.0 : 0.0;
    case UnaryOpCode::kNegate: return -a;
    case UnaryOpCode::kSigmoid: return 1.0 / (1.0 + std::exp(-a));
  }
  return std::nan("");
}

bool IsSparseSafeBinary(BinaryOpCode op) {
  // Only ops where op(x,0)==0 AND op(0,x)==0 are fully sparse-safe for
  // sparse-sparse execution (multiply); add/sub are handled as sparse
  // merges separately.
  return op == BinaryOpCode::kMul;
}

bool IsSparseSafeUnary(UnaryOpCode op) {
  switch (op) {
    case UnaryOpCode::kSqrt:
    case UnaryOpCode::kAbs:
    case UnaryOpCode::kRound:
    case UnaryOpCode::kFloor:
    case UnaryOpCode::kCeil:
    case UnaryOpCode::kSin:
    case UnaryOpCode::kTan:
    case UnaryOpCode::kSign:
    case UnaryOpCode::kNegate:
      return true;
    default:
      return false;
  }
}

}  // namespace sysds
