#include "runtime/matrix/lib_fused.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/matrix/lib_agg.h"

namespace sysds {

namespace {

std::string RefStr(const FusedRef& r) {
  char c = r.kind == FusedRef::kInput ? 'i'
           : r.kind == FusedRef::kStep ? 't'
                                       : 's';
  return std::string(1, c) + std::to_string(r.idx);
}

bool ParseRef(const std::string& s, FusedRef* out) {
  if (s.size() < 2) return false;
  switch (s[0]) {
    case 'i': out->kind = FusedRef::kInput; break;
    case 't': out->kind = FusedRef::kStep; break;
    case 's': out->kind = FusedRef::kScalar; break;
    default: return false;
  }
  for (size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  out->idx = std::stoi(s.substr(1));
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *out = std::stoi(s);
  return true;
}

}  // namespace

std::string FusedPlan::Serialize() const {
  std::string out = "in" + std::to_string(num_inputs) + ";sc" +
                    std::to_string(num_scalars) + ";k";
  for (FusedInputKind k : input_kinds) {
    out += k == FusedInputKind::kFull ? 'F'
           : k == FusedInputKind::kColVec ? 'C'
                                          : 'R';
  }
  for (const FusedStep& st : steps) {
    out += ';';
    if (st.is_binary) {
      out += 'b';
      out += BinaryOpName(st.bop);
      out += ':';
      out += RefStr(st.a) + "," + RefStr(st.b);
    } else {
      out += 'u';
      out += UnaryOpName(st.uop);
      out += ':';
      out += RefStr(st.a);
    }
  }
  out += ";out:t" + std::to_string(root);
  if (has_agg) out += ";agg:" + AggOpName(agg, agg_dir);
  return out;
}

StatusOr<FusedPlan> FusedPlan::Parse(const std::string& text) {
  FusedPlan plan;
  bool saw_out = false;
  for (const std::string& part : Split(text, ';')) {
    if (part.empty()) {
      return InvalidArgument("fused plan: empty segment in '" + text + "'");
    }
    if (part.rfind("in", 0) == 0 && part.size() > 2 &&
        std::isdigit(static_cast<unsigned char>(part[2]))) {
      if (!ParseInt(part.substr(2), &plan.num_inputs)) {
        return InvalidArgument("fused plan: bad input count '" + part + "'");
      }
    } else if (part.rfind("sc", 0) == 0) {
      if (!ParseInt(part.substr(2), &plan.num_scalars)) {
        return InvalidArgument("fused plan: bad scalar count '" + part + "'");
      }
    } else if (part[0] == 'k') {
      for (size_t i = 1; i < part.size(); ++i) {
        switch (part[i]) {
          case 'F': plan.input_kinds.push_back(FusedInputKind::kFull); break;
          case 'C': plan.input_kinds.push_back(FusedInputKind::kColVec); break;
          case 'R': plan.input_kinds.push_back(FusedInputKind::kRowVec); break;
          default:
            return InvalidArgument("fused plan: bad input kind '" + part + "'");
        }
      }
    } else if (part.rfind("out:t", 0) == 0) {
      if (!ParseInt(part.substr(5), &plan.root)) {
        return InvalidArgument("fused plan: bad root '" + part + "'");
      }
      saw_out = true;
    } else if (part.rfind("agg:", 0) == 0) {
      if (!ParseAggOpcode(part.substr(4), &plan.agg, &plan.agg_dir)) {
        return InvalidArgument("fused plan: bad aggregate '" + part + "'");
      }
      plan.has_agg = true;
    } else if (part[0] == 'b' || part[0] == 'u') {
      size_t colon = part.find(':');
      if (colon == std::string::npos || colon < 2) {
        return InvalidArgument("fused plan: bad step '" + part + "'");
      }
      FusedStep st;
      std::string opname = part.substr(1, colon - 1);
      std::vector<std::string> refs = Split(part.substr(colon + 1), ',');
      if (part[0] == 'b') {
        st.is_binary = true;
        if (!ParseBinaryOpcode(opname, &st.bop) || refs.size() != 2 ||
            !ParseRef(refs[0], &st.a) || !ParseRef(refs[1], &st.b)) {
          return InvalidArgument("fused plan: bad binary step '" + part + "'");
        }
      } else {
        st.is_binary = false;
        if (!ParseUnaryOpcode(opname, &st.uop) || refs.size() != 1 ||
            !ParseRef(refs[0], &st.a)) {
          return InvalidArgument("fused plan: bad unary step '" + part + "'");
        }
      }
      plan.steps.push_back(st);
    } else {
      return InvalidArgument("fused plan: unknown segment '" + part + "'");
    }
  }
  if (!saw_out) {
    return InvalidArgument("fused plan: missing out segment in '" + text + "'");
  }
  SYSDS_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Status FusedPlan::Validate() const {
  if (static_cast<int>(input_kinds.size()) != num_inputs) {
    return InvalidArgument("fused plan: input kind count mismatch");
  }
  if (steps.empty()) return InvalidArgument("fused plan: no steps");
  auto check_ref = [&](const FusedRef& r, size_t step_idx) {
    switch (r.kind) {
      case FusedRef::kInput:
        return r.idx >= 0 && r.idx < num_inputs;
      case FusedRef::kScalar:
        return r.idx >= 0 && r.idx < num_scalars;
      case FusedRef::kStep:
        return r.idx >= 0 && r.idx < static_cast<int>(step_idx);
    }
    return false;
  };
  for (size_t s = 0; s < steps.size(); ++s) {
    if (!check_ref(steps[s].a, s) ||
        (steps[s].is_binary && !check_ref(steps[s].b, s))) {
      return InvalidArgument("fused plan: out-of-range operand reference");
    }
  }
  if (root < 0 || root >= static_cast<int>(steps.size())) {
    return InvalidArgument("fused plan: root out of range");
  }
  if (has_agg &&
      (agg == AggOpCode::kTrace || agg == AggOpCode::kIndexMax ||
       agg == AggOpCode::kIndexMin)) {
    return InvalidArgument("fused plan: unsupported aggregate");
  }
  return Status::Ok();
}

namespace {

using agg::CellStats;

int64_t CountRowNnz(const double* row, int64_t cols) {
  int64_t nnz = 0;
  for (int64_t j = 0; j < cols; ++j) nnz += (row[j] != 0.0);
  return nnz;
}

// Dense-row scans mirroring lib_agg's ScanRow dense branch exactly, so
// fused aggregates fold the same value sequence as the unfused kernel
// scanning a materialized intermediate.
void ScanDenseRow(const double* row, int64_t cols, bool skip,
                  CellStats* stats) {
  if (skip) {
    for (int64_t j = 0; j < cols; ++j) {
      double v = row[j];
      if (v != 0.0) stats->Add(v, j);
    }
  } else {
    for (int64_t j = 0; j < cols; ++j) stats->Add(row[j], j);
  }
}

void ScanDenseRowIntoCols(const double* row, int64_t cols, bool skip,
                          int64_t r, CellStats* stats) {
  if (skip) {
    for (int64_t j = 0; j < cols; ++j) {
      double v = row[j];
      if (v != 0.0) stats[j].Add(v, r);
    }
  } else {
    for (int64_t j = 0; j < cols; ++j) stats[j].Add(row[j], r);
  }
}

// Evaluates the whole pipeline for a single driver value; only valid when
// the plan's sole matrix input is the driver (no vector inputs).
double EvalValue(const FusedPlan& plan, const std::vector<double>& scalars,
                 double driver_val, double* tmp) {
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const FusedStep& st = plan.steps[s];
    double a = st.a.kind == FusedRef::kScalar ? scalars[st.a.idx]
               : st.a.kind == FusedRef::kStep ? tmp[st.a.idx]
                                              : driver_val;
    if (st.is_binary) {
      double b = st.b.kind == FusedRef::kScalar ? scalars[st.b.idx]
                 : st.b.kind == FusedRef::kStep ? tmp[st.b.idx]
                                                : driver_val;
      tmp[s] = ApplyBinary(st.bop, a, b);
    } else {
      tmp[s] = ApplyUnary(st.uop, a);
    }
  }
  return tmp[plan.root];
}

// The sparse driver is safe only when the pipeline maps zero to zero at
// EVERY step: then the unfused chain would have stayed sparse throughout
// (each kernel's own zero_result == 0 shortcut) and implicit zeros behave
// identically on both paths.
bool CanUseSparseDriver(const FusedPlan& plan,
                        const std::vector<const MatrixBlock*>& inputs,
                        const std::vector<double>& scalars) {
  if (plan.num_inputs != 1 ||
      plan.input_kinds[0] != FusedInputKind::kFull ||
      !inputs[0]->IsSparse()) {
    return false;
  }
  std::vector<double> tmp(plan.steps.size());
  EvalValue(plan, scalars, 0.0, tmp.data());
  for (double v : tmp) {
    if (v != 0.0) return false;
  }
  return true;
}

StatusOr<FusedResult> ExecSparseDriver(
    const FusedPlan& plan, const MatrixBlock& a,
    const std::vector<double>& scalars, int num_threads) {
  int64_t rows = a.Rows(), cols = a.Cols();
  size_t nsteps = plan.steps.size();

  if (!plan.has_agg) {
    MatrixBlock c = MatrixBlock::Sparse(rows, cols);
    std::atomic<int64_t> nnz{0};
    ThreadPool::Global().ParallelFor(
        0, rows, PickChunks(rows, num_threads), [&](int64_t rb, int64_t re) {
          std::vector<double> tmp(nsteps);
          int64_t local = 0;
          for (int64_t r = rb; r < re; ++r) {
            const SparseRow& ra = a.SparseData().Row(r);
            SparseRow& rc = c.SparseData().Row(r);
            rc.Reserve(ra.Size());
            for (int64_t p = 0; p < ra.Size(); ++p) {
              double v = EvalValue(plan, scalars, ra.Values()[p], tmp.data());
              if (v != 0.0) {
                rc.Append(ra.Indexes()[p], v);
                ++local;
              }
            }
          }
          nnz.fetch_add(local, std::memory_order_relaxed);
        },
        "fused");
    c.SetNonZeros(nnz.load(std::memory_order_relaxed));
    FusedResult out;
    out.matrix = std::move(c);
    return out;
  }

  bool skip = agg::SkipZeros(plan.agg);
  // Per-row fold identical to lib_agg's sparse ScanRow over the would-be
  // intermediate: stored cells evaluate the pipeline, implicit zeros stay
  // exactly 0.0 (guaranteed by CanUseSparseDriver).
  auto scan_row = [&](int64_t r, double* tmp, CellStats* stats) {
    const SparseRow& ra = a.SparseData().Row(r);
    if (skip) {
      for (int64_t p = 0; p < ra.Size(); ++p) {
        double v = EvalValue(plan, scalars, ra.Values()[p], tmp);
        if (v != 0.0) stats->Add(v, ra.Indexes()[p]);
      }
      return;
    }
    int64_t p = 0;
    for (int64_t j = 0; j < cols; ++j) {
      if (p < ra.Size() && ra.Indexes()[p] == j) {
        stats->Add(EvalValue(plan, scalars, ra.Values()[p++], tmp), j);
      } else {
        stats->Add(0.0, j);
      }
    }
  };

  if (plan.agg_dir == AggDirection::kAll) {
    CellStats stats = agg::FullAggChunked(
        rows, num_threads, [&]() {
          return [&, tmp = std::vector<double>(nsteps)](
                     int64_t r, CellStats* s) mutable {
            scan_row(r, tmp.data(), s);
          };
        });
    FusedResult out;
    out.is_scalar = true;
    out.scalar = agg::Finalize(plan.agg, stats);
    return out;
  }

  if (plan.agg_dir == AggDirection::kRow) {
    MatrixBlock c = MatrixBlock::Dense(rows, 1);
    ThreadPool::Global().ParallelFor(
        0, rows, PickChunks(rows, num_threads), [&](int64_t rb, int64_t re) {
          std::vector<double> tmp(nsteps);
          for (int64_t r = rb; r < re; ++r) {
            CellStats stats;
            scan_row(r, tmp.data(), &stats);
            c.DenseData()[r] = agg::Finalize(plan.agg, stats);
          }
        },
        "fused");
    c.MarkNnzDirty();
    FusedResult out;
    out.matrix = std::move(c);
    return out;
  }

  // Column aggregate.
  std::vector<CellStats> stats = agg::ColAggChunked(
      rows, cols, num_threads, [&]() {
        return [&, tmp = std::vector<double>(nsteps)](
                   int64_t r, CellStats* cs) mutable {
          const SparseRow& ra = a.SparseData().Row(r);
          if (skip) {
            for (int64_t p = 0; p < ra.Size(); ++p) {
              double v = EvalValue(plan, scalars, ra.Values()[p], tmp.data());
              if (v != 0.0) cs[ra.Indexes()[p]].Add(v, r);
            }
            return;
          }
          int64_t p = 0;
          for (int64_t j = 0; j < cols; ++j) {
            if (p < ra.Size() && ra.Indexes()[p] == j) {
              cs[j].Add(EvalValue(plan, scalars, ra.Values()[p++], tmp.data()),
                        r);
            } else {
              cs[j].Add(0.0, r);
            }
          }
        };
      });
  MatrixBlock c = MatrixBlock::Dense(1, cols);
  for (int64_t j = 0; j < cols; ++j) {
    c.DenseData()[j] = agg::Finalize(plan.agg, stats[j]);
  }
  c.MarkNnzDirty();
  FusedResult out;
  out.matrix = std::move(c);
  return out;
}

// Maps one scalar binary op across a row for each operand-shape case with
// the op inlined, so every opcode gets its own tight (vectorizable) loop
// instead of a per-cell dispatch.
template <typename F>
inline void MapBinaryRow(F f, bool a_ptr, const double* ap, double av,
                         bool b_ptr, const double* bp, double bv, double* out,
                         int64_t cols) {
  if (a_ptr && b_ptr) {
    for (int64_t j = 0; j < cols; ++j) out[j] = f(ap[j], bp[j]);
  } else if (a_ptr) {
    for (int64_t j = 0; j < cols; ++j) out[j] = f(ap[j], bv);
  } else if (b_ptr) {
    for (int64_t j = 0; j < cols; ++j) out[j] = f(av, bp[j]);
  } else {
    std::fill(out, out + cols, f(av, bv));
  }
}

// Like MapBinaryRow, but folds each mapped cell into the Kahan sum with the
// kSum zero-skip instead of storing it — the value sequence matches
// agg::SumDenseRowInto over the would-be output row exactly.
template <typename F>
inline void FoldBinarySum(F f, bool a_ptr, const double* ap, double av,
                          bool b_ptr, const double* bp, double bv,
                          int64_t cols, agg::Kahan* k) {
  auto fold = [&](double v) {
    if (v != 0.0) k->Add(v);
  };
  if (a_ptr && b_ptr) {
    for (int64_t j = 0; j < cols; ++j) fold(f(ap[j], bp[j]));
  } else if (a_ptr) {
    for (int64_t j = 0; j < cols; ++j) fold(f(ap[j], bv));
  } else if (b_ptr) {
    for (int64_t j = 0; j < cols; ++j) fold(f(av, bp[j]));
  } else {
    double v = f(av, bv);
    if (v != 0.0) {
      for (int64_t j = 0; j < cols; ++j) k->Add(v);
    }
  }
}

// Per-chunk evaluator for the dense driver: one scratch row per step plus
// expansion rows for sparse full inputs; row vectors are expanded once and
// shared read-only across chunks.
class DenseRowEvaluator {
 public:
  DenseRowEvaluator(const FusedPlan& plan,
                    const std::vector<const MatrixBlock*>& inputs,
                    const std::vector<double>& scalars,
                    const std::vector<std::vector<double>>& rowvecs,
                    int64_t cols)
      : plan_(plan),
        inputs_(inputs),
        scalars_(scalars),
        rowvecs_(rowvecs),
        cols_(cols) {
    step_rows_.resize(plan.steps.size());
    for (auto& v : step_rows_) v.resize(static_cast<size_t>(cols));
    input_scratch_.resize(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (plan.input_kinds[i] == FusedInputKind::kFull &&
          inputs[i]->IsSparse()) {
        input_scratch_[i].resize(static_cast<size_t>(cols));
      }
    }
  }

  /// Evaluates all steps for row r. The root step writes into dest when
  /// given (zero-copy materialization); returns the root row.
  const double* Eval(int64_t r, double* dest) {
    PrepSparseRows(r);
    double* root_out = nullptr;
    for (size_t s = 0; s < plan_.steps.size(); ++s) {
      double* out = (dest != nullptr && static_cast<int>(s) == plan_.root)
                        ? dest
                        : step_rows_[s].data();
      EvalStep(s, r, out);
      if (static_cast<int>(s) == plan_.root) root_out = out;
    }
    return root_out;
  }

  /// Sum-aggregate fast path: evaluates the non-root steps, then folds the
  /// root step's cells straight into the Kahan accumulator without
  /// materializing the root row. The per-cell value sequence (column order,
  /// v != 0.0 skip) is exactly that of agg::SumDenseRowInto over the
  /// materialized root row, so the result is bit-identical.
  void EvalAndSumInto(int64_t r, agg::Kahan* k) {
    PrepSparseRows(r);
    for (size_t s = 0; s < plan_.steps.size(); ++s) {
      if (static_cast<int>(s) == plan_.root) continue;
      EvalStep(s, r, step_rows_[s].data());
    }
    const FusedStep& st = plan_.steps[static_cast<size_t>(plan_.root)];
    const double* ap = nullptr;
    double av = 0.0;
    bool a_ptr = Resolve(st.a, r, &ap, &av);
    if (st.is_binary) {
      const double* bp = nullptr;
      double bv = 0.0;
      bool b_ptr = Resolve(st.b, r, &bp, &bv);
      switch (st.bop) {
        case BinaryOpCode::kAdd:
          FoldBinarySum([](double x, double y) { return x + y; }, a_ptr, ap,
                        av, b_ptr, bp, bv, cols_, k);
          break;
        case BinaryOpCode::kSub:
          FoldBinarySum([](double x, double y) { return x - y; }, a_ptr, ap,
                        av, b_ptr, bp, bv, cols_, k);
          break;
        case BinaryOpCode::kMul:
          FoldBinarySum([](double x, double y) { return x * y; }, a_ptr, ap,
                        av, b_ptr, bp, bv, cols_, k);
          break;
        case BinaryOpCode::kDiv:
          FoldBinarySum([](double x, double y) { return x / y; }, a_ptr, ap,
                        av, b_ptr, bp, bv, cols_, k);
          break;
        default:
          FoldBinarySum(
              [op = st.bop](double x, double y) {
                return ApplyBinary(op, x, y);
              },
              a_ptr, ap, av, b_ptr, bp, bv, cols_, k);
          break;
      }
    } else {
      if (a_ptr) {
        for (int64_t j = 0; j < cols_; ++j) {
          double v = ApplyUnary(st.uop, ap[j]);
          if (v != 0.0) k->Add(v);
        }
      } else {
        double v = ApplyUnary(st.uop, av);
        if (v != 0.0) {
          for (int64_t j = 0; j < cols_; ++j) k->Add(v);
        }
      }
    }
  }

 private:
  // Expands sparse full inputs' row r into dense scratch.
  void PrepSparseRows(int64_t r) {
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (input_scratch_[i].empty()) continue;
      std::vector<double>& buf = input_scratch_[i];
      std::fill(buf.begin(), buf.end(), 0.0);
      const SparseRow& ra = inputs_[i]->SparseData().Row(r);
      for (int64_t p = 0; p < ra.Size(); ++p) {
        buf[static_cast<size_t>(ra.Indexes()[p])] = ra.Values()[p];
      }
    }
  }

  // Evaluates step s for row r into out. Hot arithmetic ops get dedicated
  // loops; everything else goes through the (inline) generic dispatch. All
  // cases fold cells through the same ApplyBinary/ApplyUnary semantics.
  void EvalStep(size_t s, int64_t r, double* out) {
    const FusedStep& st = plan_.steps[s];
    const double* ap = nullptr;
    double av = 0.0;
    bool a_ptr = Resolve(st.a, r, &ap, &av);
    if (st.is_binary) {
      const double* bp = nullptr;
      double bv = 0.0;
      bool b_ptr = Resolve(st.b, r, &bp, &bv);
      switch (st.bop) {
        case BinaryOpCode::kAdd:
          MapBinaryRow([](double x, double y) { return x + y; }, a_ptr, ap,
                       av, b_ptr, bp, bv, out, cols_);
          break;
        case BinaryOpCode::kSub:
          MapBinaryRow([](double x, double y) { return x - y; }, a_ptr, ap,
                       av, b_ptr, bp, bv, out, cols_);
          break;
        case BinaryOpCode::kMul:
          MapBinaryRow([](double x, double y) { return x * y; }, a_ptr, ap,
                       av, b_ptr, bp, bv, out, cols_);
          break;
        case BinaryOpCode::kDiv:
          MapBinaryRow([](double x, double y) { return x / y; }, a_ptr, ap,
                       av, b_ptr, bp, bv, out, cols_);
          break;
        default:
          MapBinaryRow(
              [op = st.bop](double x, double y) {
                return ApplyBinary(op, x, y);
              },
              a_ptr, ap, av, b_ptr, bp, bv, out, cols_);
          break;
      }
    } else {
      if (a_ptr) {
        for (int64_t j = 0; j < cols_; ++j) {
          out[j] = ApplyUnary(st.uop, ap[j]);
        }
      } else {
        std::fill(out, out + cols_, ApplyUnary(st.uop, av));
      }
    }
  }

  // Resolves an operand for row r: returns true and sets *ptr for row-shaped
  // operands, or returns false and sets *val for cell-invariant scalars.
  bool Resolve(const FusedRef& ref, int64_t r, const double** ptr,
               double* val) {
    switch (ref.kind) {
      case FusedRef::kScalar:
        *val = scalars_[ref.idx];
        return false;
      case FusedRef::kStep:
        *ptr = step_rows_[ref.idx].data();
        return true;
      case FusedRef::kInput: {
        const MatrixBlock* in = inputs_[ref.idx];
        switch (plan_.input_kinds[ref.idx]) {
          case FusedInputKind::kColVec:
            *val = in->Get(r, 0);
            return false;
          case FusedInputKind::kRowVec:
            *ptr = rowvecs_[ref.idx].data();
            return true;
          case FusedInputKind::kFull:
            if (in->IsSparse()) {
              *ptr = input_scratch_[ref.idx].data();
            } else {
              *ptr = in->DenseRow(r);
            }
            return true;
        }
        return false;
      }
    }
    return false;
  }

  const FusedPlan& plan_;
  const std::vector<const MatrixBlock*>& inputs_;
  const std::vector<double>& scalars_;
  const std::vector<std::vector<double>>& rowvecs_;
  int64_t cols_;
  std::vector<std::vector<double>> step_rows_;
  std::vector<std::vector<double>> input_scratch_;
};

StatusOr<FusedResult> ExecDenseDriver(
    const FusedPlan& plan, const std::vector<const MatrixBlock*>& inputs,
    const std::vector<double>& scalars, int64_t rows, int64_t cols,
    int num_threads) {
  // Row vectors expanded once, shared read-only by all chunks.
  std::vector<std::vector<double>> rowvecs(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (plan.input_kinds[i] != FusedInputKind::kRowVec) continue;
    rowvecs[i].resize(static_cast<size_t>(cols));
    for (int64_t j = 0; j < cols; ++j) rowvecs[i][j] = inputs[i]->Get(0, j);
  }

  if (!plan.has_agg) {
    MatrixBlock c = MatrixBlock::Dense(rows, cols);
    std::atomic<int64_t> nnz{0};
    ThreadPool::Global().ParallelFor(
        0, rows, PickChunks(rows, num_threads), [&](int64_t rb, int64_t re) {
          DenseRowEvaluator ev(plan, inputs, scalars, rowvecs, cols);
          int64_t local = 0;
          for (int64_t r = rb; r < re; ++r) {
            const double* row = ev.Eval(r, c.DenseRow(r));
            local += CountRowNnz(row, cols);
          }
          nnz.fetch_add(local, std::memory_order_relaxed);
        },
        "fused");
    // Sparsity re-examination happens only here at the region root, with
    // the inline nonzero count (no extra full scan for the pipeline).
    c.ExamSparsity(nnz.load(std::memory_order_relaxed));
    FusedResult out;
    out.matrix = std::move(c);
    return out;
  }

  bool skip = agg::SkipZeros(plan.agg);
  bool sum_fast = plan.agg == AggOpCode::kSum;
  if (plan.agg_dir == AggDirection::kAll) {
    FusedResult out;
    out.is_scalar = true;
    if (sum_fast) {
      out.scalar = agg::FullSumChunked(rows, num_threads, [&]() {
                     auto ev = std::make_shared<DenseRowEvaluator>(
                         plan, inputs, scalars, rowvecs, cols);
                     return [ev](int64_t r, agg::Kahan* k) {
                       ev->EvalAndSumInto(r, k);
                     };
                   }).sum;
      return out;
    }
    CellStats stats = agg::FullAggChunked(
        rows, num_threads, [&]() {
          auto ev = std::make_shared<DenseRowEvaluator>(plan, inputs, scalars,
                                                        rowvecs, cols);
          return [&, ev](int64_t r, CellStats* s) {
            ScanDenseRow(ev->Eval(r, nullptr), cols, skip, s);
          };
        });
    out.scalar = agg::Finalize(plan.agg, stats);
    return out;
  }

  if (plan.agg_dir == AggDirection::kRow) {
    MatrixBlock c = MatrixBlock::Dense(rows, 1);
    ThreadPool::Global().ParallelFor(
        0, rows, PickChunks(rows, num_threads), [&](int64_t rb, int64_t re) {
          DenseRowEvaluator ev(plan, inputs, scalars, rowvecs, cols);
          for (int64_t r = rb; r < re; ++r) {
            if (sum_fast) {
              agg::Kahan k;
              ev.EvalAndSumInto(r, &k);
              c.DenseData()[r] = k.sum;
              continue;
            }
            CellStats stats;
            ScanDenseRow(ev.Eval(r, nullptr), cols, skip, &stats);
            c.DenseData()[r] = agg::Finalize(plan.agg, stats);
          }
        },
        "fused");
    c.MarkNnzDirty();
    FusedResult out;
    out.matrix = std::move(c);
    return out;
  }

  std::vector<CellStats> stats = agg::ColAggChunked(
      rows, cols, num_threads, [&]() {
        auto ev = std::make_shared<DenseRowEvaluator>(plan, inputs, scalars,
                                                      rowvecs, cols);
        return [&, ev](int64_t r, CellStats* cs) {
          ScanDenseRowIntoCols(ev->Eval(r, nullptr), cols, skip, r, cs);
        };
      });
  MatrixBlock c = MatrixBlock::Dense(1, cols);
  for (int64_t j = 0; j < cols; ++j) {
    c.DenseData()[j] = agg::Finalize(plan.agg, stats[j]);
  }
  c.MarkNnzDirty();
  FusedResult out;
  out.matrix = std::move(c);
  return out;
}

}  // namespace

StatusOr<FusedResult> ExecuteFusedPlan(
    const FusedPlan& plan, const std::vector<const MatrixBlock*>& inputs,
    const std::vector<double>& scalars, int num_threads) {
  SYSDS_RETURN_IF_ERROR(plan.Validate());
  if (static_cast<int>(inputs.size()) != plan.num_inputs ||
      static_cast<int>(scalars.size()) != plan.num_scalars) {
    return RuntimeError("fused: operand count mismatch");
  }
  int64_t rows = -1, cols = -1;
  for (int i = 0; i < plan.num_inputs; ++i) {
    if (plan.input_kinds[i] == FusedInputKind::kFull) {
      rows = inputs[i]->Rows();
      cols = inputs[i]->Cols();
      break;
    }
  }
  if (rows < 0) {
    return RuntimeError("fused plan requires a full-shape matrix input");
  }
  for (int i = 0; i < plan.num_inputs; ++i) {
    const MatrixBlock* in = inputs[i];
    bool ok = true;
    switch (plan.input_kinds[i]) {
      case FusedInputKind::kFull:
        ok = in->Rows() == rows && in->Cols() == cols;
        break;
      case FusedInputKind::kColVec:
        ok = in->Rows() == rows && in->Cols() == 1;
        break;
      case FusedInputKind::kRowVec:
        ok = in->Rows() == 1 && in->Cols() == cols;
        break;
    }
    if (!ok) return RuntimeError("fused: input shape mismatch");
  }

  if (CanUseSparseDriver(plan, inputs, scalars)) {
    return ExecSparseDriver(plan, *inputs[0], scalars, num_threads);
  }
  return ExecDenseDriver(plan, inputs, scalars, rows, cols, num_threads);
}

}  // namespace sysds
