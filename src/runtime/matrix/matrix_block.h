#ifndef SYSDS_RUNTIME_MATRIX_MATRIX_BLOCK_H_
#define SYSDS_RUNTIME_MATRIX_MATRIX_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/matrix/sparse_block.h"

namespace sysds {

/// The 2D FP64 workhorse of the runtime (SystemDS keeps a specialized matrix
/// next to the generic TensorBlock for exactly this reason). A MatrixBlock
/// is either dense (row-major contiguous) or sparse (MCSR); format decisions
/// follow the observed sparsity like in SystemDS (ExamSparsity).
class MatrixBlock {
 public:
  // Sparsity threshold below which a matrix is stored sparse (SystemDS uses
  // 0.4 together with a minimum size).
  static constexpr double kSparsityTurnPoint = 0.4;
  static constexpr int64_t kMinSparseSize = 1024;

  MatrixBlock() : rows_(0), cols_(0), sparse_(false) {}
  MatrixBlock(int64_t rows, int64_t cols, bool sparse);

  static MatrixBlock Dense(int64_t rows, int64_t cols, double fill = 0.0);
  static MatrixBlock Sparse(int64_t rows, int64_t cols);
  /// Builds a dense block from a row-major initializer (tests/examples).
  static MatrixBlock FromValues(int64_t rows, int64_t cols,
                                const std::vector<double>& values);

  int64_t Rows() const { return rows_; }
  int64_t Cols() const { return cols_; }
  int64_t CellCount() const { return rows_ * cols_; }
  bool IsSparse() const { return sparse_; }
  bool IsEmpty() const { return rows_ == 0 || cols_ == 0; }
  bool IsVector() const { return rows_ == 1 || cols_ == 1; }
  bool IsScalarShaped() const { return rows_ == 1 && cols_ == 1; }

  /// Number of nonzeros; recomputed lazily if marked dirty.
  int64_t NonZeros() const;
  void SetNonZeros(int64_t nnz) { nnz_ = nnz; }
  void MarkNnzDirty() { nnz_ = -1; }
  double Sparsity() const {
    return CellCount() == 0 ? 0.0
                            : static_cast<double>(NonZeros()) / CellCount();
  }

  // Cell accessors. Get/Set work for both formats (Set on sparse maintains
  // sorted rows); hot kernels should use DenseData()/SparseData() directly.
  double Get(int64_t r, int64_t c) const;
  void Set(int64_t r, int64_t c, double v);

  double* DenseData() { return dense_.data(); }
  const double* DenseData() const { return dense_.data(); }
  double* DenseRow(int64_t r) { return dense_.data() + r * cols_; }
  const double* DenseRow(int64_t r) const { return dense_.data() + r * cols_; }

  SparseBlock& SparseData() { return sparse_block_; }
  const SparseBlock& SparseData() const { return sparse_block_; }

  /// Allocates the backing storage for the current format if not present.
  void AllocateDense();
  void AllocateSparse();

  /// Converts to the given format (copying cells as needed).
  void ToDense();
  void ToSparse();

  /// Re-evaluates the format decision based on actual sparsity and converts
  /// if beneficial, mirroring MatrixBlock.examSparsity() in SystemDS.
  void ExamSparsity();

  /// ExamSparsity variant for kernels that already counted nonzeros while
  /// writing the result: skips the extra full scan implied by
  /// MarkNnzDirty() + Sparsity().
  void ExamSparsity(int64_t known_nnz);

  /// Whether a matrix of the given shape/sparsity should be stored sparse.
  static bool EvalSparseFormat(int64_t rows, int64_t cols, double sparsity);

  /// In-memory size estimate in bytes for buffer-pool accounting, based on
  /// the current format.
  int64_t EstimateSizeInBytes() const;
  static int64_t EstimateSizeInBytes(int64_t rows, int64_t cols,
                                     double sparsity);

  /// Deep equality within an absolute epsilon (tests).
  bool EqualsApprox(const MatrixBlock& other, double eps = 1e-9) const;

  /// Compact "rows x cols, nnz=..., format" debug string; with values for
  /// small matrices.
  std::string ToString(int64_t max_rows = 10, int64_t max_cols = 10) const;

 private:
  int64_t ComputeNonZeros() const;

  int64_t rows_;
  int64_t cols_;
  bool sparse_;
  mutable int64_t nnz_ = -1;
  std::vector<double> dense_;
  SparseBlock sparse_block_;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_MATRIX_BLOCK_H_
