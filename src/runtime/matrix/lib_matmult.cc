#include "runtime/matrix/lib_matmult.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace sysds {

namespace {
std::atomic<GemmKernel> g_gemm_kernel{GemmKernel::kNative};

inline bool AllFinite(const double* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(v[i])) return false;
  }
  return true;
}
}  // namespace

void SetGemmKernel(GemmKernel kernel) { g_gemm_kernel.store(kernel); }
GemmKernel GetGemmKernel() { return g_gemm_kernel.load(); }

namespace internal {

// Straightforward i-j-k (dot product) loop nest: strided accesses into B and
// no register blocking — stands in for the portable Java kernel of §4.2.
void GemmDensePortable(const double* a, const double* b, double* c,
                       int64_t m, int64_t n, int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int64_t l = 0; l < k; ++l) sum += arow[l] * b[l * n + j];
      crow[j] = sum;
    }
  }
}

// Cache-blocked i-k-j kernel with a contiguous inner loop over C/B rows —
// the auto-vectorizer emits packed SIMD for the inner axpy, standing in for
// the native BLAS path (SysDS-B).
void GemmDenseTiled(const double* a, const double* b, double* c, int64_t m,
                    int64_t n, int64_t k) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockJ = 512;
  // Unified zero-skip rule (same as the fused and compressed kernels): a
  // zero in A may skip B's row l only when that row is finite everywhere,
  // so 0 * Inf and 0 * NaN still propagate NaN into C exactly like the
  // non-skipping GemmDensePortable. Row states are memoized lazily — a
  // zero-free A never pays for the scan.
  std::vector<int8_t> b_row_finite;  // -1 unknown, 0 has nonfinite, 1 finite
  auto b_row_all_finite = [&](int64_t l) {
    if (b_row_finite.empty()) b_row_finite.assign(static_cast<size_t>(k), -1);
    int8_t st = b_row_finite[static_cast<size_t>(l)];
    if (st < 0) {
      st = AllFinite(b + l * n, n) ? 1 : 0;
      b_row_finite[static_cast<size_t>(l)] = st;
    }
    return st == 1;
  };
  for (int64_t kk = 0; kk < k; kk += kBlockK) {
    int64_t kend = std::min(k, kk + kBlockK);
    for (int64_t jj = 0; jj < n; jj += kBlockJ) {
      int64_t jend = std::min(n, jj + kBlockJ);
      for (int64_t i = 0; i < m; ++i) {
        const double* arow = a + i * k;
        double* crow = c + i * n;
        for (int64_t l = kk; l < kend; ++l) {
          double aval = arow[l];
          if (aval == 0.0 && b_row_all_finite(l)) continue;
          const double* brow = b + l * n;
          for (int64_t j = jj; j < jend; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

}  // namespace internal

namespace {

void GemmDenseRows(const MatrixBlock& a, const MatrixBlock& b, MatrixBlock* c,
                   int64_t rbeg, int64_t rend) {
  int64_t n = b.Cols(), k = a.Cols();
  const double* pa = a.DenseData() + rbeg * k;
  double* pc = c->DenseData() + rbeg * n;
  if (GetGemmKernel() == GemmKernel::kNative) {
    internal::GemmDenseTiled(pa, b.DenseData(), pc, rend - rbeg, n, k);
  } else {
    internal::GemmDensePortable(pa, b.DenseData(), pc, rend - rbeg, n, k);
  }
}

// C rows [rbeg,rend): sparse A times dense B.
void GemmSparseDenseRows(const MatrixBlock& a, const MatrixBlock& b,
                         MatrixBlock* c, int64_t rbeg, int64_t rend) {
  int64_t n = b.Cols();
  for (int64_t i = rbeg; i < rend; ++i) {
    const SparseRow& row = a.SparseData().Row(i);
    double* crow = c->DenseRow(i);
    for (int64_t p = 0; p < row.Size(); ++p) {
      double aval = row.Values()[p];
      const double* brow = b.DenseRow(row.Indexes()[p]);
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void GemmDenseSparseRows(const MatrixBlock& a, const MatrixBlock& b,
                         MatrixBlock* c, int64_t rbeg, int64_t rend) {
  int64_t k = a.Cols();
  for (int64_t i = rbeg; i < rend; ++i) {
    const double* arow = a.DenseRow(i);
    double* crow = c->DenseRow(i);
    for (int64_t l = 0; l < k; ++l) {
      double aval = arow[l];
      if (aval == 0.0) continue;
      const SparseRow& brow = b.SparseData().Row(l);
      for (int64_t p = 0; p < brow.Size(); ++p) {
        crow[brow.Indexes()[p]] += aval * brow.Values()[p];
      }
    }
  }
}

void GemmSparseSparseRows(const MatrixBlock& a, const MatrixBlock& b,
                          MatrixBlock* c, int64_t rbeg, int64_t rend) {
  for (int64_t i = rbeg; i < rend; ++i) {
    const SparseRow& arow = a.SparseData().Row(i);
    double* crow = c->DenseRow(i);
    for (int64_t p = 0; p < arow.Size(); ++p) {
      double aval = arow.Values()[p];
      const SparseRow& brow = b.SparseData().Row(arow.Indexes()[p]);
      for (int64_t q = 0; q < brow.Size(); ++q) {
        crow[brow.Indexes()[q]] += aval * brow.Values()[q];
      }
    }
  }
}

// Mirrors the computed upper triangle of an n x n dense symmetric result
// into the lower triangle, row-parallel (each row i writes only its own
// cells [0, i) and reads completed upper-triangle cells).
void MirrorLowerTriangle(double* pc, int64_t n, int num_threads) {
  ThreadPool::Global().ParallelFor(
      0, n, PickChunks(n, num_threads), [&](int64_t rb, int64_t re) {
        for (int64_t i = rb; i < re; ++i) {
          for (int64_t j = 0; j < i; ++j) pc[i * n + j] = pc[j * n + i];
        }
      });
}

// Deterministic pairwise tree reduction over chunk-id-indexed partials:
// level `stride` adds partials[i + stride] into partials[i] for
// i = 0, 2*stride, 4*stride, ... — pairs touch disjoint slots, so the
// levels run chunk-parallel while the addition order stays a pure function
// of the chunk ids: the reduced result is bit-identical across thread
// counts, scheduling orders, and repeated runs. Empty slots (chunks that
// never ran, possible when the geometry leaves a tail chunk empty) are
// skipped or moved, which is itself determined by the geometry alone.
void TreeReducePartials(std::vector<std::vector<double>>* partials,
                        int64_t len) {
  auto& parts = *partials;
  int64_t count = static_cast<int64_t>(parts.size());
  for (int64_t stride = 1; stride < count; stride *= 2) {
    int64_t pairs = (count - stride + 2 * stride - 1) / (2 * stride);
    ThreadPool::Global().ParallelFor(
        0, pairs, pairs,
        [&](int64_t pb, int64_t pe) {
          for (int64_t t = pb; t < pe; ++t) {
            int64_t i = t * 2 * stride;
            int64_t j = i + stride;
            if (j >= count) continue;
            std::vector<double>& dst = parts[static_cast<size_t>(i)];
            std::vector<double>& src = parts[static_cast<size_t>(j)];
            if (src.empty()) continue;
            if (dst.empty()) {
              dst = std::move(src);
            } else {
              for (int64_t x = 0; x < len; ++x) dst[x] += src[x];
            }
            std::vector<double>().swap(src);
          }
        },
        "matmult.reduce");
  }
}

}  // namespace

StatusOr<MatrixBlock> MatMult(const MatrixBlock& a, const MatrixBlock& b,
                              int num_threads) {
  if (a.Cols() != b.Rows()) {
    return InvalidArgument("matmult dimension mismatch: " +
                           std::to_string(a.Cols()) + " vs " +
                           std::to_string(b.Rows()));
  }
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), b.Cols());
  int64_t chunks = PickChunks(a.Rows(), num_threads);
  auto run = [&](auto fn) {
    ThreadPool::Global().ParallelFor(
        0, a.Rows(), chunks,
        [&](int64_t rb, int64_t re) { fn(a, b, &c, rb, re); }, "matmult");
  };
  // Sparse-A paths split on cumulative row nnz instead of row count so a
  // few dense rows cannot straggle one chunk; output rows stay disjoint, so
  // the weighted boundaries (a pure function of the nnz structure) keep
  // results bit-identical at any thread count.
  auto run_weighted = [&](auto fn) {
    ThreadPool::Global().ParallelForWeighted(
        0, a.Rows(), chunks,
        [&](int64_t i) { return a.SparseData().Row(i).Size() + 1; },
        [&](int64_t rb, int64_t re, int64_t) { fn(a, b, &c, rb, re); },
        "matmult");
  };
  if (!a.IsSparse() && !b.IsSparse()) {
    run(GemmDenseRows);
  } else if (a.IsSparse() && !b.IsSparse()) {
    run_weighted(GemmSparseDenseRows);
  } else if (!a.IsSparse() && b.IsSparse()) {
    run(GemmDenseSparseRows);
  } else {
    run_weighted(GemmSparseSparseRows);
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> TransposeSelfMatMult(const MatrixBlock& x, bool left,
                                           int num_threads) {
  // Right tsmm X%*%t(X) is computed as left tsmm of the transpose-free form
  // by swapping the roles of rows and cells; for simplicity we only
  // specialize the (dominant) left case and fall back to TransposeLeftMatMult
  // semantics for the right case via the generic path.
  if (!left) {
    // X %*% t(X): C[i,j] = dot(row_i, row_j), symmetric m x m. Row i costs
    // ~(m - i) dot products — triangular skew — so chunks split on that
    // weight rather than on the row count.
    int64_t m = x.Rows(), k = x.Cols();
    MatrixBlock c = MatrixBlock::Dense(m, m);
    ThreadPool::Global().ParallelForWeighted(
        0, m, PickChunks(m, num_threads), [m](int64_t i) { return m - i; },
        [&](int64_t rb, int64_t re, int64_t) {
          for (int64_t i = rb; i < re; ++i) {
            for (int64_t j = i; j < m; ++j) {
              double sum = 0.0;
              if (!x.IsSparse()) {
                const double* ri = x.DenseRow(i);
                const double* rj = x.DenseRow(j);
                for (int64_t l = 0; l < k; ++l) sum += ri[l] * rj[l];
              } else {
                const SparseRow& ri = x.SparseData().Row(i);
                const SparseRow& rj = x.SparseData().Row(j);
                int64_t p = 0, q = 0;
                while (p < ri.Size() && q < rj.Size()) {
                  int64_t ci = ri.Indexes()[p], cj = rj.Indexes()[q];
                  if (ci == cj) sum += ri.Values()[p++] * rj.Values()[q++];
                  else if (ci < cj) ++p;
                  else ++q;
                }
              }
              c.DenseRow(i)[j] = sum;
            }
          }
        },
        "tsmm");
    // Mirror the upper triangle.
    MirrorLowerTriangle(c.DenseData(), m, num_threads);
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Left tsmm: C = t(X) %*% X, n x n symmetric.
  // Portable kernel (§4.2: the non-SIMD Java-style path): per output cell
  // dot products over column-strided accesses — cache-unfriendly like the
  // unblocked reference implementation. Column p costs ~(n - p) cells.
  if (!x.IsSparse() && GetGemmKernel() == GemmKernel::kPortable) {
    int64_t m = x.Rows(), n = x.Cols();
    MatrixBlock c = MatrixBlock::Dense(n, n);
    const double* px = x.DenseData();
    double* pc = c.DenseData();
    ThreadPool::Global().ParallelForWeighted(
        0, n, PickChunks(n, num_threads), [n](int64_t p) { return n - p; },
        [&](int64_t pb, int64_t pe, int64_t) {
          for (int64_t p = pb; p < pe; ++p) {
            for (int64_t q = p; q < n; ++q) {
              double sum = 0.0;
              for (int64_t i = 0; i < m; ++i) {
                sum += px[i * n + p] * px[i * n + q];
              }
              pc[p * n + q] = sum;
            }
          }
        },
        "tsmm");
    MirrorLowerTriangle(pc, n, num_threads);
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Native kernel: accumulated over rows with per-chunk partial results
  // reduced deterministically by chunk id (vectorizable inner axpy). The
  // chunk count is bounded by the n*n scratch each chunk holds.
  int64_t m = x.Rows(), n = x.Cols();
  int64_t chunks = PickChunksBounded(m, n * n * 8);
  std::vector<std::vector<double>> partials(
      static_cast<size_t>(chunks), std::vector<double>());
  auto accumulate = [&](int64_t rb, int64_t re, int64_t ci) {
    std::vector<double>& acc = partials[static_cast<size_t>(ci)];
    acc.assign(static_cast<size_t>(n * n), 0.0);
    if (!x.IsSparse()) {
      for (int64_t i = rb; i < re; ++i) {
        const double* row = x.DenseRow(i);
        // Skip a zero only when its row is finite everywhere (unified
        // zero-skip rule: 0 * Inf must stay NaN, matching the portable
        // kernel). Checked lazily on the first zero in the row.
        int row_finite = -1;
        for (int64_t p = 0; p < n; ++p) {
          double v = row[p];
          if (v == 0.0) {
            if (row_finite < 0) row_finite = AllFinite(row, n) ? 1 : 0;
            if (row_finite == 1) continue;
          }
          double* arow = acc.data() + p * n;
          for (int64_t q = p; q < n; ++q) arow[q] += v * row[q];
        }
      }
    } else {
      for (int64_t i = rb; i < re; ++i) {
        const SparseRow& row = x.SparseData().Row(i);
        for (int64_t p = 0; p < row.Size(); ++p) {
          double v = row.Values()[p];
          double* arow = acc.data() + row.Indexes()[p] * n;
          for (int64_t q = p; q < row.Size(); ++q) {
            arow[row.Indexes()[q]] += v * row.Values()[q];
          }
        }
      }
    }
  };
  if (x.IsSparse()) {
    ThreadPool::Global().ParallelForWeighted(
        0, m, chunks,
        [&](int64_t i) { return x.SparseData().Row(i).Size() + 1; },
        accumulate, "tsmm");
  } else {
    int64_t chunk_rows = (m + chunks - 1) / chunks;
    ThreadPool::Global().ParallelFor(
        0, m, chunks,
        [&](int64_t rb, int64_t re) { accumulate(rb, re, rb / chunk_rows); },
        "tsmm");
  }
  TreeReducePartials(&partials, n * n);
  MatrixBlock c = MatrixBlock::Dense(n, n);
  double* pc = c.DenseData();
  if (!partials.empty() && !partials[0].empty()) {
    std::memcpy(pc, partials[0].data(),
                static_cast<size_t>(n * n) * sizeof(double));
  }
  // Mirror upper to lower triangle.
  MirrorLowerTriangle(pc, n, num_threads);
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> TransposeLeftMatMult(const MatrixBlock& a,
                                           const MatrixBlock& b,
                                           int num_threads) {
  if (a.Rows() != b.Rows()) {
    return InvalidArgument("t(A)%*%B dimension mismatch: " +
                           std::to_string(a.Rows()) + " vs " +
                           std::to_string(b.Rows()));
  }
  // Portable kernel: per-cell dot products over column-strided accesses.
  if (!a.IsSparse() && !b.IsSparse() &&
      GetGemmKernel() == GemmKernel::kPortable) {
    int64_t m = a.Rows(), n = a.Cols(), l = b.Cols();
    MatrixBlock c = MatrixBlock::Dense(n, l);
    const double* pa = a.DenseData();
    const double* pb = b.DenseData();
    double* pc = c.DenseData();
    ThreadPool::Global().ParallelFor(
        0, n, PickChunks(n, num_threads),
        [&](int64_t qb, int64_t qe) {
          for (int64_t p = qb; p < qe; ++p) {
            for (int64_t q = 0; q < l; ++q) {
              double sum = 0.0;
              for (int64_t i = 0; i < m; ++i) {
                sum += pa[i * n + p] * pb[i * l + q];
              }
              pc[p * l + q] = sum;
            }
          }
        },
        "tlmm");
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Native kernel: C = t(A) %*% B as a sum over shared rows (C += a_i b_i^T)
  // with per-chunk n*l partials reduced deterministically by chunk id.
  int64_t m = a.Rows(), n = a.Cols(), l = b.Cols();
  int64_t chunks = PickChunksBounded(m, n * l * 8);
  std::vector<std::vector<double>> partials(static_cast<size_t>(chunks));
  auto accumulate = [&](int64_t rb, int64_t re, int64_t ci) {
    std::vector<double>& acc = partials[static_cast<size_t>(ci)];
    acc.assign(static_cast<size_t>(n * l), 0.0);
    for (int64_t i = rb; i < re; ++i) {
      if (!a.IsSparse() && !b.IsSparse()) {
        const double* arow = a.DenseRow(i);
        const double* brow = b.DenseRow(i);
        // Unified zero-skip rule: skip a zero in A only when B's row i is
        // finite everywhere (0 * Inf must stay NaN, like the portable
        // kernel). Memoized per shared row.
        int brow_finite = -1;
        for (int64_t p = 0; p < n; ++p) {
          double v = arow[p];
          if (v == 0.0) {
            if (brow_finite < 0) brow_finite = AllFinite(brow, l) ? 1 : 0;
            if (brow_finite == 1) continue;
          }
          double* crow = acc.data() + p * l;
          for (int64_t q = 0; q < l; ++q) crow[q] += v * brow[q];
        }
      } else if (a.IsSparse() && !b.IsSparse()) {
        const SparseRow& arow = a.SparseData().Row(i);
        const double* brow = b.DenseRow(i);
        for (int64_t p = 0; p < arow.Size(); ++p) {
          double v = arow.Values()[p];
          double* crow = acc.data() + arow.Indexes()[p] * l;
          for (int64_t q = 0; q < l; ++q) crow[q] += v * brow[q];
        }
      } else if (!a.IsSparse() && b.IsSparse()) {
        const double* arow = a.DenseRow(i);
        const SparseRow& brow = b.SparseData().Row(i);
        for (int64_t p = 0; p < n; ++p) {
          double v = arow[p];
          if (v == 0.0) continue;
          double* crow = acc.data() + p * l;
          for (int64_t q = 0; q < brow.Size(); ++q) {
            crow[brow.Indexes()[q]] += v * brow.Values()[q];
          }
        }
      } else {
        const SparseRow& arow = a.SparseData().Row(i);
        const SparseRow& brow = b.SparseData().Row(i);
        for (int64_t p = 0; p < arow.Size(); ++p) {
          double v = arow.Values()[p];
          double* crow = acc.data() + arow.Indexes()[p] * l;
          for (int64_t q = 0; q < brow.Size(); ++q) {
            crow[brow.Indexes()[q]] += v * brow.Values()[q];
          }
        }
      }
    }
  };
  if (a.IsSparse()) {
    ThreadPool::Global().ParallelForWeighted(
        0, m, chunks,
        [&](int64_t i) { return a.SparseData().Row(i).Size() + 1; },
        accumulate, "tlmm");
  } else {
    int64_t chunk_rows = (m + chunks - 1) / chunks;
    ThreadPool::Global().ParallelFor(
        0, m, chunks,
        [&](int64_t rb, int64_t re) { accumulate(rb, re, rb / chunk_rows); },
        "tlmm");
  }
  TreeReducePartials(&partials, n * l);
  MatrixBlock c = MatrixBlock::Dense(n, l);
  double* pc = c.DenseData();
  if (!partials.empty() && !partials[0].empty()) {
    std::memcpy(pc, partials[0].data(),
                static_cast<size_t>(n * l) * sizeof(double));
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

}  // namespace sysds
