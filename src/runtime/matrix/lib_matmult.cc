#include "runtime/matrix/lib_matmult.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace sysds {

namespace {
std::atomic<GemmKernel> g_gemm_kernel{GemmKernel::kNative};
}  // namespace

void SetGemmKernel(GemmKernel kernel) { g_gemm_kernel.store(kernel); }
GemmKernel GetGemmKernel() { return g_gemm_kernel.load(); }

namespace internal {

// Straightforward i-j-k (dot product) loop nest: strided accesses into B and
// no register blocking — stands in for the portable Java kernel of §4.2.
void GemmDensePortable(const double* a, const double* b, double* c,
                       int64_t m, int64_t n, int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int64_t l = 0; l < k; ++l) sum += arow[l] * b[l * n + j];
      crow[j] = sum;
    }
  }
}

// Cache-blocked i-k-j kernel with a contiguous inner loop over C/B rows —
// the auto-vectorizer emits packed SIMD for the inner axpy, standing in for
// the native BLAS path (SysDS-B).
void GemmDenseTiled(const double* a, const double* b, double* c, int64_t m,
                    int64_t n, int64_t k) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockJ = 512;
  for (int64_t kk = 0; kk < k; kk += kBlockK) {
    int64_t kend = std::min(k, kk + kBlockK);
    for (int64_t jj = 0; jj < n; jj += kBlockJ) {
      int64_t jend = std::min(n, jj + kBlockJ);
      for (int64_t i = 0; i < m; ++i) {
        const double* arow = a + i * k;
        double* crow = c + i * n;
        for (int64_t l = kk; l < kend; ++l) {
          double aval = arow[l];
          if (aval == 0.0) continue;
          const double* brow = b + l * n;
          for (int64_t j = jj; j < jend; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

}  // namespace internal

namespace {

void GemmDenseRows(const MatrixBlock& a, const MatrixBlock& b, MatrixBlock* c,
                   int64_t rbeg, int64_t rend) {
  int64_t n = b.Cols(), k = a.Cols();
  const double* pa = a.DenseData() + rbeg * k;
  double* pc = c->DenseData() + rbeg * n;
  if (GetGemmKernel() == GemmKernel::kNative) {
    internal::GemmDenseTiled(pa, b.DenseData(), pc, rend - rbeg, n, k);
  } else {
    internal::GemmDensePortable(pa, b.DenseData(), pc, rend - rbeg, n, k);
  }
}

// C rows [rbeg,rend): sparse A times dense B.
void GemmSparseDenseRows(const MatrixBlock& a, const MatrixBlock& b,
                         MatrixBlock* c, int64_t rbeg, int64_t rend) {
  int64_t n = b.Cols();
  for (int64_t i = rbeg; i < rend; ++i) {
    const SparseRow& row = a.SparseData().Row(i);
    double* crow = c->DenseRow(i);
    for (int64_t p = 0; p < row.Size(); ++p) {
      double aval = row.Values()[p];
      const double* brow = b.DenseRow(row.Indexes()[p]);
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void GemmDenseSparseRows(const MatrixBlock& a, const MatrixBlock& b,
                         MatrixBlock* c, int64_t rbeg, int64_t rend) {
  int64_t k = a.Cols();
  for (int64_t i = rbeg; i < rend; ++i) {
    const double* arow = a.DenseRow(i);
    double* crow = c->DenseRow(i);
    for (int64_t l = 0; l < k; ++l) {
      double aval = arow[l];
      if (aval == 0.0) continue;
      const SparseRow& brow = b.SparseData().Row(l);
      for (int64_t p = 0; p < brow.Size(); ++p) {
        crow[brow.Indexes()[p]] += aval * brow.Values()[p];
      }
    }
  }
}

void GemmSparseSparseRows(const MatrixBlock& a, const MatrixBlock& b,
                          MatrixBlock* c, int64_t rbeg, int64_t rend) {
  for (int64_t i = rbeg; i < rend; ++i) {
    const SparseRow& arow = a.SparseData().Row(i);
    double* crow = c->DenseRow(i);
    for (int64_t p = 0; p < arow.Size(); ++p) {
      double aval = arow.Values()[p];
      const SparseRow& brow = b.SparseData().Row(arow.Indexes()[p]);
      for (int64_t q = 0; q < brow.Size(); ++q) {
        crow[brow.Indexes()[q]] += aval * brow.Values()[q];
      }
    }
  }
}

// Mirrors the computed upper triangle of an n x n dense symmetric result
// into the lower triangle, row-parallel (each row i writes only its own
// cells [0, i) and reads completed upper-triangle cells).
void MirrorLowerTriangle(double* pc, int64_t n, int num_threads) {
  ThreadPool::Global().ParallelFor(
      0, n, PickChunks(n, num_threads), [&](int64_t rb, int64_t re) {
        for (int64_t i = rb; i < re; ++i) {
          for (int64_t j = 0; j < i; ++j) pc[i * n + j] = pc[j * n + i];
        }
      });
}

}  // namespace

StatusOr<MatrixBlock> MatMult(const MatrixBlock& a, const MatrixBlock& b,
                              int num_threads) {
  if (a.Cols() != b.Rows()) {
    return InvalidArgument("matmult dimension mismatch: " +
                           std::to_string(a.Cols()) + " vs " +
                           std::to_string(b.Rows()));
  }
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), b.Cols());
  int64_t chunks = PickChunks(a.Rows(), num_threads);
  auto run = [&](auto fn) {
    ThreadPool::Global().ParallelFor(
        0, a.Rows(), chunks,
        [&](int64_t rb, int64_t re) { fn(a, b, &c, rb, re); });
  };
  if (!a.IsSparse() && !b.IsSparse()) {
    run(GemmDenseRows);
  } else if (a.IsSparse() && !b.IsSparse()) {
    run(GemmSparseDenseRows);
  } else if (!a.IsSparse() && b.IsSparse()) {
    run(GemmDenseSparseRows);
  } else {
    run(GemmSparseSparseRows);
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> TransposeSelfMatMult(const MatrixBlock& x, bool left,
                                           int num_threads) {
  // Right tsmm X%*%t(X) is computed as left tsmm of the transpose-free form
  // by swapping the roles of rows and cells; for simplicity we only
  // specialize the (dominant) left case and fall back to TransposeLeftMatMult
  // semantics for the right case via the generic path.
  if (!left) {
    // X %*% t(X): C[i,j] = dot(row_i, row_j), symmetric m x m.
    int64_t m = x.Rows(), k = x.Cols();
    MatrixBlock c = MatrixBlock::Dense(m, m);
    ThreadPool::Global().ParallelFor(
        0, m, PickChunks(m, num_threads), [&](int64_t rb, int64_t re) {
          for (int64_t i = rb; i < re; ++i) {
            for (int64_t j = i; j < m; ++j) {
              double sum = 0.0;
              if (!x.IsSparse()) {
                const double* ri = x.DenseRow(i);
                const double* rj = x.DenseRow(j);
                for (int64_t l = 0; l < k; ++l) sum += ri[l] * rj[l];
              } else {
                const SparseRow& ri = x.SparseData().Row(i);
                const SparseRow& rj = x.SparseData().Row(j);
                int64_t p = 0, q = 0;
                while (p < ri.Size() && q < rj.Size()) {
                  int64_t ci = ri.Indexes()[p], cj = rj.Indexes()[q];
                  if (ci == cj) sum += ri.Values()[p++] * rj.Values()[q++];
                  else if (ci < cj) ++p;
                  else ++q;
                }
              }
              c.DenseRow(i)[j] = sum;
            }
          }
        });
    // Mirror the upper triangle.
    MirrorLowerTriangle(c.DenseData(), m, num_threads);
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Left tsmm: C = t(X) %*% X, n x n symmetric.
  // Portable kernel (§4.2: the non-SIMD Java-style path): per output cell
  // dot products over column-strided accesses — cache-unfriendly like the
  // unblocked reference implementation.
  if (!x.IsSparse() && GetGemmKernel() == GemmKernel::kPortable) {
    int64_t m = x.Rows(), n = x.Cols();
    MatrixBlock c = MatrixBlock::Dense(n, n);
    const double* px = x.DenseData();
    double* pc = c.DenseData();
    ThreadPool::Global().ParallelFor(
        0, n, PickChunks(n, num_threads), [&](int64_t pb, int64_t pe) {
          for (int64_t p = pb; p < pe; ++p) {
            for (int64_t q = p; q < n; ++q) {
              double sum = 0.0;
              for (int64_t i = 0; i < m; ++i) {
                sum += px[i * n + p] * px[i * n + q];
              }
              pc[p * n + q] = sum;
            }
          }
        });
    MirrorLowerTriangle(pc, n, num_threads);
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Native kernel: accumulated over rows with per-chunk partial results
  // reduced deterministically in chunk order (vectorizable inner axpy).
  int64_t m = x.Rows(), n = x.Cols();
  int64_t chunks = PickChunks(m, num_threads);
  std::vector<std::vector<double>> partials(
      static_cast<size_t>(chunks), std::vector<double>());
  int64_t chunk_rows = (m + chunks - 1) / chunks;
  ThreadPool::Global().ParallelFor(
      0, m, chunks, [&](int64_t rb, int64_t re) {
        size_t ci = static_cast<size_t>(rb / chunk_rows);
        std::vector<double>& acc = partials[ci];
        acc.assign(static_cast<size_t>(n * n), 0.0);
        if (!x.IsSparse()) {
          for (int64_t i = rb; i < re; ++i) {
            const double* row = x.DenseRow(i);
            for (int64_t p = 0; p < n; ++p) {
              double v = row[p];
              if (v == 0.0) continue;
              double* arow = acc.data() + p * n;
              for (int64_t q = p; q < n; ++q) arow[q] += v * row[q];
            }
          }
        } else {
          for (int64_t i = rb; i < re; ++i) {
            const SparseRow& row = x.SparseData().Row(i);
            for (int64_t p = 0; p < row.Size(); ++p) {
              double v = row.Values()[p];
              double* arow = acc.data() + row.Indexes()[p] * n;
              for (int64_t q = p; q < row.Size(); ++q) {
                arow[row.Indexes()[q]] += v * row.Values()[q];
              }
            }
          }
        }
      });
  MatrixBlock c = MatrixBlock::Dense(n, n);
  double* pc = c.DenseData();
  for (const auto& acc : partials) {
    if (acc.empty()) continue;
    for (int64_t i = 0; i < n * n; ++i) pc[i] += acc[i];
  }
  // Mirror upper to lower triangle.
  MirrorLowerTriangle(pc, n, num_threads);
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> TransposeLeftMatMult(const MatrixBlock& a,
                                           const MatrixBlock& b,
                                           int num_threads) {
  if (a.Rows() != b.Rows()) {
    return InvalidArgument("t(A)%*%B dimension mismatch: " +
                           std::to_string(a.Rows()) + " vs " +
                           std::to_string(b.Rows()));
  }
  // Portable kernel: per-cell dot products over column-strided accesses.
  if (!a.IsSparse() && !b.IsSparse() &&
      GetGemmKernel() == GemmKernel::kPortable) {
    int64_t m = a.Rows(), n = a.Cols(), l = b.Cols();
    MatrixBlock c = MatrixBlock::Dense(n, l);
    const double* pa = a.DenseData();
    const double* pb = b.DenseData();
    double* pc = c.DenseData();
    ThreadPool::Global().ParallelFor(
        0, n, PickChunks(n, num_threads), [&](int64_t qb, int64_t qe) {
          for (int64_t p = qb; p < qe; ++p) {
            for (int64_t q = 0; q < l; ++q) {
              double sum = 0.0;
              for (int64_t i = 0; i < m; ++i) {
                sum += pa[i * n + p] * pb[i * l + q];
              }
              pc[p * l + q] = sum;
            }
          }
        });
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }

  // Native kernel: C = t(A) %*% B as a sum over shared rows (C += a_i b_i^T).
  int64_t m = a.Rows(), n = a.Cols(), l = b.Cols();
  int64_t chunks = PickChunks(m, num_threads);
  std::vector<std::vector<double>> partials(static_cast<size_t>(chunks));
  int64_t chunk_rows = (m + chunks - 1) / chunks;
  ThreadPool::Global().ParallelFor(
      0, m, chunks, [&](int64_t rb, int64_t re) {
        size_t ci = static_cast<size_t>(rb / chunk_rows);
        std::vector<double>& acc = partials[ci];
        acc.assign(static_cast<size_t>(n * l), 0.0);
        for (int64_t i = rb; i < re; ++i) {
          if (!a.IsSparse() && !b.IsSparse()) {
            const double* arow = a.DenseRow(i);
            const double* brow = b.DenseRow(i);
            for (int64_t p = 0; p < n; ++p) {
              double v = arow[p];
              if (v == 0.0) continue;
              double* crow = acc.data() + p * l;
              for (int64_t q = 0; q < l; ++q) crow[q] += v * brow[q];
            }
          } else if (a.IsSparse() && !b.IsSparse()) {
            const SparseRow& arow = a.SparseData().Row(i);
            const double* brow = b.DenseRow(i);
            for (int64_t p = 0; p < arow.Size(); ++p) {
              double v = arow.Values()[p];
              double* crow = acc.data() + arow.Indexes()[p] * l;
              for (int64_t q = 0; q < l; ++q) crow[q] += v * brow[q];
            }
          } else if (!a.IsSparse() && b.IsSparse()) {
            const double* arow = a.DenseRow(i);
            const SparseRow& brow = b.SparseData().Row(i);
            for (int64_t p = 0; p < n; ++p) {
              double v = arow[p];
              if (v == 0.0) continue;
              double* crow = acc.data() + p * l;
              for (int64_t q = 0; q < brow.Size(); ++q) {
                crow[brow.Indexes()[q]] += v * brow.Values()[q];
              }
            }
          } else {
            const SparseRow& arow = a.SparseData().Row(i);
            const SparseRow& brow = b.SparseData().Row(i);
            for (int64_t p = 0; p < arow.Size(); ++p) {
              double v = arow.Values()[p];
              double* crow = acc.data() + arow.Indexes()[p] * l;
              for (int64_t q = 0; q < brow.Size(); ++q) {
                crow[brow.Indexes()[q]] += v * brow.Values()[q];
              }
            }
          }
        }
      });
  MatrixBlock c = MatrixBlock::Dense(n, l);
  double* pc = c.DenseData();
  for (const auto& acc : partials) {
    if (acc.empty()) continue;
    for (int64_t i = 0; i < n * l; ++i) pc[i] += acc[i];
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

}  // namespace sysds
