#include "runtime/matrix/lib_solve.h"

#include <cmath>
#include <vector>

namespace sysds {

namespace {

// In-place LU with partial pivoting on a dense row-major copy.
// Returns false if singular. perm[i] records the row swaps; sign tracks the
// permutation parity for determinants.
bool LuDecompose(std::vector<double>& lu, int64_t n,
                 std::vector<int64_t>& perm, double* sign) {
  perm.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  *sign = 1.0;
  for (int64_t k = 0; k < n; ++k) {
    // Pivot search.
    int64_t p = k;
    double best = std::fabs(lu[k * n + k]);
    for (int64_t i = k + 1; i < n; ++i) {
      double v = std::fabs(lu[i * n + k]);
      if (v > best) { best = v; p = i; }
    }
    if (best == 0.0) return false;
    if (p != k) {
      for (int64_t j = 0; j < n; ++j) std::swap(lu[k * n + j], lu[p * n + j]);
      std::swap(perm[k], perm[p]);
      *sign = -*sign;
    }
    double pivot = lu[k * n + k];
    for (int64_t i = k + 1; i < n; ++i) {
      double f = lu[i * n + k] / pivot;
      lu[i * n + k] = f;
      if (f == 0.0) continue;
      const double* krow = lu.data() + k * n;
      double* irow = lu.data() + i * n;
      for (int64_t j = k + 1; j < n; ++j) irow[j] -= f * krow[j];
    }
  }
  return true;
}

}  // namespace

StatusOr<MatrixBlock> Cholesky(const MatrixBlock& a) {
  if (a.Rows() != a.Cols()) {
    return InvalidArgument("cholesky requires a square matrix");
  }
  int64_t n = a.Rows();
  MatrixBlock l = MatrixBlock::Dense(n, n);
  double* pl = l.DenseData();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a.Get(i, j);
      const double* li = pl + i * n;
      const double* lj = pl + j * n;
      for (int64_t k = 0; k < j; ++k) sum -= li[k] * lj[k];
      if (i == j) {
        if (sum <= 0.0) {
          return InvalidArgument("cholesky: matrix not positive definite");
        }
        pl[i * n + i] = std::sqrt(sum);
      } else {
        pl[i * n + j] = sum / pl[j * n + j];
      }
    }
  }
  l.MarkNnzDirty();
  return l;
}

StatusOr<MatrixBlock> Solve(const MatrixBlock& a, const MatrixBlock& b) {
  if (a.Rows() != a.Cols()) {
    return InvalidArgument("solve requires a square matrix");
  }
  if (a.Rows() != b.Rows()) {
    return InvalidArgument("solve: rhs row count mismatch");
  }
  int64_t n = a.Rows(), m = b.Cols();

  // Cholesky fast path for symmetric inputs (normal equations of lmDS).
  bool symmetric = true;
  for (int64_t i = 0; i < n && symmetric; ++i) {
    for (int64_t j = i + 1; j < n && symmetric; ++j) {
      symmetric = std::fabs(a.Get(i, j) - a.Get(j, i)) <=
                  1e-12 * (1.0 + std::fabs(a.Get(i, j)));
    }
  }
  if (symmetric) {
    auto chol = Cholesky(a);
    if (chol.ok()) {
      const double* pl = chol->DenseData();
      MatrixBlock x = MatrixBlock::Dense(n, m);
      double* px = x.DenseData();
      // Forward substitution L y = b, then backward Lᵀ x = y, per column.
      for (int64_t c = 0; c < m; ++c) {
        for (int64_t i = 0; i < n; ++i) {
          double sum = b.Get(i, c);
          for (int64_t k = 0; k < i; ++k) sum -= pl[i * n + k] * px[k * m + c];
          px[i * m + c] = sum / pl[i * n + i];
        }
        for (int64_t i = n - 1; i >= 0; --i) {
          double sum = px[i * m + c];
          for (int64_t k = i + 1; k < n; ++k) {
            sum -= pl[k * n + i] * px[k * m + c];
          }
          px[i * m + c] = sum / pl[i * n + i];
        }
      }
      x.MarkNnzDirty();
      return x;
    }
    // Not SPD: fall through to LU.
  }

  std::vector<double> lu(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) lu[i * n + j] = a.Get(i, j);
  }
  std::vector<int64_t> perm;
  double sign;
  if (!LuDecompose(lu, n, perm, &sign)) {
    return RuntimeError("solve: matrix is singular");
  }
  MatrixBlock x = MatrixBlock::Dense(n, m);
  double* px = x.DenseData();
  for (int64_t c = 0; c < m; ++c) {
    // Apply permutation, then forward/backward substitution.
    std::vector<double> y(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) y[i] = b.Get(perm[i], c);
    for (int64_t i = 0; i < n; ++i) {
      double sum = y[i];
      for (int64_t k = 0; k < i; ++k) sum -= lu[i * n + k] * y[k];
      y[i] = sum;
    }
    for (int64_t i = n - 1; i >= 0; --i) {
      double sum = y[i];
      for (int64_t k = i + 1; k < n; ++k) sum -= lu[i * n + k] * y[k];
      y[i] = sum / lu[i * n + i];
    }
    for (int64_t i = 0; i < n; ++i) px[i * m + c] = y[i];
  }
  x.MarkNnzDirty();
  return x;
}

StatusOr<MatrixBlock> Inverse(const MatrixBlock& a) {
  if (a.Rows() != a.Cols()) {
    return InvalidArgument("inv requires a square matrix");
  }
  MatrixBlock eye = MatrixBlock::Dense(a.Rows(), a.Rows());
  for (int64_t i = 0; i < a.Rows(); ++i) eye.DenseRow(i)[i] = 1.0;
  eye.MarkNnzDirty();
  return Solve(a, eye);
}

StatusOr<double> Determinant(const MatrixBlock& a) {
  if (a.Rows() != a.Cols()) {
    return InvalidArgument("det requires a square matrix");
  }
  int64_t n = a.Rows();
  std::vector<double> lu(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) lu[i * n + j] = a.Get(i, j);
  }
  std::vector<int64_t> perm;
  double sign;
  if (!LuDecompose(lu, n, perm, &sign)) return 0.0;
  double det = sign;
  for (int64_t i = 0; i < n; ++i) det *= lu[i * n + i];
  return det;
}

}  // namespace sysds
