#ifndef SYSDS_RUNTIME_MATRIX_LIB_FUSED_H_
#define SYSDS_RUNTIME_MATRIX_LIB_FUSED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

/// How a fused-region matrix input broadcasts against the region shape.
enum class FusedInputKind : uint8_t {
  kFull,    // rows x cols
  kColVec,  // rows x 1, broadcast across columns
  kRowVec,  // 1 x cols, broadcast across rows
};

/// Operand reference inside a fused micro-plan: a matrix input, the result
/// of a previous step, or a scalar input.
struct FusedRef {
  enum Kind : uint8_t { kInput, kStep, kScalar };
  Kind kind = kInput;
  int idx = 0;
};

/// One elementwise operation of the pipeline. Steps are evaluated in order;
/// step i may only reference steps < i (register-machine form).
struct FusedStep {
  bool is_binary = true;
  BinaryOpCode bop = BinaryOpCode::kAdd;
  UnaryOpCode uop = UnaryOpCode::kExp;
  FusedRef a;
  FusedRef b;  // ignored for unary steps
};

/// A serialized-able micro-plan for a fused elementwise(+aggregate) region.
/// The textual form (Serialize/Parse) rides on the kFusedOp HOP as a string
/// literal, which makes it part of the instruction's lineage key for free.
///
/// Grammar (fields ';'-separated):
///   in<N>;sc<M>;k<kinds>;<step>;...;out:t<R>[;agg:<ua-opcode>]
///   step :=  b<binop>:<ref>,<ref>  |  u<unop>:<ref>
///   ref  :=  i<N> (matrix input) | t<N> (step result) | s<N> (scalar)
///   kinds := one char per matrix input: F (full), C (colvec), R (rowvec)
/// Example: "in1;sc2;kF;b-:i0,s0;b/:t0,s1;b^:t1,s1;out:t2;agg:uarsum"
struct FusedPlan {
  int num_inputs = 0;
  int num_scalars = 0;
  std::vector<FusedInputKind> input_kinds;
  std::vector<FusedStep> steps;
  int root = -1;
  bool has_agg = false;
  AggOpCode agg = AggOpCode::kSum;
  AggDirection agg_dir = AggDirection::kAll;

  std::string Serialize() const;
  static StatusOr<FusedPlan> Parse(const std::string& text);

  /// Structural validation: reference bounds, topological step order, root
  /// in range, supported aggregate.
  Status Validate() const;

  /// Number of full-size intermediates a fused execution avoids
  /// materializing (every non-root step, plus the root when an aggregate
  /// consumes it).
  int64_t IntermediatesElided() const {
    if (steps.empty()) return 0;
    return has_agg ? static_cast<int64_t>(steps.size())
                   : static_cast<int64_t>(steps.size()) - 1;
  }
};

/// Result of a fused execution: a scalar for full aggregates, otherwise a
/// matrix (rows x 1 / 1 x cols for row/col aggregates, rows x cols for pure
/// elementwise regions).
struct FusedResult {
  bool is_scalar = false;
  double scalar = 0.0;
  MatrixBlock matrix;
};

/// Interprets the micro-plan in a single pass over the inputs, row-chunk
/// parallel with per-chunk scratch rows. Aggregates use the shared
/// agg:: primitives (same chunking, zero handling, and chunk-ordered merge
/// as the unfused kernels) so results are bit-identical to the unfused
/// instruction sequence. A sparse-driver fast path kicks in when the single
/// full input is sparse and the pipeline maps zero to zero at every step.
StatusOr<FusedResult> ExecuteFusedPlan(
    const FusedPlan& plan, const std::vector<const MatrixBlock*>& inputs,
    const std::vector<double>& scalars, int num_threads);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_FUSED_H_
