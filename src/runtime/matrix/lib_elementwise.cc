#include "runtime/matrix/lib_elementwise.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"

namespace sysds {

namespace {

enum class BroadcastKind { kNone, kColVector, kRowVector };

// Determines how b broadcasts against a; returns false on incompatibility.
bool ResolveBroadcast(const MatrixBlock& a, const MatrixBlock& b,
                      BroadcastKind* kind) {
  if (a.Rows() == b.Rows() && a.Cols() == b.Cols()) {
    *kind = BroadcastKind::kNone;
    return true;
  }
  if (b.Rows() == a.Rows() && b.Cols() == 1) {
    *kind = BroadcastKind::kColVector;
    return true;
  }
  if (b.Rows() == 1 && b.Cols() == a.Cols()) {
    *kind = BroadcastKind::kRowVector;
    return true;
  }
  return false;
}

// Counts nonzeros in a freshly written dense row while it is still hot in
// cache, so result blocks can use ExamSparsity(known_nnz) instead of a
// second full-matrix scan.
int64_t CountRowNnz(const double* row, int64_t cols) {
  int64_t nnz = 0;
  for (int64_t j = 0; j < cols; ++j) nnz += (row[j] != 0.0);
  return nnz;
}

// Sparse-sparse multiply: intersect rows (the only fully sparse-safe op).
MatrixBlock SparseSparseMul(const MatrixBlock& a, const MatrixBlock& b) {
  MatrixBlock c = MatrixBlock::Sparse(a.Rows(), a.Cols());
  for (int64_t r = 0; r < a.Rows(); ++r) {
    const SparseRow& ra = a.SparseData().Row(r);
    const SparseRow& rb = b.SparseData().Row(r);
    SparseRow& rc = c.SparseData().Row(r);
    int64_t p = 0, q = 0;
    while (p < ra.Size() && q < rb.Size()) {
      int64_t ca = ra.Indexes()[p], cb = rb.Indexes()[q];
      if (ca == cb) {
        double v = ra.Values()[p++] * rb.Values()[q++];
        if (v != 0.0) rc.Append(ca, v);
      } else if (ca < cb) {
        ++p;
      } else {
        ++q;
      }
    }
  }
  c.MarkNnzDirty();
  return c;
}

// Sparse-sparse add/sub: union-merge rows.
MatrixBlock SparseSparseAddSub(BinaryOpCode op, const MatrixBlock& a,
                               const MatrixBlock& b) {
  MatrixBlock c = MatrixBlock::Sparse(a.Rows(), a.Cols());
  double sign = (op == BinaryOpCode::kSub) ? -1.0 : 1.0;
  for (int64_t r = 0; r < a.Rows(); ++r) {
    const SparseRow& ra = a.SparseData().Row(r);
    const SparseRow& rb = b.SparseData().Row(r);
    SparseRow& rc = c.SparseData().Row(r);
    int64_t p = 0, q = 0;
    while (p < ra.Size() || q < rb.Size()) {
      int64_t ca = p < ra.Size() ? ra.Indexes()[p] : INT64_MAX;
      int64_t cb = q < rb.Size() ? rb.Indexes()[q] : INT64_MAX;
      if (ca == cb) {
        double v = ra.Values()[p++] + sign * rb.Values()[q++];
        if (v != 0.0) rc.Append(ca, v);
      } else if (ca < cb) {
        rc.Append(ca, ra.Values()[p++]);
      } else {
        rc.Append(cb, sign * rb.Values()[q++]);
      }
    }
  }
  c.MarkNnzDirty();
  return c;
}

}  // namespace

StatusOr<MatrixBlock> BinaryMatrixMatrix(BinaryOpCode op,
                                         const MatrixBlock& a,
                                         const MatrixBlock& b,
                                         int num_threads) {
  BroadcastKind kind;
  if (!ResolveBroadcast(a, b, &kind)) {
    // Vector on the left (e.g. v + X): compute with roles swapped via a
    // generic cell loop, keeping operand order for non-commutative ops.
    BroadcastKind rkind;
    if (ResolveBroadcast(b, a, &rkind)) {
      MatrixBlock c = MatrixBlock::Dense(b.Rows(), b.Cols());
      int64_t cols = b.Cols();
      int64_t nnz = 0;
      for (int64_t r = 0; r < b.Rows(); ++r) {
        double* crow = c.DenseRow(r);
        for (int64_t j = 0; j < cols; ++j) {
          double av = rkind == BroadcastKind::kColVector ? a.Get(r, 0)
                      : rkind == BroadcastKind::kRowVector ? a.Get(0, j)
                                                           : a.Get(r, j);
          crow[j] = ApplyBinary(op, av, b.Get(r, j));
        }
        nnz += CountRowNnz(crow, cols);
      }
      c.ExamSparsity(nnz);
      return c;
    }
    return InvalidArgument(
        "binary op shape mismatch: " + std::to_string(a.Rows()) + "x" +
        std::to_string(a.Cols()) + " vs " + std::to_string(b.Rows()) + "x" +
        std::to_string(b.Cols()));
  }

  // Sparse fast paths for same-shape inputs.
  if (kind == BroadcastKind::kNone && a.IsSparse() && b.IsSparse()) {
    if (op == BinaryOpCode::kMul) return SparseSparseMul(a, b);
    if (op == BinaryOpCode::kAdd || op == BinaryOpCode::kSub) {
      return SparseSparseAddSub(op, a, b);
    }
  }

  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  int64_t cols = a.Cols();
  std::atomic<int64_t> nnz{0};
  ThreadPool::Global().ParallelFor(
      0, a.Rows(), PickChunks(a.Rows(), num_threads),
      [&](int64_t rb, int64_t re) {
        int64_t local = 0;
        for (int64_t r = rb; r < re; ++r) {
          double* crow = c.DenseRow(r);
          for (int64_t j = 0; j < cols; ++j) {
            double av = a.IsSparse() ? a.SparseData().Row(r).Get(j)
                                     : a.DenseRow(r)[j];
            double bv;
            switch (kind) {
              case BroadcastKind::kNone: bv = b.Get(r, j); break;
              case BroadcastKind::kColVector: bv = b.Get(r, 0); break;
              case BroadcastKind::kRowVector: bv = b.Get(0, j); break;
              default: bv = 0.0;
            }
            crow[j] = ApplyBinary(op, av, bv);
          }
          local += CountRowNnz(crow, cols);
        }
        nnz.fetch_add(local, std::memory_order_relaxed);
      },
      "elementwise");
  c.ExamSparsity(nnz.load(std::memory_order_relaxed));
  return c;
}

MatrixBlock BinaryMatrixScalar(BinaryOpCode op, const MatrixBlock& a,
                               double scalar, bool scalar_left,
                               int num_threads) {
  // Sparse-safe shortcut: op(x, s) with op(0, s)==0 keeps sparsity.
  double zero_result = scalar_left ? ApplyBinary(op, scalar, 0.0)
                                   : ApplyBinary(op, 0.0, scalar);
  if (a.IsSparse() && zero_result == 0.0) {
    MatrixBlock c = MatrixBlock::Sparse(a.Rows(), a.Cols());
    for (int64_t r = 0; r < a.Rows(); ++r) {
      const SparseRow& ra = a.SparseData().Row(r);
      SparseRow& rc = c.SparseData().Row(r);
      rc.Reserve(ra.Size());
      for (int64_t p = 0; p < ra.Size(); ++p) {
        double v = scalar_left ? ApplyBinary(op, scalar, ra.Values()[p])
                               : ApplyBinary(op, ra.Values()[p], scalar);
        if (v != 0.0) rc.Append(ra.Indexes()[p], v);
      }
    }
    c.MarkNnzDirty();
    return c;
  }

  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  int64_t cols = a.Cols();
  std::atomic<int64_t> nnz{0};
  ThreadPool::Global().ParallelFor(
      0, a.Rows(), PickChunks(a.Rows(), num_threads),
      [&](int64_t rb, int64_t re) {
        int64_t local = 0;
        for (int64_t r = rb; r < re; ++r) {
          double* crow = c.DenseRow(r);
          if (!a.IsSparse()) {
            const double* arow = a.DenseRow(r);
            for (int64_t j = 0; j < cols; ++j) {
              crow[j] = scalar_left ? ApplyBinary(op, scalar, arow[j])
                                    : ApplyBinary(op, arow[j], scalar);
            }
          } else {
            std::fill(crow, crow + cols, zero_result);
            const SparseRow& ra = a.SparseData().Row(r);
            for (int64_t p = 0; p < ra.Size(); ++p) {
              double v = ra.Values()[p];
              crow[ra.Indexes()[p]] = scalar_left ? ApplyBinary(op, scalar, v)
                                                  : ApplyBinary(op, v, scalar);
            }
          }
          local += CountRowNnz(crow, cols);
        }
        nnz.fetch_add(local, std::memory_order_relaxed);
      },
      "elementwise");
  c.ExamSparsity(nnz.load(std::memory_order_relaxed));
  return c;
}

MatrixBlock UnaryMatrix(UnaryOpCode op, const MatrixBlock& a,
                        int num_threads) {
  if (a.IsSparse() && IsSparseSafeUnary(op)) {
    MatrixBlock c = MatrixBlock::Sparse(a.Rows(), a.Cols());
    for (int64_t r = 0; r < a.Rows(); ++r) {
      const SparseRow& ra = a.SparseData().Row(r);
      SparseRow& rc = c.SparseData().Row(r);
      rc.Reserve(ra.Size());
      for (int64_t p = 0; p < ra.Size(); ++p) {
        double v = ApplyUnary(op, ra.Values()[p]);
        if (v != 0.0) rc.Append(ra.Indexes()[p], v);
      }
    }
    c.MarkNnzDirty();
    return c;
  }
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  int64_t cols = a.Cols();
  double zero_result = ApplyUnary(op, 0.0);
  std::atomic<int64_t> nnz{0};
  ThreadPool::Global().ParallelFor(
      0, a.Rows(), PickChunks(a.Rows(), num_threads),
      [&](int64_t rb, int64_t re) {
        int64_t local = 0;
        for (int64_t r = rb; r < re; ++r) {
          double* crow = c.DenseRow(r);
          if (!a.IsSparse()) {
            const double* arow = a.DenseRow(r);
            for (int64_t j = 0; j < cols; ++j) crow[j] = ApplyUnary(op, arow[j]);
          } else {
            std::fill(crow, crow + cols, zero_result);
            const SparseRow& ra = a.SparseData().Row(r);
            for (int64_t p = 0; p < ra.Size(); ++p) {
              crow[ra.Indexes()[p]] = ApplyUnary(op, ra.Values()[p]);
            }
          }
          local += CountRowNnz(crow, cols);
        }
        nnz.fetch_add(local, std::memory_order_relaxed);
      },
      "elementwise");
  c.ExamSparsity(nnz.load(std::memory_order_relaxed));
  return c;
}

StatusOr<MatrixBlock> TernaryIfElse(const MatrixBlock& cond,
                                    const MatrixBlock* a, double a_scalar,
                                    const MatrixBlock* b, double b_scalar,
                                    int num_threads) {
  if (a != nullptr &&
      (a->Rows() != cond.Rows() || a->Cols() != cond.Cols())) {
    return InvalidArgument("ifelse: 'yes' arm shape mismatch");
  }
  if (b != nullptr &&
      (b->Rows() != cond.Rows() || b->Cols() != cond.Cols())) {
    return InvalidArgument("ifelse: 'no' arm shape mismatch");
  }
  MatrixBlock c = MatrixBlock::Dense(cond.Rows(), cond.Cols());
  int64_t cols = cond.Cols();
  std::atomic<int64_t> nnz{0};
  ThreadPool::Global().ParallelFor(
      0, cond.Rows(), PickChunks(cond.Rows(), num_threads),
      [&](int64_t rb, int64_t re) {
        int64_t local = 0;
        for (int64_t r = rb; r < re; ++r) {
          double* crow = c.DenseRow(r);
          for (int64_t j = 0; j < cols; ++j) {
            bool take_a = cond.Get(r, j) != 0.0;
            crow[j] = take_a ? (a ? a->Get(r, j) : a_scalar)
                             : (b ? b->Get(r, j) : b_scalar);
          }
          local += CountRowNnz(crow, cols);
        }
        nnz.fetch_add(local, std::memory_order_relaxed);
      },
      "elementwise");
  c.ExamSparsity(nnz.load(std::memory_order_relaxed));
  return c;
}

}  // namespace sysds
