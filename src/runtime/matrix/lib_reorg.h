#ifndef SYSDS_RUNTIME_MATRIX_LIB_REORG_H_
#define SYSDS_RUNTIME_MATRIX_LIB_REORG_H_

#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// t(A), cache-blocked for dense inputs.
MatrixBlock Transpose(const MatrixBlock& a, int num_threads);

/// rev(A): reverses the row order.
MatrixBlock ReverseRows(const MatrixBlock& a);

/// diag(A): for a column vector (n x 1) produces the n x n diagonal matrix;
/// for a square matrix extracts the diagonal as n x 1.
StatusOr<MatrixBlock> Diag(const MatrixBlock& a);

/// cbind(A1, ..., An) / rbind(A1, ..., An).
StatusOr<MatrixBlock> CBind(const std::vector<const MatrixBlock*>& inputs);
StatusOr<MatrixBlock> RBind(const std::vector<const MatrixBlock*>& inputs);

/// Right indexing A[rl:ru, cl:cu] with 0-based inclusive bounds.
StatusOr<MatrixBlock> SliceMatrix(const MatrixBlock& a, int64_t rl, int64_t ru,
                                  int64_t cl, int64_t cu);

/// Left indexing: copies `a`, overwriting the region [rl..ru, cl..cu] with
/// `rhs` (whose shape must match the region).
StatusOr<MatrixBlock> LeftIndex(const MatrixBlock& a, const MatrixBlock& rhs,
                                int64_t rl, int64_t ru, int64_t cl,
                                int64_t cu);

/// reshape(A, rows, cols) row-major, byrow=TRUE semantics.
StatusOr<MatrixBlock> Reshape(const MatrixBlock& a, int64_t rows,
                              int64_t cols);

/// order(A, by=col, decreasing, index.return): returns A with rows sorted by
/// the given 0-based column, or the 1-based row permutation if index_return.
StatusOr<MatrixBlock> OrderByColumn(const MatrixBlock& a, int64_t by_col,
                                    bool decreasing, bool index_return);

/// removeEmpty(A, margin="rows"/"cols"): drops all-zero rows or columns.
/// Returns a 1x1 zero matrix if everything is empty (SystemDS behaviour).
MatrixBlock RemoveEmpty(const MatrixBlock& a, bool rows_margin);

/// table(A, B): contingency table of two column vectors with positive
/// integer entries; result dims are max(A) x max(B).
StatusOr<MatrixBlock> CTable(const MatrixBlock& a, const MatrixBlock& b,
                             double weight = 1.0);

/// replace(A, pattern, replacement) - exact match, NaN-aware.
MatrixBlock ReplaceValues(const MatrixBlock& a, double pattern,
                          double replacement);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_REORG_H_
