#include "runtime/matrix/lib_reorg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace sysds {

MatrixBlock Transpose(const MatrixBlock& a, int num_threads) {
  MatrixBlock c(a.Cols(), a.Rows(), /*sparse=*/a.IsSparse());
  if (!a.IsSparse()) {
    constexpr int64_t kBlk = 64;
    int64_t rows = a.Rows(), cols = a.Cols();
    const double* pa = a.DenseData();
    double* pc = c.DenseData();
    int64_t row_blocks = (rows + kBlk - 1) / kBlk;
    ThreadPool::Global().ParallelFor(
        0, row_blocks,
        num_threads <= 1 ? 1 : std::min<int64_t>(num_threads, row_blocks),
        [&](int64_t bb, int64_t be) {
          for (int64_t b = bb; b < be; ++b) {
            int64_t ib = b * kBlk, ie = std::min(rows, ib + kBlk);
            for (int64_t jb = 0; jb < cols; jb += kBlk) {
              int64_t je = std::min(cols, jb + kBlk);
              for (int64_t i = ib; i < ie; ++i) {
                for (int64_t j = jb; j < je; ++j) {
                  pc[j * rows + i] = pa[i * cols + j];
                }
              }
            }
          }
        },
        "reorg");
  } else {
    // Sparse transpose: counting pass then scatter keeps rows sorted.
    c.AllocateSparse();
    std::vector<int64_t> counts(static_cast<size_t>(a.Cols()), 0);
    for (int64_t r = 0; r < a.Rows(); ++r) {
      const SparseRow& row = a.SparseData().Row(r);
      for (int64_t p = 0; p < row.Size(); ++p) ++counts[row.Indexes()[p]];
    }
    for (int64_t j = 0; j < a.Cols(); ++j) {
      c.SparseData().Row(j).Reserve(counts[j]);
    }
    for (int64_t r = 0; r < a.Rows(); ++r) {
      const SparseRow& row = a.SparseData().Row(r);
      for (int64_t p = 0; p < row.Size(); ++p) {
        c.SparseData().Row(row.Indexes()[p]).Append(r, row.Values()[p]);
      }
    }
  }
  c.MarkNnzDirty();
  return c;
}

MatrixBlock ReverseRows(const MatrixBlock& a) {
  MatrixBlock c(a.Rows(), a.Cols(), a.IsSparse());
  for (int64_t r = 0; r < a.Rows(); ++r) {
    int64_t src = a.Rows() - 1 - r;
    if (!a.IsSparse()) {
      std::copy(a.DenseRow(src), a.DenseRow(src) + a.Cols(), c.DenseRow(r));
    } else {
      c.SparseData().Row(r) = a.SparseData().Row(src);
    }
  }
  c.MarkNnzDirty();
  return c;
}

StatusOr<MatrixBlock> Diag(const MatrixBlock& a) {
  if (a.Cols() == 1) {
    // Vector-to-matrix: n x n diagonal, always sparse-friendly.
    int64_t n = a.Rows();
    MatrixBlock c = MatrixBlock::Sparse(n, n);
    for (int64_t i = 0; i < n; ++i) {
      double v = a.Get(i, 0);
      if (v != 0.0) c.SparseData().Row(i).Append(i, v);
    }
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }
  if (a.Rows() == a.Cols()) {
    MatrixBlock c = MatrixBlock::Dense(a.Rows(), 1);
    for (int64_t i = 0; i < a.Rows(); ++i) c.DenseData()[i] = a.Get(i, i);
    c.MarkNnzDirty();
    return c;
  }
  return InvalidArgument("diag requires a column vector or square matrix");
}

StatusOr<MatrixBlock> CBind(const std::vector<const MatrixBlock*>& inputs) {
  if (inputs.empty()) return InvalidArgument("cbind of zero inputs");
  int64_t rows = inputs[0]->Rows();
  int64_t cols = 0;
  for (const MatrixBlock* m : inputs) {
    if (m->Rows() != rows) {
      return InvalidArgument("cbind inputs must have equal row counts");
    }
    cols += m->Cols();
  }
  MatrixBlock c = MatrixBlock::Dense(rows, cols);
  int64_t coff = 0;
  for (const MatrixBlock* m : inputs) {
    for (int64_t r = 0; r < rows; ++r) {
      double* crow = c.DenseRow(r) + coff;
      if (!m->IsSparse()) {
        std::copy(m->DenseRow(r), m->DenseRow(r) + m->Cols(), crow);
      } else {
        const SparseRow& row = m->SparseData().Row(r);
        for (int64_t p = 0; p < row.Size(); ++p) {
          crow[row.Indexes()[p]] = row.Values()[p];
        }
      }
    }
    coff += m->Cols();
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> RBind(const std::vector<const MatrixBlock*>& inputs) {
  if (inputs.empty()) return InvalidArgument("rbind of zero inputs");
  int64_t cols = inputs[0]->Cols();
  int64_t rows = 0;
  for (const MatrixBlock* m : inputs) {
    if (m->Cols() != cols) {
      return InvalidArgument("rbind inputs must have equal column counts");
    }
    rows += m->Rows();
  }
  MatrixBlock c = MatrixBlock::Dense(rows, cols);
  int64_t roff = 0;
  for (const MatrixBlock* m : inputs) {
    for (int64_t r = 0; r < m->Rows(); ++r) {
      double* crow = c.DenseRow(roff + r);
      if (!m->IsSparse()) {
        std::copy(m->DenseRow(r), m->DenseRow(r) + cols, crow);
      } else {
        const SparseRow& row = m->SparseData().Row(r);
        for (int64_t p = 0; p < row.Size(); ++p) {
          crow[row.Indexes()[p]] = row.Values()[p];
        }
      }
    }
    roff += m->Rows();
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> SliceMatrix(const MatrixBlock& a, int64_t rl,
                                  int64_t ru, int64_t cl, int64_t cu) {
  if (rl < 0 || ru >= a.Rows() || rl > ru || cl < 0 || cu >= a.Cols() ||
      cl > cu) {
    return OutOfRange("index range [" + std::to_string(rl + 1) + ":" +
                      std::to_string(ru + 1) + "," + std::to_string(cl + 1) +
                      ":" + std::to_string(cu + 1) + "] out of bounds for " +
                      std::to_string(a.Rows()) + "x" +
                      std::to_string(a.Cols()));
  }
  int64_t rows = ru - rl + 1, cols = cu - cl + 1;
  MatrixBlock c(rows, cols, a.IsSparse());
  for (int64_t r = 0; r < rows; ++r) {
    if (!a.IsSparse()) {
      const double* arow = a.DenseRow(rl + r) + cl;
      std::copy(arow, arow + cols, c.DenseRow(r));
    } else {
      const SparseRow& src = a.SparseData().Row(rl + r);
      SparseRow& dst = c.SparseData().Row(r);
      for (int64_t p = 0; p < src.Size(); ++p) {
        int64_t col = src.Indexes()[p];
        if (col >= cl && col <= cu) dst.Append(col - cl, src.Values()[p]);
      }
    }
  }
  c.MarkNnzDirty();
  if (a.IsSparse()) c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> LeftIndex(const MatrixBlock& a, const MatrixBlock& rhs,
                                int64_t rl, int64_t ru, int64_t cl,
                                int64_t cu) {
  if (rl < 0 || ru >= a.Rows() || rl > ru || cl < 0 || cu >= a.Cols() ||
      cl > cu) {
    return OutOfRange("left-index range out of bounds");
  }
  if (rhs.Rows() != ru - rl + 1 || rhs.Cols() != cu - cl + 1) {
    return InvalidArgument(
        "left-index rhs shape " + std::to_string(rhs.Rows()) + "x" +
        std::to_string(rhs.Cols()) + " does not match target region " +
        std::to_string(ru - rl + 1) + "x" + std::to_string(cu - cl + 1));
  }
  MatrixBlock c = a;  // copy-on-write at the instruction layer
  c.ToDense();
  for (int64_t r = 0; r <= ru - rl; ++r) {
    double* crow = c.DenseRow(rl + r) + cl;
    for (int64_t j = 0; j <= cu - cl; ++j) crow[j] = rhs.Get(r, j);
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> Reshape(const MatrixBlock& a, int64_t rows,
                              int64_t cols) {
  if (rows * cols != a.CellCount()) {
    return InvalidArgument("reshape cell count mismatch");
  }
  MatrixBlock c = MatrixBlock::Dense(rows, cols);
  double* pc = c.DenseData();
  int64_t idx = 0;
  for (int64_t r = 0; r < a.Rows(); ++r) {
    for (int64_t j = 0; j < a.Cols(); ++j) pc[idx++] = a.Get(r, j);
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> OrderByColumn(const MatrixBlock& a, int64_t by_col,
                                    bool decreasing, bool index_return) {
  if (by_col < 0 || by_col >= a.Cols()) {
    return OutOfRange("order: by-column out of range");
  }
  std::vector<int64_t> perm(static_cast<size_t>(a.Rows()));
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int64_t x, int64_t y) {
    double vx = a.Get(x, by_col), vy = a.Get(y, by_col);
    return decreasing ? vx > vy : vx < vy;
  });
  if (index_return) {
    MatrixBlock c = MatrixBlock::Dense(a.Rows(), 1);
    for (int64_t r = 0; r < a.Rows(); ++r) {
      c.DenseData()[r] = static_cast<double>(perm[r] + 1);
    }
    c.MarkNnzDirty();
    return c;
  }
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  for (int64_t r = 0; r < a.Rows(); ++r) {
    for (int64_t j = 0; j < a.Cols(); ++j) {
      c.DenseRow(r)[j] = a.Get(perm[r], j);
    }
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

MatrixBlock RemoveEmpty(const MatrixBlock& a, bool rows_margin) {
  std::vector<int64_t> keep;
  if (rows_margin) {
    for (int64_t r = 0; r < a.Rows(); ++r) {
      bool nonzero = false;
      for (int64_t j = 0; j < a.Cols() && !nonzero; ++j) {
        nonzero = a.Get(r, j) != 0.0;
      }
      if (nonzero) keep.push_back(r);
    }
    if (keep.empty()) return MatrixBlock::Dense(1, 1);
    MatrixBlock c = MatrixBlock::Dense(static_cast<int64_t>(keep.size()),
                                       a.Cols());
    for (size_t r = 0; r < keep.size(); ++r) {
      for (int64_t j = 0; j < a.Cols(); ++j) {
        c.DenseRow(static_cast<int64_t>(r))[j] = a.Get(keep[r], j);
      }
    }
    c.MarkNnzDirty();
    c.ExamSparsity();
    return c;
  }
  for (int64_t j = 0; j < a.Cols(); ++j) {
    bool nonzero = false;
    for (int64_t r = 0; r < a.Rows() && !nonzero; ++r) {
      nonzero = a.Get(r, j) != 0.0;
    }
    if (nonzero) keep.push_back(j);
  }
  if (keep.empty()) return MatrixBlock::Dense(1, 1);
  MatrixBlock c =
      MatrixBlock::Dense(a.Rows(), static_cast<int64_t>(keep.size()));
  for (int64_t r = 0; r < a.Rows(); ++r) {
    for (size_t j = 0; j < keep.size(); ++j) {
      c.DenseRow(r)[j] = a.Get(r, keep[j]);
    }
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

StatusOr<MatrixBlock> CTable(const MatrixBlock& a, const MatrixBlock& b,
                             double weight) {
  if (a.Cols() != 1 || b.Cols() != 1 || a.Rows() != b.Rows()) {
    return InvalidArgument("table requires two aligned column vectors");
  }
  int64_t max_a = 0, max_b = 0;
  for (int64_t r = 0; r < a.Rows(); ++r) {
    double va = a.Get(r, 0), vb = b.Get(r, 0);
    if (va < 1 || vb < 1 || va != std::floor(va) || vb != std::floor(vb)) {
      return InvalidArgument("table requires positive integer entries");
    }
    max_a = std::max<int64_t>(max_a, static_cast<int64_t>(va));
    max_b = std::max<int64_t>(max_b, static_cast<int64_t>(vb));
  }
  MatrixBlock c = MatrixBlock::Dense(max_a, max_b);
  for (int64_t r = 0; r < a.Rows(); ++r) {
    int64_t i = static_cast<int64_t>(a.Get(r, 0)) - 1;
    int64_t j = static_cast<int64_t>(b.Get(r, 0)) - 1;
    c.DenseRow(i)[j] += weight;
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

MatrixBlock ReplaceValues(const MatrixBlock& a, double pattern,
                          double replacement) {
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), a.Cols());
  bool pattern_is_nan = std::isnan(pattern);
  for (int64_t r = 0; r < a.Rows(); ++r) {
    double* crow = c.DenseRow(r);
    for (int64_t j = 0; j < a.Cols(); ++j) {
      double v = a.Get(r, j);
      bool match = pattern_is_nan ? std::isnan(v) : v == pattern;
      crow[j] = match ? replacement : v;
    }
  }
  c.MarkNnzDirty();
  c.ExamSparsity();
  return c;
}

}  // namespace sysds
