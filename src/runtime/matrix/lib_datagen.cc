#include "runtime/matrix/lib_datagen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "common/util.h"

namespace sysds {

namespace {
constexpr int64_t kRowBlock = 1024;
}  // namespace

StatusOr<MatrixBlock> RandMatrix(int64_t rows, int64_t cols, double min_val,
                                 double max_val, double sparsity,
                                 uint64_t seed, RandPdf pdf,
                                 int num_threads) {
  if (rows < 0 || cols < 0) return InvalidArgument("rand: negative dims");
  if (sparsity < 0.0 || sparsity > 1.0) {
    return InvalidArgument("rand: sparsity must be in [0,1]");
  }
  bool sparse = MatrixBlock::EvalSparseFormat(rows, cols, sparsity);
  MatrixBlock c(rows, cols, sparse);
  int64_t num_blocks = (rows + kRowBlock - 1) / kRowBlock;
  auto gen_block = [&](int64_t bb, int64_t be) {
    for (int64_t b = bb; b < be; ++b) {
      // Per-block seed: deterministic regardless of parallelism.
      Xoshiro rng(HashCombine(seed, static_cast<uint64_t>(b)));
      int64_t rbeg = b * kRowBlock, rend = std::min(rows, rbeg + kRowBlock);
      for (int64_t r = rbeg; r < rend; ++r) {
        if (!sparse) {
          double* row = c.DenseRow(r);
          for (int64_t j = 0; j < cols; ++j) {
            if (sparsity < 1.0 && rng.NextDouble() >= sparsity) {
              row[j] = 0.0;
              continue;
            }
            row[j] = pdf == RandPdf::kUniform
                         ? rng.NextDouble(min_val, max_val)
                         : rng.NextGaussian();
          }
        } else {
          SparseRow& row = c.SparseData().Row(r);
          row.Reserve(static_cast<int64_t>(sparsity * cols) + 1);
          for (int64_t j = 0; j < cols; ++j) {
            if (rng.NextDouble() >= sparsity) continue;
            double v = pdf == RandPdf::kUniform
                           ? rng.NextDouble(min_val, max_val)
                           : rng.NextGaussian();
            if (v != 0.0) row.Append(j, v);
          }
        }
      }
    }
  };
  ThreadPool::Global().ParallelFor(
      0, num_blocks,
      num_threads <= 1 ? 1 : std::min<int64_t>(num_threads, num_blocks),
      gen_block, "datagen");
  c.MarkNnzDirty();
  return c;
}

StatusOr<MatrixBlock> SeqMatrix(double from, double to, double incr) {
  if (incr == 0.0) return InvalidArgument("seq: zero increment");
  if ((to - from) / incr < 0) {
    return InvalidArgument("seq: increment has wrong sign");
  }
  int64_t n = static_cast<int64_t>(std::floor((to - from) / incr + 1e-10)) + 1;
  MatrixBlock c = MatrixBlock::Dense(n, 1);
  for (int64_t i = 0; i < n; ++i) c.DenseData()[i] = from + incr * i;
  c.MarkNnzDirty();
  return c;
}

StatusOr<MatrixBlock> SampleMatrix(int64_t range, int64_t size, bool replace,
                                   uint64_t seed) {
  if (range < 1 || size < 1) return InvalidArgument("sample: invalid sizes");
  if (!replace && size > range) {
    return InvalidArgument("sample without replacement: size > range");
  }
  MatrixBlock c = MatrixBlock::Dense(size, 1);
  Xoshiro rng(seed);
  if (replace) {
    for (int64_t i = 0; i < size; ++i) {
      c.DenseData()[i] =
          static_cast<double>(1 + rng.NextUint64() % static_cast<uint64_t>(range));
    }
  } else {
    // Partial Fisher-Yates over [1..range].
    std::vector<int64_t> vals(static_cast<size_t>(range));
    std::iota(vals.begin(), vals.end(), 1);
    for (int64_t i = 0; i < size; ++i) {
      int64_t j = i + static_cast<int64_t>(rng.NextUint64() %
                                           static_cast<uint64_t>(range - i));
      std::swap(vals[i], vals[j]);
      c.DenseData()[i] = static_cast<double>(vals[i]);
    }
  }
  c.MarkNnzDirty();
  return c;
}

}  // namespace sysds
